# Empty dependencies file for bench_ablation_sdm_receiver.
# This may be replaced when dependencies are built.
