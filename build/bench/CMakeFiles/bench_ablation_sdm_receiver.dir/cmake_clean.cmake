file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sdm_receiver.dir/ablation_sdm_receiver.cpp.o"
  "CMakeFiles/bench_ablation_sdm_receiver.dir/ablation_sdm_receiver.cpp.o.d"
  "bench_ablation_sdm_receiver"
  "bench_ablation_sdm_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sdm_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
