file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_multinode.dir/fig13_multinode.cpp.o"
  "CMakeFiles/bench_fig13_multinode.dir/fig13_multinode.cpp.o.d"
  "bench_fig13_multinode"
  "bench_fig13_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
