file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_waveforms.dir/fig09_waveforms.cpp.o"
  "CMakeFiles/bench_fig09_waveforms.dir/fig09_waveforms.cpp.o.d"
  "bench_fig09_waveforms"
  "bench_fig09_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
