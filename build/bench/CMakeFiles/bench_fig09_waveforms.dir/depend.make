# Empty dependencies file for bench_fig09_waveforms.
# This may be replaced when dependencies are built.
