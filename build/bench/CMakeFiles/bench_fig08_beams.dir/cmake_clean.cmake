file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_beams.dir/fig08_beams.cpp.o"
  "CMakeFiles/bench_fig08_beams.dir/fig08_beams.cpp.o.d"
  "bench_fig08_beams"
  "bench_fig08_beams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_beams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
