# Empty compiler generated dependencies file for bench_fig08_beams.
# This may be replaced when dependencies are built.
