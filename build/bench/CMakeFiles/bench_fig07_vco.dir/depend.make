# Empty dependencies file for bench_fig07_vco.
# This may be replaced when dependencies are built.
