file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_vco.dir/fig07_vco.cpp.o"
  "CMakeFiles/bench_fig07_vco.dir/fig07_vco.cpp.o.d"
  "bench_fig07_vco"
  "bench_fig07_vco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_vco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
