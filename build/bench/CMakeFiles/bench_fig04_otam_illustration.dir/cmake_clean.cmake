file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_otam_illustration.dir/fig04_otam_illustration.cpp.o"
  "CMakeFiles/bench_fig04_otam_illustration.dir/fig04_otam_illustration.cpp.o.d"
  "bench_fig04_otam_illustration"
  "bench_fig04_otam_illustration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_otam_illustration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
