# Empty dependencies file for bench_fig04_otam_illustration.
# This may be replaced when dependencies are built.
