file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ber_cdf.dir/fig11_ber_cdf.cpp.o"
  "CMakeFiles/bench_fig11_ber_cdf.dir/fig11_ber_cdf.cpp.o.d"
  "bench_fig11_ber_cdf"
  "bench_fig11_ber_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ber_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
