file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_snr_map.dir/fig10_snr_map.cpp.o"
  "CMakeFiles/bench_fig10_snr_map.dir/fig10_snr_map.cpp.o.d"
  "bench_fig10_snr_map"
  "bench_fig10_snr_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_snr_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
