# Empty dependencies file for bench_fig10_snr_map.
# This may be replaced when dependencies are built.
