# Empty dependencies file for bench_ablation_band60.
# This may be replaced when dependencies are built.
