file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_band60.dir/ablation_band60.cpp.o"
  "CMakeFiles/bench_ablation_band60.dir/ablation_band60.cpp.o.d"
  "bench_ablation_band60"
  "bench_ablation_band60.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_band60.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
