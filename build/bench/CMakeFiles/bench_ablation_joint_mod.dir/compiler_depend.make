# Empty compiler generated dependencies file for bench_ablation_joint_mod.
# This may be replaced when dependencies are built.
