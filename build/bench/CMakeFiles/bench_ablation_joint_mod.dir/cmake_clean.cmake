file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_joint_mod.dir/ablation_joint_mod.cpp.o"
  "CMakeFiles/bench_ablation_joint_mod.dir/ablation_joint_mod.cpp.o.d"
  "bench_ablation_joint_mod"
  "bench_ablation_joint_mod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_joint_mod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
