# Empty compiler generated dependencies file for bench_ablation_beamsearch.
# This may be replaced when dependencies are built.
