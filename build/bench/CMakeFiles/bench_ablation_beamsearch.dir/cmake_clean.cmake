file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_beamsearch.dir/ablation_beamsearch.cpp.o"
  "CMakeFiles/bench_ablation_beamsearch.dir/ablation_beamsearch.cpp.o.d"
  "bench_ablation_beamsearch"
  "bench_ablation_beamsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_beamsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
