file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_orthogonality.dir/ablation_orthogonality.cpp.o"
  "CMakeFiles/bench_ablation_orthogonality.dir/ablation_orthogonality.cpp.o.d"
  "bench_ablation_orthogonality"
  "bench_ablation_orthogonality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_orthogonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
