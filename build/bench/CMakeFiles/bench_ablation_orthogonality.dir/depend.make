# Empty dependencies file for bench_ablation_orthogonality.
# This may be replaced when dependencies are built.
