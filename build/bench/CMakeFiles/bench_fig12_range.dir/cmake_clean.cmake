file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_range.dir/fig12_range.cpp.o"
  "CMakeFiles/bench_fig12_range.dir/fig12_range.cpp.o.d"
  "bench_fig12_range"
  "bench_fig12_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
