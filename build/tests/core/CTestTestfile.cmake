# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/test_core_node[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_ap[1]_include.cmake")
include("/root/repo/build/tests/core/test_channelizer[1]_include.cmake")
include("/root/repo/build/tests/core/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_network[1]_include.cmake")
include("/root/repo/build/tests/core/test_stream_coding[1]_include.cmake")
include("/root/repo/build/tests/core/test_fullstack_sweep[1]_include.cmake")
