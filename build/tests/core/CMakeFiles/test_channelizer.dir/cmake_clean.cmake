file(REMOVE_RECURSE
  "CMakeFiles/test_channelizer.dir/channelizer_test.cpp.o"
  "CMakeFiles/test_channelizer.dir/channelizer_test.cpp.o.d"
  "test_channelizer"
  "test_channelizer.pdb"
  "test_channelizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channelizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
