# Empty compiler generated dependencies file for test_channelizer.
# This may be replaced when dependencies are built.
