# Empty dependencies file for test_fullstack_sweep.
# This may be replaced when dependencies are built.
