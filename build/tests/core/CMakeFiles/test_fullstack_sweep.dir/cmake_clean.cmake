file(REMOVE_RECURSE
  "CMakeFiles/test_fullstack_sweep.dir/fullstack_sweep_test.cpp.o"
  "CMakeFiles/test_fullstack_sweep.dir/fullstack_sweep_test.cpp.o.d"
  "test_fullstack_sweep"
  "test_fullstack_sweep.pdb"
  "test_fullstack_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fullstack_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
