file(REMOVE_RECURSE
  "CMakeFiles/test_core_node.dir/node_test.cpp.o"
  "CMakeFiles/test_core_node.dir/node_test.cpp.o.d"
  "test_core_node"
  "test_core_node.pdb"
  "test_core_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
