# Empty dependencies file for test_core_node.
# This may be replaced when dependencies are built.
