# Empty dependencies file for test_stream_coding.
# This may be replaced when dependencies are built.
