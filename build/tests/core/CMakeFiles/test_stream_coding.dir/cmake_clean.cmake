file(REMOVE_RECURSE
  "CMakeFiles/test_stream_coding.dir/stream_coding_test.cpp.o"
  "CMakeFiles/test_stream_coding.dir/stream_coding_test.cpp.o.d"
  "test_stream_coding"
  "test_stream_coding.pdb"
  "test_stream_coding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
