file(REMOVE_RECURSE
  "CMakeFiles/test_core_ap.dir/access_point_test.cpp.o"
  "CMakeFiles/test_core_ap.dir/access_point_test.cpp.o.d"
  "test_core_ap"
  "test_core_ap.pdb"
  "test_core_ap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
