# Empty compiler generated dependencies file for test_core_ap.
# This may be replaced when dependencies are built.
