# CMake generated Testfile for 
# Source directory: /root/repo/tests/dsp
# Build directory: /root/repo/build/tests/dsp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dsp/test_dsp_types[1]_include.cmake")
include("/root/repo/build/tests/dsp/test_tone[1]_include.cmake")
include("/root/repo/build/tests/dsp/test_fir[1]_include.cmake")
include("/root/repo/build/tests/dsp/test_fft[1]_include.cmake")
include("/root/repo/build/tests/dsp/test_goertzel[1]_include.cmake")
include("/root/repo/build/tests/dsp/test_envelope[1]_include.cmake")
include("/root/repo/build/tests/dsp/test_agc_resample[1]_include.cmake")
include("/root/repo/build/tests/dsp/test_impairments[1]_include.cmake")
include("/root/repo/build/tests/dsp/test_noise_measure[1]_include.cmake")
include("/root/repo/build/tests/dsp/test_spectrum_scan[1]_include.cmake")
