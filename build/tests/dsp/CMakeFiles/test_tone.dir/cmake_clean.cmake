file(REMOVE_RECURSE
  "CMakeFiles/test_tone.dir/tone_test.cpp.o"
  "CMakeFiles/test_tone.dir/tone_test.cpp.o.d"
  "test_tone"
  "test_tone.pdb"
  "test_tone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
