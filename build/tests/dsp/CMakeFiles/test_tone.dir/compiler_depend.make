# Empty compiler generated dependencies file for test_tone.
# This may be replaced when dependencies are built.
