# Empty dependencies file for test_envelope.
# This may be replaced when dependencies are built.
