file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_types.dir/types_test.cpp.o"
  "CMakeFiles/test_dsp_types.dir/types_test.cpp.o.d"
  "test_dsp_types"
  "test_dsp_types.pdb"
  "test_dsp_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
