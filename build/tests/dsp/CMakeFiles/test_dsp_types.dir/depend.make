# Empty dependencies file for test_dsp_types.
# This may be replaced when dependencies are built.
