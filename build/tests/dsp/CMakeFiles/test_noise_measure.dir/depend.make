# Empty dependencies file for test_noise_measure.
# This may be replaced when dependencies are built.
