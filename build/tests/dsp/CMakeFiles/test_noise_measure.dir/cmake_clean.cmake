file(REMOVE_RECURSE
  "CMakeFiles/test_noise_measure.dir/noise_measure_test.cpp.o"
  "CMakeFiles/test_noise_measure.dir/noise_measure_test.cpp.o.d"
  "test_noise_measure"
  "test_noise_measure.pdb"
  "test_noise_measure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
