file(REMOVE_RECURSE
  "CMakeFiles/test_fir.dir/fir_test.cpp.o"
  "CMakeFiles/test_fir.dir/fir_test.cpp.o.d"
  "test_fir"
  "test_fir.pdb"
  "test_fir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
