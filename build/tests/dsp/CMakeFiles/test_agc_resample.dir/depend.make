# Empty dependencies file for test_agc_resample.
# This may be replaced when dependencies are built.
