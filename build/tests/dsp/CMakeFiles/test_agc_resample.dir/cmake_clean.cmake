file(REMOVE_RECURSE
  "CMakeFiles/test_agc_resample.dir/agc_resample_test.cpp.o"
  "CMakeFiles/test_agc_resample.dir/agc_resample_test.cpp.o.d"
  "test_agc_resample"
  "test_agc_resample.pdb"
  "test_agc_resample[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agc_resample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
