file(REMOVE_RECURSE
  "CMakeFiles/test_spectrum_scan.dir/spectrum_scan_test.cpp.o"
  "CMakeFiles/test_spectrum_scan.dir/spectrum_scan_test.cpp.o.d"
  "test_spectrum_scan"
  "test_spectrum_scan.pdb"
  "test_spectrum_scan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectrum_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
