# CMake generated Testfile for 
# Source directory: /root/repo/tests/experiments
# Build directory: /root/repo/build/tests/experiments
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/experiments/test_figures[1]_include.cmake")
