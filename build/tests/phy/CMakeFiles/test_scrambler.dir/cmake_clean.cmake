file(REMOVE_RECURSE
  "CMakeFiles/test_scrambler.dir/scrambler_test.cpp.o"
  "CMakeFiles/test_scrambler.dir/scrambler_test.cpp.o.d"
  "test_scrambler"
  "test_scrambler.pdb"
  "test_scrambler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scrambler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
