file(REMOVE_RECURSE
  "CMakeFiles/test_preamble.dir/preamble_test.cpp.o"
  "CMakeFiles/test_preamble.dir/preamble_test.cpp.o.d"
  "test_preamble"
  "test_preamble.pdb"
  "test_preamble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preamble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
