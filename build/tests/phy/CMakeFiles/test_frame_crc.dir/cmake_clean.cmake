file(REMOVE_RECURSE
  "CMakeFiles/test_frame_crc.dir/frame_crc_test.cpp.o"
  "CMakeFiles/test_frame_crc.dir/frame_crc_test.cpp.o.d"
  "test_frame_crc"
  "test_frame_crc.pdb"
  "test_frame_crc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
