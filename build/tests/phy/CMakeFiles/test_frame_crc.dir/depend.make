# Empty dependencies file for test_frame_crc.
# This may be replaced when dependencies are built.
