file(REMOVE_RECURSE
  "CMakeFiles/test_ask.dir/ask_test.cpp.o"
  "CMakeFiles/test_ask.dir/ask_test.cpp.o.d"
  "test_ask"
  "test_ask.pdb"
  "test_ask[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
