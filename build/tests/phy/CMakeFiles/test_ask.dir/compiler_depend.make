# Empty compiler generated dependencies file for test_ask.
# This may be replaced when dependencies are built.
