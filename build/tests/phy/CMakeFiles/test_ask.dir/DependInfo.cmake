
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy/ask_test.cpp" "tests/phy/CMakeFiles/test_ask.dir/ask_test.cpp.o" "gcc" "tests/phy/CMakeFiles/test_ask.dir/ask_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/mmx_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/mmx_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mmx_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
