file(REMOVE_RECURSE
  "CMakeFiles/test_fec.dir/fec_test.cpp.o"
  "CMakeFiles/test_fec.dir/fec_test.cpp.o.d"
  "test_fec"
  "test_fec.pdb"
  "test_fec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
