# Empty compiler generated dependencies file for test_cfo_spectrum.
# This may be replaced when dependencies are built.
