file(REMOVE_RECURSE
  "CMakeFiles/test_cfo_spectrum.dir/cfo_spectrum_test.cpp.o"
  "CMakeFiles/test_cfo_spectrum.dir/cfo_spectrum_test.cpp.o.d"
  "test_cfo_spectrum"
  "test_cfo_spectrum.pdb"
  "test_cfo_spectrum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfo_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
