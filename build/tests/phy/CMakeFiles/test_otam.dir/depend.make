# Empty dependencies file for test_otam.
# This may be replaced when dependencies are built.
