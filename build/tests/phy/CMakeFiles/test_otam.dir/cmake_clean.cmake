file(REMOVE_RECURSE
  "CMakeFiles/test_otam.dir/otam_test.cpp.o"
  "CMakeFiles/test_otam.dir/otam_test.cpp.o.d"
  "test_otam"
  "test_otam.pdb"
  "test_otam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
