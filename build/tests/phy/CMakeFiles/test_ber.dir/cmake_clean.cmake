file(REMOVE_RECURSE
  "CMakeFiles/test_ber.dir/ber_test.cpp.o"
  "CMakeFiles/test_ber.dir/ber_test.cpp.o.d"
  "test_ber"
  "test_ber.pdb"
  "test_ber[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
