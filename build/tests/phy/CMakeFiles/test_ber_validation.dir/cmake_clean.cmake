file(REMOVE_RECURSE
  "CMakeFiles/test_ber_validation.dir/ber_validation_test.cpp.o"
  "CMakeFiles/test_ber_validation.dir/ber_validation_test.cpp.o.d"
  "test_ber_validation"
  "test_ber_validation.pdb"
  "test_ber_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ber_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
