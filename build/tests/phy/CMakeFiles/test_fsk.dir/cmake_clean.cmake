file(REMOVE_RECURSE
  "CMakeFiles/test_fsk.dir/fsk_test.cpp.o"
  "CMakeFiles/test_fsk.dir/fsk_test.cpp.o.d"
  "test_fsk"
  "test_fsk.pdb"
  "test_fsk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
