# Empty compiler generated dependencies file for test_fsk.
# This may be replaced when dependencies are built.
