# Empty dependencies file for test_mobility_phy.
# This may be replaced when dependencies are built.
