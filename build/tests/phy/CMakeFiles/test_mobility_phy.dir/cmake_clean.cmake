file(REMOVE_RECURSE
  "CMakeFiles/test_mobility_phy.dir/mobility_test.cpp.o"
  "CMakeFiles/test_mobility_phy.dir/mobility_test.cpp.o.d"
  "test_mobility_phy"
  "test_mobility_phy.pdb"
  "test_mobility_phy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobility_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
