file(REMOVE_RECURSE
  "CMakeFiles/test_phy_end_to_end.dir/end_to_end_test.cpp.o"
  "CMakeFiles/test_phy_end_to_end.dir/end_to_end_test.cpp.o.d"
  "test_phy_end_to_end"
  "test_phy_end_to_end.pdb"
  "test_phy_end_to_end[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
