# CMake generated Testfile for 
# Source directory: /root/repo/tests/phy
# Build directory: /root/repo/build/tests/phy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/phy/test_ask[1]_include.cmake")
include("/root/repo/build/tests/phy/test_fsk[1]_include.cmake")
include("/root/repo/build/tests/phy/test_otam[1]_include.cmake")
include("/root/repo/build/tests/phy/test_joint[1]_include.cmake")
include("/root/repo/build/tests/phy/test_preamble[1]_include.cmake")
include("/root/repo/build/tests/phy/test_frame_crc[1]_include.cmake")
include("/root/repo/build/tests/phy/test_fec[1]_include.cmake")
include("/root/repo/build/tests/phy/test_scrambler[1]_include.cmake")
include("/root/repo/build/tests/phy/test_ber[1]_include.cmake")
include("/root/repo/build/tests/phy/test_mobility_phy[1]_include.cmake")
include("/root/repo/build/tests/phy/test_phy_end_to_end[1]_include.cmake")
include("/root/repo/build/tests/phy/test_interference[1]_include.cmake")
include("/root/repo/build/tests/phy/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/phy/test_ber_validation[1]_include.cmake")
include("/root/repo/build/tests/phy/test_cfo_spectrum[1]_include.cmake")
include("/root/repo/build/tests/phy/test_coding[1]_include.cmake")
