# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("dsp")
subdirs("rf")
subdirs("antenna")
subdirs("channel")
subdirs("phy")
subdirs("mac")
subdirs("sim")
subdirs("core")
subdirs("baseline")
subdirs("experiments")
