# CMake generated Testfile for 
# Source directory: /root/repo/tests/rf
# Build directory: /root/repo/build/tests/rf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rf/test_vco[1]_include.cmake")
include("/root/repo/build/tests/rf/test_spdt[1]_include.cmake")
include("/root/repo/build/tests/rf/test_amplifier_mixer[1]_include.cmake")
include("/root/repo/build/tests/rf/test_filter_pll[1]_include.cmake")
include("/root/repo/build/tests/rf/test_adc[1]_include.cmake")
include("/root/repo/build/tests/rf/test_phase_noise[1]_include.cmake")
include("/root/repo/build/tests/rf/test_chain_budget[1]_include.cmake")
