file(REMOVE_RECURSE
  "CMakeFiles/test_spdt.dir/spdt_test.cpp.o"
  "CMakeFiles/test_spdt.dir/spdt_test.cpp.o.d"
  "test_spdt"
  "test_spdt.pdb"
  "test_spdt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
