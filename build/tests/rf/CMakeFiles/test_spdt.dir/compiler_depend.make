# Empty compiler generated dependencies file for test_spdt.
# This may be replaced when dependencies are built.
