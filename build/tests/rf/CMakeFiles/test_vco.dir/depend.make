# Empty dependencies file for test_vco.
# This may be replaced when dependencies are built.
