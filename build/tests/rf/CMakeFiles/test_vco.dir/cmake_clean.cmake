file(REMOVE_RECURSE
  "CMakeFiles/test_vco.dir/vco_test.cpp.o"
  "CMakeFiles/test_vco.dir/vco_test.cpp.o.d"
  "test_vco"
  "test_vco.pdb"
  "test_vco[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
