# Empty compiler generated dependencies file for test_filter_pll.
# This may be replaced when dependencies are built.
