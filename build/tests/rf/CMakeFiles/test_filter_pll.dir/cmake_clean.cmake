file(REMOVE_RECURSE
  "CMakeFiles/test_filter_pll.dir/filter_pll_test.cpp.o"
  "CMakeFiles/test_filter_pll.dir/filter_pll_test.cpp.o.d"
  "test_filter_pll"
  "test_filter_pll.pdb"
  "test_filter_pll[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filter_pll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
