# Empty compiler generated dependencies file for test_phase_noise.
# This may be replaced when dependencies are built.
