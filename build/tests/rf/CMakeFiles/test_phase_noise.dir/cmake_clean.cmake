file(REMOVE_RECURSE
  "CMakeFiles/test_phase_noise.dir/phase_noise_test.cpp.o"
  "CMakeFiles/test_phase_noise.dir/phase_noise_test.cpp.o.d"
  "test_phase_noise"
  "test_phase_noise.pdb"
  "test_phase_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
