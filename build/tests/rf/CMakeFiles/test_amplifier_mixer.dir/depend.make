# Empty dependencies file for test_amplifier_mixer.
# This may be replaced when dependencies are built.
