file(REMOVE_RECURSE
  "CMakeFiles/test_amplifier_mixer.dir/amplifier_mixer_test.cpp.o"
  "CMakeFiles/test_amplifier_mixer.dir/amplifier_mixer_test.cpp.o.d"
  "test_amplifier_mixer"
  "test_amplifier_mixer.pdb"
  "test_amplifier_mixer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amplifier_mixer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
