file(REMOVE_RECURSE
  "CMakeFiles/test_chain_budget.dir/chain_budget_test.cpp.o"
  "CMakeFiles/test_chain_budget.dir/chain_budget_test.cpp.o.d"
  "test_chain_budget"
  "test_chain_budget.pdb"
  "test_chain_budget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
