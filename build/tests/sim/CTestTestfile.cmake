# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/sim/test_link_budget[1]_include.cmake")
include("/root/repo/build/tests/sim/test_stats[1]_include.cmake")
include("/root/repo/build/tests/sim/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/sim/test_energy[1]_include.cmake")
include("/root/repo/build/tests/sim/test_network_sim[1]_include.cmake")
