file(REMOVE_RECURSE
  "CMakeFiles/test_mmx_beams.dir/mmx_beams_test.cpp.o"
  "CMakeFiles/test_mmx_beams.dir/mmx_beams_test.cpp.o.d"
  "test_mmx_beams"
  "test_mmx_beams.pdb"
  "test_mmx_beams[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmx_beams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
