# Empty compiler generated dependencies file for test_mmx_beams.
# This may be replaced when dependencies are built.
