file(REMOVE_RECURSE
  "CMakeFiles/test_tma.dir/tma_test.cpp.o"
  "CMakeFiles/test_tma.dir/tma_test.cpp.o.d"
  "test_tma"
  "test_tma.pdb"
  "test_tma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
