# CMake generated Testfile for 
# Source directory: /root/repo/tests/antenna
# Build directory: /root/repo/build/tests/antenna
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/antenna/test_element[1]_include.cmake")
include("/root/repo/build/tests/antenna/test_array[1]_include.cmake")
include("/root/repo/build/tests/antenna/test_mmx_beams[1]_include.cmake")
include("/root/repo/build/tests/antenna/test_tma[1]_include.cmake")
