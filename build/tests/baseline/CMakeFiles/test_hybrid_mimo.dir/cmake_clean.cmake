file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_mimo.dir/hybrid_mimo_test.cpp.o"
  "CMakeFiles/test_hybrid_mimo.dir/hybrid_mimo_test.cpp.o.d"
  "test_hybrid_mimo"
  "test_hybrid_mimo.pdb"
  "test_hybrid_mimo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_mimo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
