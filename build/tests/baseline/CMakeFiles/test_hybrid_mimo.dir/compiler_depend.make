# Empty compiler generated dependencies file for test_hybrid_mimo.
# This may be replaced when dependencies are built.
