file(REMOVE_RECURSE
  "CMakeFiles/test_beam_search.dir/beam_search_test.cpp.o"
  "CMakeFiles/test_beam_search.dir/beam_search_test.cpp.o.d"
  "test_beam_search"
  "test_beam_search.pdb"
  "test_beam_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beam_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
