# CMake generated Testfile for 
# Source directory: /root/repo/tests/channel
# Build directory: /root/repo/build/tests/channel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/channel/test_room[1]_include.cmake")
include("/root/repo/build/tests/channel/test_propagation[1]_include.cmake")
include("/root/repo/build/tests/channel/test_ray_tracer[1]_include.cmake")
include("/root/repo/build/tests/channel/test_mobility[1]_include.cmake")
include("/root/repo/build/tests/channel/test_double_bounce[1]_include.cmake")
include("/root/repo/build/tests/channel/test_beam_channel[1]_include.cmake")
include("/root/repo/build/tests/channel/test_delay_spread[1]_include.cmake")
include("/root/repo/build/tests/channel/test_partition[1]_include.cmake")
include("/root/repo/build/tests/channel/test_reciprocity[1]_include.cmake")
include("/root/repo/build/tests/channel/test_presets[1]_include.cmake")
