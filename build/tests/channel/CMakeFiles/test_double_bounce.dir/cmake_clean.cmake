file(REMOVE_RECURSE
  "CMakeFiles/test_double_bounce.dir/double_bounce_test.cpp.o"
  "CMakeFiles/test_double_bounce.dir/double_bounce_test.cpp.o.d"
  "test_double_bounce"
  "test_double_bounce.pdb"
  "test_double_bounce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_double_bounce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
