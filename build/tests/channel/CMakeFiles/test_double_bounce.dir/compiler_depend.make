# Empty compiler generated dependencies file for test_double_bounce.
# This may be replaced when dependencies are built.
