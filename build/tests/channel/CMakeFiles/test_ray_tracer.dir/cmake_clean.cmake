file(REMOVE_RECURSE
  "CMakeFiles/test_ray_tracer.dir/ray_tracer_test.cpp.o"
  "CMakeFiles/test_ray_tracer.dir/ray_tracer_test.cpp.o.d"
  "test_ray_tracer"
  "test_ray_tracer.pdb"
  "test_ray_tracer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ray_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
