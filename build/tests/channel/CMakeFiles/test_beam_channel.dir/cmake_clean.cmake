file(REMOVE_RECURSE
  "CMakeFiles/test_beam_channel.dir/beam_channel_test.cpp.o"
  "CMakeFiles/test_beam_channel.dir/beam_channel_test.cpp.o.d"
  "test_beam_channel"
  "test_beam_channel.pdb"
  "test_beam_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beam_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
