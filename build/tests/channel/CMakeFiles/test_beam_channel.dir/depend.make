# Empty dependencies file for test_beam_channel.
# This may be replaced when dependencies are built.
