file(REMOVE_RECURSE
  "CMakeFiles/test_delay_spread.dir/delay_spread_test.cpp.o"
  "CMakeFiles/test_delay_spread.dir/delay_spread_test.cpp.o.d"
  "test_delay_spread"
  "test_delay_spread.pdb"
  "test_delay_spread[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
