# Empty compiler generated dependencies file for test_delay_spread.
# This may be replaced when dependencies are built.
