# Empty dependencies file for test_arq_rate.
# This may be replaced when dependencies are built.
