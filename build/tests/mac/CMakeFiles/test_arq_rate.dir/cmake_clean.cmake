file(REMOVE_RECURSE
  "CMakeFiles/test_arq_rate.dir/arq_rate_test.cpp.o"
  "CMakeFiles/test_arq_rate.dir/arq_rate_test.cpp.o.d"
  "test_arq_rate"
  "test_arq_rate.pdb"
  "test_arq_rate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arq_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
