file(REMOVE_RECURSE
  "CMakeFiles/test_side_channel.dir/side_channel_test.cpp.o"
  "CMakeFiles/test_side_channel.dir/side_channel_test.cpp.o.d"
  "test_side_channel"
  "test_side_channel.pdb"
  "test_side_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_side_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
