# Empty compiler generated dependencies file for test_side_channel.
# This may be replaced when dependencies are built.
