# Empty compiler generated dependencies file for test_init_protocol.
# This may be replaced when dependencies are built.
