file(REMOVE_RECURSE
  "CMakeFiles/test_init_protocol.dir/init_protocol_test.cpp.o"
  "CMakeFiles/test_init_protocol.dir/init_protocol_test.cpp.o.d"
  "test_init_protocol"
  "test_init_protocol.pdb"
  "test_init_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_init_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
