file(REMOVE_RECURSE
  "CMakeFiles/test_sdm.dir/sdm_test.cpp.o"
  "CMakeFiles/test_sdm.dir/sdm_test.cpp.o.d"
  "test_sdm"
  "test_sdm.pdb"
  "test_sdm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
