# CMake generated Testfile for 
# Source directory: /root/repo/tests/mac
# Build directory: /root/repo/build/tests/mac
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mac/test_allocator[1]_include.cmake")
include("/root/repo/build/tests/mac/test_sdm[1]_include.cmake")
include("/root/repo/build/tests/mac/test_side_channel[1]_include.cmake")
include("/root/repo/build/tests/mac/test_arq_rate[1]_include.cmake")
include("/root/repo/build/tests/mac/test_init_protocol[1]_include.cmake")
