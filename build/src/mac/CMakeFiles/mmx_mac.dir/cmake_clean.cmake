file(REMOVE_RECURSE
  "CMakeFiles/mmx_mac.dir/allocator.cpp.o"
  "CMakeFiles/mmx_mac.dir/allocator.cpp.o.d"
  "CMakeFiles/mmx_mac.dir/arq.cpp.o"
  "CMakeFiles/mmx_mac.dir/arq.cpp.o.d"
  "CMakeFiles/mmx_mac.dir/init_protocol.cpp.o"
  "CMakeFiles/mmx_mac.dir/init_protocol.cpp.o.d"
  "CMakeFiles/mmx_mac.dir/rate_control.cpp.o"
  "CMakeFiles/mmx_mac.dir/rate_control.cpp.o.d"
  "CMakeFiles/mmx_mac.dir/sdm.cpp.o"
  "CMakeFiles/mmx_mac.dir/sdm.cpp.o.d"
  "CMakeFiles/mmx_mac.dir/side_channel.cpp.o"
  "CMakeFiles/mmx_mac.dir/side_channel.cpp.o.d"
  "libmmx_mac.a"
  "libmmx_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
