# Empty compiler generated dependencies file for mmx_mac.
# This may be replaced when dependencies are built.
