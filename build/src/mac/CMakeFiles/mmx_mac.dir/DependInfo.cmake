
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/allocator.cpp" "src/mac/CMakeFiles/mmx_mac.dir/allocator.cpp.o" "gcc" "src/mac/CMakeFiles/mmx_mac.dir/allocator.cpp.o.d"
  "/root/repo/src/mac/arq.cpp" "src/mac/CMakeFiles/mmx_mac.dir/arq.cpp.o" "gcc" "src/mac/CMakeFiles/mmx_mac.dir/arq.cpp.o.d"
  "/root/repo/src/mac/init_protocol.cpp" "src/mac/CMakeFiles/mmx_mac.dir/init_protocol.cpp.o" "gcc" "src/mac/CMakeFiles/mmx_mac.dir/init_protocol.cpp.o.d"
  "/root/repo/src/mac/rate_control.cpp" "src/mac/CMakeFiles/mmx_mac.dir/rate_control.cpp.o" "gcc" "src/mac/CMakeFiles/mmx_mac.dir/rate_control.cpp.o.d"
  "/root/repo/src/mac/sdm.cpp" "src/mac/CMakeFiles/mmx_mac.dir/sdm.cpp.o" "gcc" "src/mac/CMakeFiles/mmx_mac.dir/sdm.cpp.o.d"
  "/root/repo/src/mac/side_channel.cpp" "src/mac/CMakeFiles/mmx_mac.dir/side_channel.cpp.o" "gcc" "src/mac/CMakeFiles/mmx_mac.dir/side_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/mmx_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/mmx_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mmx_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
