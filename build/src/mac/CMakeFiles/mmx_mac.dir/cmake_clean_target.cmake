file(REMOVE_RECURSE
  "libmmx_mac.a"
)
