
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/energy.cpp" "src/sim/CMakeFiles/mmx_sim.dir/energy.cpp.o" "gcc" "src/sim/CMakeFiles/mmx_sim.dir/energy.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/mmx_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/mmx_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/link_budget.cpp" "src/sim/CMakeFiles/mmx_sim.dir/link_budget.cpp.o" "gcc" "src/sim/CMakeFiles/mmx_sim.dir/link_budget.cpp.o.d"
  "/root/repo/src/sim/network_sim.cpp" "src/sim/CMakeFiles/mmx_sim.dir/network_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mmx_sim.dir/network_sim.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/mmx_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/mmx_sim.dir/stats.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/sim/CMakeFiles/mmx_sim.dir/traffic.cpp.o" "gcc" "src/sim/CMakeFiles/mmx_sim.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mmx_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/mmx_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/mmx_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/mmx_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mmx_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/mmx_mac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
