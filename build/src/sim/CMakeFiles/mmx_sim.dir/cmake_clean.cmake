file(REMOVE_RECURSE
  "CMakeFiles/mmx_sim.dir/energy.cpp.o"
  "CMakeFiles/mmx_sim.dir/energy.cpp.o.d"
  "CMakeFiles/mmx_sim.dir/event_queue.cpp.o"
  "CMakeFiles/mmx_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/mmx_sim.dir/link_budget.cpp.o"
  "CMakeFiles/mmx_sim.dir/link_budget.cpp.o.d"
  "CMakeFiles/mmx_sim.dir/network_sim.cpp.o"
  "CMakeFiles/mmx_sim.dir/network_sim.cpp.o.d"
  "CMakeFiles/mmx_sim.dir/stats.cpp.o"
  "CMakeFiles/mmx_sim.dir/stats.cpp.o.d"
  "CMakeFiles/mmx_sim.dir/traffic.cpp.o"
  "CMakeFiles/mmx_sim.dir/traffic.cpp.o.d"
  "libmmx_sim.a"
  "libmmx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
