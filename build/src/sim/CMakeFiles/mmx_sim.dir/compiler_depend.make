# Empty compiler generated dependencies file for mmx_sim.
# This may be replaced when dependencies are built.
