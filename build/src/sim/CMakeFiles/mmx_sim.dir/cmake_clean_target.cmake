file(REMOVE_RECURSE
  "libmmx_sim.a"
)
