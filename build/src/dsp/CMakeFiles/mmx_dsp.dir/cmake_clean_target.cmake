file(REMOVE_RECURSE
  "libmmx_dsp.a"
)
