# Empty dependencies file for mmx_dsp.
# This may be replaced when dependencies are built.
