file(REMOVE_RECURSE
  "CMakeFiles/mmx_dsp.dir/agc.cpp.o"
  "CMakeFiles/mmx_dsp.dir/agc.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/envelope.cpp.o"
  "CMakeFiles/mmx_dsp.dir/envelope.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/fft.cpp.o"
  "CMakeFiles/mmx_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/fir.cpp.o"
  "CMakeFiles/mmx_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/goertzel.cpp.o"
  "CMakeFiles/mmx_dsp.dir/goertzel.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/impairments.cpp.o"
  "CMakeFiles/mmx_dsp.dir/impairments.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/measure.cpp.o"
  "CMakeFiles/mmx_dsp.dir/measure.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/noise.cpp.o"
  "CMakeFiles/mmx_dsp.dir/noise.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/resample.cpp.o"
  "CMakeFiles/mmx_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/mmx_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/tone.cpp.o"
  "CMakeFiles/mmx_dsp.dir/tone.cpp.o.d"
  "CMakeFiles/mmx_dsp.dir/window.cpp.o"
  "CMakeFiles/mmx_dsp.dir/window.cpp.o.d"
  "libmmx_dsp.a"
  "libmmx_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
