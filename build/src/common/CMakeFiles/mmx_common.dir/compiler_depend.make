# Empty compiler generated dependencies file for mmx_common.
# This may be replaced when dependencies are built.
