file(REMOVE_RECURSE
  "libmmx_common.a"
)
