file(REMOVE_RECURSE
  "CMakeFiles/mmx_common.dir/geometry.cpp.o"
  "CMakeFiles/mmx_common.dir/geometry.cpp.o.d"
  "CMakeFiles/mmx_common.dir/units.cpp.o"
  "CMakeFiles/mmx_common.dir/units.cpp.o.d"
  "libmmx_common.a"
  "libmmx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
