# Empty dependencies file for mmx_antenna.
# This may be replaced when dependencies are built.
