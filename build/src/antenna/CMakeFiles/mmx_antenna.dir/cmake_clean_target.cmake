file(REMOVE_RECURSE
  "libmmx_antenna.a"
)
