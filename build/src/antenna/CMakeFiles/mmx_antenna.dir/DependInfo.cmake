
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/antenna/array.cpp" "src/antenna/CMakeFiles/mmx_antenna.dir/array.cpp.o" "gcc" "src/antenna/CMakeFiles/mmx_antenna.dir/array.cpp.o.d"
  "/root/repo/src/antenna/element.cpp" "src/antenna/CMakeFiles/mmx_antenna.dir/element.cpp.o" "gcc" "src/antenna/CMakeFiles/mmx_antenna.dir/element.cpp.o.d"
  "/root/repo/src/antenna/mmx_beams.cpp" "src/antenna/CMakeFiles/mmx_antenna.dir/mmx_beams.cpp.o" "gcc" "src/antenna/CMakeFiles/mmx_antenna.dir/mmx_beams.cpp.o.d"
  "/root/repo/src/antenna/pattern_metrics.cpp" "src/antenna/CMakeFiles/mmx_antenna.dir/pattern_metrics.cpp.o" "gcc" "src/antenna/CMakeFiles/mmx_antenna.dir/pattern_metrics.cpp.o.d"
  "/root/repo/src/antenna/tma.cpp" "src/antenna/CMakeFiles/mmx_antenna.dir/tma.cpp.o" "gcc" "src/antenna/CMakeFiles/mmx_antenna.dir/tma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mmx_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
