file(REMOVE_RECURSE
  "CMakeFiles/mmx_antenna.dir/array.cpp.o"
  "CMakeFiles/mmx_antenna.dir/array.cpp.o.d"
  "CMakeFiles/mmx_antenna.dir/element.cpp.o"
  "CMakeFiles/mmx_antenna.dir/element.cpp.o.d"
  "CMakeFiles/mmx_antenna.dir/mmx_beams.cpp.o"
  "CMakeFiles/mmx_antenna.dir/mmx_beams.cpp.o.d"
  "CMakeFiles/mmx_antenna.dir/pattern_metrics.cpp.o"
  "CMakeFiles/mmx_antenna.dir/pattern_metrics.cpp.o.d"
  "CMakeFiles/mmx_antenna.dir/tma.cpp.o"
  "CMakeFiles/mmx_antenna.dir/tma.cpp.o.d"
  "libmmx_antenna.a"
  "libmmx_antenna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_antenna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
