file(REMOVE_RECURSE
  "CMakeFiles/mmx_core.dir/access_point.cpp.o"
  "CMakeFiles/mmx_core.dir/access_point.cpp.o.d"
  "CMakeFiles/mmx_core.dir/network.cpp.o"
  "CMakeFiles/mmx_core.dir/network.cpp.o.d"
  "CMakeFiles/mmx_core.dir/node.cpp.o"
  "CMakeFiles/mmx_core.dir/node.cpp.o.d"
  "CMakeFiles/mmx_core.dir/scenario.cpp.o"
  "CMakeFiles/mmx_core.dir/scenario.cpp.o.d"
  "libmmx_core.a"
  "libmmx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
