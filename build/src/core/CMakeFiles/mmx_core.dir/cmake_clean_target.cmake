file(REMOVE_RECURSE
  "libmmx_core.a"
)
