# Empty dependencies file for mmx_core.
# This may be replaced when dependencies are built.
