file(REMOVE_RECURSE
  "libmmx_channel.a"
)
