# Empty compiler generated dependencies file for mmx_channel.
# This may be replaced when dependencies are built.
