file(REMOVE_RECURSE
  "CMakeFiles/mmx_channel.dir/beam_channel.cpp.o"
  "CMakeFiles/mmx_channel.dir/beam_channel.cpp.o.d"
  "CMakeFiles/mmx_channel.dir/blockage.cpp.o"
  "CMakeFiles/mmx_channel.dir/blockage.cpp.o.d"
  "CMakeFiles/mmx_channel.dir/mobility.cpp.o"
  "CMakeFiles/mmx_channel.dir/mobility.cpp.o.d"
  "CMakeFiles/mmx_channel.dir/presets.cpp.o"
  "CMakeFiles/mmx_channel.dir/presets.cpp.o.d"
  "CMakeFiles/mmx_channel.dir/propagation.cpp.o"
  "CMakeFiles/mmx_channel.dir/propagation.cpp.o.d"
  "CMakeFiles/mmx_channel.dir/ray_tracer.cpp.o"
  "CMakeFiles/mmx_channel.dir/ray_tracer.cpp.o.d"
  "CMakeFiles/mmx_channel.dir/room.cpp.o"
  "CMakeFiles/mmx_channel.dir/room.cpp.o.d"
  "libmmx_channel.a"
  "libmmx_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
