
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/beam_channel.cpp" "src/channel/CMakeFiles/mmx_channel.dir/beam_channel.cpp.o" "gcc" "src/channel/CMakeFiles/mmx_channel.dir/beam_channel.cpp.o.d"
  "/root/repo/src/channel/blockage.cpp" "src/channel/CMakeFiles/mmx_channel.dir/blockage.cpp.o" "gcc" "src/channel/CMakeFiles/mmx_channel.dir/blockage.cpp.o.d"
  "/root/repo/src/channel/mobility.cpp" "src/channel/CMakeFiles/mmx_channel.dir/mobility.cpp.o" "gcc" "src/channel/CMakeFiles/mmx_channel.dir/mobility.cpp.o.d"
  "/root/repo/src/channel/presets.cpp" "src/channel/CMakeFiles/mmx_channel.dir/presets.cpp.o" "gcc" "src/channel/CMakeFiles/mmx_channel.dir/presets.cpp.o.d"
  "/root/repo/src/channel/propagation.cpp" "src/channel/CMakeFiles/mmx_channel.dir/propagation.cpp.o" "gcc" "src/channel/CMakeFiles/mmx_channel.dir/propagation.cpp.o.d"
  "/root/repo/src/channel/ray_tracer.cpp" "src/channel/CMakeFiles/mmx_channel.dir/ray_tracer.cpp.o" "gcc" "src/channel/CMakeFiles/mmx_channel.dir/ray_tracer.cpp.o.d"
  "/root/repo/src/channel/room.cpp" "src/channel/CMakeFiles/mmx_channel.dir/room.cpp.o" "gcc" "src/channel/CMakeFiles/mmx_channel.dir/room.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mmx_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/mmx_antenna.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
