file(REMOVE_RECURSE
  "libmmx_rf.a"
)
