
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/adc.cpp" "src/rf/CMakeFiles/mmx_rf.dir/adc.cpp.o" "gcc" "src/rf/CMakeFiles/mmx_rf.dir/adc.cpp.o.d"
  "/root/repo/src/rf/amplifier.cpp" "src/rf/CMakeFiles/mmx_rf.dir/amplifier.cpp.o" "gcc" "src/rf/CMakeFiles/mmx_rf.dir/amplifier.cpp.o.d"
  "/root/repo/src/rf/budget.cpp" "src/rf/CMakeFiles/mmx_rf.dir/budget.cpp.o" "gcc" "src/rf/CMakeFiles/mmx_rf.dir/budget.cpp.o.d"
  "/root/repo/src/rf/chain.cpp" "src/rf/CMakeFiles/mmx_rf.dir/chain.cpp.o" "gcc" "src/rf/CMakeFiles/mmx_rf.dir/chain.cpp.o.d"
  "/root/repo/src/rf/filter.cpp" "src/rf/CMakeFiles/mmx_rf.dir/filter.cpp.o" "gcc" "src/rf/CMakeFiles/mmx_rf.dir/filter.cpp.o.d"
  "/root/repo/src/rf/mixer.cpp" "src/rf/CMakeFiles/mmx_rf.dir/mixer.cpp.o" "gcc" "src/rf/CMakeFiles/mmx_rf.dir/mixer.cpp.o.d"
  "/root/repo/src/rf/phase_noise.cpp" "src/rf/CMakeFiles/mmx_rf.dir/phase_noise.cpp.o" "gcc" "src/rf/CMakeFiles/mmx_rf.dir/phase_noise.cpp.o.d"
  "/root/repo/src/rf/pll.cpp" "src/rf/CMakeFiles/mmx_rf.dir/pll.cpp.o" "gcc" "src/rf/CMakeFiles/mmx_rf.dir/pll.cpp.o.d"
  "/root/repo/src/rf/spdt.cpp" "src/rf/CMakeFiles/mmx_rf.dir/spdt.cpp.o" "gcc" "src/rf/CMakeFiles/mmx_rf.dir/spdt.cpp.o.d"
  "/root/repo/src/rf/vco.cpp" "src/rf/CMakeFiles/mmx_rf.dir/vco.cpp.o" "gcc" "src/rf/CMakeFiles/mmx_rf.dir/vco.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mmx_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
