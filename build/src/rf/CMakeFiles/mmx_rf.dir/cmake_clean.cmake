file(REMOVE_RECURSE
  "CMakeFiles/mmx_rf.dir/adc.cpp.o"
  "CMakeFiles/mmx_rf.dir/adc.cpp.o.d"
  "CMakeFiles/mmx_rf.dir/amplifier.cpp.o"
  "CMakeFiles/mmx_rf.dir/amplifier.cpp.o.d"
  "CMakeFiles/mmx_rf.dir/budget.cpp.o"
  "CMakeFiles/mmx_rf.dir/budget.cpp.o.d"
  "CMakeFiles/mmx_rf.dir/chain.cpp.o"
  "CMakeFiles/mmx_rf.dir/chain.cpp.o.d"
  "CMakeFiles/mmx_rf.dir/filter.cpp.o"
  "CMakeFiles/mmx_rf.dir/filter.cpp.o.d"
  "CMakeFiles/mmx_rf.dir/mixer.cpp.o"
  "CMakeFiles/mmx_rf.dir/mixer.cpp.o.d"
  "CMakeFiles/mmx_rf.dir/phase_noise.cpp.o"
  "CMakeFiles/mmx_rf.dir/phase_noise.cpp.o.d"
  "CMakeFiles/mmx_rf.dir/pll.cpp.o"
  "CMakeFiles/mmx_rf.dir/pll.cpp.o.d"
  "CMakeFiles/mmx_rf.dir/spdt.cpp.o"
  "CMakeFiles/mmx_rf.dir/spdt.cpp.o.d"
  "CMakeFiles/mmx_rf.dir/vco.cpp.o"
  "CMakeFiles/mmx_rf.dir/vco.cpp.o.d"
  "libmmx_rf.a"
  "libmmx_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
