# Empty compiler generated dependencies file for mmx_rf.
# This may be replaced when dependencies are built.
