file(REMOVE_RECURSE
  "libmmx_phy.a"
)
