
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/ask.cpp" "src/phy/CMakeFiles/mmx_phy.dir/ask.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/ask.cpp.o.d"
  "/root/repo/src/phy/ber.cpp" "src/phy/CMakeFiles/mmx_phy.dir/ber.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/ber.cpp.o.d"
  "/root/repo/src/phy/cfo.cpp" "src/phy/CMakeFiles/mmx_phy.dir/cfo.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/cfo.cpp.o.d"
  "/root/repo/src/phy/coding.cpp" "src/phy/CMakeFiles/mmx_phy.dir/coding.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/coding.cpp.o.d"
  "/root/repo/src/phy/crc.cpp" "src/phy/CMakeFiles/mmx_phy.dir/crc.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/crc.cpp.o.d"
  "/root/repo/src/phy/fec.cpp" "src/phy/CMakeFiles/mmx_phy.dir/fec.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/fec.cpp.o.d"
  "/root/repo/src/phy/frame.cpp" "src/phy/CMakeFiles/mmx_phy.dir/frame.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/frame.cpp.o.d"
  "/root/repo/src/phy/fsk.cpp" "src/phy/CMakeFiles/mmx_phy.dir/fsk.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/fsk.cpp.o.d"
  "/root/repo/src/phy/joint.cpp" "src/phy/CMakeFiles/mmx_phy.dir/joint.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/joint.cpp.o.d"
  "/root/repo/src/phy/otam.cpp" "src/phy/CMakeFiles/mmx_phy.dir/otam.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/otam.cpp.o.d"
  "/root/repo/src/phy/preamble.cpp" "src/phy/CMakeFiles/mmx_phy.dir/preamble.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/preamble.cpp.o.d"
  "/root/repo/src/phy/scrambler.cpp" "src/phy/CMakeFiles/mmx_phy.dir/scrambler.cpp.o" "gcc" "src/phy/CMakeFiles/mmx_phy.dir/scrambler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mmx_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/mmx_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
