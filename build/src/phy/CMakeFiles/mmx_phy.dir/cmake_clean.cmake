file(REMOVE_RECURSE
  "CMakeFiles/mmx_phy.dir/ask.cpp.o"
  "CMakeFiles/mmx_phy.dir/ask.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/ber.cpp.o"
  "CMakeFiles/mmx_phy.dir/ber.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/cfo.cpp.o"
  "CMakeFiles/mmx_phy.dir/cfo.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/coding.cpp.o"
  "CMakeFiles/mmx_phy.dir/coding.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/crc.cpp.o"
  "CMakeFiles/mmx_phy.dir/crc.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/fec.cpp.o"
  "CMakeFiles/mmx_phy.dir/fec.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/frame.cpp.o"
  "CMakeFiles/mmx_phy.dir/frame.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/fsk.cpp.o"
  "CMakeFiles/mmx_phy.dir/fsk.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/joint.cpp.o"
  "CMakeFiles/mmx_phy.dir/joint.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/otam.cpp.o"
  "CMakeFiles/mmx_phy.dir/otam.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/preamble.cpp.o"
  "CMakeFiles/mmx_phy.dir/preamble.cpp.o.d"
  "CMakeFiles/mmx_phy.dir/scrambler.cpp.o"
  "CMakeFiles/mmx_phy.dir/scrambler.cpp.o.d"
  "libmmx_phy.a"
  "libmmx_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
