# Empty compiler generated dependencies file for mmx_phy.
# This may be replaced when dependencies are built.
