file(REMOVE_RECURSE
  "CMakeFiles/mmx_baseline.dir/beam_search.cpp.o"
  "CMakeFiles/mmx_baseline.dir/beam_search.cpp.o.d"
  "CMakeFiles/mmx_baseline.dir/fixed_beam.cpp.o"
  "CMakeFiles/mmx_baseline.dir/fixed_beam.cpp.o.d"
  "CMakeFiles/mmx_baseline.dir/hybrid_mimo.cpp.o"
  "CMakeFiles/mmx_baseline.dir/hybrid_mimo.cpp.o.d"
  "CMakeFiles/mmx_baseline.dir/platforms.cpp.o"
  "CMakeFiles/mmx_baseline.dir/platforms.cpp.o.d"
  "libmmx_baseline.a"
  "libmmx_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
