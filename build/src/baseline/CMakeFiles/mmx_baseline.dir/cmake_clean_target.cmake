file(REMOVE_RECURSE
  "libmmx_baseline.a"
)
