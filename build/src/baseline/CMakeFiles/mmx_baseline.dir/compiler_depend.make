# Empty compiler generated dependencies file for mmx_baseline.
# This may be replaced when dependencies are built.
