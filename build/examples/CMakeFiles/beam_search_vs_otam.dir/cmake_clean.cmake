file(REMOVE_RECURSE
  "CMakeFiles/beam_search_vs_otam.dir/beam_search_vs_otam.cpp.o"
  "CMakeFiles/beam_search_vs_otam.dir/beam_search_vs_otam.cpp.o.d"
  "beam_search_vs_otam"
  "beam_search_vs_otam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_search_vs_otam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
