# Empty dependencies file for beam_search_vs_otam.
# This may be replaced when dependencies are built.
