file(REMOVE_RECURSE
  "CMakeFiles/autonomous_car.dir/autonomous_car.cpp.o"
  "CMakeFiles/autonomous_car.dir/autonomous_car.cpp.o.d"
  "autonomous_car"
  "autonomous_car.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomous_car.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
