
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/autonomous_car.cpp" "examples/CMakeFiles/autonomous_car.dir/autonomous_car.cpp.o" "gcc" "examples/CMakeFiles/autonomous_car.dir/autonomous_car.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mmx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mmx_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mmx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/mmx_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mmx_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/mmx_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/mmx_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/mmx_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mmx_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
