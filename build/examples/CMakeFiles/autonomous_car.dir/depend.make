# Empty dependencies file for autonomous_car.
# This may be replaced when dependencies are built.
