file(REMOVE_RECURSE
  "CMakeFiles/apartment.dir/apartment.cpp.o"
  "CMakeFiles/apartment.dir/apartment.cpp.o.d"
  "apartment"
  "apartment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apartment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
