# Empty dependencies file for apartment.
# This may be replaced when dependencies are built.
