# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smart_home "/root/repo/build/examples/smart_home")
set_tests_properties(example_smart_home PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autonomous_car "/root/repo/build/examples/autonomous_car")
set_tests_properties(example_autonomous_car PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_beam_search_vs_otam "/root/repo/build/examples/beam_search_vs_otam")
set_tests_properties(example_beam_search_vs_otam PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectrum_planner "/root/repo/build/examples/spectrum_planner")
set_tests_properties(example_spectrum_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_warehouse "/root/repo/build/examples/warehouse")
set_tests_properties(example_warehouse PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_apartment "/root/repo/build/examples/apartment")
set_tests_properties(example_apartment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
