# Empty compiler generated dependencies file for mmx_cli.
# This may be replaced when dependencies are built.
