file(REMOVE_RECURSE
  "CMakeFiles/mmx_cli.dir/mmx_cli.cpp.o"
  "CMakeFiles/mmx_cli.dir/mmx_cli.cpp.o.d"
  "mmx_cli"
  "mmx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
