# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_link "/root/repo/build/tools/mmx_cli" "link" "1.0" "2.0" "30" "--blocker")
set_tests_properties(cli_link PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map "/root/repo/build/tools/mmx_cli" "map" "--step" "1.0")
set_tests_properties(cli_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_range "/root/repo/build/tools/mmx_cli" "range" "--max" "10")
set_tests_properties(cli_range PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_multinode "/root/repo/build/tools/mmx_cli" "multinode" "5" "--trials" "5")
set_tests_properties(cli_multinode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_scenario "/root/repo/build/tools/mmx_cli" "scenario" "2" "--duration" "0.5" "--walkers" "1")
set_tests_properties(cli_scenario PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/mmx_cli" "nonsense")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
