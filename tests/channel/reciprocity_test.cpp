// Channel reciprocity: swapping tx and rx must mirror every path
// (equal lengths and losses, departure/arrival angles exchanged) — a
// structural invariant of geometric propagation that any refactor of the
// tracer must preserve. TDD systems (and mmX's own AP->node side
// channel reasoning) rely on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mmx/channel/ray_tracer.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"

namespace mmx::channel {
namespace {

/// Sort keys so forward/backward path sets can be matched up. Symmetric
/// geometries can contain distinct paths with identical length and loss
/// (floor-then-ceiling vs ceiling-then-floor), so the tiebreaker must be
/// the angle that reciprocity maps onto itself: the forward path's
/// departure equals the backward path's arrival.
bool forward_less(const Path& a, const Path& b) {
  if (std::abs(a.length_m - b.length_m) > 1e-9) return a.length_m < b.length_m;
  if (std::abs(a.excess_loss_db - b.excess_loss_db) > 1e-9)
    return a.excess_loss_db < b.excess_loss_db;
  return a.departure_rad < b.departure_rad;
}

bool backward_less(const Path& a, const Path& b) {
  if (std::abs(a.length_m - b.length_m) > 1e-9) return a.length_m < b.length_m;
  if (std::abs(a.excess_loss_db - b.excess_loss_db) > 1e-9)
    return a.excess_loss_db < b.excess_loss_db;
  return a.arrival_rad < b.arrival_rad;
}

void expect_reciprocal(const std::vector<Path>& fwd, const std::vector<Path>& bwd) {
  ASSERT_EQ(fwd.size(), bwd.size());
  std::vector<Path> f = fwd;
  std::vector<Path> b = bwd;
  std::sort(f.begin(), f.end(), forward_less);
  std::sort(b.begin(), b.end(), backward_less);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(f[i].length_m, b[i].length_m, 1e-9);
    EXPECT_NEAR(f[i].excess_loss_db, b[i].excess_loss_db, 1e-9);
    // Departure of the forward path equals arrival of the backward one.
    EXPECT_NEAR(wrap_angle(f[i].departure_rad - b[i].arrival_rad), 0.0, 1e-9);
    EXPECT_NEAR(wrap_angle(f[i].arrival_rad - b[i].departure_rad), 0.0, 1e-9);
  }
}

TEST(Reciprocity, EmptyRoom) {
  Room room(6.0, 4.0);
  RayTracer rt(room);
  expect_reciprocal(rt.trace({1.0, 2.0}, {5.0, 2.5}), rt.trace({5.0, 2.5}, {1.0, 2.0}));
}

TEST(Reciprocity, WithBlockerAndFurniture) {
  Room room(6.0, 4.0);
  room.add_reflector({{2.0, 3.5}, {4.0, 3.5}}, metal());
  room.add_blocker(human_blocker({3.0, 2.0}));
  RayTracer rt(room);
  expect_reciprocal(rt.trace({1.0, 1.5}, {5.0, 2.5}), rt.trace({5.0, 2.5}, {1.0, 1.5}));
}

TEST(Reciprocity, WithPartitions) {
  Room room(8.0, 4.0);
  room.add_partition({{4.0, 0.0}, {4.0, 2.9}}, drywall());
  RayTracer rt(room);
  expect_reciprocal(rt.trace({1.0, 2.0}, {7.0, 2.0}), rt.trace({7.0, 2.0}, {1.0, 2.0}));
}

TEST(Reciprocity, DoubleBounce) {
  Room room(6.0, 4.0);
  RayTracer rt(room);
  expect_reciprocal(rt.trace({1.0, 2.0}, {5.0, 2.5}, 80.0, 2),
                    rt.trace({5.0, 2.5}, {1.0, 2.0}, 80.0, 2));
}

class ReciprocitySweep : public ::testing::TestWithParam<int> {};

TEST_P(ReciprocitySweep, RandomPlacements) {
  Rng rng(GetParam());
  Room room(6.0, 4.0);
  room.add_reflector({{0.5, 3.0}, {2.5, 3.0}}, glass());
  if (GetParam() % 2 == 0) room.add_blocker(human_blocker({3.0, 2.0}));
  RayTracer rt(room);
  for (int i = 0; i < 20; ++i) {
    const Vec2 a{rng.uniform(0.3, 5.7), rng.uniform(0.3, 3.7)};
    const Vec2 b{rng.uniform(0.3, 5.7), rng.uniform(0.3, 3.7)};
    if (distance(a, b) < 0.1) continue;
    expect_reciprocal(rt.trace(a, b, 80.0), rt.trace(b, a, 80.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReciprocitySweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mmx::channel
