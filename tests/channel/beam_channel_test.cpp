// End-to-end per-beam channel gain tests — the physical core of OTAM.
#include "mmx/channel/beam_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/channel/blockage.hpp"
#include "mmx/common/units.hpp"

namespace mmx::channel {
namespace {

struct Scene {
  Room room{6.0, 4.0};
  antenna::MmxBeamPair beams{};
  antenna::Dipole ap_antenna{};
  double freq = 24.125e9;
};

TEST(BeamChannel, FacingNodeBeam1Dominates) {
  // Node at one end facing the AP: Beam 1 (broadside) rides the LoS,
  // Beam 0 has a null toward the AP — strong amplitude contrast (Fig. 4a).
  Scene s;
  RayTracer rt(s.room);
  const Pose node{{1.0, 2.0}, 0.0};             // facing +x
  const Pose ap{{5.0, 2.0}, kPi};               // facing back at the node
  const BeamGains g = compute_beam_gains(rt, node, s.beams, ap, s.ap_antenna, s.freq);
  EXPECT_GT(std::abs(g.h1), std::abs(g.h0));
  EXPECT_GT(g.contrast_db(), 6.0);
  EXPECT_EQ(g.paths_used, 5);
}

TEST(BeamChannel, BlockedLosInvertsContrast) {
  // Fig. 4b: with the LoS blocked, Beam 1's signal is crushed while
  // Beam 0 still reaches the AP off reflections — "all bits are
  // inverted" but contrast survives.
  Scene s;
  RayTracer rt_clear(s.room);
  const Pose node{{1.0, 2.0}, 0.0};
  const Pose ap{{5.0, 2.0}, kPi};
  const BeamGains clear = compute_beam_gains(rt_clear, node, s.beams, ap, s.ap_antenna, s.freq);

  park_blocker_on_los(s.room, node.position, ap.position);
  RayTracer rt_blocked(s.room);
  const BeamGains blocked = compute_beam_gains(rt_blocked, node, s.beams, ap, s.ap_antenna, s.freq);

  // Beam 1 loses a lot; Beam 0 barely changes.
  EXPECT_LT(std::abs(blocked.h1), std::abs(clear.h1) * 0.5);
  EXPECT_NEAR(std::abs(blocked.h0) / std::abs(clear.h0), 1.0, 0.3);
}

TEST(BeamChannel, OtamContrastSurvivesBlockage) {
  // The OTAM claim: with or without the person, |h1| != |h0| by a
  // decodable margin, *without* the node doing anything.
  Scene s;
  const Pose node{{1.0, 2.0}, 0.0};
  const Pose ap{{5.0, 2.0}, kPi};
  RayTracer rt1(s.room);
  EXPECT_GT(compute_beam_gains(rt1, node, s.beams, ap, s.ap_antenna, s.freq).contrast_db(), 3.0);
  park_blocker_on_los(s.room, node.position, ap.position);
  RayTracer rt2(s.room);
  EXPECT_GT(compute_beam_gains(rt2, node, s.beams, ap, s.ap_antenna, s.freq).contrast_db(), 3.0);
}

TEST(BeamChannel, RotatedNodeStillDelivers) {
  // Paper picks orientations in [-60, +60] degrees; the wide beam pair
  // plus reflections keep some energy flowing at the extremes.
  Scene s;
  RayTracer rt(s.room);
  const Pose ap{{5.0, 2.0}, kPi};
  for (double deg : {-60.0, -30.0, 0.0, 30.0, 60.0}) {
    const Pose node{{1.0, 2.0}, deg_to_rad(deg)};
    const BeamGains g = compute_beam_gains(rt, node, s.beams, ap, s.ap_antenna, s.freq);
    EXPECT_GT(std::max(std::abs(g.h0), std::abs(g.h1)), 0.0) << deg;
  }
}

TEST(BeamChannel, NodeAt30DegreesOffsetFavoursBeam0) {
  // Rotate the node so the AP sits on Beam 0's arm (30 degrees off
  // boresight): now Beam 0 should dominate — the "0" and "1" levels swap
  // exactly as OTAM's preamble-based polarity resolution expects.
  Scene s;
  RayTracer rt(s.room);
  const Pose node{{1.0, 2.0}, deg_to_rad(-30.0)};  // boresight now 30 deg off the AP bearing
  const Pose ap{{5.0, 2.0}, kPi};
  const BeamGains g = compute_beam_gains(rt, node, s.beams, ap, s.ap_antenna, s.freq);
  EXPECT_GT(std::abs(g.h0), std::abs(g.h1));
}

TEST(BeamChannel, ReciprocalDistanceScaling) {
  // Doubling the distance costs ~6 dB on the LoS-dominated gain.
  Scene s;
  Room big(20.0, 8.0);
  RayTracer rt(big);
  const Pose ap{{19.0, 4.0}, kPi};
  const Pose near_node{{ap.position.x - 4.0, 4.0}, 0.0};
  const Pose far_node{{ap.position.x - 8.0, 4.0}, 0.0};
  const double g_near =
      std::abs(compute_beam_gains(rt, near_node, s.beams, ap, s.ap_antenna, s.freq).h1);
  const double g_far =
      std::abs(compute_beam_gains(rt, far_node, s.beams, ap, s.ap_antenna, s.freq).h1);
  EXPECT_NEAR(amp_to_db(g_near / g_far), 6.0, 2.5);
}

TEST(BeamChannel, PatternGainMatchesBeamGainForSameArray) {
  // compute_pattern_gain with Beam 1's own array must equal h1.
  Scene s;
  RayTracer rt(s.room);
  const Pose node{{1.5, 1.5}, 0.3};
  const Pose ap{{5.0, 2.5}, kPi};
  const BeamGains g = compute_beam_gains(rt, node, s.beams, ap, s.ap_antenna, s.freq);
  const auto h1 = compute_pattern_gain(rt, node, s.beams.beam(1), ap, s.ap_antenna, s.freq);
  EXPECT_NEAR(std::abs(h1 - g.h1), 0.0, 1e-15);
}

TEST(BeamChannel, ContrastDbOfZeroGainClamps) {
  BeamGains g{};
  g.h0 = {0.0, 0.0};
  g.h1 = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(g.contrast_db(), 200.0);
}

}  // namespace
}  // namespace mmx::channel
