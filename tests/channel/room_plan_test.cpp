// RoomPlan vs RayTracer: the fast path must be BIT-identical — same
// paths, same order, same doubles — or the sim layer's cached==uncached
// and thread-invariance guarantees silently rot (docs/GEOMETRY.md).
#include "mmx/channel/room_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "mmx/channel/ray_tracer.hpp"
#include "mmx/common/rng.hpp"

namespace mmx::channel {
namespace {

::testing::AssertionResult paths_equal(std::span<const Path> ref, std::span<const Path> fast) {
  if (ref.size() != fast.size())
    return ::testing::AssertionFailure()
           << "path count mismatch: ref " << ref.size() << " fast " << fast.size();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const Path& a = ref[i];
    const Path& b = fast[i];
    if (a.kind != b.kind || a.length_m != b.length_m || a.departure_rad != b.departure_rad ||
        a.arrival_rad != b.arrival_rad || a.excess_loss_db != b.excess_loss_db ||
        a.blocker_crossings != b.blocker_crossings || a.wall_index != b.wall_index ||
        a.wall_index2 != b.wall_index2 || !(a.via == b.via) || !(a.via2 == b.via2))
      return ::testing::AssertionFailure()
             << "path " << i << " differs: ref(kind=" << static_cast<int>(a.kind)
             << " len=" << a.length_m << " loss=" << a.excess_loss_db
             << " cross=" << a.blocker_crossings << " w=" << a.wall_index << "/" << a.wall_index2
             << ") fast(kind=" << static_cast<int>(b.kind) << " len=" << b.length_m
             << " loss=" << b.excess_loss_db << " cross=" << b.blocker_crossings
             << " w=" << b.wall_index << "/" << b.wall_index2 << ")";
  }
  return ::testing::AssertionSuccess();
}

Vec2 random_point(Rng& rng, double w, double h) {
  return {rng.uniform(0.05, w - 0.05), rng.uniform(0.05, h - 0.05)};
}

Room random_room(Rng& rng, double& w, double& h) {
  w = rng.uniform(3.0, 15.0);
  h = rng.uniform(3.0, 12.0);
  Room room(w, h);
  const int reflectors = rng.uniform_int(0, 2);
  for (int r = 0; r < reflectors; ++r) {
    const Vec2 a = random_point(rng, w, h);
    const Vec2 d = unit_vector(rng.uniform(0.0, 6.283)) * rng.uniform(0.3, 2.5);
    room.add_reflector({a, a + d}, rng.chance(0.5) ? metal() : wood_furniture());
  }
  const int partitions = rng.uniform_int(0, 2);
  for (int r = 0; r < partitions; ++r) {
    const Vec2 a = random_point(rng, w, h);
    const Vec2 d = unit_vector(rng.uniform(0.0, 6.283)) * rng.uniform(0.5, 4.0);
    room.add_partition({a, a + d}, rng.chance(0.5) ? drywall() : glass());
  }
  const int blockers = rng.uniform_int(0, 6);
  for (int b = 0; b < blockers; ++b)
    room.add_blocker({random_point(rng, w, h), rng.uniform(0.1, 0.6), rng.uniform(5.0, 30.0)});
  return room;
}

// The headline property test: ~12k random (room, endpoints, knobs)
// draws, reference and plan compared field-by-field with exact floating
// point equality. Half the cases force the grid on (grid_min_blockers =
// 0, small cells) so the broad phase is exercised even at low blocker
// counts; the other half run the default config (flat SoA scan below 8
// blockers).
TEST(RoomPlanProperty, BitIdenticalToReferenceTracer) {
  constexpr int kCases = 12000;
  PathList ws;
  for (int c = 0; c < kCases; ++c) {
    Rng rng = Rng::stream(0x700fULL, static_cast<std::uint64_t>(c));
    double w = 0.0;
    double h = 0.0;
    const Room room = random_room(rng, w, h);
    const RayTracer tracer(room);
    RoomPlanConfig cfg;
    if (c % 2 == 1) {
      cfg.grid_min_blockers = 0;
      cfg.grid_cell_m = rng.uniform(0.2, 1.5);
    }
    const RoomPlan plan(room, cfg);

    const Vec2 tx = random_point(rng, w, h);
    Vec2 rx = random_point(rng, w, h);
    if (rx == tx) rx.x += 0.25;
    const int max_bounces = rng.chance(0.35) ? 2 : 1;
    const double max_excess_loss_db = rng.chance(0.2) ? rng.uniform(5.0, 40.0) : 60.0;
    const bool apply_blockers = !rng.chance(0.25);

    const auto ref = tracer.trace(tx, rx, max_excess_loss_db, max_bounces, apply_blockers);
    ws.clear();
    const auto fast = plan.trace_into(tx, rx, ws, max_excess_loss_db, max_bounces,
                                      apply_blockers);
    ASSERT_TRUE(paths_equal(ref, fast)) << "case " << c << " bounces " << max_bounces
                                        << " blockers " << room.blockers().size()
                                        << " grid " << plan.grid_enabled();
  }
}

TEST(RoomPlanProperty, BatchMatchesSingleAndReference) {
  Rng rng(0xba7c4);
  double w = 0.0;
  double h = 0.0;
  Room room = random_room(rng, w, h);
  while (room.blockers().size() < 8)
    room.add_blocker({random_point(rng, w, h), rng.uniform(0.1, 0.5), 20.0});
  const RayTracer tracer(room);
  const RoomPlan plan(room);
  ASSERT_TRUE(plan.grid_enabled());
  const Vec2 ap = random_point(rng, w, h);

  for (const int max_bounces : {1, 2}) {
    for (const bool apply_blockers : {true, false}) {
      ImageTable images;
      plan.build_images(ap, max_bounces, images);
      std::vector<Vec2> nodes;
      for (int i = 0; i < 200; ++i) nodes.push_back(random_point(rng, w, h));

      PathList ws;
      std::vector<std::uint32_t> offsets(nodes.size() + 1);
      const auto all = plan.trace_batch_into(ap, nodes, images, ws, offsets, 60.0, max_bounces,
                                             apply_blockers);
      EXPECT_EQ(all.size(), ws.size());
      EXPECT_EQ(offsets.front(), 0u);
      EXPECT_EQ(offsets.back(), ws.size());

      PathList single;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto ref = tracer.trace(nodes[i], ap, 60.0, max_bounces, apply_blockers);
        ASSERT_TRUE(paths_equal(ref, ws.slice(offsets[i], offsets[i + 1])))
            << "node " << i << " bounces " << max_bounces;
        single.clear();
        const auto one =
            plan.trace_into(nodes[i], ap, single, 60.0, max_bounces, apply_blockers);
        ASSERT_TRUE(paths_equal(one, ws.slice(offsets[i], offsets[i + 1]))) << "node " << i;
      }
    }
  }
}

// The fused dual trace shares one geometric pass between the
// blockers-applied and blocker-free results; both windows must still be
// bit-identical to separate reference runs.
TEST(RoomPlanProperty, DualBatchMatchesTwoReferencePasses) {
  Rng rng(0xd0a1);
  double w = 0.0;
  double h = 0.0;
  Room room = random_room(rng, w, h);
  while (room.blockers().size() < 10)
    room.add_blocker({random_point(rng, w, h), rng.uniform(0.1, 0.5), 22.0});
  const RayTracer tracer(room);
  const RoomPlan plan(room);
  const Vec2 ap = random_point(rng, w, h);

  for (const int max_bounces : {1, 2}) {
    for (const double max_excess : {25.0, 60.0}) {
      ImageTable images;
      plan.build_images(ap, max_bounces, images);
      std::vector<Vec2> nodes;
      for (int i = 0; i < 150; ++i) nodes.push_back(random_point(rng, w, h));

      PathList ws;
      std::vector<std::uint32_t> on(nodes.size() + 1);
      std::vector<std::uint32_t> off(nodes.size() + 1);
      const auto all =
          plan.trace_batch_dual_into(ap, nodes, images, ws, on, off, max_excess, max_bounces);
      EXPECT_EQ(all.size(), ws.size());
      EXPECT_EQ(off.back(), ws.size());
      EXPECT_EQ(on.back(), off.front());  // off windows follow all on windows

      for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto ref_on = tracer.trace(nodes[i], ap, max_excess, max_bounces, true);
        const auto ref_off = tracer.trace(nodes[i], ap, max_excess, max_bounces, false);
        ASSERT_TRUE(paths_equal(ref_on, ws.slice(on[i], on[i + 1])))
            << "gains node " << i << " bounces " << max_bounces;
        ASSERT_TRUE(paths_equal(ref_off, ws.slice(off[i], off[i + 1])))
            << "corridor node " << i << " bounces " << max_bounces;
      }
    }
  }
}

// Grid edge cases the column-walk must survive: a segment running exactly
// along a cell boundary, a disc spanning many cells, and a disc centred
// on a grid line. The invariant is always the same — bit-identity with
// the reference scan.
TEST(RoomPlanGrid, SegmentAlongCellBoundary) {
  Room room(8.0, 8.0);
  for (int i = 0; i < 10; ++i)
    room.add_blocker({{0.8 * (i + 1), 4.0}, 0.25, 15.0});  // centres on the y=4 line
  const RayTracer tracer(room);
  RoomPlanConfig cfg;
  cfg.grid_cell_m = 1.0;  // y=4.0 is an exact cell boundary
  cfg.grid_min_blockers = 0;
  const RoomPlan plan(room, cfg);
  ASSERT_TRUE(plan.grid_enabled());

  PathList ws;
  // Horizontal segment exactly on the boundary row.
  auto ref = tracer.trace({0.5, 4.0}, {7.5, 4.0});
  auto fast = plan.trace_into({0.5, 4.0}, {7.5, 4.0}, ws);
  EXPECT_TRUE(paths_equal(ref, fast));
  // Vertical segment on a column boundary.
  ws.clear();
  ref = tracer.trace({4.0, 0.5}, {4.0, 7.5});
  fast = plan.trace_into({4.0, 0.5}, {4.0, 7.5}, ws);
  EXPECT_TRUE(paths_equal(ref, fast));
}

TEST(RoomPlanGrid, BlockerSpanningManyCells) {
  Room room(10.0, 10.0);
  room.add_blocker({{5.0, 5.0}, 3.0, 25.0});  // 6 m disc across a 1 m grid
  room.add_blocker({{1.0, 9.0}, 0.2, 10.0});
  const RayTracer tracer(room);
  RoomPlanConfig cfg;
  cfg.grid_cell_m = 1.0;
  cfg.grid_min_blockers = 0;
  const RoomPlan plan(room, cfg);
  ASSERT_TRUE(plan.grid_enabled());

  Rng rng(77);
  PathList ws;
  for (int c = 0; c < 500; ++c) {
    const Vec2 tx = random_point(rng, 10.0, 10.0);
    Vec2 rx = random_point(rng, 10.0, 10.0);
    if (rx == tx) rx.x += 0.25;
    const auto ref = tracer.trace(tx, rx, 200.0, 2, true);
    ws.clear();
    const auto fast = plan.trace_into(tx, rx, ws, 200.0, 2, true);
    ASSERT_TRUE(paths_equal(ref, fast)) << "case " << c;
  }
}

TEST(RoomPlan, DegenerateZeroLengthWallsRejected) {
  Room room(4.0, 4.0);
  EXPECT_THROW(room.add_reflector({{1.0, 1.0}, {1.0, 1.0}}, metal()), std::invalid_argument);
  EXPECT_THROW(room.add_partition({{2.0, 2.0}, {2.0, 2.0}}, drywall()), std::invalid_argument);
  // The plan compiles the (still valid) room and matches the reference.
  const RoomPlan plan(room);
  const RayTracer tracer(room);
  PathList ws;
  EXPECT_TRUE(paths_equal(tracer.trace({1.0, 1.0}, {3.0, 3.0}),
                          plan.trace_into({1.0, 1.0}, {3.0, 3.0}, ws)));
}

TEST(RoomPlan, ArgumentAndStalenessChecks) {
  Room room(6.0, 4.0);
  RoomPlan plan(room);
  PathList ws;
  EXPECT_THROW(plan.trace_into({1.0, 1.0}, {1.0, 1.0}, ws), std::invalid_argument);
  EXPECT_THROW(plan.trace_into({1.0, 1.0}, {2.0, 2.0}, ws, 60.0, 3), std::invalid_argument);
  EXPECT_THROW(plan.trace_into({1.0, 1.0}, {2.0, 2.0}, ws, 60.0, 0), std::invalid_argument);

  const RoomPlan empty;
  EXPECT_FALSE(empty.compiled());
  EXPECT_THROW(empty.trace_into({1.0, 1.0}, {2.0, 2.0}, ws), std::logic_error);

  ImageTable images;
  plan.build_images({3.0, 2.0}, 1, images);
  std::vector<Vec2> nodes{{1.0, 1.0}};
  std::vector<std::uint32_t> offsets(2);
  // Wrong endpoint for the table.
  EXPECT_THROW(plan.trace_batch_into({3.0, 2.1}, nodes, images, ws, offsets),
               std::invalid_argument);
  // Table lacks the pair images a 2-bounce batch needs.
  EXPECT_THROW(plan.trace_batch_into({3.0, 2.0}, nodes, images, ws, offsets, 60.0, 2),
               std::invalid_argument);
  // Wrong offsets size.
  std::vector<std::uint32_t> bad(1);
  EXPECT_THROW(plan.trace_batch_into({3.0, 2.0}, nodes, images, ws, bad),
               std::invalid_argument);
  // Stale table: the room mutated after build_images.
  room.add_blocker(human_blocker({2.0, 2.0}));
  plan.rebuild(room);
  EXPECT_THROW(plan.trace_batch_into({3.0, 2.0}, nodes, images, ws, offsets),
               std::invalid_argument);
  // Rebuilt table works again.
  plan.build_images({3.0, 2.0}, 1, images);
  EXPECT_GT(plan.trace_batch_into({3.0, 2.0}, nodes, images, ws, offsets).size(), 0u);
}

TEST(RoomPlan, TracksRoomEpoch) {
  Room room(6.0, 4.0);
  RoomPlan plan(room);
  EXPECT_EQ(plan.room_epoch(), room.epoch());
  const std::size_t blk = room.add_blocker(human_blocker({3.0, 2.0}));
  EXPECT_NE(plan.room_epoch(), room.epoch());
  plan.rebuild(room);
  EXPECT_EQ(plan.room_epoch(), room.epoch());
  EXPECT_EQ(plan.blocker_count(), 1u);

  // A rebuilt plan sees the moved blocker exactly like a fresh tracer.
  room.move_blocker(blk, {1.5, 2.0});
  plan.rebuild(room);
  const RayTracer tracer(room);
  PathList ws;
  const auto ref = tracer.trace({1.0, 2.0}, {5.0, 2.0});
  const auto fast = plan.trace_into({1.0, 2.0}, {5.0, 2.0}, ws);
  EXPECT_TRUE(paths_equal(ref, fast));
}

// The workspace contract: appended slices stay addressable until
// clear(), and once warmed up repeated traces stop growing storage (the
// allocation-free steady state the scale lane depends on).
TEST(PathList, SliceStabilityAndSteadyStateCapacity) {
  Room room(12.0, 8.0);
  room.add_blocker(human_blocker({4.0, 4.0}));
  const RoomPlan plan(room);
  const RayTracer tracer(room);
  PathList ws;
  plan.trace_into({1.0, 1.0}, {11.0, 7.0}, ws);
  const std::size_t end1 = ws.size();
  plan.trace_into({2.0, 5.0}, {11.0, 7.0}, ws);
  // Growth during the second trace may move storage (returned spans are
  // consumed-before-next-trace by contract), but the COMMITTED paths are
  // preserved: both windows still hold exactly the reference results.
  EXPECT_TRUE(paths_equal(tracer.trace({1.0, 1.0}, {11.0, 7.0}), ws.slice(0, end1)));
  EXPECT_TRUE(paths_equal(tracer.trace({2.0, 5.0}, {11.0, 7.0}), ws.slice(end1, ws.size())));

  ws.clear();
  EXPECT_EQ(ws.size(), 0u);
  plan.trace_into({1.0, 1.0}, {11.0, 7.0}, ws);
  const std::size_t warm_capacity = ws.path_capacity();
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    ws.clear();
    plan.trace_into(random_point(rng, 12.0, 8.0), {11.0, 7.0}, ws);
    EXPECT_EQ(ws.path_capacity(), warm_capacity);  // no steady-state growth
  }
}

}  // namespace
}  // namespace mmx::channel
