#include "mmx/channel/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/channel/blockage.hpp"
#include "mmx/channel/room.hpp"

namespace mmx::channel {
namespace {

TEST(RandomWaypoint, StaysInsideArea) {
  Rng rng(1);
  RandomWaypoint w({1.0, 1.0}, 6.0, 4.0, 1.4, rng);
  for (int i = 0; i < 2000; ++i) {
    w.update(0.1, rng);
    const Vec2 p = w.position();
    EXPECT_GE(p.x, 0.3 - 1e-9);
    EXPECT_LE(p.x, 5.7 + 1e-9);
    EXPECT_GE(p.y, 0.3 - 1e-9);
    EXPECT_LE(p.y, 3.7 + 1e-9);
  }
}

TEST(RandomWaypoint, MovesAtConfiguredSpeed) {
  Rng rng(2);
  RandomWaypoint w({1.0, 1.0}, 6.0, 4.0, 1.4, rng);
  const Vec2 before = w.position();
  w.update(0.1, rng);
  // Displacement <= speed * dt (equality unless a waypoint was hit).
  EXPECT_LE(distance(before, w.position()), 1.4 * 0.1 + 1e-9);
}

TEST(RandomWaypoint, EventuallyChangesTarget) {
  Rng rng(3);
  RandomWaypoint w({1.0, 1.0}, 6.0, 4.0, 2.0, rng);
  const Vec2 t0 = w.target();
  for (int i = 0; i < 200; ++i) w.update(0.5, rng);
  EXPECT_NE(t0, w.target());
}

TEST(RandomWaypoint, BadArgsThrow) {
  Rng rng(4);
  EXPECT_THROW(RandomWaypoint({1.0, 1.0}, 6.0, 4.0, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(RandomWaypoint({0.1, 0.1}, 0.5, 0.5, 1.0, rng), std::invalid_argument);
  RandomWaypoint w({1.0, 1.0}, 6.0, 4.0, 1.0, rng);
  EXPECT_THROW(w.update(-1.0, rng), std::invalid_argument);
}

TEST(Pacer, OscillatesBetweenEndpoints) {
  Pacer p({0.0, 0.0}, {2.0, 0.0}, 1.0);
  p.update(2.0);  // reach b exactly
  EXPECT_NEAR(p.position().x, 2.0, 1e-12);
  p.update(1.0);  // turn around, come back 1 m
  EXPECT_NEAR(p.position().x, 1.0, 1e-12);
  p.update(10.0);  // several bounces, still within [0, 2]
  EXPECT_GE(p.position().x, -1e-12);
  EXPECT_LE(p.position().x, 2.0 + 1e-12);
}

TEST(Pacer, BadArgsThrow) {
  EXPECT_THROW(Pacer({0.0, 0.0}, {1.0, 0.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(Pacer({1.0, 1.0}, {1.0, 1.0}, 1.0), std::invalid_argument);
  Pacer p({0.0, 0.0}, {1.0, 0.0}, 1.0);
  EXPECT_THROW(p.update(-0.1), std::invalid_argument);
}

TEST(WalkingCrowd, RegistersAndMovesBlockers) {
  Rng rng(5);
  Room room(6.0, 4.0);
  WalkingCrowd crowd(room, 3, 1.4, rng);
  ASSERT_EQ(room.blockers().size(), 3u);
  const Vec2 before = room.blockers()[0].center;
  for (int i = 0; i < 50; ++i) crowd.update(0.2, rng);
  EXPECT_NE(before, room.blockers()[0].center);
  // All blockers stay in the room.
  for (const Blocker& b : room.blockers()) EXPECT_TRUE(room.contains(b.center));
}

TEST(ParkBlockerOnLos, SitsOnTheSegment) {
  Room room(6.0, 4.0);
  const Vec2 a{1.0, 2.0};
  const Vec2 b{5.0, 2.0};
  park_blocker_on_los(room, a, b, 0.5);
  ASSERT_EQ(room.blockers().size(), 1u);
  EXPECT_NEAR(room.blockers()[0].center.x, 3.0, 1e-12);
  EXPECT_NEAR(room.blockers()[0].center.y, 2.0, 1e-12);
  EXPECT_THROW(park_blocker_on_los(room, a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(park_blocker_on_los(room, a, b, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::channel
