// Second-order (double-bounce) reflection tests.
#include <gtest/gtest.h>

#include <cmath>

#include "mmx/channel/ray_tracer.hpp"
#include "mmx/common/units.hpp"

namespace mmx::channel {
namespace {

TEST(DoubleBounce, DefaultTraceHasNone) {
  Room room(6.0, 4.0);
  RayTracer rt(room);
  for (const Path& p : rt.trace({1.0, 2.0}, {5.0, 2.0})) {
    EXPECT_NE(p.kind, PathKind::kDoubleReflected);
  }
}

TEST(DoubleBounce, TwoBounceTraceIsSuperset) {
  Room room(6.0, 4.0);
  RayTracer rt(room);
  const auto single = rt.trace({1.0, 2.0}, {5.0, 2.0}, 60.0, 1);
  const auto both = rt.trace({1.0, 2.0}, {5.0, 2.0}, 60.0, 2);
  EXPECT_GT(both.size(), single.size());
  // Every single-bounce path still present (same count of LoS+reflected).
  std::size_t non_double = 0;
  for (const Path& p : both) {
    if (p.kind != PathKind::kDoubleReflected) ++non_double;
  }
  EXPECT_EQ(non_double, single.size());
}

TEST(DoubleBounce, FloorCeilingZigZagGeometry) {
  // tx and rx at the same height y=2 in a 4 m tall room: the floor-then-
  // ceiling path reflects at y=0 then y=4; by symmetry of the unfolded
  // image (total vertical travel 2+4+2 = 8 m), horizontal crossings sit
  // at 1/4 and 3/4 of the x span when heights match.
  Room room(12.0, 4.0);
  RayTracer rt(room);
  const Vec2 tx{2.0, 2.0};
  const Vec2 rx{10.0, 2.0};
  const auto paths = rt.trace(tx, rx, 80.0, 2);
  const Path* zigzag = nullptr;
  for (const Path& p : paths) {
    if (p.kind != PathKind::kDoubleReflected) continue;
    if (std::abs(p.via.y) < 1e-9 && std::abs(p.via2.y - 4.0) < 1e-9) zigzag = &p;
  }
  ASSERT_NE(zigzag, nullptr);
  EXPECT_NEAR(zigzag->via.x, 4.0, 1e-9);
  EXPECT_NEAR(zigzag->via2.x, 8.0, 1e-9);
  // Unfolded length: sqrt(dx^2 + 8^2).
  EXPECT_NEAR(zigzag->length_m, std::hypot(8.0, 8.0), 1e-9);
  // Both drywall bounces.
  EXPECT_NEAR(zigzag->excess_loss_db, 2.0 * drywall().reflection_loss_db, 1e-12);
}

TEST(DoubleBounce, LongerAndWeakerThanSingle) {
  Room room(6.0, 4.0);
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0}, 80.0, 2);
  double max_single = 0.0;
  double min_double = 1e9;
  for (const Path& p : paths) {
    if (p.kind == PathKind::kReflected) max_single = std::max(max_single, p.length_m);
    if (p.kind == PathKind::kDoubleReflected) min_double = std::min(min_double, p.length_m);
  }
  EXPECT_GT(min_double, 4.0);  // longer than the LoS at least
  // Double bounces carry two reflection losses.
  for (const Path& p : paths) {
    if (p.kind == PathKind::kDoubleReflected) {
      EXPECT_GE(p.excess_loss_db, 2.0 * drywall().reflection_loss_db - 1e-9);
    }
  }
}

TEST(DoubleBounce, OrderedPairsGiveDistinctPaths) {
  // floor-then-ceiling and ceiling-then-floor are different zig-zags.
  Room room(12.0, 4.0);
  RayTracer rt(room);
  const auto paths = rt.trace({2.0, 2.0}, {10.0, 2.0}, 80.0, 2);
  bool floor_first = false;
  bool ceiling_first = false;
  for (const Path& p : paths) {
    if (p.kind != PathKind::kDoubleReflected) continue;
    if (std::abs(p.via.y) < 1e-9 && std::abs(p.via2.y - 4.0) < 1e-9) floor_first = true;
    if (std::abs(p.via.y - 4.0) < 1e-9 && std::abs(p.via2.y) < 1e-9) ceiling_first = true;
  }
  EXPECT_TRUE(floor_first);
  EXPECT_TRUE(ceiling_first);
}

TEST(DoubleBounce, MaxExcessLossFilters) {
  Room room(6.0, 4.0);
  RayTracer rt(room);
  // Threshold below 2x drywall: no double bounce survives.
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0}, 20.0, 2);
  for (const Path& p : paths) EXPECT_NE(p.kind, PathKind::kDoubleReflected);
}

TEST(DoubleBounce, InvalidBounceCountThrows) {
  Room room(6.0, 4.0);
  RayTracer rt(room);
  EXPECT_THROW(rt.trace({1.0, 2.0}, {5.0, 2.0}, 60.0, 0), std::invalid_argument);
  EXPECT_THROW(rt.trace({1.0, 2.0}, {5.0, 2.0}, 60.0, 3), std::invalid_argument);
}

TEST(DoubleBounce, CornerReflectorRoundTrip) {
  // Two perpendicular metal walls act as a corner reflector: the double
  // bounce off the corner must exist and carry 2x metal loss.
  Room room(6.0, 4.0);
  room.add_reflector({{4.9, 1.0}, {5.9, 1.0}}, metal());   // horizontal lip
  room.add_reflector({{5.9, 1.0}, {5.9, 2.0}}, metal());   // vertical lip
  RayTracer rt(room);
  const auto paths = rt.trace({3.9, 3.0}, {2.5, 2.8}, 80.0, 2);
  bool corner = false;
  for (const Path& p : paths) {
    if (p.kind == PathKind::kDoubleReflected &&
        std::abs(p.excess_loss_db - 2.0 * metal().reflection_loss_db) < 1e-9)
      corner = true;
  }
  EXPECT_TRUE(corner);
}

}  // namespace
}  // namespace mmx::channel
