#include <gtest/gtest.h>

#include "mmx/channel/ray_tracer.hpp"
#include "mmx/common/units.hpp"

namespace mmx::channel {
namespace {

TEST(DelaySpread, SinglePathIsZero) {
  Path p;
  p.length_m = 5.0;
  const std::vector<Path> one{p};
  EXPECT_DOUBLE_EQ(RayTracer::rms_delay_spread_s(one, 24e9), 0.0);
}

TEST(DelaySpread, TwoEqualPathsHalfSeparation) {
  // Two equal-power paths at delays t1, t2: rms spread = |t2-t1|/2.
  Path a;
  a.length_m = 3.0;
  Path b;
  b.length_m = 6.0;
  const std::vector<Path> two{a, b};
  const double dt = 3.0 / kSpeedOfLight;
  EXPECT_NEAR(RayTracer::rms_delay_spread_s(two, 24e9), dt / 2.0, dt * 0.35);
  // (the longer path is weaker, so spread is below the equal-power bound)
  EXPECT_LT(RayTracer::rms_delay_spread_s(two, 24e9), dt / 2.0);
}

TEST(DelaySpread, IndoorRoomIsNanoseconds) {
  // The flat-channel premise behind narrowband OTAM symbols: a 6x4 m
  // room's multipath spread is a handful of ns — tiny against the 100 ns
  // symbols of a 10 Mbps node.
  Room room(6.0, 4.0);
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0});
  const double spread = RayTracer::rms_delay_spread_s(paths, 24e9);
  EXPECT_GT(spread, 0.1e-9);
  EXPECT_LT(spread, 10e-9);
}

TEST(DelaySpread, SuppressingDominantEarlyPathRaisesSpread) {
  // A strong early arrival pins the mean delay; attenuate it (blockage)
  // and the late reflection's weight grows the spread.
  Path early;
  early.length_m = 3.0;
  Path late;
  late.length_m = 9.0;
  late.excess_loss_db = 12.0;
  const std::vector<Path> clear{early, late};

  Path blocked_early = early;
  blocked_early.excess_loss_db = 28.0;
  const std::vector<Path> blocked{blocked_early, late};
  EXPECT_GT(RayTracer::rms_delay_spread_s(blocked, 24e9),
            RayTracer::rms_delay_spread_s(clear, 24e9));
}

TEST(DelaySpread, EmptyPathsThrow) {
  const std::vector<Path> none;
  EXPECT_THROW(RayTracer::rms_delay_spread_s(none, 24e9), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::channel
