#include "mmx/channel/room.hpp"

#include <gtest/gtest.h>

namespace mmx::channel {
namespace {

TEST(Room, RectangleHasFourWalls) {
  Room room(6.0, 4.0);
  EXPECT_EQ(room.walls().size(), 4u);
  EXPECT_DOUBLE_EQ(room.width(), 6.0);
  EXPECT_DOUBLE_EQ(room.height(), 4.0);
}

TEST(Room, ContainsChecksBounds) {
  Room room(6.0, 4.0);
  EXPECT_TRUE(room.contains({3.0, 2.0}));
  EXPECT_TRUE(room.contains({0.0, 0.0}));
  EXPECT_FALSE(room.contains({-0.1, 2.0}));
  EXPECT_FALSE(room.contains({3.0, 4.1}));
}

TEST(Room, AddReflector) {
  Room room(6.0, 4.0);
  room.add_reflector({{1.0, 1.0}, {2.0, 1.0}}, metal());
  EXPECT_EQ(room.walls().size(), 5u);
  EXPECT_EQ(room.walls().back().material.name, "metal");
}

TEST(Room, ZeroLengthReflectorThrows) {
  Room room(6.0, 4.0);
  EXPECT_THROW(room.add_reflector({{1.0, 1.0}, {1.0, 1.0}}, metal()), std::invalid_argument);
}

TEST(Room, BlockerManagement) {
  Room room(6.0, 4.0);
  const std::size_t id = room.add_blocker(human_blocker({3.0, 2.0}));
  ASSERT_EQ(room.blockers().size(), 1u);
  EXPECT_DOUBLE_EQ(room.blockers()[id].center.x, 3.0);
  room.move_blocker(id, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(room.blockers()[id].center.x, 1.0);
  room.clear_blockers();
  EXPECT_TRUE(room.blockers().empty());
}

TEST(Room, InvalidBlockerThrows) {
  Room room(6.0, 4.0);
  EXPECT_THROW(room.add_blocker({{1.0, 1.0}, 0.0, 15.0}), std::invalid_argument);
  EXPECT_THROW(room.add_blocker({{1.0, 1.0}, 0.3, -1.0}), std::invalid_argument);
  EXPECT_THROW(room.move_blocker(5, {0.0, 0.0}), std::out_of_range);
}

TEST(Room, BadDimensionsThrow) {
  EXPECT_THROW(Room(0.0, 4.0), std::invalid_argument);
  EXPECT_THROW(Room(6.0, -1.0), std::invalid_argument);
}

TEST(Materials, LossOrderingPhysical) {
  // Metal reflects hardest, wood softest; all within the paper's
  // "NLoS 10-20 dB below LoS" envelope once path length is added.
  EXPECT_LT(metal().reflection_loss_db, glass().reflection_loss_db);
  EXPECT_LT(glass().reflection_loss_db, drywall().reflection_loss_db);
  EXPECT_LT(drywall().reflection_loss_db, wood_furniture().reflection_loss_db);
}

TEST(Materials, HumanBlockerMatchesPaper) {
  // §6.1 ordering: blocked LoS sits 10-15 dB below NLoS, which itself is
  // 10-20 dB below LoS -> body loss in the 20-35 dB bracket.
  const Blocker b = human_blocker({0.0, 0.0});
  EXPECT_GE(b.loss_db, 20.0);
  EXPECT_LE(b.loss_db, 35.0);
  EXPECT_NEAR(b.radius, 0.25, 0.1);
}

}  // namespace
}  // namespace mmx::channel
