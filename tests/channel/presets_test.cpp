#include "mmx/channel/presets.hpp"

#include <gtest/gtest.h>

#include "mmx/channel/ray_tracer.hpp"
#include "mmx/common/units.hpp"

namespace mmx::channel {
namespace {

TEST(Presets, FurnishedLabGeometry) {
  Room lab = furnished_lab();
  EXPECT_DOUBLE_EQ(lab.width(), 4.0);
  EXPECT_DOUBLE_EQ(lab.height(), 6.0);
  // 4 boundary walls + 6 pieces of furniture.
  EXPECT_EQ(lab.walls().size(), 10u);
  // Furniture never blocks transmission (below the antenna plane).
  for (std::size_t w = 4; w < lab.walls().size(); ++w) {
    EXPECT_FALSE(lab.walls()[w].blocks_transmission);
  }
  EXPECT_TRUE(lab.contains(furnished_lab_ap().position));
}

TEST(Presets, FurnishedLabIsReflectorRich) {
  // Every node position must see strictly more paths than the bare room
  // would offer (LoS + 4 walls).
  Room lab = furnished_lab();
  RayTracer rt(lab);
  const Pose ap = furnished_lab_ap();
  for (double y : {1.0, 2.5, 4.0}) {
    const auto paths = rt.trace({2.0, y}, ap.position);
    EXPECT_GT(paths.size(), 5u) << y;
  }
}

TEST(Presets, RangeHall) {
  Room hall = range_hall();
  EXPECT_DOUBLE_EQ(hall.width(), 22.0);
  EXPECT_TRUE(hall.contains(range_hall_ap().position));
  // 20 m of usable range fits inside.
  EXPECT_TRUE(hall.contains({range_hall_ap().position.x - 20.0, 4.0}));
}

TEST(Presets, ParkPersonKeepsClearOfAp) {
  Room lab = furnished_lab();
  const Vec2 node{2.0, 1.0};
  const Vec2 ap = furnished_lab_ap().position;
  const std::size_t id = park_person(lab, node, ap);
  const Vec2 person = lab.blockers()[id].center;
  // On the segment, at least ~0.9 m from the AP.
  EXPECT_GE(distance(person, ap), 0.9);
  EXPECT_NEAR(point_segment_distance(person, node, ap), 0.0, 1e-9);
}

TEST(Presets, ParkPersonShortLinkUsesMidpoint) {
  Room lab = furnished_lab();
  const Vec2 node{2.0, 5.0};  // 0.9 m from the AP
  const Vec2 ap = furnished_lab_ap().position;
  const std::size_t id = park_person(lab, node, ap);
  const Vec2 person = lab.blockers()[id].center;
  EXPECT_NEAR(distance(person, node), distance(node, ap) / 2.0, 1e-9);
}

}  // namespace
}  // namespace mmx::channel
