#include "mmx/channel/propagation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"

namespace mmx::channel {
namespace {

TEST(Propagation, FreeSpaceMatchesFriis) {
  EXPECT_DOUBLE_EQ(free_space_loss_db(5.0, 24e9), friis_path_loss_db(5.0, 24e9));
}

TEST(Propagation, AtmosphericNegligibleIndoors) {
  // At 18 m (the paper's max range) atmospheric loss is < 0.01 dB.
  EXPECT_LT(atmospheric_loss_db(18.0, 24e9), 0.01);
}

TEST(Propagation, SixtyGhzOxygenPeak) {
  // The 60 GHz band pays ~15 dB/km; at 24 GHz it's ~0.2 dB/km.
  EXPECT_GT(atmospheric_loss_db(1000.0, 60e9), 10.0);
  EXPECT_LT(atmospheric_loss_db(1000.0, 24e9), 1.0);
}

TEST(Propagation, PathLossAddsExcess) {
  const double base = path_loss_db(3.0, 24e9);
  EXPECT_NEAR(path_loss_db(3.0, 24e9, 12.0), base + 12.0, 1e-12);
  EXPECT_THROW(path_loss_db(3.0, 24e9, -1.0), std::invalid_argument);
}

TEST(Propagation, PathGainMagnitude) {
  const auto g = path_gain(2.0, 24e9);
  EXPECT_NEAR(amp_to_db(std::abs(g)), -path_loss_db(2.0, 24e9), 1e-9);
}

TEST(Propagation, PathGainPhaseRotatesWithLength) {
  // Half a wavelength more distance flips the phase.
  const double lambda = wavelength(24e9);
  const auto g1 = path_gain(2.0, 24e9);
  const auto g2 = path_gain(2.0 + lambda / 2.0, 24e9);
  const double dphase = std::arg(g2 * std::conj(g1));
  EXPECT_NEAR(std::abs(dphase), kPi, 1e-6);
}

TEST(Propagation, InverseSquareLaw) {
  const double l1 = path_loss_db(1.0, 24e9);
  const double l10 = path_loss_db(10.0, 24e9);
  EXPECT_NEAR(l10 - l1, 20.0, 0.01);
}

class DistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(DistanceSweep, LossMonotoneIncreasing) {
  const double d = GetParam();
  EXPECT_GT(path_loss_db(d * 1.5, 24e9), path_loss_db(d, 24e9));
}

INSTANTIATE_TEST_SUITE_P(Distances, DistanceSweep, ::testing::Values(0.5, 1.0, 3.0, 6.0, 12.0, 18.0));

}  // namespace
}  // namespace mmx::channel
