// Through-wall (partition) propagation tests — the multi-room smart-home
// scenario of §4.
#include <gtest/gtest.h>

#include <cmath>

#include "mmx/channel/ray_tracer.hpp"
#include "mmx/common/units.hpp"

namespace mmx::channel {
namespace {

const Path* find_los(const std::vector<Path>& paths) {
  for (const Path& p : paths)
    if (p.kind == PathKind::kLineOfSight) return &p;
  return nullptr;
}

TEST(Partition, DrywallAddsTransmissionLossToLos) {
  Room room(8.0, 4.0);
  room.add_partition({{4.0, 0.0}, {4.0, 4.0}}, drywall());
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {7.0, 2.0});
  const Path* los = find_los(paths);
  ASSERT_NE(los, nullptr);
  EXPECT_NEAR(los->excess_loss_db, drywall().transmission_loss_db, 1e-9);
}

TEST(Partition, MetalPartitionEssentiallyKillsThrough) {
  Room room(8.0, 4.0);
  room.add_partition({{4.0, 0.0}, {4.0, 4.0}}, metal());
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {7.0, 2.0});
  const Path* los = find_los(paths);
  // 60 dB through-metal exceeds the 60 dB excess-loss cull by default.
  if (los != nullptr) {
    EXPECT_GE(los->excess_loss_db, 59.0);
  }
}

TEST(Partition, ReflectorDoesNotShadow) {
  // Furniture (add_reflector) reflects but must not attenuate the LoS.
  Room room(8.0, 4.0);
  room.add_reflector({{4.0, 0.0}, {4.0, 4.0}}, metal());
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {7.0, 2.0});
  const Path* los = find_los(paths);
  ASSERT_NE(los, nullptr);
  EXPECT_DOUBLE_EQ(los->excess_loss_db, 0.0);
}

TEST(Partition, OwnReflectionNotSelfShadowed) {
  // A bounce OFF the partition must not also pay its transmission loss.
  Room room(8.0, 4.0);
  room.add_partition({{4.0, 0.0}, {4.0, 4.0}}, drywall());
  RayTracer rt(room);
  // Both endpoints on the same (left) side: the partition reflection
  // exists and costs only the reflection loss.
  const auto paths = rt.trace({1.0, 2.0}, {2.0, 1.0});
  bool found = false;
  for (const Path& p : paths) {
    if (p.kind == PathKind::kReflected && std::abs(p.via.x - 4.0) < 1e-9) {
      EXPECT_NEAR(p.excess_loss_db, drywall().reflection_loss_db, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Partition, DoorwayGapLetsRaysThrough) {
  // Partition with a doorway: the wall spans y in [0, 2.9] only; a
  // reflected path routing through the gap pays no transmission loss.
  Room room(8.0, 4.0);
  room.add_partition({{4.0, 0.0}, {4.0, 2.9}}, drywall());
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {7.0, 2.0});
  // LoS at y=2 crosses the partition (below the doorway top? no — the
  // partition occupies y<=2.9 at x=4, so the LoS at y=2 crosses it).
  const Path* los = find_los(paths);
  ASSERT_NE(los, nullptr);
  EXPECT_GT(los->excess_loss_db, 0.0);
  // But the ceiling (y=4) bounce passes above the partition's extent
  // near the top: reflection point at y=4, legs cross x=4 at y ~3 — in
  // the doorway gap.
  bool clean_detour = false;
  for (const Path& p : paths) {
    if (p.kind != PathKind::kReflected) continue;
    if (std::abs(p.via.y - 4.0) < 1e-9 &&
        std::abs(p.excess_loss_db - drywall().reflection_loss_db) < 1e-9) {
      clean_detour = true;
    }
  }
  EXPECT_TRUE(clean_detour);
}

TEST(Partition, NextRoomLinkBudgetDegradedButAlive) {
  // End-to-end sanity: a bedroom node two drywall rooms from the AP loses
  // ~transmission loss of SNR relative to the same distance in the open.
  Room open_room(8.0, 4.0);
  Room multi_room(8.0, 4.0);
  multi_room.add_partition({{4.0, 0.0}, {4.0, 4.0}}, drywall());
  RayTracer rt_open(open_room);
  RayTracer rt_multi(multi_room);
  const auto open_paths = rt_open.trace({1.0, 2.0}, {7.0, 2.0});
  const auto multi_paths = rt_multi.trace({1.0, 2.0}, {7.0, 2.0});
  const double a_open =
      std::abs(RayTracer::path_amplitude(*find_los(open_paths), 24e9));
  const double a_multi =
      std::abs(RayTracer::path_amplitude(*find_los(multi_paths), 24e9));
  EXPECT_NEAR(amp_to_db(a_open / a_multi), drywall().transmission_loss_db, 0.5);
}

TEST(Partition, ZeroLengthThrows) {
  Room room(8.0, 4.0);
  EXPECT_THROW(room.add_partition({{1.0, 1.0}, {1.0, 1.0}}, drywall()),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmx::channel
