#include "mmx/channel/ray_tracer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"

namespace mmx::channel {
namespace {

// 6 x 4 room matching the paper's §9.2 testbed.
Room paper_room() { return Room(6.0, 4.0); }

const Path* find_los(const std::vector<Path>& paths) {
  for (const Path& p : paths)
    if (p.kind == PathKind::kLineOfSight) return &p;
  return nullptr;
}

TEST(RayTracer, LosPlusFourWallReflections) {
  Room room = paper_room();
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0});
  // LoS + one reflection per wall (all four walls visible in a rectangle).
  EXPECT_EQ(paths.size(), 5u);
  EXPECT_NE(find_los(paths), nullptr);
}

TEST(RayTracer, LosGeometry) {
  Room room = paper_room();
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0});
  const Path* los = find_los(paths);
  ASSERT_NE(los, nullptr);
  EXPECT_NEAR(los->length_m, 4.0, 1e-12);
  EXPECT_NEAR(los->departure_rad, 0.0, 1e-12);          // toward +x
  EXPECT_NEAR(std::abs(los->arrival_rad), kPi, 1e-12);  // energy comes from -x side
  EXPECT_EQ(los->excess_loss_db, 0.0);
  EXPECT_EQ(los->blocker_crossings, 0);
}

TEST(RayTracer, ReflectionGeometryMirrorLaw) {
  // tx and rx symmetric about x=3 at the same height: floor (y=0)
  // reflection point must be exactly at (3, 0) and obey equal angles.
  Room room = paper_room();
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0});
  const Path* floor = nullptr;
  for (const Path& p : paths) {
    if (p.kind == PathKind::kReflected && std::abs(p.via.y) < 1e-9) floor = &p;
  }
  ASSERT_NE(floor, nullptr);
  EXPECT_NEAR(floor->via.x, 3.0, 1e-9);
  // Path length: 2 * sqrt(2^2 + 2^2).
  EXPECT_NEAR(floor->length_m, 2.0 * std::hypot(2.0, 2.0), 1e-9);
  // Reflection loss of drywall.
  EXPECT_NEAR(floor->excess_loss_db, drywall().reflection_loss_db, 1e-12);
}

TEST(RayTracer, NLosWeakerThanLosWithinPaperBounds) {
  // §6.1: "NLoS paths typically experience 10-20 dB higher attenuation
  // than LoS".
  Room room = paper_room();
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0});
  const Path* los = find_los(paths);
  ASSERT_NE(los, nullptr);
  const double los_db = amp_to_db(std::abs(RayTracer::path_amplitude(*los, 24e9)));
  for (const Path& p : paths) {
    if (p.kind != PathKind::kReflected) continue;
    const double nlos_db = amp_to_db(std::abs(RayTracer::path_amplitude(p, 24e9)));
    EXPECT_GT(los_db - nlos_db, 8.0);
    EXPECT_LT(los_db - nlos_db, 25.0);
  }
}

TEST(RayTracer, BlockerAttenuatesLos) {
  Room room = paper_room();
  room.add_blocker(human_blocker({3.0, 2.0}));
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0});
  const Path* los = find_los(paths);
  ASSERT_NE(los, nullptr);
  EXPECT_EQ(los->blocker_crossings, 1);
  EXPECT_NEAR(los->excess_loss_db, human_blocker({0.0, 0.0}).loss_db, 1e-12);
}

TEST(RayTracer, BlockerMissesOffAxisPaths) {
  // A blocker on the LoS midline also sits on the side-wall bounce paths
  // (same height), but the floor/ceiling bounces route around it — those
  // are the NLoS detours OTAM's Beam 0 rides in Fig. 4(b).
  Room room = paper_room();
  room.add_blocker(human_blocker({3.0, 2.0}));
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0});
  for (const Path& p : paths) {
    if (p.kind != PathKind::kReflected) continue;
    const bool vertical_bounce = std::abs(p.via.y) < 1e-9 || std::abs(p.via.y - 4.0) < 1e-9;
    if (vertical_bounce) {
      EXPECT_EQ(p.blocker_crossings, 0);
    } else {
      EXPECT_EQ(p.blocker_crossings, 1);  // side-wall path re-crosses the midline
    }
  }
}

TEST(RayTracer, BlockedLosOrderingMatchesPaper) {
  // §6.1 ordering: LoS > NLoS > blocked-LoS. With a person on the LoS,
  // the strongest NLoS must beat the blocked LoS.
  Room room = paper_room();
  room.add_blocker(human_blocker({3.0, 2.0}));
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0});
  const Path* los = find_los(paths);
  ASSERT_NE(los, nullptr);
  const double blocked_los = amp_to_db(std::abs(RayTracer::path_amplitude(*los, 24e9)));
  double best_nlos = -1e9;
  for (const Path& p : paths) {
    if (p.kind != PathKind::kReflected) continue;
    best_nlos = std::max(best_nlos, amp_to_db(std::abs(RayTracer::path_amplitude(p, 24e9))));
  }
  EXPECT_GT(best_nlos, blocked_los);
}

TEST(RayTracer, MetalReflectorAddsStrongPath) {
  Room room = paper_room();
  room.add_reflector({{2.0, 3.5}, {4.0, 3.5}}, metal());
  RayTracer rt(room);
  const auto paths = rt.trace({1.0, 2.0}, {5.0, 2.0});
  EXPECT_EQ(paths.size(), 6u);  // LoS + 4 walls + metal sheet
  bool found_metal = false;
  for (const Path& p : paths) {
    if (p.kind == PathKind::kReflected && p.excess_loss_db == metal().reflection_loss_db)
      found_metal = true;
  }
  EXPECT_TRUE(found_metal);
}

TEST(RayTracer, ReflectorOutOfViewIgnored) {
  // A reflector whose segment the specular point misses contributes no path.
  Room room = paper_room();
  room.add_reflector({{0.2, 3.9}, {0.4, 3.9}}, metal());  // tiny, far corner
  RayTracer rt(room);
  const auto paths = rt.trace({5.0, 0.5}, {5.5, 0.5});
  EXPECT_EQ(paths.size(), 5u);  // unchanged: LoS + 4 walls
}

TEST(RayTracer, MaxExcessLossDropsWeakPaths) {
  Room room = paper_room();
  RayTracer rt(room);
  const auto all = rt.trace({1.0, 2.0}, {5.0, 2.0}, 60.0);
  const auto tight = rt.trace({1.0, 2.0}, {5.0, 2.0}, 5.0);  // cheaper than drywall's 12 dB
  EXPECT_GT(all.size(), tight.size());
  EXPECT_EQ(tight.size(), 1u);  // only LoS survives
}

TEST(RayTracer, CoincidentEndpointsThrow) {
  Room room = paper_room();
  RayTracer rt(room);
  EXPECT_THROW(rt.trace({1.0, 1.0}, {1.0, 1.0}), std::invalid_argument);
}

TEST(RayTracer, PathAmplitudeDecaysWithLength) {
  Path a;
  a.length_m = 2.0;
  Path b;
  b.length_m = 8.0;
  EXPECT_GT(std::abs(RayTracer::path_amplitude(a, 24e9)),
            std::abs(RayTracer::path_amplitude(b, 24e9)));
}

class PlacementSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlacementSweep, TraceAlwaysFindsLosAndReflections) {
  // Random placements anywhere in the room must always produce the LoS
  // and 4 wall bounces (rectangle geometry guarantees visibility).
  Rng rng(GetParam());
  Room room = paper_room();
  RayTracer rt(room);
  for (int i = 0; i < 50; ++i) {
    const Vec2 tx{rng.uniform(0.2, 5.8), rng.uniform(0.2, 3.8)};
    const Vec2 rx{rng.uniform(0.2, 5.8), rng.uniform(0.2, 3.8)};
    if (distance(tx, rx) < 0.05) continue;
    const auto paths = rt.trace(tx, rx);
    EXPECT_EQ(paths.size(), 5u) << "tx=(" << tx.x << "," << tx.y << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mmx::channel
