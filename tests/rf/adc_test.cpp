#include "mmx/rf/adc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"
#include "mmx/dsp/measure.hpp"
#include "mmx/dsp/tone.hpp"

namespace mmx::rf {
namespace {

TEST(Adc, LsbSize) {
  Adc adc(AdcSpec{.bits = 14, .full_scale = 1.0});
  EXPECT_NEAR(adc.lsb(), 2.0 / 16384.0, 1e-12);
}

TEST(Adc, QuantizationErrorBoundedByHalfLsb) {
  Adc adc(AdcSpec{.bits = 8, .full_scale = 1.0});
  for (double v = -0.99; v < 0.99; v += 0.013) {
    const dsp::Complex q = adc.sample({v, -v});
    EXPECT_LE(std::abs(q.real() - v), adc.lsb() / 2.0 + 1e-12);
    EXPECT_LE(std::abs(q.imag() + v), adc.lsb() / 2.0 + 1e-12);
  }
}

TEST(Adc, ClipsAtFullScale) {
  Adc adc(AdcSpec{.bits = 8, .full_scale = 1.0});
  const dsp::Complex q = adc.sample({5.0, -5.0});
  EXPECT_LE(q.real(), 1.0);
  EXPECT_GE(q.imag(), -1.0);
}

TEST(Adc, IdealSqnrFormula) {
  Adc adc(AdcSpec{.bits = 14, .full_scale = 1.0});
  EXPECT_NEAR(adc.ideal_sqnr_db(), 6.02 * 14 + 1.76, 1e-9);
}

TEST(Adc, MeasuredSqnrNearIdeal) {
  // A near-full-scale complex tone quantized at 10 bits should measure
  // close to the ideal SQNR.
  Adc adc(AdcSpec{.bits = 10, .full_scale = 1.0});
  dsp::Cvec x = dsp::tone(1e6, 91234.0, 65536);
  for (auto& s : x) s *= 0.95;
  const dsp::Cvec q = adc.process(x);
  const double snr = dsp::estimate_snr_db(q, x);
  EXPECT_GT(snr, adc.ideal_sqnr_db() - 4.0);
}

TEST(Adc, MoreBitsLessNoise) {
  dsp::Cvec x = dsp::tone(1e6, 12345.0, 8192);
  for (auto& s : x) s *= 0.9;
  Adc a8(AdcSpec{.bits = 8, .full_scale = 1.0});
  Adc a12(AdcSpec{.bits = 12, .full_scale = 1.0});
  const double snr8 = dsp::estimate_snr_db(a8.process(x), x);
  const double snr12 = dsp::estimate_snr_db(a12.process(x), x);
  EXPECT_GT(snr12, snr8 + 15.0);  // ~24 dB ideally
}

TEST(Adc, BadSpecThrows) {
  EXPECT_THROW(Adc(AdcSpec{.bits = 0, .full_scale = 1.0}), std::invalid_argument);
  EXPECT_THROW(Adc(AdcSpec{.bits = 30, .full_scale = 1.0}), std::invalid_argument);
  EXPECT_THROW(Adc(AdcSpec{.bits = 8, .full_scale = 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::rf
