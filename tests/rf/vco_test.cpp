#include "mmx/rf/vco.hpp"

#include <gtest/gtest.h>

#include "mmx/common/units.hpp"

namespace mmx::rf {
namespace {

TEST(Vco, EndpointsMatchFig7) {
  // Fig. 7: 3.5 V -> 23.95 GHz, 4.9 V -> 24.25 GHz.
  Vco vco;
  EXPECT_NEAR(vco.frequency_hz(3.5), 23.95e9, 1e6);
  EXPECT_NEAR(vco.frequency_hz(4.9), 24.25e9, 1e6);
}

TEST(Vco, CoversEntireIsmBand) {
  // Paper §9.1: "The provided frequency range covers the entire 24 GHz
  // ISM band" (24.0-24.25 GHz).
  Vco vco;
  EXPECT_TRUE(vco.covers(kIsmLowHz));
  EXPECT_TRUE(vco.covers(kIsmHighHz));
  EXPECT_TRUE(vco.covers(kIsmCenterHz));
  EXPECT_FALSE(vco.covers(25.0e9));
}

TEST(Vco, TuningCurveMonotonic) {
  Vco vco;
  double prev = 0.0;
  for (double v = 3.5; v <= 4.9; v += 0.01) {
    const double f = vco.frequency_hz(v);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(Vco, InverseRoundTrip) {
  Vco vco;
  for (double f = 23.96e9; f < 24.25e9; f += 17e6) {
    const double v = vco.voltage_for(f);
    EXPECT_GE(v, 3.5 - 1e-9);
    EXPECT_LE(v, 4.9 + 1e-9);
    EXPECT_NEAR(vco.frequency_hz(v), f, 1.0);  // 1 Hz round trip
  }
}

TEST(Vco, SensitivityPositiveEverywhere) {
  Vco vco;
  for (double v = 3.5; v <= 4.9; v += 0.05) {
    EXPECT_GT(vco.sensitivity_hz_per_v(v), 0.0);
  }
}

TEST(Vco, SensitivitySupportsFskNudge) {
  // Joint ASK-FSK needs a small frequency step from a small voltage nudge
  // (paper §6.3). With Kv ~ 200 MHz/V, a 10 mV nudge gives ~2 MHz.
  Vco vco;
  const double kv = vco.sensitivity_hz_per_v(4.2);
  const double df = kv * 0.010;
  EXPECT_GT(df, 0.5e6);
  EXPECT_LT(df, 10e6);
}

TEST(Vco, OutOfRangeThrows) {
  Vco vco;
  EXPECT_THROW(vco.frequency_hz(3.0), std::out_of_range);
  EXPECT_THROW(vco.frequency_hz(5.5), std::out_of_range);
  EXPECT_THROW(vco.voltage_for(23.0e9), std::out_of_range);
  EXPECT_THROW(vco.voltage_for(25.0e9), std::out_of_range);
}

TEST(Vco, BadSpecThrows) {
  VcoSpec s;
  s.v_min = 5.0;
  s.v_max = 4.0;
  EXPECT_THROW(Vco{s}, std::invalid_argument);
  VcoSpec s2;
  s2.curvature = 0.7;
  EXPECT_THROW(Vco{s2}, std::invalid_argument);
}

TEST(Vco, JitterIsZeroMeanAndBounded) {
  VcoSpec s;
  s.freq_jitter_hz = 10e3;
  Vco vco(s);
  Rng rng(1);
  double acc = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) acc += vco.frequency_with_jitter_hz(4.0, rng) - vco.frequency_hz(4.0);
  EXPECT_NEAR(acc / n, 0.0, 500.0);
}

TEST(Vco, LinearWhenCurvatureZero) {
  VcoSpec s;
  s.curvature = 0.0;
  Vco vco(s);
  const double mid = vco.frequency_hz(4.2);
  EXPECT_NEAR(mid, (23.95e9 + 24.25e9) / 2.0, 1e3);
}

TEST(Vco, TemperatureDriftShiftsCurve) {
  Vco vco;
  const double f_ref = vco.frequency_hz(4.2);
  // At the reference temperature the curves agree.
  EXPECT_NEAR(vco.frequency_at_temperature_hz(4.2, 298.0), f_ref, 1.0);
  // +20 K of cabin heat: ~-20 MHz of drift (tempco -1 MHz/K) — squarely
  // in the CFO corrector's capture range relative to MHz tone spacings.
  EXPECT_NEAR(vco.frequency_at_temperature_hz(4.2, 318.0), f_ref - 20e6, 1e3);
  EXPECT_THROW(vco.frequency_at_temperature_hz(4.2, 0.0), std::invalid_argument);
}

class VcoVoltageSweep : public ::testing::TestWithParam<double> {};

TEST_P(VcoVoltageSweep, FrequencyWithinSpecRange) {
  Vco vco;
  const double f = vco.frequency_hz(GetParam());
  EXPECT_GE(f, 23.95e9 - 1.0);
  EXPECT_LE(f, 24.25e9 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Voltages, VcoVoltageSweep,
                         ::testing::Values(3.5, 3.8, 4.0, 4.2, 4.5, 4.7, 4.9));

}  // namespace
}  // namespace mmx::rf
