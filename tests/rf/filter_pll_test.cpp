#include <gtest/gtest.h>

#include "mmx/common/units.hpp"
#include "mmx/rf/filter.hpp"
#include "mmx/rf/pll.hpp"

namespace mmx::rf {
namespace {

TEST(CoupledLineFilter, CenterInsertionLossMatchesPaper) {
  // Paper §8.2: centre 24 GHz, passband insertion loss 5 dB.
  CoupledLineFilter f;
  EXPECT_NEAR(f.gain_db(24.0e9), -5.0, 1e-9);
}

TEST(CoupledLineFilter, SymmetricAboutCenter) {
  CoupledLineFilter f;
  EXPECT_NEAR(f.gain_db(23.5e9), f.gain_db(24.5e9), 1e-9);
}

TEST(CoupledLineFilter, PassbandFlatStopbandSteep) {
  CoupledLineFilter f;
  // Inside the ISM band: within ~3 dB of centre loss.
  EXPECT_GT(f.gain_db(24.2e9), -8.0);
  // 3 GHz out: heavily rejected.
  EXPECT_LT(f.gain_db(27.0e9), -40.0);
  // WiFi/LTE bands: essentially blocked.
  EXPECT_LT(f.gain_db(5.8e9), -80.0);
}

TEST(CoupledLineFilter, EdgeSolverConsistent) {
  CoupledLineFilter f;
  const double lo = f.lower_edge_hz(20.0);
  const double hi = f.upper_edge_hz(20.0);
  EXPECT_LT(lo, 24.0e9);
  EXPECT_GT(hi, 24.0e9);
  // Response at the computed edges is IL + 20 dB.
  EXPECT_NEAR(f.gain_db(lo), -25.0, 0.1);
  EXPECT_NEAR(f.gain_db(hi), -25.0, 0.1);
}

TEST(CoupledLineFilter, HigherOrderSteeperSkirt) {
  CoupledLineFilterSpec s3;
  s3.order = 3;
  CoupledLineFilterSpec s5 = s3;
  s5.order = 5;
  CoupledLineFilter f3(s3);
  CoupledLineFilter f5(s5);
  EXPECT_LT(f5.gain_db(26.0e9), f3.gain_db(26.0e9));
}

TEST(CoupledLineFilter, BadSpecThrows) {
  CoupledLineFilterSpec s;
  s.bandwidth_hz = 0.0;
  EXPECT_THROW(CoupledLineFilter{s}, std::invalid_argument);
  CoupledLineFilterSpec s2;
  s2.order = 0;
  EXPECT_THROW(CoupledLineFilter{s2}, std::invalid_argument);
  CoupledLineFilter f;
  EXPECT_THROW(f.lower_edge_hz(0.0), std::invalid_argument);
}

TEST(Pll, TunesTo10GHzForMmxAp) {
  Pll pll;
  const double f = pll.tune(10.0e9);
  EXPECT_TRUE(pll.locked());
  EXPECT_NEAR(f, 10.0e9, pll.spec().pfd_hz / 2.0);
}

TEST(Pll, SnapsToPfdGrid) {
  Pll pll;
  const double f = pll.tune(10.000037e9);
  const double n = f / pll.spec().pfd_hz;
  EXPECT_NEAR(n, std::round(n), 1e-9);
  EXPECT_LE(std::abs(pll.tune_error_hz()), pll.spec().pfd_hz / 2.0);
}

TEST(Pll, OutOfRangeThrows) {
  Pll pll;
  EXPECT_THROW(pll.tune(1e9), std::out_of_range);
  EXPECT_THROW(pll.tune(20e9), std::out_of_range);
}

TEST(Pll, SettleTime) {
  Pll pll;
  // 100 kHz loop -> 40 us settle.
  EXPECT_NEAR(pll.settle_time_s(), 40e-6, 1e-9);
}

TEST(Pll, BadSpecThrows) {
  PllSpec s;
  s.reference_hz = 0.0;
  EXPECT_THROW(Pll{s}, std::invalid_argument);
  PllSpec s2;
  s2.f_min_hz = 10e9;
  s2.f_max_hz = 5e9;
  EXPECT_THROW(Pll{s2}, std::invalid_argument);
}

}  // namespace
}  // namespace mmx::rf
