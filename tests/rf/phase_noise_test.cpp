#include "mmx/rf/phase_noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"
#include "mmx/dsp/measure.hpp"
#include "mmx/dsp/tone.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/otam.hpp"

namespace mmx::rf {
namespace {

TEST(PhaseNoise, LorentzianSkirtRollsOff20dbPerDecade) {
  PhaseNoise pn(PhaseNoiseSpec{.linewidth_hz = 100e3});
  const double l1 = pn.ssb_dbc_per_hz(1e6);
  const double l10 = pn.ssb_dbc_per_hz(10e6);
  EXPECT_NEAR(l1 - l10, 20.0, 0.1);
}

TEST(PhaseNoise, NarrowerLinewidthIsQuieter) {
  PhaseNoise wide(PhaseNoiseSpec{.linewidth_hz = 1e6});
  PhaseNoise narrow(PhaseNoiseSpec{.linewidth_hz = 1e3});
  EXPECT_LT(narrow.ssb_dbc_per_hz(1e6), wide.ssb_dbc_per_hz(1e6) - 25.0);
}

TEST(PhaseNoise, DriftGrowsAsSqrtTime) {
  PhaseNoise pn;
  EXPECT_NEAR(pn.rms_drift_rad(4e-6) / pn.rms_drift_rad(1e-6), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(pn.rms_drift_rad(0.0), 0.0);
}

TEST(PhaseNoise, ProcessIsUnitModulus) {
  Rng rng(1);
  PhaseNoise pn;
  const auto p = pn.process(1000, 10e6, rng);
  for (const auto& s : p) EXPECT_NEAR(std::abs(s), 1.0, 1e-12);
}

TEST(PhaseNoise, MeasuredDriftMatchesFormula) {
  Rng rng(2);
  // Keep the expected drift well under a radian: arg() of the end-to-end
  // rotation wraps at +/-pi.
  PhaseNoise pn(PhaseNoiseSpec{.linewidth_hz = 1e3});
  const double fs = 10e6;
  const std::size_t n = 1000;  // 100 us -> expected rms ~0.79 rad
  // Average the end-to-end phase drift variance over realizations.
  double acc = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const auto p = pn.process(n, fs, rng);
    const double dphi = std::arg(p.back() * std::conj(p.front()));
    acc += dphi * dphi;
  }
  const double measured_rms = std::sqrt(acc / trials);
  const double expected = pn.rms_drift_rad(static_cast<double>(n - 1) / fs);
  EXPECT_NEAR(measured_rms / expected, 1.0, 0.15);
}

TEST(PhaseNoise, ApplyPreservesEnvelope) {
  Rng rng(3);
  PhaseNoise pn;
  const auto x = dsp::tone(10e6, 1e6, 2048);
  const auto y = pn.apply(x, 10e6, rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i]), std::abs(x[i]), 1e-12);
  }
}

TEST(PhaseNoise, OtamSurvivesRealisticLinewidth) {
  // FSK spacing is MHz-scale while the VCO linewidth is ~100 kHz: the
  // joint demodulator must shrug phase noise off (envelope detection and
  // tone-energy measurement are both phase-insensitive).
  Rng rng(4);
  phy::PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  rf::SpdtSwitch sw;
  const phy::Bits prefix{1, 0, 1, 0};
  phy::Bits bits = prefix;
  for (int i = 0; i < 300; ++i) bits.push_back(rng.uniform_int(0, 1));
  const phy::OtamChannel ch{{0.2, 0.0}, {1.0, 0.0}};
  auto rx = phy::otam_synthesize(bits, cfg, ch, sw);
  PhaseNoise pn(PhaseNoiseSpec{.linewidth_hz = 200e3});
  rx = pn.apply(rx, cfg.sample_rate_hz(), rng);
  const auto d = phy::joint_demodulate(rx, cfg, prefix);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
  EXPECT_EQ(errors, 0u);
}

TEST(PhaseNoise, Validation) {
  EXPECT_THROW(PhaseNoise(PhaseNoiseSpec{.linewidth_hz = 0.0}), std::invalid_argument);
  PhaseNoise pn;
  EXPECT_THROW(pn.ssb_dbc_per_hz(0.0), std::invalid_argument);
  EXPECT_THROW(pn.rms_drift_rad(-1.0), std::invalid_argument);
  Rng rng(5);
  EXPECT_THROW(pn.process(10, 0.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::rf
