#include <gtest/gtest.h>

#include "mmx/common/units.hpp"
#include "mmx/rf/budget.hpp"
#include "mmx/rf/chain.hpp"

namespace mmx::rf {
namespace {

TEST(Cascade, SingleStage) {
  CascadeNoise c;
  c.add_stage({"LNA", 25.0, 2.0});
  EXPECT_NEAR(c.total_gain_db(), 25.0, 1e-12);
  EXPECT_NEAR(c.total_noise_figure_db(), 2.0, 1e-12);
}

TEST(Cascade, FriisFormulaKnownCase) {
  // Classic example: two identical 10 dB gain / 3 dB NF stages:
  // F = 2 + (2-1)/10 = 2.1 -> 3.22 dB.
  CascadeNoise c;
  c.add_stage({"a", 10.0, 3.0});
  c.add_stage({"b", 10.0, 3.0});
  EXPECT_NEAR(c.total_noise_figure_db(),
              lin_to_db(db_to_lin(3.0) + (db_to_lin(3.0) - 1.0) / 10.0), 1e-9);
}

TEST(Cascade, LnaFirstBeatsLnaAfterFilter) {
  // The paper's design argument (§5.2): LNA placed first minimizes the
  // total NF. Compare LNA->filter vs filter->LNA.
  CascadeNoise lna_first;
  lna_first.add_stage({"LNA", 25.0, 2.0});
  lna_first.add_stage({"filter", -5.0, 5.0});
  CascadeNoise filter_first;
  filter_first.add_stage({"filter", -5.0, 5.0});
  filter_first.add_stage({"LNA", 25.0, 2.0});
  EXPECT_LT(lna_first.total_noise_figure_db(), filter_first.total_noise_figure_db() - 4.0);
}

TEST(Cascade, EmptyChainIsTransparent) {
  CascadeNoise c;
  EXPECT_DOUBLE_EQ(c.total_gain_db(), 0.0);
  EXPECT_DOUBLE_EQ(c.total_noise_figure_db(), 0.0);
}

TEST(Cascade, NegativeNfThrows) {
  CascadeNoise c;
  EXPECT_THROW(c.add_stage({"bad", 10.0, -1.0}), std::invalid_argument);
}

TEST(ReceiverChain, NoiseFigureDominatedByLna) {
  ReceiverChain rx;
  // With a 25 dB LNA in front, the cascade NF should be close to the
  // LNA's 2 dB (paper's rationale), certainly below 4 dB.
  EXPECT_LT(rx.noise_figure_db(), 4.0);
  EXPECT_GE(rx.noise_figure_db(), 2.0);
}

TEST(ReceiverChain, SnrIsLinearInRxPower) {
  ReceiverChain rx;
  const double s1 = rx.snr_db(-60.0);
  const double s2 = rx.snr_db(-50.0);
  EXPECT_NEAR(s2 - s1, 10.0, 1e-12);
}

TEST(ReceiverChain, NoiseFloorFor25MhzChannel) {
  // -174 + 10log10(25e6) + NF ~ -100 + NF dBm.
  ReceiverChain rx;
  EXPECT_NEAR(rx.noise_floor_dbm(), -174.0 + 74.0 + rx.noise_figure_db(), 0.5);
}

TEST(ReceiverChain, BadSpecThrows) {
  ReceiverChainSpec s;
  s.noise_bandwidth_hz = 0.0;
  EXPECT_THROW(ReceiverChain{s}, std::invalid_argument);
}

TEST(Budget, NodeMatchesPaperHeadline) {
  // Paper: node consumes 1.1 W, costs ~$110, 11 nJ/bit at 100 Mbps.
  const Budget node = mmx_node_budget();
  EXPECT_NEAR(node.total_power_w(), 1.1, 0.01);
  EXPECT_NEAR(node.total_cost_usd(), 110.0, 1.0);
  EXPECT_NEAR(node.energy_per_bit_j(100e6), 11e-9, 0.2e-9);
}

TEST(Budget, NodeBeatsWifiEnergyPerBit) {
  // Table 1: WiFi 17.5 nJ/bit; mmX 11 nJ/bit.
  const Budget node = mmx_node_budget();
  EXPECT_LT(node.energy_per_bit_j(100e6), 17.5e-9);
}

TEST(Budget, ApReasonable) {
  const Budget ap = mmx_ap_budget();
  EXPECT_GT(ap.total_power_w(), 0.0);
  EXPECT_LT(ap.total_cost_usd(), 400.0);  // the "low-cost AP" claim
}

TEST(Budget, InvalidItemsThrow) {
  Budget b;
  EXPECT_THROW(b.add({"bad", -1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(b.add({"bad", 0.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(b.energy_per_bit_j(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::rf
