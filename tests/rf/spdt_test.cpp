#include "mmx/rf/spdt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"

namespace mmx::rf {
namespace {

TEST(Spdt, ThroughPathLoss) {
  SpdtSwitch sw;
  // 2 dB insertion loss -> amplitude gain ~0.794.
  EXPECT_NEAR(amp_to_db(sw.through_gain()), -2.0, 1e-9);
}

TEST(Spdt, IsolationSuppressesOffPort) {
  SpdtSwitch sw;
  EXPECT_NEAR(amp_to_db(sw.leak_gain()), -65.0, 1e-9);
}

TEST(Spdt, RoutesToSelectedPort) {
  SpdtSwitch sw;
  const dsp::Complex in{1.0, 0.0};
  sw.select(0);
  auto out0 = sw.route(in);
  EXPECT_GT(std::abs(out0.port0), std::abs(out0.port1) * 100.0);
  sw.select(1);
  auto out1 = sw.route(in);
  EXPECT_GT(std::abs(out1.port1), std::abs(out1.port0) * 100.0);
}

TEST(Spdt, EnergyNeverCreated) {
  SpdtSwitch sw;
  const dsp::Complex in{0.7, -0.4};
  const auto out = sw.route(in);
  EXPECT_LE(std::norm(out.port0) + std::norm(out.port1), std::norm(in));
}

TEST(Spdt, MaxBitRateIs100Mbps) {
  // Paper §9.1: "maximum operating frequency of the RF switch is 100 MHz,
  // which limits the data rate of mmX's nodes to 100 Mbps".
  SpdtSwitch sw;
  EXPECT_DOUBLE_EQ(sw.max_bit_rate(), 100e6);
  EXPECT_NO_THROW(sw.check_symbol_rate(100e6));
  EXPECT_THROW(sw.check_symbol_rate(101e6), std::invalid_argument);
  EXPECT_THROW(sw.check_symbol_rate(0.0), std::invalid_argument);
}

TEST(Spdt, InvalidPortThrows) {
  SpdtSwitch sw;
  EXPECT_THROW(sw.select(2), std::invalid_argument);
  EXPECT_THROW(sw.select(-1), std::invalid_argument);
}

TEST(Spdt, BadSpecThrows) {
  SpdtSpec s;
  s.isolation_db = 1.0;  // below insertion loss: nonphysical
  EXPECT_THROW(SpdtSwitch{s}, std::invalid_argument);
  SpdtSpec s2;
  s2.insertion_loss_db = -1.0;
  EXPECT_THROW(SpdtSwitch{s2}, std::invalid_argument);
  SpdtSpec s3;
  s3.max_toggle_rate_hz = 0.0;
  EXPECT_THROW(SpdtSwitch{s3}, std::invalid_argument);
}

TEST(Spdt, NodeRadiatedPowerMatchesPaper) {
  // VCO +12 dBm through the 2 dB switch = 10 dBm radiated (paper §8.1:
  // "The radiated power by the antenna is 10 dBm which complies with FCC
  // regulations").
  SpdtSwitch sw;
  const double vco_out_w = dbm_to_watt(12.0);
  const double radiated_w = vco_out_w * sw.through_gain() * sw.through_gain();
  EXPECT_NEAR(watt_to_dbm(radiated_w), 10.0, 1e-9);
}

}  // namespace
}  // namespace mmx::rf
