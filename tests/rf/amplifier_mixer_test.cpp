#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"
#include "mmx/dsp/tone.hpp"
#include "mmx/dsp/types.hpp"
#include "mmx/rf/amplifier.hpp"
#include "mmx/rf/mixer.hpp"

namespace mmx::rf {
namespace {

TEST(Amplifier, SmallSignalGain) {
  Rng rng(1);
  Amplifier lna = make_hmc751_lna(25e6);
  // -60 dBm input tone, well below compression.
  dsp::Cvec x = dsp::tone(100e6, 1e6, 10000);
  dsp::set_mean_power(x, dbm_to_watt(-60.0));
  const dsp::Cvec y = lna.process(x, rng);
  const double gain_db = lin_to_db(dsp::mean_power(y) / dsp::mean_power(x));
  EXPECT_NEAR(gain_db, 25.0, 0.3);
}

TEST(Amplifier, NoiseFigureDegradesSnrByNf) {
  Rng rng(2);
  const double bw = 25e6;
  Amplifier lna = make_hmc751_lna(bw);
  // Input exactly at thermal floor + 20 dB: output SNR should be
  // ~20 - NF = 18 dB (input itself is noiseless here, so the only noise
  // is the LNA's (F-1)kTB plus the implicit kTB we account in the check).
  const double kTB = kBoltzmann * kT0Kelvin * bw;
  dsp::Cvec x = dsp::tone(100e6, 1e6, 200000);
  dsp::set_mean_power(x, kTB * db_to_lin(20.0));
  const dsp::Cvec clean = x;
  const dsp::Cvec y = lna.process(x, rng);
  // Measure noise as the residual around the scaled clean signal.
  const double added_noise = lna.input_noise_power_w();
  EXPECT_NEAR(lin_to_db(added_noise / kTB), lin_to_db(db_to_lin(2.0) - 1.0), 0.2);
  EXPECT_GT(dsp::mean_power(y), 0.0);
}

TEST(Amplifier, SaturatesAboveP1db) {
  Rng rng(3);
  Amplifier lna = make_hmc751_lna(25e6);
  // Input that would linearly produce +25 dBm out (15 dB over P1dB).
  dsp::Cvec x = dsp::tone(100e6, 1e6, 1000);
  dsp::set_mean_power(x, dbm_to_watt(0.0));
  const dsp::Cvec y = lna.process(x, rng);
  // Output power clamps near the 10 dBm saturation level.
  EXPECT_LT(watt_to_dbm(dsp::mean_power(y)), 11.0);
}

TEST(Amplifier, BadArgsThrow) {
  AmplifierSpec s;
  s.noise_figure_db = -1.0;
  EXPECT_THROW(Amplifier(AmplifierSpec{s}, 1e6), std::invalid_argument);
  EXPECT_THROW(Amplifier(AmplifierSpec{}, 0.0), std::invalid_argument);
}

TEST(Mixer, SubharmonicDoublesLo) {
  // Paper §8.2: 10 GHz PLL, doubled internally, downconverts 24 GHz to
  // 4 GHz IF.
  SubharmonicMixer mx;
  EXPECT_DOUBLE_EQ(mx.effective_lo_hz(10e9), 20e9);
  EXPECT_DOUBLE_EQ(mx.if_frequency_hz(24e9, 10e9), 4e9);
}

TEST(Mixer, IfStaysInUsrpRange) {
  // Any ISM-band carrier must land below the CBX daughterboard's 6 GHz.
  SubharmonicMixer mx;
  for (double f = kIsmLowHz; f <= kIsmHighHz; f += 10e6) {
    EXPECT_LT(mx.if_frequency_hz(f, 10e9), 6e9);
  }
}

TEST(Mixer, ConversionLossApplied) {
  SubharmonicMixer mx;
  dsp::Cvec x(100, dsp::Complex{1.0, 0.0});
  const dsp::Cvec y = mx.process(x);
  EXPECT_NEAR(lin_to_db(dsp::mean_power(y) / dsp::mean_power(x)), -9.0, 1e-9);
}

TEST(Mixer, BadArgsThrow) {
  MixerSpec s;
  s.conversion_loss_db = -1.0;
  EXPECT_THROW(SubharmonicMixer{s}, std::invalid_argument);
  SubharmonicMixer mx;
  EXPECT_THROW(mx.if_frequency_hz(0.0, 10e9), std::invalid_argument);
  EXPECT_THROW(mx.if_frequency_hz(24e9, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::rf
