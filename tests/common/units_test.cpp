#include "mmx/common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mmx {
namespace {

TEST(Units, DbLinearRoundTrip) {
  for (double db : {-40.0, -3.0, 0.0, 3.0, 10.0, 27.5}) {
    EXPECT_NEAR(lin_to_db(db_to_lin(db)), db, 1e-12);
  }
}

TEST(Units, DbReferencePoints) {
  EXPECT_NEAR(db_to_lin(0.0), 1.0, 1e-15);
  EXPECT_NEAR(db_to_lin(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_lin(3.0), 2.0, 0.01);
  EXPECT_NEAR(amp_to_db(10.0), 20.0, 1e-12);
  EXPECT_NEAR(db_to_amp(6.0), 2.0, 0.01);
}

TEST(Units, DbmWattRoundTrip) {
  EXPECT_NEAR(watt_to_dbm(1.0), 30.0, 1e-12);
  EXPECT_NEAR(dbm_to_watt(0.0), 1e-3, 1e-15);
  EXPECT_NEAR(dbm_to_watt(10.0), 10e-3, 1e-12);  // paper: node Tx power 10 dBm
  for (double dbm : {-90.0, -30.0, 0.0, 10.0, 30.0}) {
    EXPECT_NEAR(watt_to_dbm(dbm_to_watt(dbm)), dbm, 1e-12);
  }
}

TEST(Units, AngleConversions) {
  EXPECT_NEAR(deg_to_rad(180.0), kPi, 1e-15);
  EXPECT_NEAR(rad_to_deg(kPi / 2.0), 90.0, 1e-12);
}

TEST(Units, WrapAngleStaysInRange) {
  for (double a = -25.0; a <= 25.0; a += 0.37) {
    const double w = wrap_angle(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    // Same direction modulo 2*pi.
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
  }
}

TEST(Units, WavelengthAt24GHz) {
  // 24 GHz -> ~12.5 mm, the "millimeter wave" premise of the paper.
  EXPECT_NEAR(wavelength(24e9), 0.0125, 1e-4);
  EXPECT_NEAR(wavenumber(24e9), kTwoPi / wavelength(24e9), 1e-9);
}

TEST(Units, FriisPathLoss) {
  // FSPL at 1 m, 24 GHz = 20 log10(4*pi/0.01249...) ~ 60.1 dB.
  EXPECT_NEAR(friis_path_loss_db(1.0, 24e9), 60.05, 0.2);
  // +6 dB per distance doubling.
  const double d1 = friis_path_loss_db(2.0, 24e9);
  const double d2 = friis_path_loss_db(4.0, 24e9);
  EXPECT_NEAR(d2 - d1, 6.02, 0.01);
  EXPECT_THROW(friis_path_loss_db(0.0, 24e9), std::invalid_argument);
  EXPECT_THROW(friis_path_loss_db(1.0, -1.0), std::invalid_argument);
}

TEST(Units, ThermalNoise) {
  // kT0B for 1 Hz ~ -174 dBm.
  EXPECT_NEAR(thermal_noise_dbm(1.0), -173.98, 0.1);
  // 250 MHz ISM band with a 2 dB NF LNA: -174 + 84 + 2 ~ -88 dBm.
  EXPECT_NEAR(thermal_noise_dbm(250e6, 2.0), -88.0, 0.3);
  EXPECT_THROW(thermal_noise_dbm(0.0), std::invalid_argument);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ(24_GHz, 24e9);
  EXPECT_DOUBLE_EQ(2.5_GHz, 2.5e9);
  EXPECT_DOUBLE_EQ(250_MHz, 250e6);
  EXPECT_DOUBLE_EQ(100_Mbps, 100e6);
  EXPECT_DOUBLE_EQ(25_kHz, 25e3);
}

TEST(Units, IsmBandPlanMatchesPaper) {
  EXPECT_DOUBLE_EQ(kIsmBandwidthHz, 250e6);  // paper §7a: 250 MHz at 24 GHz
  EXPECT_GT(kIsmCenterHz, kIsmLowHz);
  EXPECT_LT(kIsmCenterHz, kIsmHighHz);
}

}  // namespace
}  // namespace mmx
