#include "mmx/common/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"

namespace mmx {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
}

TEST(Vec2, NormAndAngle) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_NEAR((Vec2{1.0, 1.0}).angle(), kPi / 4.0, 1e-12);
  const Vec2 u = (Vec2{10.0, 0.0}).normalized();
  EXPECT_NEAR(u.x, 1.0, 1e-15);
  EXPECT_NEAR(u.y, 0.0, 1e-15);
  EXPECT_THROW((Vec2{0.0, 0.0}).normalized(), std::domain_error);
}

TEST(Vec2, UnitVector) {
  const Vec2 u = unit_vector(deg_to_rad(90.0));
  EXPECT_NEAR(u.x, 0.0, 1e-12);
  EXPECT_NEAR(u.y, 1.0, 1e-12);
}

TEST(Segment, MirrorAcrossVerticalWall) {
  // Wall x = 2 (from (2,0) to (2,5)); mirror of (0,1) is (4,1).
  const Segment wall{{2.0, 0.0}, {2.0, 5.0}};
  const Vec2 m = wall.mirror({0.0, 1.0});
  EXPECT_NEAR(m.x, 4.0, 1e-12);
  EXPECT_NEAR(m.y, 1.0, 1e-12);
}

TEST(Segment, MirrorIsInvolution) {
  const Segment wall{{0.0, 0.0}, {3.0, 4.0}};
  const Vec2 p{1.7, -2.3};
  const Vec2 mm = wall.mirror(wall.mirror(p));
  EXPECT_NEAR(mm.x, p.x, 1e-12);
  EXPECT_NEAR(mm.y, p.y, 1e-12);
}

TEST(Segment, MirrorOfPointOnLineIsItself) {
  const Segment wall{{0.0, 0.0}, {1.0, 1.0}};
  const Vec2 p{0.5, 0.5};
  const Vec2 m = wall.mirror(p);
  EXPECT_NEAR(m.x, p.x, 1e-12);
  EXPECT_NEAR(m.y, p.y, 1e-12);
}

TEST(Segment, IntersectCrossing) {
  const Segment s{{0.0, 0.0}, {2.0, 2.0}};
  const auto hit = s.intersect({0.0, 2.0}, {2.0, 0.0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-12);
  EXPECT_NEAR(hit->y, 1.0, 1e-12);
}

TEST(Segment, IntersectMissesWhenOutsideRange) {
  const Segment s{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_FALSE(s.intersect({2.0, -1.0}, {2.0, 1.0}).has_value());  // beyond the segment
  EXPECT_FALSE(s.intersect({0.5, 1.0}, {0.5, 2.0}).has_value());   // query stops short
}

TEST(Segment, IntersectParallelReturnsNothing) {
  const Segment s{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_FALSE(s.intersect({0.0, 1.0}, {1.0, 1.0}).has_value());
  // Collinear overlap treated as grazing.
  EXPECT_FALSE(s.intersect({-1.0, 0.0}, {2.0, 0.0}).has_value());
}

TEST(Geometry, SegmentHitsDisc) {
  EXPECT_TRUE(segment_hits_disc({0.0, 0.0}, {10.0, 0.0}, {5.0, 0.2}, 0.3));
  EXPECT_FALSE(segment_hits_disc({0.0, 0.0}, {10.0, 0.0}, {5.0, 1.0}, 0.3));
  // Disc behind the segment start does not block.
  EXPECT_FALSE(segment_hits_disc({0.0, 0.0}, {10.0, 0.0}, {-2.0, 0.0}, 0.3));
}

TEST(Segment, PrecomputeIsBitwiseTransparent) {
  // Precompute caches exactly the values the accessors would derive, so
  // mirror/intersect produce the SAME BITS with or without it — the
  // invariant the RoomPlan fast path rests on.
  const Segment cold{{0.3, -1.7}, {4.1, 2.9}};
  Segment warm = cold;
  warm.precompute();
  EXPECT_FALSE(cold.precomputed());
  EXPECT_TRUE(warm.precomputed());
  EXPECT_EQ(cold.length(), warm.length());
  EXPECT_EQ(cold.delta(), warm.delta());
  EXPECT_EQ(cold.unit_dir(), warm.unit_dir());

  const Vec2 probes[] = {{0.0, 0.0}, {-2.5, 3.5}, {1.0, 1.0}, {7.7, -0.2}};
  for (const Vec2 p : probes) {
    const Vec2 mc = cold.mirror(p);
    const Vec2 mw = warm.mirror(p);
    EXPECT_EQ(mc, mw);
  }
  for (const Vec2 p : probes) {
    const auto hc = cold.intersect(p, {2.0, 0.5});
    const auto hw = warm.intersect(p, {2.0, 0.5});
    ASSERT_EQ(hc.has_value(), hw.has_value());
    if (hc) {
      EXPECT_EQ(*hc, *hw);
    }
  }
}

TEST(Segment, PrecomputeZeroLengthIsSafeNoOp) {
  Segment s{{1.0, 1.0}, {1.0, 1.0}};
  s.precompute();
  EXPECT_FALSE(s.precomputed());
  EXPECT_EQ(s.length(), 0.0);
  EXPECT_EQ(s.delta(), (Vec2{0.0, 0.0}));
}

TEST(Geometry, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(point_segment_distance({0.0, 1.0}, {-1.0, 0.0}, {1.0, 0.0}), 1.0);
  // Beyond an endpoint: distance to the endpoint.
  EXPECT_NEAR(point_segment_distance({3.0, 4.0}, {-1.0, 0.0}, {0.0, 0.0}), 5.0, 1e-12);
  // Degenerate segment.
  EXPECT_NEAR(point_segment_distance({3.0, 4.0}, {0.0, 0.0}, {0.0, 0.0}), 5.0, 1e-12);
}

}  // namespace
}  // namespace mmx
