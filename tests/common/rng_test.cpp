#include "mmx/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mmx {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    saw_lo |= (v == 0);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(3);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(2.0, 1.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ChanceProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(5);
  Rng child = parent.fork();
  // Child stream should not equal parent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.uniform() == child.uniform()) ++same;
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace mmx
