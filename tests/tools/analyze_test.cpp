// Fixture-driven tests for the mmx_analyze core: every rule family gets
// positive, suppressed, and tricky-lexing cases. The lexing fixtures pin
// exactly the classes of input the retired regex-based mmx_lint got
// wrong — raw strings with embedded quotes, multi-line raw strings,
// commented-out code, digit separators, and macro bodies.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "include_graph.hpp"
#include "lexer.hpp"
#include "rules.hpp"
#include "sarif.hpp"

namespace mmx::analyze {
namespace {

// Lex + classify + run the per-file rules + apply inline suppressions,
// the way analyze_repo does for one file.
std::vector<Finding> run_rules(const std::string& src, const std::string& rel) {
  LexedFile f = lex(src, rel);
  std::vector<Finding> findings;
  run_file_rules(f, classify(rel), findings);
  std::map<std::string, std::vector<Suppression>> sups;
  if (!f.suppressions.empty()) sups[rel] = f.suppressions;
  apply_inline_suppressions(sups, findings);
  return findings;
}

std::size_t count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenKindsAndPositions) {
  const LexedFile f = lex("int x = 42;\ndouble y_hz = 1.5e9;\n", "src/sim/a.cpp");
  ASSERT_EQ(f.tokens.size(), 10u);
  EXPECT_TRUE(f.tokens[0].is_id("int"));
  EXPECT_EQ(f.tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(f.tokens[3].text, "42");
  EXPECT_EQ(f.tokens[5].line, 2u);
  EXPECT_TRUE(f.tokens[5].is_id("double"));
  EXPECT_EQ(f.tokens[8].text, "1.5e9");
}

TEST(Lexer, CommentsAreNotTokens) {
  const LexedFile f = lex("int a; // trailing float comment\n/* block\nfloat\n*/ int b;\n",
                          "src/dsp/a.cpp");
  for (const Token& t : f.tokens) EXPECT_NE(t.text, "float");
  ASSERT_EQ(f.tokens.size(), 6u);
  EXPECT_EQ(f.tokens[5].text, ";");
  EXPECT_EQ(f.tokens[3].line, 4u);  // `int b` sits after the block comment
}

TEST(Lexer, StringAndCharLiterals) {
  const LexedFile f = lex("auto s = \"float \\\" mt19937\"; char c = 'f';\n", "src/dsp/a.cpp");
  ASSERT_GE(f.tokens.size(), 4u);
  EXPECT_EQ(count_rule(run_rules("const char* s = \"float\";", "src/dsp/a.cpp"), "no-float"), 0u);
  const Token& str = f.tokens[3];
  EXPECT_EQ(str.kind, TokKind::kString);
  EXPECT_NE(str.text.find("mt19937"), std::string::npos);  // content kept, not re-tokenized
}

TEST(Lexer, DigitSeparatorsDoNotOpenCharLiterals) {
  // The regex scanner treated the ' in 1'000'000 as a char-literal open
  // and blanked real code after it. The lexer keeps one number token.
  const LexedFile f = lex("std::size_t n = 1'000'000; float f;\n", "src/dsp/a.cpp");
  bool found = false;
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::kNumber && t.text == "1'000'000") found = true;
  EXPECT_TRUE(found);
  EXPECT_EQ(count_rule(run_rules("std::size_t n = 1'000'000; float f;\n", "src/dsp/a.cpp"),
                       "no-float"),
            1u);
}

TEST(Lexer, RawStringWithEmbeddedQuote) {
  // Regression the old scanner cannot pass: it closed the literal at the
  // embedded quote and saw `mt19937` as code (a false positive).
  const std::string src = "const char* doc = R\"(say \"std::mt19937\" here)\"; int x;\n";
  const LexedFile f = lex(src, "src/sim/a.cpp");
  ASSERT_GE(f.tokens.size(), 3u);
  EXPECT_EQ(count_rule(run_rules(src, "src/sim/a.cpp"), "rng-discipline"), 0u);
  // The identifier after the literal is still lexed as code.
  EXPECT_TRUE(f.tokens[f.tokens.size() - 3].is_id("int"));
}

TEST(Lexer, MultiLineRawString) {
  const std::string src =
      "const char* kDoc = R\"doc(\nstd::mt19937 rng;  // what NOT to do\nfloat f;\n)doc\";\n"
      "int after = 1;\n";
  const LexedFile f = lex(src, "src/dsp/a.cpp");
  const std::vector<Finding> findings = run_rules(src, "src/dsp/a.cpp");
  EXPECT_EQ(count_rule(findings, "rng-discipline"), 0u);
  EXPECT_EQ(count_rule(findings, "no-float"), 0u);
  EXPECT_TRUE(f.tokens[f.tokens.size() - 5].is_id("int"));
  EXPECT_EQ(f.tokens[f.tokens.size() - 5].line, 5u);  // newlines inside the literal counted
}

TEST(Lexer, PreprocessorIncludesExtracted) {
  const LexedFile f = lex("#include \"mmx/dsp/fft.hpp\"\n#include <vector>\nint x;\n",
                          "src/phy/a.cpp");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].path, "mmx/dsp/fft.hpp");
  EXPECT_FALSE(f.includes[0].angled);
  EXPECT_TRUE(f.includes[1].angled);
  EXPECT_EQ(f.includes[1].line, 2u);
  // Include targets never appear as code tokens.
  for (const Token& t : f.tokens) EXPECT_NE(t.text, "vector");
}

TEST(Lexer, MacroBodiesAreScanned) {
  // #define bodies land in pp_tokens, so token rules still see them; a
  // continuation line keeps the directive's own line number.
  const LexedFile f = lex("#define BAD_SEED() \\\n  std::rand()\nint x;\n", "src/sim/a.cpp");
  bool saw_rand = false;
  for (const Token& t : f.pp_tokens) saw_rand |= t.is_id("rand");
  EXPECT_TRUE(saw_rand);
  EXPECT_EQ(count_rule(run_rules("#define BAD_SEED() std::rand()\n", "src/sim/a.cpp"),
                       "rng-discipline"),
            1u);
}

TEST(Lexer, SuppressionParsing) {
  const LexedFile f = lex(
      "int a;  // mmx-analyze: allow(no-float) -- validated fixture\n"
      "int b;  // mmx-lint: allow(trig-per-sample) -- legacy spelling\n"
      "int c;  // mmx-analyze: allow(db-arith)\n",
      "src/dsp/a.cpp");
  ASSERT_EQ(f.suppressions.size(), 3u);
  EXPECT_EQ(f.suppressions[0].rule, "no-float");
  EXPECT_TRUE(f.suppressions[0].reasoned);
  EXPECT_EQ(f.suppressions[1].rule, "trig-per-sample");
  EXPECT_EQ(f.suppressions[1].line, 2u);
  EXPECT_FALSE(f.suppressions[2].reasoned);
}

// ---------------------------------------------------------------------------
// units-suffix
// ---------------------------------------------------------------------------

constexpr const char* kPublicHeader = "src/rf/include/mmx/rf/amp.hpp";

TEST(UnitsSuffix, FlagsMissingSuffix) {
  const auto f = run_rules("struct A { double tx_power; };", kPublicHeader);
  ASSERT_EQ(count_rule(f, "units-suffix"), 1u);
  EXPECT_EQ(f[0].symbol, "tx_power");
}

TEST(UnitsSuffix, AcceptsUnitAndDimensionlessSuffixes) {
  const auto f = run_rules(
      "struct A { double tx_power_dbm; double gain_lin; double freq_hz; double snr_db; };",
      kPublicHeader);
  EXPECT_EQ(count_rule(f, "units-suffix"), 0u);
}

TEST(UnitsSuffix, FunctionNamesExempt) {
  EXPECT_EQ(count_rule(run_rules("double noise_figure(double x_db);", kPublicHeader),
                       "units-suffix"),
            0u);
}

TEST(UnitsSuffix, OnlyPublicHeaders) {
  EXPECT_EQ(count_rule(run_rules("double tx_power;", "src/rf/amp.cpp"), "units-suffix"), 0u);
}

TEST(UnitsSuffix, MemberTrailingUnderscoreAndReferences) {
  const auto f = run_rules("struct A { double& noise_power_; };", kPublicHeader);
  ASSERT_EQ(count_rule(f, "units-suffix"), 1u);
  EXPECT_EQ(f[0].symbol, "noise_power_");
}

// ---------------------------------------------------------------------------
// rng-discipline
// ---------------------------------------------------------------------------

TEST(RngDiscipline, FlagsEnginesAndSeeds) {
  const auto f = run_rules(
      "void f() { std::mt19937 g; srand(1); auto t = time(nullptr); std::random_device rd; }",
      "src/sim/a.cpp");
  EXPECT_EQ(count_rule(f, "rng-discipline"), 4u);
}

TEST(RngDiscipline, RandRequiresCallOrQualification) {
  EXPECT_EQ(count_rule(run_rules("int rand;", "src/sim/a.cpp"), "rng-discipline"), 0u);
  EXPECT_EQ(count_rule(run_rules("int x = rand();", "src/sim/a.cpp"), "rng-discipline"), 1u);
  EXPECT_EQ(count_rule(run_rules("int x = std::rand ();", "src/sim/a.cpp"), "rng-discipline"),
            1u);
}

TEST(RngDiscipline, RngHppOwnsTheEngine) {
  LexedFile f = lex("std::mt19937 engine_;", "src/common/include/mmx/common/rng.hpp");
  std::vector<Finding> findings;
  run_file_rules(f, classify(f.rel), findings);
  EXPECT_EQ(count_rule(findings, "rng-discipline"), 0u);
}

TEST(RngDiscipline, CommentedOutCodeDoesNotFire) {
  EXPECT_EQ(count_rule(run_rules("// std::mt19937 old_way;\nint x;\n", "src/sim/a.cpp"),
                       "rng-discipline"),
            0u);
}

// ---------------------------------------------------------------------------
// no-float / db-arith
// ---------------------------------------------------------------------------

TEST(NoFloat, HotDirsOnly) {
  EXPECT_EQ(count_rule(run_rules("float x;", "src/dsp/a.cpp"), "no-float"), 1u);
  EXPECT_EQ(count_rule(run_rules("float x;", "src/sim/a.cpp"), "no-float"), 0u);
}

TEST(DbArith, FlagsHandRolledConversions) {
  EXPECT_EQ(count_rule(run_rules("double y = std::pow(10, x / 10);", "tests/a.cpp"), "db-arith"),
            1u);
  EXPECT_EQ(count_rule(run_rules("double y = 20 * log10(v);", "tests/a.cpp"), "db-arith"), 1u);
  EXPECT_EQ(count_rule(run_rules("double y = 10.0 * std::log10(v);", "tests/a.cpp"), "db-arith"),
            1u);
}

TEST(DbArith, StrictPow10InsideSrcOnly) {
  // Any pow(10, ...) is suspect inside src/, but not in tests/.
  EXPECT_EQ(count_rule(run_rules("double y = std::pow(10, z);", "src/mac/a.cpp"), "db-arith"),
            1u);
  EXPECT_EQ(count_rule(run_rules("double y = std::pow(10, z);", "tests/a.cpp"), "db-arith"), 0u);
  EXPECT_EQ(count_rule(run_rules("double y = std::pow(2.0, z);", "src/mac/a.cpp"), "db-arith"),
            0u);
}

TEST(DbArith, UnitsFilesExempt) {
  LexedFile f = lex("double lin = std::pow(10.0, db / 10.0);", "src/common/units.cpp");
  std::vector<Finding> findings;
  run_file_rules(f, classify(f.rel), findings);
  EXPECT_EQ(count_rule(findings, "db-arith"), 0u);
}

// ---------------------------------------------------------------------------
// trig-per-sample
// ---------------------------------------------------------------------------

TEST(TrigPerSample, FlagsLoopTrigOnly) {
  EXPECT_EQ(count_rule(run_rules("void f() { double a = std::sin(x); }", "src/dsp/a.cpp"),
                       "trig-per-sample"),
            0u);
  EXPECT_EQ(count_rule(
                run_rules("void f() { for (int i = 0; i < n; ++i) y[i] = std::sin(i * w); }",
                          "src/dsp/a.cpp"),
                "trig-per-sample"),
            1u);
}

TEST(TrigPerSample, BracelessBodyAndHeader) {
  EXPECT_EQ(count_rule(run_rules("void f() { while (k--) acc += std::cos(k * w); }",
                                 "src/dsp/a.cpp"),
                       "trig-per-sample"),
            1u);
  // After a braceless body's ';' the loop is over.
  EXPECT_EQ(count_rule(run_rules("void f() { for (;;) step(); double a = std::sin(x); }",
                                 "src/dsp/a.cpp"),
                       "trig-per-sample"),
            0u);
}

TEST(TrigPerSample, OnlyDspKernelTus) {
  EXPECT_EQ(count_rule(run_rules("void f() { for (;;) y = std::sin(x); }", "src/phy/a.cpp"),
                       "trig-per-sample"),
            0u);
  EXPECT_EQ(count_rule(
                run_rules("void f() { for (;;) y = std::sin(x); }", "src/dsp/include/a.hpp"),
                "trig-per-sample"),
            0u);
}

TEST(TrigPerSample, CommentedOutLoopDoesNotArmTheTracker) {
  // A `for (...)` inside a comment must not put the scanner in loop
  // state — another regex-era false-positive class.
  const auto f = run_rules("// for (int i = 0; i < n; ++i)\ndouble a = std::sin(x);\n",
                           "src/dsp/a.cpp");
  EXPECT_EQ(count_rule(f, "trig-per-sample"), 0u);
}

TEST(TrigPerSample, ReasonedAllowSuppresses) {
  const auto f = run_rules(
      "void f() { for (int i = 0; i < n; ++i) w[i] = std::cos(i * a); }  // mmx-analyze: "
      "allow(trig-per-sample) -- window design, setup only\n",
      "src/dsp/a.cpp");
  EXPECT_EQ(count_rule(f, "trig-per-sample"), 0u);
  EXPECT_EQ(count_rule(f, "suppression-reason"), 0u);
}

TEST(TrigPerSample, UnreasonedAllowIsItselfAFinding) {
  const auto f = run_rules(
      "void f() { for (;;) w = std::cos(a); }  // mmx-analyze: allow(trig-per-sample)\n",
      "src/dsp/a.cpp");
  EXPECT_EQ(count_rule(f, "trig-per-sample"), 0u);  // still suppressed
  EXPECT_EQ(count_rule(f, "suppression-reason"), 1u);
}

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

TEST(HotPathAlloc, FlagsAllocationsInIntoKernels) {
  const auto f = run_rules(
      "void ask_into(std::span<int> out) { std::vector<int> tmp; tmp.push_back(1); "
      "auto* p = new int[4]; }",
      "src/phy/a.cpp");
  EXPECT_EQ(count_rule(f, "hot-path-alloc"), 3u);
}

TEST(HotPathAlloc, HotClassMethodsCoveredCtorExempt) {
  const auto f = run_rules(
      "Nco::Nco(double r) { table_.resize(256); }\n"
      "void Nco::retune(double f) { scratch_.resize(9); }\n",
      "src/dsp/a.cpp");
  ASSERT_EQ(count_rule(f, "hot-path-alloc"), 1u);
  EXPECT_EQ(f[0].line, 2u);
}

TEST(HotPathAlloc, InClassInlineMethodsCovered) {
  const auto f = run_rules(
      "class FramePipeline { void warm() { buf_.reserve(64); } };\n"
      "class Cold { void warm() { buf_.reserve(64); } };\n",
      "src/phy/include/mmx/phy/p.hpp");
  EXPECT_EQ(count_rule(f, "hot-path-alloc"), 1u);
}

TEST(HotPathAlloc, CallSitesAndNonHotFunctionsIgnored) {
  const auto f = run_rules(
      "void helper() { std::vector<int> fine; fine.push_back(1); ask_into(fine); }",
      "src/phy/a.cpp");
  EXPECT_EQ(count_rule(f, "hot-path-alloc"), 0u);
}

TEST(HotPathAlloc, ReferencesAndPointersDoNotConstruct) {
  const auto f = run_rules(
      "void fill_into(const Cvec& in, Cvec* out) { const Cvec& alias = in; use(alias, out); }",
      "src/dsp/a.cpp");
  EXPECT_EQ(count_rule(f, "hot-path-alloc"), 0u);
}

TEST(HotPathAlloc, HotFreeFunctionsCovered) {
  const auto f =
      run_rules("const FftPlan& fft_plan(std::size_t n) { cache.resize(n); }", "src/dsp/a.cpp");
  EXPECT_EQ(count_rule(f, "hot-path-alloc"), 1u);
}

TEST(HotPathAlloc, GeometryPlanClassesCoveredCtorExempt) {
  const auto f = run_rules(
      "RoomPlan::RoomPlan(const Room& r) { walls_.reserve(4); }\n"
      "void RoomPlan::rebuild(const Room& r) { walls_.push_back(rec); }\n"
      "void PathList::clear() { spare_.resize(8); }\n",
      "src/channel/room_plan.cpp");
  ASSERT_EQ(count_rule(f, "hot-path-alloc"), 2u);
  EXPECT_EQ(f[0].line, 2u);  // ctor on line 1 is exempt
  EXPECT_EQ(f[1].line, 3u);
}

TEST(HotPathAlloc, GeometryPlanSuppressionHonored) {
  const auto f = run_rules(
      "void PathList::ensure_paths(std::size_t n) {\n"
      "  storage_.resize(n);  // mmx-analyze: allow(hot-path-alloc) -- amortized growth\n"
      "}\n"
      "std::span<const Path> RoomPlan::trace_into(Vec2 a, Vec2 b, PathList& out) {\n"
      "  out.scratch.push_back(1);\n"
      "}\n",
      "src/channel/room_plan.cpp");
  ASSERT_EQ(count_rule(f, "hot-path-alloc"), 1u);  // only the unsuppressed trace_into alloc
  EXPECT_EQ(f[0].line, 5u);
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

TEST(Determinism, FlagsUnorderedContainers) {
  EXPECT_EQ(count_rule(run_rules("std::unordered_map<int, int> m;", "src/sim/a.cpp"),
                       "determinism"),
            1u);
  EXPECT_EQ(count_rule(run_rules("std::unordered_set<int> s;", "bench/a.cpp"), "determinism"),
            1u);
}

TEST(Determinism, FlagsPointerKeysAndAddressValues) {
  EXPECT_EQ(count_rule(run_rules("std::map<Node*, int> by_node;", "src/sim/a.cpp"),
                       "determinism"),
            1u);
  EXPECT_EQ(count_rule(run_rules("auto k = reinterpret_cast<std::uintptr_t>(p);",
                                 "src/sim/a.cpp"),
                       "determinism"),
            1u);
}

TEST(Determinism, CleanConstructsAndScope) {
  EXPECT_EQ(count_rule(run_rules("std::map<int, int> m;", "src/sim/a.cpp"), "determinism"), 0u);
  EXPECT_EQ(count_rule(run_rules("std::map<int, Node*> m;", "src/sim/a.cpp"), "determinism"),
            0u);  // pointer *values* are fine; only keys order output
  EXPECT_EQ(count_rule(run_rules("std::unordered_map<int, int> m;", "src/phy/a.cpp"),
                       "determinism"),
            0u);  // outside src/sim + bench
}

// ---------------------------------------------------------------------------
// mac-rng
// ---------------------------------------------------------------------------

TEST(MacRng, FlagsOwnedAndConstructedRng) {
  EXPECT_EQ(count_rule(run_rules("Rng rng_(42);", "src/mac/init_protocol.cpp"), "mac-rng"), 1u);
  EXPECT_EQ(count_rule(run_rules("auto r = Rng::stream(seed, 3);", "src/mac/arq.cpp"),
                       "mac-rng"),
            1u);
  EXPECT_EQ(count_rule(run_rules("Rng* rng = nullptr;", "src/mac/include/mmx/mac/a.hpp"),
                       "mac-rng"),
            1u);
  // Macro bodies are scanned too.
  EXPECT_EQ(count_rule(run_rules("#define MAKE_RNG() \\\n  Rng(7)\n", "src/mac/a.cpp"),
                       "mac-rng"),
            1u);
}

TEST(MacRng, CallerSuppliedReferencesAndScope) {
  EXPECT_EQ(count_rule(run_rules("double next_delay_s(Rng& rng, double hint_s);",
                                 "src/mac/include/mmx/mac/init_protocol.hpp"),
                       "mac-rng"),
            0u);
  EXPECT_EQ(count_rule(run_rules("void serve(SideChannel& ch, const Rng& rng);",
                                 "src/mac/side_channel.cpp"),
                       "mac-rng"),
            0u);
  // Commented-out construction never fires.
  EXPECT_EQ(count_rule(run_rules("// Rng rng(42);\nint x;\n", "src/mac/a.cpp"), "mac-rng"), 0u);
  // Outside src/mac the scenario layer may build streams freely.
  EXPECT_EQ(count_rule(run_rules("Rng rng = Rng::stream(seed, 2 + i);", "src/sim/a.cpp"),
                       "mac-rng"),
            0u);
}

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

TEST(Layering, ModuleResolution) {
  EXPECT_EQ(module_of("src/dsp/fft.cpp").value(), "dsp");
  EXPECT_EQ(module_of("bench/harness.cpp").value(), "bench");
  EXPECT_FALSE(module_of("docs/ARCHITECTURE.md").has_value());
  EXPECT_EQ(include_target_module("mmx/phy/ask.hpp").value(), "phy");
  EXPECT_FALSE(include_target_module("vector").has_value());
}

TEST(Layering, DownwardEdgesClean) {
  IncludeGraph g;
  g.add_include("phy", "dsp", "src/phy/a.cpp", 3);
  g.add_include("baseline", "core", "src/baseline/b.cpp", 4);
  g.add_link("phy", "dsp", "src/phy/CMakeLists.txt", 1);
  g.add_link("baseline", "core", "src/baseline/CMakeLists.txt", 1);
  std::vector<Finding> f;
  check_layering(g, f);
  EXPECT_TRUE(f.empty());
}

TEST(Layering, UpwardIncludeFlagged) {
  IncludeGraph g;
  g.add_include("dsp", "sim", "src/dsp/fir.cpp", 12);
  std::vector<Finding> f;
  check_layering(g, f);
  ASSERT_GE(count_rule(f, "layering"), 1u);
  EXPECT_EQ(f[0].file, "src/dsp/fir.cpp");
  EXPECT_EQ(f[0].line, 12u);
  EXPECT_EQ(f[0].symbol, "dsp->sim");
}

TEST(Layering, SiblingEdgeFlagged) {
  IncludeGraph g;
  g.add_link("rf", "antenna", "src/rf/CMakeLists.txt", 9);
  std::vector<Finding> f;
  check_layering(g, f);
  EXPECT_GE(count_rule(f, "layering"), 1u);
}

TEST(Layering, CycleReported) {
  IncludeGraph g;
  g.add_link("sim", "mac", "src/sim/CMakeLists.txt", 1);
  g.add_link("mac", "phy", "src/mac/CMakeLists.txt", 1);
  g.add_link("phy", "sim", "src/phy/CMakeLists.txt", 1);  // illegal back edge
  std::vector<Finding> f;
  check_layering(g, f);
  bool cycle = false;
  for (const Finding& x : f) cycle |= x.symbol == "cycle";
  EXPECT_TRUE(cycle);
}

TEST(Layering, IncludeWithoutLinkFlagged) {
  IncludeGraph g;
  g.add_include("phy", "rf", "src/phy/a.cpp", 2);
  std::vector<Finding> f;
  check_layering(g, f);
  ASSERT_EQ(count_rule(f, "layering"), 1u);
  EXPECT_NE(f[0].message.find("does not link"), std::string::npos);
  // Transitive link coverage counts.
  IncludeGraph g2;
  g2.add_include("phy", "common", "src/phy/a.cpp", 2);
  g2.add_link("phy", "dsp", "src/phy/CMakeLists.txt", 1);
  g2.add_link("dsp", "common", "src/dsp/CMakeLists.txt", 1);
  std::vector<Finding> f2;
  check_layering(g2, f2);
  EXPECT_TRUE(f2.empty());
}

TEST(Layering, UnknownModuleFlagged) {
  IncludeGraph g;
  g.add_include("dsp", "quantum", "src/dsp/a.cpp", 7);
  std::vector<Finding> f;
  check_layering(g, f);
  ASSERT_GE(count_rule(f, "layering"), 1u);
  EXPECT_NE(f[0].message.find("layering table"), std::string::npos);
}

TEST(Layering, CmakeParsing) {
  IncludeGraph g;
  parse_cmake_links(
      "add_library(mmx_phy a.cpp)\n"
      "target_link_libraries(mmx_phy PUBLIC mmx_common mmx_dsp mmx_rf Threads::Threads)\n",
      "src/phy/CMakeLists.txt", g);
  ASSERT_EQ(g.links.count("phy"), 1u);
  EXPECT_EQ(g.links.at("phy").size(), 3u);
  EXPECT_EQ(g.links.at("phy").count("rf"), 1u);
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(Baseline, MatchConsumesFinding) {
  std::vector<Finding> meta;
  std::vector<BaselineEntry> entries = parse_baseline(
      "# comment\n"
      "hot-path-alloc src/dsp/fft_plan.cpp make_unique -- one plan per size\n",
      "tools/analyze/baseline.txt", meta);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(meta.empty());
  std::vector<Finding> findings = {
      {"hot-path-alloc", "src/dsp/fft_plan.cpp", 80, "make_unique", "msg"}};
  const std::size_t n = apply_baseline(entries, "tools/analyze/baseline.txt", findings);
  EXPECT_EQ(n, 1u);
  EXPECT_TRUE(findings.empty());
}

TEST(Baseline, StaleEntryReported) {
  std::vector<Finding> meta;
  std::vector<BaselineEntry> entries =
      parse_baseline("no-float src/dsp/gone.cpp float -- obsolete\n", "b.txt", meta);
  std::vector<Finding> findings;
  apply_baseline(entries, "b.txt", findings);
  ASSERT_EQ(count_rule(findings, "stale-baseline"), 1u);
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(Baseline, UnreasonedAndMalformedReported) {
  std::vector<Finding> meta;
  parse_baseline(
      "no-float src/dsp/a.cpp float\n"
      "just two\n",
      "b.txt", meta);
  EXPECT_EQ(count_rule(meta, "baseline-reason"), 2u);
}

// ---------------------------------------------------------------------------
// SARIF
// ---------------------------------------------------------------------------

TEST(Sarif, EscapesAndStructure) {
  const std::vector<Finding> findings = {
      {"no-float", "src/dsp/a.cpp", 7, "float", "uses \"float\"\nbadly"}};
  const std::string sarif = to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"no-float\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("uses \\\"float\\\"\\nbadly"), std::string::npos);
  EXPECT_EQ(sarif.find("\nbadly"), std::string::npos);  // newline escaped, not literal
}

TEST(Sarif, EveryRuleHasMetadata) {
  const std::string sarif = to_sarif({});
  for (const RuleInfo& r : rule_table())
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(r.id) + "\""), std::string::npos) << r.id;
}

}  // namespace
}  // namespace mmx::analyze
