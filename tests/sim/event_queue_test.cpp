#include "mmx/sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace mmx::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.5), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) q.schedule_in(1.0, tick);
  };
  q.schedule_at(0.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(count, 10);
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(4.5, [&] { seen = q.now(); });
  q.run_all();
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(3.0, nullptr), std::invalid_argument);
}

TEST(EventQueue, NegativeDeltaThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule_in(-0.5, [] {}), std::invalid_argument);
}

// The scale lane leans on this: its churn and measurement ticks share
// timestamps (including one exactly at duration_s), and correctness
// requires the boundary event to run and same-time events to keep
// schedule order.
TEST(EventQueue, EventExactlyAtBoundaryExecutes) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(2.0 + 1e-9, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.0), 2u);  // t == t_end is inside the window
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, ReentrantZeroDelayRunsAfterQueuedSameTimeEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] {
    order.push_back(0);
    // Scheduled from inside a handler at now(): must run at the same
    // timestamp but AFTER the events already queued for t=1.0 (FIFO by
    // insertion seq, not by scheduling depth).
    q.schedule_in(0.0, [&] { order.push_back(9); });
  });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(1.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(EventQueue, PreScheduledAndHandlerScheduledInterleaveBySeq) {
  // Two generations of same-time events: the second generation (created
  // while running) lands strictly after every first-generation event,
  // and within each generation order is insertion order.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i)
    q.schedule_at(5.0, [&order, &q, i] {
      order.push_back(i);
      q.schedule_in(0.0, [&order, i] { order.push_back(10 + i); });
    });
  EXPECT_EQ(q.run_until(5.0), 6u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10, 11, 12}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunAllAfterRunUntilResumesFromBoundary) {
  EventQueue q;
  std::vector<double> seen;
  q.schedule_at(1.0, [&] { seen.push_back(q.now()); });
  q.schedule_at(3.0, [&] { seen.push_back(q.now()); });
  q.run_until(2.0);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  q.run_all();
  EXPECT_EQ(seen, (std::vector<double>{1.0, 3.0}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

// --- Cancellation / reschedule semantics (the fault layer's timers) ---------

TEST(EventQueue, CancelPendingEventNeverRuns) {
  EventQueue q;
  int fired = 0;
  const EventQueue::EventId id = q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run_all(), 1u);  // cancelled events are not counted as executed
  EXPECT_EQ(fired, 1);
  // Double-cancel and cancel-after-run both report "not pending".
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAlreadyFiredReturnsFalse) {
  EventQueue q;
  const EventQueue::EventId id = q.schedule_at(1.0, [] {});
  q.run_all();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(EventQueue::kInvalidEvent));
}

TEST(EventQueue, CancelSelfInsideHandlerIsHarmlessNoOp) {
  // A handler is retired before it runs: cancelling its own id from
  // inside must return false and must not disturb later events.
  EventQueue q;
  std::vector<int> order;
  EventQueue::EventId self = EventQueue::kInvalidEvent;
  self = q.schedule_at(1.0, [&] {
    order.push_back(0);
    EXPECT_FALSE(q.cancel(self));
  });
  q.schedule_at(2.0, [&] { order.push_back(1); });
  EXPECT_EQ(q.run_all(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, CancelFromInsideHandlerSuppressesSameTimePeer) {
  // A fault event killing a same-timestamp timer: the peer is queued at
  // the same time but later in FIFO order, and must not run.
  EventQueue q;
  std::vector<int> order;
  EventQueue::EventId peer = EventQueue::kInvalidEvent;
  q.schedule_at(1.0, [&] {
    order.push_back(0);
    EXPECT_TRUE(q.cancel(peer));
  });
  peer = q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(1.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_all(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(EventQueue, RescheduleMovesEventKeepingHandlerAndId) {
  EventQueue q;
  std::vector<double> seen;
  const EventQueue::EventId id = q.schedule_at(1.0, [&] { seen.push_back(q.now()); });
  EXPECT_TRUE(q.reschedule(id, 3.0));
  q.schedule_at(2.0, [&] { seen.push_back(q.now()); });
  EXPECT_EQ(q.pending(), 2u);  // the stale heap entry is not an event
  EXPECT_EQ(q.run_all(), 2u);
  EXPECT_EQ(seen, (std::vector<double>{2.0, 3.0}));
  EXPECT_FALSE(q.reschedule(id, 4.0));  // already ran
}

TEST(EventQueue, RescheduleEarlierWins) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2.0, [&] { order.push_back(0); });
  const EventQueue::EventId id = q.schedule_at(5.0, [&] { order.push_back(1); });
  EXPECT_TRUE(q.reschedule(id, 1.0));
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(EventQueue, RescheduleInHandlerSlidesAPendingTimer) {
  // The reap-timer idiom: activity at t=1 pushes the t=2 deadline to t=4.
  EventQueue q;
  std::vector<double> seen;
  const EventQueue::EventId deadline = q.schedule_at(2.0, [&] { seen.push_back(q.now()); });
  q.schedule_at(1.0, [&] { EXPECT_TRUE(q.reschedule(deadline, 4.0)); });
  q.schedule_at(3.0, [&] { seen.push_back(q.now()); });
  EXPECT_EQ(q.run_all(), 3u);
  EXPECT_EQ(seen, (std::vector<double>{3.0, 4.0}));
}

TEST(EventQueue, RescheduleToNowRunsAfterQueuedSameTimeEvents) {
  // A rescheduled event takes a fresh FIFO rank: same-time events that
  // were already queued keep their earlier seqs and run first.
  EventQueue q;
  std::vector<int> order;
  const EventQueue::EventId id = q.schedule_at(5.0, [&] { order.push_back(9); });
  q.schedule_at(1.0, [&] { order.push_back(0); });
  q.schedule_at(1.0, [&] { EXPECT_TRUE(q.reschedule(id, 1.0)); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 9}));
}

TEST(EventQueue, ReschedulePastThrowsCancelledIdReturnsFalse) {
  EventQueue q;
  const EventQueue::EventId id = q.schedule_at(2.0, [] {});
  q.schedule_at(1.0, [&] { EXPECT_THROW(q.reschedule(id, 0.5), std::invalid_argument); });
  q.run_until(1.0);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.reschedule(id, 3.0));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelledBeyondHorizonLeavesQueueReusable) {
  // Tombstones past t_end must not wedge later scheduling or counts.
  EventQueue q;
  int fired = 0;
  const EventQueue::EventId far = q.schedule_at(10.0, [&] { ++fired; });
  q.schedule_at(1.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(5.0), 1u);
  EXPECT_TRUE(q.cancel(far));
  EXPECT_TRUE(q.empty());
  q.schedule_at(6.0, [&] { ++fired; });
  EXPECT_EQ(q.run_all(), 1u);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace mmx::sim
