#include "mmx/sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace mmx::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.5), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) q.schedule_in(1.0, tick);
  };
  q.schedule_at(0.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(count, 10);
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(4.5, [&] { seen = q.now(); });
  q.run_all();
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(3.0, nullptr), std::invalid_argument);
}

TEST(EventQueue, NegativeDeltaThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule_in(-0.5, [] {}), std::invalid_argument);
}

// The scale lane leans on this: its churn and measurement ticks share
// timestamps (including one exactly at duration_s), and correctness
// requires the boundary event to run and same-time events to keep
// schedule order.
TEST(EventQueue, EventExactlyAtBoundaryExecutes) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(2.0 + 1e-9, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.0), 2u);  // t == t_end is inside the window
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, ReentrantZeroDelayRunsAfterQueuedSameTimeEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] {
    order.push_back(0);
    // Scheduled from inside a handler at now(): must run at the same
    // timestamp but AFTER the events already queued for t=1.0 (FIFO by
    // insertion seq, not by scheduling depth).
    q.schedule_in(0.0, [&] { order.push_back(9); });
  });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(1.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(EventQueue, PreScheduledAndHandlerScheduledInterleaveBySeq) {
  // Two generations of same-time events: the second generation (created
  // while running) lands strictly after every first-generation event,
  // and within each generation order is insertion order.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i)
    q.schedule_at(5.0, [&order, &q, i] {
      order.push_back(i);
      q.schedule_in(0.0, [&order, i] { order.push_back(10 + i); });
    });
  EXPECT_EQ(q.run_until(5.0), 6u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10, 11, 12}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunAllAfterRunUntilResumesFromBoundary) {
  EventQueue q;
  std::vector<double> seen;
  q.schedule_at(1.0, [&] { seen.push_back(q.now()); });
  q.schedule_at(3.0, [&] { seen.push_back(q.now()); });
  q.run_until(2.0);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  q.run_all();
  EXPECT_EQ(seen, (std::vector<double>{1.0, 3.0}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

}  // namespace
}  // namespace mmx::sim
