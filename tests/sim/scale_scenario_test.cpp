// Scale-lane contract tests (ctest label: scale). Small populations —
// the full 10^4-node configuration lives in bench_scale_churn — but the
// invariants proven here are exactly the ones the bench relies on:
// cached == uncached bit-for-bit, thread-count invariance, and
// seed-deterministic accounting.
#include <gtest/gtest.h>

#include "mmx/sim/scale_scenario.hpp"

namespace mmx::sim {
namespace {

// A fast-but-representative configuration: enough nodes to exercise
// grants, denials (narrowed band), churn, and the crowd; ~1 s simulated.
// Churn fractions are scaled up so the per-tick slices stay non-zero at
// this population (the 10^4-node defaults round to zero here).
ScaleConfig small_config(std::size_t nodes = 150) {
  ScaleConfig cfg = make_scale_config(nodes);
  cfg.duration_s = 1.0;
  cfg.join_window_s = 0.5;
  cfg.churn_interval_s = 0.25;
  cfg.measure_interval_s = 0.125;
  cfg.move_fraction = 0.05;
  cfg.leave_fraction = 0.02;
  return cfg;
}

TEST(ScaleScenario, CachedReportEqualsUncachedReport) {
  ScaleConfig cached_cfg = small_config();
  ScaleConfig uncached_cfg = cached_cfg;
  cached_cfg.use_cache = true;
  uncached_cfg.use_cache = false;

  const ScaleReport cached = ScaleScenario(cached_cfg).run(7);
  const ScaleReport uncached = ScaleScenario(uncached_cfg).run(7);

  // The pinned claim of docs/SCALING.md: the cache changes wall-clock
  // only. Every simulated quantity — protocol counters and the physics
  // the MAC consumed — must match to the last bit.
  EXPECT_EQ(cached, uncached);
  EXPECT_EQ(cached.mean_snr_db, uncached.mean_snr_db);
  EXPECT_EQ(cached.mean_joint_ber, uncached.mean_joint_ber);
  EXPECT_EQ(cached.delivery_ratio, uncached.delivery_ratio);
  EXPECT_EQ(cached.arq.transmissions, uncached.arq.transmissions);

  // Sanity on the arms themselves: the cached run actually used the
  // cache, the uncached run never touched it.
  EXPECT_GT(cached.cache.hits + cached.cache.refills, 0u);
  EXPECT_EQ(uncached.cache.hits, 0u);
  EXPECT_EQ(uncached.cache_refills, 0u);
}

TEST(ScaleScenario, RefreshThreadCountDoesNotChangeTheReport) {
  ScaleConfig one = small_config();
  ScaleConfig four = small_config();
  one.refresh_threads = 1;
  four.refresh_threads = 4;
  const ScaleReport r1 = ScaleScenario(one).run(11);
  const ScaleReport r4 = ScaleScenario(four).run(11);
  EXPECT_EQ(r1, r4);
  EXPECT_EQ(r1.cache_refills, r4.cache_refills);
  EXPECT_EQ(r1.cache.revalidated, r4.cache.revalidated);
  EXPECT_EQ(r1.cache.invalidated, r4.cache.invalidated);
}

TEST(ScaleScenario, SameSeedReproducesDifferentSeedDiverges) {
  const ScaleScenario scenario(small_config());
  const ScaleReport a = scenario.run(42);
  const ScaleReport b = scenario.run(42);
  const ScaleReport c = scenario.run(43);
  EXPECT_EQ(a, b);
  // Different crowd walks and churn draws must leave a visible trace in
  // the channel statistics.
  EXPECT_FALSE(a == c);
}

TEST(ScaleScenario, AccountingInvariantsHold) {
  const ScaleConfig cfg = small_config();
  const ScaleReport r = ScaleScenario(cfg).run(3);

  EXPECT_EQ(r.joins, r.granted + r.denied);
  // Initial joins plus power-cycle rejoins from the leave slices.
  EXPECT_GT(r.joins, cfg.nodes);
  EXPECT_GT(r.leaves, 0u);
  EXPECT_GT(r.moves, 0u);
  EXPECT_GT(r.granted, 0u);
  EXPECT_GT(r.measure_rounds, 0u);
  // Every round polls every resident thing; rounds inside the join
  // window see a partial population, so the total is bounded by the
  // full-population product and from below by the post-join rounds
  // (the join window spans the first half of the run).
  EXPECT_LE(r.link_evals, r.measure_rounds * cfg.nodes);
  EXPECT_GT(r.link_evals, r.measure_rounds * cfg.nodes / 2);
  // The crowd advanced once per churn tick.
  EXPECT_EQ(r.blocker_updates,
            static_cast<std::size_t>(cfg.duration_s / cfg.churn_interval_s));
  EXPECT_GT(r.arq.transmissions, 0u);
  EXPECT_GE(r.delivery_ratio, 0.0);
  EXPECT_LE(r.delivery_ratio, 1.0);
  EXPECT_GT(r.mean_rate_bps, 0.0);
}

TEST(ScaleScenario, NarrowBandDeniesAndRetriesKeepThingsResident) {
  // Shrink the band until the allocator cannot grant everyone: denied
  // joiners must stay resident (tracked), retry on churn ticks, and the
  // run must still complete with coherent accounting.
  ScaleConfig cfg = small_config(120);
  cfg.sim.band_low_hz = 57.0e9;
  cfg.sim.band_high_hz = 57.08e9;  // room for ~dozens of channels, not 120
  const ScaleReport r = ScaleScenario(cfg).run(5);
  EXPECT_GT(r.denied, 0u);
  EXPECT_GT(r.granted, 0u);
  EXPECT_EQ(r.joins, r.granted + r.denied);
  // Retries happen: leaves free spectrum, and each leave lets one denied
  // thing re-request, so join attempts exceed population + power-cycles.
  EXPECT_GT(r.joins, static_cast<std::size_t>(cfg.nodes) + r.leaves);
  // Residency: denied things still get polled every round (bounded below
  // by the post-join-window rounds, as above).
  EXPECT_LE(r.link_evals, r.measure_rounds * cfg.nodes);
  EXPECT_GT(r.link_evals, r.measure_rounds * cfg.nodes / 2);
}

}  // namespace
}  // namespace mmx::sim
