// Sweep-engine determinism regression: the parallel Monte-Carlo runner
// is only trustworthy if the thread count is invisible in the numbers.
// Same seed => byte-identical results at 1, 2 and 8 workers, and the
// SweepRunner port of Fig. 11 must reproduce the pre-existing serial
// loop exactly — any drift silently invalidates every scaled-up figure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mmx/baseline/fixed_beam.hpp"
#include "mmx/channel/blockage.hpp"
#include "mmx/channel/presets.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/phy/ber.hpp"
#include "mmx/sim/sweep.hpp"
#include "mmx/sim/thread_pool.hpp"

namespace mmx::sim {
namespace {

/// Byte-exact equality: catches drift EXPECT_DOUBLE_EQ would forgive
/// (signed zeros, last-ulp noise from a reordered reduction).
bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, RethrowsFirstTaskException) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("trial exploded"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after the error is delivered.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(RngStream, IsAPureFunctionOfSeedAndIndex) {
  // Counter-based derivation: stream i must not depend on how many other
  // streams were created, in what order, or on any engine state.
  Rng late = Rng::stream(123, 7);
  Rng early = Rng::stream(123, 7);
  for (int i = 0; i < 100; ++i) {
    (void)Rng::stream(123, static_cast<std::uint64_t>(i));  // unrelated derivations
  }
  Rng after = Rng::stream(123, 7);
  const double a = late.uniform();
  EXPECT_EQ(a, early.uniform());
  EXPECT_EQ(a, after.uniform());
}

TEST(RngStream, DistinctIndicesGiveIndependentStreams) {
  Rng s0 = Rng::stream(123, 0);
  Rng s1 = Rng::stream(123, 1);
  std::vector<double> d0(64);
  std::vector<double> d1(64);
  for (std::size_t i = 0; i < d0.size(); ++i) {
    d0[i] = s0.uniform();
    d1[i] = s1.uniform();
  }
  EXPECT_FALSE(bit_identical(d0, d1));
}

/// A trial with a data-dependent number of draws — the worst case for
/// any scheme that shares a generator across trials.
double variable_draw_trial(std::size_t index, Rng& rng) {
  const int draws = rng.uniform_int(1, 32);
  double acc = static_cast<double>(index);
  for (int i = 0; i < draws; ++i) acc += rng.gaussian(2.0);
  return acc;
}

std::vector<double> run_sweep(std::size_t threads) {
  SweepConfig cfg;
  cfg.trials = 500;
  cfg.threads = threads;
  cfg.seed = 2024;
  SweepRunner runner(cfg);
  return runner.run(variable_draw_trial).trials;
}

TEST(SweepRunner, ByteIdenticalAtOneTwoAndEightThreads) {
  const std::vector<double> t1 = run_sweep(1);
  const std::vector<double> t2 = run_sweep(2);
  const std::vector<double> t8 = run_sweep(8);
  EXPECT_TRUE(bit_identical(t1, t2)) << "2-thread sweep diverged from serial";
  EXPECT_TRUE(bit_identical(t1, t8)) << "8-thread sweep diverged from serial";
}

TEST(SweepRunner, RepeatedRunsAreByteIdentical) {
  EXPECT_TRUE(bit_identical(run_sweep(4), run_sweep(4)));
}

TEST(SweepRunner, DifferentSeedsDiverge) {
  SweepConfig cfg;
  cfg.trials = 50;
  cfg.threads = 2;
  cfg.seed = 1;
  const auto a = SweepRunner(cfg).run(variable_draw_trial).trials;
  cfg.seed = 2;
  const auto b = SweepRunner(cfg).run(variable_draw_trial).trials;
  EXPECT_FALSE(bit_identical(a, b));
}

TEST(SweepRunner, CommitsResultsInTrialOrder) {
  SweepConfig cfg;
  cfg.trials = 256;
  cfg.threads = 8;
  SweepRunner runner(cfg);
  const auto result = runner.run([](std::size_t i, Rng&) { return static_cast<double>(i); });
  std::vector<double> expected(cfg.trials);
  std::iota(expected.begin(), expected.end(), 0.0);
  EXPECT_TRUE(bit_identical(result.trials, expected));
}

TEST(SweepRunner, PropagatesTrialExceptions) {
  SweepConfig cfg;
  cfg.trials = 64;
  cfg.threads = 4;
  SweepRunner runner(cfg);
  EXPECT_THROW(runner.run([](std::size_t i, Rng&) -> double {
                 if (i == 17) throw std::runtime_error("bad trial");
                 return 0.0;
               }),
               std::runtime_error);
}

// --- Fig. 11 equivalence ---------------------------------------------------
// The exact serial loop the bench shipped with before the sweep engine
// (one shared Rng, placements evaluated in order) versus the SweepRunner
// port (serial placement pre-pass + parallel evaluation). 30 placements,
// seed 11 — the historical Fig. 11 configuration.

struct Fig11Point {
  double ber_with;
  double ber_without;
};

Fig11Point evaluate_placement(const channel::Pose& ap, const Vec2& pos, double orientation_rad) {
  const antenna::MmxBeamPair beams;
  const antenna::Dipole ap_antenna;
  const sim::LinkBudget budget;
  const rf::SpdtSwitch spdt;
  channel::Room room = channel::furnished_lab();
  channel::park_person(room, pos, ap.position);
  const channel::RayTracer tracer(room);
  const channel::Pose node{pos, orientation_rad};
  const auto modes =
      baseline::compare_modes_avg(tracer, node, beams, ap, ap_antenna, 24.125e9, budget, spdt);
  return {std::max(phy::kBerFloor, modes.with_otam.joint_ber),
          std::max(phy::kBerFloor, modes.without_otam.joint_ber)};
}

TEST(SweepRunner, MatchesPreexistingSerialFig11Loop) {
  const std::size_t kPlacements = 30;
  const std::uint64_t kSeed = 11;
  const channel::Pose ap = channel::furnished_lab_ap();

  // Pre-existing serial loop: one Rng, draw-and-evaluate per placement.
  std::vector<double> serial_with;
  std::vector<double> serial_without;
  {
    Rng rng(kSeed);
    for (std::size_t i = 0; i < kPlacements; ++i) {
      const Vec2 pos{rng.uniform(0.5, 3.5), rng.uniform(0.3, 4.8)};
      const double toward_ap = (ap.position - pos).angle();
      const double orient = toward_ap + deg_to_rad(rng.uniform(-60.0, 60.0));
      const Fig11Point p = evaluate_placement(ap, pos, orient);
      serial_with.push_back(p.ber_with);
      serial_without.push_back(p.ber_without);
    }
  }

  // Sweep port: identical serial draw pass, parallel evaluation.
  struct Placement {
    Vec2 pos;
    double orientation_rad;
  };
  Rng rng(kSeed);
  std::vector<Placement> placements(kPlacements);
  for (Placement& p : placements) {
    p.pos = Vec2{rng.uniform(0.5, 3.5), rng.uniform(0.3, 4.8)};
    p.orientation_rad = (ap.position - p.pos).angle() + deg_to_rad(rng.uniform(-60.0, 60.0));
  }
  SweepConfig cfg;
  cfg.trials = kPlacements;
  cfg.threads = 4;
  cfg.seed = kSeed;
  const auto sweep = SweepRunner(cfg).run([&](std::size_t i, Rng&) {
    return evaluate_placement(ap, placements[i].pos, placements[i].orientation_rad);
  });

  std::vector<double> sweep_with;
  std::vector<double> sweep_without;
  for (const Fig11Point& p : sweep.trials) {
    sweep_with.push_back(p.ber_with);
    sweep_without.push_back(p.ber_without);
  }
  EXPECT_TRUE(bit_identical(serial_with, sweep_with))
      << "parallel Fig. 11 sweep diverged from the serial loop (with OTAM)";
  EXPECT_TRUE(bit_identical(serial_without, sweep_without))
      << "parallel Fig. 11 sweep diverged from the serial loop (without OTAM)";
}

}  // namespace
}  // namespace mmx::sim
