#include "mmx/sim/traffic.hpp"

#include <gtest/gtest.h>

namespace mmx::sim {
namespace {

TEST(Cbr, RateHonoured) {
  // 10 Mbps HD camera, 1400-byte packets.
  CbrSource src(10e6, 1400);
  const auto arr = src.arrivals(1.0);
  EXPECT_NEAR(offered_load_bps(arr, 1.0), 10e6, 10e6 * 0.01);
}

TEST(Cbr, ArrivalsEvenlySpaced) {
  CbrSource src(1e6, 125);  // 1 ms per packet
  const auto arr = src.arrivals(0.01);
  ASSERT_GE(arr.size(), 2u);
  for (std::size_t i = 1; i < arr.size(); ++i) {
    EXPECT_NEAR(arr[i].time_s - arr[i - 1].time_s, 0.001, 1e-9);
  }
}

TEST(Cbr, BadArgsThrow) {
  EXPECT_THROW(CbrSource(0.0), std::invalid_argument);
  EXPECT_THROW(CbrSource(1e6, 0), std::invalid_argument);
  CbrSource src(1e6);
  EXPECT_THROW(src.arrivals(-1.0), std::invalid_argument);
}

TEST(Poisson, MeanRateApproximatelyHonoured) {
  Rng rng(1);
  PoissonSource src(100.0, 64);  // 100 reports/s * 512 bits
  const auto arr = src.arrivals(50.0, rng);
  EXPECT_NEAR(static_cast<double>(arr.size()) / 50.0, 100.0, 10.0);
  EXPECT_NEAR(offered_load_bps(arr, 50.0), src.mean_rate_bps(), src.mean_rate_bps() * 0.1);
}

TEST(Poisson, InterArrivalsExponentialish) {
  Rng rng(2);
  PoissonSource src(1000.0);
  const auto arr = src.arrivals(10.0, rng);
  // Coefficient of variation of exponential inter-arrivals is 1.
  std::vector<double> gaps;
  for (std::size_t i = 1; i < arr.size(); ++i) gaps.push_back(arr[i].time_s - arr[i - 1].time_s);
  double m = 0.0;
  for (double g : gaps) m += g;
  m /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - m) * (g - m);
  var /= static_cast<double>(gaps.size());
  EXPECT_NEAR(std::sqrt(var) / m, 1.0, 0.1);
}

TEST(Poisson, BadArgsThrow) {
  EXPECT_THROW(PoissonSource(0.0), std::invalid_argument);
  EXPECT_THROW(PoissonSource(10.0, 0), std::invalid_argument);
}

TEST(OfferedLoad, Validates) {
  EXPECT_THROW(offered_load_bps({}, 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(offered_load_bps({}, 1.0), 0.0);
}

}  // namespace
}  // namespace mmx::sim
