// Cache coherence contract: memoized link state must be bit-identical to
// re-tracing, under every mutation the Room can express — and must NOT
// invalidate entries a mutation provably cannot affect.
#include <gtest/gtest.h>

#include <stdexcept>

#include "mmx/channel/room.hpp"
#include "mmx/sim/link_cache.hpp"
#include "mmx/sim/network_sim.hpp"

namespace mmx::sim {
namespace {

// 10 x 6 room, AP at the centre. Node A's line of sight runs through
// (3.5, 3.75); node B sits near the AP with all five of its wall-only
// corridors (LoS + four first-order wall bounces) far from both blocker
// positions used below — verified by the hit assertions themselves.
constexpr Vec2 kApPos{5.0, 3.0};
constexpr Vec2 kNodeAPos{2.0, 4.5};
constexpr Vec2 kNodeBPos{5.5, 3.2};
constexpr Vec2 kOnLosA{3.5, 3.75};
constexpr Vec2 kFarCorner{2.0, 0.7};

struct Fixture {
  NetworkSimulator sim;
  std::uint16_t a;
  std::uint16_t b;

  explicit Fixture(SimConfig cfg = {})
      : sim(channel::Room(10.0, 6.0), channel::Pose{kApPos, 0.0}, cfg),
        a(*sim.add_node(channel::Pose{kNodeAPos, -0.5}, 1e6)),
        b(*sim.add_node(channel::Pose{kNodeBPos, 2.0}, 1e6)) {}
};

void expect_links_equal(const OtamLink& x, const OtamLink& y) {
  EXPECT_EQ(x.rx1_dbm, y.rx1_dbm);
  EXPECT_EQ(x.rx0_dbm, y.rx0_dbm);
  EXPECT_EQ(x.snr_db, y.snr_db);
  EXPECT_EQ(x.contrast_db, y.contrast_db);
  EXPECT_EQ(x.ask_ber, y.ask_ber);
  EXPECT_EQ(x.fsk_ber, y.fsk_ber);
  EXPECT_EQ(x.joint_ber, y.joint_ber);
}

TEST(RoomEpoch, BumpsOnEveryMutationButNotOnNoOps) {
  channel::Room room(10.0, 6.0);
  const std::uint64_t e0 = room.epoch();
  const std::size_t idx = room.add_blocker(channel::human_blocker(kOnLosA));
  EXPECT_GT(room.epoch(), e0);

  const std::uint64_t e1 = room.epoch();
  room.move_blocker(idx, kOnLosA);  // no-op move: same centre
  EXPECT_EQ(room.epoch(), e1);
  room.move_blocker(idx, kFarCorner);
  EXPECT_GT(room.epoch(), e1);

  const std::uint64_t e2 = room.epoch();
  room.add_reflector({{2.0, 2.0}, {4.0, 2.0}}, channel::metal());
  EXPECT_GT(room.epoch(), e2);

  const std::uint64_t e3 = room.epoch();
  room.clear_blockers();
  EXPECT_GT(room.epoch(), e3);
  const std::uint64_t e4 = room.epoch();
  room.clear_blockers();  // already empty: no-op
  EXPECT_EQ(room.epoch(), e4);
}

TEST(LinkCache, CachedLinkBitIdenticalToUncachedAcrossBlockerChurn) {
  Fixture f;
  expect_links_equal(f.sim.link(f.a), f.sim.link_uncached(f.a));
  expect_links_equal(f.sim.link(f.b), f.sim.link_uncached(f.b));

  const std::size_t idx = f.sim.room().add_blocker(channel::human_blocker(kOnLosA));
  expect_links_equal(f.sim.link(f.a), f.sim.link_uncached(f.a));
  expect_links_equal(f.sim.link(f.b), f.sim.link_uncached(f.b));

  f.sim.room().move_blocker(idx, kFarCorner);
  expect_links_equal(f.sim.link(f.a), f.sim.link_uncached(f.a));
  expect_links_equal(f.sim.link(f.b), f.sim.link_uncached(f.b));

  f.sim.room().clear_blockers();
  expect_links_equal(f.sim.link(f.a), f.sim.link_uncached(f.a));
  expect_links_equal(f.sim.link(f.b), f.sim.link_uncached(f.b));
}

TEST(LinkCache, BlockerOnOneLosInvalidatesExactlyThatNode) {
  Fixture f;
  const OtamLink a_before = f.sim.link(f.a);
  (void)f.sim.link(f.b);

  f.sim.room().add_blocker(channel::human_blocker(kOnLosA));
  f.sim.reset_cache_stats();
  const OtamLink a_after = f.sim.link(f.a);
  const OtamLink b_after = f.sim.link(f.b);

  // A was recomputed (miss) and its link genuinely changed: a 28 dB body
  // on the LoS must cost receive power. B hit the warm cache.
  EXPECT_EQ(f.sim.cache_stats().misses, 1u);
  EXPECT_EQ(f.sim.cache_stats().hits, 1u);
  EXPECT_LT(a_after.rx1_dbm, a_before.rx1_dbm - 1.0);
  expect_links_equal(a_after, f.sim.link_uncached(f.a));
  expect_links_equal(b_after, f.sim.link_uncached(f.b));
}

TEST(LinkCache, BlockerMoveAwayRestoresAndRevalidatesUntouched) {
  Fixture f;
  const OtamLink a_clear = f.sim.link(f.a);
  const std::size_t idx = f.sim.room().add_blocker(channel::human_blocker(kOnLosA));
  (void)f.sim.link(f.a);
  (void)f.sim.link(f.b);

  // Move the body off A's line of sight to a spot neither node's
  // corridors pass: A must be re-traced (and recover its clear-room
  // link bit-for-bit), B must stay warm.
  f.sim.room().move_blocker(idx, kFarCorner);
  f.sim.reset_cache_stats();
  const OtamLink a_after = f.sim.link(f.a);
  (void)f.sim.link(f.b);
  EXPECT_EQ(f.sim.cache_stats().misses, 1u);
  EXPECT_EQ(f.sim.cache_stats().hits, 1u);
  expect_links_equal(a_after, a_clear);
}

TEST(LinkCache, BlockerFarFromAllCorridorsInvalidatesNobody) {
  Fixture f;
  const std::size_t idx = f.sim.room().add_blocker(channel::human_blocker(kFarCorner));
  (void)f.sim.link(f.a);
  (void)f.sim.link(f.b);

  // Nudge the far body by 10 cm: still clear of every corridor, so both
  // entries revalidate for free.
  f.sim.room().move_blocker(idx, Vec2{kFarCorner.x + 0.1, kFarCorner.y});
  f.sim.reset_cache_stats();
  (void)f.sim.link(f.a);
  (void)f.sim.link(f.b);
  EXPECT_EQ(f.sim.cache_stats().hits, 2u);
  EXPECT_EQ(f.sim.cache_stats().misses, 0u);
  EXPECT_EQ(f.sim.cache_stats().revalidated, 2u);
}

TEST(LinkCache, SetNodePoseInvalidatesOnlyThatNode) {
  Fixture f;
  (void)f.sim.link(f.a);
  (void)f.sim.link(f.b);

  f.sim.set_node_pose(f.a, channel::Pose{{2.5, 4.0}, -0.6});
  f.sim.reset_cache_stats();
  const OtamLink a_after = f.sim.link(f.a);
  (void)f.sim.link(f.b);
  EXPECT_EQ(f.sim.cache_stats().misses, 1u);
  EXPECT_EQ(f.sim.cache_stats().hits, 1u);
  expect_links_equal(a_after, f.sim.link_uncached(f.a));

  // Re-posing to the identical pose is a no-op: no invalidation.
  f.sim.reset_cache_stats();
  f.sim.set_node_pose(f.a, channel::Pose{{2.5, 4.0}, -0.6});
  (void)f.sim.link(f.a);
  EXPECT_EQ(f.sim.cache_stats().hits, 1u);
}

TEST(LinkCache, StructuralChangeDropsEveryEntry) {
  Fixture f;
  (void)f.sim.link(f.a);
  (void)f.sim.link(f.b);

  f.sim.room().add_reflector({{1.0, 1.0}, {3.0, 1.0}}, channel::metal());
  f.sim.reset_cache_stats();
  expect_links_equal(f.sim.link(f.a), f.sim.link_uncached(f.a));
  expect_links_equal(f.sim.link(f.b), f.sim.link_uncached(f.b));
  EXPECT_EQ(f.sim.cache_stats().misses, 2u);
  EXPECT_EQ(f.sim.cache_stats().hits, 0u);
}

TEST(LinkCache, DisabledCacheStillBitIdentical) {
  SimConfig cfg;
  cfg.link_cache = false;
  Fixture off(cfg);
  Fixture on;
  off.sim.room().add_blocker(channel::human_blocker(kOnLosA));
  on.sim.room().add_blocker(channel::human_blocker(kOnLosA));
  expect_links_equal(off.sim.link(off.a), on.sim.link(on.a));
  expect_links_equal(off.sim.fixed_beam_link(off.b), on.sim.fixed_beam_link(on.b));
  EXPECT_EQ(off.sim.cache_stats().hits + off.sim.cache_stats().misses, 0u);
}

TEST(LinkCache, ParallelRefreshBitIdenticalToSerial) {
  Fixture serial;
  Fixture parallel;
  // Dirty everything: a blocker lands on A's LoS, then both sims refresh
  // their whole population — one on a single worker, one on four.
  serial.sim.room().add_blocker(channel::human_blocker(kOnLosA));
  parallel.sim.room().add_blocker(channel::human_blocker(kOnLosA));
  const std::size_t n1 = serial.sim.refresh_cache(1);
  const std::size_t n4 = parallel.sim.refresh_cache(4);
  EXPECT_EQ(n1, n4);
  EXPECT_EQ(n1, 2u);
  expect_links_equal(serial.sim.link(serial.a), parallel.sim.link(parallel.a));
  expect_links_equal(serial.sim.link(serial.b), parallel.sim.link(parallel.b));
  // Refreshed entries count as refills and the subsequent reads as hits.
  EXPECT_EQ(parallel.sim.cache_stats().refills, 2u);
  EXPECT_EQ(parallel.sim.cache_stats().hits, 2u);
}

TEST(LinkCache, RefreshMakesSubsequentQueriesHits) {
  Fixture f;
  EXPECT_EQ(f.sim.refresh_cache(2), 2u);  // cold fill
  f.sim.reset_cache_stats();
  (void)f.sim.link(f.a);
  (void)f.sim.gains(f.b);
  EXPECT_EQ(f.sim.cache_stats().hits, 2u);
  EXPECT_EQ(f.sim.cache_stats().misses, 0u);
  EXPECT_EQ(f.sim.refresh_cache(2), 0u);  // everything already valid
}

TEST(LinkCache, RemovedNodeDropsItsEntry) {
  Fixture f;
  (void)f.sim.link(f.a);
  f.sim.remove_node(f.a);
  EXPECT_THROW((void)f.sim.link(f.a), std::out_of_range);
  // B is unaffected.
  f.sim.reset_cache_stats();
  (void)f.sim.link(f.b);
  EXPECT_EQ(f.sim.cache_stats().misses, 1u);  // B was never queried before
}

}  // namespace
}  // namespace mmx::sim
