#include "mmx/sim/network_sim.hpp"

#include <gtest/gtest.h>

#include "mmx/channel/blockage.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/sim/stats.hpp"

namespace mmx::sim {
namespace {

NetworkSimulator paper_testbed() {
  // 6 x 4 m room, AP on one side facing inward (paper §9.2).
  return NetworkSimulator(channel::Room(6.0, 4.0), channel::Pose{{5.5, 2.0}, kPi});
}

TEST(NetworkSim, AddNodeGrantsChannel) {
  NetworkSimulator net = paper_testbed();
  const auto id = net.add_node({{1.0, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(net.num_nodes(), 1u);
  EXPECT_NEAR(net.grant(*id).channel.bandwidth_hz, 12.5e6, 1.0);
}

TEST(NetworkSim, LinkSnrReasonableInRoom) {
  NetworkSimulator net = paper_testbed();
  const auto id = net.add_node({{1.0, 2.0}, 0.0}, 10e6);
  const OtamLink l = net.link(*id);
  // ~4.5 m LoS boresight: strong double-digit SNR.
  EXPECT_GT(l.snr_db, 15.0);
  EXPECT_LT(l.snr_db, 45.0);
  EXPECT_LT(l.joint_ber, 1e-6);
}

TEST(NetworkSim, OtamBeatsFixedBeamUnderBlockage) {
  // The Fig. 10 effect in miniature.
  NetworkSimulator net = paper_testbed();
  const auto id = net.add_node({{1.0, 2.0}, deg_to_rad(40.0)}, 10e6);
  channel::park_blocker_on_los(net.room(), {1.0, 2.0}, {5.5, 2.0});
  const OtamLink otam = net.link(*id);
  const OtamLink fixed = net.fixed_beam_link(*id);
  EXPECT_LT(otam.joint_ber, fixed.joint_ber + 1e-15);
}

TEST(NetworkSim, BearingAtAp) {
  NetworkSimulator net = paper_testbed();
  const auto id = net.add_node({{1.0, 2.0}, 0.0}, 1e6);
  // Node due -x of the AP; AP faces -x (orientation pi) -> bearing ~0.
  EXPECT_NEAR(net.bearing_at_ap(*id), 0.0, 1e-9);
}

TEST(NetworkSim, MoveNodeChangesLink) {
  NetworkSimulator net = paper_testbed();
  const auto id = net.add_node({{4.5, 2.0}, 0.0}, 1e6);
  const double snr_near = net.link(*id).snr_db;
  net.set_node_pose(*id, {{0.5, 2.0}, 0.0});
  const double snr_far = net.link(*id).snr_db;
  EXPECT_GT(snr_near, snr_far);
}

TEST(NetworkSim, TwentyNodesAllGetService) {
  // §9.5 scale: 20 simultaneous nodes at 25 MHz-class demands -> FDM
  // fills, SDM absorbs the rest.
  Rng rng(1);
  NetworkSimulator net = paper_testbed();
  int granted = 0;
  for (int i = 0; i < 20; ++i) {
    const channel::Pose pose{{rng.uniform(0.5, 4.8), rng.uniform(0.5, 3.5)},
                             rng.uniform(-1.0, 1.0)};
    if (net.add_node(pose, 20e6)) ++granted;
  }
  EXPECT_GE(granted, 12);  // most nodes; SDM admission rejects unservable bearings
}

TEST(NetworkSim, SinrDegradesGracefullyWithLoad) {
  // Fig. 13 shape: average SINR decreases only slightly from 1 to 20
  // simultaneous transmitters and stays high.
  Rng rng(2);
  NetworkSimulator net = paper_testbed();
  std::vector<double> avg_by_k;
  for (int k = 0; k < 20; ++k) {
    const channel::Pose pose{{rng.uniform(0.5, 4.8), rng.uniform(0.5, 3.5)},
                             rng.uniform(-1.0, 1.0)};
    net.add_node(pose, 20e6);
    const auto sinr = net.sinr_all_db();
    if (sinr.empty()) continue;
    std::vector<double> vals;
    for (const auto& [id, s] : sinr) vals.push_back(s);
    avg_by_k.push_back(mean(vals));
  }
  ASSERT_GE(avg_by_k.size(), 10u);
  // High average throughout...
  EXPECT_GT(avg_by_k.back(), 15.0);
  // ...with only graceful degradation from the single-node case.
  EXPECT_LT(avg_by_k.front() - avg_by_k.back(), 15.0);
}

TEST(NetworkSim, RemoveNodeFreesResources) {
  NetworkSimulator net = paper_testbed();
  const auto a = net.add_node({{1.0, 2.0}, 0.0}, 180e6);
  ASSERT_TRUE(a);
  net.remove_node(*a);
  EXPECT_EQ(net.num_nodes(), 0u);
  const auto b = net.add_node({{2.0, 2.0}, 0.0}, 180e6);
  EXPECT_TRUE(b.has_value());
  EXPECT_EQ(net.grant(*b).sdm_harmonic, 0);
}

TEST(NetworkSim, ValidatesPositions) {
  NetworkSimulator net = paper_testbed();
  EXPECT_THROW(net.add_node({{10.0, 2.0}, 0.0}, 1e6), std::invalid_argument);
  const auto id = net.add_node({{1.0, 2.0}, 0.0}, 1e6);
  EXPECT_THROW(net.set_node_pose(*id, {{-1.0, 0.0}, 0.0}), std::invalid_argument);
  EXPECT_THROW(net.link(999), std::out_of_range);
  EXPECT_THROW(NetworkSimulator(channel::Room(6.0, 4.0), channel::Pose{{7.0, 2.0}, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmx::sim
