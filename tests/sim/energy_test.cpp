#include "mmx/sim/energy.hpp"

#include <gtest/gtest.h>

namespace mmx::sim {
namespace {

// A security camera streaming 2 Mbps around the clock: ~172.8 Gbit/day.
constexpr double kCameraDailyBits = 2e6 * 86400.0;

TEST(Energy, AirtimeArithmetic) {
  const RadioProfile mmx = mmx_radio_profile();
  // 172.8 Gbit at 100 Mbps = 1728 s of airtime.
  EXPECT_NEAR(daily_airtime_s(mmx, kCameraDailyBits), 1728.0, 0.5);
}

TEST(Energy, AveragePowerDominatedBySleepForBurstyLoads) {
  const RadioProfile mmx = mmx_radio_profile();
  const double avg = average_power_w(mmx, kCameraDailyBits);
  // 1728 s at 1.1 W spread over a day ~ 22 mW + sleep.
  EXPECT_LT(avg, 50e-3);
  EXPECT_GT(avg, 10e-3);
}

TEST(Energy, MmxOutlivesWifiOnCameraTraffic) {
  // Same 10 Wh battery, same daily volume: mmX finishes its upload
  // faster at lower power -> longer life (the Table 1 nJ/bit advantage
  // translated to days).
  const double battery_wh = 10.0;
  const double mmx_days = battery_life_days(mmx_radio_profile(), kCameraDailyBits, battery_wh);
  const double wifi_days =
      battery_life_days(wifi_radio_profile(), kCameraDailyBits, battery_wh);
  EXPECT_GT(mmx_days, wifi_days);
  EXPECT_GT(mmx_days, 10.0);  // weeks on a 10 Wh pack, streaming nonstop
}

TEST(Energy, BluetoothCannotCarryCameraTraffic) {
  // 1 Mbps x 86400 s = 86.4 Gbit/day < 172.8 Gbit: physically infeasible —
  // the §10 point that Bluetooth "is not sufficient for many IoT
  // applications".
  EXPECT_FALSE(can_sustain(bluetooth_radio_profile(), kCameraDailyBits));
  EXPECT_THROW(daily_airtime_s(bluetooth_radio_profile(), kCameraDailyBits),
               std::invalid_argument);
}

TEST(Energy, BluetoothFineForSensorTraffic) {
  // A thermostat reporting 1 kB/minute: BT's tiny active power wins.
  const double sensor_bits = 1024.0 * 8.0 * 60.0 * 24.0;
  EXPECT_TRUE(can_sustain(bluetooth_radio_profile(), sensor_bits));
  const double bt_days = battery_life_days(bluetooth_radio_profile(), sensor_bits, 10.0);
  const double mmx_days = battery_life_days(mmx_radio_profile(), sensor_bits, 10.0);
  EXPECT_GT(bt_days, 365.0);
  // mmX is still competitive because its sleep current is low.
  EXPECT_GT(mmx_days, 365.0);
}

TEST(Energy, MoreTrafficShorterLife) {
  const RadioProfile mmx = mmx_radio_profile();
  EXPECT_GT(battery_life_days(mmx, 1e9, 10.0), battery_life_days(mmx, 50e9, 10.0));
}

TEST(Energy, Validation) {
  EXPECT_THROW(battery_life_days(mmx_radio_profile(), 1e9, 0.0), std::invalid_argument);
  EXPECT_THROW(daily_airtime_s(mmx_radio_profile(), -1.0), std::invalid_argument);
  RadioProfile bad{"bad", 0.0, 1e6, 0.0};
  EXPECT_THROW(can_sustain(bad, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::sim
