#include "mmx/sim/stats.hpp"

#include <gtest/gtest.h>

namespace mmx::sim {
namespace {

TEST(Stats, MeanMedian) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 10.0};
  EXPECT_DOUBLE_EQ(mean(v), 4.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 9.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(v), -1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 7.0);
}

TEST(Stats, Ecdf) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ecdf(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(v, 10.0), 1.0);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> e;
  EXPECT_THROW(mean(e), std::invalid_argument);
  EXPECT_THROW(median(e), std::invalid_argument);
  EXPECT_THROW(percentile(e, 50.0), std::invalid_argument);
  EXPECT_THROW(min_of(e), std::invalid_argument);
  EXPECT_THROW(ecdf(e, 0.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, JainFairness) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0}), 1.0);
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  const double mixed = jain_fairness({10.0, 8.0, 12.0});
  EXPECT_GT(mixed, 0.9);
  EXPECT_LT(mixed, 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
  EXPECT_THROW(jain_fairness({}), std::invalid_argument);
  EXPECT_THROW(jain_fairness({1.0, -1.0}), std::invalid_argument);
}

TEST(Grid, StoresAndQueries) {
  Grid g(3, 2);
  g.at(0, 0) = 5.0;
  g.at(2, 1) = 30.0;
  EXPECT_DOUBLE_EQ(g.at(2, 1), 30.0);
  EXPECT_DOUBLE_EQ(g.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(g.max_value(), 30.0);
  EXPECT_NEAR(g.fraction_at_least(5.0), 2.0 / 6.0, 1e-12);
}

TEST(Grid, BoundsChecked) {
  Grid g(2, 2);
  EXPECT_THROW(g.at(2, 0), std::out_of_range);
  EXPECT_THROW(Grid(0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::sim
