// Fault-injection contract tests (ctest label: faults).
//
// Three claims are pinned here. (1) A FaultPlan is a pure function of
// (config, duration, seed). (2) A fault-injected scale run keeps the
// sweep engine's determinism contract: bit-identical reports at any
// refresh thread count, reproducible per seed — faults included. (3) The
// recovery paths actually recover: zombies get reaped, escalations
// rejoin, outages close, and the default storm's exact accounting is
// pinned as golden integers so any behavioral drift is a visible diff.
#include <gtest/gtest.h>

#include <cstdint>

#include "mmx/sim/faults.hpp"
#include "mmx/sim/scale_scenario.hpp"

namespace mmx::sim {
namespace {

// Same fast-but-representative shape as the scale-lane tests, plus the
// pinned default fault storm. Two simulated seconds so down times
// (0.4 s), reap silences (0.5 s) and capped backoffs all play out.
ScaleConfig faulty_config(std::size_t nodes = 120) {
  ScaleConfig cfg = make_scale_config(nodes);
  cfg.duration_s = 2.0;
  cfg.join_window_s = 0.5;
  cfg.churn_interval_s = 0.25;
  cfg.measure_interval_s = 0.0625;
  cfg.move_fraction = 0.05;
  cfg.leave_fraction = 0.02;
  cfg.faults = make_fault_storm();
  return cfg;
}

TEST(FaultPlan, IsAPureFunctionOfConfigDurationSeed) {
  const FaultConfig cfg = make_fault_storm();
  const FaultPlan a = FaultPlan::compile(cfg, 4.0, 99);
  const FaultPlan b = FaultPlan::compile(cfg, 4.0, 99);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_GT(a.events().size(), 0u);
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].t_s, b.events()[i].t_s);
    EXPECT_EQ(a.events()[i].duration_s, b.events()[i].duration_s);
    EXPECT_EQ(a.events()[i].rng_index, b.events()[i].rng_index);
  }
  // A different seed reshuffles the schedule.
  const FaultPlan c = FaultPlan::compile(cfg, 4.0, 100);
  ASSERT_EQ(c.events().size(), a.events().size());  // counts are rate-driven
  bool any_differs = false;
  for (std::size_t i = 0; i < a.events().size(); ++i)
    any_differs = any_differs || a.events()[i].t_s != c.events()[i].t_s;
  EXPECT_TRUE(any_differs);
}

TEST(FaultPlan, EventCountsFollowRatesAndScheduleIsSorted) {
  FaultConfig cfg = make_fault_storm();
  cfg.storm_rate_hz = 2.0;
  cfg.power_cycle_rate_hz = 3.0;
  cfg.revoke_rate_hz = 1.0;
  const double duration_s = 4.0;
  const FaultPlan plan = FaultPlan::compile(cfg, duration_s, 7);

  std::size_t storms = 0, cycles = 0, revokes = 0;
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    const FaultEvent& ev = plan.events()[i];
    switch (ev.kind) {
      case FaultEvent::Kind::kStorm: ++storms; break;
      case FaultEvent::Kind::kPowerCycle: ++cycles; break;
      case FaultEvent::Kind::kRevoke: ++revokes; break;
    }
    EXPECT_GE(ev.t_s, 0.0);
    EXPECT_LE(ev.t_s, duration_s);
    if (i > 0) {
      EXPECT_GE(ev.t_s, plan.events()[i - 1].t_s);  // time-sorted
    }
  }
  EXPECT_EQ(storms, 8u);    // 2 Hz * 4 s
  EXPECT_EQ(cycles, 12u);   // 3 Hz * 4 s
  EXPECT_EQ(revokes, 4u);   // 1 Hz * 4 s
}

TEST(FaultPlan, DisabledConfigCompilesToAnEmptySchedule) {
  const FaultPlan plan = FaultPlan::compile(FaultConfig{}, 8.0, 1);
  EXPECT_TRUE(plan.events().empty());
}

TEST(FaultPlan, RejectsInvalidConfigs) {
  const auto compile = [](FaultConfig cfg) { return FaultPlan::compile(cfg, 1.0, 0); };
  FaultConfig bad = make_fault_storm();
  bad.storm_rate_hz = -1.0;
  EXPECT_THROW(compile(bad), std::invalid_argument);
  bad = make_fault_storm();
  bad.storm_fraction = 1.5;
  EXPECT_THROW(compile(bad), std::invalid_argument);
  bad = make_fault_storm();
  bad.arq_giveups_to_rejoin = -1;
  EXPECT_THROW(compile(bad), std::invalid_argument);
  bad = make_fault_storm();
  bad.timeout_skew_frac = 1.0;
  EXPECT_THROW(compile(bad), std::invalid_argument);
  EXPECT_THROW(FaultPlan::compile(make_fault_storm(), 0.0, 0), std::invalid_argument);
}

TEST(FaultScenario, DisabledLayerEqualsZeroRateEnabledLayer) {
  // The enabled code path with every rate/probability at zero must
  // reproduce the fault-free run's report exactly: the extra machinery
  // (liveness notes, reaping sweeps, pacing gates) draws nothing and
  // changes nothing.
  ScaleConfig off = faulty_config();
  off.faults = FaultConfig{};
  ScaleConfig zeroed = off;
  zeroed.faults.enabled = true;
  const ScaleReport a = ScaleScenario(off).run(21);
  const ScaleReport b = ScaleScenario(zeroed).run(21);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.faults, FaultStats{});
}

TEST(FaultScenario, ReportIsBitIdenticalAcrossRefreshThreads) {
  // The tentpole contract: a full fault storm — reaps, rejoins, storms,
  // revocations — stays bit-identical at any refresh_threads, for more
  // than one seed.
  for (const std::uint64_t seed : {3ULL, 17ULL}) {
    ScaleConfig cfg = faulty_config();
    cfg.refresh_threads = 1;
    const ScaleReport r1 = ScaleScenario(cfg).run(seed);
    cfg.refresh_threads = 2;
    const ScaleReport r2 = ScaleScenario(cfg).run(seed);
    cfg.refresh_threads = 8;
    const ScaleReport r8 = ScaleScenario(cfg).run(seed);
    EXPECT_EQ(r1, r2) << "seed " << seed;
    EXPECT_EQ(r1, r8) << "seed " << seed;
    EXPECT_EQ(r1.mean_snr_db, r8.mean_snr_db) << "seed " << seed;
    EXPECT_EQ(r1.delivery_ratio, r8.delivery_ratio) << "seed " << seed;
  }
}

TEST(FaultScenario, SameSeedReproducesDifferentSeedDiverges) {
  const ScaleScenario scenario(faulty_config());
  const ScaleReport a = scenario.run(5);
  const ScaleReport b = scenario.run(5);
  const ScaleReport c = scenario.run(6);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(FaultScenario, CachedArmEqualsUncachedArmUnderFaults) {
  ScaleConfig cached = faulty_config();
  ScaleConfig uncached = cached;
  cached.use_cache = true;
  uncached.use_cache = false;
  const ScaleReport a = ScaleScenario(cached).run(9);
  const ScaleReport b = ScaleScenario(uncached).run(9);
  EXPECT_EQ(a, b);
}

TEST(FaultScenario, GoldenDefaultStormAccounting) {
  // Exact integer accounting of the pinned default storm (seed 61444).
  // These are golden values: a diff here means fault semantics changed
  // and docs/ROBUSTNESS.md + the bench baseline must be re-derived.
  const ScaleReport r = ScaleScenario(faulty_config()).run(0xF004);

  EXPECT_EQ(r.faults.storms, 2u);
  EXPECT_EQ(r.faults.power_cycles, 8u);
  EXPECT_EQ(r.faults.revocations, 4u);
  EXPECT_EQ(r.faults.acks_lost, 45u);
  EXPECT_EQ(r.faults.acks_corrupted, 17u);
  EXPECT_EQ(r.faults.reaped, 5u);
  EXPECT_EQ(r.faults.escalations, 42u);
  EXPECT_EQ(r.faults.rejoin_attempts, 40u);
  EXPECT_EQ(r.faults.recoveries, 42u);
  EXPECT_EQ(r.faults.recovery_rounds_sum, 82u);
  EXPECT_EQ(r.joins, 177u);
  EXPECT_EQ(r.granted, 177u);
  EXPECT_EQ(r.denied, 0u);
  EXPECT_EQ(r.leaves, 15u);
  EXPECT_EQ(r.arq.transmissions, 3326u);
  EXPECT_EQ(r.arq.delivered, 1880u);
  EXPECT_EQ(r.arq.gave_up, 220u);
  EXPECT_EQ(r.arq.duplicate_acks, 17u);
  EXPECT_EQ(r.measure_rounds, 32u);
  EXPECT_EQ(r.link_evals, 3330u);
}

TEST(FaultScenario, RecoveryPathsActuallyRecover) {
  const ScaleReport r = ScaleScenario(faulty_config()).run(12);
  // Every fault class fired...
  EXPECT_GT(r.faults.storms, 0u);
  EXPECT_GT(r.faults.power_cycles, 0u);
  EXPECT_GT(r.faults.revocations, 0u);
  EXPECT_GT(r.faults.acks_lost, 0u);
  // ...and the network healed: zombie grants were reaped, backoff rejoins
  // happened and closed outages.
  EXPECT_GT(r.faults.reaped, 0u);
  EXPECT_GT(r.faults.rejoin_attempts, 0u);
  EXPECT_GT(r.faults.recoveries, 0u);
  // Accounting sanity: every recovery went through a successful
  // registration, so join identities stay balanced.
  EXPECT_EQ(r.joins, r.granted + r.denied);
  // The storm hurts but the MAC keeps the floor: most resolved payloads
  // still deliver.
  EXPECT_GT(r.delivery_ratio, 0.5);
  EXPECT_LT(r.delivery_ratio, 1.0);
}

TEST(FaultScenario, ZombieGrantsAreReapedAndSpectrumIsReusable) {
  // Power-cycles only: a cycled grant-holder leaves a zombie grant that
  // nothing but the reaper can reclaim. With reaping working, rebooted
  // nodes re-acquire and the run keeps granting.
  ScaleConfig cfg = faulty_config();
  cfg.faults = FaultConfig{};
  cfg.faults.enabled = true;
  cfg.faults.power_cycle_rate_hz = 8.0;
  cfg.faults.power_cycle_down_s = 0.2;
  cfg.faults.reap_timeout_s = 0.3;
  const ScaleReport r = ScaleScenario(cfg).run(4);
  EXPECT_GT(r.faults.power_cycles, 0u);
  EXPECT_GT(r.faults.reaped, 0u);
  EXPECT_GT(r.faults.rejoin_attempts, 0u);
  EXPECT_GT(r.faults.recoveries, 0u);
  EXPECT_EQ(r.faults.storms, 0u);
  EXPECT_EQ(r.faults.acks_lost, 0u);
}

TEST(FaultStats, ParticipatesInReportEquality) {
  ScaleReport a, b;
  EXPECT_EQ(a, b);
  b.faults.storms = 1;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mmx::sim
