// Overload-control contract tests (ctest label: overload).
//
// Four claims are pinned here, per docs/ROBUSTNESS.md. (1) At the pinned
// 3x oversubscription lane the AP degrades gracefully instead of
// cliff-denying: admitted things keep delivery >= 0.80, nobody is ever
// granted below the configured rate floor, compaction actually fires,
// and the allocator's invariants never break. (2) The lane keeps the
// sweep engine's determinism contract: bit-identical reports at any
// refresh thread count, reproducible per seed. (3) Overload control
// composes with the fault storm. (4) With `overload.enabled` false every
// other overload knob is inert — the scenario is byte-identical to the
// pre-overload code path, which is what lets this PR ride next to the
// pinned fault goldens without touching them.
#include <gtest/gtest.h>

#include <cstdint>

#include "mmx/sim/faults.hpp"
#include "mmx/sim/scale_scenario.hpp"

namespace mmx::sim {
namespace {

TEST(OverloadLane, PinnedLaneMeetsAcceptanceFloors) {
  const ScaleConfig cfg = make_overload_config();
  const ScaleReport rep = ScaleScenario(cfg).run(42);

  // ~3x more things than the band fits at full rate actually arrived.
  EXPECT_GT(cfg.nodes, 200u);
  EXPECT_GT(rep.denied, 0u);

  // Graceful degradation, not a denial cliff: the admitted population
  // keeps a usable link...
  EXPECT_GT(rep.overload.admitted, 0u);
  EXPECT_GE(rep.delivery_ratio, 0.80);
  // ...and rate demotion stops at the floor, never below it.
  EXPECT_GT(rep.overload.demotions, 0u);
  EXPECT_GT(rep.overload.admitted_below_request, 0u);
  EXPECT_GE(rep.overload.min_admitted_rate_bps,
            cfg.sim.init.overload.min_rate_bps - 1.0);
  EXPECT_GE(rep.overload.mean_admitted_rate_bps, rep.overload.min_admitted_rate_bps);

  // Fragmentation blocked an admissible demand at least once and
  // compaction cleared it, re-tuning the moved holders.
  EXPECT_GE(rep.overload.compactions, 1u);
  EXPECT_GT(rep.overload.retunes, 0u);

  // Denies carry occupancy-derived backoff hints and the hinted
  // population actually came back through the backoff path.
  EXPECT_GT(rep.overload.hinted_denies, 0u);
  EXPECT_GT(rep.overload.hint_delay_sum_s, 0.0);
  EXPECT_GT(rep.overload.backoff_retries, 0u);

  // The spectrum map never went inconsistent. Non-negotiable.
  EXPECT_EQ(rep.overload.invariant_violations, 0u);
}

TEST(OverloadLane, ReportBitIdenticalAcrossRefreshThreads) {
  ScaleConfig cfg = make_overload_config();
  cfg.refresh_threads = 1;
  const ScaleReport serial = ScaleScenario(cfg).run(7);
  cfg.refresh_threads = 8;
  const ScaleReport threaded = ScaleScenario(cfg).run(7);
  EXPECT_TRUE(serial == threaded);
  EXPECT_TRUE(serial.overload == threaded.overload);
}

TEST(OverloadLane, ReproduciblePerSeedAndSeedSensitive) {
  const ScaleScenario sc(make_overload_config());
  const ScaleReport a = sc.run(3);
  const ScaleReport b = sc.run(3);
  EXPECT_TRUE(a == b);
  const ScaleReport c = sc.run(4);
  EXPECT_FALSE(a == c);
}

TEST(OverloadLane, ComposesWithFaultStorm) {
  ScaleConfig cfg = make_overload_config();
  cfg.faults = make_fault_storm();
  cfg.refresh_threads = 1;
  const ScaleReport serial = ScaleScenario(cfg).run(11);
  // Both subsystems were live in the same run...
  EXPECT_GT(serial.faults.power_cycles, 0u);
  EXPECT_GT(serial.overload.hinted_denies, 0u);
  EXPECT_EQ(serial.overload.invariant_violations, 0u);
  // ...and their composition keeps the determinism contract.
  cfg.refresh_threads = 8;
  const ScaleReport threaded = ScaleScenario(cfg).run(11);
  EXPECT_TRUE(serial == threaded);
}

TEST(OverloadLane, DisabledKnobsAreInert) {
  // Every overload knob set EXCEPT the master switch: the report must be
  // bit-identical to the untouched config. This is the scenario-level
  // proof that the overload machinery is invisible until enabled.
  ScaleConfig base = make_scale_config(60);
  base.duration_s = 1.0;
  base.join_window_s = 0.4;
  base.churn_interval_s = 0.25;
  base.leave_fraction = 0.02;

  ScaleConfig knobs = base;
  knobs.sim.init.overload.min_rate_bps = base.node_rate_bps / 4.0;
  knobs.sim.init.overload.best_fit = true;
  knobs.sim.init.overload.compaction = true;
  knobs.sim.init.overload.shedding = true;
  knobs.sim.init.overload.hint_base_s = 0.5;
  knobs.high_priority_period = 3;
  knobs.promote_every_rounds = 2;
  ASSERT_FALSE(knobs.sim.init.overload.enabled);

  const ScaleReport plain = ScaleScenario(base).run(5);
  const ScaleReport knobbed = ScaleScenario(knobs).run(5);
  EXPECT_TRUE(plain == knobbed);
  // And the overload accounting stays all-zero.
  EXPECT_TRUE(knobbed.overload == OverloadLaneReport{});
}

}  // namespace
}  // namespace mmx::sim
