#include "mmx/sim/link_budget.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"

namespace mmx::sim {
namespace {

TEST(LinkBudget, RxPowerArithmetic) {
  LinkBudget lb;
  // |h| = -60 dB, tx 10 dBm, impl loss 18 -> rx = -68 dBm.
  const double rx = lb.rx_power_dbm(std::complex<double>{1e-3, 0.0});
  EXPECT_NEAR(rx, 10.0 - 60.0 - 18.0, 1e-9);
}

TEST(LinkBudget, DeadLinkClamped) {
  LinkBudget lb;
  EXPECT_LE(lb.rx_power_dbm({0.0, 0.0}), -250.0);
}

TEST(LinkBudget, CalibrationPointNear1m) {
  // Sanity for the single calibration constant: a 1 m LoS boresight link
  // (antenna gains ~9 + 5 dBi, FSPL 60 dB) should land in the mid-30s of
  // SNR, matching the paper's "up to 35 dB" (§6.1) and Fig. 12's ceiling.
  LinkBudget lb;
  const double h_db = 9.0 + 5.0 - friis_path_loss_db(1.0, 24.125e9);
  const double snr = lb.snr_db(std::polar(db_to_amp(h_db), 0.0));
  EXPECT_GT(snr, 30.0);
  EXPECT_LT(snr, 45.0);
}

TEST(LinkBudget, RangeClaimAt18m) {
  // Fig. 12: facing node at 18 m still gets >= 15 dB.
  LinkBudget lb;
  const double h_db = 9.0 + 5.0 - friis_path_loss_db(18.0, 24.125e9);
  const double snr = lb.snr_db(std::polar(db_to_amp(h_db), 0.0));
  EXPECT_GT(snr, 13.0);
}

TEST(LinkBudget, OtamEvaluation) {
  LinkBudget lb;
  rf::SpdtSwitch sw;
  channel::BeamGains g;
  g.h1 = {1e-3, 0.0};   // strong beam
  g.h0 = {2.5e-4, 0.0}; // 12 dB weaker
  const OtamLink link = lb.evaluate_otam(g, sw);
  EXPECT_GT(link.rx1_dbm, link.rx0_dbm);
  EXPECT_NEAR(link.contrast_db, 12.0, 0.5);
  EXPECT_LT(link.joint_ber, 1e-9);  // plenty of margin at these levels
  EXPECT_LE(link.joint_ber, link.ask_ber);
  EXPECT_LE(link.joint_ber, link.fsk_ber);
}

TEST(LinkBudget, EqualLevelsKillAskButNotFsk) {
  LinkBudget lb;
  rf::SpdtSwitch sw;
  channel::BeamGains g;
  g.h1 = {1e-3, 0.0};
  g.h0 = {1e-3, 0.0};
  const OtamLink link = lb.evaluate_otam(g, sw);
  EXPECT_GT(link.ask_ber, 0.4);  // coin flip
  EXPECT_LT(link.fsk_ber, 1e-9);
  EXPECT_LT(link.joint_ber, 1e-9);  // §6.3: joint saves the link
}

TEST(LinkBudget, FixedBeamBaselineDiesInBeamNull) {
  LinkBudget lb;
  rf::SpdtSwitch sw;
  channel::BeamGains g;
  g.h1 = {1e-6, 0.0};  // Beam 1 nulled (AP at 30 degrees, or blocked LoS)
  g.h0 = {1e-3, 0.0};
  const OtamLink base = lb.evaluate_fixed_beam(g);
  const OtamLink otam = lb.evaluate_otam(g, sw);
  EXPECT_LT(base.snr_db, 0.0);
  EXPECT_GT(otam.snr_db, 20.0);
  EXPECT_GT(base.joint_ber, 0.01);
  EXPECT_LT(otam.joint_ber, 1e-9);
}

TEST(LinkBudget, AveragingImprovesBer) {
  LinkBudget lb;
  rf::SpdtSwitch sw;
  channel::BeamGains g;
  g.h1 = {4e-5, 0.0};
  g.h0 = {1e-5, 0.0};
  const OtamLink l1 = lb.evaluate_otam(g, sw, 1);
  const OtamLink l16 = lb.evaluate_otam(g, sw, 16);
  EXPECT_LT(l16.ask_ber, l1.ask_ber);
}

TEST(LinkBudget, BadSpecThrows) {
  LinkBudgetSpec s;
  s.implementation_loss_db = -1.0;
  EXPECT_THROW(LinkBudget{s}, std::invalid_argument);
  LinkBudget lb;
  channel::BeamGains g;
  EXPECT_THROW(lb.evaluate_fixed_beam(g, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::sim
