// Validation lane: Monte-Carlo sample-level demodulation cross-checked
// against the analytic BER models over an SNR grid.
//
// The network layer (Fig. 11 regeneration, the scale lane's frame
// delivery draws) trusts `ber_two_level` / `ber_bfsk_noncoherent` as a
// stand-in for running the sample-level PHY; this suite is the contract
// that keeps that substitution honest. For each SNR point we synthesize
// actual waveforms, add calibrated AWGN, demodulate, count errors, and
// require the measured BER to sit within a 3x band of the prediction
// (~1 dB on the waterfall — the envelope/Gaussian approximation gap).
//
// Complements tests/phy/ber_validation_test.cpp, which pins the ASK
// branch at the default OTAM contrast: this grid uses a different beam
// contrast for ASK and adds the FSK branch, which the phy suite does not
// cross-validate at sample level.
#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/phy/ber.hpp"
#include "mmx/phy/pipeline.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  cfg.guard_frac = 0.0;  // integrate the whole symbol so n_avg is exact
  return cfg;
}

// A weaker beam contrast than the phy-suite fixture (|h0| = 0.35 vs
// 0.25): the ASK decision margin shrinks, so this grid exercises the
// analytic model at a point the existing validation does not.
const OtamChannel kChannel{{0.35, 0.0}, {1.0, 0.0}};

double measured_ask_ber(double snr_db, std::size_t total_bits, Rng& rng) {
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const Bits& prefix = default_preamble();
  std::size_t errors = 0;
  std::size_t counted = 0;
  FramePipeline& pipe = thread_pipeline(cfg);  // warm buffers across frames
  while (counted < total_bits) {
    Bits bits = prefix;
    for (int i = 0; i < 2000; ++i) bits.push_back(rng.uniform_int(0, 1));
    pipe.synthesize_otam(bits, kChannel, sw);
    // The analytic noise_power argument is relative to the strong level.
    const OtamLevels lv = otam_levels(kChannel, sw);
    const double noise_power = lv.level1 * lv.level1 / db_to_lin(snr_db);
    pipe.add_noise(noise_power, rng);
    const AskDecision& d = pipe.demodulate_ask(prefix);
    // Drop sync failures (a real receiver re-arms on a bad training
    // field); counting them would measure polarity flips, not BER.
    std::size_t prefix_err = 0;
    for (std::size_t i = 0; i < prefix.size(); ++i) prefix_err += (d.bits[i] != prefix[i]);
    if (prefix_err > prefix.size() / 4) continue;
    for (std::size_t i = prefix.size(); i < bits.size(); ++i) {
      errors += (d.bits[i] != bits[i]);
      ++counted;
    }
  }
  return static_cast<double>(errors) / static_cast<double>(counted);
}

double predicted_ask_ber(double snr_db) {
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const OtamLevels lv = otam_levels(kChannel, sw);
  const double noise_power = lv.level1 * lv.level1 / db_to_lin(snr_db);
  return ber_two_level(lv.level1, lv.level0, noise_power, cfg.samples_per_symbol);
}

/// Measure the FSK branch: pure unit-amplitude BFSK tones + AWGN at a
/// per-sample SNR, Goertzel tone discrimination.
double measured_fsk_ber(double snr_db, std::size_t total_bits, Rng& rng) {
  const PhyConfig cfg = test_cfg();
  std::size_t errors = 0;
  std::size_t counted = 0;
  FramePipeline& pipe = thread_pipeline(cfg);  // warm buffers across frames
  while (counted < total_bits) {
    Bits bits(2000);
    for (int& b : bits) b = rng.uniform_int(0, 1);
    pipe.modulate_fsk(bits);
    const double noise_power = 1.0 / db_to_lin(snr_db);  // unit tone amplitude
    pipe.add_noise(noise_power, rng);
    const FskDecision& d = pipe.demodulate_fsk();
    for (std::size_t i = 0; i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
    counted += bits.size();
  }
  return static_cast<double>(errors) / static_cast<double>(counted);
}

/// The Goertzel filter integrates the tone coherently over the symbol, so
/// the per-symbol SNR entering the non-coherent BFSK formula is the
/// per-sample SNR times the samples integrated (= sps at guard_frac 0) —
/// the same n_avg mapping LinkBudget::evaluate_otam uses.
double predicted_fsk_ber(double snr_db) {
  const PhyConfig cfg = test_cfg();
  const double n_used = static_cast<double>(cfg.samples_per_symbol);
  return ber_bfsk_noncoherent(db_to_lin(snr_db) * n_used);
}

class AskMcSweep : public ::testing::TestWithParam<double> {};

TEST_P(AskMcSweep, MeasuredWithinFactorOfAnalytic) {
  const double snr_db = GetParam();
  Rng rng(static_cast<std::uint64_t>(snr_db * 1000.0) + 11);
  const double predicted = predicted_ask_ber(snr_db);
  ASSERT_GT(predicted, 1e-4) << "pick SNRs where errors are countable";
  const auto bits_needed = static_cast<std::size_t>(std::min(2e6, 200.0 / predicted));
  const double measured = measured_ask_ber(snr_db, bits_needed, rng);
  EXPECT_GT(measured, predicted / 3.0) << "SNR " << snr_db;
  EXPECT_LT(measured, predicted * 3.0) << "SNR " << snr_db;
}

// Per-sample SNRs putting the per-symbol (x16) ASK BER in a countable
// range for the 0.35-contrast channel.
INSTANTIATE_TEST_SUITE_P(Grid, AskMcSweep, ::testing::Values(-8.0, -6.5, -5.0));

class FskMcSweep : public ::testing::TestWithParam<double> {};

TEST_P(FskMcSweep, MeasuredWithinFactorOfAnalytic) {
  const double snr_db = GetParam();
  Rng rng(static_cast<std::uint64_t>(snr_db * 1000.0) + 13);
  const double predicted = predicted_fsk_ber(snr_db);
  ASSERT_GT(predicted, 1e-4) << "pick SNRs where errors are countable";
  const auto bits_needed = static_cast<std::size_t>(std::min(2e6, 200.0 / predicted));
  const double measured = measured_fsk_ber(snr_db, bits_needed, rng);
  EXPECT_GT(measured, predicted / 3.0) << "SNR " << snr_db;
  EXPECT_LT(measured, predicted * 3.0) << "SNR " << snr_db;
}

// Per-sample SNRs mapping to per-symbol gammas of ~5.7/7.1/9.0 — FSK BER
// ~3e-2 down to ~5e-3.
INSTANTIATE_TEST_SUITE_P(Grid, FskMcSweep, ::testing::Values(-4.5, -3.5, -2.5));

TEST(McBerValidation, AskWaterfallMonotone) {
  Rng rng(101);
  EXPECT_GT(measured_ask_ber(-9.0, 40000, rng), measured_ask_ber(-5.0, 40000, rng));
}

TEST(McBerValidation, FskWaterfallMonotone) {
  Rng rng(103);
  EXPECT_GT(measured_fsk_ber(-5.0, 40000, rng), measured_fsk_ber(-2.0, 40000, rng));
}

}  // namespace
}  // namespace mmx::phy
