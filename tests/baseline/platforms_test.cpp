#include "mmx/baseline/platforms.hpp"

#include <gtest/gtest.h>

namespace mmx::baseline {
namespace {

TEST(Table1, AllRowsPresent) {
  const auto rows = table1_platforms();
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_NO_THROW(platform(rows, "mmX"));
  EXPECT_NO_THROW(platform(rows, "MiRa"));
  EXPECT_NO_THROW(platform(rows, "OpenMili/Pasternack"));
  EXPECT_NO_THROW(platform(rows, "WiFi (802.11n)"));
  EXPECT_NO_THROW(platform(rows, "Bluetooth"));
  EXPECT_THROW(platform(rows, "LoRa"), std::out_of_range);
}

TEST(Table1, MmxRowMatchesPaperHeadline) {
  const auto rows = table1_platforms();
  const PlatformSpec& mmx_row = platform(rows, "mmX");
  EXPECT_NEAR(mmx_row.cost_usd, 110.0, 1.0);
  EXPECT_NEAR(mmx_row.power_w, 1.1, 0.01);
  EXPECT_NEAR(mmx_row.energy_per_bit_nj(), 11.0, 0.2);
  EXPECT_DOUBLE_EQ(mmx_row.bitrate_bps, 100e6);
  EXPECT_DOUBLE_EQ(mmx_row.range_m, 18.0);
  EXPECT_DOUBLE_EQ(mmx_row.tx_power_dbm, 10.0);
}

TEST(Table1, MmxCheaperAndLowerPowerThanMmwavePlatforms) {
  const auto rows = table1_platforms();
  const auto& mmx_row = platform(rows, "mmX");
  for (const char* other : {"MiRa", "OpenMili/Pasternack"}) {
    const auto& p = platform(rows, other);
    EXPECT_LT(mmx_row.cost_usd, p.cost_usd / 10.0);
    EXPECT_LT(mmx_row.power_w, p.power_w);
  }
}

TEST(Table1, MmxBeatsWifiEnergyEfficiency) {
  // Paper §1: "energy efficiency of 11 nJ/bit, which is even lower than
  // existing WiFi modules" (17.5 nJ/bit).
  const auto rows = table1_platforms();
  EXPECT_LT(platform(rows, "mmX").energy_per_bit_nj(),
            platform(rows, "WiFi (802.11n)").energy_per_bit_nj());
  EXPECT_LT(platform(rows, "mmX").energy_per_bit_nj(),
            platform(rows, "Bluetooth").energy_per_bit_nj());
}

TEST(Table1, BitrateOrdering) {
  // Gbps platforms > mmX (100 Mbps) > Bluetooth (1 Mbps).
  const auto rows = table1_platforms();
  EXPECT_GT(platform(rows, "MiRa").bitrate_bps, platform(rows, "mmX").bitrate_bps);
  EXPECT_GT(platform(rows, "mmX").bitrate_bps, platform(rows, "Bluetooth").bitrate_bps);
}

TEST(Table1, EnergyPerBitValidation) {
  PlatformSpec bad{"x", 1e9, 0.0, 1.0, 0.0, 1e6, 0.0, 1.0};
  EXPECT_THROW(bad.energy_per_bit_nj(), std::logic_error);
}

}  // namespace
}  // namespace mmx::baseline
