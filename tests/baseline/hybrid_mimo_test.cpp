#include "mmx/baseline/hybrid_mimo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/antenna/tma.hpp"
#include "mmx/common/units.hpp"
#include "mmx/rf/budget.hpp"

namespace mmx::baseline {
namespace {

TEST(HybridMimo, PatternPeaksAtSteerAngle) {
  HybridMimoAp ap;
  for (double steer : {-0.5, 0.0, 0.4}) {
    EXPECT_NEAR(ap.chain_pattern(steer, steer), 1.0, 1e-12);
    // Off-peak strictly lower.
    EXPECT_LT(ap.chain_pattern(steer, steer + 0.3), 1.0);
  }
}

TEST(HybridMimo, PatternNullsAtExpectedAngles) {
  // 8-element, half-wave array steered broadside: first null where
  // N*psi/2 = pi -> sin(theta) = 2/N = 0.25.
  HybridMimoAp ap;
  EXPECT_NEAR(ap.chain_pattern(0.0, std::asin(0.25)), 0.0, 1e-12);
}

TEST(HybridMimo, WellSeparatedNodesGetHighSir) {
  HybridMimoAp ap;
  const std::vector<double> bearings{-0.5, 0.0, 0.5};
  const MimoPlan p = ap.plan(bearings);
  EXPECT_EQ(p.assignments.size(), 3u);
  EXPECT_GT(p.min_sir_db, 15.0);
}

TEST(HybridMimo, CloseNodesDegrade) {
  HybridMimoAp ap;
  const std::vector<double> far{-0.5, 0.5};
  const std::vector<double> close{0.0, 0.08};
  EXPECT_GT(ap.plan(far).min_sir_db, ap.plan(close).min_sir_db + 10.0);
}

TEST(HybridMimo, BeatsTmaOnSeparation) {
  // The honest half of §7b's trade: digital per-chain beams usually
  // separate better than TMA harmonic sidelobes...
  HybridMimoAp mimo;
  auto tma = antenna::TimeModulatedArray::progressive(antenna::TmaSpec{}, 0.125, 0.45);
  const std::vector<double> bearings{tma.steered_angle(0), tma.steered_angle(1),
                                     tma.steered_angle(2)};
  const std::vector<int> harmonics{0, 1, 2};
  EXPECT_GE(mimo.plan(bearings).min_sir_db, tma.demux_sir_db(bearings, harmonics) - 1.0);
}

TEST(HybridMimo, PowerAndCostAreWhyThePaperSaysNo) {
  // ...and the other half: a 4-chain hybrid AP burns an order of
  // magnitude more receiver power than mmX's whole single-chain AP and
  // costs thousands (paper §6: shifters $150, LNAs, chains).
  HybridMimoAp mimo;
  EXPECT_GT(mimo.total_power_w(), 10.0);
  EXPECT_GT(mimo.total_cost_usd(), 5000.0);
  const rf::Budget mmx_ap = rf::mmx_ap_budget();
  EXPECT_GT(mimo.total_power_w(), 10.0 * mmx_ap.total_power_w());
  EXPECT_GT(mimo.total_cost_usd(), 10.0 * mmx_ap.total_cost_usd());
}

TEST(HybridMimo, CapacityBoundedByChains) {
  HybridMimoAp ap(HybridMimoSpec{.num_chains = 2});
  const std::vector<double> three{-0.4, 0.0, 0.4};
  EXPECT_THROW(ap.plan(three), std::invalid_argument);
  EXPECT_THROW(ap.plan(std::vector<double>{}), std::invalid_argument);
}

TEST(HybridMimo, BadSpecThrows) {
  EXPECT_THROW(HybridMimoAp(HybridMimoSpec{.num_chains = 0}), std::invalid_argument);
  EXPECT_THROW(HybridMimoAp(HybridMimoSpec{.elements_per_chain = 0}), std::invalid_argument);
  EXPECT_THROW(HybridMimoAp(HybridMimoSpec{.spacing_wavelengths = 0.0}),
               std::invalid_argument);
}

class MimoElementSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MimoElementSweep, MoreElementsSharperSeparation) {
  HybridMimoSpec small;
  small.elements_per_chain = 4;
  HybridMimoSpec big;
  big.elements_per_chain = GetParam();
  const std::vector<double> bearings{0.0, 0.35};
  const double sir_small = HybridMimoAp(small).plan(bearings).min_sir_db;
  const double sir_big = HybridMimoAp(big).plan(bearings).min_sir_db;
  EXPECT_GE(sir_big, sir_small - 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MimoElementSweep, ::testing::Values(8, 16, 32));

}  // namespace
}  // namespace mmx::baseline
