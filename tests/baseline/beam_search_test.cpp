#include "mmx/baseline/beam_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/baseline/fixed_beam.hpp"
#include "mmx/common/units.hpp"

namespace mmx::baseline {
namespace {

struct Scene {
  channel::Room room{6.0, 4.0};
  antenna::Dipole ap_antenna{};
  antenna::MmxBeamPair beams{};
  sim::LinkBudget budget{};
  rf::SpdtSwitch spdt{};
  channel::Pose node{{1.0, 2.0}, 0.0};
  channel::Pose ap{{5.0, 2.0}, kPi};
};

TEST(BeamSearch, CodebookSpansFieldOfView) {
  BeamSearchNode bs;
  EXPECT_NEAR(rad_to_deg(bs.beam_angle(0)), -60.0, 1e-9);
  EXPECT_NEAR(rad_to_deg(bs.beam_angle(bs.codebook_size() - 1)), 60.0, 1e-9);
  EXPECT_THROW(bs.beam_angle(99), std::out_of_range);
}

TEST(BeamSearch, ExhaustiveFindsLosBeam) {
  Scene s;
  channel::RayTracer rt(s.room);
  BeamSearchNode bs;
  const SearchOutcome out = bs.exhaustive_search(rt, s.node, s.ap, s.ap_antenna, s.budget);
  // AP dead ahead: winning beam should steer near 0 degrees.
  EXPECT_NEAR(rad_to_deg(bs.beam_angle(out.best_beam)), 0.0, 10.0);
  EXPECT_EQ(out.probes, bs.codebook_size());
  EXPECT_GT(out.best_snr_db, 15.0);
}

TEST(BeamSearch, SearchCostsScaleWithCodebook) {
  BeamSearchSpec spec;
  spec.codebook_size = 32;
  BeamSearchNode bs(spec);
  Scene s;
  channel::RayTracer rt(s.room);
  const SearchOutcome out = bs.exhaustive_search(rt, s.node, s.ap, s.ap_antenna, s.budget);
  EXPECT_EQ(out.probes, 32u);
  EXPECT_NEAR(out.search_time_s, 32 * 50e-6, 1e-9);
  EXPECT_NEAR(out.search_energy_j, 32 * 100e-6, 1e-12);
}

TEST(BeamSearch, SharperBeamBeatsOtamSnrWhenAligned) {
  // The honest trade-off: an 8-element phased array, once aligned, beats
  // the fixed 2-element pair on raw SNR...
  Scene s;
  channel::RayTracer rt(s.room);
  BeamSearchNode bs;
  const SearchOutcome search = bs.exhaustive_search(rt, s.node, s.ap, s.ap_antenna, s.budget);
  const ModeComparison modes = compare_modes(rt, s.node, s.beams, s.ap, s.ap_antenna,
                                             24.125e9, s.budget, s.spdt);
  EXPECT_GT(search.best_snr_db, modes.with_otam.snr_db);
}

TEST(BeamSearch, StaleBeamCollapsesAfterRotation) {
  // ...but motion invalidates the alignment: re-use yesterday's beam
  // after a 40-degree rotation and the link craters, while OTAM needs no
  // realignment (§6: "regular mobility ... means the beam must perform a
  // continuous search").
  Scene s;
  channel::RayTracer rt(s.room);
  BeamSearchNode bs;
  const SearchOutcome aligned = bs.exhaustive_search(rt, s.node, s.ap, s.ap_antenna, s.budget);

  channel::Pose rotated = s.node;
  rotated.orientation_rad += deg_to_rad(40.0);
  const auto stale_h =
      bs.beam_gain(aligned.best_beam, rt, rotated, s.ap, s.ap_antenna);
  const double stale_snr = s.budget.snr_db(stale_h);
  EXPECT_LT(stale_snr, aligned.best_snr_db - 10.0);

  const ModeComparison modes = compare_modes(rt, rotated, s.beams, s.ap, s.ap_antenna,
                                             24.125e9, s.budget, s.spdt);
  EXPECT_GT(modes.with_otam.snr_db, stale_snr);
}

TEST(BeamSearch, PhasedArrayPowerExceedsMmxNode) {
  // §6: phased array alone "consumes more than a watt" — on top of the
  // radio. The mmX node's entire budget is 1.1 W.
  BeamSearchNode bs;
  EXPECT_GT(bs.spec().phased_array_power_w, 1.0);
}

TEST(BeamSearch, BadSpecThrows) {
  BeamSearchSpec s;
  s.codebook_size = 1;
  EXPECT_THROW(BeamSearchNode{s}, std::invalid_argument);
  BeamSearchSpec s2;
  s2.probe_time_s = 0.0;
  EXPECT_THROW(BeamSearchNode{s2}, std::invalid_argument);
}

TEST(FixedBeam, ComparisonConsistentWithDirectEvaluation) {
  Scene s;
  channel::RayTracer rt(s.room);
  const ModeComparison modes = compare_modes(rt, s.node, s.beams, s.ap, s.ap_antenna,
                                             24.125e9, s.budget, s.spdt);
  // Facing the AP: both healthy, OTAM no worse on BER.
  EXPECT_GT(modes.without_otam.snr_db, 10.0);
  EXPECT_LE(modes.with_otam.joint_ber, modes.without_otam.joint_ber + 1e-12);
}

}  // namespace
}  // namespace mmx::baseline
