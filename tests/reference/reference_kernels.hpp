// Pre-fast-path ("reference") forms of the hot DSP and PHY kernels,
// kept verbatim from before the rotator/plan rewrite so tests and
// benchmarks can check the fast path against them:
//
//  - per-sample-trig Goertzel and NCO (cos/sin each sample, wrap_angle),
//  - the twiddle-recurrence FFT (w *= wlen inside the butterfly), plus a
//    naive O(N^2) DFT as ground truth,
//  - the allocating per-call demodulators that recompute every statistic.
//
// These are intentionally slow. They are the baseline for the
// kernel-equivalence suite (tests/dsp/fastpath_equivalence_test.cpp) and
// for the ref-vs-fast speedup gates in bench/micro_dsp.cpp.
#pragma once

#include <cstddef>

#include "mmx/dsp/types.hpp"
#include "mmx/phy/ask.hpp"
#include "mmx/phy/config.hpp"
#include "mmx/phy/fsk.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/otam.hpp"
#include "mmx/rf/spdt.hpp"

namespace mmx::refdsp {

using dsp::Complex;
using dsp::Cvec;
using dsp::Rvec;

/// Direct-correlation Goertzel, one cos/sin pair per sample.
Complex goertzel(std::span<const Complex> x, double freq_hz, double sample_rate_hz);
double goertzel_power(std::span<const Complex> x, double freq_hz, double sample_rate_hz);

/// Phase-accumulator NCO, one cos/sin pair per sample.
class RefNco {
 public:
  RefNco(double sample_rate_hz, double freq_hz);
  void set_frequency(double freq_hz);
  void set_phase(double rad) { phase_ = rad; }
  double phase() const { return phase_; }
  Complex next();
  Cvec generate(std::size_t n);

 private:
  double sample_rate_hz_;
  double freq_hz_ = 0.0;
  double phase_ = 0.0;
  double step_ = 0.0;
};

/// Per-sample-trig linear chirp.
Cvec chirp(double sample_rate_hz, double f0_hz, double f1_hz, std::size_t n);

/// Radix-2 FFT with the w *= wlen twiddle recurrence (no plan/tables).
void fft_inplace(std::span<Complex> x);
void ifft_inplace(std::span<Complex> x);

/// Naive O(N^2) DFT — ground truth for the plan-vs-reference checks.
Cvec naive_dft(std::span<const Complex> x, bool inverse);

/// Fresh per-sample ring-buffer FIR pass over `x` (zero initial state).
Cvec fir_apply(const Rvec& taps, std::span<const Complex> x);

// --- PHY: the allocating per-call demodulation path -------------------

Cvec otam_synthesize(const phy::Bits& bits, const phy::PhyConfig& cfg,
                     const phy::OtamChannel& channel, const rf::SpdtSwitch& spdt,
                     double tx_amplitude = 1.0);

phy::AskDecision ask_demodulate(std::span<const Complex> rx, const phy::PhyConfig& cfg,
                                const phy::Bits& known_prefix = {});

phy::FskDecision fsk_demodulate(std::span<const Complex> rx, const phy::PhyConfig& cfg);

/// The old joint demodulator: runs both branch demodulators (each with
/// its own allocations) and then re-measures the envelope and both tone
/// powers a second time in the fusion loop.
phy::JointDecision joint_demodulate(std::span<const Complex> rx, const phy::PhyConfig& cfg,
                                    const phy::Bits& known_prefix = {});

}  // namespace mmx::refdsp
