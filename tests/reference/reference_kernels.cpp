// Verbatim copies of the pre-fast-path kernels (see header). Trig calls
// in per-sample loops are the whole point here, so the lint rule does not
// scan tests/; these TUs must stay out of src/dsp/.
#include "reference_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"
#include "mmx/dsp/envelope.hpp"

namespace mmx::refdsp {

using mmx::kTwoPi;
using mmx::wrap_angle;

Complex goertzel(std::span<const Complex> x, double freq_hz, double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("goertzel: sample rate must be > 0");
  const double w = kTwoPi * freq_hz / sample_rate_hz;
  Complex acc{0.0, 0.0};
  double phase = 0.0;
  for (const Complex& s : x) {
    acc += s * Complex{std::cos(phase), -std::sin(phase)};
    phase = wrap_angle(phase + w);
  }
  return acc;
}

double goertzel_power(std::span<const Complex> x, double freq_hz, double sample_rate_hz) {
  if (x.empty()) return 0.0;
  const Complex c = goertzel(x, freq_hz, sample_rate_hz);
  const double n = static_cast<double>(x.size());
  return std::norm(c) / (n * n);
}

RefNco::RefNco(double sample_rate_hz, double freq_hz) : sample_rate_hz_(sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("Nco: sample rate must be > 0");
  set_frequency(freq_hz);
}

void RefNco::set_frequency(double freq_hz) {
  if (std::abs(freq_hz) > sample_rate_hz_ / 2.0)
    throw std::invalid_argument("Nco: frequency exceeds Nyquist");
  freq_hz_ = freq_hz;
  step_ = kTwoPi * freq_hz / sample_rate_hz_;
}

Complex RefNco::next() {
  const Complex s{std::cos(phase_), std::sin(phase_)};
  phase_ = wrap_angle(phase_ + step_);
  return s;
}

Cvec RefNco::generate(std::size_t n) {
  Cvec out(n);
  for (Complex& s : out) s = next();
  return out;
}

Cvec chirp(double sample_rate_hz, double f0_hz, double f1_hz, std::size_t n) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("chirp: sample rate must be > 0");
  Cvec out(n);
  if (n == 0) return out;
  const double df = (f1_hz - f0_hz) / static_cast<double>(n);
  double phase = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = Complex{std::cos(phase), std::sin(phase)};
    const double f = f0_hz + df * static_cast<double>(i);
    phase = wrap_angle(phase + kTwoPi * f / sample_rate_hz);
  }
  return out;
}

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void bit_reverse_permute(std::span<Complex> x) {
  const std::size_t n = x.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

void fft_core(std::span<Complex> x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");
  bit_reverse_permute(x);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const Complex wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (Complex& s : x) s *= inv;
  }
}

}  // namespace

void fft_inplace(std::span<Complex> x) { fft_core(x, /*inverse=*/false); }
void ifft_inplace(std::span<Complex> x) { fft_core(x, /*inverse=*/true); }

Cvec naive_dft(std::span<const Complex> x, bool inverse) {
  const std::size_t n = x.size();
  Cvec out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const double ang =
          sign * kTwoPi * static_cast<double>(k) * static_cast<double>(i) / static_cast<double>(n);
      acc += x[i] * Complex{std::cos(ang), std::sin(ang)};
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

Cvec fir_apply(const Rvec& taps, std::span<const Complex> x) {
  if (taps.empty()) throw std::invalid_argument("fir_apply: empty taps");
  Cvec delay(taps.size(), Complex{});
  std::size_t head = 0;
  Cvec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    delay[head] = x[i];
    Complex acc{0.0, 0.0};
    std::size_t idx = head;
    for (const double t : taps) {
      acc += t * delay[idx];
      idx = (idx == 0) ? delay.size() - 1 : idx - 1;
    }
    head = (head + 1) % delay.size();
    out[i] = acc;
  }
  return out;
}

// --- PHY ---------------------------------------------------------------

Cvec otam_synthesize(const phy::Bits& bits, const phy::PhyConfig& cfg,
                     const phy::OtamChannel& channel, const rf::SpdtSwitch& spdt,
                     double tx_amplitude) {
  cfg.validate();
  spdt.check_symbol_rate(cfg.symbol_rate_hz);
  if (tx_amplitude <= 0.0) throw std::invalid_argument("otam_synthesize: amplitude must be > 0");
  const double g_thru = spdt.through_gain();
  const double g_leak = spdt.leak_gain();
  const std::complex<double> eff1 = g_thru * channel.h1 + g_leak * channel.h0;
  const std::complex<double> eff0 = g_thru * channel.h0 + g_leak * channel.h1;

  RefNco nco(cfg.sample_rate_hz(), cfg.fsk_freq0_hz);
  Cvec out;
  out.reserve(bits.size() * cfg.samples_per_symbol);
  for (int b : bits) {
    if (b != 0 && b != 1) throw std::invalid_argument("otam_synthesize: bits must be 0/1");
    nco.set_frequency(b ? cfg.fsk_freq1_hz : cfg.fsk_freq0_hz);
    const std::complex<double> eff = tx_amplitude * (b ? eff1 : eff0);
    for (std::size_t i = 0; i < cfg.samples_per_symbol; ++i) out.push_back(eff * nco.next());
  }
  return out;
}

namespace {

constexpr double kEps = 1e-12;

struct TwoMeans {
  double low;
  double high;
  double threshold;
};

TwoMeans two_means(std::span<const double> v) {
  const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
  double lo = *mn;
  double hi = *mx;
  for (int iter = 0; iter < 32; ++iter) {
    const double mid = (lo + hi) / 2.0;
    double slo = 0.0;
    double shi = 0.0;
    std::size_t nlo = 0;
    std::size_t nhi = 0;
    for (double x : v) {
      if (x < mid) {
        slo += x;
        ++nlo;
      } else {
        shi += x;
        ++nhi;
      }
    }
    const double new_lo = (nlo > 0) ? slo / static_cast<double>(nlo) : lo;
    const double new_hi = (nhi > 0) ? shi / static_cast<double>(nhi) : hi;
    if (std::abs(new_lo - lo) < kEps && std::abs(new_hi - hi) < kEps) break;
    lo = new_lo;
    hi = new_hi;
  }
  return {lo, hi, (lo + hi) / 2.0};
}

double stddev_around(std::span<const double> v, double mean, double threshold, bool upper) {
  double acc = 0.0;
  std::size_t n = 0;
  for (double x : v) {
    const bool is_upper = x >= threshold;
    if (is_upper != upper) continue;
    acc += (x - mean) * (x - mean);
    ++n;
  }
  return (n > 0) ? std::sqrt(acc / static_cast<double>(n)) : 0.0;
}

double weight(double q) { return q * q; }

// Pre-rewrite symbol_envelopes: per-sample std::abs (the hypot libcall).
// The production kernel switched to sqrt(norm); the reference demodulators
// keep this form so ref-vs-fast comparisons measure the old pipeline.
Rvec ref_symbol_envelopes(std::span<const Complex> x, std::size_t samples_per_symbol,
                          double guard_frac) {
  if (samples_per_symbol == 0)
    throw std::invalid_argument("symbol_envelopes: samples_per_symbol must be > 0");
  if (guard_frac < 0.0 || guard_frac >= 0.5)
    throw std::invalid_argument("symbol_envelopes: guard_frac must be in [0, 0.5)");
  const std::size_t n_sym = x.size() / samples_per_symbol;
  Rvec out(n_sym, 0.0);
  const auto guard = static_cast<std::size_t>(guard_frac * static_cast<double>(samples_per_symbol));
  for (std::size_t s = 0; s < n_sym; ++s) {
    const std::size_t begin = s * samples_per_symbol + guard;
    const std::size_t end = (s + 1) * samples_per_symbol - guard;
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += std::abs(x[i]);
    out[s] = acc / static_cast<double>(end - begin);
  }
  return out;
}

}  // namespace

phy::AskDecision ask_demodulate(std::span<const Complex> rx, const phy::PhyConfig& cfg,
                                const phy::Bits& known_prefix) {
  cfg.validate();
  const Rvec env = ref_symbol_envelopes(rx, cfg.samples_per_symbol, cfg.guard_frac);
  if (env.empty()) throw std::invalid_argument("ask_demodulate: no full symbol in capture");
  if (known_prefix.size() > env.size())
    throw std::invalid_argument("ask_demodulate: prefix longer than capture");

  phy::AskDecision d;
  double mu0 = 0.0;
  double mu1 = 0.0;
  if (!known_prefix.empty()) {
    std::size_t n0 = 0;
    std::size_t n1 = 0;
    for (std::size_t i = 0; i < known_prefix.size(); ++i) {
      if (known_prefix[i]) {
        mu1 += env[i];
        ++n1;
      } else {
        mu0 += env[i];
        ++n0;
      }
    }
    if (n0 == 0 || n1 == 0)
      throw std::invalid_argument("ask_demodulate: prefix must contain both bit values");
    mu0 /= static_cast<double>(n0);
    mu1 /= static_cast<double>(n1);
    d.inverted = mu1 < mu0;
    d.threshold = (mu0 + mu1) / 2.0;
  } else {
    const TwoMeans tm = two_means(env);
    mu0 = tm.low;
    mu1 = tm.high;
    d.threshold = tm.threshold;
    d.inverted = false;
  }

  const double hi = std::max(mu0, mu1);
  const double lo = std::min(mu0, mu1);
  const double s_hi = stddev_around(env, hi, d.threshold, true);
  const double s_lo = stddev_around(env, lo, d.threshold, false);
  d.separation = (hi - lo) / (s_hi + s_lo + kEps);

  d.bits.reserve(env.size());
  for (double e : env) {
    int bit = (e >= d.threshold) ? 1 : 0;
    if (d.inverted) bit ^= 1;
    d.bits.push_back(bit);
  }
  return d;
}

phy::FskDecision fsk_demodulate(std::span<const Complex> rx, const phy::PhyConfig& cfg) {
  cfg.validate();
  const std::size_t sps = cfg.samples_per_symbol;
  const std::size_t n_sym = rx.size() / sps;
  if (n_sym == 0) throw std::invalid_argument("fsk_demodulate: no full symbol in capture");
  const auto guard = static_cast<std::size_t>(cfg.guard_frac * static_cast<double>(sps));
  const double fs = cfg.sample_rate_hz();

  phy::FskDecision d;
  d.bits.reserve(n_sym);
  double margin_acc = 0.0;
  for (std::size_t s = 0; s < n_sym; ++s) {
    const std::span<const Complex> sym = rx.subspan(s * sps + guard, sps - 2 * guard);
    const double p0 = goertzel_power(sym, cfg.fsk_freq0_hz, fs);
    const double p1 = goertzel_power(sym, cfg.fsk_freq1_hz, fs);
    d.bits.push_back(p1 > p0 ? 1 : 0);
    const double tot = p0 + p1;
    margin_acc += (tot > 0.0) ? std::abs(p1 - p0) / tot : 0.0;
  }
  d.margin = margin_acc / static_cast<double>(n_sym);
  return d;
}

phy::JointDecision joint_demodulate(std::span<const Complex> rx, const phy::PhyConfig& cfg,
                                    const phy::Bits& known_prefix) {
  cfg.validate();
  const std::size_t sps = cfg.samples_per_symbol;
  const std::size_t n_sym = rx.size() / sps;
  if (n_sym == 0) throw std::invalid_argument("joint_demodulate: no full symbol in capture");

  const phy::AskDecision ask = refdsp::ask_demodulate(rx, cfg, known_prefix);
  const phy::FskDecision fsk = refdsp::fsk_demodulate(rx, cfg);

  phy::JointDecision d;
  d.ask_separation = ask.separation;
  d.ask_inverted = ask.inverted;
  d.fsk_margin = fsk.margin;

  double q_ask = ask.separation;
  double q_fsk = 4.0 * fsk.margin;
  if (!known_prefix.empty()) {
    std::size_t ask_err = 0;
    std::size_t fsk_err = 0;
    for (std::size_t i = 0; i < known_prefix.size(); ++i) {
      ask_err += (ask.bits[i] != known_prefix[i]);
      fsk_err += (fsk.bits[i] != known_prefix[i]);
    }
    if (ask_err > 0) q_ask /= static_cast<double>(1 + 2 * ask_err);
    if (fsk_err > 0) q_fsk /= static_cast<double>(1 + 2 * fsk_err);
  }

  const double w_ask = weight(q_ask);
  const double w_fsk = weight(q_fsk);
  const double w_tot = w_ask + w_fsk + kEps;

  const Rvec env = ref_symbol_envelopes(rx, sps, cfg.guard_frac);
  const auto guard = static_cast<std::size_t>(cfg.guard_frac * static_cast<double>(sps));
  const double fs = cfg.sample_rate_hz();
  const double ask_scale = std::max(ask.threshold, kEps);
  const double polarity = ask.inverted ? -1.0 : 1.0;

  d.bits.reserve(n_sym);
  for (std::size_t s = 0; s < n_sym; ++s) {
    const double z_ask = polarity * (env[s] - ask.threshold) / ask_scale;
    const std::span<const Complex> sym = rx.subspan(s * sps + guard, sps - 2 * guard);
    const double p0 = goertzel_power(sym, cfg.fsk_freq0_hz, fs);
    const double p1 = goertzel_power(sym, cfg.fsk_freq1_hz, fs);
    const double z_fsk = (p1 - p0) / (p0 + p1 + kEps);
    const double z = (w_ask * z_ask + w_fsk * z_fsk) / w_tot;
    d.bits.push_back(z > 0.0 ? 1 : 0);
  }

  if (w_ask > 9.0 * w_fsk) {
    d.mode = phy::DecisionMode::kAsk;
  } else if (w_fsk > 9.0 * w_ask) {
    d.mode = phy::DecisionMode::kFsk;
  } else {
    d.mode = phy::DecisionMode::kJoint;
  }
  return d;
}

}  // namespace mmx::refdsp
