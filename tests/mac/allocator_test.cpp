#include "mmx/mac/allocator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"

namespace mmx::mac {
namespace {

FdmAllocator ism_band() { return FdmAllocator(kIsmLowHz, kIsmHighHz, 1e6); }

TEST(RequiredBandwidth, ScalesWithRate) {
  // 10 Mbps HD video at 0.8 b/s/Hz -> 12.5 MHz.
  EXPECT_NEAR(required_bandwidth_hz(10e6), 12.5e6, 1.0);
  EXPECT_THROW(required_bandwidth_hz(0.0), std::invalid_argument);
  EXPECT_THROW(required_bandwidth_hz(1e6, 0.0), std::invalid_argument);
}

TEST(FdmAllocator, AllocatesWithinBand) {
  FdmAllocator a = ism_band();
  const auto ch = a.allocate(1, 25e6);
  ASSERT_TRUE(ch.has_value());
  EXPECT_GE(ch->low_hz(), kIsmLowHz);
  EXPECT_LE(ch->high_hz(), kIsmHighHz);
  EXPECT_DOUBLE_EQ(ch->bandwidth_hz, 25e6);
}

TEST(FdmAllocator, ChannelsDoNotOverlap) {
  FdmAllocator a = ism_band();
  std::vector<ChannelAllocation> chans;
  for (std::uint16_t id = 0; id < 8; ++id) {
    const auto ch = a.allocate(id, 25e6);
    ASSERT_TRUE(ch.has_value()) << id;
    chans.push_back(*ch);
  }
  for (std::size_t i = 0; i < chans.size(); ++i) {
    for (std::size_t j = i + 1; j < chans.size(); ++j) {
      const bool disjoint =
          chans[i].high_hz() <= chans[j].low_hz() || chans[j].high_hz() <= chans[i].low_hz();
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
  }
}

TEST(FdmAllocator, GuardBandsRespected) {
  FdmAllocator a(24.0e9, 24.25e9, 2e6);
  const auto c1 = a.allocate(1, 20e6);
  const auto c2 = a.allocate(2, 20e6);
  ASSERT_TRUE(c1 && c2);
  EXPECT_GE(c2->low_hz() - c1->high_hz(), 2e6 - 1e-6);
}

TEST(FdmAllocator, PaperCapacityTenNodesAt25MHz) {
  // §9.5: each node occupies 25 MHz; the 250 MHz ISM band fits ~9-10 such
  // nodes with guards.
  FdmAllocator a = ism_band();
  int fitted = 0;
  for (std::uint16_t id = 0; id < 20; ++id) {
    if (a.allocate(id, 25e6)) ++fitted;
  }
  EXPECT_GE(fitted, 9);
  EXPECT_LE(fitted, 10);
}

TEST(FdmAllocator, ExhaustionReturnsNullopt) {
  FdmAllocator a = ism_band();
  EXPECT_TRUE(a.allocate(1, 200e6).has_value());
  EXPECT_FALSE(a.allocate(2, 100e6).has_value());
}

TEST(FdmAllocator, ReleaseReclaimsSpectrum) {
  FdmAllocator a = ism_band();
  ASSERT_TRUE(a.allocate(1, 200e6));
  EXPECT_FALSE(a.allocate(2, 200e6));
  EXPECT_TRUE(a.release(1));
  EXPECT_TRUE(a.allocate(2, 200e6).has_value());
  EXPECT_FALSE(a.release(1));  // already gone
}

TEST(FdmAllocator, ReusesFreedGapFirstFit) {
  FdmAllocator a = ism_band();
  ASSERT_TRUE(a.allocate(1, 50e6));
  ASSERT_TRUE(a.allocate(2, 50e6));
  ASSERT_TRUE(a.allocate(3, 50e6));
  a.release(2);
  const auto ch = a.allocate(4, 40e6);
  ASSERT_TRUE(ch.has_value());
  // Must slot into the freed middle gap (first fit), not at the end.
  EXPECT_LT(ch->low_hz(), a.lookup(3)->low_hz());
}

TEST(FdmAllocator, LookupAndAccounting) {
  FdmAllocator a = ism_band();
  EXPECT_FALSE(a.lookup(1).has_value());
  a.allocate(1, 30e6);
  EXPECT_TRUE(a.lookup(1).has_value());
  EXPECT_EQ(a.num_allocations(), 1u);
  EXPECT_NEAR(a.free_bandwidth_hz(), 220e6, 1.0);
}

TEST(FdmAllocator, LargestGapTracksFragmentation) {
  FdmAllocator a(0.0, 100.0, 0.0);
  a.allocate(1, 40.0);
  a.allocate(2, 40.0);
  a.release(1);
  EXPECT_NEAR(a.largest_gap_hz(), 40.0, 1e-9);
  // free_bandwidth says 60 but largest gap is only 40: fragmentation.
  EXPECT_NEAR(a.free_bandwidth_hz(), 60.0, 1e-9);
}

TEST(FdmAllocator, DoubleAllocateThrows) {
  FdmAllocator a = ism_band();
  a.allocate(1, 10e6);
  EXPECT_THROW(a.allocate(1, 10e6), std::invalid_argument);
}

TEST(FdmAllocator, BadArgsThrow) {
  EXPECT_THROW(FdmAllocator(10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(FdmAllocator(0.0, 10.0, -1.0), std::invalid_argument);
  FdmAllocator a = ism_band();
  EXPECT_THROW(a.allocate(1, 0.0), std::invalid_argument);
}

TEST(FdmAllocator, RandomAllocReleaseStressNeverOverlaps) {
  // 2000 random allocate/release operations: at every step, allocations
  // must be disjoint, inside the band, and the books must balance.
  Rng rng(7);
  FdmAllocator a(kIsmLowHz, kIsmHighHz, 1e6);
  std::vector<std::uint16_t> held;
  std::uint16_t next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    if (held.empty() || rng.chance(0.6)) {
      const double bw = rng.uniform(1e6, 60e6);
      const std::uint16_t id = next_id++;
      if (a.allocate(id, bw)) held.push_back(id);
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(held.size()) - 1));
      ASSERT_TRUE(a.release(held[pick]));
      held.erase(held.begin() + static_cast<long>(pick));
    }
    // Invariants.
    ASSERT_EQ(a.num_allocations(), held.size());
    double used = 0.0;
    std::vector<ChannelAllocation> chans;
    for (const auto& [id, ch] : a.allocations()) {
      ASSERT_GE(ch.low_hz(), kIsmLowHz - 1e-6);
      ASSERT_LE(ch.high_hz(), kIsmHighHz + 1e-6);
      used += ch.bandwidth_hz;
      chans.push_back(ch);
    }
    ASSERT_NEAR(a.free_bandwidth_hz(), kIsmBandwidthHz - used, 1.0);
    std::sort(chans.begin(), chans.end(),
              [](const auto& x, const auto& y) { return x.low_hz() < y.low_hz(); });
    for (std::size_t i = 1; i < chans.size(); ++i) {
      ASSERT_GE(chans[i].low_hz(), chans[i - 1].high_hz() - 1e-6);
    }
  }
}

class RateMixSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateMixSweep, MixedRatesPack) {
  // Nodes with mixed rate demands (cameras + sensors) share the band.
  FdmAllocator a = ism_band();
  std::uint16_t id = 0;
  int granted = 0;
  for (int i = 0; i < 6; ++i) {
    if (a.allocate(id++, required_bandwidth_hz(GetParam()))) ++granted;
    if (a.allocate(id++, required_bandwidth_hz(1e6))) ++granted;  // sensor
  }
  EXPECT_GT(granted, 6);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateMixSweep, ::testing::Values(8e6, 10e6, 20e6));

}  // namespace
}  // namespace mmx::mac
