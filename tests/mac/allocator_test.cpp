#include "mmx/mac/allocator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"

namespace mmx::mac {
namespace {

FdmAllocator ism_band() { return FdmAllocator(kIsmLowHz, kIsmHighHz, 1e6); }

TEST(RequiredBandwidth, ScalesWithRate) {
  // 10 Mbps HD video at 0.8 b/s/Hz -> 12.5 MHz.
  EXPECT_NEAR(required_bandwidth_hz(10e6), 12.5e6, 1.0);
  EXPECT_THROW(required_bandwidth_hz(0.0), std::invalid_argument);
  EXPECT_THROW(required_bandwidth_hz(1e6, 0.0), std::invalid_argument);
}

TEST(FdmAllocator, AllocatesWithinBand) {
  FdmAllocator a = ism_band();
  const auto ch = a.allocate(1, 25e6);
  ASSERT_TRUE(ch.has_value());
  EXPECT_GE(ch->low_hz(), kIsmLowHz);
  EXPECT_LE(ch->high_hz(), kIsmHighHz);
  EXPECT_DOUBLE_EQ(ch->bandwidth_hz, 25e6);
}

TEST(FdmAllocator, ChannelsDoNotOverlap) {
  FdmAllocator a = ism_band();
  std::vector<ChannelAllocation> chans;
  for (std::uint16_t id = 0; id < 8; ++id) {
    const auto ch = a.allocate(id, 25e6);
    ASSERT_TRUE(ch.has_value()) << id;
    chans.push_back(*ch);
  }
  for (std::size_t i = 0; i < chans.size(); ++i) {
    for (std::size_t j = i + 1; j < chans.size(); ++j) {
      const bool disjoint =
          chans[i].high_hz() <= chans[j].low_hz() || chans[j].high_hz() <= chans[i].low_hz();
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
  }
}

TEST(FdmAllocator, GuardBandsRespected) {
  FdmAllocator a(24.0e9, 24.25e9, 2e6);
  const auto c1 = a.allocate(1, 20e6);
  const auto c2 = a.allocate(2, 20e6);
  ASSERT_TRUE(c1 && c2);
  EXPECT_GE(c2->low_hz() - c1->high_hz(), 2e6 - 1e-6);
}

TEST(FdmAllocator, PaperCapacityTenNodesAt25MHz) {
  // §9.5: each node occupies 25 MHz; the 250 MHz ISM band fits ~9-10 such
  // nodes with guards.
  FdmAllocator a = ism_band();
  int fitted = 0;
  for (std::uint16_t id = 0; id < 20; ++id) {
    if (a.allocate(id, 25e6)) ++fitted;
  }
  EXPECT_GE(fitted, 9);
  EXPECT_LE(fitted, 10);
}

TEST(FdmAllocator, ExhaustionReturnsNullopt) {
  FdmAllocator a = ism_band();
  EXPECT_TRUE(a.allocate(1, 200e6).has_value());
  EXPECT_FALSE(a.allocate(2, 100e6).has_value());
}

TEST(FdmAllocator, ReleaseReclaimsSpectrum) {
  FdmAllocator a = ism_band();
  ASSERT_TRUE(a.allocate(1, 200e6));
  EXPECT_FALSE(a.allocate(2, 200e6));
  EXPECT_TRUE(a.release(1));
  EXPECT_TRUE(a.allocate(2, 200e6).has_value());
  EXPECT_FALSE(a.release(1));  // already gone
}

TEST(FdmAllocator, ReusesFreedGapFirstFit) {
  FdmAllocator a = ism_band();
  ASSERT_TRUE(a.allocate(1, 50e6));
  ASSERT_TRUE(a.allocate(2, 50e6));
  ASSERT_TRUE(a.allocate(3, 50e6));
  a.release(2);
  const auto ch = a.allocate(4, 40e6);
  ASSERT_TRUE(ch.has_value());
  // Must slot into the freed middle gap (first fit), not at the end.
  EXPECT_LT(ch->low_hz(), a.lookup(3)->low_hz());
}

TEST(FdmAllocator, LookupAndAccounting) {
  FdmAllocator a = ism_band();
  EXPECT_FALSE(a.lookup(1).has_value());
  a.allocate(1, 30e6);
  EXPECT_TRUE(a.lookup(1).has_value());
  EXPECT_EQ(a.num_allocations(), 1u);
  EXPECT_NEAR(a.free_bandwidth_hz(), 220e6, 1.0);
}

TEST(FdmAllocator, LargestGapTracksFragmentation) {
  FdmAllocator a(0.0, 100.0, 0.0);
  a.allocate(1, 40.0);
  a.allocate(2, 40.0);
  a.release(1);
  EXPECT_NEAR(a.largest_gap_hz(), 40.0, 1e-9);
  // free_bandwidth says 60 but largest gap is only 40: fragmentation.
  EXPECT_NEAR(a.free_bandwidth_hz(), 60.0, 1e-9);
}

TEST(FdmAllocator, DoubleAllocateThrows) {
  FdmAllocator a = ism_band();
  a.allocate(1, 10e6);
  EXPECT_THROW(a.allocate(1, 10e6), std::invalid_argument);
}

TEST(FdmAllocator, BadArgsThrow) {
  EXPECT_THROW(FdmAllocator(10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(FdmAllocator(0.0, 10.0, -1.0), std::invalid_argument);
  FdmAllocator a = ism_band();
  EXPECT_THROW(a.allocate(1, 0.0), std::invalid_argument);
}

TEST(FdmAllocator, RandomAllocReleaseStressNeverOverlaps) {
  // 2000 random allocate/release operations: at every step, allocations
  // must be disjoint, inside the band, and the books must balance.
  Rng rng(7);
  FdmAllocator a(kIsmLowHz, kIsmHighHz, 1e6);
  std::vector<std::uint16_t> held;
  std::uint16_t next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    if (held.empty() || rng.chance(0.6)) {
      const double bw = rng.uniform(1e6, 60e6);
      const std::uint16_t id = next_id++;
      if (a.allocate(id, bw)) held.push_back(id);
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(held.size()) - 1));
      ASSERT_TRUE(a.release(held[pick]));
      held.erase(held.begin() + static_cast<long>(pick));
    }
    // Invariants.
    ASSERT_EQ(a.num_allocations(), held.size());
    double used = 0.0;
    std::vector<ChannelAllocation> chans;
    for (const auto& [id, ch] : a.allocations()) {
      ASSERT_GE(ch.low_hz(), kIsmLowHz - 1e-6);
      ASSERT_LE(ch.high_hz(), kIsmHighHz + 1e-6);
      used += ch.bandwidth_hz;
      chans.push_back(ch);
    }
    ASSERT_NEAR(a.free_bandwidth_hz(), kIsmBandwidthHz - used, 1.0);
    std::sort(chans.begin(), chans.end(),
              [](const auto& x, const auto& y) { return x.low_hz() < y.low_hz(); });
    for (std::size_t i = 1; i < chans.size(); ++i) {
      ASSERT_GE(chans[i].low_hz(), chans[i - 1].high_hz() - 1e-6);
    }
  }
}

// Full allocator-state audit, run after every mutation in the fuzz test:
// every channel in band, guards respected between neighbours, the books
// balanced, and the derived gauges (largest_gap, fragmentation,
// compacted_headroom) mutually consistent.
void ExpectAllocatorInvariants(const FdmAllocator& a) {
  const double band = a.band_high_hz() - a.band_low_hz();
  double used = 0.0;
  std::vector<ChannelAllocation> chans;
  for (const auto& [id, ch] : a.allocations()) {
    ASSERT_GT(ch.bandwidth_hz, 0.0);
    ASSERT_GE(ch.low_hz(), a.band_low_hz() - 1e-3);
    ASSERT_LE(ch.high_hz(), a.band_high_hz() + 1e-3);
    used += ch.bandwidth_hz;
    chans.push_back(ch);
  }
  std::sort(chans.begin(), chans.end(),
            [](const auto& x, const auto& y) { return x.low_hz() < y.low_hz(); });
  for (std::size_t i = 1; i < chans.size(); ++i) {
    ASSERT_GE(chans[i].low_hz(), chans[i - 1].high_hz() + a.guard_hz() - 1e-3)
        << "guard violated between neighbours " << i - 1 << " and " << i;
  }
  ASSERT_NEAR(a.free_bandwidth_hz(), band - used, 1.0);
  const double frag = a.fragmentation();
  ASSERT_GE(frag, 0.0);
  ASSERT_LE(frag, 1.0);
  if (chans.empty()) {
    ASSERT_NEAR(a.largest_gap_hz(), band, 1e-3);
    ASSERT_DOUBLE_EQ(frag, 0.0);
  }
  ASSERT_LE(a.largest_gap_hz(), a.free_bandwidth_hz() + 1e-3);
  // Compaction can only help: the coalesced top-of-band gap admits at
  // least as wide a channel as the widest usable gap right now.
  ASSERT_LE(a.largest_gap_hz(), a.compacted_headroom_hz() + 1e-3);
}

TEST(FdmAllocatorFuzz, HundredThousandOpsHoldInvariants) {
  // 100k random allocate/release/compact/restore/transfer operations with
  // the full invariant audit after every step, under both placement
  // policies. Catches free-list accounting drift, guard violations and
  // compact() corruption that targeted tests miss.
  Rng rng(0xa110c);
  FdmAllocator a(kIsmLowHz, kIsmHighHz, 1e6, AllocPolicy::kBestFit);
  std::vector<std::uint16_t> held;
  std::uint16_t next_id = 0;
  std::size_t compactions = 0;
  for (int step = 0; step < 100000; ++step) {
    const double roll = rng.uniform(0.0, 1.0);
    if (held.empty() || roll < 0.50) {
      const double bw = rng.uniform(0.5e6, 60e6);
      const std::uint16_t id = next_id++;
      const auto ch = a.allocate(id, bw);
      if (ch) {
        held.push_back(id);
        ASSERT_NEAR(ch->bandwidth_hz, bw, 1e-9);
      } else {
        // A refusal must be honest: no usable gap fits the demand.
        ASSERT_LT(a.largest_gap_hz(), bw);
      }
    } else if (roll < 0.80) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(held.size()) - 1));
      ASSERT_TRUE(a.release(held[pick]));
      held.erase(held.begin() + static_cast<long>(pick));
    } else if (roll < 0.88) {
      const std::vector<RetuneEvent> moved = a.compact();
      ++compactions;
      for (const RetuneEvent& ev : moved) {
        ASSERT_NEAR(ev.from.bandwidth_hz, ev.to.bandwidth_hz, 1e-9);
        ASSERT_LT(ev.to.center_hz, ev.from.center_hz);  // always down-band
        ASSERT_EQ(a.lookup(ev.node_id), ev.to);
      }
      // All free spectrum now sits in the single top-of-band gap.
      ASSERT_NEAR(a.largest_gap_hz(), a.compacted_headroom_hz(), 1e-3);
    } else if (roll < 0.94) {
      // Release + exact restore must round-trip (the modify_rate deny path).
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(held.size()) - 1));
      const ChannelAllocation ch = *a.lookup(held[pick]);
      ASSERT_TRUE(a.release(held[pick]));
      ASSERT_TRUE(a.restore(held[pick], ch));
      ASSERT_EQ(*a.lookup(held[pick]), ch);
    } else {
      // Ownership hand-off (SDM succession) keeps the spectrum in place.
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(held.size()) - 1));
      const ChannelAllocation ch = *a.lookup(held[pick]);
      const std::uint16_t heir = next_id++;
      ASSERT_TRUE(a.transfer(held[pick], heir));
      ASSERT_FALSE(a.lookup(held[pick]).has_value());
      ASSERT_EQ(*a.lookup(heir), ch);
      held[pick] = heir;
    }
    if (step == 50000) a.set_policy(AllocPolicy::kFirstFit);
    ASSERT_NO_FATAL_FAILURE(ExpectAllocatorInvariants(a));
  }
  EXPECT_GT(compactions, 0u);
  EXPECT_GT(held.size(), 0u);
}

TEST(FdmAllocator, BestFitPicksTightestGap) {
  FdmAllocator a(0.0, 100.0, 0.0, AllocPolicy::kBestFit);
  ASSERT_TRUE(a.allocate(1, 10.0));   // [0,10]
  ASSERT_TRUE(a.allocate(2, 30.0));   // [10,40]
  ASSERT_TRUE(a.allocate(3, 12.0));   // [40,52]
  ASSERT_TRUE(a.allocate(4, 20.0));   // [52,72]
  a.release(2);                       // 30-wide hole at [10,40]; tail [72,100] is 28
  const auto ch = a.allocate(5, 18.0);
  ASSERT_TRUE(ch.has_value());
  // First-fit would take the 30-wide hole at [10,40]; best-fit takes the
  // tighter 28-wide tail.
  EXPECT_NEAR(ch->low_hz(), 72.0, 1e-9);
}

TEST(FdmAllocator, CompactSlidesDownBandAndCoalesces) {
  FdmAllocator a(0.0, 100.0, 2.0);
  ASSERT_TRUE(a.allocate(1, 10.0));
  ASSERT_TRUE(a.allocate(2, 10.0));
  ASSERT_TRUE(a.allocate(3, 10.0));
  ASSERT_TRUE(a.release(2));
  const auto moved = a.compact();
  ASSERT_EQ(moved.size(), 1u);  // only node 3 moves (1 already at the edge)
  EXPECT_EQ(moved[0].node_id, 3);
  EXPECT_NEAR(a.lookup(3)->low_hz(), 12.0, 1e-9);  // 10 + guard
  // One coalesced top gap: [22, 100] minus the guard for a newcomer.
  EXPECT_NEAR(a.largest_gap_hz(), 76.0, 1e-9);
  // Idempotent: a second pass moves nothing.
  EXPECT_TRUE(a.compact().empty());
}

TEST(FdmAllocator, FragmentationGauge) {
  FdmAllocator a(0.0, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(a.fragmentation(), 0.0);  // empty band
  a.allocate(1, 30.0);
  a.allocate(2, 30.0);
  a.allocate(3, 40.0);
  EXPECT_DOUBLE_EQ(a.fragmentation(), 0.0);  // full band
  a.release(2);
  // Free 30 in one hole, contiguous: no fragmentation.
  EXPECT_NEAR(a.fragmentation(), 0.0, 1e-12);
  a.release(1);
  // Free 60 in one hole [0,60]: still contiguous.
  EXPECT_NEAR(a.fragmentation(), 0.0, 1e-12);
  ASSERT_TRUE(a.allocate(4, 25.0));  // splits the hole: [25,60] remains
  EXPECT_NEAR(a.fragmentation(), 0.0, 1e-12);  // single gap again
  ASSERT_TRUE(a.allocate(5, 10.0));  // [25,35]; gap [35,60] = 25
  a.release(4);                      // gaps [0,25] and [35,60]: 50 free, widest 25
  EXPECT_NEAR(a.fragmentation(), 0.5, 1e-12);
}

class RateMixSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateMixSweep, MixedRatesPack) {
  // Nodes with mixed rate demands (cameras + sensors) share the band.
  FdmAllocator a = ism_band();
  std::uint16_t id = 0;
  int granted = 0;
  for (int i = 0; i < 6; ++i) {
    if (a.allocate(id++, required_bandwidth_hz(GetParam()))) ++granted;
    if (a.allocate(id++, required_bandwidth_hz(1e6))) ++granted;  // sensor
  }
  EXPECT_GT(granted, 6);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateMixSweep, ::testing::Values(8e6, 10e6, 20e6));

}  // namespace
}  // namespace mmx::mac
