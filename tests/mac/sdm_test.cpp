#include "mmx/mac/sdm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"

namespace mmx::mac {
namespace {

SdmScheduler make_scheduler() { return SdmScheduler(antenna::TmaSpec{}, 0.125, 0.45, 3); }

TEST(Sdm, CapacityMatchesHarmonics) {
  EXPECT_EQ(make_scheduler().capacity(), 4);
}

TEST(Sdm, SingleNodeTrivial) {
  SdmScheduler s = make_scheduler();
  const std::vector<double> bearings{0.1};
  const SdmPlan p = s.plan(bearings);
  ASSERT_EQ(p.assignments.size(), 1u);
  EXPECT_DOUBLE_EQ(p.min_sir_db, 200.0);
}

TEST(Sdm, WellSeparatedBearingsGetGoodSir) {
  SdmScheduler s = make_scheduler();
  // Bearings near the harmonics' steered directions.
  const std::vector<double> bearings{s.tma().steered_angle(0), s.tma().steered_angle(1),
                                     s.tma().steered_angle(2)};
  const SdmPlan p = s.plan(bearings);
  EXPECT_EQ(p.assignments.size(), 3u);
  EXPECT_GT(p.min_sir_db, 12.0);
  // Distinct harmonics.
  std::set<int> used;
  for (const auto& a : p.assignments) used.insert(a.harmonic);
  EXPECT_EQ(used.size(), 3u);
}

TEST(Sdm, AssignmentMatchesNearestHarmonic) {
  SdmScheduler s = make_scheduler();
  const double t1 = s.tma().steered_angle(1);
  const std::vector<double> bearings{t1 + 0.01, -0.01};
  const SdmPlan p = s.plan(bearings);
  // Node 0 (bearing near harmonic 1) must get harmonic 1.
  for (const auto& a : p.assignments) {
    if (a.node_index == 0) {
      EXPECT_EQ(a.harmonic, 1);
    }
    if (a.node_index == 1) {
      EXPECT_EQ(a.harmonic, 0);
    }
  }
}

TEST(Sdm, CloseBearingsDegradeSir) {
  SdmScheduler s = make_scheduler();
  const std::vector<double> apart{s.tma().steered_angle(0), s.tma().steered_angle(2)};
  const std::vector<double> close{0.0, 0.03};
  EXPECT_GT(s.plan(apart).min_sir_db, s.plan(close).min_sir_db + 10.0);
}

TEST(Sdm, OverCapacityThrows) {
  SdmScheduler s = make_scheduler();
  const std::vector<double> five{-0.4, -0.2, 0.0, 0.2, 0.4};
  EXPECT_THROW(s.plan(five), std::invalid_argument);
  EXPECT_THROW(s.plan(std::vector<double>{}), std::invalid_argument);
}

TEST(Sdm, BadConstructionThrows) {
  EXPECT_THROW(SdmScheduler(antenna::TmaSpec{}, 0.125, 0.45, -1), std::invalid_argument);
  // Harmonic 5 with delay 0.125 and d=0.5: sin = 1.25 -> unreachable.
  EXPECT_THROW(SdmScheduler(antenna::TmaSpec{}, 0.125, 0.45, 5), std::out_of_range);
}

class SdmGroupSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SdmGroupSizeSweep, FullGroupsRemainSeparable) {
  SdmScheduler s = make_scheduler();
  const int k = GetParam();
  std::vector<double> bearings;
  for (int i = 0; i < k; ++i) bearings.push_back(s.tma().steered_angle(i));
  const SdmPlan p = s.plan(bearings);
  EXPECT_EQ(p.assignments.size(), static_cast<std::size_t>(k));
  if (k > 1) {
    EXPECT_GT(p.min_sir_db, 10.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SdmGroupSizeSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mmx::mac
