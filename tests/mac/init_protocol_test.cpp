#include "mmx/mac/init_protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mmx/common/units.hpp"

namespace mmx::mac {
namespace {

InitProtocol make_protocol() {
  return InitProtocol(FdmAllocator(kIsmLowHz, kIsmHighHz, 1e6), rf::Vco{});
}

TEST(InitProtocol, GrantsChannelForHdVideo) {
  InitProtocol p = make_protocol();
  // "if a device needs to stream an HD video, a few MHz of bandwidth must
  // be allocated to it" (§4) — 10 Mbps request.
  const auto msg = p.handle(ChannelRequest{1, 10e6, 0.0});
  const auto* g = std::get_if<ChannelGrant>(&msg);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->node_id, 1);
  EXPECT_NEAR(g->channel.bandwidth_hz, 12.5e6, 1.0);
  EXPECT_EQ(g->sdm_harmonic, 0);
}

TEST(InitProtocol, GrantCarriesValidVcoVoltages) {
  InitProtocol p = make_protocol();
  const auto msg = p.handle(ChannelRequest{1, 10e6, 0.0});
  const auto* g = std::get_if<ChannelGrant>(&msg);
  ASSERT_NE(g, nullptr);
  rf::Vco vco;
  // The two tuning voltages must land inside the channel, v1 above v0.
  const double f0 = vco.frequency_hz(g->vco_tune_v0);
  const double f1 = vco.frequency_hz(g->vco_tune_v1);
  EXPECT_GT(f1, f0);
  EXPECT_GE(f0, g->channel.low_hz() - 1.0);
  EXPECT_LE(f1, g->channel.high_hz() + 1.0);
}

TEST(InitProtocol, IdempotentForSameNode) {
  InitProtocol p = make_protocol();
  const auto m1 = p.handle(ChannelRequest{1, 10e6, 0.0});
  const auto m2 = p.handle(ChannelRequest{1, 10e6, 0.0});
  const auto* g1 = std::get_if<ChannelGrant>(&m1);
  const auto* g2 = std::get_if<ChannelGrant>(&m2);
  ASSERT_TRUE(g1 && g2);
  EXPECT_EQ(g1->channel, g2->channel);
  EXPECT_EQ(p.allocator().num_allocations(), 1u);
}

TEST(InitProtocol, ZeroRateDenied) {
  InitProtocol p = make_protocol();
  const auto msg = p.handle(ChannelRequest{1, 0.0, 0.0});
  EXPECT_NE(std::get_if<ChannelDeny>(&msg), nullptr);
}

TEST(InitProtocol, FallsBackToSdmWhenBandFull) {
  InitProtocol p = make_protocol();
  // Fill the band with wide FDM channels from distinct bearings.
  std::uint16_t id = 0;
  int fdm_grants = 0;
  while (true) {
    const auto msg = p.handle(ChannelRequest{id, 80e6, 0.3 * id});
    const auto* g = std::get_if<ChannelGrant>(&msg);
    if (!g || g->sdm_harmonic != 0) break;
    ++fdm_grants;
    ++id;
  }
  EXPECT_GE(fdm_grants, 2);
  // The node that broke the loop should have received an SDM share (its
  // bearing differs from every holder's by >= the minimum separation).
  const auto msg = p.handle(ChannelRequest{99, 80e6, -0.5});
  const auto* g = std::get_if<ChannelGrant>(&msg);
  ASSERT_NE(g, nullptr);
  EXPECT_NE(g->sdm_harmonic, 0);
}

TEST(InitProtocol, SdmRefusedForCoincidentBearings) {
  InitProtocol p = make_protocol();
  // Exhaust the band.
  p.handle(ChannelRequest{1, 150e6, 0.0});
  p.handle(ChannelRequest{2, 60e6, 0.5});
  // Same bearing as node 1 -> cannot share spatially.
  const auto msg = p.handle(ChannelRequest{3, 100e6, 0.0});
  EXPECT_NE(std::get_if<ChannelDeny>(&msg), nullptr);
}

TEST(InitProtocol, SdmSharesUseDistinctHarmonics) {
  InitProtocol p = make_protocol();
  p.handle(ChannelRequest{1, 180e6, 0.0});  // 225 MHz: nearly the whole band
  const auto m2 = p.handle(ChannelRequest{2, 100e6, 0.5});
  const auto m3 = p.handle(ChannelRequest{3, 100e6, -0.5});
  const auto* g2 = std::get_if<ChannelGrant>(&m2);
  const auto* g3 = std::get_if<ChannelGrant>(&m3);
  ASSERT_TRUE(g2 && g3);
  EXPECT_NE(g2->sdm_harmonic, 0);
  EXPECT_NE(g3->sdm_harmonic, g2->sdm_harmonic);
  EXPECT_EQ(g2->channel, g3->channel);
}

TEST(InitProtocol, ReleaseFreesSpectrum) {
  InitProtocol p = make_protocol();
  p.handle(ChannelRequest{1, 200e6, 0.0});
  EXPECT_TRUE(p.release(1));
  EXPECT_FALSE(p.release(1));
  const auto msg = p.handle(ChannelRequest{2, 200e6, 0.0});
  const auto* g = std::get_if<ChannelGrant>(&msg);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->sdm_harmonic, 0);
}

TEST(InitProtocol, ServeDrainsSideChannel) {
  Rng rng(1);
  InitProtocol p = make_protocol();
  SideChannel sc;
  sc.node_to_ap(ChannelRequest{1, 10e6, 0.1}, rng);
  sc.node_to_ap(ChannelRequest{2, 8e6, -0.2}, rng);
  EXPECT_EQ(p.serve(sc, rng), 2u);
  EXPECT_EQ(sc.pending_at_node(), 2u);
  const auto r1 = sc.poll_at_node();
  ASSERT_TRUE(r1.has_value());
  EXPECT_NE(std::get_if<ChannelGrant>(&*r1), nullptr);
}

TEST(InitProtocol, ManySmallSensorsAllFit) {
  // "These bands are wide enough to support many nodes" (§7a): 40 sensors
  // at 1 Mbps each need ~50 MHz + guards.
  InitProtocol p = make_protocol();
  int granted = 0;
  for (std::uint16_t id = 0; id < 40; ++id) {
    const auto msg = p.handle(ChannelRequest{id, 1e6, 0.05 * id});
    if (std::get_if<ChannelGrant>(&msg)) ++granted;
  }
  EXPECT_EQ(granted, 40);
}

TEST(InitProtocol, ModifyRateGrows) {
  InitProtocol p = make_protocol();
  p.handle(ChannelRequest{1, 10e6, 0.0});
  const auto msg = p.modify_rate(1, 40e6);
  const auto* g = std::get_if<ChannelGrant>(&msg);
  ASSERT_NE(g, nullptr);
  EXPECT_NEAR(g->channel.bandwidth_hz, 50e6, 1.0);
  EXPECT_EQ(p.allocator().num_allocations(), 1u);
}

TEST(InitProtocol, ModifyRateShrinkFreesSpectrum) {
  InitProtocol p = make_protocol();
  p.handle(ChannelRequest{1, 100e6, 0.0});
  const double free_before = p.allocator().free_bandwidth_hz();
  const auto msg = p.modify_rate(1, 10e6);
  EXPECT_NE(std::get_if<ChannelGrant>(&msg), nullptr);
  EXPECT_GT(p.allocator().free_bandwidth_hz(), free_before + 100e6);
}

TEST(InitProtocol, ModifyRateDenyRestoresOldGrant) {
  InitProtocol p = make_protocol();
  p.handle(ChannelRequest{1, 10e6, 0.0});
  p.handle(ChannelRequest{2, 150e6, 0.5});
  // Node 1 asks for more than remains -> deny, but keeps its old channel.
  const auto msg = p.modify_rate(1, 190e6);
  EXPECT_NE(std::get_if<ChannelDeny>(&msg), nullptr);
  ASSERT_TRUE(p.grants().contains(1));
  EXPECT_NEAR(p.grants().at(1).channel.bandwidth_hz, 12.5e6, 1.0);
}

TEST(InitProtocol, ModifyRateDenyRestoresGrantBitExact) {
  // The deny path must reinstate the previous grant EXACTLY — same
  // center, bandwidth, harmonic and VCO voltages — not merely an
  // equivalent-width channel somewhere else. Node 2 sits mid-band
  // between two neighbours so the restore has to land back in its hole.
  InitProtocol p = make_protocol();
  p.handle(ChannelRequest{1, 40e6, 0.0});
  p.handle(ChannelRequest{2, 40e6, 0.8});
  p.handle(ChannelRequest{3, 40e6, 1.6});
  const ChannelGrant before = p.grants().at(2);
  const auto msg = p.modify_rate(2, 190e6);  // 237.5 MHz: cannot fit
  EXPECT_NE(std::get_if<ChannelDeny>(&msg), nullptr);
  ASSERT_TRUE(p.grants().contains(2));
  const ChannelGrant& after = p.grants().at(2);
  EXPECT_DOUBLE_EQ(after.channel.center_hz, before.channel.center_hz);
  EXPECT_DOUBLE_EQ(after.channel.bandwidth_hz, before.channel.bandwidth_hz);
  EXPECT_EQ(after.sdm_harmonic, before.sdm_harmonic);
  EXPECT_DOUBLE_EQ(after.vco_tune_v0, before.vco_tune_v0);
  EXPECT_DOUBLE_EQ(after.vco_tune_v1, before.vco_tune_v1);
  // The allocator's books agree with the restored grant.
  ASSERT_TRUE(p.allocator().lookup(2).has_value());
  EXPECT_EQ(*p.allocator().lookup(2), before.channel);
}

TEST(InitProtocol, ModifyUnknownNodeDenied) {
  InitProtocol p = make_protocol();
  const auto msg = p.modify_rate(42, 1e6);
  EXPECT_NE(std::get_if<ChannelDeny>(&msg), nullptr);
}

TEST(InitProtocol, BadConfigThrows) {
  InitConfig bad;
  bad.fsk_fraction = 0.6;
  EXPECT_THROW(InitProtocol(FdmAllocator(kIsmLowHz, kIsmHighHz), rf::Vco{}, bad),
               std::invalid_argument);
  InitConfig bad2;
  bad2.sdm_capacity = 0;
  EXPECT_THROW(InitProtocol(FdmAllocator(kIsmLowHz, kIsmHighHz), rf::Vco{}, bad2),
               std::invalid_argument);
}

// ---- Overload control (docs/ROBUSTNESS.md) ----------------------------
//
// A bearing of 1.2 rad sits > 0.07 rad from every default TMA slot
// direction, so SDM never qualifies and a full band goes straight to the
// overload ladder.
constexpr double kNoSdmBearing = 1.2;

InitProtocol make_overloaded(InitConfig cfg) {
  return InitProtocol(FdmAllocator(kIsmLowHz, kIsmHighHz, 1e6), rf::Vco{}, cfg);
}

TEST(InitProtocolOverload, DisabledKeepsLegacyBehavior) {
  // OverloadConfig knobs other than `enabled` must be inert: first-fit
  // placement, bare denies (no hint), zero stats.
  InitConfig cfg;
  cfg.overload.min_rate_bps = 1e6;
  cfg.overload.shedding = true;  // enabled stays false
  InitProtocol p = make_overloaded(cfg);
  EXPECT_EQ(p.allocator().policy(), AllocPolicy::kFirstFit);
  p.handle(ChannelRequest{1, 160e6, kNoSdmBearing});
  const auto msg = p.handle(ChannelRequest{2, 160e6, kNoSdmBearing});
  const auto* d = std::get_if<ChannelDeny>(&msg);
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->retry_after_s, 0.0);
  EXPECT_EQ(p.overload_stats(), OverloadStats{});
}

TEST(InitProtocolOverload, DemotionLadderHalvesUntilItFits) {
  // 200 MHz of the 250 MHz band taken; a 100 MHz demand walks the
  // halving ladder (100 -> 50 -> 25 MHz) and lands at a quarter of its
  // request — above the 10 Mbps floor.
  InitConfig cfg;
  cfg.overload.enabled = true;
  cfg.overload.min_rate_bps = 10e6;
  InitProtocol p = make_overloaded(cfg);
  EXPECT_EQ(p.allocator().policy(), AllocPolicy::kBestFit);
  p.handle(ChannelRequest{1, 160e6, kNoSdmBearing});  // 200 MHz
  const auto msg = p.handle(ChannelRequest{2, 80e6, kNoSdmBearing});
  const auto* g = std::get_if<ChannelGrant>(&msg);
  ASSERT_NE(g, nullptr);
  EXPECT_NEAR(g->channel.bandwidth_hz, 25e6, 1.0);  // 20 Mbps = request/4
  EXPECT_EQ(p.overload_stats().demotions, 1u);
  ASSERT_TRUE(p.granted_rate_bps(2).has_value());
  EXPECT_NEAR(*p.granted_rate_bps(2), 20e6, 1.0);
  EXPECT_GE(*p.granted_rate_bps(2), cfg.overload.min_rate_bps);
}

TEST(InitProtocolOverload, DemotionStopsAtFloor) {
  // Nothing fits even at the floor -> deny, never a below-floor grant.
  InitConfig cfg;
  cfg.overload.enabled = true;
  cfg.overload.min_rate_bps = 40e6;  // floor channel: 50 MHz
  InitProtocol p = make_overloaded(cfg);
  p.handle(ChannelRequest{1, 170e6, kNoSdmBearing});  // 212.5 MHz
  const auto msg = p.handle(ChannelRequest{2, 80e6, kNoSdmBearing});
  EXPECT_NE(std::get_if<ChannelDeny>(&msg), nullptr);
  EXPECT_EQ(p.overload_stats().demotions, 0u);
}

TEST(InitProtocolOverload, DenyHintGrowsWithPressureAndResets) {
  InitConfig cfg;
  cfg.overload.enabled = true;  // no demotion floor: straight to deny
  InitProtocol p = make_overloaded(cfg);
  p.handle(ChannelRequest{1, 160e6, kNoSdmBearing});
  std::vector<double> hints;
  for (std::uint16_t id = 2; id < 6; ++id) {
    const auto msg = p.handle(ChannelRequest{id, 160e6, kNoSdmBearing});
    const auto* d = std::get_if<ChannelDeny>(&msg);
    ASSERT_NE(d, nullptr);
    hints.push_back(d->retry_after_s);
  }
  // Every hint positive and bounded; the deny streak pushes them up.
  for (const double h : hints) {
    EXPECT_GT(h, 0.0);
    EXPECT_LE(h, cfg.overload.hint_max_s);
  }
  EXPECT_GT(hints.back(), hints.front());
  EXPECT_EQ(p.overload_stats().hinted_denies, 4u);
  // Freed spectrum resets the pressure: the next hint drops back down.
  ASSERT_TRUE(p.release(1));
  p.handle(ChannelRequest{10, 160e6, kNoSdmBearing});  // takes the band again
  const auto msg = p.handle(ChannelRequest{11, 160e6, kNoSdmBearing});
  const auto* d = std::get_if<ChannelDeny>(&msg);
  ASSERT_NE(d, nullptr);
  EXPECT_LE(d->retry_after_s, hints.back());
}

TEST(InitProtocolOverload, CompactionAdmitsFragmentedDemand) {
  // Four 50 MHz channels, the second released: 50 MHz mid-band hole plus
  // a 46 MHz usable tail. A 60 MHz demand fits neither gap but fits the
  // compacted band -> the AP slides everything down and grants full rate.
  InitConfig cfg;
  cfg.overload.enabled = true;
  cfg.overload.min_rate_bps = 10e6;
  InitProtocol p = make_overloaded(cfg);
  for (std::uint16_t id = 1; id <= 4; ++id) {
    const auto msg = p.handle(ChannelRequest{id, 40e6, kNoSdmBearing});
    ASSERT_NE(std::get_if<ChannelGrant>(&msg), nullptr);
  }
  ASSERT_TRUE(p.release(2));
  const auto msg = p.handle(ChannelRequest{5, 48e6, kNoSdmBearing});
  const auto* g = std::get_if<ChannelGrant>(&msg);
  ASSERT_NE(g, nullptr);
  EXPECT_NEAR(g->channel.bandwidth_hz, 60e6, 1.0);  // full rate, not demoted
  EXPECT_EQ(p.overload_stats().demotions, 0u);
  EXPECT_GE(p.overload_stats().compactions, 1u);
  EXPECT_EQ(p.overload_stats().invariant_violations, 0u);
  // Moved holders got queued re-tune grants with in-channel VCO voltages.
  const std::vector<ChannelGrant> retunes = p.take_retunes();
  ASSERT_FALSE(retunes.empty());
  rf::Vco vco;
  for (const ChannelGrant& rt : retunes) {
    EXPECT_EQ(p.grants().at(rt.node_id).channel, rt.channel);
    EXPECT_GE(vco.frequency_hz(rt.vco_tune_v0), rt.channel.low_hz() - 1.0);
    EXPECT_LE(vco.frequency_hz(rt.vco_tune_v1), rt.channel.high_hz() + 1.0);
  }
  EXPECT_TRUE(p.take_retunes().empty());  // drained
}

TEST(InitProtocolOverload, SheddingReclaimsFromLowerPriorityThenPromotes) {
  InitConfig cfg;
  cfg.overload.enabled = true;
  cfg.overload.min_rate_bps = 20e6;  // floor channel: 25 MHz
  cfg.overload.shedding = true;
  InitProtocol p = make_overloaded(cfg);
  // Two priority-1 incumbents leave < 25 MHz free.
  p.handle(ChannelRequest{1, 100e6, kNoSdmBearing, 1});  // 125 MHz
  p.handle(ChannelRequest{2, 96e6, kNoSdmBearing, 1});   // 120 MHz
  ASSERT_LT(p.allocator().largest_gap_hz(), 25e6);
  // A priority-2 newcomer forces a shed of the cheapest victim.
  const auto msg = p.handle(ChannelRequest{3, 100e6, kNoSdmBearing, 2});
  const auto* g = std::get_if<ChannelGrant>(&msg);
  ASSERT_NE(g, nullptr);
  EXPECT_GE(p.overload_stats().shed_demotions, 1u);
  EXPECT_EQ(p.overload_stats().invariant_violations, 0u);
  // Nobody — shed incumbents included — sits below the floor.
  for (const auto& [id, grant] : p.grants()) {
    ASSERT_TRUE(p.granted_rate_bps(id).has_value());
    EXPECT_GE(*p.granted_rate_bps(id), cfg.overload.min_rate_bps - 1.0);
  }
  // Equal-priority requests never shed: a second priority-2 demand that
  // cannot fit is denied, not fed the first one's spectrum.
  const auto msg2 = p.handle(ChannelRequest{4, 100e6, kNoSdmBearing, 2});
  if (const auto* g2 = std::get_if<ChannelGrant>(&msg2)) {
    EXPECT_GE(g2->channel.bandwidth_hz * 0.8, cfg.overload.min_rate_bps - 1.0);
  }
  // When the band relaxes, promotion grows the shed grants back.
  ASSERT_TRUE(p.release(3));
  p.take_retunes();
  const std::vector<ChannelGrant> promoted = p.promote_demoted();
  EXPECT_FALSE(promoted.empty());
  EXPECT_GE(p.overload_stats().promotions, 1u);
  EXPECT_EQ(p.overload_stats().invariant_violations, 0u);
}

TEST(RejoinBackoff, NoJitterFollowsCappedDoubling) {
  RejoinBackoff bo(BackoffConfig{.base_s = 0.1, .factor = 2.0, .cap_s = 0.7,
                                 .jitter_frac = 0.0});
  Rng rng = Rng::stream(1, 0);
  const double expected[] = {0.1, 0.2, 0.4, 0.7, 0.7};  // capped
  int attempt = 0;
  for (const double want : expected) {
    EXPECT_EQ(bo.attempt(), attempt++);
    EXPECT_DOUBLE_EQ(bo.next_delay_s(rng), want);
  }
}

TEST(RejoinBackoff, JitterStaysInBandAndIsSeedDeterministic) {
  const BackoffConfig cfg{.base_s = 0.125, .factor = 2.0, .cap_s = 1.0,
                          .jitter_frac = 0.25};
  RejoinBackoff a(cfg), b(cfg);
  Rng rng_a = Rng::stream(9, 4);
  Rng rng_b = Rng::stream(9, 4);
  double nominal = cfg.base_s;
  for (int i = 0; i < 8; ++i) {
    const double da = a.next_delay_s(rng_a);
    EXPECT_GE(da, nominal * (1.0 - cfg.jitter_frac));
    EXPECT_LE(da, nominal * (1.0 + cfg.jitter_frac));
    // Same config + same stream = same schedule: the determinism the
    // fault lane's bit-identical contract leans on.
    EXPECT_EQ(da, b.next_delay_s(rng_b));
    nominal = std::min(nominal * cfg.factor, cfg.cap_s);
  }
}

TEST(RejoinBackoff, ResetRestartsTheSchedule) {
  RejoinBackoff bo(BackoffConfig{.base_s = 0.1, .factor = 2.0, .cap_s = 2.0,
                                 .jitter_frac = 0.0});
  Rng rng = Rng::stream(2, 0);
  bo.next_delay_s(rng);
  bo.next_delay_s(rng);
  EXPECT_EQ(bo.attempt(), 2);
  bo.reset();  // a successful re-grant forgives the history
  EXPECT_EQ(bo.attempt(), 0);
  EXPECT_DOUBLE_EQ(bo.next_delay_s(rng), 0.1);
}

TEST(RejoinBackoff, DenyHintFloorsTheDelay) {
  RejoinBackoff bo(BackoffConfig{.base_s = 0.1, .factor = 2.0, .cap_s = 2.0,
                                 .jitter_frac = 0.0});
  Rng rng(1);
  // First attempt would be 0.1 s; a 0.9 s AP hint overrides it.
  EXPECT_DOUBLE_EQ(bo.next_delay_s(rng, 0.9), 0.9);
  // Once the schedule exceeds the hint the schedule wins (0.2 -> 0.4...).
  EXPECT_DOUBLE_EQ(bo.next_delay_s(rng, 0.15), 0.2);
  // No hint: plain schedule (and the default argument keeps legacy
  // call sites draw-for-draw identical).
  EXPECT_DOUBLE_EQ(bo.next_delay_s(rng), 0.4);
}

TEST(RejoinBackoff, BadConfigThrows) {
  EXPECT_THROW(RejoinBackoff(BackoffConfig{.base_s = 0.0}), std::invalid_argument);
  EXPECT_THROW(RejoinBackoff(BackoffConfig{.factor = 0.9}), std::invalid_argument);
  EXPECT_THROW(RejoinBackoff(BackoffConfig{.base_s = 1.0, .cap_s = 0.5}),
               std::invalid_argument);
  EXPECT_THROW(RejoinBackoff(BackoffConfig{.jitter_frac = 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::mac
