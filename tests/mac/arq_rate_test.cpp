#include <gtest/gtest.h>

#include "mmx/mac/arq.hpp"
#include "mmx/mac/rate_control.hpp"

namespace mmx::mac {
namespace {

TEST(ArqSender, HappyPath) {
  ArqSender arq;
  EXPECT_EQ(arq.next_action(), ArqSender::Action::kIdle);
  EXPECT_TRUE(arq.offer(1));
  EXPECT_EQ(arq.next_action(), ArqSender::Action::kTransmit);
  arq.on_transmitted();
  EXPECT_EQ(arq.next_action(), ArqSender::Action::kWaitAck);
  arq.on_ack(1);
  EXPECT_EQ(arq.next_action(), ArqSender::Action::kIdle);
  EXPECT_EQ(arq.stats().delivered, 1u);
  EXPECT_EQ(arq.stats().transmissions, 1u);
}

TEST(ArqSender, RetriesOnTimeoutThenDelivers) {
  ArqSender arq(ArqConfig{.max_retries = 3, .timeout_s = 1e-3});
  arq.offer(7);
  arq.on_transmitted();
  arq.on_timeout();
  EXPECT_EQ(arq.next_action(), ArqSender::Action::kTransmit);  // retry
  arq.on_transmitted();
  arq.on_ack(7);
  EXPECT_EQ(arq.stats().transmissions, 2u);
  EXPECT_EQ(arq.stats().delivered, 1u);
  EXPECT_EQ(arq.stats().gave_up, 0u);
}

TEST(ArqSender, GivesUpAfterMaxRetries) {
  ArqSender arq(ArqConfig{.max_retries = 2, .timeout_s = 1e-3});
  arq.offer(3);
  for (int attempt = 0; attempt < 3; ++attempt) {  // 1 initial + 2 retries
    EXPECT_EQ(arq.next_action(), ArqSender::Action::kTransmit);
    arq.on_transmitted();
    arq.on_timeout();
  }
  EXPECT_EQ(arq.next_action(), ArqSender::Action::kIdle);
  EXPECT_EQ(arq.stats().gave_up, 1u);
  EXPECT_EQ(arq.stats().transmissions, 3u);
}

TEST(ArqSender, RejectsSecondOfferWhileInFlight) {
  ArqSender arq;
  EXPECT_TRUE(arq.offer(1));
  EXPECT_FALSE(arq.offer(2));
  arq.on_transmitted();
  arq.on_ack(1);
  EXPECT_TRUE(arq.offer(2));
}

TEST(ArqSender, WrongSeqAckIgnored) {
  ArqSender arq;
  arq.offer(5);
  arq.on_transmitted();
  arq.on_ack(6);  // stale ack
  EXPECT_EQ(arq.next_action(), ArqSender::Action::kWaitAck);
  EXPECT_EQ(arq.stats().duplicate_acks, 1u);
  arq.on_ack(5);
  EXPECT_EQ(arq.stats().delivered, 1u);
}

TEST(ArqSender, SpuriousTimeoutHarmless) {
  ArqSender arq;
  arq.on_timeout();  // nothing in flight
  EXPECT_EQ(arq.next_action(), ArqSender::Action::kIdle);
  EXPECT_EQ(arq.stats().gave_up, 0u);
}

TEST(ArqSender, TransmitWithoutOfferThrows) {
  ArqSender arq;
  EXPECT_THROW(arq.on_transmitted(), std::logic_error);
}

TEST(ArqSender, BadConfigThrows) {
  EXPECT_THROW(ArqSender(ArqConfig{.max_retries = -1, .timeout_s = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(ArqSender(ArqConfig{.max_retries = 1, .timeout_s = 0.0}),
               std::invalid_argument);
}

TEST(ArqSender, DefaultConfigKeepsAFlatTimeout) {
  // backoff_factor defaults to 1.0: the retry cadence — and therefore the
  // byte-stream of every pre-existing scenario — is unchanged.
  ArqSender arq;
  EXPECT_DOUBLE_EQ(arq.current_timeout_s(), arq.config().timeout_s);
  arq.offer(1);
  for (int attempt = 0; attempt < 3; ++attempt) {
    arq.on_transmitted();
    EXPECT_DOUBLE_EQ(arq.current_timeout_s(), arq.config().timeout_s);
    arq.on_timeout();
  }
}

TEST(ArqSender, BackoffGrowsPerAttemptAndCaps) {
  ArqSender arq(ArqConfig{.max_retries = 6, .timeout_s = 1e-3,
                          .backoff_factor = 2.0, .max_timeout_s = 5e-3});
  arq.offer(1);
  const double expected[] = {1e-3, 2e-3, 4e-3, 5e-3, 5e-3};  // capped at 5 ms
  for (const double want : expected) {
    arq.on_transmitted();
    EXPECT_DOUBLE_EQ(arq.current_timeout_s(), want);
    arq.on_timeout();
  }
}

TEST(ArqSender, BackoffResetsForTheNextPayload) {
  ArqSender arq(ArqConfig{.max_retries = 4, .timeout_s = 1e-3, .backoff_factor = 2.0});
  arq.offer(1);
  arq.on_transmitted();
  arq.on_timeout();
  arq.on_transmitted();
  EXPECT_DOUBLE_EQ(arq.current_timeout_s(), 2e-3);  // second attempt, backed off
  arq.on_ack(1);
  arq.offer(2);
  arq.on_transmitted();
  EXPECT_DOUBLE_EQ(arq.current_timeout_s(), 1e-3);  // fresh payload, fresh schedule
}

TEST(ArqSender, BadBackoffConfigThrows) {
  EXPECT_THROW(ArqSender(ArqConfig{.max_retries = 1, .timeout_s = 1e-3,
                                   .backoff_factor = 0.5}),
               std::invalid_argument);
  EXPECT_THROW(ArqSender(ArqConfig{.max_retries = 1, .timeout_s = 1e-3,
                                   .backoff_factor = 2.0, .max_timeout_s = -1.0}),
               std::invalid_argument);
}

TEST(ArqReceiver, FiltersDuplicates) {
  ArqReceiver rx;
  EXPECT_TRUE(rx.accept(1, 10));
  EXPECT_FALSE(rx.accept(1, 10));  // retransmission
  EXPECT_TRUE(rx.accept(1, 11));
  EXPECT_TRUE(rx.accept(2, 10));   // other node, same seq
}

TEST(RateController, BacksOffAfterConsecutiveFailures) {
  RateController rc(40e6);
  rc.on_failure();
  EXPECT_DOUBLE_EQ(rc.rate_bps(), 40e6);  // one failure tolerated
  rc.on_failure();
  EXPECT_DOUBLE_EQ(rc.rate_bps(), 20e6);  // multiplicative cut
}

TEST(RateController, SuccessResetsFailureCountAndRecovers) {
  RateController rc(40e6);
  rc.on_failure();
  rc.on_success();
  rc.on_failure();  // not consecutive anymore
  EXPECT_DOUBLE_EQ(rc.rate_bps(), 42e6);
}

TEST(RateController, ClampsToBounds) {
  RateController rc(2e6, RateControlConfig{.min_rate_bps = 1e6, .max_rate_bps = 4e6});
  for (int i = 0; i < 10; ++i) {
    rc.on_failure();
    rc.on_failure();
  }
  EXPECT_DOUBLE_EQ(rc.rate_bps(), 1e6);
  for (int i = 0; i < 10; ++i) rc.on_success();
  EXPECT_DOUBLE_EQ(rc.rate_bps(), 4e6);
}

TEST(RateController, NeverExceedsSwitchCap) {
  RateController rc(99e6);
  for (int i = 0; i < 100; ++i) rc.on_success();
  EXPECT_LE(rc.rate_bps(), 100e6);  // the ADRF5020 toggle cap
}

TEST(RateController, BadConfigThrows) {
  EXPECT_THROW(RateController(2e6, RateControlConfig{.min_rate_bps = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(RateController(2e6, RateControlConfig{.backoff_factor = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(RateController(200e6), std::invalid_argument);  // above max
}

class AimdConvergence : public ::testing::TestWithParam<double> {};

TEST_P(AimdConvergence, OscillatesAroundSustainableRate) {
  // Channel sustains GetParam() bps: success below, failure above. AIMD
  // must settle near (below ~2x under) the sustainable rate.
  const double sustainable = GetParam();
  RateController rc(80e6);
  for (int i = 0; i < 500; ++i) {
    if (rc.rate_bps() <= sustainable) {
      rc.on_success();
    } else {
      rc.on_failure();
    }
  }
  EXPECT_LE(rc.rate_bps(), sustainable * 1.2);
  EXPECT_GE(rc.rate_bps(), sustainable * 0.4);
}

INSTANTIATE_TEST_SUITE_P(Rates, AimdConvergence, ::testing::Values(10e6, 25e6, 50e6, 90e6));

}  // namespace
}  // namespace mmx::mac
