// Model-based fuzz for the stop-and-wait ARQ sender (ctest label: faults).
//
// The reference below restates the protocol's specification in ~20 lines
// of the most naive code possible — an enum and four transitions, written
// from the docs, not from arq.cpp. The fuzz drives the production
// ArqSender and the model through 10k random offer / transmit / ack /
// duplicate-ack / timeout sequences and demands they agree action-for-
// action and on every counter after every step. Any divergence (a lost
// retry, a double-counted delivery, an accepted stale ack) fails with the
// exact (sequence, step) that exposed it.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "mmx/common/rng.hpp"
#include "mmx/mac/arq.hpp"

namespace mmx::mac {
namespace {

// The specification, independently restated.
struct RefModel {
  enum class S { kIdle, kNeedTx, kWaitAck };
  S s = S::kIdle;
  std::uint16_t seq = 0;
  int tries = 0;
  int max_retries = 4;
  std::uint64_t tx = 0, delivered = 0, gave_up = 0, dup_acks = 0;

  bool offer(std::uint16_t q) {
    if (s != S::kIdle) return false;
    seq = q, tries = 0, s = S::kNeedTx;
    return true;
  }
  bool transmit() {  // false = illegal in this state
    if (s != S::kNeedTx) return false;
    ++tries, ++tx, s = S::kWaitAck;
    return true;
  }
  void ack(std::uint16_t q) {
    if (s != S::kWaitAck || q != seq) { ++dup_acks; return; }
    ++delivered, s = S::kIdle;
  }
  void timeout() {
    if (s != S::kWaitAck) return;
    s = tries > max_retries ? (++gave_up, S::kIdle) : S::kNeedTx;
  }
};

ArqSender::Action action_of(const RefModel& m) {
  switch (m.s) {
    case RefModel::S::kIdle: return ArqSender::Action::kIdle;
    case RefModel::S::kNeedTx: return ArqSender::Action::kTransmit;
    default: return ArqSender::Action::kWaitAck;
  }
}

// One random op against both implementations, then full-state comparison.
void step(Rng& rng, ArqSender& arq, RefModel& model, std::uint16_t& next_seq,
          const std::string& where) {
  switch (rng.uniform_int(0, 5)) {
    case 0: {  // offer a fresh payload (may be rejected while in flight)
      const std::uint16_t q = next_seq;
      const bool accepted = model.offer(q);
      EXPECT_EQ(arq.offer(q), accepted) << where;
      if (accepted) ++next_seq;
      break;
    }
    case 1: {  // transmit; illegal states must throw, not corrupt
      if (model.transmit()) {
        arq.on_transmitted();
      } else {
        EXPECT_THROW(arq.on_transmitted(), std::logic_error) << where;
      }
      break;
    }
    case 2:  // the expected ack
      model.ack(model.seq);
      arq.on_ack(arq.current_seq());
      break;
    case 3: {  // stale/duplicate ack (wrong sequence number)
      const auto stale = static_cast<std::uint16_t>(model.seq + 1 + rng.uniform_int(0, 99));
      model.ack(stale);
      arq.on_ack(stale);
      break;
    }
    case 4:  // ack timer fires
      model.timeout();
      arq.on_timeout();
      break;
    default:  // a second timer pop in a row is also a legal input
      model.timeout();
      arq.on_timeout();
      break;
  }
  ASSERT_EQ(arq.next_action(), action_of(model)) << where;
  ASSERT_EQ(arq.stats().transmissions, model.tx) << where;
  ASSERT_EQ(arq.stats().delivered, model.delivered) << where;
  ASSERT_EQ(arq.stats().gave_up, model.gave_up) << where;
  ASSERT_EQ(arq.stats().duplicate_acks, model.dup_acks) << where;
  if (model.s != RefModel::S::kIdle) {
    ASSERT_EQ(arq.current_seq(), model.seq) << where;
  }
}

TEST(ArqModelFuzz, TenThousandRandomSequencesMatchTheReferenceModel) {
  constexpr int kSequences = 10'000;
  for (int k = 0; k < kSequences; ++k) {
    Rng rng = Rng::stream(0xA59F00D, static_cast<std::uint64_t>(k));
    const int max_retries = rng.uniform_int(0, 4);
    ArqSender arq(ArqConfig{.max_retries = max_retries, .timeout_s = 1e-3});
    RefModel model;
    model.max_retries = max_retries;
    std::uint16_t next_seq = 0;
    const int ops = rng.uniform_int(4, 24);
    for (int op = 0; op < ops; ++op) {
      step(rng, arq, model, next_seq,
           "sequence " + std::to_string(k) + " op " + std::to_string(op));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ArqModelFuzz, LongLivedSenderStaysInLockstep) {
  // One sender, one long adversarial stream: state carried across
  // thousands of payloads (counter wraparound territory for next_seq).
  Rng rng = Rng::stream(0xA59F00D, 1'000'000);
  ArqSender arq(ArqConfig{.max_retries = 2, .timeout_s = 1e-3});
  RefModel model;
  model.max_retries = 2;
  std::uint16_t next_seq = 0;
  for (int op = 0; op < 100'000; ++op) {
    step(rng, arq, model, next_seq, "op " + std::to_string(op));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace mmx::mac
