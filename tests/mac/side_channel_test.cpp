#include "mmx/mac/side_channel.hpp"

#include <gtest/gtest.h>

namespace mmx::mac {
namespace {

TEST(SideChannel, DeliversInOrder) {
  Rng rng(1);
  SideChannel sc;
  sc.node_to_ap(ChannelRequest{1, 10e6, 0.1}, rng);
  sc.node_to_ap(ChannelRequest{2, 20e6, 0.2}, rng);
  auto m1 = sc.poll_at_ap();
  auto m2 = sc.poll_at_ap();
  ASSERT_TRUE(m1 && m2);
  EXPECT_EQ(std::get<ChannelRequest>(*m1).node_id, 1);
  EXPECT_EQ(std::get<ChannelRequest>(*m2).node_id, 2);
  EXPECT_FALSE(sc.poll_at_ap().has_value());
}

TEST(SideChannel, DirectionsIndependent) {
  Rng rng(2);
  SideChannel sc;
  sc.node_to_ap(ChannelRequest{1, 1e6, 0.0}, rng);
  EXPECT_FALSE(sc.poll_at_node().has_value());
  sc.ap_to_node(ChannelDeny{1}, rng);
  EXPECT_EQ(sc.pending_at_ap(), 1u);
  EXPECT_EQ(sc.pending_at_node(), 1u);
  EXPECT_TRUE(sc.poll_at_node().has_value());
  EXPECT_TRUE(sc.poll_at_ap().has_value());
}

TEST(SideChannel, LossyChannelDropsSome) {
  Rng rng(3);
  SideChannel sc(0.5);
  for (int i = 0; i < 1000; ++i) sc.node_to_ap(ChannelRequest{1, 1e6, 0.0}, rng);
  EXPECT_GT(sc.pending_at_ap(), 350u);
  EXPECT_LT(sc.pending_at_ap(), 650u);
}

TEST(SideChannel, ZeroLossDeliversAll) {
  Rng rng(4);
  SideChannel sc(0.0);
  for (int i = 0; i < 100; ++i) sc.node_to_ap(ChannelDeny{0}, rng);
  EXPECT_EQ(sc.pending_at_ap(), 100u);
}

TEST(SideChannel, BadDropProbabilityThrows) {
  EXPECT_THROW(SideChannel(-0.1), std::invalid_argument);
  EXPECT_THROW(SideChannel(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::mac
