#include "mmx/core/node.hpp"

#include <gtest/gtest.h>

#include "mmx/common/units.hpp"
#include "mmx/mac/allocator.hpp"

namespace mmx::core {
namespace {

mac::ChannelGrant grant_for(std::uint16_t id, double rate_bps = 10e6) {
  // Mirror what the AP's init protocol would produce.
  rf::Vco vco;
  mac::ChannelGrant g;
  g.node_id = id;
  const double bw = mac::required_bandwidth_hz(rate_bps);
  g.channel = {24.1e9, bw};
  g.sdm_harmonic = 0;
  g.vco_tune_v0 = vco.voltage_for(g.channel.center_hz - 0.4 * bw);
  g.vco_tune_v1 = vco.voltage_for(g.channel.center_hz + 0.4 * bw);
  return g;
}

TEST(CoreNode, ConfigureDerivesPhy) {
  Node node(1, {{1.0, 2.0}, 0.0});
  EXPECT_FALSE(node.configured());
  node.configure(grant_for(1));
  ASSERT_TRUE(node.configured());
  // 12.5 MHz channel * 0.8 -> 10 Mbps.
  EXPECT_NEAR(node.bit_rate_bps(), 10e6, 1.0);
  // FSK tones symmetric around the channel centre, Df = symbol rate.
  const auto& cfg = node.phy_config();
  EXPECT_NEAR(cfg.fsk_freq1_hz - cfg.fsk_freq0_hz, 10e6, 1e4);
  EXPECT_NEAR(cfg.fsk_freq0_hz + cfg.fsk_freq1_hz, 0.0, 1e4);
}

TEST(CoreNode, SymbolRateCappedBySwitch) {
  Node node(1, {{1.0, 2.0}, 0.0});
  node.configure(grant_for(1, 180e6));  // 225 MHz channel would imply 180 Mbps
  EXPECT_DOUBLE_EQ(node.bit_rate_bps(), 100e6);  // paper §9.1 cap
}

TEST(CoreNode, WrongGrantRejected) {
  Node node(1, {{1.0, 2.0}, 0.0});
  EXPECT_THROW(node.configure(grant_for(2)), std::invalid_argument);
  EXPECT_THROW(node.grant(), std::logic_error);
  EXPECT_THROW(node.phy_config(), std::logic_error);
}

TEST(CoreNode, PowerMatchesPaper) {
  Node node(1, {{1.0, 2.0}, 0.0});
  EXPECT_NEAR(node.power_w(), 1.1, 0.01);
  node.configure(grant_for(1, 180e6));  // 100 Mbps after cap
  EXPECT_NEAR(node.energy_per_bit_j(), 11e-9, 0.2e-9);  // 11 nJ/bit
}

TEST(CoreNode, TransmitFrameProducesSamples) {
  Node node(1, {{1.0, 2.0}, 0.0});
  node.configure(grant_for(1));
  phy::Frame f;
  f.node_id = 1;
  f.payload = {1, 2, 3};
  const phy::OtamChannel ch{{1e-4, 0.0}, {1e-3, 0.0}};
  const auto rx = node.transmit_frame(f, ch);
  EXPECT_GT(rx.size(), 100u);
  EXPECT_GT(dsp::mean_power(rx), 0.0);
}

TEST(CoreNode, TransmitBeforeConfigureThrows) {
  Node node(1, {{1.0, 2.0}, 0.0});
  const phy::OtamChannel ch{{1e-4, 0.0}, {1e-3, 0.0}};
  EXPECT_THROW(node.transmit_bits({1, 0}, ch), std::logic_error);
}

TEST(CoreNode, PoseManagement) {
  Node node(7, {{1.0, 2.0}, 0.5});
  EXPECT_EQ(node.id(), 7);
  EXPECT_DOUBLE_EQ(node.pose().orientation_rad, 0.5);
  node.set_pose({{2.0, 3.0}, -0.5});
  EXPECT_DOUBLE_EQ(node.pose().position.x, 2.0);
}

}  // namespace
}  // namespace mmx::core
