// System-level tests for coded frames and the multi-frame stream
// receiver.
#include <gtest/gtest.h>

#include "mmx/channel/blockage.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/core/network.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::core {
namespace {

Network paper_network(std::uint64_t seed = 1) {
  NetworkSpec spec;
  spec.noise_seed = seed;
  return Network(channel::Room(6.0, 4.0), channel::Pose{{5.5, 2.0}, kPi}, spec);
}

TEST(CodedSend, AllProfilesDeliverOnGoodLink) {
  Network net = paper_network();
  const auto id = net.join({{1.0, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id);
  const std::vector<std::uint8_t> payload(100, 0x3D);
  for (auto profile : {phy::CodingProfile::kNone, phy::CodingProfile::kHamming,
                       phy::CodingProfile::kConvolutional}) {
    const auto r = net.send(*id, payload, profile);
    EXPECT_TRUE(r.delivered) << static_cast<int>(profile);
  }
}

TEST(CodedSend, FecWinsOnMarginalLink) {
  // Degrade the budget so uncoded frames drop regularly; Hamming+
  // interleaving should recover a visible fraction of them.
  NetworkSpec spec;
  spec.budget.implementation_loss_db = 45.0;
  Network net(channel::Room(6.0, 4.0), channel::Pose{{5.5, 2.0}, kPi}, spec);
  const auto id = net.join({{1.5, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id);
  const std::vector<std::uint8_t> payload(32, 0x22);
  int plain = 0;
  int coded = 0;
  const int kTrials = 30;
  for (int i = 0; i < kTrials; ++i) {
    plain += net.send(*id, payload, phy::CodingProfile::kNone).delivered;
    coded += net.send(*id, payload, phy::CodingProfile::kConvolutional).delivered;
  }
  EXPECT_GT(plain, 0);           // link is marginal, not dead
  EXPECT_LT(plain, kTrials);     // ...and genuinely lossy
  EXPECT_GE(coded, plain);       // FEC never hurts here and usually helps
}

TEST(StreamReceive, DecodesBackToBackFrames) {
  Rng rng(9);
  AccessPoint ap{channel::Pose{{5.5, 2.0}, kPi}};
  Node node(1, {{1.0, 2.0}, 0.0});
  const auto grant = ap.handle_init(mac::ChannelRequest{1, 10e6, 0.0});
  node.configure(std::get<mac::ChannelGrant>(grant));
  const phy::OtamChannel ch{{2e-4, 0.0}, {2e-3, 0.0}};

  dsp::Cvec stream;
  std::vector<phy::Frame> sent;
  for (int k = 0; k < 3; ++k) {
    phy::Frame f;
    f.node_id = 1;
    f.seq = static_cast<std::uint16_t>(k);
    f.payload.assign(16 + 8 * static_cast<std::size_t>(k),
                     static_cast<std::uint8_t>(0x40 + k));
    sent.push_back(f);
    const auto burst = node.transmit_frame(f, ch);
    stream.insert(stream.end(), burst.begin(), burst.end());
    // Inter-frame gap of dead air.
    stream.resize(stream.size() + 40 * node.phy_config().samples_per_symbol, dsp::Complex{});
  }
  dsp::add_awgn(stream, dsp::mean_power(stream) / db_to_lin(22.0), rng);

  const auto frames = ap.receive_stream(stream, node.phy_config());
  ASSERT_EQ(frames.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(frames[k].frame.has_value());
    EXPECT_EQ(*frames[k].frame, sent[k]);
  }
}

TEST(StreamReceive, NoiseOnlyStreamYieldsNothing) {
  Rng rng(10);
  AccessPoint ap{channel::Pose{{5.5, 2.0}, kPi}};
  Node node(1, {{1.0, 2.0}, 0.0});
  const auto grant = ap.handle_init(mac::ChannelRequest{1, 10e6, 0.0});
  node.configure(std::get<mac::ChannelGrant>(grant));
  const dsp::Cvec junk = dsp::awgn(node.phy_config().samples_per_symbol * 400, 1.0, rng);
  EXPECT_TRUE(ap.receive_stream(junk, node.phy_config()).empty());
}

TEST(StreamReceive, CodedFramesInStream) {
  Rng rng(11);
  Network net = paper_network(11);
  const auto id = net.join({{1.0, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id);
  // send() exercises the AP's coded receive path per frame; stream-level
  // coded reception reuses the same decode, so a spot check suffices.
  const std::vector<std::uint8_t> payload(64, 0x77);
  EXPECT_TRUE(net.send(*id, payload, phy::CodingProfile::kHamming).delivered);
}

}  // namespace
}  // namespace mmx::core
