#include "mmx/core/network.hpp"

#include <gtest/gtest.h>

#include "mmx/channel/blockage.hpp"
#include "mmx/common/units.hpp"

namespace mmx::core {
namespace {

Network paper_network() {
  return Network(channel::Room(6.0, 4.0), channel::Pose{{5.5, 2.0}, kPi});
}

TEST(CoreNetwork, JoinConfiguresNode) {
  Network net = paper_network();
  const auto id = net.join({{1.0, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(net.node(*id).configured());
  EXPECT_NEAR(net.node(*id).bit_rate_bps(), 10e6, 1.0);
}

TEST(CoreNetwork, SendDeliversPayload) {
  Network net = paper_network();
  const auto id = net.join({{1.0, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id);
  const std::vector<std::uint8_t> payload{0xCA, 0xFE, 0xBA, 0xBE};
  const SendReport r = net.send(*id, payload);
  EXPECT_TRUE(r.delivered);
  EXPECT_GT(r.snr_db, 10.0);
  EXPECT_EQ(r.payload_bytes, 4u);
}

TEST(CoreNetwork, SendSurvivesBlockedLos) {
  // The headline end-to-end scenario through the public API.
  Network net = paper_network();
  const auto id = net.join({{1.0, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id);
  channel::park_blocker_on_los(net.room(), {1.0, 2.0}, {5.5, 2.0});
  const std::vector<std::uint8_t> payload(64, 0x55);
  const SendReport r = net.send(*id, payload);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.inverted);  // Fig. 4(b): bits arrive inverted, preamble fixes it
}

TEST(CoreNetwork, SequenceNumbersAdvance) {
  Network net = paper_network();
  const auto id = net.join({{1.0, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id);
  const std::vector<std::uint8_t> p{1};
  EXPECT_TRUE(net.send(*id, p).delivered);
  EXPECT_TRUE(net.send(*id, p).delivered);
}

TEST(CoreNetwork, MeasureMatchesPaperStyleSnr) {
  Network net = paper_network();
  const auto id = net.join({{1.0, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id);
  const sim::OtamLink otam = net.measure(*id);
  const sim::OtamLink fixed = net.measure_fixed_beam(*id);
  EXPECT_GT(otam.snr_db, 10.0);
  EXPECT_LE(otam.joint_ber, fixed.joint_ber + 1e-12);
}

TEST(CoreNetwork, LeaveFreesChannel) {
  Network net = paper_network();
  const auto a = net.join({{1.0, 2.0}, 0.0}, 180e6);
  ASSERT_TRUE(a);
  net.leave(*a);
  EXPECT_EQ(net.num_nodes(), 0u);
  const auto b = net.join({{1.0, 2.0}, 0.0}, 180e6);
  EXPECT_TRUE(b.has_value());
}

TEST(CoreNetwork, MultipleNodesCoexist) {
  Network net = paper_network();
  std::vector<std::uint16_t> ids;
  for (int i = 0; i < 5; ++i) {
    const auto id = net.join({{0.8 + 0.8 * i, 1.0 + 0.5 * i}, 0.2 * i - 0.4}, 8e6);
    ASSERT_TRUE(id) << i;
    ids.push_back(*id);
  }
  const std::vector<std::uint8_t> payload(32, 0xAB);
  for (const auto id : ids) {
    EXPECT_TRUE(net.send(id, payload).delivered) << id;
  }
}

TEST(CoreNetwork, SendReliableDeliversFirstTryOnGoodLink) {
  Network net = paper_network();
  const auto id = net.join({{1.0, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id);
  const std::vector<std::uint8_t> payload(64, 0x11);
  const auto r = net.send_reliable(*id, payload);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.attempts, 1);
}

TEST(CoreNetwork, SendReliableRetriesThroughNoise) {
  // Degrade the link with extra implementation loss so single attempts
  // are marginal; ARQ should still get most payloads through.
  NetworkSpec spec;
  spec.budget.implementation_loss_db = 47.0;  // ~29 dB worse than calibrated: marginal
  Network net(channel::Room(6.0, 4.0), channel::Pose{{5.5, 2.0}, kPi}, spec);
  const auto id = net.join({{1.5, 2.0}, 0.0}, 10e6);
  ASSERT_TRUE(id);
  const std::vector<std::uint8_t> payload(32, 0x22);
  int one_shot = 0;
  int reliable = 0;
  int total_attempts = 0;
  for (int i = 0; i < 20; ++i) {
    one_shot += net.send(*id, payload).delivered;
    const auto r = net.send_reliable(*id, payload, mac::ArqConfig{.max_retries = 6});
    reliable += r.delivered;
    total_attempts += r.attempts;
  }
  EXPECT_GE(reliable, one_shot);
  EXPECT_GT(total_attempts, 20);  // retries actually happened
}

TEST(CoreNetwork, Validation) {
  Network net = paper_network();
  EXPECT_THROW(net.join({{9.0, 2.0}, 0.0}, 1e6), std::invalid_argument);
  EXPECT_THROW(net.node(42), std::out_of_range);
  EXPECT_THROW(net.send(42, std::vector<std::uint8_t>{1}), std::out_of_range);
  const auto id = net.join({{1.0, 2.0}, 0.0}, 1e6);
  EXPECT_THROW(net.set_pose(*id, {{-1.0, 2.0}, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::core
