#include "mmx/core/scenario.hpp"

#include <gtest/gtest.h>

#include "mmx/common/units.hpp"

namespace mmx::core {
namespace {

Network paper_network() {
  return Network(channel::Room(6.0, 4.0), channel::Pose{{5.5, 2.0}, kPi});
}

TEST(Scenario, StaticNodesDeliverEverything) {
  Network net = paper_network();
  const std::vector<ScenarioNode> nodes = {
      {{{1.0, 2.0}, 0.0}, 10e6, 0.1, 128},
      {{{2.0, 1.0}, 0.3}, 8e6, 0.1, 128},
  };
  ScenarioConfig cfg;
  cfg.duration_s = 1.0;
  const ScenarioResult r = run_scenario(net, nodes, cfg);
  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_EQ(r.joins_denied, 0u);
  for (const auto& n : r.nodes) {
    EXPECT_GE(n.frames_sent, 9u);
    EXPECT_DOUBLE_EQ(n.delivery_ratio(), 1.0);
    EXPECT_GT(n.mean_snr_db, 10.0);
    EXPECT_GT(n.goodput_bps, 0.0);
    // Static clear-room nodes never dip below the outage threshold.
    EXPECT_DOUBLE_EQ(n.outage_fraction, 0.0);
    EXPECT_GT(n.min_snr_db, 10.0);
  }
}

TEST(Scenario, EnergyLedgerConsistent) {
  Network net = paper_network();
  const std::vector<ScenarioNode> nodes = {{{{1.0, 2.0}, 0.0}, 10e6, 0.1, 250}};
  ScenarioConfig cfg;
  cfg.duration_s = 1.0;
  const ScenarioResult r = run_scenario(net, nodes, cfg);
  const auto& n = r.nodes[0];
  // ~10 frames of (16 + (6+250+2)*8) bits at 10 Mbps.
  const double frame_bits = 16.0 + (6.0 + 250.0 + 2.0) * 8.0;
  EXPECT_NEAR(n.airtime_s, n.frames_sent * frame_bits / 10e6, 1e-9);
  EXPECT_NEAR(n.radio_energy_j, n.airtime_s * 1.1, 1e-6);
  // Duty cycle is tiny: the radio sleeps >99.5% of the time.
  EXPECT_LT(n.airtime_s / cfg.duration_s, 0.005);
}

TEST(Scenario, FrameCadenceHonoured) {
  Network net = paper_network();
  const std::vector<ScenarioNode> nodes = {{{{1.0, 2.0}, 0.0}, 10e6, 0.05, 64}};
  ScenarioConfig cfg;
  cfg.duration_s = 2.0;
  const ScenarioResult r = run_scenario(net, nodes, cfg);
  // ~40 frames in 2 s at 50 ms cadence (first fire is phase-jittered).
  EXPECT_NEAR(static_cast<double>(r.nodes[0].frames_sent), 40.0, 3.0);
}

TEST(Scenario, WalkersCauseInversionsButFewLosses) {
  Network net = paper_network();
  const std::vector<ScenarioNode> nodes = {
      {{{0.8, 2.0}, 0.0}, 10e6, 0.05, 128},
      {{{1.2, 3.0}, -0.4}, 10e6, 0.05, 128},
  };
  ScenarioConfig cfg;
  cfg.duration_s = 3.0;
  cfg.walkers = 3;
  cfg.seed = 7;
  const ScenarioResult r = run_scenario(net, nodes, cfg);
  std::size_t inversions = 0;
  double worst_outage = 0.0;
  for (const auto& n : r.nodes) {
    inversions += n.inversions;
    worst_outage = std::max(worst_outage, n.outage_fraction);
    EXPECT_GT(n.delivery_ratio(), 0.6);  // OTAM keeps most frames alive
    EXPECT_LE(n.min_snr_db, n.mean_snr_db);
  }
  EXPECT_GT(inversions, 0u);  // blockage happened and was ridden through
  EXPECT_GT(worst_outage, 0.0);  // ...and the stats recorded the dips
}

TEST(Scenario, ReliableModeAtLeastAsGood) {
  Network net1 = paper_network();
  Network net2 = paper_network();
  const std::vector<ScenarioNode> nodes = {{{{0.8, 2.0}, 0.0}, 10e6, 0.05, 128}};
  ScenarioConfig plain;
  plain.duration_s = 2.0;
  plain.walkers = 3;
  plain.seed = 3;
  ScenarioConfig reliable = plain;
  reliable.reliable = true;
  const double pr = run_scenario(net1, nodes, plain).nodes[0].delivery_ratio();
  const double rr = run_scenario(net2, nodes, reliable).nodes[0].delivery_ratio();
  EXPECT_GE(rr + 1e-9, pr);
}

TEST(Scenario, DeniedJoinCounted) {
  Network net = paper_network();
  const std::vector<ScenarioNode> nodes = {
      {{{1.0, 2.0}, 0.0}, 200e6, 0.1, 64},  // 250 MHz demand: granted
      {{{2.0, 2.0}, 0.0}, 200e6, 0.1, 64},  // no spectrum, same bearing: denied
  };
  ScenarioConfig cfg;
  cfg.duration_s = 0.5;
  const ScenarioResult r = run_scenario(net, nodes, cfg);
  EXPECT_EQ(r.joins_denied, 1u);
  EXPECT_EQ(r.nodes.size(), 1u);
}

TEST(Scenario, Validation) {
  Network net = paper_network();
  EXPECT_THROW(run_scenario(net, {}, ScenarioConfig{.duration_s = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(run_scenario(net, {}, ScenarioConfig{.mobility_step_s = 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmx::core
