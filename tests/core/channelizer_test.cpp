// Wideband channelizer: one SDR capture, several FDM nodes, all decoded.
#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/core/access_point.hpp"
#include "mmx/core/node.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/resample.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::core {
namespace {

struct WidebandScene {
  AccessPoint ap{channel::Pose{{5.5, 2.0}, kPi}};
  double wide_rate = 64e6;  // the SDR capture rate

  /// Build a node whose channel PHY runs at 16 Msps (1 Msym/s, sps 16).
  static phy::PhyConfig channel_cfg() {
    phy::PhyConfig cfg;
    cfg.symbol_rate_hz = 1e6;
    cfg.samples_per_symbol = 16;
    cfg.fsk_freq0_hz = -2e6;
    cfg.fsk_freq1_hz = 2e6;
    return cfg;
  }

  /// Synthesize one node's OTAM frame *at the wideband rate* and place it
  /// at `offset_hz` within the capture.
  dsp::Cvec node_signal(const phy::Frame& frame, double offset_hz,
                        const phy::OtamChannel& ch) const {
    phy::PhyConfig wide_cfg = channel_cfg();
    wide_cfg.samples_per_symbol *= 4;  // 64 Msps at the same symbol rate
    rf::SpdtSwitch sw;
    const phy::Bits bits = phy::encode_frame(frame, phy::default_preamble());
    dsp::Cvec x = phy::otam_synthesize(bits, wide_cfg, ch, sw);
    x.resize(x.size() + 8 * wide_cfg.samples_per_symbol, dsp::Complex{});
    return dsp::frequency_shift(x, offset_hz, wide_rate);
  }
};

TEST(Channelizer, SingleNodeOffsetChannel) {
  Rng rng(1);
  WidebandScene scene;
  phy::Frame f;
  f.node_id = 1;
  f.payload = {1, 2, 3, 4};
  dsp::Cvec wide = scene.node_signal(f, 12e6, {{2e-4, 0.0}, {2e-3, 0.0}});
  dsp::add_awgn(wide, dsp::mean_power(wide) / db_to_lin(20.0), rng);
  const Reception r =
      scene.ap.receive_channel(wide, scene.wide_rate, 12e6, WidebandScene::channel_cfg());
  ASSERT_TRUE(r.frame.has_value());
  EXPECT_EQ(*r.frame, f);
}

TEST(Channelizer, TwoSimultaneousNodesBothDecode) {
  // The §9.5 set-up in miniature: two nodes on different FDM channels in
  // one capture; the AP channelizes each out and decodes both.
  Rng rng(2);
  WidebandScene scene;
  phy::Frame fa;
  fa.node_id = 1;
  fa.payload = {0xAA, 0xBB};
  phy::Frame fb;
  fb.node_id = 2;
  fb.payload = {0xCC, 0xDD, 0xEE};
  dsp::Cvec a = scene.node_signal(fa, -18e6, {{1e-4, 0.0}, {1.5e-3, 0.0}});
  dsp::Cvec b = scene.node_signal(fb, +18e6, {{2e-4, 0.0}, {1.0e-3, 0.0}});
  // Same capture: sum (pad the shorter).
  const std::size_t n = std::max(a.size(), b.size());
  a.resize(n, dsp::Complex{});
  b.resize(n, dsp::Complex{});
  dsp::Cvec wide(n);
  for (std::size_t i = 0; i < n; ++i) wide[i] = a[i] + b[i];
  dsp::add_awgn(wide, dsp::mean_power(wide) / db_to_lin(25.0), rng);

  const auto cfg = WidebandScene::channel_cfg();
  const Reception ra = scene.ap.receive_channel(wide, scene.wide_rate, -18e6, cfg);
  const Reception rb = scene.ap.receive_channel(wide, scene.wide_rate, +18e6, cfg);
  ASSERT_TRUE(ra.frame.has_value());
  ASSERT_TRUE(rb.frame.has_value());
  EXPECT_EQ(*ra.frame, fa);
  EXPECT_EQ(*rb.frame, fb);
}

TEST(Channelizer, AdjacentChannelDoesNotLeakDecode) {
  // Tuning to an empty channel next to an active one must not produce a
  // frame (the anti-alias filter rejects the neighbour).
  Rng rng(3);
  WidebandScene scene;
  phy::Frame f;
  f.node_id = 1;
  f.payload = {9};
  dsp::Cvec wide = scene.node_signal(f, -18e6, {{1e-4, 0.0}, {1e-3, 0.0}});
  dsp::add_awgn(wide, dsp::mean_power(wide) / db_to_lin(25.0), rng);
  const Reception r =
      scene.ap.receive_channel(wide, scene.wide_rate, +18e6, WidebandScene::channel_cfg());
  EXPECT_FALSE(r.frame.has_value());
}

TEST(Channelizer, ValidatesRateRatio) {
  WidebandScene scene;
  dsp::Cvec wide(1024);
  const auto cfg = WidebandScene::channel_cfg();
  EXPECT_THROW(scene.ap.receive_channel(wide, 0.0, 0.0, cfg), std::invalid_argument);
  // 40 MHz / 16 MHz is not an integer ratio.
  EXPECT_THROW(scene.ap.receive_channel(wide, 40e6, 0.0, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::core
