// Full-stack parameterized sweeps: frame transport across rate tiers,
// payload sizes and placements through the complete Network pipeline
// (ray tracing -> OTAM -> AWGN -> sync -> joint demod -> CRC).
#include <gtest/gtest.h>

#include <tuple>

#include "mmx/common/units.hpp"
#include "mmx/core/network.hpp"

namespace mmx::core {
namespace {

using SweepParam = std::tuple<double /*rate_bps*/, std::size_t /*payload*/>;

class FullStackSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FullStackSweep, DeliversAcrossRatesAndPayloads) {
  const auto [rate, payload_size] = GetParam();
  Network net(channel::Room(6.0, 4.0), channel::Pose{{5.5, 2.0}, kPi});
  const auto id = net.join({{1.5, 2.0}, 0.0}, rate);
  ASSERT_TRUE(id.has_value());
  EXPECT_NEAR(net.node(*id).bit_rate_bps(), rate, rate * 0.01);
  const std::vector<std::uint8_t> payload(payload_size, 0x5C);
  const SendReport r = net.send(*id, payload);
  EXPECT_TRUE(r.delivered) << "rate " << rate << " payload " << payload_size;
}

INSTANTIATE_TEST_SUITE_P(
    RatePayloadGrid, FullStackSweep,
    ::testing::Combine(::testing::Values(1e6, 8e6, 20e6, 50e6),
                       ::testing::Values(std::size_t{1}, std::size_t{64},
                                         std::size_t{512})));

class PlacementSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlacementSweep, DeliversFromRandomPlacements) {
  Rng rng(GetParam());
  Network net(channel::Room(6.0, 4.0), channel::Pose{{5.5, 2.0}, kPi});
  const std::vector<std::uint8_t> payload(64, 0xA5);
  int joined = 0;
  int delivered = 0;
  for (int i = 0; i < 8; ++i) {
    const channel::Pose pose{{rng.uniform(0.5, 4.5), rng.uniform(0.5, 3.5)},
                             deg_to_rad(rng.uniform(-45.0, 45.0))};
    const auto id = net.join(pose, 5e6);
    if (!id) continue;
    ++joined;
    delivered += net.send(*id, payload).delivered;
  }
  EXPECT_GE(joined, 6);
  // Clear room, sane placements: everything goes through.
  EXPECT_EQ(delivered, joined);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mmx::core
