#include "mmx/core/access_point.hpp"

#include <gtest/gtest.h>

#include "mmx/common/units.hpp"
#include "mmx/core/node.hpp"
#include "mmx/dsp/noise.hpp"

namespace mmx::core {
namespace {

AccessPoint make_ap() { return AccessPoint({{5.5, 2.0}, kPi}); }

TEST(CoreAp, NoiseFloorSane) {
  AccessPoint ap = make_ap();
  // 25 MHz channel, NF ~2.6 dB -> about -97 dBm.
  EXPECT_NEAR(ap.noise_floor_dbm(), -97.0, 3.0);
}

TEST(CoreAp, InitGrantsThroughFacade) {
  AccessPoint ap = make_ap();
  const auto msg = ap.handle_init(mac::ChannelRequest{1, 10e6, 0.0});
  EXPECT_NE(std::get_if<mac::ChannelGrant>(&msg), nullptr);
  EXPECT_EQ(ap.init().grants().size(), 1u);
  EXPECT_TRUE(ap.release(1));
  EXPECT_FALSE(ap.release(1));
}

TEST(CoreAp, ServeSideChannel) {
  Rng rng(1);
  AccessPoint ap = make_ap();
  mac::SideChannel sc;
  sc.node_to_ap(mac::ChannelRequest{1, 10e6, 0.0}, rng);
  EXPECT_EQ(ap.serve(sc, rng), 1u);
  EXPECT_EQ(sc.pending_at_node(), 1u);
}

TEST(CoreAp, ReceiveDecodesNodeTransmission) {
  Rng rng(2);
  AccessPoint ap = make_ap();
  Node node(1, {{1.0, 2.0}, 0.0});
  const auto msg = ap.handle_init(mac::ChannelRequest{1, 10e6, 0.0});
  node.configure(std::get<mac::ChannelGrant>(msg));

  phy::Frame f;
  f.node_id = 1;
  f.seq = 5;
  f.payload = {9, 8, 7, 6};
  const phy::OtamChannel ch{{2e-4, 0.0}, {2e-3, 0.0}};
  auto rx = node.transmit_frame(f, ch);
  rx.resize(rx.size() + 4 * node.phy_config().samples_per_symbol, dsp::Complex{});
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(20.0), rng);

  const Reception rec = ap.receive(rx, node.phy_config());
  ASSERT_TRUE(rec.frame.has_value());
  EXPECT_EQ(*rec.frame, f);
  EXPECT_GT(rec.sync_correlation, 0.8);
}

TEST(CoreAp, ReceiveRejectsNoise) {
  Rng rng(3);
  AccessPoint ap = make_ap();
  Node node(1, {{1.0, 2.0}, 0.0});
  const auto msg = ap.handle_init(mac::ChannelRequest{1, 10e6, 0.0});
  node.configure(std::get<mac::ChannelGrant>(msg));
  const dsp::Cvec junk = dsp::awgn(4096, 1.0, rng);
  const Reception rec = ap.receive(junk, node.phy_config());
  EXPECT_FALSE(rec.frame.has_value());
}

}  // namespace
}  // namespace mmx::core
