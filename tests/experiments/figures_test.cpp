// Figure-level regression tests: compact versions of every bench's
// headline claim, run in CI so the paper reproduction cannot silently
// drift when models are refactored. EXPERIMENTS.md documents the full
// paper-vs-measured numbers; these tests pin the load-bearing ones.
#include <gtest/gtest.h>

#include <cmath>

#include "mmx/antenna/pattern_metrics.hpp"
#include "mmx/baseline/fixed_beam.hpp"
#include "mmx/baseline/platforms.hpp"
#include "mmx/channel/blockage.hpp"
#include "mmx/channel/presets.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/phy/ber.hpp"
#include "mmx/rf/vco.hpp"
#include "mmx/sim/network_sim.hpp"
#include "mmx/sim/stats.hpp"

namespace mmx {
namespace {

channel::Room furnished_lab() { return channel::furnished_lab(); }

TEST(Fig07, VcoEndpointsAndIsmCoverage) {
  rf::Vco vco;
  EXPECT_NEAR(vco.frequency_hz(3.5), 23.95e9, 1e6);
  EXPECT_NEAR(vco.frequency_hz(4.9), 24.25e9, 1e6);
  EXPECT_TRUE(vco.covers(kIsmLowHz));
  EXPECT_TRUE(vco.covers(kIsmHighHz));
}

TEST(Fig08, BeamGeometry) {
  antenna::MmxBeamPair pair;
  const antenna::Pattern p0 = [&](double t) { return pair.amplitude(0, t); };
  const antenna::Pattern p1 = [&](double t) { return pair.amplitude(1, t); };
  const auto peak1 = antenna::find_peak(p1, -kPi / 2.0, kPi / 2.0);
  EXPECT_NEAR(rad_to_deg(peak1.angle), 0.0, 1.5);
  const auto peak0 = antenna::find_peak(p0, 0.0, kPi / 2.0);
  EXPECT_NEAR(rad_to_deg(peak0.angle), 30.0, 5.0);
  EXPECT_GT(antenna::depth_below_peak_db(p0, 0.0), 40.0);
}

TEST(Fig10, OtamNeverLosesToFixedBeam) {
  // Per-placement: OTAM's joint BER <= the fixed-beam baseline's, with
  // the blocked-LoS person in place; and OTAM's worst SNR stays usable.
  Rng rng(42);
  const channel::Pose ap{{2.0, 5.9}, -kPi / 2.0};
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_ant;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;
  double worst_otam = 1e9;
  for (int i = 0; i < 30; ++i) {
    const Vec2 pos{rng.uniform(0.5, 3.5), rng.uniform(0.3, 4.8)};
    channel::Room room = furnished_lab();
    channel::park_person(room, pos, ap.position);
    channel::RayTracer tracer(room);
    const double toward = (ap.position - pos).angle();
    const channel::Pose node{pos, toward + deg_to_rad(rng.uniform(-60.0, 60.0))};
    const auto modes = baseline::compare_modes_avg(tracer, node, beams, ap, ap_ant,
                                                   24.125e9, budget, spdt);
    EXPECT_LE(modes.with_otam.joint_ber, modes.without_otam.joint_ber + 1e-12);
    worst_otam = std::min(worst_otam, modes.with_otam.snr_db);
  }
  EXPECT_GT(worst_otam, 0.0);
}

TEST(Fig11, BerCdfOrdering) {
  Rng rng(11);
  const channel::Pose ap{{2.0, 5.9}, -kPi / 2.0};
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_ant;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;
  std::vector<double> with_otam;
  std::vector<double> without;
  for (int i = 0; i < 30; ++i) {
    const Vec2 pos{rng.uniform(0.5, 3.5), rng.uniform(0.3, 4.8)};
    channel::Room room = furnished_lab();
    channel::park_person(room, pos, ap.position);
    channel::RayTracer tracer(room);
    const double toward = (ap.position - pos).angle();
    const channel::Pose node{pos, toward + deg_to_rad(rng.uniform(-60.0, 60.0))};
    const auto modes = baseline::compare_modes_avg(tracer, node, beams, ap, ap_ant,
                                                   24.125e9, budget, spdt);
    with_otam.push_back(std::max(phy::kBerFloor, modes.with_otam.joint_ber));
    without.push_back(std::max(phy::kBerFloor, modes.without_otam.joint_ber));
  }
  // The paper's qualitative result: OTAM's distribution sits left of the
  // baseline at the median and the 90th percentile.
  EXPECT_LE(sim::median(with_otam), sim::median(without));
  EXPECT_LT(sim::percentile(with_otam, 90.0), sim::percentile(without, 90.0));
}

TEST(Fig12, RangeAnchors) {
  channel::Room hall(22.0, 8.0);
  channel::RayTracer tracer(hall);
  const channel::Pose ap{{21.0, 4.0}, kPi};
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_ant;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;
  const channel::Pose facing{{3.0, 4.0}, 0.0};            // 18 m out
  const channel::Pose away{{3.0, 4.0}, deg_to_rad(45.0)};
  const auto gf = channel::compute_beam_gains(tracer, facing, beams, ap, ap_ant, 24.125e9);
  const auto ga = channel::compute_beam_gains(tracer, away, beams, ap, ap_ant, 24.125e9);
  const double snr_facing = budget.evaluate_otam(gf, spdt).snr_db;
  const double snr_away = budget.evaluate_otam(ga, spdt).snr_db;
  // Paper: >= 15 dB facing, ~9 dB not facing, at 18 m.
  EXPECT_NEAR(snr_facing, 15.0, 4.0);
  EXPECT_NEAR(snr_away, 9.0, 4.0);
  EXPECT_GT(snr_facing, snr_away);
}

TEST(Fig13, MultiNodeShape) {
  Rng rng(99);
  auto mean_sinr_at = [&](int k) {
    std::vector<double> all;
    for (int trial = 0; trial < 12; ++trial) {
      sim::NetworkSimulator net(channel::Room(6.0, 4.0), channel::Pose{{5.7, 2.0}, kPi});
      int placed = 0;
      int attempts = 0;
      while (placed < k && attempts < 50 * k) {
        ++attempts;
        const channel::Pose pose{{rng.uniform(0.4, 5.2), rng.uniform(0.4, 3.6)},
                                 deg_to_rad(rng.uniform(-60.0, 60.0))};
        if (net.add_node(pose, 20e6)) ++placed;
      }
      for (const auto& [id, s] : net.sinr_all_db()) all.push_back(s);
    }
    return sim::mean(all);
  };
  const double m1 = mean_sinr_at(1);
  const double m20 = mean_sinr_at(20);
  EXPECT_GT(m1, 20.0);   // strong single-node links
  EXPECT_GT(m20, 12.0);  // still robust at 20 simultaneous nodes
  EXPECT_LT(m1 - m20, 15.0);  // graceful, not catastrophic, decline
}

TEST(Table1, HeadlineNumbers) {
  const auto rows = baseline::table1_platforms();
  const auto& mmx_row = baseline::platform(rows, "mmX");
  EXPECT_NEAR(mmx_row.power_w, 1.1, 0.01);
  EXPECT_NEAR(mmx_row.cost_usd, 110.0, 1.0);
  EXPECT_NEAR(mmx_row.energy_per_bit_nj(), 11.0, 0.2);
  EXPECT_LT(mmx_row.energy_per_bit_nj(),
            baseline::platform(rows, "WiFi (802.11n)").energy_per_bit_nj());
}

}  // namespace
}  // namespace mmx
