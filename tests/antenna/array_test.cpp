#include "mmx/antenna/array.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mmx/common/units.hpp"

namespace mmx::antenna {
namespace {

std::shared_ptr<const Element> iso() { return std::make_shared<Isotropic>(); }

TEST(LinearArray, SingleElementIsElementPattern) {
  LinearArray a(std::make_shared<Patch>(6.0), 0.001, {{1.0, 0.0}}, 24e9);
  Patch ref(6.0);
  for (double t = -1.5; t <= 1.5; t += 0.1) {
    EXPECT_NEAR(a.amplitude(t), ref.amplitude(t), 1e-12);
  }
}

TEST(LinearArray, InPhasePairCoherentAtBroadside) {
  const double lambda = wavelength(24e9);
  LinearArray a(iso(), lambda / 2.0, {{1.0, 0.0}, {1.0, 0.0}}, 24e9);
  EXPECT_NEAR(std::abs(a.array_factor(0.0)), 2.0, 1e-12);
}

TEST(LinearArray, HalfWaveInPhaseNullAtEndfire) {
  // d = lambda/2, in phase: psi at 90 deg = pi -> AF = 1 + e^{j pi} = 0.
  const double lambda = wavelength(24e9);
  LinearArray a(iso(), lambda / 2.0, {{1.0, 0.0}, {1.0, 0.0}}, 24e9);
  EXPECT_NEAR(std::abs(a.array_factor(kPi / 2.0)), 0.0, 1e-9);
}

TEST(LinearArray, AntiPhasePairNullAtBroadside) {
  const double lambda = wavelength(24e9);
  LinearArray a(iso(), lambda, {{1.0, 0.0}, {-1.0, 0.0}}, 24e9);
  EXPECT_NEAR(std::abs(a.array_factor(0.0)), 0.0, 1e-12);
}

TEST(LinearArray, SteeringWeightsPointMainLobe) {
  const double f = 24e9;
  const double lambda = wavelength(f);
  const double target = deg_to_rad(20.0);
  auto w = steering_weights(8, lambda / 2.0, f, target);
  LinearArray a(iso(), lambda / 2.0, w, f);
  // Coherent gain N at the steering angle.
  EXPECT_NEAR(std::abs(a.array_factor(target)), 8.0, 1e-9);
  // Less everywhere else (sampled).
  for (double t = -kPi / 2.0; t <= kPi / 2.0; t += 0.03) {
    EXPECT_LE(std::abs(a.array_factor(t)), 8.0 + 1e-9);
  }
}

TEST(LinearArray, MoreElementsNarrowerBeam) {
  const double f = 24e9;
  const double lambda = wavelength(f);
  auto make = [&](std::size_t n) {
    return LinearArray(iso(), lambda / 2.0, steering_weights(n, lambda / 2.0, f, 0.0), f);
  };
  const LinearArray a4 = make(4);
  const LinearArray a16 = make(16);
  // Measure amplitude at 10 degrees relative to peak.
  const double rel4 = std::abs(a4.array_factor(deg_to_rad(10.0))) / 4.0;
  const double rel16 = std::abs(a16.array_factor(deg_to_rad(10.0))) / 16.0;
  EXPECT_LT(rel16, rel4);
}

TEST(LinearArray, GainDbiNullClamped) {
  const double lambda = wavelength(24e9);
  LinearArray a(iso(), lambda, {{1.0, 0.0}, {-1.0, 0.0}}, 24e9);
  EXPECT_LE(a.gain_dbi(0.0), -150.0);
}

TEST(LinearArray, BadArgsThrow) {
  EXPECT_THROW(LinearArray(nullptr, 0.01, {{1.0, 0.0}}, 24e9), std::invalid_argument);
  EXPECT_THROW(LinearArray(iso(), 0.0, {{1.0, 0.0}}, 24e9), std::invalid_argument);
  EXPECT_THROW(LinearArray(iso(), 0.01, {}, 24e9), std::invalid_argument);
  EXPECT_THROW(LinearArray(iso(), 0.01, {{1.0, 0.0}}, 0.0), std::invalid_argument);
  EXPECT_THROW(steering_weights(0, 0.01, 24e9, 0.0), std::invalid_argument);
}

class SteeringSweep : public ::testing::TestWithParam<double> {};

TEST_P(SteeringSweep, PeakFoundAtRequestedAngle) {
  const double f = 24e9;
  const double lambda = wavelength(f);
  const double target = deg_to_rad(GetParam());
  LinearArray a(iso(), lambda / 2.0, steering_weights(8, lambda / 2.0, f, target), f);
  // Scan for the actual peak.
  double best_t = -kPi / 2.0;
  double best = 0.0;
  for (double t = -kPi / 2.0; t <= kPi / 2.0; t += 0.001) {
    const double v = std::abs(a.array_factor(t));
    if (v > best) {
      best = v;
      best_t = t;
    }
  }
  EXPECT_NEAR(rad_to_deg(best_t), GetParam(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Angles, SteeringSweep,
                         ::testing::Values(-45.0, -20.0, 0.0, 15.0, 30.0, 50.0));

}  // namespace
}  // namespace mmx::antenna
