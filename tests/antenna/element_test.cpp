#include "mmx/antenna/element.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"

namespace mmx::antenna {
namespace {

TEST(Isotropic, ZeroDbiEverywhere) {
  Isotropic iso;
  for (double t = -kPi; t <= kPi; t += 0.1) {
    EXPECT_DOUBLE_EQ(iso.amplitude(t), 1.0);
    EXPECT_NEAR(iso.gain_dbi(t), 0.0, 1e-12);
  }
}

TEST(Patch, PeakAtBoresight) {
  Patch p(6.0);
  EXPECT_NEAR(p.gain_dbi(0.0), 6.0, 1e-9);
  for (double t = -kPi; t <= kPi; t += 0.05) {
    EXPECT_LE(p.amplitude(t), p.amplitude(0.0) + 1e-12);
  }
}

TEST(Patch, BackLobeFloor) {
  Patch p(6.0, 1.0, 25.0);
  EXPECT_NEAR(p.gain_dbi(kPi), 6.0 - 25.0, 1e-9);
  EXPECT_NEAR(p.gain_dbi(deg_to_rad(120.0)), 6.0 - 25.0, 1e-9);
}

TEST(Patch, MonotonicDecreaseInFrontQuadrant) {
  Patch p;
  double prev = p.amplitude(0.0);
  for (double t = 0.02; t < kPi / 2.0; t += 0.02) {
    const double a = p.amplitude(t);
    EXPECT_LE(a, prev + 1e-12);
    prev = a;
  }
}

TEST(Patch, SymmetricPattern) {
  Patch p;
  for (double t = 0.0; t <= kPi; t += 0.05) {
    EXPECT_NEAR(p.amplitude(t), p.amplitude(-t), 1e-12);
  }
}

TEST(Patch, BadSpecThrows) {
  EXPECT_THROW(Patch(6.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Patch(6.0, 1.0, -3.0), std::invalid_argument);
}

TEST(Dipole, PeakGainMatchesPaper) {
  // Paper §8.2: AP dipoles have 5 dB gain.
  Dipole d;
  EXPECT_NEAR(d.gain_dbi(0.0), 5.0, 1e-9);
}

TEST(Dipole, HpbwMatchesPaper) {
  // Paper §8.2: 3 dB beamwidth of 62 degrees -> half power at +/-31 deg.
  Dipole d;
  const double half_amp = d.amplitude(0.0) / std::sqrt(2.0);
  EXPECT_NEAR(d.amplitude(deg_to_rad(31.0)), half_amp, half_amp * 0.02);
}

TEST(Dipole, BackRadiationSuppressed) {
  Dipole d;
  EXPECT_LT(d.gain_dbi(kPi), d.gain_dbi(0.0) - 19.0);
}

}  // namespace
}  // namespace mmx::antenna
