// Tests for the Time-Modulated Array (paper §7b, Eqs. 1-4).
#include "mmx/antenna/tma.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mmx/common/units.hpp"
#include "mmx/dsp/fft.hpp"
#include "mmx/dsp/goertzel.hpp"

namespace mmx::antenna {
namespace {

TEST(Tma, DcCoefficientIsDutyCycle) {
  auto tma = TimeModulatedArray::progressive(TmaSpec{}, 0.1, 0.4);
  for (std::size_t e = 0; e < tma.spec().num_elements; ++e) {
    EXPECT_NEAR(std::abs(tma.coefficient(0, e)), 0.4, 1e-12);
  }
}

TEST(Tma, CoefficientMatchesNumericalIntegration) {
  auto tma = TimeModulatedArray::progressive(TmaSpec{}, 0.13, 0.37);
  const int steps = 200000;
  for (int m : {1, 2, 3, -1}) {
    for (std::size_t e : {std::size_t{0}, std::size_t{3}}) {
      const SwitchWindow& w = tma.windows()[e];
      std::complex<double> acc{0.0, 0.0};
      for (int i = 0; i < steps; ++i) {
        const double u = (static_cast<double>(i) + 0.5) / steps;
        const double end = w.on + w.tau;
        const bool on = (end <= 1.0) ? (u >= w.on && u < end) : (u >= w.on || u < end - 1.0);
        if (!on) continue;
        const double ph = -kTwoPi * m * u;
        acc += std::complex<double>{std::cos(ph), std::sin(ph)};
      }
      acc /= static_cast<double>(steps);
      EXPECT_NEAR(std::abs(acc - tma.coefficient(m, e)), 0.0, 1e-4);
    }
  }
}

TEST(Tma, HarmonicZeroSteersBroadside) {
  auto tma = TimeModulatedArray::progressive(TmaSpec{}, 0.125, 0.45);
  EXPECT_NEAR(tma.steered_angle(0), 0.0, 1e-12);
  // Harmonic 0 pattern peaks at broadside.
  double best_t = 0.0;
  double best = 0.0;
  for (double t = -kPi / 2.0; t <= kPi / 2.0; t += 0.002) {
    const double p = tma.harmonic_power(0, t);
    if (p > best) {
      best = p;
      best_t = t;
    }
  }
  EXPECT_NEAR(best_t, 0.0, 0.02);
}

TEST(Tma, ProgressiveSteeringFormula) {
  // sin(theta_m) = m * delta * lambda / d with d = 0.5 lambda, delta=0.125
  // -> sin(theta_1) = 0.25.
  auto tma = TimeModulatedArray::progressive(TmaSpec{}, 0.125, 0.45);
  EXPECT_NEAR(std::sin(tma.steered_angle(1)), 0.25, 1e-12);
  EXPECT_NEAR(std::sin(tma.steered_angle(2)), 0.5, 1e-12);
  EXPECT_NEAR(std::sin(tma.steered_angle(-1)), -0.25, 1e-12);
}

TEST(Tma, HarmonicPatternPeaksAtSteeredAngle) {
  auto tma = TimeModulatedArray::progressive(TmaSpec{}, 0.125, 0.45);
  for (int m : {1, 2}) {
    const double target = tma.steered_angle(m);
    double best_t = -kPi / 2.0;
    double best = 0.0;
    for (double t = -kPi / 2.0; t <= kPi / 2.0; t += 0.001) {
      const double p = tma.harmonic_power(m, t);
      if (p > best) {
        best = p;
        best_t = t;
      }
    }
    EXPECT_NEAR(best_t, target, 0.03) << "harmonic " << m;
  }
}

TEST(Tma, DirectionsHashToDistinctHarmonics) {
  // The paper's Fig. 6 claim: signals on the same channel from different
  // directions land on different frequency offsets with strong isolation.
  auto tma = TimeModulatedArray::progressive(TmaSpec{}, 0.125, 0.45);
  const std::vector<double> dirs{tma.steered_angle(0), tma.steered_angle(1),
                                 tma.steered_angle(2)};
  const std::vector<int> harm{0, 1, 2};
  EXPECT_GT(tma.demux_sir_db(dirs, harm), 15.0);
}

TEST(Tma, UnwantedCopies20To30DbDown) {
  // Paper §7b: "only one copy has significant amplitude and the rest are
  // negligible (20-30 dB weaker)". Check leakage of a steered source
  // into the neighbouring harmonics.
  auto tma = TimeModulatedArray::progressive(TmaSpec{}, 0.125, 0.45);
  const double theta1 = tma.steered_angle(1);
  const double wanted = tma.harmonic_power(1, theta1);
  for (int m : {0, 2, 3}) {
    const double leak = tma.harmonic_power(m, theta1);
    EXPECT_GT(lin_to_db(wanted / leak), 13.0) << "harmonic " << m;
  }
}

TEST(Tma, TimeDomainSimulationMatchesAnalyticHarmonics) {
  // Brute-force simulate a tone from the harmonic-1 steering direction,
  // FFT the output, and verify the energy sits at +1 * switch rate with
  // the analytic amplitude.
  TmaSpec spec;
  spec.num_elements = 8;
  spec.switch_rate_hz = 1e6;
  auto tma = TimeModulatedArray::progressive(spec, 0.125, 0.45);
  const double theta = tma.steered_angle(1);
  const double fs = 64e6;  // 64 samples per switching period
  const std::size_t n = 65536;
  const std::vector<double> dirs{theta};
  const dsp::Cvec y = tma.simulate(dirs, fs, n);
  // Compare measured harmonic amplitudes against |H_m(theta)|.
  for (int m : {0, 1, 2}) {
    const double f = static_cast<double>(m) * spec.switch_rate_hz;
    const double meas = std::sqrt(dsp::goertzel_power(y, f, fs));
    const double ana = std::abs(tma.harmonic_pattern(m, theta));
    EXPECT_NEAR(meas, ana, 0.02 + 0.02 * ana) << "harmonic " << m;
  }
}

TEST(Tma, SimulateSuperposition) {
  // Two sources simulate to the sum of their individual simulations.
  TmaSpec spec;
  spec.switch_rate_hz = 1e6;
  auto tma = TimeModulatedArray::progressive(spec, 0.125, 0.45);
  const std::vector<double> d1{0.2};
  const std::vector<double> d2{-0.4};
  const std::vector<double> both{0.2, -0.4};
  const dsp::Cvec y1 = tma.simulate(d1, 16e6, 1000);
  const dsp::Cvec y2 = tma.simulate(d2, 16e6, 1000);
  const dsp::Cvec y12 = tma.simulate(both, 16e6, 1000);
  for (std::size_t i = 0; i < y12.size(); ++i) {
    EXPECT_NEAR(std::abs(y12[i] - (y1[i] + y2[i])), 0.0, 1e-12);
  }
}

TEST(Tma, BadArgsThrow) {
  TmaSpec bad;
  bad.num_elements = 0;
  EXPECT_THROW(TimeModulatedArray::progressive(bad, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(TimeModulatedArray::progressive(TmaSpec{}, 1.5, 0.5), std::invalid_argument);
  EXPECT_THROW(TimeModulatedArray::progressive(TmaSpec{}, 0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(TimeModulatedArray(TmaSpec{}, {}), std::invalid_argument);
  auto tma = TimeModulatedArray::progressive(TmaSpec{}, 0.125, 0.45);
  EXPECT_THROW(tma.coefficient(1, 99), std::out_of_range);
  EXPECT_THROW(tma.steered_angle(100), std::out_of_range);
  const std::vector<double> dirs{0.1};
  const std::vector<int> harms{0, 1};
  EXPECT_THROW(tma.demux_sir_db(dirs, harms), std::invalid_argument);
}

namespace taper {

/// Peak-to-max-sidelobe ratio [dB] of the harmonic-m pattern.
double sidelobe_ratio_db(const TimeModulatedArray& tma, int m) {
  const double peak_angle = tma.steered_angle(m);
  const double peak = tma.harmonic_power(m, peak_angle);
  // Scan outside the main lobe (one null-to-null width ~ 2*2/N in sin
  // space for an 8-element array: stay 0.3 rad clear of the peak).
  double worst = 0.0;
  for (double t = -mmx::kPi / 2.0; t <= mmx::kPi / 2.0; t += 0.002) {
    if (std::abs(t - peak_angle) < 0.3) continue;
    worst = std::max(worst, tma.harmonic_power(m, t));
  }
  return mmx::lin_to_db(peak / worst);
}

}  // namespace taper

TEST(TmaTapered, SteeringPreserved) {
  TmaSpec spec;
  std::vector<double> taus(spec.num_elements);
  for (std::size_t n = 0; n < taus.size(); ++n) {
    const double w = 0.5 - 0.5 * std::cos(mmx::kTwoPi * (n + 0.5) / taus.size());
    taus[n] = 0.15 + 0.35 * w;  // Hann-shaped duty cycles in [0.15, 0.5]
  }
  auto uni = TimeModulatedArray::progressive(spec, 0.125, 0.45);
  auto tap = TimeModulatedArray::tapered(spec, 0.125, taus);
  // Harmonic 1 peaks at the same steered angle for both designs.
  const double target = uni.steered_angle(1);
  EXPECT_NEAR(tap.steered_angle(1), target, 1e-12);
  double best_t = 0.0;
  double best = 0.0;
  for (double t = -mmx::kPi / 2.0; t <= mmx::kPi / 2.0; t += 0.001) {
    const double p = tap.harmonic_power(1, t);
    if (p > best) {
      best = p;
      best_t = t;
    }
  }
  EXPECT_NEAR(best_t, target, 0.03);
}

TEST(TmaTapered, SuppressesHarmonic1Sidelobes) {
  // The ref-[34] result: duty-cycle tapering buys sidelobe suppression on
  // the steered harmonic, at some aperture-efficiency cost.
  TmaSpec spec;
  std::vector<double> taus(spec.num_elements);
  for (std::size_t n = 0; n < taus.size(); ++n) {
    const double w = 0.5 - 0.5 * std::cos(mmx::kTwoPi * (n + 0.5) / taus.size());
    taus[n] = 0.15 + 0.35 * w;
  }
  auto uni = TimeModulatedArray::progressive(spec, 0.125, 0.45);
  auto tap = TimeModulatedArray::tapered(spec, 0.125, taus);
  const double uni_slr = taper::sidelobe_ratio_db(uni, 1);
  const double tap_slr = taper::sidelobe_ratio_db(tap, 1);
  EXPECT_GT(tap_slr, uni_slr + 4.0);
  EXPECT_GT(tap_slr, 17.0);
}

TEST(TmaTapered, Validation) {
  TmaSpec spec;
  EXPECT_THROW(TimeModulatedArray::tapered(spec, 0.125, {0.5, 0.5}), std::invalid_argument);
  std::vector<double> bad(spec.num_elements, 0.0);
  EXPECT_THROW(TimeModulatedArray::tapered(spec, 0.125, bad), std::invalid_argument);
  std::vector<double> ok(spec.num_elements, 0.4);
  EXPECT_THROW(TimeModulatedArray::tapered(spec, 1.2, ok), std::invalid_argument);
}

class TmaDutySweep : public ::testing::TestWithParam<double> {};

TEST_P(TmaDutySweep, CoefficientEnergyBounded) {
  // Parseval-ish sanity: sum over harmonics of |a_mn|^2 equals the duty
  // cycle (energy of the rectangular switching waveform).
  auto tma = TimeModulatedArray::progressive(TmaSpec{}, 0.1, GetParam());
  double acc = 0.0;
  for (int m = -200; m <= 200; ++m) acc += std::norm(tma.coefficient(m, 2));
  EXPECT_NEAR(acc, GetParam(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Duties, TmaDutySweep, ::testing::Values(0.2, 0.35, 0.5, 0.7));

}  // namespace
}  // namespace mmx::antenna
