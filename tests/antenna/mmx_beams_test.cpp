// Tests reproducing the geometry of Fig. 8: Beam 1 broadside, Beam 0 at
// +/-30 degrees, mutual nulls, ~40 degree HPBW, 120 degree field of view.
#include "mmx/antenna/mmx_beams.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/antenna/pattern_metrics.hpp"
#include "mmx/common/units.hpp"

namespace mmx::antenna {
namespace {

Pattern beam_pattern(const MmxBeamPair& pair, int b) {
  return [&pair, b](double t) { return pair.amplitude(b, t); };
}

TEST(MmxBeams, Beam1PeaksAtBroadside) {
  MmxBeamPair pair;
  const PatternPeak p = find_peak(beam_pattern(pair, 1), -kPi / 2.0, kPi / 2.0);
  EXPECT_NEAR(rad_to_deg(p.angle), 0.0, 1.0);
}

TEST(MmxBeams, Beam0PeaksNear30Degrees) {
  MmxBeamPair pair;
  const PatternPeak pos = find_peak(beam_pattern(pair, 0), 0.0, kPi / 2.0);
  const PatternPeak neg = find_peak(beam_pattern(pair, 0), -kPi / 2.0, 0.0);
  // "produces two peaks at about +/-30 degrees" — the patch element tilt
  // pulls the AF peak slightly inward, as in the measured Fig. 8.
  EXPECT_NEAR(rad_to_deg(pos.angle), 30.0, 5.0);
  EXPECT_NEAR(rad_to_deg(neg.angle), -30.0, 5.0);
}

TEST(MmxBeams, Beam0NullAtBroadside) {
  MmxBeamPair pair;
  EXPECT_GT(depth_below_peak_db(beam_pattern(pair, 0), 0.0), 40.0);
}

TEST(MmxBeams, Beam1NullAt30Degrees) {
  MmxBeamPair pair;
  EXPECT_GT(depth_below_peak_db(beam_pattern(pair, 1), deg_to_rad(30.0)), 30.0);
  EXPECT_GT(depth_below_peak_db(beam_pattern(pair, 1), deg_to_rad(-30.0)), 30.0);
}

TEST(MmxBeams, PairIsOrthogonal) {
  // Fig. 8: "Beam 0 has a null at the peak of Beam 1, and Beam 1 has
  // nulls at the peaks of Beam 0." The patch roll-off drags Beam 0's
  // *measured* peak a few degrees inside the AF null at 30 degrees, so
  // the worst-case cross-isolation is finite (~16 dB) — same effect is
  // visible in the paper's measured patterns.
  MmxBeamPair pair;
  EXPECT_GT(pair_orthogonality_db(beam_pattern(pair, 0), beam_pattern(pair, 1)), 12.0);
}

TEST(MmxBeams, AzimuthHpbwNear40Degrees) {
  // Paper §9.1: "The azimuth 3 dB beamwidth of each beam is 40 degrees."
  // The ideal lambda-spaced pair computes ~28 degrees; the fabricated
  // boards measure 40 (mutual coupling widens real lobes). Accept the
  // 24-52 degree band around the paper's figure.
  MmxBeamPair pair;
  const double b1 = half_power_beamwidth(beam_pattern(pair, 1), 0.0);
  EXPECT_GT(rad_to_deg(b1), 24.0);
  EXPECT_LT(rad_to_deg(b1), 52.0);
  const PatternPeak p0 = find_peak(beam_pattern(pair, 0), 0.0, kPi / 2.0);
  const double b0 = half_power_beamwidth(beam_pattern(pair, 0), p0.angle);
  EXPECT_GT(rad_to_deg(b0), 15.0);
  EXPECT_LT(rad_to_deg(b0), 52.0);
}

TEST(MmxBeams, FieldOfViewAtLeast120Degrees) {
  // Paper §9.1: "the node's field of view is 120 degrees in front side".
  MmxBeamPair pair;
  const double fov = field_of_view(beam_pattern(pair, 0), beam_pattern(pair, 1), 12.0);
  EXPECT_GE(rad_to_deg(fov), 110.0);
}

TEST(MmxBeams, PeakGainsComparable) {
  // The two beams radiate the same total power; their peaks should be
  // within a couple of dB (Beam 0 loses a little to the patch roll-off
  // at 30 degrees).
  MmxBeamPair pair;
  const PatternPeak p1 = find_peak(beam_pattern(pair, 1), -kPi / 2.0, kPi / 2.0);
  const PatternPeak p0 = find_peak(beam_pattern(pair, 0), -kPi / 2.0, kPi / 2.0);
  EXPECT_NEAR(amp_to_db(p1.amplitude / p0.amplitude), 1.25, 1.5);
}

TEST(MmxBeams, Beam0PeakAngleFormula) {
  MmxBeamPair pair;
  EXPECT_NEAR(rad_to_deg(pair.beam0_peak_angle()), 30.0, 1e-9);
}

TEST(MmxBeams, FieldIsComplexCoherent) {
  // The complex field must carry phase (needed for coherent multipath
  // combining in the channel model).
  MmxBeamPair pair;
  const auto f = pair.field(1, deg_to_rad(10.0));
  EXPECT_GT(std::abs(f), 0.0);
}

TEST(MmxBeams, InvalidBeamThrows) {
  MmxBeamPair pair;
  EXPECT_THROW(pair.amplitude(2, 0.0), std::invalid_argument);
  EXPECT_THROW(pair.amplitude(-1, 0.0), std::invalid_argument);
}

TEST(MmxBeams, BadSpecThrows) {
  BeamPairSpec s;
  s.spacing_wavelengths = 0.0;
  EXPECT_THROW(MmxBeamPair{s}, std::invalid_argument);
}

TEST(PatternMetrics, DirectivityOrdersPatterns) {
  // An isotropic pattern has 0 dB azimuth directivity; the mmX beams are
  // clearly directive; a sharper 8-element array is more directive still.
  const Pattern iso = [](double) { return 1.0; };
  EXPECT_NEAR(azimuth_directivity_db(iso), 0.0, 1e-9);
  MmxBeamPair pair;
  const double d1 = azimuth_directivity_db(beam_pattern(pair, 1));
  EXPECT_GT(d1, 6.0);
  EXPECT_LT(d1, 20.0);
  EXPECT_THROW(azimuth_directivity_db(iso, 4), std::invalid_argument);
  const Pattern zero = [](double) { return 0.0; };
  EXPECT_THROW(azimuth_directivity_db(zero), std::invalid_argument);
}

class BeamSpacingSweep : public ::testing::TestWithParam<double> {};

TEST_P(BeamSpacingSweep, OrthogonalityHoldsAcrossSpacings) {
  // Orthogonality at broadside is structural (odd vs even excitation), so
  // it must hold for any spacing; the +/-30 degree alignment needs d=1.0.
  BeamPairSpec s;
  s.spacing_wavelengths = GetParam();
  MmxBeamPair pair(s);
  EXPECT_GT(depth_below_peak_db(beam_pattern(pair, 0), 0.0), 40.0);
}

INSTANTIATE_TEST_SUITE_P(Spacings, BeamSpacingSweep, ::testing::Values(0.6, 0.8, 1.0, 1.2));

}  // namespace
}  // namespace mmx::antenna
