// mmx::obs contracts: exact log2 bucket boundaries, registry identity
// and sorted export, runtime-disabled silence, thread-count-invariant
// merged traces (the determinism contract of docs/OBSERVABILITY.md),
// and chrome-trace export well-formedness.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mmx/obs/export.hpp"
#include "mmx/obs/obs.hpp"
#include "mmx/obs/trace.hpp"
#include "mmx/sim/scale_scenario.hpp"
#include "mmx/sim/sweep.hpp"

namespace {

using namespace mmx;

// Fresh collection scope: instruments zeroed, trace buffers empty.
void reset_obs(bool enable) {
  obs::set_enabled(enable);
  obs::Registry::global().reset_values();
  obs::TraceSink::global().clear();
}

// Merged trace normalized for cross-run comparison: SweepRunner span
// keys carry a per-process run generation in the bits above 40, which
// advances between runs in the same process, so equality across two
// runs must compare (name, kind, trial bits, value) with the generation
// masked. Within one run the full key still orders the merge.
using NormalizedTrace = std::vector<std::tuple<std::string, int, std::uint64_t, std::uint64_t>>;

NormalizedTrace normalized_trace() {
  constexpr std::uint64_t kTrialMask = (std::uint64_t{1} << 40) - 1;
  NormalizedTrace out;
  const auto& sink = obs::TraceSink::global();
  for (const obs::TraceSink::MergedEvent& m : sink.merged())
    out.emplace_back(sink.name(m.event.name_id), static_cast<int>(m.event.kind),
                     m.event.key & kTrialMask, m.event.value);
  return out;
}

// Counter snapshot (name -> value); gauges and span-duration histograms
// are excluded (high-water marks and wall-clock durations legitimately
// vary with scheduling).
std::map<std::string, std::uint64_t> counter_snapshot() {
  std::map<std::string, std::uint64_t> out;
  obs::Registry::global().for_each([&](const std::string& name, char kind,
                                       const obs::Counter* c, const obs::Gauge*,
                                       const obs::Histogram*) {
    if (kind == 'c') out[name] = c->value();
  });
  return out;
}

std::vector<std::uint64_t> histogram_buckets(const char* name) {
  std::vector<std::uint64_t> out(obs::Histogram::kBuckets, 0);
  const obs::Histogram& h = obs::Registry::global().histogram(name);
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) out[i] = h.bucket(i);
  return out;
}

TEST(Histogram, BucketBoundariesExactAtPowersOfTwo) {
  // bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  for (std::size_t k = 1; k < 64; ++k) {
    const std::uint64_t lo = std::uint64_t{1} << (k - 1);
    const std::uint64_t hi = (std::uint64_t{1} << k) - 1;
    EXPECT_EQ(obs::Histogram::bucket_of(lo), k) << "k=" << k;
    EXPECT_EQ(obs::Histogram::bucket_of(hi), k) << "k=" << k;
    EXPECT_EQ(obs::Histogram::bucket_of(hi + 1), k + 1) << "k=" << k;
    EXPECT_EQ(obs::Histogram::lower_bound(k), lo);
    EXPECT_EQ(obs::Histogram::upper_bound(k), hi);
  }
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 64u);
  EXPECT_EQ(obs::Histogram::upper_bound(64), ~std::uint64_t{0});

  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  EXPECT_EQ(h.bucket(0), 1u);  // {0}
  EXPECT_EQ(h.bucket(1), 1u);  // {1}
  EXPECT_EQ(h.bucket(2), 2u);  // {2, 3}
  EXPECT_EQ(h.bucket(3), 1u);  // {4..7}
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10u);
}

TEST(Registry, LookupIsIdentityAndExportIsSorted) {
  reset_obs(true);
  obs::Counter& a = obs::Registry::global().counter("test.registry.zeta");
  obs::Counter& b = obs::Registry::global().counter("test.registry.zeta");
  EXPECT_EQ(&a, &b);  // same name, same instrument, stable address
  a.add(7);
  EXPECT_EQ(b.value(), 7u);

  obs::Registry::global().counter("test.registry.alpha").inc();
  obs::Registry::global().gauge("test.registry.mid").set(42);

  // for_each visits sorted by name regardless of registration order.
  std::vector<std::string> order;
  obs::Registry::global().for_each([&](const std::string& name, char, const obs::Counter*,
                                       const obs::Gauge*, const obs::Histogram*) {
    if (name.rfind("test.registry.", 0) == 0) order.push_back(name);
  });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "test.registry.alpha");
  EXPECT_EQ(order[1], "test.registry.mid");
  EXPECT_EQ(order[2], "test.registry.zeta");

  const std::string prom = obs::Registry::global().prometheus_text();
  EXPECT_NE(prom.find("# TYPE mmx_test_registry_zeta counter"), std::string::npos);
  EXPECT_NE(prom.find("mmx_test_registry_zeta 7"), std::string::npos);
  EXPECT_NE(prom.find("mmx_test_registry_mid 42"), std::string::npos);
  // Sorted exposition: alpha's line precedes zeta's.
  EXPECT_LT(prom.find("mmx_test_registry_alpha"), prom.find("mmx_test_registry_zeta"));

  obs::Registry::global().reset_values();
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(obs::Registry::global().gauge("test.registry.mid").value(), 0);
}

#if MMX_OBS_ENABLED

TEST(Runtime, DisabledCollectionRecordsNothing) {
  reset_obs(false);
  for (int i = 0; i < 100; ++i) {
    MMX_OBS_COUNT("test.disabled.count", 3);
    MMX_OBS_GAUGE_SET("test.disabled.gauge", i);
    MMX_OBS_RECORD("test.disabled.hist", i);
    MMX_OBS_SPAN("test.disabled.span", i);
    MMX_OBS_SAMPLE("test.disabled.sample", i, i);
  }
  EXPECT_TRUE(obs::TraceSink::global().merged().empty());
  EXPECT_EQ(obs::TraceSink::global().dropped(), 0u);
  EXPECT_EQ(obs::Registry::global().counter("test.disabled.count").value(), 0u);
  EXPECT_EQ(obs::Registry::global().histogram("test.disabled.hist").count(), 0u);
}

TEST(Runtime, EnabledCollectionRecords) {
  reset_obs(true);
  MMX_OBS_COUNT("test.enabled.count", 2);
  MMX_OBS_COUNT("test.enabled.count", 3);
  { MMX_OBS_SPAN("test.enabled.span", 9); }
  MMX_OBS_SAMPLE("test.enabled.sample", 1, 55);
  EXPECT_EQ(obs::Registry::global().counter("test.enabled.count").value(), 5u);
  const auto merged = obs::TraceSink::global().merged();
  ASSERT_EQ(merged.size(), 2u);
  // Stable sort by key: the span (key 9) sorts after the sample (key 1).
  EXPECT_EQ(merged[0].event.kind, obs::EventKind::kSample);
  EXPECT_EQ(merged[0].event.value, 55u);
  EXPECT_EQ(merged[1].event.kind, obs::EventKind::kSpan);
  EXPECT_EQ(obs::TraceSink::global().name(merged[1].event.name_id), "test.enabled.span");
  // Span durations feed the "span.<name>.ns" histogram.
  EXPECT_EQ(obs::Registry::global().histogram("span.test.enabled.span.ns").count(), 1u);
}

TEST(Runtime, DigestExcludesTimestampsAndIsStable) {
  reset_obs(true);
  { MMX_OBS_SPAN("test.digest.span", 1); }
  const std::uint64_t d1 = obs::TraceSink::global().merged_digest();
  EXPECT_EQ(obs::TraceSink::global().merged_digest(), d1);  // pure
  { MMX_OBS_SPAN("test.digest.span", 2); }                  // same name, new key
  EXPECT_NE(obs::TraceSink::global().merged_digest(), d1);
}

TEST(Determinism, SweepTraceInvariantAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    reset_obs(true);
    sim::SweepRunner runner(sim::SweepConfig{.trials = 96, .threads = threads, .seed = 7});
    const auto result = runner.run([](std::size_t i, Rng& rng) {
      return rng.uniform(0.0, 1.0) + static_cast<double>(i);
    });
    return std::make_tuple(result.trials, normalized_trace(), counter_snapshot());
  };
  const auto [r1, t1, c1] = run(1);
  const auto [r2, t2, c2] = run(2);
  const auto [r8, t8, c8] = run(8);
  EXPECT_EQ(r1, r2);  // trial results bit-identical (existing contract)
  EXPECT_EQ(r1, r8);
  ASSERT_EQ(t1.size(), 96u);  // one span per trial
  EXPECT_EQ(t1, t2);          // merged trace: names/kinds/keys/values + order
  EXPECT_EQ(t1, t8);
  EXPECT_EQ(c1, c2);  // counter sums commute
  EXPECT_EQ(c1, c8);
  EXPECT_EQ(obs::TraceSink::global().dropped(), 0u);
}

TEST(Determinism, ScaleScenarioInvariantUnderObsAndThreads) {
  sim::ScaleConfig cfg = sim::make_scale_config(60);
  cfg.duration_s = 2.0;
  cfg.join_window_s = 0.5;
  cfg.walkers = 1;

  // Arm 1: obs off (the pre-obs behavior).
  reset_obs(false);
  const sim::ScaleReport plain = sim::ScaleScenario(cfg).run(3);

  // Arm 2: obs on, serial refresh.
  reset_obs(true);
  const sim::ScaleReport obs1 = sim::ScaleScenario(cfg).run(3);
  const auto trace1 = normalized_trace();
  const auto counters1 = counter_snapshot();
  const auto rates1 = histogram_buckets("scale.thing_rate_bps");

  // Arm 3: obs on, threaded refresh.
  cfg.refresh_threads = 4;
  reset_obs(true);
  const sim::ScaleReport obs4 = sim::ScaleScenario(cfg).run(3);
  const auto trace4 = normalized_trace();
  const auto counters4 = counter_snapshot();
  const auto rates4 = histogram_buckets("scale.thing_rate_bps");

  // Instrumentation never feeds back into simulation state...
  EXPECT_EQ(plain, obs1);
  EXPECT_EQ(plain, obs4);
  // ...and what it records is thread-count invariant.
  EXPECT_EQ(trace1, trace4);
  EXPECT_EQ(counters1, counters4);
  EXPECT_EQ(rates1, rates4);
  EXPECT_EQ(counters1.at("scale.joins"), static_cast<std::uint64_t>(obs1.joins));
  EXPECT_EQ(counters1.at("mac.arq.transmissions"), obs1.arq.transmissions);
}

TEST(Export, ChromeTraceJsonIsWellFormed) {
  reset_obs(true);
  { MMX_OBS_SPAN("test.export.span", 1); }
  MMX_OBS_SAMPLE("test.export.sample", 2, 17);
  const std::string json = obs::chrome_trace_json();

  // Required schema pieces of the Trace Event Format.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.export.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter sample
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  // Braces/brackets balance outside strings — the round-trip smoke an
  // actual chrome://tracing load depends on.
  int brace = 0, bracket = 0;
  bool in_string = false, escaped = false;
  for (const char ch : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (ch == '\\') {
      escaped = true;
      continue;
    }
    if (ch == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    brace += (ch == '{') - (ch == '}');
    bracket += (ch == '[') - (ch == ']');
    EXPECT_GE(brace, 0);
    EXPECT_GE(bracket, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
}

TEST(Trace, FullBufferDropsInsteadOfGrowing) {
  obs::set_enabled(true);
  obs::TraceSink::global().set_buffer_capacity(8);
  obs::TraceSink::global().clear();  // applies the capacity to this thread's buffer
  for (int i = 0; i < 20; ++i) MMX_OBS_SAMPLE("test.drop.sample", i, i);
  EXPECT_EQ(obs::TraceSink::global().merged().size(), 8u);
  EXPECT_EQ(obs::TraceSink::global().dropped(), 12u);
  obs::TraceSink::global().clear();
}

#else  // !MMX_OBS_ENABLED

TEST(Compiled, OffBuildMacrosAreNoOpsEvenWhenEnabled) {
  // With MMX_OBS=OFF the macros expand to nothing: even a runtime
  // enable must record nothing anywhere.
  reset_obs(true);
  for (int i = 0; i < 10; ++i) {
    MMX_OBS_COUNT("test.off.count", 1);
    MMX_OBS_RECORD("test.off.hist", i);
    MMX_OBS_SPAN("test.off.span", i);
    MMX_OBS_SAMPLE("test.off.sample", i, i);
  }
  EXPECT_TRUE(obs::TraceSink::global().merged().empty());
  EXPECT_EQ(obs::Registry::global().counter("test.off.count").value(), 0u);
}

#endif  // MMX_OBS_ENABLED

}  // namespace
