// CFO recovery and occupied-bandwidth measurement tests.
#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/resample.hpp"
#include "mmx/dsp/spectrum.hpp"
#include "mmx/dsp/tone.hpp"
#include "mmx/phy/cfo.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/otam.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 32;  // finer tone resolution per symbol
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

std::pair<Bits, dsp::Cvec> make_offset_frame(double cfo_hz, double snr_db, Rng& rng,
                                             const PhyConfig& cfg) {
  rf::SpdtSwitch sw;
  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  Bits bits = prefix;
  for (int i = 0; i < 200; ++i) bits.push_back(rng.uniform_int(0, 1));
  const OtamChannel ch{{0.25, 0.0}, {1.0, 0.0}};
  auto rx = otam_synthesize(bits, cfg, ch, sw);
  rx = dsp::frequency_shift(rx, cfo_hz, cfg.sample_rate_hz());  // drifted VCO
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(snr_db), rng);
  return {bits, rx};
}

TEST(Cfo, EstimatesInjectedOffset) {
  Rng rng(1);
  const PhyConfig cfg = test_cfg();
  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  for (double cfo : {-400e3, -100e3, 0.0, 150e3, 500e3}) {
    auto [bits, rx] = make_offset_frame(cfo, 25.0, rng, cfg);
    const CfoEstimate est = estimate_cfo(rx, cfg, prefix);
    // Per-symbol FFT bin width is fs/sps = 1 MHz; with parabolic
    // interpolation and 8 symbols the estimate lands within ~60 kHz.
    EXPECT_NEAR(est.offset_hz, cfo, 60e3) << cfo;
  }
}

TEST(Cfo, CorrectionRestoresDecoding) {
  Rng rng(2);
  const PhyConfig cfg = test_cfg();
  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  // 800 kHz of drift: a big bite out of the 4 MHz tone spacing.
  auto [bits, rx] = make_offset_frame(800e3, 25.0, rng, cfg);

  const CfoEstimate est = estimate_cfo(rx, cfg, prefix);
  const dsp::Cvec fixed = correct_cfo(rx, cfg, est.offset_hz);
  const JointDecision after = joint_demodulate(fixed, cfg, prefix);
  std::size_t err_after = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) err_after += (after.bits[i] != bits[i]);
  EXPECT_LE(err_after, 2u);
  // And the FSK margin visibly recovers versus the uncorrected capture.
  const JointDecision before = joint_demodulate(rx, cfg, prefix);
  EXPECT_GT(after.fsk_margin, before.fsk_margin);
}

TEST(Cfo, ResidualFlagsGarbage) {
  Rng rng(3);
  const PhyConfig cfg = test_cfg();
  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  const dsp::Cvec junk = dsp::awgn(prefix.size() * cfg.samples_per_symbol + 64, 1.0, rng);
  const CfoEstimate est = estimate_cfo(junk, cfg, prefix);
  // Noise has no consistent tone: the residual is a large fraction of
  // the tone spacing.
  EXPECT_GT(est.residual_hz, 100e3);
}

TEST(Cfo, Validation) {
  const PhyConfig cfg = test_cfg();
  dsp::Cvec rx(cfg.samples_per_symbol * 8, dsp::Complex{1.0, 0.0});
  EXPECT_THROW(estimate_cfo(rx, cfg, Bits{1, 0}), std::invalid_argument);
  dsp::Cvec tiny(cfg.samples_per_symbol * 2);
  EXPECT_THROW(estimate_cfo(tiny, cfg, Bits{1, 0, 1, 0, 1, 1, 0, 0}), std::invalid_argument);
  const dsp::Cvec silent(cfg.samples_per_symbol * 8, dsp::Complex{});
  EXPECT_THROW(estimate_cfo(silent, cfg, Bits{1, 0, 1, 0, 1, 1, 0, 0}),
               std::invalid_argument);
}

TEST(Spectrum, ToneObwIsNarrow) {
  const double fs = 16e6;
  const dsp::Cvec x = dsp::tone(fs, 2e6, 8192);
  const auto obw = dsp::occupied_bandwidth(x, fs);
  EXPECT_NEAR(obw.center_hz, 2e6, 20e3);
  EXPECT_LT(obw.bandwidth_hz, 100e3);
}

TEST(Spectrum, OtamSignalFitsGrantedChannel) {
  // The regulatory check the allocator relies on: an OTAM transmission at
  // rate R with tones at +/-2R stays inside a bandwidth of ~R/0.8 plus
  // the tone spread — comfortably inside a 12.5 MHz channel for 1 Mbaud
  // test parameters scaled accordingly.
  Rng rng(4);
  PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  Bits bits;
  for (int i = 0; i < 500; ++i) bits.push_back(rng.uniform_int(0, 1));
  const OtamChannel ch{{0.7, 0.0}, {1.0, 0.0}};
  const auto rx = otam_synthesize(bits, cfg, ch, sw);
  const auto obw = dsp::occupied_bandwidth(rx, cfg.sample_rate_hz(), 0.99);
  // Tones at +/-2 MHz with ~1 MHz OOK skirts: everything within ~7 MHz.
  EXPECT_LT(obw.bandwidth_hz, 7e6);
  EXPECT_GT(dsp::power_in_band(rx, cfg.sample_rate_hz(), -3.5e6, 3.5e6), 0.98);
}

TEST(Spectrum, Validation) {
  dsp::Cvec tiny(16);
  EXPECT_THROW(dsp::occupied_bandwidth(tiny, 1e6), std::invalid_argument);
  dsp::Cvec x = dsp::tone(1e6, 1e5, 256);
  EXPECT_THROW(dsp::occupied_bandwidth(x, 1e6, 1.0), std::invalid_argument);
  EXPECT_THROW(dsp::power_in_band(x, 1e6, 2e5, 1e5), std::invalid_argument);
  const dsp::Cvec zeros(256, dsp::Complex{});
  EXPECT_THROW(dsp::occupied_bandwidth(zeros, 1e6), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::phy
