// Mid-frame channel dynamics: the §1 "works in dynamic environments"
// claim exercised at sample level with otam_synthesize_varying.
#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/ask.hpp"
#include "mmx/phy/fsk.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/otam.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

std::vector<OtamChannel> constant_channels(std::size_t n, const OtamChannel& ch) {
  return std::vector<OtamChannel>(n, ch);
}

TEST(Mobility, VaryingMatchesConstantWhenChannelIsStatic) {
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const Bits bits{1, 0, 1, 1, 0};
  const OtamChannel ch{{0.2, 0.0}, {1.0, 0.0}};
  const auto fixed = otam_synthesize(bits, cfg, ch, sw);
  const auto varying = otam_synthesize_varying(bits, cfg, constant_channels(5, ch), sw);
  ASSERT_EQ(fixed.size(), varying.size());
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    EXPECT_NEAR(std::abs(fixed[i] - varying[i]), 0.0, 1e-15);
  }
}

TEST(Mobility, MidFrameBlockageInvertsAskButFskSurvives) {
  // A person steps into the LoS halfway through the frame: the ASK level
  // mapping flips mid-frame (preamble training is now stale), but the
  // FSK mapping is set by the transmitter's VCO and cannot flip.
  Rng rng(1);
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  Bits bits = prefix;
  for (int i = 0; i < 200; ++i) bits.push_back(rng.uniform_int(0, 1));

  const OtamChannel clear{{0.25, 0.0}, {1.0, 0.0}};
  const OtamChannel blocked{{0.25, 0.0}, {0.04, 0.0}};  // Beam 1 crushed
  std::vector<OtamChannel> channels(bits.size(), clear);
  for (std::size_t s = bits.size() / 2; s < bits.size(); ++s) channels[s] = blocked;

  auto rx = otam_synthesize_varying(bits, cfg, channels, sw);
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(22.0), rng);

  // FSK-only readout: error-free despite the mid-frame swap (the tone
  // mapping cannot invert).
  const FskDecision fsk = fsk_demodulate(rx, cfg);
  std::size_t fsk_err = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) fsk_err += (fsk.bits[i] != bits[i]);
  EXPECT_LE(fsk_err, 1u);

  // An ASK-only readout trained on the (pre-blockage) preamble decodes
  // the whole second half inverted.
  const AskDecision ask = ask_demodulate(rx, cfg, prefix);
  std::size_t ask_err = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) ask_err += (ask.bits[i] != bits[i]);
  EXPECT_GT(ask_err, bits.size() / 5);

  // The joint demodulator's reliability weights were learned on the
  // clear-channel preamble, where ASK looked perfect — so within this
  // one frame it can do no better than the ASK branch. This is the
  // documented residual weakness of per-frame training; the FSK-only
  // readout above (or per-frame retraining on the next packet) is the
  // mobility-proof path.
  const JointDecision joint = joint_demodulate(rx, cfg, prefix);
  std::size_t joint_err = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) joint_err += (joint.bits[i] != bits[i]);
  EXPECT_LE(joint_err, ask_err);
}

TEST(Mobility, SlowFadingTrackedByEnvelope) {
  // A node walking away: levels decay smoothly 6 dB across the frame;
  // the contrast (and hence ASK) is preserved because both levels scale
  // together.
  Rng rng(2);
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const Bits prefix{1, 0, 1, 0};
  Bits bits = prefix;
  for (int i = 0; i < 150; ++i) bits.push_back(rng.uniform_int(0, 1));
  std::vector<OtamChannel> channels(bits.size());
  for (std::size_t s = 0; s < bits.size(); ++s) {
    const double fade = db_to_amp(-6.0 * static_cast<double>(s) /
                                  static_cast<double>(bits.size()));
    channels[s] = {{0.2 * fade, 0.0}, {1.0 * fade, 0.0}};
  }
  auto rx = otam_synthesize_varying(bits, cfg, channels, sw);
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(25.0), rng);
  const JointDecision d = joint_demodulate(rx, cfg, prefix);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
  EXPECT_LE(errors, 2u);
}

TEST(Mobility, Validation) {
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const Bits bits{1, 0};
  const std::vector<OtamChannel> wrong_len(3);
  EXPECT_THROW(otam_synthesize_varying(bits, cfg, wrong_len, sw), std::invalid_argument);
  const std::vector<OtamChannel> ok(2);
  EXPECT_THROW(otam_synthesize_varying(bits, cfg, ok, sw, 0.0), std::invalid_argument);
  EXPECT_THROW(otam_synthesize_varying(Bits{2, 0}, cfg, ok, sw), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::phy
