// Determinism regression: the reproduction's headline numbers (BER CDFs,
// link budgets) are only trustworthy if a seeded run is exactly
// repeatable. Two end-to-end PHY runs from the same mmx::Rng seed must
// produce bit-identical waveforms and identical decodes — not merely
// "close": any drift here silently invalidates Fig. 11/12 comparisons
// across machines and commits.
#include <gtest/gtest.h>

#include <cstring>

#include "mmx/channel/beam_channel.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/frame.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/otam.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

/// Byte-exact equality for sample blocks: catches drift EXPECT_DOUBLE_EQ
/// would forgive (signed zeros, differing NaN payloads, last-ulp noise).
bool bit_identical(const dsp::Cvec& a, const dsp::Cvec& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(dsp::Complex)) == 0;
}

struct RunResult {
  dsp::Cvec rx;
  std::optional<Frame> decoded;
  std::size_t sync_offset = 0;
};

/// One complete seeded PHY run: frame -> OTAM waveform through a
/// ray-traced room -> AWGN -> sync -> joint demod -> frame decode.
RunResult run_pipeline(std::uint64_t seed) {
  Rng rng(seed);
  channel::Room room{6.0, 4.0};
  antenna::MmxBeamPair beams{};
  antenna::Dipole ap_antenna{};
  const channel::Pose node{{1.0, 2.0}, 0.0};
  const channel::Pose ap{{5.0, 2.0}, kPi};
  const PhyConfig cfg = test_cfg();

  Frame f;
  f.node_id = 7;
  f.seq = 42;
  f.payload = {1, 2, 3, 4, 5, 6, 7, 8};

  channel::RayTracer rt(room);
  const auto g = channel::compute_beam_gains(rt, node, beams, ap, ap_antenna, kIsmCenterHz);
  const OtamChannel ch{g.h0, g.h1};

  rf::SpdtSwitch sw;
  const Bits bits = encode_frame(f, default_preamble());
  RunResult r;
  r.rx = otam_synthesize(bits, cfg, ch, sw, 1.0);
  const double sig_power_w = dsp::mean_power(r.rx);
  r.rx.resize(r.rx.size() + 2 * cfg.samples_per_symbol, dsp::Complex{});
  dsp::add_awgn(r.rx, sig_power_w / db_to_lin(15.0), rng);

  const auto sync = find_preamble(r.rx, cfg, default_preamble(), 64, 0.5);
  if (!sync) return r;
  r.sync_offset = sync->sample_offset;
  const std::span<const dsp::Complex> aligned(r.rx.data() + sync->sample_offset,
                                              r.rx.size() - sync->sample_offset);
  const JointDecision d = joint_demodulate(aligned, cfg, default_preamble());
  const Bits body(d.bits.begin() + static_cast<long>(default_preamble().size()), d.bits.end());
  r.decoded = decode_frame(body);
  return r;
}

TEST(Determinism, SameSeedEndToEndRunsAreBitIdentical) {
  const RunResult a = run_pipeline(12345);
  const RunResult b = run_pipeline(12345);
  EXPECT_TRUE(bit_identical(a.rx, b.rx)) << "same-seed waveforms diverged";
  EXPECT_EQ(a.sync_offset, b.sync_offset);
  ASSERT_EQ(a.decoded.has_value(), b.decoded.has_value());
  if (a.decoded) {
    EXPECT_EQ(*a.decoded, *b.decoded);
  }
}

TEST(Determinism, DifferentSeedsProduceDifferentNoise) {
  // Guards against an Rng that ignores its seed — that would make the
  // same-seed test pass vacuously.
  const RunResult a = run_pipeline(1);
  const RunResult b = run_pipeline(2);
  EXPECT_FALSE(bit_identical(a.rx, b.rx));
}

TEST(Determinism, AwgnStreamIsSeedExact) {
  Rng r1(99);
  Rng r2(99);
  const dsp::Cvec n1 = dsp::awgn(4096, 1.0, r1);
  const dsp::Cvec n2 = dsp::awgn(4096, 1.0, r2);
  EXPECT_TRUE(bit_identical(n1, n2));
}

TEST(Determinism, ForkedStreamsAreReproducibleAndIndependent) {
  Rng a(7);
  Rng b(7);
  Rng fa = a.fork();
  Rng fb = b.fork();
  const dsp::Cvec na = dsp::awgn(256, 1.0, fa);
  const dsp::Cvec nb = dsp::awgn(256, 1.0, fb);
  EXPECT_TRUE(bit_identical(na, nb)) << "fork() must be a pure function of parent state";
  // The parent stream after forking must also stay in lockstep.
  EXPECT_EQ(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace mmx::phy
