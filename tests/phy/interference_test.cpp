// Interference robustness: the 24 GHz ISM band is shared with automotive
// radar (FMCW chirps) and other mmX nodes (CW tones). These tests pin
// down how much in-channel interference the joint demodulator shrugs off
// and verify the AP's coupled-line filter handles the out-of-band world.
#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/tone.hpp"
#include "mmx/phy/fsk.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/otam.hpp"
#include "mmx/rf/filter.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

struct Harness {
  PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  OtamChannel ch{{0.25, 0.0}, {1.0, 0.0}};

  std::pair<Bits, dsp::Cvec> make_frame(Rng& rng, double snr_db) {
    Bits bits = prefix;
    for (int i = 0; i < 300; ++i) bits.push_back(rng.uniform_int(0, 1));
    auto rx = otam_synthesize(bits, cfg, ch, sw);
    dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(snr_db), rng);
    return {bits, rx};
  }

  std::size_t errors(const dsp::Cvec& rx, const Bits& bits) {
    const JointDecision d = joint_demodulate(rx, cfg, prefix);
    std::size_t e = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) e += (d.bits[i] != bits[i]);
    return e;
  }
};

TEST(Interference, CwToneBetweenFskBinsTolerated) {
  // A CW interferer 15 dB below the signal, parked between the two FSK
  // tones: raises the envelope floor but decodes clean.
  Rng rng(1);
  Harness s;
  auto [bits, rx] = s.make_frame(rng, 25.0);
  const double isr_db = -15.0;  // interferer below signal
  dsp::Cvec cw = dsp::tone(s.cfg.sample_rate_hz(), 0.5e6, rx.size());
  const double amp = std::sqrt(dsp::mean_power(rx) * db_to_lin(isr_db));
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] += amp * cw[i];
  EXPECT_LE(s.errors(rx, bits), 2u);
}

TEST(Interference, CwOnFskBinDegradesGracefully) {
  // The nastiest CW: sitting exactly on the bit-1 tone. At -18 dB ISR it
  // must still decode; at 0 dB it may not (documented limit).
  Rng rng(2);
  Harness s;
  auto [bits, rx] = s.make_frame(rng, 25.0);
  dsp::Cvec cw = dsp::tone(s.cfg.sample_rate_hz(), s.cfg.fsk_freq1_hz, rx.size());
  const double amp = std::sqrt(dsp::mean_power(rx) * db_to_lin(-18.0));
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] += amp * cw[i];
  EXPECT_LE(s.errors(rx, bits), 3u);
}

TEST(Interference, RadarChirpSweepingThroughChannel) {
  // An FMCW radar chirp sweeping the whole channel during the frame:
  // momentary hits on each tone, averaged out by the symbol integrators.
  Rng rng(3);
  Harness s;
  auto [bits, rx] = s.make_frame(rng, 25.0);
  dsp::Cvec chirp = dsp::chirp(s.cfg.sample_rate_hz(), -6e6, 6e6, rx.size());
  const double amp = std::sqrt(dsp::mean_power(rx) * db_to_lin(-10.0));
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] += amp * chirp[i];
  EXPECT_LE(s.errors(rx, bits), 4u);
}

TEST(Interference, JointReweightingDefeatsToneJammer) {
  // A CW jammer 10 dB OVER the signal, parked exactly on the bit-1 tone:
  // FSK alone is hopeless (every symbol looks like a 1), but the joint
  // demodulator notices the FSK branch failing its preamble and shifts
  // its weight to the (still-separable) envelope — another scenario
  // where §6.3's dual-branch design earns its keep.
  Rng rng(4);
  Harness s;
  auto [bits, rx] = s.make_frame(rng, 25.0);
  dsp::Cvec cw = dsp::tone(s.cfg.sample_rate_hz(), s.cfg.fsk_freq1_hz, rx.size());
  const double amp = std::sqrt(dsp::mean_power(rx) * db_to_lin(10.0));
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] += amp * cw[i];

  // FSK-only readout collapses toward "all ones".
  const FskDecision fsk = fsk_demodulate(rx, s.cfg);
  std::size_t fsk_err = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) fsk_err += (fsk.bits[i] != bits[i]);
  EXPECT_GT(fsk_err, bits.size() / 4);

  // Joint readout recovers via the ASK branch.
  EXPECT_LE(s.errors(rx, bits), 3u);
}

TEST(Interference, CoupledLineFilterKillsOutOfBandRadar) {
  // 77 GHz automotive radar and 5.8 GHz WiFi at the AP's antenna: the
  // PCB filter's rejection makes them irrelevant before the LNA even
  // compresses.
  rf::CoupledLineFilter filter;
  EXPECT_LT(filter.gain_db(77.0e9), -100.0);
  EXPECT_LT(filter.gain_db(5.8e9), -80.0);
  // In-band 24.125 GHz passes with just the insertion loss.
  EXPECT_GT(filter.gain_db(24.125e9), -6.0);
}

class IsrSweep : public ::testing::TestWithParam<double> {};

TEST_P(IsrSweep, MidChannelCwToleranceCurve) {
  Rng rng(42);
  Harness s;
  auto [bits, rx] = s.make_frame(rng, 25.0);
  dsp::Cvec cw = dsp::tone(s.cfg.sample_rate_hz(), 0.7e6, rx.size());
  const double amp = std::sqrt(dsp::mean_power(rx) * db_to_lin(GetParam()));
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] += amp * cw[i];
  const std::size_t e = s.errors(rx, bits);
  if (GetParam() <= -12.0) {
    EXPECT_LE(e, 3u) << "ISR " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, IsrSweep, ::testing::Values(-24.0, -18.0, -12.0, -6.0));

}  // namespace
}  // namespace mmx::phy
