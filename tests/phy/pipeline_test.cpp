// FramePipeline: the reusable frame context must (a) reproduce the
// free-function path exactly, (b) run allocation-free (workspace-side)
// after warm-up, and (c) match the retained reference demodulators at
// the decision level.
#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/pipeline.hpp"
#include "reference_kernels.hpp"

namespace mmx::phy {
namespace {

PhyConfig fig11_config() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

Bits random_frame(Rng& rng, std::size_t n_bits) {
  Bits bits = {1, 0, 1, 0};  // training prefix with both values
  for (std::size_t i = 0; i < n_bits; ++i) bits.push_back(rng.chance(0.5) ? 1 : 0);
  return bits;
}

TEST(FramePipeline, MatchesFreeFunctionPathExactly) {
  const PhyConfig cfg = fig11_config();
  const OtamChannel ch{{1e-4, 0.0}, {1e-3, 0.0}};
  const rf::SpdtSwitch spdt;
  const Bits prefix = {1, 0, 1, 0};
  Rng bits_rng(100);
  const Bits bits = random_frame(bits_rng, 200);

  FramePipeline pipe(cfg);
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    Rng rng_a = Rng::stream(77, trial);
    Rng rng_b = Rng::stream(77, trial);

    pipe.synthesize_otam(bits, ch, spdt);
    pipe.add_noise_snr(20.0, rng_a);
    const JointDecision& fast = pipe.demodulate_joint(prefix);

    dsp::Cvec rx = otam_synthesize(bits, cfg, ch, spdt);
    dsp::add_awgn_snr(rx, 20.0, rng_b);
    const JointDecision slow = joint_demodulate(rx, cfg, prefix);

    EXPECT_EQ(fast.bits, slow.bits);
    EXPECT_EQ(fast.mode, slow.mode);
    EXPECT_DOUBLE_EQ(fast.ask_separation, slow.ask_separation);
    EXPECT_DOUBLE_EQ(fast.fsk_margin, slow.fsk_margin);
    EXPECT_EQ(fast.ask_inverted, slow.ask_inverted);

    const AskDecision& ask_fast = pipe.demodulate_ask(prefix);
    const AskDecision ask_slow = ask_demodulate(rx, cfg, prefix);
    EXPECT_EQ(ask_fast.bits, ask_slow.bits);
    EXPECT_DOUBLE_EQ(ask_fast.threshold, ask_slow.threshold);

    const FskDecision& fsk_fast = pipe.demodulate_fsk();
    const FskDecision fsk_slow = fsk_demodulate(rx, cfg);
    EXPECT_EQ(fsk_fast.bits, fsk_slow.bits);
    EXPECT_DOUBLE_EQ(fsk_fast.margin, fsk_slow.margin);
  }
}

TEST(FramePipeline, AgreesWithReferenceDemodulators) {
  const PhyConfig cfg = fig11_config();
  const OtamChannel ch{{2e-4, 1e-4}, {1e-3, -2e-4}};
  const rf::SpdtSwitch spdt;
  const Bits prefix = {1, 0, 1, 0};
  Rng bits_rng(5);
  const Bits bits = random_frame(bits_rng, 500);

  FramePipeline pipe(cfg);
  Rng noise_a = Rng::stream(13, 0);
  Rng noise_b = Rng::stream(13, 0);

  pipe.synthesize_otam(bits, ch, spdt);
  pipe.add_noise_snr(18.0, noise_a);
  const JointDecision& fast = pipe.demodulate_joint(prefix);

  // The reference path re-synthesizes with the per-sample-trig NCO, so
  // samples differ at the 1e-13 level; at 18 dB SNR the hard decisions
  // must nonetheless agree bit for bit.
  dsp::Cvec rx = refdsp::otam_synthesize(bits, cfg, ch, spdt);
  dsp::add_awgn_snr(rx, 18.0, noise_b);
  const JointDecision ref = refdsp::joint_demodulate(rx, cfg, prefix);

  EXPECT_EQ(fast.bits, ref.bits);
  EXPECT_EQ(fast.mode, ref.mode);
  EXPECT_NEAR(fast.ask_separation, ref.ask_separation, 1e-6 * ref.ask_separation + 1e-9);
  EXPECT_NEAR(fast.fsk_margin, ref.fsk_margin, 1e-6);
}

TEST(FramePipeline, ZeroWorkspaceAllocationsAfterWarmup) {
  const PhyConfig cfg = fig11_config();
  const OtamChannel ch{{1e-4, 0.0}, {1e-3, 0.0}};
  const rf::SpdtSwitch spdt;
  const Bits prefix = {1, 0, 1, 0};
  Rng bits_rng(3);
  const Bits bits = random_frame(bits_rng, 1000);

  FramePipeline pipe(cfg);
  // Warm-up trial sizes every pooled buffer.
  Rng rng0 = Rng::stream(1, 0);
  pipe.synthesize_otam(bits, ch, spdt);
  pipe.add_noise_snr(20.0, rng0);
  (void)pipe.demodulate_joint(prefix);
  (void)pipe.demodulate_ask(prefix);
  (void)pipe.demodulate_fsk();

  const std::size_t warm = pipe.workspace().alloc_events();
  for (std::uint64_t trial = 1; trial <= 50; ++trial) {
    Rng rng = Rng::stream(1, trial);
    pipe.synthesize_otam(bits, ch, spdt);
    pipe.add_noise_snr(20.0, rng);
    (void)pipe.demodulate_joint(prefix);
    (void)pipe.demodulate_ask(prefix);
    (void)pipe.demodulate_fsk();
  }
  EXPECT_EQ(pipe.workspace().alloc_events(), warm);
  EXPECT_EQ(pipe.workspace().leased(), 0u);
}

TEST(FramePipeline, ThreadPipelineKeyedByConfig) {
  const PhyConfig a = fig11_config();
  PhyConfig b = fig11_config();
  b.samples_per_symbol = 32;
  FramePipeline& pa1 = thread_pipeline(a);
  FramePipeline& pb = thread_pipeline(b);
  FramePipeline& pa2 = thread_pipeline(a);
  EXPECT_EQ(&pa1, &pa2);
  EXPECT_NE(&pa1, &pb);
  EXPECT_EQ(pb.config().samples_per_symbol, 32u);
}

TEST(FramePipeline, LoadCopiesExternalCapture) {
  const PhyConfig cfg = fig11_config();
  FramePipeline pipe(cfg);
  Rng rng(8);
  dsp::Cvec capture = fsk_modulate({1, 0, 1, 1, 0, 0, 1, 0}, cfg);
  dsp::add_awgn_snr(capture, 15.0, rng);
  pipe.load(capture);
  const FskDecision& fast = pipe.demodulate_fsk();
  const FskDecision slow = fsk_demodulate(capture, cfg);
  EXPECT_EQ(fast.bits, slow.bits);
  EXPECT_DOUBLE_EQ(fast.margin, slow.margin);
}

}  // namespace
}  // namespace mmx::phy
