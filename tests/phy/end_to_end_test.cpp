// PHY <- channel integration: frames travel from a node in a ray-traced
// room to the AP through real beam patterns, OTAM, sync, and CRC.
#include <gtest/gtest.h>

#include "mmx/channel/beam_channel.hpp"
#include "mmx/channel/blockage.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/frame.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/otam.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::phy {
namespace {

struct TestLink {
  channel::Room room{6.0, 4.0};
  antenna::MmxBeamPair beams{};
  antenna::Dipole ap_antenna{};
  channel::Pose node{{1.0, 2.0}, 0.0};
  channel::Pose ap{{5.0, 2.0}, kPi};
  PhyConfig cfg;

  TestLink() {
    cfg.symbol_rate_hz = 1e6;
    cfg.samples_per_symbol = 16;
    cfg.fsk_freq0_hz = -2e6;
    cfg.fsk_freq1_hz = 2e6;
  }

  OtamChannel gains() const {
    channel::RayTracer rt(room);
    const auto g = channel::compute_beam_gains(rt, node, beams, ap, ap_antenna, 24.125e9);
    return {g.h0, g.h1};
  }
};

std::optional<Frame> send_and_receive(const TestLink& link, const Frame& frame, Rng& rng,
                                      double snr_db) {
  rf::SpdtSwitch sw;
  const Bits bits = encode_frame(frame, default_preamble());
  const OtamChannel ch = link.gains();
  // Normalize TX amplitude so the received SNR is controlled exactly.
  auto rx = otam_synthesize(bits, link.cfg, ch, sw, 1.0);
  const double sig_power = dsp::mean_power(rx);
  // Real captures run past the frame end; pad a couple of symbols of dead
  // air so a late sync estimate cannot truncate the last symbol.
  rx.resize(rx.size() + 2 * link.cfg.samples_per_symbol, dsp::Complex{});
  dsp::add_awgn(rx, sig_power / db_to_lin(snr_db), rng);

  const auto sync = find_preamble(rx, link.cfg, default_preamble(), 64, 0.5);
  if (!sync) return std::nullopt;
  const std::span<const dsp::Complex> aligned(rx.data() + sync->sample_offset,
                                              rx.size() - sync->sample_offset);
  const JointDecision d = joint_demodulate(aligned, link.cfg, default_preamble());
  const Bits body(d.bits.begin() + static_cast<long>(default_preamble().size()), d.bits.end());
  return decode_frame(body);
}

TEST(EndToEnd, FrameThroughClearRoom) {
  Rng rng(1);
  TestLink link;
  Frame f;
  f.node_id = 3;
  f.seq = 77;
  f.payload = {10, 20, 30, 40, 50};
  const auto rx = send_and_receive(link, f, rng, 20.0);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, f);
}

TEST(EndToEnd, FrameThroughBlockedLos) {
  // The headline OTAM scenario: a person parked on the LoS for the whole
  // experiment; bits invert but the frame still decodes.
  Rng rng(2);
  TestLink link;
  channel::park_blocker_on_los(link.room, link.node.position, link.ap.position);
  Frame f;
  f.node_id = 9;
  f.payload.assign(32, 0x5A);
  const auto rx = send_and_receive(link, f, rng, 20.0);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, f);
}

TEST(EndToEnd, RandomOrientationsDecode) {
  // §9.2: orientations drawn in [-60, 60] degrees; OTAM keeps the link
  // alive across the node's 120-degree field of view.
  Rng rng(3);
  TestLink link;
  Frame f;
  f.payload = {1, 2, 3};
  for (double deg : {-60.0, -45.0, -15.0, 0.0, 25.0, 60.0}) {
    link.node.orientation_rad = deg_to_rad(deg);
    const auto rx = send_and_receive(link, f, rng, 22.0);
    ASSERT_TRUE(rx.has_value()) << "orientation " << deg;
    EXPECT_EQ(*rx, f) << "orientation " << deg;
  }
}

TEST(EndToEnd, LowSnrDropsFrameGracefully) {
  Rng rng(4);
  TestLink link;
  Frame f;
  f.payload.assign(64, 0xFF);
  // At -10 dB the CRC (or sync) must reject, not mis-deliver.
  const auto rx = send_and_receive(link, f, rng, -10.0);
  if (rx.has_value()) {
    EXPECT_EQ(*rx, f);  // astronomically unlikely, but if it decodes it must be right
  }
  SUCCEED();
}

TEST(EndToEnd, CorruptedFrameNeverMisdelivers) {
  // 100 noisy trials at marginal SNR: every accepted frame must be exact
  // (CRC-16 guards the payload).
  Rng rng(5);
  TestLink link;
  Frame f;
  f.node_id = 12;
  f.payload = {0xAA, 0xBB, 0xCC};
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    const auto rx = send_and_receive(link, f, rng, 8.0);
    if (rx.has_value()) {
      EXPECT_EQ(*rx, f);
      ++delivered;
    }
  }
  // At 8 dB most frames should still make it (contrast is strong here).
  EXPECT_GT(delivered, 0);
}

}  // namespace
}  // namespace mmx::phy
