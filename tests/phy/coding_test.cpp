#include "mmx/phy/coding.hpp"

#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"

namespace mmx::phy {
namespace {

Bits random_bits(std::size_t n, Rng& rng) {
  Bits b(n);
  for (int& v : b) v = rng.uniform_int(0, 1);
  return b;
}

class ProfileRoundTrip : public ::testing::TestWithParam<CodingProfile> {};

TEST_P(ProfileRoundTrip, CleanRoundTrip) {
  Rng rng(1);
  for (std::size_t n : {0u, 1u, 7u, 64u, 333u, 1000u}) {
    const Bits body = random_bits(n, rng);
    const Bits coded = encode_body(body, GetParam());
    EXPECT_EQ(coded.size(), coded_length_bits(n, GetParam())) << n;
    EXPECT_EQ(decode_body(coded, GetParam()), body) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileRoundTrip,
                         ::testing::Values(CodingProfile::kNone, CodingProfile::kHamming,
                                           CodingProfile::kConvolutional));

TEST(Coding, RateAccounting) {
  EXPECT_DOUBLE_EQ(coding_rate(CodingProfile::kNone), 1.0);
  EXPECT_NEAR(coding_rate(CodingProfile::kHamming), 4.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(coding_rate(CodingProfile::kConvolutional), 0.5);
  // coded_length tracks the rate (plus the 16-bit prefix + padding).
  const std::size_t n = 1000;
  EXPECT_NEAR(static_cast<double>(coded_length_bits(n, CodingProfile::kHamming)),
              (n + 16) / (4.0 / 7.0), 14.0);
}

TEST(Coding, HammingCorrectsScatteredChannelErrors) {
  Rng rng(2);
  const Bits body = random_bits(400, rng);
  Bits coded = encode_body(body, CodingProfile::kHamming);
  // One error every ~40 channel bits: interleaving guarantees <= 1 per
  // codeword for this density.
  for (std::size_t i = 3; i < coded.size(); i += 41) coded[i] ^= 1;
  EXPECT_EQ(decode_body(coded, CodingProfile::kHamming), body);
}

TEST(Coding, HammingSurvivesBurst) {
  Rng rng(3);
  const Bits body = random_bits(400, rng);
  Bits coded = encode_body(body, CodingProfile::kHamming);
  // A contiguous burst shorter than the number of codewords: the
  // interleaver spreads it to <= 1 error per codeword.
  const std::size_t n_codewords = coded.size() / 7;
  const std::size_t burst = n_codewords / 2;
  for (std::size_t i = 10; i < 10 + burst; ++i) coded[i] ^= 1;
  EXPECT_EQ(decode_body(coded, CodingProfile::kHamming), body);
}

TEST(Coding, ConvolutionalCorrectsRandomErrors) {
  Rng rng(4);
  const Bits body = random_bits(600, rng);
  Bits coded = encode_body(body, CodingProfile::kConvolutional);
  for (int& b : coded)
    if (rng.chance(0.01)) b ^= 1;
  const Bits decoded = decode_body(coded, CodingProfile::kConvolutional);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < body.size(); ++i) errors += (decoded[i] != body[i]);
  EXPECT_LE(errors, 3u);
}

TEST(Coding, WhiteningInsideTheProfile) {
  // A constant body must emerge from the encoder with balanced runs.
  const Bits zeros(512, 0);
  const Bits coded = encode_body(zeros, CodingProfile::kConvolutional);
  std::size_t ones = 0;
  for (int b : coded) ones += static_cast<std::size_t>(b);
  EXPECT_GT(ones, coded.size() / 4);
  EXPECT_LT(ones, 3 * coded.size() / 4);
}

TEST(Coding, Validation) {
  const Bits too_long(70000, 0);
  EXPECT_THROW(encode_body(too_long, CodingProfile::kHamming), std::invalid_argument);
  EXPECT_THROW(decode_body(Bits{1, 0, 1}, CodingProfile::kHamming), std::invalid_argument);
  // A body whose decoded length prefix exceeds the available bits.
  Bits bogus = encode_body(Bits(40, 1), CodingProfile::kConvolutional);
  bogus.resize(bogus.size() - 20);
  bogus.resize(bogus.size() / 2 * 2);
  EXPECT_THROW(decode_body(bogus, CodingProfile::kConvolutional), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::phy
