#include "mmx/phy/fsk.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/dsp/noise.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

TEST(Fsk, RoundTripClean) {
  const PhyConfig cfg = test_cfg();
  const Bits bits{0, 1, 1, 0, 1, 0, 0, 1};
  const auto tx = fsk_modulate(bits, cfg);
  const FskDecision d = fsk_demodulate(tx, cfg);
  EXPECT_EQ(d.bits, bits);
  EXPECT_GT(d.margin, 0.9);
}

TEST(Fsk, ConstantEnvelope) {
  // FSK's whole point in mmX: information is carried without amplitude,
  // so an amplitude-ambiguous channel can't erase it.
  const PhyConfig cfg = test_cfg();
  const auto tx = fsk_modulate({0, 1, 0, 1, 1, 0}, cfg);
  for (const auto& s : tx) EXPECT_NEAR(std::abs(s), 1.0, 1e-9);
}

TEST(Fsk, SurvivesHeavyAmplitudeScaling) {
  // Scale the whole capture down 40 dB (long range): margins unaffected.
  const PhyConfig cfg = test_cfg();
  const Bits bits{1, 0, 0, 1, 1, 1, 0, 0};
  auto tx = fsk_modulate(bits, cfg);
  for (auto& s : tx) s *= 0.01;
  const FskDecision d = fsk_demodulate(tx, cfg);
  EXPECT_EQ(d.bits, bits);
  EXPECT_GT(d.margin, 0.9);
}

TEST(Fsk, RoundTripUnderNoise) {
  Rng rng(7);
  const PhyConfig cfg = test_cfg();
  Bits bits(600);
  for (int& b : bits) b = rng.uniform_int(0, 1);
  auto tx = fsk_modulate(bits, cfg);
  dsp::add_awgn_snr(tx, 12.0, rng);
  const FskDecision d = fsk_demodulate(tx, cfg);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
  EXPECT_LT(errors, 6u);
}

TEST(Fsk, MarginDegradesWithNoise) {
  Rng rng(8);
  const PhyConfig cfg = test_cfg();
  Bits bits(200);
  for (int& b : bits) b = rng.uniform_int(0, 1);
  auto clean = fsk_modulate(bits, cfg);
  auto noisy = clean;
  dsp::add_awgn_snr(noisy, 0.0, rng);
  EXPECT_GT(fsk_demodulate(clean, cfg).margin, fsk_demodulate(noisy, cfg).margin);
}

TEST(Fsk, ValidatesInput) {
  const PhyConfig cfg = test_cfg();
  EXPECT_THROW(fsk_modulate({0, 2}, cfg), std::invalid_argument);
  dsp::Cvec tiny(3);
  EXPECT_THROW(fsk_demodulate(tiny, cfg), std::invalid_argument);
  PhyConfig bad = cfg;
  bad.fsk_freq0_hz = bad.fsk_freq1_hz;
  EXPECT_THROW(fsk_modulate({1}, bad), std::invalid_argument);
  PhyConfig nyq = cfg;
  nyq.fsk_freq1_hz = 20e6;  // beyond fs/2 = 8 MHz
  EXPECT_THROW(fsk_modulate({1}, nyq), std::invalid_argument);
}

class FskSpacingSweep : public ::testing::TestWithParam<double> {};

TEST_P(FskSpacingSweep, DecodesAcrossToneSpacings) {
  PhyConfig cfg = test_cfg();
  cfg.fsk_freq0_hz = -GetParam() / 2.0;
  cfg.fsk_freq1_hz = +GetParam() / 2.0;
  const Bits bits{1, 0, 1, 1, 0, 0, 1, 0};
  const auto tx = fsk_modulate(bits, cfg);
  EXPECT_EQ(fsk_demodulate(tx, cfg).bits, bits);
}

// Spacing >= ~2x symbol rate keeps the guarded-window Goertzel bins
// orthogonal.
INSTANTIATE_TEST_SUITE_P(Spacings, FskSpacingSweep, ::testing::Values(2e6, 4e6, 8e6, 12e6));

}  // namespace
}  // namespace mmx::phy
