#include "mmx/phy/fec.hpp"

#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"

namespace mmx::phy {
namespace {

Bits random_bits(std::size_t n, Rng& rng) {
  Bits b(n);
  for (int& v : b) v = rng.uniform_int(0, 1);
  return b;
}

TEST(Hamming, RoundTripClean) {
  Rng rng(1);
  const Bits data = random_bits(400, rng);
  EXPECT_EQ(hamming74_decode(hamming74_encode(data)), data);
}

TEST(Hamming, CorrectsAnySingleBitErrorPerBlock) {
  Rng rng(2);
  const Bits data = random_bits(4, rng);
  const Bits coded = hamming74_encode(data);
  for (std::size_t i = 0; i < 7; ++i) {
    Bits corrupted = coded;
    corrupted[i] ^= 1;
    EXPECT_EQ(hamming74_decode(corrupted), data) << "flip at " << i;
  }
}

TEST(Hamming, RateIs47) {
  const Bits data(40, 1);
  EXPECT_EQ(hamming74_encode(data).size(), 70u);
}

TEST(Hamming, TwoErrorsMayMisdecodeButNeverCrash) {
  Rng rng(3);
  const Bits data = random_bits(4, rng);
  Bits coded = hamming74_encode(data);
  coded[0] ^= 1;
  coded[3] ^= 1;
  EXPECT_NO_THROW({ auto r = hamming74_decode(coded); (void)r; });
}

TEST(Hamming, ValidatesInput) {
  EXPECT_THROW(hamming74_encode(Bits{1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(hamming74_decode(Bits{1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(hamming74_encode(Bits{1, 0, 1, 2}), std::invalid_argument);
}

TEST(Repetition, RoundTripAndMajorityVote) {
  Rng rng(4);
  const Bits data = random_bits(100, rng);
  Bits coded = repetition_encode(data, 3);
  EXPECT_EQ(coded.size(), 300u);
  // One flip per triplet: still decodes.
  for (std::size_t i = 0; i < coded.size(); i += 3) coded[i] ^= 1;
  EXPECT_EQ(repetition_decode(coded, 3), data);
}

TEST(Repetition, EvenFactorThrows) {
  EXPECT_THROW(repetition_encode(Bits{1}, 2), std::invalid_argument);
  EXPECT_THROW(repetition_decode(Bits{1, 1}, 2), std::invalid_argument);
}

TEST(Interleaver, RoundTrip) {
  Rng rng(5);
  const Bits data = random_bits(6 * 8, rng);
  EXPECT_EQ(deinterleave(interleave(data, 6, 8), 6, 8), data);
}

TEST(Interleaver, SpreadsBursts) {
  // A burst of 4 consecutive errors in the interleaved stream must land
  // in 4 different rows after deinterleaving (rows >= burst length).
  const std::size_t rows = 8;
  const std::size_t cols = 8;
  Bits data(rows * cols, 0);
  Bits inter = interleave(data, rows, cols);
  for (std::size_t i = 16; i < 20; ++i) inter[i] ^= 1;  // burst
  const Bits deinter = deinterleave(inter, rows, cols);
  // Count errors per row of the original layout.
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t row_errors = 0;
    for (std::size_t c = 0; c < cols; ++c) row_errors += static_cast<std::size_t>(deinter[r * cols + c]);
    EXPECT_LE(row_errors, 1u);
  }
}

TEST(Interleaver, SizeMismatchThrows) {
  EXPECT_THROW(interleave(Bits(10, 0), 3, 4), std::invalid_argument);
  EXPECT_THROW(interleave(Bits(12, 0), 0, 12), std::invalid_argument);
}

TEST(Conv, RoundTripClean) {
  Rng rng(6);
  const Bits data = random_bits(500, rng);
  EXPECT_EQ(conv_decode(conv_encode(data)), data);
}

TEST(Conv, RateAndTail) {
  const Bits data(10, 1);
  EXPECT_EQ(conv_encode(data).size(), 2 * (10 + 2));
}

TEST(Conv, CorrectsScatteredErrors) {
  Rng rng(7);
  const Bits data = random_bits(200, rng);
  Bits coded = conv_encode(data);
  // Flip ~2% of bits, spaced apart (beyond the code's memory).
  for (std::size_t i = 5; i < coded.size(); i += 50) coded[i] ^= 1;
  EXPECT_EQ(conv_decode(coded), data);
}

TEST(Conv, BeatsUncodedAtModerateBer) {
  Rng rng(8);
  const Bits data = random_bits(2000, rng);
  Bits coded = conv_encode(data);
  // 1% random channel errors.
  for (int& b : coded)
    if (rng.chance(0.01)) b ^= 1;
  const Bits decoded = conv_decode(coded);
  std::size_t residual = 0;
  for (std::size_t i = 0; i < data.size(); ++i) residual += (decoded[i] != data[i]);
  // Uncoded would expect ~20 errors in 2000 bits; Viterbi should do much
  // better.
  EXPECT_LT(residual, 8u);
}

TEST(ConvSoft, MatchesHardOnCleanInput) {
  Rng rng(10);
  const Bits data = random_bits(300, rng);
  const Bits coded = conv_encode(data);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) llrs[i] = coded[i] ? 4.0 : -4.0;
  EXPECT_EQ(conv_decode_soft(llrs), data);
}

TEST(ConvSoft, BeatsHardUnderGaussianChannel) {
  // BPSK-style channel: llr = 2*y/sigma^2. Count residual errors for
  // hard vs soft decoding over many noisy blocks at a marginal SNR.
  Rng rng(11);
  const double sigma = 0.9;
  std::size_t hard_err = 0;
  std::size_t soft_err = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Bits data = random_bits(200, rng);
    const Bits coded = conv_encode(data);
    std::vector<double> llrs(coded.size());
    Bits hard(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double y = (coded[i] ? 1.0 : -1.0) + rng.gaussian(sigma);
      llrs[i] = 2.0 * y / (sigma * sigma);
      hard[i] = y > 0.0 ? 1 : 0;
    }
    const Bits hd = conv_decode(hard);
    const Bits sd = conv_decode_soft(llrs);
    for (std::size_t i = 0; i < data.size(); ++i) {
      hard_err += (hd[i] != data[i]);
      soft_err += (sd[i] != data[i]);
    }
  }
  EXPECT_LT(soft_err, hard_err);
}

TEST(ConvSoft, ErasuresHandledGracefully) {
  // Zero LLR = "no information": a few erasures per block still decode.
  Rng rng(12);
  const Bits data = random_bits(100, rng);
  const Bits coded = conv_encode(data);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) llrs[i] = coded[i] ? 3.0 : -3.0;
  for (std::size_t i = 10; i < llrs.size(); i += 40) llrs[i] = 0.0;
  EXPECT_EQ(conv_decode_soft(llrs), data);
}

TEST(ConvSoft, ValidatesInput) {
  EXPECT_THROW(conv_decode_soft(std::vector<double>{1.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(conv_decode_soft(std::vector<double>(9, 1.0)), std::invalid_argument);
}

TEST(Conv, ValidatesInput) {
  EXPECT_THROW(conv_decode(Bits{1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(conv_decode(Bits{1, 0}), std::invalid_argument);
  EXPECT_THROW(conv_encode(Bits{2}), std::invalid_argument);
}

class HammingBurstSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HammingBurstSweep, InterleavedHammingSurvivesBursts) {
  // The system combination a deployment would use: Hamming(7,4) +
  // interleaving turns a burst (blockage transient) into correctable
  // single errors, for bursts up to the interleaver depth.
  Rng rng(9);
  const std::size_t burst = GetParam();
  const std::size_t rows = 14;  // interleaver depth >= max burst
  const std::size_t cols = 7;
  const Bits data = random_bits(rows * cols / 7 * 4, rng);
  const Bits coded = hamming74_encode(data);
  ASSERT_EQ(coded.size(), rows * cols);
  Bits tx = interleave(coded, rows, cols);
  const std::size_t start = 20;
  for (std::size_t i = start; i < start + burst; ++i) tx[i] ^= 1;
  const Bits rx = deinterleave(tx, rows, cols);
  EXPECT_EQ(hamming74_decode(rx), data) << "burst " << burst;
}

INSTANTIATE_TEST_SUITE_P(Bursts, HammingBurstSweep, ::testing::Values(1, 3, 7, 10, 14));

}  // namespace
}  // namespace mmx::phy
