#include "mmx/phy/ask.hpp"

#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/dsp/noise.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

Bits random_bits(std::size_t n, Rng& rng) {
  Bits b(n);
  for (int& v : b) v = rng.uniform_int(0, 1);
  return b;
}

TEST(Ask, RoundTripClean) {
  const PhyConfig cfg = test_cfg();
  const Bits bits{1, 0, 1, 1, 0, 0, 1, 0, 1, 0};
  const auto tx = ask_modulate(bits, cfg);
  EXPECT_EQ(tx.size(), bits.size() * cfg.samples_per_symbol);
  const AskDecision d = ask_demodulate(tx, cfg);
  EXPECT_EQ(d.bits, bits);
  EXPECT_FALSE(d.inverted);
}

TEST(Ask, RoundTripUnderNoise) {
  Rng rng(1);
  const PhyConfig cfg = test_cfg();
  Bits bits = random_bits(500, rng);
  bits[0] = 1;
  bits[1] = 0;  // ensure both classes early
  auto tx = ask_modulate(bits, cfg);
  dsp::add_awgn_snr(tx, 15.0, rng);
  const AskDecision d = ask_demodulate(tx, cfg);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
  EXPECT_LT(errors, 5u);
  EXPECT_GT(d.separation, 1.0);
}

TEST(Ask, PrefixLearnsThresholdAndPolarity) {
  const PhyConfig cfg = test_cfg();
  const Bits prefix{1, 0, 1, 0};
  Bits bits = prefix;
  const Bits data{1, 1, 0, 1, 0, 0};
  bits.insert(bits.end(), data.begin(), data.end());
  auto tx = ask_modulate(bits, cfg);
  // Simulate the blocked-LoS inversion: flip which amplitude means "1" by
  // scaling: swap levels via amplitude inversion trick — regenerate with
  // inverted bits but pass the true bits as prefix.
  Bits flipped(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) flipped[i] = bits[i] ^ 1;
  auto tx_inv = ask_modulate(flipped, cfg);
  const AskDecision d = ask_demodulate(tx_inv, cfg, prefix);
  EXPECT_TRUE(d.inverted);
  EXPECT_EQ(d.bits, bits);  // polarity resolved back to the true bits
}

TEST(Ask, SeparationDropsWithNoise) {
  Rng rng(2);
  const PhyConfig cfg = test_cfg();
  const Bits bits = random_bits(200, rng);
  auto clean = ask_modulate(bits, cfg);
  auto noisy = clean;
  dsp::add_awgn_snr(noisy, 5.0, rng);
  const double sep_clean = ask_demodulate(clean, cfg).separation;
  const double sep_noisy = ask_demodulate(noisy, cfg).separation;
  EXPECT_GT(sep_clean, sep_noisy * 3.0);
}

TEST(Ask, ModulateValidatesInput) {
  const PhyConfig cfg = test_cfg();
  EXPECT_THROW(ask_modulate({0, 2}, cfg), std::invalid_argument);
  EXPECT_THROW(ask_modulate({1}, cfg, AskLevels{0.5, 0.5}), std::invalid_argument);
  PhyConfig bad = cfg;
  bad.samples_per_symbol = 2;
  EXPECT_THROW(ask_modulate({1}, bad), std::invalid_argument);
}

TEST(Ask, DemodulateValidatesInput) {
  const PhyConfig cfg = test_cfg();
  dsp::Cvec tiny(cfg.samples_per_symbol / 2);
  EXPECT_THROW(ask_demodulate(tiny, cfg), std::invalid_argument);
  const auto tx = ask_modulate({1, 0}, cfg);
  EXPECT_THROW(ask_demodulate(tx, cfg, Bits{1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(ask_demodulate(tx, cfg, Bits{1, 1}), std::invalid_argument);  // one class only
}

class AskSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(AskSnrSweep, ErrorRateDecreasesWithSnr) {
  Rng rng(42);
  const PhyConfig cfg = test_cfg();
  const Bits bits = random_bits(1000, rng);
  auto tx = ask_modulate(bits, cfg);
  dsp::add_awgn_snr(tx, GetParam(), rng);
  const AskDecision d = ask_demodulate(tx, cfg);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
  // Above 12 dB essentially error-free; at 0 dB plenty of errors.
  if (GetParam() >= 12.0) {
    EXPECT_LT(errors, 10u);
  }
  if (GetParam() <= 0.0) {
    EXPECT_GT(errors, 10u);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, AskSnrSweep, ::testing::Values(-5.0, 0.0, 12.0, 20.0, 30.0));

}  // namespace
}  // namespace mmx::phy
