#include "mmx/phy/otam.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/envelope.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/joint.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

// A "clear LoS" channel: Beam 1 strong, Beam 0 12 dB weaker (NLoS).
OtamChannel clear_los() { return {{0.25, 0.0}, {1.0, 0.0}}; }
// Blocked LoS: Beam 1 crushed, Beam 0 unchanged — the inversion case.
OtamChannel blocked_los() { return {{0.25, 0.0}, {0.04, 0.0}}; }

TEST(Otam, AirSignalAmplitudeFollowsChannel) {
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const Bits bits{1, 0, 1};
  const auto rx = otam_synthesize(bits, cfg, clear_los(), sw);
  const auto env = dsp::symbol_envelopes(rx, cfg.samples_per_symbol, cfg.guard_frac);
  ASSERT_EQ(env.size(), 3u);
  EXPECT_GT(env[0], env[1] * 3.0);  // bit 1 on strong beam
  EXPECT_NEAR(env[0], env[2], 1e-9);
}

TEST(Otam, LevelsMatchSynthesizedEnvelope) {
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const OtamChannel ch = clear_los();
  const OtamLevels lv = otam_levels(ch, sw);
  const auto rx = otam_synthesize({1, 0}, cfg, ch, sw);
  const auto env = dsp::symbol_envelopes(rx, cfg.samples_per_symbol, cfg.guard_frac);
  EXPECT_NEAR(env[0], lv.level1, 1e-9);
  EXPECT_NEAR(env[1], lv.level0, 1e-9);
}

TEST(Otam, SwitchLeakageIsSmallButPresent) {
  rf::SpdtSwitch sw;
  // With h0 = 0 the "0" level comes only from leakage of the h1 path.
  const OtamChannel ch{{0.0, 0.0}, {1.0, 0.0}};
  const OtamLevels lv = otam_levels(ch, sw);
  EXPECT_GT(lv.level0, 0.0);
  EXPECT_NEAR(amp_to_db(lv.level1 / lv.level0), sw.spec().isolation_db - sw.spec().insertion_loss_db,
              1.0);
}

TEST(Otam, BlockedChannelInvertsLevels) {
  rf::SpdtSwitch sw;
  const OtamLevels lv = otam_levels(blocked_los(), sw);
  EXPECT_GT(lv.level0, lv.level1);  // "all bits are inverted" (Fig. 4b)
}

TEST(Otam, JointDemodDecodesClearLos) {
  Rng rng(1);
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const Bits prefix{1, 0, 1, 0};
  Bits bits = prefix;
  for (int i = 0; i < 200; ++i) bits.push_back(rng.uniform_int(0, 1));
  auto rx = otam_synthesize(bits, cfg, clear_los(), sw);
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(18.0), rng);
  const JointDecision d = joint_demodulate(rx, cfg, prefix);
  EXPECT_EQ(d.bits, bits);
  EXPECT_FALSE(d.ask_inverted);
}

TEST(Otam, JointDemodDecodesBlockedLosWithInversion) {
  Rng rng(2);
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const Bits prefix{1, 0, 1, 0};
  Bits bits = prefix;
  for (int i = 0; i < 200; ++i) bits.push_back(rng.uniform_int(0, 1));
  auto rx = otam_synthesize(bits, cfg, blocked_los(), sw);
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(18.0), rng);
  const JointDecision d = joint_demodulate(rx, cfg, prefix);
  EXPECT_EQ(d.bits, bits);
  EXPECT_TRUE(d.ask_inverted);
}

TEST(Otam, EqualLossChannelStillDecodableViaFsk) {
  // The <10% corner case (Fig. 9b): both beams land with the same
  // amplitude. ASK separation collapses; FSK must carry the packet.
  Rng rng(3);
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const OtamChannel equal{{0.5, 0.0}, {0.5, 0.0}};
  const Bits prefix{1, 0, 1, 0};
  Bits bits = prefix;
  for (int i = 0; i < 200; ++i) bits.push_back(rng.uniform_int(0, 1));
  auto rx = otam_synthesize(bits, cfg, equal, sw);
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(18.0), rng);
  const JointDecision d = joint_demodulate(rx, cfg, prefix);
  EXPECT_EQ(d.bits, bits);
  EXPECT_EQ(d.mode, DecisionMode::kFsk);
}

TEST(Otam, SymbolRateLimitedBySwitch) {
  PhyConfig cfg = test_cfg();
  cfg.symbol_rate_hz = 200e6;  // above the ADRF5020's 100 MHz toggle cap
  cfg.fsk_freq0_hz = -400e6;
  cfg.fsk_freq1_hz = 400e6;
  rf::SpdtSwitch sw;
  EXPECT_THROW(otam_synthesize({1, 0}, cfg, clear_los(), sw), std::invalid_argument);
}

TEST(Otam, ValidatesArguments) {
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  EXPECT_THROW(otam_synthesize({2}, cfg, clear_los(), sw), std::invalid_argument);
  EXPECT_THROW(otam_synthesize({1}, cfg, clear_los(), sw, 0.0), std::invalid_argument);
  EXPECT_THROW(fixed_beam_ask_synthesize({1}, cfg, clear_los(), 1.0, 1.5), std::invalid_argument);
}

TEST(FixedBeam, BaselineUsesOnlyBeam1) {
  // With h1 = 0 the fixed-beam baseline is stone deaf, while OTAM still
  // has the Beam-0 level — the crux of Fig. 10's comparison.
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const OtamChannel ch{{0.8, 0.0}, {0.0, 0.0}};
  const auto baseline = fixed_beam_ask_synthesize({1, 0, 1}, cfg, ch);
  EXPECT_NEAR(dsp::mean_power(baseline), 0.0, 1e-18);
  const auto otam = otam_synthesize({1, 0, 1}, cfg, ch, sw);
  EXPECT_GT(dsp::mean_power(otam), 1e-6);
}

}  // namespace
}  // namespace mmx::phy
