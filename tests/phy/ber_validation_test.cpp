// Cross-validation: the analytic BER tables (used to regenerate Fig. 11,
// following the paper's own §9.3 method) against bit errors counted in
// sample-level OTAM simulation. If these disagree, either the demodulator
// or the analytics are wrong.
#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/ask.hpp"
#include "mmx/phy/ber.hpp"
#include "mmx/phy/otam.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  cfg.guard_frac = 0.0;  // use the whole symbol so n_avg is exact
  return cfg;
}

/// Measure the ASK-branch BER at a given per-sample SNR.
double measured_ask_ber(double snr_db, std::size_t total_bits, Rng& rng) {
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const OtamChannel ch{{0.25, 0.0}, {1.0, 0.0}};
  const Bits& prefix = default_preamble();
  std::size_t errors = 0;
  std::size_t counted = 0;
  while (counted < total_bits) {
    Bits bits = prefix;
    for (int i = 0; i < 2000; ++i) bits.push_back(rng.uniform_int(0, 1));
    auto rx = otam_synthesize(bits, cfg, ch, sw);
    // Reference noise level: relative to the STRONG level's power, which
    // is what the analytic model's `noise_power` argument refers to.
    const OtamLevels lv = otam_levels(ch, sw);
    const double noise_power = lv.level1 * lv.level1 / db_to_lin(snr_db);
    dsp::add_awgn(rx, noise_power, rng);
    const AskDecision d = ask_demodulate(rx, cfg, prefix);
    // A real receiver drops a frame whose training bits disagree (sync
    // failure); keeping such frames would measure polarity flips, not BER.
    std::size_t prefix_err = 0;
    for (std::size_t i = 0; i < prefix.size(); ++i) prefix_err += (d.bits[i] != prefix[i]);
    if (prefix_err > prefix.size() / 4) continue;
    for (std::size_t i = prefix.size(); i < bits.size(); ++i) {
      errors += (d.bits[i] != bits[i]);
      ++counted;
    }
  }
  return static_cast<double>(errors) / static_cast<double>(counted);
}

/// The analytic prediction for the same setup.
double predicted_ask_ber(double snr_db) {
  const PhyConfig cfg = test_cfg();
  rf::SpdtSwitch sw;
  const OtamChannel ch{{0.25, 0.0}, {1.0, 0.0}};
  const OtamLevels lv = otam_levels(ch, sw);
  const double noise_power = lv.level1 * lv.level1 / db_to_lin(snr_db);
  return ber_two_level(lv.level1, lv.level0, noise_power, cfg.samples_per_symbol);
}

class BerValidationSweep : public ::testing::TestWithParam<double> {};

TEST_P(BerValidationSweep, MeasuredMatchesAnalyticWithinFactor) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1000.0) + 7);
  const double snr_db = GetParam();
  const double predicted = predicted_ask_ber(snr_db);
  ASSERT_GT(predicted, 1e-4) << "pick SNRs where errors are countable";
  const auto bits_needed = static_cast<std::size_t>(std::min(2e6, 200.0 / predicted));
  const double measured = measured_ask_ber(snr_db, bits_needed, rng);
  // Envelope detection vs the Gaussian approximation: agree within 3x on
  // the BER (i.e. within ~1 dB on the waterfall).
  EXPECT_GT(measured, predicted / 3.0) << "SNR " << snr_db;
  EXPECT_LT(measured, predicted * 3.0) << "SNR " << snr_db;
}

// Per-sample SNRs chosen so the per-symbol (x16) BER sits in a countable
// range: ~2e-2 down to ~2e-4.
INSTANTIATE_TEST_SUITE_P(Levels, BerValidationSweep, ::testing::Values(-8.0, -6.5, -5.0));

TEST(BerValidation, WaterfallMonotone) {
  Rng rng(99);
  const double b1 = measured_ask_ber(-9.0, 40000, rng);
  const double b2 = measured_ask_ber(-5.0, 40000, rng);
  EXPECT_GT(b1, b2);
}

}  // namespace
}  // namespace mmx::phy
