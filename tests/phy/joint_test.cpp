#include "mmx/phy/joint.hpp"

#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/otam.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

Bits with_prefix(const Bits& prefix, std::size_t n, Rng& rng) {
  Bits bits = prefix;
  for (std::size_t i = 0; i < n; ++i) bits.push_back(rng.uniform_int(0, 1));
  return bits;
}

TEST(Joint, PrefersAskWhenContrastIsStrong) {
  Rng rng(1);
  rf::SpdtSwitch sw;
  const PhyConfig cfg = test_cfg();
  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  const Bits bits = with_prefix(prefix, 300, rng);
  const OtamChannel strong_contrast{{0.05, 0.0}, {1.0, 0.0}};  // 26 dB apart
  auto rx = otam_synthesize(bits, cfg, strong_contrast, sw);
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(20.0), rng);
  const JointDecision d = joint_demodulate(rx, cfg, prefix);
  EXPECT_EQ(d.bits, bits);
  EXPECT_GT(d.ask_separation, 2.0);
}

TEST(Joint, FallsBackToFskOnEqualLevels) {
  Rng rng(2);
  rf::SpdtSwitch sw;
  const PhyConfig cfg = test_cfg();
  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  const Bits bits = with_prefix(prefix, 300, rng);
  const OtamChannel equal{{0.4, 0.0}, {0.4, 0.0}};
  auto rx = otam_synthesize(bits, cfg, equal, sw);
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(20.0), rng);
  const JointDecision d = joint_demodulate(rx, cfg, prefix);
  EXPECT_EQ(d.bits, bits);
  EXPECT_EQ(d.mode, DecisionMode::kFsk);
  EXPECT_GT(d.fsk_margin, 0.5);
}

TEST(Joint, DecodesAcrossContrastContinuum) {
  // §6.3's claim: "utilizing joint ASK-FSK modulations is essential in
  // order to decode the signal in all scenarios". Sweep the beam-level
  // ratio from inverted through equal to normal; the joint demodulator
  // must decode everywhere.
  Rng rng(3);
  rf::SpdtSwitch sw;
  const PhyConfig cfg = test_cfg();
  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  for (double h0 : {0.05, 0.2, 0.39, 0.4, 0.41, 0.8, 1.5}) {
    const Bits bits = with_prefix(prefix, 200, rng);
    const OtamChannel ch{{h0, 0.0}, {0.4, 0.0}};
    auto rx = otam_synthesize(bits, cfg, ch, sw);
    dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(22.0), rng);
    const JointDecision d = joint_demodulate(rx, cfg, prefix);
    std::size_t errors = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
    EXPECT_LE(errors, 2u) << "h0 = " << h0;
  }
}

TEST(Joint, AskAloneFailsWhereJointSucceeds) {
  // Demonstrate the necessity of the FSK half: at equal levels plain ASK
  // is a coin flip.
  Rng rng(4);
  rf::SpdtSwitch sw;
  const PhyConfig cfg = test_cfg();
  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  const Bits bits = with_prefix(prefix, 400, rng);
  const OtamChannel equal{{0.4, 0.0}, {0.4, 0.0}};
  auto rx = otam_synthesize(bits, cfg, equal, sw);
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(20.0), rng);

  const JointDecision joint = joint_demodulate(rx, cfg, prefix);
  std::size_t joint_err = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) joint_err += (joint.bits[i] != bits[i]);
  EXPECT_LE(joint_err, 2u);

  // The reported ASK separation collapses (noise clusters only) compared
  // with the >5 d' a real contrast gives.
  EXPECT_LT(joint.ask_separation, 2.0);
}

TEST(Joint, WorksWithoutPrefix) {
  Rng rng(5);
  rf::SpdtSwitch sw;
  const PhyConfig cfg = test_cfg();
  Bits bits = with_prefix({1, 0}, 300, rng);
  const OtamChannel ch{{0.1, 0.0}, {1.0, 0.0}};
  auto rx = otam_synthesize(bits, cfg, ch, sw);
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(20.0), rng);
  const JointDecision d = joint_demodulate(rx, cfg);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
  EXPECT_LE(errors, 3u);
}

TEST(Joint, EmptyCaptureThrows) {
  const PhyConfig cfg = test_cfg();
  dsp::Cvec tiny(cfg.samples_per_symbol - 1);
  EXPECT_THROW(joint_demodulate(tiny, cfg), std::invalid_argument);
}

class JointSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(JointSnrSweep, CleanAbove15dB) {
  Rng rng(6);
  rf::SpdtSwitch sw;
  const PhyConfig cfg = test_cfg();
  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  const Bits bits = with_prefix(prefix, 500, rng);
  const OtamChannel ch{{0.2, 0.0}, {1.0, 0.0}};
  auto rx = otam_synthesize(bits, cfg, ch, sw);
  dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(GetParam()), rng);
  const JointDecision d = joint_demodulate(rx, cfg, prefix);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
  if (GetParam() >= 15.0) {
    EXPECT_EQ(errors, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, JointSnrSweep, ::testing::Values(15.0, 20.0, 25.0, 35.0));

}  // namespace
}  // namespace mmx::phy
