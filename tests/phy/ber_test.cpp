#include "mmx/phy/ber.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"

namespace mmx::phy {
namespace {

TEST(Ber, QFunctionKnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.1587, 1e-4);
  EXPECT_NEAR(q_function(3.0), 1.35e-3, 1e-4);
  EXPECT_NEAR(q_function(-1.0), 0.8413, 1e-4);
  // Deep tail stays finite and positive.
  EXPECT_GT(q_function(8.0), 0.0);
  EXPECT_LT(q_function(8.0), 1e-14);
}

TEST(Ber, MonotoneDecreasingInSnr) {
  double prev = 1.0;
  for (double snr_db = -10.0; snr_db <= 30.0; snr_db += 1.0) {
    const double b = ber_ook_coherent(db_to_lin(snr_db));
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(Ber, CoherentBeatsNoncoherent) {
  for (double snr_db = 5.0; snr_db <= 20.0; snr_db += 2.5) {
    const double snr = db_to_lin(snr_db);
    EXPECT_LE(ber_ook_coherent(snr), ber_ook_noncoherent(snr));
  }
}

TEST(Ber, NoncoherentCapsAtHalf) {
  EXPECT_DOUBLE_EQ(ber_ook_noncoherent(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ber_bfsk_noncoherent(0.0), 0.5);
}

TEST(Ber, PaperAnchorPoints) {
  // §9.4: "SNRs of more than 15 dB, which is sufficient to achieve BER of
  // lower than 1e-8" — coherent OOK at 15 dB is ~1e-8-ish.
  EXPECT_LT(ber_ook_coherent(db_to_lin(15.0)), 1e-7);
  // §9.2: SNR >= 11 dB -> "very low BER" (well below 1e-3).
  EXPECT_LT(ber_ook_coherent(db_to_lin(11.0)), 1e-3);
}

TEST(Ber, TwoLevelMatchesOokWhenLevelsAre0And1) {
  // amp1=1, amp0=0, noise_power=p: Q(1/(2*sqrt(p/2))) == Q(sqrt(1/(2p))).
  const double p = 0.01;
  EXPECT_NEAR(ber_two_level(1.0, 0.0, p), q_function(std::sqrt(1.0 / (2.0 * p))), 1e-15);
}

TEST(Ber, TwoLevelEqualAmplitudesIsCoinFlip) {
  EXPECT_DOUBLE_EQ(ber_two_level(0.5, 0.5, 0.01), 0.5);
}

TEST(Ber, TwoLevelAveragingHelps) {
  EXPECT_LT(ber_two_level(1.0, 0.5, 0.1, 16), ber_two_level(1.0, 0.5, 0.1, 1));
}

TEST(Ber, JointTakesBetterBranch) {
  EXPECT_DOUBLE_EQ(ber_joint(1e-3, 1e-9), 1e-9);
  EXPECT_DOUBLE_EQ(ber_joint(1e-12, 0.5), 1e-12);
  // Equal-loss OTAM corner: ASK is a coin flip, FSK saves the packet.
  EXPECT_LT(ber_joint(0.5, ber_bfsk_noncoherent(db_to_lin(15.0))), 1e-5);
}

TEST(Ber, SnrForBerInverse) {
  for (double target : {1e-3, 1e-6, 1e-9}) {
    const double snr = snr_for_ber_ook(target);
    EXPECT_NEAR(ber_ook_coherent(snr) / target, 1.0, 1e-3);
  }
}

TEST(Ber, CodedBerBeatsRawInWaterfallRegion) {
  for (double p : {1e-2, 1e-3, 1e-4}) {
    EXPECT_LT(ber_hamming74(p), p);
    EXPECT_LT(ber_conv_k3(p), ber_hamming74(p));  // stronger code wins
  }
}

TEST(Ber, CodedBerScalesCorrectly) {
  // Hamming residual ~ p^2 region: dropping p by 10x drops residual ~100x.
  const double r1 = ber_hamming74(1e-3);
  const double r2 = ber_hamming74(1e-4);
  EXPECT_NEAR(r1 / r2, 100.0, 20.0);
  // Convolutional d_free=5: p^3 leading term -> 1000x.
  const double c1 = ber_conv_k3(1e-3);
  const double c2 = ber_conv_k3(1e-4);
  EXPECT_NEAR(c1 / c2, 1000.0, 200.0);
}

TEST(Ber, CodedBerValidation) {
  EXPECT_THROW(ber_hamming74(-0.1), std::invalid_argument);
  EXPECT_THROW(ber_conv_k3(0.6), std::invalid_argument);
  EXPECT_DOUBLE_EQ(ber_hamming74(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ber_conv_k3(0.0), 0.0);
}

TEST(Ber, ValidatesArguments) {
  EXPECT_THROW(ber_ook_coherent(-1.0), std::invalid_argument);
  EXPECT_THROW(ber_two_level(1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ber_two_level(1.0, 0.0, 0.1, 0), std::invalid_argument);
  EXPECT_THROW(ber_joint(0.7, 0.1), std::invalid_argument);
  EXPECT_THROW(snr_for_ber_ook(0.0), std::invalid_argument);
  EXPECT_THROW(snr_for_ber_ook(0.5), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::phy
