#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/phy/crc.hpp"
#include "mmx/phy/frame.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::phy {
namespace {

TEST(Crc, Crc16KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  const std::string s = "123456789";
  const std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc16(data), 0x29B1);
}

TEST(Crc, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  const std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc, EmptyInput) {
  EXPECT_EQ(crc16({}), 0xFFFF);
  EXPECT_EQ(crc32({}), 0x0u);
}

TEST(Crc, DetectsSingleBitFlip) {
  Rng rng(1);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto ref16 = crc16(data);
  const auto ref32 = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc16(data), ref16);
      EXPECT_NE(crc32(data), ref32);
      data[i] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
}

TEST(Bits, BytesToBitsRoundTrip) {
  Rng rng(2);
  std::vector<std::uint8_t> bytes(37);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

TEST(Bits, MsbFirstOrdering) {
  const Bits bits = bytes_to_bits(std::vector<std::uint8_t>{0x80});
  ASSERT_EQ(bits.size(), 8u);
  EXPECT_EQ(bits[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
}

TEST(Bits, BadInputThrows) {
  EXPECT_THROW(bits_to_bytes(Bits{1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(bits_to_bytes(Bits{1, 0, 2, 0, 0, 0, 0, 0}), std::invalid_argument);
}

TEST(Frame, EncodeDecodeRoundTrip) {
  Frame f;
  f.node_id = 0x1234;
  f.seq = 42;
  f.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const Bits bits = encode_frame(f, default_preamble());
  EXPECT_EQ(bits.size(), frame_length_bits(f.payload.size(), default_preamble().size()));
  // Strip the preamble as the receiver does after sync.
  const Bits body(bits.begin() + static_cast<long>(default_preamble().size()), bits.end());
  const auto decoded = decode_frame(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, f);
}

TEST(Frame, EmptyPayloadOk) {
  Frame f;
  f.node_id = 7;
  const Bits bits = encode_frame(f, default_preamble());
  const Bits body(bits.begin() + static_cast<long>(default_preamble().size()), bits.end());
  const auto decoded = decode_frame(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Frame, CorruptedCrcRejected) {
  Frame f;
  f.node_id = 1;
  f.payload = {1, 2, 3};
  Bits bits = encode_frame(f, {});
  bits.back() ^= 1;
  EXPECT_FALSE(decode_frame(bits).has_value());
}

TEST(Frame, CorruptedHeaderRejected) {
  Frame f;
  f.payload = {9, 9};
  Bits bits = encode_frame(f, {});
  bits[3] ^= 1;  // node_id bit — CRC covers the header too
  EXPECT_FALSE(decode_frame(bits).has_value());
}

TEST(Frame, TruncatedRejected) {
  Frame f;
  f.payload.assign(100, 0xAB);
  Bits bits = encode_frame(f, {});
  bits.resize(bits.size() / 2);
  EXPECT_FALSE(decode_frame(bits).has_value());
}

TEST(Frame, OversizePayloadThrows) {
  Frame f;
  f.payload.assign(kMaxPayloadBytes + 1, 0);
  EXPECT_THROW(encode_frame(f, {}), std::invalid_argument);
}

TEST(Frame, GarbageBitsRejectedNotCrash) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Bits junk(rng.uniform_int(0, 400));
    for (int& b : junk) b = rng.uniform_int(0, 1);
    EXPECT_NO_THROW({ auto r = decode_frame(junk); (void)r; });
  }
}

class PayloadSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSizeSweep, RoundTripAcrossSizes) {
  Rng rng(4);
  Frame f;
  f.node_id = 99;
  f.seq = 1000;
  f.payload.resize(GetParam());
  for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const Bits bits = encode_frame(f, {});
  const auto decoded = decode_frame(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSizeSweep,
                         ::testing::Values(0, 1, 7, 64, 255, 1024, kMaxPayloadBytes));

}  // namespace
}  // namespace mmx::phy
