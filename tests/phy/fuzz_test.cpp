// Fuzz-style robustness: every receive-path entry point must reject (or
// cleanly decode) arbitrary garbage without crashing or UB — an AP on a
// shared ISM band spends most of its life looking at noise.
#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/ask.hpp"
#include "mmx/phy/crc.hpp"
#include "mmx/phy/fec.hpp"
#include "mmx/phy/frame.hpp"
#include "mmx/phy/fsk.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/preamble.hpp"
#include "mmx/phy/scrambler.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

TEST(Fuzz, DemodulatorsNeverThrowOnNoise) {
  Rng rng(1);
  const PhyConfig cfg = test_cfg();
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n =
        cfg.samples_per_symbol * static_cast<std::size_t>(rng.uniform_int(1, 80));
    const double power = std::pow(10.0, rng.uniform(-12.0, 3.0));
    const dsp::Cvec junk = dsp::awgn(n, power, rng);
    EXPECT_NO_THROW({
      auto a = ask_demodulate(junk, cfg);
      auto f = fsk_demodulate(junk, cfg);
      auto j = joint_demodulate(junk, cfg);
      (void)a;
      (void)f;
      (void)j;
    });
  }
}

TEST(Fuzz, PreambleSearchNeverThrowsOnNoise) {
  Rng rng(2);
  const PhyConfig cfg = test_cfg();
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 4000));
    const dsp::Cvec junk = dsp::awgn(n, 1.0, rng);
    EXPECT_NO_THROW({
      auto s = find_preamble(junk, cfg, default_preamble(), 512);
      (void)s;
    });
  }
}

TEST(Fuzz, FrameDecodeOnRandomBitsNeverCrashesOrLies) {
  // Random bitstreams must virtually never produce a CRC-valid frame
  // (16-bit CRC: ~1.5e-5 per length-consistent candidate).
  Rng rng(3);
  std::size_t accepted = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    Bits junk(static_cast<std::size_t>(rng.uniform_int(0, 600)));
    for (int& b : junk) b = rng.uniform_int(0, 1);
    if (decode_frame(junk).has_value()) ++accepted;
  }
  EXPECT_LE(accepted, 2u);
}

TEST(Fuzz, FecDecodersToleratePatternedGarbage) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    Bits junk(7 * static_cast<std::size_t>(rng.uniform_int(1, 40)));
    for (int& b : junk) b = rng.uniform_int(0, 1);
    EXPECT_NO_THROW({ auto h = hamming74_decode(junk); (void)h; });
    Bits junk2(2 * static_cast<std::size_t>(rng.uniform_int(4, 100)));
    for (int& b : junk2) b = rng.uniform_int(0, 1);
    EXPECT_NO_THROW({ auto c = conv_decode(junk2); (void)c; });
  }
}

TEST(Fuzz, ZeroPowerCaptureHandled) {
  const PhyConfig cfg = test_cfg();
  const dsp::Cvec silence(cfg.samples_per_symbol * 20, dsp::Complex{});
  EXPECT_NO_THROW({
    auto j = joint_demodulate(silence, cfg);
    (void)j;
  });
  EXPECT_FALSE(find_preamble(silence, cfg, default_preamble(), 64).has_value());
}

// --- Seeded round-trips through the full bit pipeline ----------------------
// scramble -> Hamming(7,4) -> (corruption) -> decode -> descramble, with a
// CRC-16 over the payload standing in for the frame check. The contract:
// up to one flipped bit per code block is transparent, and anything the
// FEC mis-corrects must still be caught by the CRC — corruption may cost
// a retransmission but never silently delivers wrong bytes.

std::vector<std::uint8_t> random_payload(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> bytes(len);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return bytes;
}

Bits pipeline_encode(const std::vector<std::uint8_t>& payload) {
  return hamming74_encode(scramble(bytes_to_bits(payload)));
}

std::vector<std::uint8_t> pipeline_decode(const Bits& coded) {
  return bits_to_bytes(descramble(hamming74_decode(coded)));
}

TEST(Fuzz, CleanPipelineRoundTripsExactly) {
  Rng rng(6);
  for (int trial = 0; trial < 40; ++trial) {
    const auto payload = random_payload(rng, static_cast<std::size_t>(rng.uniform_int(1, 200)));
    EXPECT_EQ(pipeline_decode(pipeline_encode(payload)), payload);
  }
}

TEST(Fuzz, SingleBitErrorPerBlockAlwaysCorrected) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const auto payload = random_payload(rng, static_cast<std::size_t>(rng.uniform_int(1, 120)));
    Bits coded = pipeline_encode(payload);
    // Flip one random bit in EVERY 7-bit block — the worst load the
    // Hamming layer still guarantees to repair.
    for (std::size_t block = 0; block + 7 <= coded.size(); block += 7) {
      const auto pos = block + static_cast<std::size_t>(rng.uniform_int(0, 6));
      coded[pos] ^= 1;
    }
    EXPECT_EQ(pipeline_decode(coded), payload) << "trial " << trial;
  }
}

TEST(Fuzz, DoubleBitErrorsNeverSlipPastTheCrc) {
  Rng rng(8);
  int miscorrected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto payload = random_payload(rng, static_cast<std::size_t>(rng.uniform_int(4, 60)));
    const std::uint16_t crc = crc16(payload);
    Bits coded = pipeline_encode(payload);
    // Two flips inside one block exceed the code's correction radius;
    // the decoder will "correct" toward a wrong codeword.
    const std::size_t n_blocks = coded.size() / 7;
    const auto block = 7 * static_cast<std::size_t>(
                               rng.uniform_int(0, static_cast<int>(n_blocks) - 1));
    const int p1 = rng.uniform_int(0, 6);
    int p2 = rng.uniform_int(0, 6);
    while (p2 == p1) p2 = rng.uniform_int(0, 6);
    coded[block + static_cast<std::size_t>(p1)] ^= 1;
    coded[block + static_cast<std::size_t>(p2)] ^= 1;

    const auto decoded = pipeline_decode(coded);
    if (decoded != payload) {
      ++miscorrected;
      // The failure mode that matters: a wrong decode must not carry a
      // matching checksum.
      EXPECT_NE(crc16(decoded), crc) << "trial " << trial;
    }
  }
  // A 2-bit error per block is beyond Hamming(7,4): expect mis-corrections
  // to actually occur, otherwise this test exercises nothing.
  EXPECT_GT(miscorrected, 0);
}

TEST(Fuzz, ExtremeAmplitudesHandled) {
  Rng rng(5);
  const PhyConfig cfg = test_cfg();
  dsp::Cvec huge = dsp::awgn(cfg.samples_per_symbol * 30, 1e18, rng);
  dsp::Cvec tiny = dsp::awgn(cfg.samples_per_symbol * 30, 1e-18, rng);
  EXPECT_NO_THROW({ auto a = joint_demodulate(huge, cfg); (void)a; });
  EXPECT_NO_THROW({ auto b = joint_demodulate(tiny, cfg); (void)b; });
}

}  // namespace
}  // namespace mmx::phy
