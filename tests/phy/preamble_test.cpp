#include "mmx/phy/preamble.hpp"

#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/ask.hpp"
#include "mmx/phy/otam.hpp"

namespace mmx::phy {
namespace {

PhyConfig test_cfg() {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

TEST(Preamble, DefaultIsBalancedAndNonTrivial) {
  const Bits& p = default_preamble();
  EXPECT_GE(p.size(), 8u);
  std::size_t ones = 0;
  for (int b : p) ones += static_cast<std::size_t>(b);
  EXPECT_GT(ones, p.size() / 4);
  EXPECT_LT(ones, 3 * p.size() / 4);
}

dsp::Cvec capture_with_offset(const PhyConfig& cfg, std::size_t offset_samples, bool invert,
                              Rng& rng, double snr_db = 25.0) {
  rf::SpdtSwitch sw;
  Bits bits = default_preamble();
  for (int i = 0; i < 40; ++i) bits.push_back(rng.uniform_int(0, 1));
  const OtamChannel ch = invert ? OtamChannel{{1.0, 0.0}, {0.1, 0.0}}
                                : OtamChannel{{0.1, 0.0}, {1.0, 0.0}};
  auto body = otam_synthesize(bits, cfg, ch, sw);
  dsp::Cvec rx(offset_samples, dsp::Complex{});  // leading dead air
  rx.insert(rx.end(), body.begin(), body.end());
  dsp::add_awgn(rx, dsp::mean_power(body) / db_to_lin(snr_db), rng);
  return rx;
}

TEST(Preamble, FindsFrameAtZeroOffset) {
  Rng rng(1);
  const PhyConfig cfg = test_cfg();
  const auto rx = capture_with_offset(cfg, 0, false, rng);
  const auto sync = find_preamble(rx, cfg, default_preamble(), 64);
  ASSERT_TRUE(sync.has_value());
  EXPECT_EQ(sync->sample_offset, 0u);
  EXPECT_FALSE(sync->inverted);
}

TEST(Preamble, FindsFrameAtSampleOffset) {
  Rng rng(2);
  const PhyConfig cfg = test_cfg();
  for (std::size_t off : {5u, 23u, 64u, 129u}) {
    const auto rx = capture_with_offset(cfg, off, false, rng);
    const auto sync = find_preamble(rx, cfg, default_preamble(), 200);
    ASSERT_TRUE(sync.has_value()) << off;
    // Within a couple of samples (envelope guard smears the edge).
    EXPECT_NEAR(static_cast<double>(sync->sample_offset), static_cast<double>(off), 2.0) << off;
  }
}

TEST(Preamble, DetectsInversion) {
  Rng rng(3);
  const PhyConfig cfg = test_cfg();
  const auto rx = capture_with_offset(cfg, 16, true, rng);
  const auto sync = find_preamble(rx, cfg, default_preamble(), 64);
  ASSERT_TRUE(sync.has_value());
  EXPECT_TRUE(sync->inverted);
}

TEST(Preamble, RejectsNoiseOnlyCapture) {
  Rng rng(4);
  const PhyConfig cfg = test_cfg();
  dsp::Cvec rx = dsp::awgn(default_preamble().size() * cfg.samples_per_symbol + 256, 1.0, rng);
  const auto sync = find_preamble(rx, cfg, default_preamble(), 128, 0.9);
  EXPECT_FALSE(sync.has_value());
}

TEST(Preamble, TooShortCaptureReturnsNothing) {
  const PhyConfig cfg = test_cfg();
  dsp::Cvec rx(default_preamble().size() * cfg.samples_per_symbol / 2);
  EXPECT_FALSE(find_preamble(rx, cfg, default_preamble(), 64).has_value());
}

TEST(Preamble, ValidatesArguments) {
  const PhyConfig cfg = test_cfg();
  dsp::Cvec rx(1024);
  EXPECT_THROW(find_preamble(rx, cfg, Bits{1, 0}, 10), std::invalid_argument);
  EXPECT_THROW(find_preamble(rx, cfg, default_preamble(), 10, 0.0), std::invalid_argument);
  EXPECT_THROW(find_preamble(rx, cfg, Bits{1, 1, 1, 1}, 10), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::phy
