#include "mmx/phy/scrambler.hpp"

#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"

namespace mmx::phy {
namespace {

TEST(Scrambler, SelfInverse) {
  Rng rng(1);
  Bits data(500);
  for (int& b : data) b = rng.uniform_int(0, 1);
  EXPECT_EQ(descramble(scramble(data)), data);
}

TEST(Scrambler, DifferentSeedsDifferentStreams) {
  const Bits zeros(100, 0);
  EXPECT_NE(scramble(zeros, 0x5A), scramble(zeros, 0x33));
}

TEST(Scrambler, WhitensConstantInput) {
  // A black video frame: 4000 zero bits. Scrambled, runs collapse to
  // PRBS-7's max run (7).
  const Bits zeros(4000, 0);
  EXPECT_EQ(longest_run(zeros), 4000u);
  const Bits white = scramble(zeros);
  EXPECT_LE(longest_run(white), 8u);
  // Balanced within a few percent.
  std::size_t ones = 0;
  for (int b : white) ones += static_cast<std::size_t>(b);
  EXPECT_NEAR(static_cast<double>(ones) / white.size(), 0.5, 0.05);
}

TEST(Scrambler, Prbs7Period) {
  // Maximal-length 7-bit LFSR repeats every 127 bits.
  Scrambler s(0x01);
  Bits first(127);
  for (int& b : first) b = s.next_bit();
  Bits second(127);
  for (int& b : second) b = s.next_bit();
  EXPECT_EQ(first, second);
  // ...and is not constant.
  EXPECT_GT(longest_run(first), 1u);
  EXPECT_LT(longest_run(first), 127u);
}

TEST(Scrambler, ZeroSeedThrows) {
  EXPECT_THROW(Scrambler(0x00), std::invalid_argument);
  EXPECT_THROW(Scrambler(0x80), std::invalid_argument);  // only 7 bits count
}

TEST(Scrambler, RejectsNonBinary) {
  Scrambler s;
  EXPECT_THROW(s.process(Bits{0, 2}), std::invalid_argument);
}

TEST(Scrambler, LongestRunEdgeCases) {
  EXPECT_EQ(longest_run({}), 0u);
  EXPECT_EQ(longest_run({1}), 1u);
  EXPECT_EQ(longest_run({1, 0, 1, 0}), 1u);
  EXPECT_EQ(longest_run({1, 1, 0, 0, 0}), 3u);
}

}  // namespace
}  // namespace mmx::phy
