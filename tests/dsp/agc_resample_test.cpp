#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/dsp/agc.hpp"
#include "mmx/dsp/fft.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/resample.hpp"
#include "mmx/dsp/tone.hpp"

namespace mmx::dsp {
namespace {

TEST(Agc, ConvergesToTargetLevel) {
  Agc agc(1.0, 0.1);
  const Cvec x = tone(1e6, 10e3, 2000);
  // Input at amplitude 0.01 (40 dB down) — AGC should pull it to ~1.
  Cvec weak(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) weak[i] = 0.01 * x[i];
  const Cvec out = agc.process(weak);
  double tail_rms = 0.0;
  for (std::size_t i = out.size() - 200; i < out.size(); ++i) tail_rms += std::norm(out[i]);
  tail_rms = std::sqrt(tail_rms / 200.0);
  EXPECT_NEAR(tail_rms, 1.0, 0.05);
}

TEST(Agc, PreservesRelativeAskContrast) {
  // AGC must adapt slower than a symbol so OTAM's amplitude contrast
  // survives — here alpha is small and both levels get the same gain.
  Agc agc(1.0, 0.001);
  Cvec x;
  Nco nco(100e6, 1e6);
  for (int i = 0; i < 5000; ++i) x.push_back(0.02 * nco.next());
  const Cvec out = agc.process(x);
  const double g_early = std::abs(out[4000]) / std::abs(x[4000]);
  const double g_late = std::abs(out[4999]) / std::abs(x[4999]);
  EXPECT_NEAR(g_early / g_late, 1.0, 0.05);
}

TEST(Agc, RejectsBadArguments) {
  EXPECT_THROW(Agc(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(Agc(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Agc(1.0, 1.5), std::invalid_argument);
}

TEST(Agc, ResetRestoresUnityGain) {
  Agc agc;
  for (int i = 0; i < 100; ++i) agc.process(Complex{0.001, 0.0});
  EXPECT_GT(agc.gain(), 10.0);
  agc.reset();
  EXPECT_DOUBLE_EQ(agc.gain(), 1.0);
}

TEST(Resample, DecimatePreservesInBandTone) {
  const double fs = 1e6;
  const Cvec x = tone(fs, 20e3, 8192);
  const Cvec y = decimate(x, 4);
  EXPECT_EQ(y.size(), x.size() / 4);
  // Tone frequency unchanged in Hz at the new rate.
  const std::span<const Complex> tail(y.data() + 256, y.size() - 256);
  EXPECT_NEAR(estimate_tone_frequency(tail, fs / 4.0), 20e3, 100.0);
}

TEST(Resample, DecimateSuppressesAlias) {
  const double fs = 1e6;
  // 230 kHz would alias to -20 kHz after /4 (new fs = 250 kHz); the
  // anti-alias filter must kill it first.
  const Cvec x = tone(fs, 230e3, 8192);
  const Cvec y = decimate(x, 4);
  const std::span<const Complex> tail(y.data() + 256, y.size() - 256);
  EXPECT_LT(mean_power(tail), 0.01);
}

TEST(Resample, UpsamplePreservesToneAndLevel) {
  const double fs = 1e6;
  const Cvec x = tone(fs, 20e3, 2048);
  const Cvec y = upsample(x, 4);
  EXPECT_EQ(y.size(), x.size() * 4);
  const std::span<const Complex> tail(y.data() + 1024, y.size() - 1024);
  EXPECT_NEAR(estimate_tone_frequency(tail, fs * 4.0), 20e3, 100.0);
  EXPECT_NEAR(mean_power(tail), 1.0, 0.05);
}

TEST(Resample, FactorOneIsCopy) {
  Rng rng(2);
  const Cvec x = awgn(100, 1.0, rng);
  const Cvec d = decimate(x, 1);
  const Cvec u = upsample(x, 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(d[i], x[i]);
    EXPECT_EQ(u[i], x[i]);
  }
}

TEST(Resample, ZeroFactorThrows) {
  Cvec x(10);
  EXPECT_THROW(decimate(x, 0), std::invalid_argument);
  EXPECT_THROW(upsample(x, 0), std::invalid_argument);
}

TEST(Resample, RationalPreservesToneFrequency) {
  // 3/2 resampling of a 20 kHz tone at 1 Msps -> 1.5 Msps, tone unmoved.
  const double fs = 1e6;
  const Cvec x = tone(fs, 20e3, 8192);
  const Cvec y = resample_rational(x, 3, 2);
  EXPECT_NEAR(static_cast<double>(y.size()),
              static_cast<double>(x.size()) * 3.0 / 2.0, 3.0);
  const std::span<const Complex> tail(y.data() + 512, y.size() - 512);
  EXPECT_NEAR(estimate_tone_frequency(tail, fs * 3.0 / 2.0), 20e3, 200.0);
}

TEST(Resample, RationalDownConversion) {
  // 2/5: 1 Msps -> 400 ksps; a 120 kHz tone stays below the new Nyquist
  // and survives with its level.
  const double fs = 1e6;
  const Cvec x = tone(fs, 120e3, 16384);
  const Cvec y = resample_rational(x, 2, 5);
  const std::span<const Complex> tail(y.data() + 512, y.size() - 512);
  EXPECT_NEAR(estimate_tone_frequency(tail, fs * 2.0 / 5.0), 120e3, 300.0);
  EXPECT_NEAR(mean_power(tail), 1.0, 0.1);
}

TEST(Resample, RationalIdentityAndValidation) {
  Rng rng(6);
  const Cvec x = awgn(256, 1.0, rng);
  const Cvec y = resample_rational(x, 4, 4);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
  EXPECT_THROW(resample_rational(x, 0, 2), std::invalid_argument);
  EXPECT_THROW(resample_rational(x, 2, 0), std::invalid_argument);
}

TEST(Resample, FrequencyShiftMovesTone) {
  const double fs = 1e6;
  const Cvec x = tone(fs, 10e3, 4096);
  const Cvec y = frequency_shift(x, 100e3, fs);
  EXPECT_NEAR(estimate_tone_frequency(y, fs), 110e3, 200.0);
  // Shift is unitary: power preserved.
  EXPECT_NEAR(mean_power(y), mean_power(x), 1e-9);
}

TEST(Resample, FrequencyShiftInverse) {
  const double fs = 1e6;
  const Cvec x = tone(fs, 10e3, 1024);
  const Cvec y = frequency_shift(frequency_shift(x, 50e3, fs), -50e3, fs);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9);
}

}  // namespace
}  // namespace mmx::dsp
