#include "mmx/dsp/goertzel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/tone.hpp"

namespace mmx::dsp {
namespace {

TEST(Goertzel, UnitToneAtItsOwnFrequency) {
  const double fs = 1e6;
  const double f = 125e3;
  const Cvec x = tone(fs, f, 1000);
  // |X(f)|^2/N^2 of a unit tone at its own frequency is 1.
  EXPECT_NEAR(goertzel_power(x, f, fs), 1.0, 1e-6);
}

TEST(Goertzel, RejectsOffFrequencyTone) {
  const double fs = 1e6;
  const Cvec x = tone(fs, 125e3, 1000);
  // 10 kHz away (10 cycle offsets over the block): strong rejection.
  EXPECT_LT(goertzel_power(x, 135e3, fs), 0.01);
}

TEST(Goertzel, WorksOffBinGrid) {
  // Non-integer number of cycles in the block — classic FFT would leak,
  // Goertzel evaluated at the exact frequency still reports full power.
  const double fs = 1e6;
  const double f = 123'456.789;
  const Cvec x = tone(fs, f, 777);
  EXPECT_NEAR(goertzel_power(x, f, fs), 1.0, 1e-4);
}

TEST(Goertzel, MatchesDirectDft) {
  Rng rng(3);
  const double fs = 1e6;
  Cvec x = awgn(64, 1.0, rng);
  const double f = 3.0 * fs / 64.0;  // bin 3
  const Complex g = goertzel(x, f, fs);
  Complex direct{0.0, 0.0};
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double ph = -kTwoPi * 3.0 * static_cast<double>(n) / 64.0;
    direct += x[n] * Complex{std::cos(ph), std::sin(ph)};
  }
  EXPECT_NEAR(std::abs(g - direct), 0.0, 1e-9);
}

TEST(Goertzel, EmptyBlockIsZero) {
  EXPECT_DOUBLE_EQ(goertzel_power(Cvec{}, 1000.0, 1e6), 0.0);
}

TEST(Goertzel, BadSampleRateThrows) {
  Cvec x(8);
  EXPECT_THROW(goertzel(x, 1000.0, 0.0), std::invalid_argument);
  EXPECT_THROW(GoertzelBin(1000.0, -1.0), std::invalid_argument);
}

TEST(GoertzelBin, StreamingMatchesBatch) {
  Rng rng(9);
  const double fs = 1e6;
  Cvec x = awgn(500, 1.0, rng);
  const double f = 44e3;
  GoertzelBin bin(f, fs);
  for (const Complex& s : x) bin.push(s);
  EXPECT_NEAR(std::abs(bin.coefficient() - goertzel(x, f, fs)), 0.0, 1e-9);
  EXPECT_NEAR(bin.power(), goertzel_power(x, f, fs), 1e-12);
  EXPECT_EQ(bin.count(), x.size());
}

TEST(GoertzelBin, ResetClears) {
  GoertzelBin bin(1000.0, 1e6);
  bin.push(Complex{1.0, 0.0});
  bin.reset();
  EXPECT_EQ(bin.count(), 0u);
  EXPECT_DOUBLE_EQ(bin.power(), 0.0);
}

class FskSeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(FskSeparationSweep, DiscriminatesTwoTones) {
  // The joint ASK-FSK demodulator's core requirement: with tone spacing
  // >= 2/T (two cycles of separation per symbol), the correct bin wins.
  const double fs = 100e6;
  const std::size_t sym = 1000;  // 10 us symbol
  const double df = GetParam();
  const Cvec x0 = tone(fs, 0.0, sym);
  const Cvec x1 = tone(fs, df, sym);
  EXPECT_GT(goertzel_power(x1, df, fs), 10.0 * goertzel_power(x1, 0.0, fs));
  EXPECT_GT(goertzel_power(x0, 0.0, fs), 10.0 * goertzel_power(x0, df, fs));
}

INSTANTIATE_TEST_SUITE_P(Spacings, FskSeparationSweep,
                         ::testing::Values(200e3, 500e3, 1e6, 2e6, 5e6));

}  // namespace
}  // namespace mmx::dsp
