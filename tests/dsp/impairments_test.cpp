#include "mmx/dsp/impairments.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/goertzel.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/tone.hpp"

namespace mmx::dsp {
namespace {

TEST(IqImbalance, IdentityWhenPerfect) {
  const Cvec x = tone(1e6, 100e3, 256);
  const Cvec y = apply_iq_imbalance(x, IqImbalance{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
}

TEST(IqImbalance, CreatesImageTone) {
  // A +100 kHz tone through an imbalanced front end leaks an image at
  // -100 kHz with power set by the IRR.
  const double fs = 1e6;
  const Cvec x = tone(fs, 100e3, 4096);
  const IqImbalance imb{1.0, deg_to_rad(5.0)};
  const Cvec y = apply_iq_imbalance(x, imb);
  const double wanted = goertzel_power(y, 100e3, fs);
  const double image = goertzel_power(y, -100e3, fs);
  EXPECT_NEAR(lin_to_db(wanted / image), image_rejection_db(imb), 0.5);
}

TEST(IqImbalance, IrrFormulaSane) {
  EXPECT_GT(image_rejection_db(IqImbalance{0.1, deg_to_rad(1.0)}), 30.0);
  EXPECT_LT(image_rejection_db(IqImbalance{3.0, deg_to_rad(20.0)}), 20.0);
  EXPECT_GE(image_rejection_db(IqImbalance{0.0, 0.0}), 200.0);
}

TEST(DcOffset, AddsConstant) {
  const Cvec x(10, Complex{1.0, 1.0});
  const Cvec y = apply_dc_offset(x, Complex{0.5, -0.5});
  for (const Complex& s : y) EXPECT_NEAR(std::abs(s - Complex{1.5, 0.5}), 0.0, 1e-15);
}

TEST(IqCompensator, RemovesDcAndImage) {
  Rng rng(1);
  const double fs = 1e6;
  // A circular (noise-like) calibration signal.
  Cvec x = awgn(65536, 1.0, rng);
  const IqImbalance imb{1.5, deg_to_rad(8.0)};
  Cvec y = apply_iq_imbalance(x, imb);
  y = apply_dc_offset(y, Complex{0.2, -0.1});

  IqCompensator comp;
  comp.estimate(y);
  // DC estimated within a few percent.
  EXPECT_NEAR(std::abs(comp.dc() - Complex{0.2, -0.1}), 0.0, 0.02);

  // Image of a probe tone is strongly suppressed after compensation.
  Cvec probe = tone(fs, 200e3, 8192);
  Cvec probe_bad = apply_dc_offset(apply_iq_imbalance(probe, imb), Complex{0.2, -0.1});
  const Cvec fixed = comp.process(probe_bad);
  const double irr_before =
      lin_to_db(goertzel_power(probe_bad, 200e3, fs) / goertzel_power(probe_bad, -200e3, fs));
  const double irr_after =
      lin_to_db(goertzel_power(fixed, 200e3, fs) / goertzel_power(fixed, -200e3, fs));
  EXPECT_GT(irr_after, irr_before + 20.0);
  EXPECT_GT(irr_after, 40.0);
}

TEST(IqCompensator, EstimateValidation) {
  IqCompensator comp;
  Cvec tiny(8);
  EXPECT_THROW(comp.estimate(tiny), std::invalid_argument);
  Cvec zeros(64, Complex{});
  EXPECT_THROW(comp.estimate(zeros), std::invalid_argument);
}

class ImbalanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ImbalanceSweep, CompensatorHelpsAcrossSeverities) {
  Rng rng(2);
  const double fs = 1e6;
  const IqImbalance imb{GetParam(), deg_to_rad(GetParam() * 4.0)};
  Cvec cal = awgn(32768, 1.0, rng);
  const Cvec cal_bad = apply_iq_imbalance(cal, imb);
  IqCompensator comp;
  comp.estimate(cal_bad);
  const Cvec probe_bad = apply_iq_imbalance(tone(fs, 150e3, 8192), imb);
  const Cvec fixed = comp.process(probe_bad);
  const double image_before = goertzel_power(probe_bad, -150e3, fs);
  const double image_after = goertzel_power(fixed, -150e3, fs);
  EXPECT_LT(image_after, image_before * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Severities, ImbalanceSweep, ::testing::Values(0.5, 1.0, 2.0, 3.0));

}  // namespace
}  // namespace mmx::dsp
