// Kernel-equivalence suite for the DSP fast path (docs/DSP_FASTPATH.md):
// every rewritten kernel is checked against the retained pre-rewrite
// reference form (tests/reference/), and every *_into variant against its
// allocating wrapper.
//
// Tolerance rationale: the rotator kernels renormalize/resync every
// 256–1024 samples, bounding amplitude error to ~1e-13 and phase error to
// a ~sqrt(n)*eps random walk (~3e-13 rad at 1e7 samples), so 1e-9 is
// orders of magnitude of headroom. The *_into variants run the exact same
// FP operation sequence as their wrappers, so those are compared for bit
// identity, not tolerance.
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/dsp/envelope.hpp"
#include "mmx/dsp/fft.hpp"
#include "mmx/dsp/fft_plan.hpp"
#include "mmx/dsp/fir.hpp"
#include "mmx/dsp/goertzel.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/tone.hpp"
#include "mmx/dsp/workspace.hpp"
#include "mmx/phy/otam.hpp"
#include "reference_kernels.hpp"

namespace mmx::dsp {
namespace {

Cvec random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Cvec x(n);
  for (Complex& s : x) s = Complex{rng.gaussian(1.0), rng.gaussian(1.0)};
  return x;
}

double max_abs_diff(std::span<const Complex> a, std::span<const Complex> b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

// --- FFT plan vs reference recurrence and naive DFT --------------------

TEST(FastpathFft, PlanMatchesReferenceRecurrence) {
  for (std::size_t n : {1u, 2u, 8u, 64u, 1024u, 4096u}) {
    const Cvec x = random_signal(n, 7 + n);
    Cvec fast(x);
    Cvec ref(x);
    fft_inplace(fast);
    refdsp::fft_inplace(ref);
    EXPECT_LE(max_abs_diff(fast, ref), 1e-9 * std::sqrt(static_cast<double>(n)))
        << "forward n=" << n;
    ifft_inplace(fast);
    refdsp::ifft_inplace(ref);
    EXPECT_LE(max_abs_diff(fast, ref), 1e-9) << "roundtrip n=" << n;
  }
}

TEST(FastpathFft, PlanMatchesNaiveDft) {
  const std::size_t n = 512;
  const Cvec x = random_signal(n, 11);
  Cvec fast(x);
  fft_inplace(fast);
  const Cvec truth = refdsp::naive_dft(x, /*inverse=*/false);
  EXPECT_LE(max_abs_diff(fast, truth), 1e-9);
  Cvec inv(truth);
  ifft_inplace(inv);
  EXPECT_LE(max_abs_diff(inv, x), 1e-9);
}

TEST(FastpathFft, PlanCacheReturnsSameInstance) {
  const FftPlan& a = fft_plan(256);
  const FftPlan& b = fft_plan(256);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 256u);
  EXPECT_THROW(fft_plan(48), std::invalid_argument);
}

// --- Goertzel rotator vs per-sample trig -------------------------------

TEST(FastpathGoertzel, RotatorMatchesReferenceOverMillionSamples) {
  const std::size_t n = 1'000'000;
  const double fs = 16e6;
  const double f = 2.34e6;
  Cvec x = tone(fs, f, n);
  Rng rng(21);
  add_awgn(x, 0.1, rng);
  const double p_fast = goertzel_power(x, f, fs);
  const double p_ref = refdsp::goertzel_power(x, f, fs);
  EXPECT_GT(p_ref, 0.1);
  EXPECT_NEAR(p_fast / p_ref, 1.0, 1e-9);
  const Complex c_fast = goertzel(x, f, fs);
  const Complex c_ref = refdsp::goertzel(x, f, fs);
  EXPECT_LE(std::abs(c_fast - c_ref) / std::abs(c_ref), 1e-9);
}

TEST(FastpathGoertzel, StreamingBinMatchesReference) {
  const double fs = 1e6;
  const double f = 123.4e3;
  const Cvec x = random_signal(10'000, 3);
  GoertzelBin bin(f, fs);
  for (const Complex& s : x) bin.push(s);
  const double p_ref = refdsp::goertzel_power(x, f, fs);
  EXPECT_NEAR(bin.power() / p_ref, 1.0, 1e-9);
}

TEST(FastpathGoertzel, BankMatchesSingleBinSweeps) {
  const double fs = 16e6;
  const Cvec x = random_signal(4096, 5);
  const double freqs[] = {-2e6, -0.5e6, 1.1e6, 3e6};
  GoertzelBank bank({freqs[0], freqs[1], freqs[2], freqs[3]}, fs);
  double powers[4];
  bank.measure(x, powers);
  for (int i = 0; i < 4; ++i) {
    // Same per-bin FP operation sequence as the single-bin kernel: the
    // grouped sweep must be bit-identical, not merely close.
    EXPECT_DOUBLE_EQ(powers[i], goertzel_power(x, freqs[i], fs)) << "bin " << i;
  }
  // Odd group sizes exercise the 3/2/1-bin tails of the dispatcher.
  GoertzelBank bank3({freqs[0], freqs[1], freqs[2]}, fs);
  double p3[3];
  bank3.measure(x, p3);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(p3[i], goertzel_power(x, freqs[i], fs));
  GoertzelBank bank1({freqs[3]}, fs);
  double p1 = 0.0;
  bank1.measure(x, {&p1, 1});
  EXPECT_DOUBLE_EQ(p1, goertzel_power(x, freqs[3], fs));
}

// --- NCO rotator vs per-sample trig ------------------------------------

TEST(FastpathNco, MatchesReferenceOverMillionSamples) {
  const double fs = 16e6;
  const double f = 1.7e6;
  Nco fast(fs, f);
  refdsp::RefNco ref(fs, f);
  double m = 0.0;
  for (std::size_t i = 0; i < 1'000'000; ++i) m = std::max(m, std::abs(fast.next() - ref.next()));
  EXPECT_LE(m, 1e-9);
}

TEST(FastpathNco, AmplitudeAndPhaseDriftBoundedOverTenMillionSamples) {
  const double fs = 10e6;
  Nco nco(fs, 1.234567e6);
  double amp_err = 0.0;
  Complex last{};
  for (std::size_t i = 0; i < 10'000'000; ++i) {
    last = nco.next();
    amp_err = std::max(amp_err, std::abs(std::abs(last) - 1.0));
  }
  EXPECT_LE(amp_err, 1e-12);
  // The tracked phase is authoritative; the emitted phasor must agree
  // with it to within the resync interval's drift budget.
  const Complex from_phase = std::polar(1.0, nco.phase());
  Nco probe(fs, 1.234567e6);
  probe.set_phase(nco.phase());
  EXPECT_LE(std::abs(probe.next() - from_phase), 1e-12);
}

TEST(FastpathNco, RetuneSequenceMatchesReference) {
  // FSK-style retuning every 16 samples — the hot pattern in
  // otam_synthesize/fsk_modulate.
  const double fs = 16e6;
  Nco fast(fs, -2e6);
  refdsp::RefNco ref(fs, -2e6);
  Rng rng(9);
  double m = 0.0;
  for (int sym = 0; sym < 5000; ++sym) {
    const double f = (rng.uniform() < 0.5) ? -2e6 : 2e6;
    fast.set_frequency(f);
    ref.set_frequency(f);
    for (int i = 0; i < 16; ++i) m = std::max(m, std::abs(fast.next() - ref.next()));
  }
  EXPECT_LE(m, 1e-9);
}

TEST(FastpathNco, GenerateIntoMatchesGenerate) {
  const double fs = 8e6;
  Nco a(fs, 0.9e6);
  Nco b(fs, 0.9e6);
  const Cvec via_alloc = a.generate(1000);
  Cvec via_into(1000);
  b.generate_into(via_into);
  for (std::size_t i = 0; i < via_alloc.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_alloc[i].real(), via_into[i].real());
    EXPECT_DOUBLE_EQ(via_alloc[i].imag(), via_into[i].imag());
  }
}

TEST(FastpathChirp, MatchesReference) {
  const Cvec fast = chirp(10e6, -3e6, 3e6, 200'000);
  const Cvec ref = refdsp::chirp(10e6, -3e6, 3e6, 200'000);
  EXPECT_LE(max_abs_diff(fast, ref), 1e-9);
}

// --- FIR block path ----------------------------------------------------

TEST(FastpathFir, BlockPathBitIdenticalToSamplePath) {
  const Rvec taps = design_lowpass(1.0, 0.2, 31);
  const Cvec x = random_signal(4096, 13);
  FirFilter block_f(taps);
  FirFilter sample_f(taps);
  const Cvec block = block_f.process(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Complex s = sample_f.process(x[i]);
    ASSERT_DOUBLE_EQ(block[i].real(), s.real()) << i;
    ASSERT_DOUBLE_EQ(block[i].imag(), s.imag()) << i;
  }
  // State continuity: both filters must agree after the block, too.
  for (int i = 0; i < 100; ++i) {
    const Complex a = block_f.process(Complex{1.0, -0.5});
    const Complex b = sample_f.process(Complex{1.0, -0.5});
    ASSERT_DOUBLE_EQ(a.real(), b.real());
    ASSERT_DOUBLE_EQ(a.imag(), b.imag());
  }
}

TEST(FastpathFir, BlockPathMatchesReferenceRing) {
  const Rvec taps = design_lowpass(1.0, 0.1, 63);
  const Cvec x = random_signal(1000, 17);
  FirFilter f(taps);
  const Cvec fast = f.process(x);
  const Cvec ref = refdsp::fir_apply(taps, x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_DOUBLE_EQ(fast[i].real(), ref[i].real()) << i;
    ASSERT_DOUBLE_EQ(fast[i].imag(), ref[i].imag()) << i;
  }
}

TEST(FastpathFir, ProcessIntoSupportsAliasingAndShortBlocks) {
  const Rvec taps = design_lowpass(1.0, 0.25, 21);
  // Blocks shorter than the tap count exercise the history write-back.
  const Cvec x = random_signal(200, 19);
  FirFilter chunked(taps);
  FirFilter whole(taps);
  DspWorkspace ws;
  Cvec out(x.size());
  std::size_t pos = 0;
  const std::size_t chunks[] = {5, 1, 40, 3, 151};
  for (std::size_t c : chunks) {
    Cvec buf(x.begin() + pos, x.begin() + pos + c);
    chunked.process_into(buf, buf, ws);  // in-place (aliasing)
    std::copy(buf.begin(), buf.end(), out.begin() + pos);
    pos += c;
  }
  ASSERT_EQ(pos, x.size());
  const Cvec expect = whole.process(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_DOUBLE_EQ(out[i].real(), expect[i].real()) << i;
    ASSERT_DOUBLE_EQ(out[i].imag(), expect[i].imag()) << i;
  }
}

// --- *_into vs allocating wrappers: bit identity -----------------------

TEST(FastpathInto, AwgnIntoDrawForDrawIdentical) {
  Rng a(42);
  Rng b(42);
  const Cvec via_alloc = awgn(1000, 2.5, a);
  Cvec via_into(1000);
  awgn_into(via_into, 2.5, b);
  for (std::size_t i = 0; i < via_alloc.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_alloc[i].real(), via_into[i].real());
    EXPECT_DOUBLE_EQ(via_alloc[i].imag(), via_into[i].imag());
  }
}

TEST(FastpathInto, EnvelopeIntoBitIdentical) {
  const Cvec x = random_signal(2048, 23);
  const Rvec via_alloc = envelope(x, 8);
  Rvec via_into(x.size());
  envelope_into(x, via_into, 8);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(via_alloc[i], via_into[i]);

  const Rvec sym_alloc = symbol_envelopes(x, 16, 0.15);
  Rvec sym_into(x.size() / 16);
  symbol_envelopes_into(x, 16, 0.15, sym_into);
  for (std::size_t i = 0; i < sym_alloc.size(); ++i) EXPECT_DOUBLE_EQ(sym_alloc[i], sym_into[i]);
}

TEST(FastpathInto, OtamSynthesizeIntoBitIdentical) {
  phy::PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  const phy::OtamChannel ch{{1e-4, 0.0}, {1e-3, 0.0}};
  const rf::SpdtSwitch spdt;
  const phy::Bits bits = {1, 0, 1, 0, 1, 1, 0, 0, 1, 0};
  const Cvec via_alloc = phy::otam_synthesize(bits, cfg, ch, spdt);
  Cvec via_into;
  phy::otam_synthesize_into(bits, cfg, ch, spdt, via_into);
  ASSERT_EQ(via_alloc.size(), via_into.size());
  for (std::size_t i = 0; i < via_alloc.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_alloc[i].real(), via_into[i].real());
    EXPECT_DOUBLE_EQ(via_alloc[i].imag(), via_into[i].imag());
  }
}

// --- Workspace pool ----------------------------------------------------

TEST(FastpathWorkspace, LeasesReuseCapacityAfterWarmup) {
  DspWorkspace ws;
  {
    auto a = ws.cvec(1024);
    auto b = ws.rvec(512);
    EXPECT_EQ(ws.leased(), 2u);
    (*a)[0] = Complex{1.0, 2.0};
    (*b)[0] = 3.0;
  }
  EXPECT_EQ(ws.leased(), 0u);
  const std::size_t warm = ws.alloc_events();
  for (int i = 0; i < 100; ++i) {
    auto a = ws.cvec(1024);
    auto b = ws.rvec(512);
    auto c = ws.cvec(64);  // smaller than warm capacity: still no alloc after first round
    (void)a;
    (void)b;
    (void)c;
  }
  // One extra buffer was warmed by the first loop iteration (c), then the
  // pool must be allocation-free.
  const std::size_t after_first = ws.alloc_events();
  for (int i = 0; i < 100; ++i) {
    auto a = ws.cvec(1024);
    auto b = ws.rvec(512);
    auto c = ws.cvec(64);
    (void)a;
    (void)b;
    (void)c;
  }
  EXPECT_EQ(ws.alloc_events(), after_first);
  EXPECT_GE(after_first, warm);
}

}  // namespace
}  // namespace mmx::dsp
