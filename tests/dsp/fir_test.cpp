#include "mmx/dsp/fir.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"
#include "mmx/dsp/tone.hpp"
#include "mmx/dsp/types.hpp"

namespace mmx::dsp {
namespace {

TEST(FirDesign, LowpassDcGainIsUnity) {
  const Rvec h = design_lowpass(1e6, 100e3, 63);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FirDesign, LowpassSymmetricLinearPhase) {
  const Rvec h = design_lowpass(1e6, 100e3, 63);
  for (std::size_t i = 0; i < h.size() / 2; ++i) {
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
  }
}

TEST(FirDesign, RejectsBadArguments) {
  EXPECT_THROW(design_lowpass(1e6, 100e3, 64), std::invalid_argument);  // even taps
  EXPECT_THROW(design_lowpass(1e6, 600e3, 63), std::invalid_argument);  // cutoff > Nyquist
  EXPECT_THROW(design_lowpass(1e6, 0.0, 63), std::invalid_argument);
  EXPECT_THROW(design_bandpass(1e6, 200e3, 100e3, 63), std::invalid_argument);  // inverted band
}

TEST(FirFilter, PassbandAndStopbandAttenuation) {
  const double fs = 1e6;
  FirFilter lp(design_lowpass(fs, 100e3, 101));
  // Passband tone at 20 kHz nearly unscathed; stopband tone at 300 kHz
  // strongly attenuated.
  const double pass = std::abs(lp.frequency_response(20e3, fs));
  const double stop = std::abs(lp.frequency_response(300e3, fs));
  EXPECT_NEAR(pass, 1.0, 0.02);
  EXPECT_LT(amp_to_db(stop), -50.0);
}

TEST(FirFilter, BandpassSelectsBand) {
  const double fs = 1e6;
  FirFilter bp(design_bandpass(fs, 150e3, 250e3, 201));
  EXPECT_NEAR(std::abs(bp.frequency_response(200e3, fs)), 1.0, 0.02);
  EXPECT_LT(amp_to_db(std::abs(bp.frequency_response(50e3, fs))), -40.0);
  EXPECT_LT(amp_to_db(std::abs(bp.frequency_response(400e3, fs))), -40.0);
}

TEST(FirFilter, ImpulseResponseEqualsTaps) {
  const Rvec h = design_lowpass(1e6, 100e3, 31);
  FirFilter f(h);
  Cvec impulse(h.size(), Complex{});
  impulse[0] = Complex{1.0, 0.0};
  const Cvec out = f.process(impulse);
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_NEAR(out[i].real(), h[i], 1e-12);
}

TEST(FirFilter, BlockVsSampleProcessingIdentical) {
  const Rvec h = design_lowpass(1e6, 100e3, 31);
  FirFilter a(h);
  FirFilter b(h);
  const Cvec x = tone(1e6, 37e3, 256);
  const Cvec block = a.process(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(block[i] - b.process(x[i])), 0.0, 1e-12);
  }
}

TEST(FirFilter, ResetClearsState) {
  FirFilter f(design_lowpass(1e6, 100e3, 31));
  f.process(Complex{1.0, 0.0});
  f.reset();
  // After reset, a zero input must give exactly zero output.
  EXPECT_EQ(f.process(Complex{}), (Complex{0.0, 0.0}));
}

TEST(FirFilter, GroupDelay) {
  FirFilter f(design_lowpass(1e6, 100e3, 63));
  EXPECT_EQ(f.group_delay(), 31u);
}

TEST(FirFilter, EmptyTapsThrow) {
  EXPECT_THROW(FirFilter(Rvec{}), std::invalid_argument);
}

TEST(MovingAverage, WarmupAndSteadyState) {
  MovingAverage ma(4);
  EXPECT_DOUBLE_EQ(ma.process(4.0), 4.0);        // 4/1
  EXPECT_DOUBLE_EQ(ma.process(8.0), 6.0);        // 12/2
  EXPECT_DOUBLE_EQ(ma.process(0.0), 4.0);        // 12/3
  EXPECT_DOUBLE_EQ(ma.process(0.0), 3.0);        // 12/4
  EXPECT_DOUBLE_EQ(ma.process(0.0), 2.0);        // (8+0+0+0)/4
}

TEST(MovingAverage, ZeroLengthThrows) {
  EXPECT_THROW(MovingAverage(0), std::invalid_argument);
}

class FirCutoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(FirCutoffSweep, HalfPowerAtCutoff) {
  // The windowed-sinc -6 dB point should sit at the design cutoff for any
  // cutoff across the band.
  const double fs = 1e6;
  const double fc = GetParam();
  FirFilter lp(design_lowpass(fs, fc, 201));
  const double mag = std::abs(lp.frequency_response(fc, fs));
  EXPECT_NEAR(amp_to_db(mag), -6.0, 0.7);
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, FirCutoffSweep,
                         ::testing::Values(50e3, 100e3, 150e3, 200e3, 300e3, 400e3));

}  // namespace
}  // namespace mmx::dsp
