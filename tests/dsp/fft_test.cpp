#include "mmx/dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/tone.hpp"

namespace mmx::dsp {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft, DeltaTransformsToFlat) {
  Cvec x(8, Complex{});
  x[0] = Complex{1.0, 0.0};
  fft_inplace(x);
  for (const Complex& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ToneLandsInCorrectBin) {
  const std::size_t n = 64;
  // exp(j 2 pi 5 t / n) -> bin 5 with magnitude n.
  Cvec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = kTwoPi * 5.0 * static_cast<double>(i) / static_cast<double>(n);
    x[i] = Complex{std::cos(ph), std::sin(ph)};
  }
  fft_inplace(x);
  EXPECT_NEAR(std::abs(x[5]), static_cast<double>(n), 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != 5) {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTrip) {
  Rng rng(11);
  Cvec x = awgn(256, 1.0, rng);
  Cvec y = x;
  fft_inplace(y);
  ifft_inplace(y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
}

TEST(Fft, ParsevalHolds) {
  Rng rng(13);
  Cvec x = awgn(512, 2.0, rng);
  const double time_energy = mean_power(x) * static_cast<double>(x.size());
  Cvec y = x;
  fft_inplace(y);
  double freq_energy = 0.0;
  for (const Complex& v : y) freq_energy += std::norm(v);
  freq_energy /= static_cast<double>(y.size());
  EXPECT_NEAR(freq_energy, time_energy, time_energy * 1e-10);
}

TEST(Fft, NonPow2SizeThrows) {
  Cvec x(12);
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
}

TEST(Fft, OutOfPlacePadsToPow2) {
  Cvec x(100, Complex{1.0, 0.0});
  const Cvec y = fft(x);
  EXPECT_EQ(y.size(), 128u);
}

TEST(Fft, BinFrequency) {
  EXPECT_DOUBLE_EQ(bin_frequency(0, 8, 800.0), 0.0);
  EXPECT_DOUBLE_EQ(bin_frequency(1, 8, 800.0), 100.0);
  EXPECT_DOUBLE_EQ(bin_frequency(7, 8, 800.0), -100.0);  // negative side
  EXPECT_THROW(bin_frequency(0, 0, 800.0), std::invalid_argument);
}

TEST(Fft, EstimateToneFrequencyOffBin) {
  // Frequency deliberately between bins; parabolic interpolation should
  // get within a fraction of a bin.
  const double fs = 1e6;
  const double f = 123'456.7;
  const Cvec x = tone(fs, f, 2048);
  const double bin_width = fs / 2048.0;
  EXPECT_NEAR(estimate_tone_frequency(x, fs), f, bin_width / 4.0);
}

TEST(Fft, EstimateToneFrequencyUnderNoise) {
  Rng rng(5);
  const double fs = 1e6;
  const double f = -200e3;
  Cvec x = tone(fs, f, 4096);
  add_awgn_snr(x, 0.0, rng);  // 0 dB SNR: tone still dominates one bin
  EXPECT_NEAR(estimate_tone_frequency(x, fs), f, 500.0);
}

TEST(Fft, PowerSpectrumPeak) {
  const double fs = 1e6;
  const Cvec x = tone(fs, 250e3, 1024);
  const Rvec p = power_spectrum(x, WindowKind::kRect);
  EXPECT_NEAR(bin_frequency(peak_bin(p), p.size(), fs), 250e3, fs / 1024.0);
}

class FftSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeSweep, RoundTripAcrossSizes) {
  Rng rng(17);
  Cvec x = awgn(GetParam(), 1.0, rng);
  Cvec y = x;
  fft_inplace(y);
  ifft_inplace(y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeSweep, ::testing::Values(2, 4, 16, 128, 1024, 4096));

}  // namespace
}  // namespace mmx::dsp
