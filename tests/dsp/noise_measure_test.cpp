#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/measure.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/tone.hpp"

namespace mmx::dsp {
namespace {

TEST(Noise, PowerMatchesRequest) {
  Rng rng(1);
  const Cvec n = awgn(200000, 0.5, rng);
  EXPECT_NEAR(mean_power(n), 0.5, 0.01);
}

TEST(Noise, ZeroPowerGivesZeros) {
  Rng rng(1);
  const Cvec n = awgn(100, 0.0, rng);
  EXPECT_DOUBLE_EQ(mean_power(n), 0.0);
}

TEST(Noise, NegativePowerThrows) {
  Rng rng(1);
  EXPECT_THROW(awgn(10, -1.0, rng), std::invalid_argument);
  Cvec x(10);
  EXPECT_THROW(add_awgn(x, -1.0, rng), std::invalid_argument);
}

TEST(Noise, IqBalance) {
  Rng rng(2);
  const Cvec n = awgn(200000, 1.0, rng);
  double pi = 0.0;
  double pq = 0.0;
  for (const Complex& s : n) {
    pi += s.real() * s.real();
    pq += s.imag() * s.imag();
  }
  pi /= static_cast<double>(n.size());
  pq /= static_cast<double>(n.size());
  EXPECT_NEAR(pi, 0.5, 0.01);
  EXPECT_NEAR(pq, 0.5, 0.01);
}

TEST(Noise, AddAwgnSnrProducesRequestedSnr) {
  Rng rng(3);
  Cvec x = tone(1e6, 100e3, 100000);
  Cvec clean = x;
  add_awgn_snr(x, 12.0, rng);
  EXPECT_NEAR(estimate_snr_db(x, clean), 12.0, 0.5);
}

TEST(Measure, SnrInsensitiveToGainAndPhase) {
  Rng rng(4);
  Cvec ref = tone(1e6, 70e3, 50000);
  Cvec rx(ref.size());
  const Complex g = 0.02 * Complex{std::cos(1.1), std::sin(1.1)};
  for (std::size_t i = 0; i < ref.size(); ++i) rx[i] = g * ref[i];
  add_awgn(rx, std::norm(g) * db_to_lin(-15.0), rng);  // 15 dB below signal
  EXPECT_NEAR(estimate_snr_db(rx, ref), 15.0, 0.5);
}

TEST(Measure, PerfectMatchClampsHigh) {
  const Cvec x = tone(1e6, 10e3, 128);
  EXPECT_GE(estimate_snr_db(x, x), 190.0);
}

TEST(Measure, MismatchedSizesThrow) {
  Cvec a(10);
  Cvec b(11);
  EXPECT_THROW(estimate_snr_db(a, b), std::invalid_argument);
  EXPECT_THROW(evm_rms(a, b), std::invalid_argument);
  EXPECT_THROW(estimate_snr_db(Cvec{}, Cvec{}), std::invalid_argument);
}

TEST(Measure, ZeroReferenceThrows) {
  Cvec a(10, Complex{1.0, 0.0});
  Cvec z(10, Complex{});
  EXPECT_THROW(estimate_snr_db(a, z), std::invalid_argument);
  EXPECT_THROW(evm_rms(a, z), std::invalid_argument);
}

TEST(Measure, EvmOfScaledSignal) {
  const Cvec ref = tone(1e6, 10e3, 1000);
  Cvec rx(ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) rx[i] = 1.1 * ref[i];
  // 10% amplitude error -> EVM = 0.1.
  EXPECT_NEAR(evm_rms(rx, ref), 0.1, 1e-9);
}

class SnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(SnrSweep, EstimatorTracksTrueSnr) {
  Rng rng(42);
  Cvec x = tone(1e6, 33e3, 65536);
  const Cvec clean = x;
  add_awgn_snr(x, GetParam(), rng);
  EXPECT_NEAR(estimate_snr_db(x, clean), GetParam(), 0.6);
}

INSTANTIATE_TEST_SUITE_P(Levels, SnrSweep,
                         ::testing::Values(-10.0, -5.0, 0.0, 5.0, 10.0, 20.0, 30.0, 40.0));

}  // namespace
}  // namespace mmx::dsp
