#include "mmx/dsp/tone.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/units.hpp"
#include "mmx/dsp/fft.hpp"

namespace mmx::dsp {
namespace {

TEST(Nco, UnitAmplitude) {
  Nco nco(1e6, 12345.0);
  for (int i = 0; i < 1000; ++i) EXPECT_NEAR(std::abs(nco.next()), 1.0, 1e-12);
}

TEST(Nco, FrequencyAccuracy) {
  const double fs = 1e6;
  const double f = 50e3;
  Cvec x = tone(fs, f, 4096);
  EXPECT_NEAR(estimate_tone_frequency(x, fs), f, 5.0);
}

TEST(Nco, NegativeFrequency) {
  const double fs = 1e6;
  Cvec x = tone(fs, -100e3, 4096);
  EXPECT_NEAR(estimate_tone_frequency(x, fs), -100e3, 10.0);
}

TEST(Nco, PhaseContinuityAcrossRetune) {
  // Retuning mid-stream must not jump the phase: consecutive samples stay
  // close for small frequency steps (this is what makes FSK via VCO
  // tuning-voltage nudges spectrally clean, paper §6.3).
  Nco nco(1e6, 10e3);
  Complex prev = nco.next();
  for (int i = 0; i < 100; ++i) prev = nco.next();
  nco.set_frequency(12e3);
  const Complex next = nco.next();
  // Max per-sample rotation at 12 kHz/1 MHz is ~0.0754 rad.
  EXPECT_LT(std::abs(std::arg(next * std::conj(prev))), 0.1);
}

TEST(Nco, RejectsBadArguments) {
  EXPECT_THROW(Nco(0.0, 1.0), std::invalid_argument);
  Nco nco(1e6);
  EXPECT_THROW(nco.set_frequency(600e3), std::invalid_argument);  // > Nyquist
}

TEST(Tone, StartPhaseRespected) {
  Cvec x = tone(1e6, 0.0, 4, kPi / 2.0);
  EXPECT_NEAR(x[0].real(), 0.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), 1.0, 1e-12);
}

TEST(Chirp, SweepsFrequency) {
  const double fs = 1e6;
  Cvec x = chirp(fs, 10e3, 200e3, 8192);
  // The first quarter should look like a lower tone than the last quarter.
  const std::span<const Complex> head(x.data(), 2048);
  const std::span<const Complex> tail(x.data() + 6144, 2048);
  const double f_head = estimate_tone_frequency(head, fs);
  const double f_tail = estimate_tone_frequency(tail, fs);
  EXPECT_LT(f_head, 80e3);
  EXPECT_GT(f_tail, 140e3);
}

TEST(Chirp, ZeroLength) {
  EXPECT_TRUE(chirp(1e6, 0.0, 1000.0, 0).empty());
}

}  // namespace
}  // namespace mmx::dsp
