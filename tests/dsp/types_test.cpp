#include "mmx/dsp/types.hpp"

#include <gtest/gtest.h>

namespace mmx::dsp {
namespace {

TEST(Types, MeanPowerOfConstant) {
  Cvec x(100, Complex{3.0, 4.0});  // |x| = 5, |x|^2 = 25
  EXPECT_DOUBLE_EQ(mean_power(x), 25.0);
  EXPECT_DOUBLE_EQ(rms(x), 5.0);
}

TEST(Types, MeanPowerEmptyIsZero) {
  Cvec x;
  EXPECT_DOUBLE_EQ(mean_power(x), 0.0);
  EXPECT_DOUBLE_EQ(rms(x), 0.0);
}

TEST(Types, SetMeanPower) {
  Cvec x{{1.0, 0.0}, {0.0, 2.0}, {-3.0, 0.0}};
  set_mean_power(x, 7.0);
  EXPECT_NEAR(mean_power(x), 7.0, 1e-12);
}

TEST(Types, SetMeanPowerOnZeroSignalIsNoop) {
  Cvec x(10, Complex{});
  set_mean_power(x, 5.0);
  EXPECT_DOUBLE_EQ(mean_power(x), 0.0);
}

TEST(Types, AddInto) {
  Cvec a{{1.0, 1.0}, {2.0, 0.0}};
  Cvec b{{0.5, -1.0}, {1.0, 1.0}};
  add_into(a, b);
  EXPECT_EQ(a[0], (Complex{1.5, 0.0}));
  EXPECT_EQ(a[1], (Complex{3.0, 1.0}));
}

TEST(Types, AddIntoSizeMismatchThrows) {
  Cvec a(3);
  Cvec b(4);
  EXPECT_THROW(add_into(a, b), std::invalid_argument);
}

TEST(Types, Magnitudes) {
  Cvec x{{3.0, 4.0}, {0.0, -2.0}};
  const Rvec m = magnitudes(x);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 5.0);
  EXPECT_DOUBLE_EQ(m[1], 2.0);
}

}  // namespace
}  // namespace mmx::dsp
