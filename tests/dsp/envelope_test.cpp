#include "mmx/dsp/envelope.hpp"

#include <gtest/gtest.h>

#include "mmx/common/rng.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/tone.hpp"

namespace mmx::dsp {
namespace {

Cvec ask_burst(double fs, std::size_t sps, std::initializer_list<int> bits, double a1, double a0) {
  Cvec out;
  Nco nco(fs, 1e6);
  for (int b : bits) {
    const double amp = b ? a1 : a0;
    for (std::size_t i = 0; i < sps; ++i) out.push_back(amp * nco.next());
  }
  return out;
}

TEST(Envelope, ConstantToneHasFlatEnvelope) {
  const Cvec x = tone(1e6, 100e3, 500);
  const Rvec env = envelope(x);
  for (double v : env) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Envelope, TracksAskLevels) {
  const double fs = 100e6;
  const std::size_t sps = 200;
  const Cvec x = ask_burst(fs, sps, {1, 0, 1, 1, 0}, 1.0, 0.25);
  const Rvec env = envelope(x, 1);
  // Middle of first symbol ~ 1.0, middle of second ~ 0.25.
  EXPECT_NEAR(env[sps / 2], 1.0, 0.05);
  EXPECT_NEAR(env[sps + sps / 2], 0.25, 0.05);
}

TEST(Envelope, SmoothingReducesNoiseVariance) {
  Rng rng(21);
  Cvec x = tone(1e6, 50e3, 5000);
  add_awgn_snr(x, 10.0, rng);
  const Rvec raw = envelope(x, 1);
  const Rvec smooth = envelope(x, 32);
  auto variance = [](const Rvec& v) {
    double m = 0.0;
    for (double s : v) m += s;
    m /= static_cast<double>(v.size());
    double acc = 0.0;
    for (double s : v) acc += (s - m) * (s - m);
    return acc / static_cast<double>(v.size());
  };
  // Ignore the smoother's warm-up region.
  const Rvec raw_tail(raw.begin() + 64, raw.end());
  const Rvec smooth_tail(smooth.begin() + 64, smooth.end());
  EXPECT_LT(variance(smooth_tail), variance(raw_tail) / 4.0);
}

TEST(Envelope, BadSmoothLenThrows) {
  Cvec x(10);
  EXPECT_THROW(envelope(x, 0), std::invalid_argument);
}

TEST(SymbolEnvelopes, PerSymbolMeans) {
  const double fs = 100e6;
  const std::size_t sps = 100;
  const Cvec x = ask_burst(fs, sps, {1, 0, 1}, 0.8, 0.2);
  const Rvec se = symbol_envelopes(x, sps, 0.1);
  ASSERT_EQ(se.size(), 3u);
  EXPECT_NEAR(se[0], 0.8, 0.02);
  EXPECT_NEAR(se[1], 0.2, 0.02);
  EXPECT_NEAR(se[2], 0.8, 0.02);
}

TEST(SymbolEnvelopes, GuardTrimsTransitions) {
  // Put a huge glitch exactly at a symbol boundary: a guarded measurement
  // must not see it.
  const double fs = 100e6;
  const std::size_t sps = 100;
  Cvec x = ask_burst(fs, sps, {1, 1}, 0.5, 0.5);
  x[sps] = Complex{50.0, 0.0};
  const Rvec guarded = symbol_envelopes(x, sps, 0.2);
  EXPECT_NEAR(guarded[1], 0.5, 0.02);
  const Rvec unguarded = symbol_envelopes(x, sps, 0.0);
  EXPECT_GT(unguarded[1], 0.9);  // glitch leaks in without the guard
}

TEST(SymbolEnvelopes, TruncatesPartialSymbol) {
  Cvec x(250);
  const Rvec se = symbol_envelopes(x, 100);
  EXPECT_EQ(se.size(), 2u);
}

TEST(SymbolEnvelopes, BadArgumentsThrow) {
  Cvec x(100);
  EXPECT_THROW(symbol_envelopes(x, 0), std::invalid_argument);
  EXPECT_THROW(symbol_envelopes(x, 10, 0.5), std::invalid_argument);
  EXPECT_THROW(symbol_envelopes(x, 10, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::dsp
