// Band-scan (energy detection) tests.
#include <gtest/gtest.h>

#include <cmath>

#include "mmx/common/rng.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/resample.hpp"
#include "mmx/dsp/spectrum.hpp"
#include "mmx/dsp/tone.hpp"

namespace mmx::dsp {
namespace {

TEST(BandScan, FindsTwoTransmitters) {
  Rng rng(1);
  const double fs = 64e6;
  const std::size_t n = 16384;
  // Two "nodes" 20 dB over the noise floor at -18 and +10 MHz.
  Cvec x = awgn(n, 1e-4, rng);
  const Cvec a = tone(fs, -18e6, n);
  const Cvec b = tone(fs, 10e6, n);
  for (std::size_t i = 0; i < n; ++i) x[i] += 0.1 * a[i] + 0.05 * b[i];

  const auto hits = detect_active_channels(x, fs, 4e6, 10.0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_NEAR(hits[0].center_hz, -18e6, 2e6);
  EXPECT_NEAR(hits[1].center_hz, 10e6, 2e6);
  EXPECT_GT(hits[0].above_floor_db, 10.0);
  // The stronger node reports more power.
  EXPECT_GT(hits[0].power_db, hits[1].power_db);
}

TEST(BandScan, QuietBandReportsNothing) {
  Rng rng(2);
  const Cvec x = awgn(8192, 1.0, rng);
  EXPECT_TRUE(detect_active_channels(x, 64e6, 4e6, 10.0).empty());
}

TEST(BandScan, ThresholdControlsSensitivity) {
  Rng rng(3);
  const double fs = 64e6;
  const std::size_t n = 16384;
  Cvec x = awgn(n, 1e-2, rng);
  const Cvec a = tone(fs, 6e6, n);
  for (std::size_t i = 0; i < n; ++i) x[i] += 0.08 * a[i];  // ~ mild margin
  const auto strict = detect_active_channels(x, fs, 4e6, 25.0);
  const auto loose = detect_active_channels(x, fs, 4e6, 6.0);
  EXPECT_GE(loose.size(), strict.size());
  EXPECT_FALSE(loose.empty());
}

TEST(BandScan, Validation) {
  Cvec tiny(16);
  EXPECT_THROW(detect_active_channels(tiny, 1e6, 1e5), std::invalid_argument);
  Cvec x(256, Complex{1.0, 0.0});
  EXPECT_THROW(detect_active_channels(x, 1e6, 0.0), std::invalid_argument);
  EXPECT_THROW(detect_active_channels(x, 1e6, 2e6), std::invalid_argument);
  EXPECT_THROW(detect_active_channels(x, 1e6, 1e5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mmx::dsp
