// Smart home: security cameras and sensors streaming to a home hub while
// people walk around (the paper's §1/§4 motivating deployment).
//
// Six HD cameras (8-10 Mbps each) and four low-rate sensors join one AP.
// A crowd of three residents walks the room; we deliver frames for ten
// seconds of wall-clock time (decimated to one probe per 100 ms per
// device) and report per-device delivery and the blockage events OTAM
// rode through.
#include <cstdio>
#include <vector>

#include "mmx/channel/blockage.hpp"
#include "mmx/common/units.hpp"
#include "mmx/core/network.hpp"
#include "mmx/sim/traffic.hpp"

int main() {
  using namespace mmx;
  Rng rng(2026);

  core::Network net(channel::Room(8.0, 5.0), channel::Pose{{7.6, 2.5}, kPi});

  struct Device {
    const char* name;
    channel::Pose pose;
    double rate;
    std::uint16_t id = 0;
    int sent = 0;
    int delivered = 0;
    int inverted = 0;
  };
  std::vector<Device> devices = {
      {"door-cam", {{0.4, 0.4}, deg_to_rad(35.0)}, 10_Mbps},
      {"patio-cam", {{0.4, 4.6}, deg_to_rad(-35.0)}, 10_Mbps},
      {"hall-cam", {{3.0, 0.4}, deg_to_rad(55.0)}, 8_Mbps},
      {"kitchen-cam", {{3.0, 4.6}, deg_to_rad(-55.0)}, 8_Mbps},
      {"garage-cam", {{5.5, 0.6}, deg_to_rad(60.0)}, 8_Mbps},
      {"nursery-cam", {{5.5, 4.4}, deg_to_rad(-60.0)}, 10_Mbps},
      {"thermostat", {{2.0, 2.5}, 0.0}, 1_Mbps},
      {"smoke-sensor", {{4.0, 2.6}, 0.0}, 1_Mbps},
      {"door-lock", {{0.6, 2.4}, 0.0}, 1_Mbps},
      {"air-quality", {{6.5, 2.4}, 0.0}, 1_Mbps},
  };

  for (Device& d : devices) {
    const auto id = net.join(d.pose, d.rate);
    if (!id) {
      std::printf("%s: JOIN DENIED\n", d.name);
      return 1;
    }
    d.id = *id;
  }
  std::printf("%zu devices joined; spectrum in use: %.0f MHz of %.0f MHz\n\n",
              devices.size(),
              (kIsmBandwidthHz - net.ap().init().allocator().free_bandwidth_hz()) / 1e6,
              kIsmBandwidthHz / 1e6);

  // Three residents wander the room at walking pace.
  channel::WalkingCrowd crowd(net.room(), 3, 1.4, rng);

  const std::vector<std::uint8_t> video_chunk(512, 0xAA);
  const std::vector<std::uint8_t> sensor_report(16, 0x01);
  const double dt = 0.1;  // probe cadence
  for (double t = 0.0; t < 10.0; t += dt) {
    crowd.update(dt, rng);
    for (Device& d : devices) {
      const bool is_camera = d.rate > 2_Mbps;
      const auto r = net.send(d.id, is_camera ? video_chunk : sensor_report);
      ++d.sent;
      d.delivered += r.delivered;
      d.inverted += r.inverted;
    }
  }

  std::puts("  device         rate     frames  delivered  blockage-inversions");
  for (const Device& d : devices) {
    std::printf("  %-12s %4.0f Mbps  %6d  %8.1f%%  %19d\n", d.name, d.rate / 1e6, d.sent,
                100.0 * d.delivered / d.sent, d.inverted);
  }

  double worst = 100.0;
  for (const Device& d : devices) worst = std::min(worst, 100.0 * d.delivered / d.sent);
  std::printf("\nworst device delivery over 10 s with 3 people walking: %.1f%%\n", worst);
  return 0;
}
