// Apartment coverage sweep: where in the flat can a device actually live?
//
// `apartment.cpp` walks six hand-picked devices through the floor plan;
// this sweep answers the deployment question behind it — over thousands
// of random placements and orientations, what fraction of the apartment
// does one hub cover, and how does the concrete-and-metal core carve it
// up? Trials fan across the sweep engine's work-stealing pool, so the
// answer is the same at any `--threads` (and scales to "paint the whole
// floor plan" trial counts).
#include <cstdio>
#include <vector>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/core/network.hpp"
#include "mmx/sim/stats.hpp"
#include "mmx/sim/sweep.hpp"

#include "harness.hpp"

using namespace mmx;

namespace {

// Same floor plan as examples/apartment.cpp: 10 x 6 m, living room
// right, bedroom top-left, kitchen bottom-left, metal fridge line.
channel::Room build_flat() {
  channel::Room flat(10.0, 6.0);
  flat.add_partition({{4.0, 3.9}, {4.0, 6.0}}, channel::drywall());
  flat.add_partition({{4.0, 3.0}, {4.0, 3.0 + 1e-6}}, channel::drywall());  // jamb stub
  flat.add_partition({{4.0, 0.0}, {4.0, 2.1}}, channel::drywall());
  flat.add_partition({{3.2, 0.2}, {3.2, 1.6}}, channel::metal());
  return flat;
}

const char* region_of(const Vec2& pos) {
  if (pos.x >= 4.0) return "living";
  return pos.y >= 3.0 ? "bedroom" : "kitchen";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt =
      bench::parse_args(argc, argv, 2000, 7, "random device placements in the flat");
  const channel::Room flat = build_flat();
  const channel::Pose hub{{9.6, 3.0}, kPi};

  struct PlacementLink {
    double x_m;
    double y_m;
    double snr_db;
    double contrast_db;
    int joined;
  };
  sim::SweepRunner runner(opt.sweep);
  const auto sweep = runner.run([&](std::size_t, Rng& rng) {
    const channel::Pose pose{{rng.uniform(0.3, 9.7), rng.uniform(0.3, 5.7)},
                             deg_to_rad(rng.uniform(-180.0, 180.0))};
    core::Network net(flat, hub);
    PlacementLink link{pose.position.x, pose.position.y, 0.0, 0.0, 0};
    if (const auto id = net.join(pose, 1_Mbps)) {
      const auto m = net.measure(*id);
      link.snr_db = m.snr_db;
      link.contrast_db = m.contrast_db;
      link.joined = 1;
    }
    return link;
  });

  struct RegionStats {
    const char* name;
    std::vector<double> snr_db;
    std::size_t placements = 0;
    std::size_t joined = 0;
    std::size_t clean = 0;  // > 15 dB
  };
  RegionStats regions[] = {{"living", {}, 0, 0, 0}, {"bedroom", {}, 0, 0, 0},
                           {"kitchen", {}, 0, 0, 0}};
  std::vector<double> joined_snr_db;
  for (const PlacementLink& link : sweep.trials) {
    const char* name = region_of({link.x_m, link.y_m});
    for (RegionStats& r : regions) {
      if (r.name != name) continue;
      ++r.placements;
      if (link.joined != 0) {
        ++r.joined;
        r.snr_db.push_back(link.snr_db);
        joined_snr_db.push_back(link.snr_db);
        if (link.snr_db > 15.0) ++r.clean;
      }
    }
  }

  std::printf("=== apartment coverage: %zu random placements, one hub ===\n\n",
              sweep.trials.size());
  std::puts("  region    placements   joined   clean (>15 dB)   median SNR   p10 SNR");
  for (const RegionStats& r : regions) {
    if (r.placements == 0 || r.snr_db.empty()) continue;
    std::printf("  %-8s  %10zu   %5.1f%%   %13.1f%%   %8.1f dB   %5.1f dB\n", r.name,
                r.placements, 100.0 * static_cast<double>(r.joined) / static_cast<double>(r.placements),
                100.0 * static_cast<double>(r.clean) / static_cast<double>(r.placements),
                sim::median(r.snr_db), sim::percentile(r.snr_db, 10.0));
  }

  std::puts("\nreading: the drywall rooms stay serviceable nearly everywhere; the");
  std::puts("strip behind the metal fridge line is the one true dead zone — hub");
  std::puts("placement should be planned against metal, not against drywall.");

  bench::report_timing(sweep);
  bench::JsonReport report("apartment_sweep", opt);
  report.record(sweep);
  report.add_metric("snr_joined_db", joined_snr_db);
  return report.write() ? 0 : 1;
}
