// Quickstart: one mmX node streaming to an AP across a room.
//
// Demonstrates the three verbs of the public API — join (side-channel
// initialization), send (sample-level OTAM frame transport), measure
// (link budget) — plus the OTAM headline: park a person on the line of
// sight and the frame still arrives.
#include <cstdio>
#include <vector>

#include "mmx/channel/blockage.hpp"
#include "mmx/common/units.hpp"
#include "mmx/core/network.hpp"

int main() {
  using namespace mmx;

  // A 6 x 4 m room with the AP on one wall.
  core::Network net(channel::Room(6.0, 4.0), channel::Pose{{5.5, 2.0}, kPi});

  // A camera joins, asking for 10 Mbps (HD video, paper §1).
  const auto cam = net.join({{1.0, 2.0}, 0.0}, 10_Mbps);
  if (!cam) {
    std::puts("AP denied the rate request");
    return 1;
  }
  const auto& node = net.node(*cam);
  std::printf("camera joined: node %u, channel %.1f MHz wide at %.4f GHz, %.0f Mbps\n",
              node.id(), node.grant().channel.bandwidth_hz / 1e6,
              node.grant().channel.center_hz / 1e9, node.bit_rate_bps() / 1e6);
  std::printf("device power %.2f W -> %.1f nJ/bit\n", node.power_w(),
              node.energy_per_bit_j() * 1e9);

  // Send a frame with a clear line of sight.
  const std::vector<std::uint8_t> payload(256, 0x42);
  core::SendReport r = net.send(*cam, payload);
  std::printf("\nclear LoS:   delivered=%s  SNR=%.1f dB  contrast=%.1f dB  inverted=%s\n",
              r.delivered ? "yes" : "NO", r.snr_db, r.contrast_db, r.inverted ? "yes" : "no");

  // A person walks in and stands right on the line of sight...
  channel::park_blocker_on_los(net.room(), {1.0, 2.0}, {5.5, 2.0});
  r = net.send(*cam, payload);
  std::printf("blocked LoS: delivered=%s  SNR=%.1f dB  contrast=%.1f dB  inverted=%s\n",
              r.delivered ? "yes" : "NO", r.snr_db, r.contrast_db, r.inverted ? "yes" : "no");
  std::puts("\n(OTAM keeps the link: the bits invert when Beam 0's reflection");
  std::puts(" outruns the blocked Beam 1, and the preamble flips them back.)");
  return 0;
}
