// Spectrum planner: watch the AP's initialization protocol pack the
// 250 MHz ISM band (paper §7) — FDM by rate demand, then SDM groups over
// TMA harmonics when the band runs out.
#include <cstdio>
#include <vector>

#include "mmx/common/units.hpp"
#include "mmx/mac/init_protocol.hpp"

int main() {
  using namespace mmx;

  mac::InitProtocol ap(mac::FdmAllocator(kIsmLowHz, kIsmHighHz, 1e6), rf::Vco{});

  struct Ask {
    const char* what;
    double rate;
    double bearing_deg;
  };
  // A day in the life of a busy deployment: big video feeds first, then
  // more cameras than the band can hold, then sensors squeezed between.
  const std::vector<Ask> asks = {
      {"4K camera", 60e6, 0.0},    {"4K camera", 60e6, 25.0},  {"4K camera", 60e6, -25.0},
      {"HD camera", 10e6, 10.0},   {"HD camera", 10e6, -10.0}, {"HD camera", 10e6, 30.0},
      {"HD camera (SDM)", 60e6, 14.0}, {"HD camera (SDM)", 60e6, -14.0},
      {"sensor", 1e6, 5.0},        {"sensor", 1e6, -5.0},      {"sensor", 1e6, 20.0},
  };

  std::puts("=== mmX spectrum planner: 250 MHz ISM band at 24 GHz ===\n");
  std::puts("  id  request            rate     decision    channel [GHz]        BW      harmonic");
  std::uint16_t id = 1;
  for (const Ask& a : asks) {
    const auto reply = ap.handle(mac::ChannelRequest{id, a.rate, deg_to_rad(a.bearing_deg)});
    if (const auto* g = std::get_if<mac::ChannelGrant>(&reply)) {
      std::printf("  %2u  %-16s %4.0f Mbps   GRANT     %.4f-%.4f  %5.1f MHz   %+d\n", id,
                  a.what, a.rate / 1e6, g->channel.low_hz() / 1e9, g->channel.high_hz() / 1e9,
                  g->channel.bandwidth_hz / 1e6, g->sdm_harmonic);
    } else {
      std::printf("  %2u  %-16s %4.0f Mbps   DENY      (no spectrum / no separable harmonic)\n",
                  id, a.what, a.rate / 1e6);
    }
    ++id;
  }

  std::printf("\nband utilisation: %.0f of %.0f MHz allocated, largest free gap %.1f MHz\n",
              (kIsmBandwidthHz - ap.allocator().free_bandwidth_hz()) / 1e6,
              kIsmBandwidthHz / 1e6, ap.allocator().largest_gap_hz() / 1e6);
  std::printf("grants outstanding: %zu\n", ap.grants().size());

  // Tear one camera down and show the gap being reused.
  ap.release(1);
  const auto reuse = ap.handle(mac::ChannelRequest{99, 40e6, 45.0 * kPi / 180.0});
  if (const auto* g = std::get_if<mac::ChannelGrant>(&reuse)) {
    std::printf("\nafter releasing node 1, a 40 Mbps joiner reuses the gap at %.4f GHz\n",
                g->channel.center_hz / 1e9);
  }
  return 0;
}
