// OTAM vs phased-array beam search on a moving node.
//
// A node pans back and forth (a camera on a swivel mount, or a wearable).
// The phased-array baseline must re-search whenever its beam goes stale;
// mmX never searches. We integrate delivered airtime and search overhead
// over a 60-second pan and print the ledger the paper's §6 argues from.
#include <cstdio>

#include "mmx/baseline/beam_search.hpp"
#include "mmx/baseline/fixed_beam.hpp"
#include "mmx/common/units.hpp"

int main() {
  using namespace mmx;

  channel::Room room(6.0, 4.0);
  channel::RayTracer tracer(room);
  const channel::Pose ap{{5.0, 2.0}, kPi};
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_antenna;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;
  baseline::BeamSearchNode searcher;

  const Vec2 node_pos{1.0, 2.0};
  const double kPanRate = deg_to_rad(20.0);  // deg/s swivel
  const double kSnrFloor = 10.0;             // link considered usable above this
  const double dt = 0.05;

  double otam_up = 0.0;
  double search_up = 0.0;
  double search_overhead_s = 0.0;
  double search_energy_j = 0.0;
  int searches = 0;

  std::size_t current_beam = 0;
  bool have_beam = false;

  for (double t = 0.0; t < 60.0; t += dt) {
    // Triangular pan across [-60, +60] degrees.
    const double phase = std::fmod(t * kPanRate, 4.0 * deg_to_rad(60.0));
    const double swing = deg_to_rad(60.0);
    const double orient = (phase < 2.0 * swing) ? -swing + phase : 3.0 * swing - phase;
    const channel::Pose node{node_pos, orient};

    // mmX: no alignment state at all.
    const auto modes = baseline::compare_modes(tracer, node, beams, ap, ap_antenna, 24.125e9,
                                               budget, spdt);
    if (modes.with_otam.snr_db >= kSnrFloor) otam_up += dt;

    // Phased array: re-search when the current beam drops below the floor.
    double snr = -300.0;
    if (have_beam) {
      snr = budget.snr_db(searcher.beam_gain(current_beam, tracer, node, ap, ap_antenna));
    }
    double step_overhead = 0.0;
    if (snr < kSnrFloor) {
      const auto result = searcher.exhaustive_search(tracer, node, ap, ap_antenna, budget);
      current_beam = result.best_beam;
      have_beam = true;
      ++searches;
      step_overhead = result.search_time_s;
      search_overhead_s += result.search_time_s;
      search_energy_j += result.search_energy_j;
      snr = result.best_snr_db;
    }
    if (snr >= kSnrFloor) search_up += dt - step_overhead;
  }

  std::puts("=== 60 s of a panning node: OTAM vs exhaustive beam search ===\n");
  std::printf("  OTAM usable airtime:           %5.1f s / 60 s (no alignment ever)\n", otam_up);
  std::printf("  beam-search usable airtime:    %5.1f s / 60 s\n", std::min(search_up, 60.0));
  std::printf("  re-searches triggered:         %5d\n", searches);
  std::printf("  cumulative search latency:     %5.1f ms\n", search_overhead_s * 1e3);
  std::printf("  cumulative search energy:      %5.1f mJ\n", search_energy_j * 1e3);
  std::printf("  phased-array standing power:   %5.1f W (mmX node total: 1.1 W)\n",
              searcher.spec().phased_array_power_w);
  std::puts("\nthe search baseline holds a link too — but pays a watt-class array,");
  std::puts("feedback energy, and realignment latency that mmX simply does not have.");
  return 0;
}
