// Apartment: one mmX hub serving devices through real interior walls.
//
// 24 GHz penetrates drywall with single-digit dB of loss but is stopped
// cold by metal and concrete — so a one-hub apartment works if the floor
// plan is framed in drywall and fails across the concrete service core.
// This example walks a floor plan and prints per-device link budgets and
// deliveries, including the doorway detours reflections find.
#include <cstdio>
#include <vector>

#include "mmx/common/units.hpp"
#include "mmx/core/network.hpp"

int main() {
  using namespace mmx;

  // 10 x 6 m apartment. Living room right, bedroom top-left, kitchen
  // bottom-left. Interior framing is drywall with doorway gaps; the
  // fridge wall is effectively metal.
  channel::Room flat(10.0, 6.0);
  // Bedroom wall: x = 4, upper half, doorway at y in [3.0, 3.9].
  flat.add_partition({{4.0, 3.9}, {4.0, 6.0}}, channel::drywall());
  flat.add_partition({{4.0, 3.0}, {4.0, 3.0 + 1e-6}}, channel::drywall());  // jamb stub
  // Kitchen wall: x = 4, lower half, doorway at y in [2.1, 3.0].
  flat.add_partition({{4.0, 0.0}, {4.0, 2.1}}, channel::drywall());
  // Fridge + oven line along the kitchen's interior wall.
  flat.add_partition({{3.2, 0.2}, {3.2, 1.6}}, channel::metal());

  // Hub on the living-room wall.
  core::Network net(flat, channel::Pose{{9.6, 3.0}, kPi});

  struct Device {
    const char* name;
    channel::Pose pose;
    double rate;
  };
  const std::vector<Device> devices = {
      {"tv-streamer (living)", {{6.5, 3.0}, 0.0}, 20_Mbps},
      {"cam-front-door (living)", {{7.5, 5.5}, deg_to_rad(-50.0)}, 8_Mbps},
      {"cam-bedroom", {{1.0, 5.0}, deg_to_rad(-20.0)}, 8_Mbps},
      {"sensor-bedroom", {{0.6, 4.2}, 0.0}, 1_Mbps},
      {"cam-kitchen", {{1.0, 1.8}, deg_to_rad(10.0)}, 8_Mbps},
      {"sensor-behind-fridge", {{2.9, 0.9}, 0.0}, 1_Mbps},
  };

  std::puts("=== apartment: one hub, three rooms, real walls ===\n");
  std::puts("  device                      SNR      contrast   delivered   note");
  const std::vector<std::uint8_t> payload(128, 0x7E);
  for (const Device& d : devices) {
    const auto id = net.join(d.pose, d.rate);
    if (!id) {
      std::printf("  %-26s  JOIN DENIED\n", d.name);
      continue;
    }
    const auto link = net.measure(*id);
    const auto rep = net.send(*id, payload);
    const char* note = link.snr_db > 15.0  ? "clean"
                       : link.snr_db > 5.0 ? "through-wall"
                                           : "shadowed";
    std::printf("  %-26s %5.1f dB   %5.1f dB   %-9s   %s\n", d.name, link.snr_db,
                link.contrast_db, rep.delivered ? "yes" : "NO", note);
  }

  std::puts("\nreading: drywall rooms stay connected (a few dB of through-wall");
  std::puts("loss, doorway reflections helping); the metal fridge line casts a");
  std::puts("true shadow — plan hub placement around metal, not around drywall.");
  return 0;
}
