// Autonomous car: eight surround cameras feeding the in-vehicle AP
// (paper §1: "autonomous cars will be equipped with at least 8 cameras
// for a 360-degree surrounding coverage").
//
// The cabin is a tight 4.5 x 1.9 m metal box — a brutal multipath cavity
// that would wreck beam-searching radios on every pothole, and exactly
// where OTAM's search-free operation pays off. All eight cameras stream
// simultaneously; we report the per-camera link budget and the SINR when
// everyone talks at once.
#include <cstdio>
#include <vector>

#include "mmx/common/units.hpp"
#include "mmx/core/network.hpp"
#include "mmx/sim/network_sim.hpp"

int main() {
  using namespace mmx;

  // Cabin interior: metal everywhere (doors/roof rails reflect at ~2 dB).
  channel::Room cabin(4.5, 1.9, channel::metal());
  const channel::Pose ap{{2.25, 0.95}, 0.0};  // roof console, centre

  core::Network net(cabin, ap);

  struct Camera {
    const char* name;
    channel::Pose pose;
    std::uint16_t id = 0;
  };
  std::vector<Camera> cams = {
      {"front-wide", {{4.35, 0.95}, kPi}},
      {"front-left", {{4.2, 0.15}, deg_to_rad(150.0)}},
      {"front-right", {{4.2, 1.75}, deg_to_rad(-150.0)}},
      {"left-repeater", {{2.3, 0.1}, deg_to_rad(90.0)}},
      {"right-repeater", {{2.3, 1.8}, deg_to_rad(-90.0)}},
      {"rear-left", {{0.35, 0.2}, deg_to_rad(30.0)}},
      {"rear-right", {{0.35, 1.7}, deg_to_rad(-30.0)}},
      {"rear-center", {{0.15, 0.95}, 0.0}},
  };

  std::puts("=== in-vehicle mmX network: 8 cameras -> roof AP ===\n");
  std::puts("  camera          rate    channel       SNR     joint BER   delivered");
  const std::vector<std::uint8_t> frame_chunk(256, 0x3C);
  for (Camera& c : cams) {
    const auto id = net.join(c.pose, 10_Mbps);
    if (!id) {
      std::printf("  %-14s JOIN DENIED\n", c.name);
      continue;
    }
    c.id = *id;
    const auto link = net.measure(c.id);
    const auto report = net.send(c.id, frame_chunk);
    std::printf("  %-14s %3.0f Mbps  %6.1f MHz  %5.1f dB  %9.1e   %s\n", c.name,
                net.node(c.id).bit_rate_bps() / 1e6,
                net.node(c.id).grant().channel.bandwidth_hz / 1e6, link.snr_db,
                link.joint_ber, report.delivered ? "yes" : "NO");
  }

  // Aggregate spectrum and power accounting.
  double total_rate = 0.0;
  double total_power = 0.0;
  for (const Camera& c : cams) {
    if (c.id == 0) continue;
    total_rate += net.node(c.id).bit_rate_bps();
    total_power += net.node(c.id).power_w();
  }
  std::printf("\naggregate camera uplink: %.0f Mbps, radio power %.1f W total\n",
              total_rate / 1e6, total_power);
  std::printf("spectrum used: %.0f of %.0f MHz\n",
              (kIsmBandwidthHz - net.ap().init().allocator().free_bandwidth_hz()) / 1e6,
              kIsmBandwidthHz / 1e6);
  std::puts("\n(no beam search, no phased arrays: each camera is a VCO, a switch");
  std::puts(" and two printed antenna arrays riding the cabin's reflections)");
  return 0;
}
