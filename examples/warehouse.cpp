// Warehouse: a long hall at the edge of mmX's range, driven through the
// discrete-event scenario runner (forklifts act as moving blockers).
//
// Demonstrates the scenario API end-to-end: join, scheduled traffic,
// mobility, per-node accounting — the harness a deployment study would
// script instead of hand-rolling loops.
#include <cstdio>

#include "mmx/common/units.hpp"
#include "mmx/core/scenario.hpp"

int main() {
  using namespace mmx;

  // 20 x 8 m hall; AP high on the end wall.
  core::Network net(channel::Room(20.0, 8.0), channel::Pose{{19.5, 4.0}, kPi});

  // Dock cameras near the AP, aisle sensors scattered deep into the hall.
  std::vector<core::ScenarioNode> nodes = {
      {{{16.0, 2.0}, deg_to_rad(15.0)}, 10_Mbps, 0.05, 512},   // dock cam A
      {{{16.0, 6.0}, deg_to_rad(-15.0)}, 10_Mbps, 0.05, 512},  // dock cam B
      {{{10.0, 4.0}, 0.0}, 8_Mbps, 0.05, 512},                 // mid-aisle cam
      {{{4.0, 2.5}, deg_to_rad(10.0)}, 2_Mbps, 0.2, 128},      // far scanner
      {{{2.0, 5.5}, deg_to_rad(-10.0)}, 2_Mbps, 0.2, 128},     // far scanner
      {{{1.0, 4.0}, 0.0}, 1_Mbps, 0.5, 64},                    // door sensor, 18.5 m out
  };

  core::ScenarioConfig cfg;
  cfg.duration_s = 8.0;
  cfg.walkers = 4;          // forklifts / pickers crossing aisles
  cfg.walker_speed_mps = 2.0;
  cfg.reliable = true;      // ARQ on: warehouse telemetry must arrive
  cfg.seed = 11;

  const auto result = core::run_scenario(net, nodes, cfg);

  std::puts("=== warehouse uplinks over 8 s with 4 moving blockers (ARQ on) ===\n");
  std::puts("  node   dist-to-AP   frames   delivered   inversions   mean SNR   goodput");
  for (const auto& n : result.nodes) {
    const auto& pose = net.node(n.id).pose();
    const double dist = distance(pose.position, net.ap().pose().position);
    std::printf("  %4u   %7.1f m   %6zu   %8.1f%%   %10zu   %6.1f dB   %6.0f kbps\n", n.id,
                dist, n.frames_sent, 100.0 * n.delivery_ratio(), n.inversions, n.mean_snr_db,
                n.goodput_bps / 1e3);
  }
  std::printf("\n%zu events executed; %zu joins denied\n", result.events_executed,
              result.joins_denied);
  std::puts("note: the 18.5 m door sensor still delivers — the paper's Fig. 12 range");
  std::puts("claim (usable links at 18 m) exercised through the full network stack.");
  return 0;
}
