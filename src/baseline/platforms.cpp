#include "mmx/baseline/platforms.hpp"

#include <stdexcept>

#include "mmx/rf/budget.hpp"

namespace mmx::baseline {

double PlatformSpec::energy_per_bit_nj() const {
  if (bitrate_bps <= 0.0) throw std::logic_error("PlatformSpec: bitrate must be > 0");
  return power_w / bitrate_bps * 1e9;
}

std::vector<PlatformSpec> table1_platforms() {
  const rf::Budget node = rf::mmx_node_budget();
  std::vector<PlatformSpec> rows;
  // mmX row derives from our own component models (§8.1/§9.1): 24 GHz,
  // 100 Mbps at 18 m, 10 dBm radiated.
  rows.push_back({"mmX", 24.0e9, node.total_cost_usd(), node.total_power_w(), 10.0, 250e6,
                  100e6, 18.0});
  // Published figures (Table 1 citations).
  rows.push_back({"MiRa", 24.0e9, 7000.0, 11.6, 10.0, 250e6, 1e9, 100.0});
  rows.push_back({"OpenMili/Pasternack", 60.0e9, 8000.0, 5.0, 12.0, 1e9, 1.3e9, 11.0});
  rows.push_back({"WiFi (802.11n)", 2.4e9, 10.0, 2.1, 30.0, 70e6, 120e6, 50.0});
  rows.push_back({"Bluetooth", 2.4e9, 10.0, 0.029, 5.0, 1e6, 1e6, 10.0});
  return rows;
}

const PlatformSpec& platform(const std::vector<PlatformSpec>& rows, const std::string& name) {
  for (const PlatformSpec& p : rows) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("platform: unknown name " + name);
}

}  // namespace mmx::baseline
