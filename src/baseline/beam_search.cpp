#include "mmx/baseline/beam_search.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::baseline {

BeamSearchNode::BeamSearchNode(BeamSearchSpec spec) : spec_(spec) {
  if (spec.num_elements == 0) throw std::invalid_argument("BeamSearchNode: need elements");
  if (spec.codebook_size < 2) throw std::invalid_argument("BeamSearchNode: need >= 2 beams");
  if (spec.probe_time_s <= 0.0 || spec.probe_energy_j <= 0.0)
    throw std::invalid_argument("BeamSearchNode: probe costs must be > 0");
}

double BeamSearchNode::beam_angle(std::size_t i) const {
  if (i >= spec_.codebook_size) throw std::out_of_range("BeamSearchNode: beam index");
  const double span = deg_to_rad(120.0);  // +/- 60 degrees like mmX's FoV
  return -span / 2.0 +
         span * static_cast<double>(i) / static_cast<double>(spec_.codebook_size - 1);
}

antenna::LinearArray BeamSearchNode::make_beam(double angle) const {
  static const auto patch = std::make_shared<antenna::Patch>(6.0);
  const double d = wavelength(spec_.freq_hz) / 2.0;
  auto w = antenna::steering_weights(spec_.num_elements, d, spec_.freq_hz, angle);
  // Normalize total feed power to match the single-feed OTAM node.
  const double norm = 1.0 / std::sqrt(static_cast<double>(spec_.num_elements));
  for (auto& wi : w) wi *= norm;
  return antenna::LinearArray(patch, d, std::move(w), spec_.freq_hz);
}

std::complex<double> BeamSearchNode::beam_gain(std::size_t beam,
                                               const channel::RayTracer& tracer,
                                               const channel::Pose& node,
                                               const channel::Pose& ap,
                                               const antenna::Element& ap_antenna) const {
  const antenna::LinearArray array = make_beam(beam_angle(beam));
  return channel::compute_pattern_gain(tracer, node, array, ap, ap_antenna, spec_.freq_hz);
}

SearchOutcome BeamSearchNode::exhaustive_search(const channel::RayTracer& tracer,
                                                const channel::Pose& node,
                                                const channel::Pose& ap,
                                                const antenna::Element& ap_antenna,
                                                const sim::LinkBudget& budget) const {
  SearchOutcome out;
  double best_mag = -1.0;
  for (std::size_t i = 0; i < spec_.codebook_size; ++i) {
    const auto h = beam_gain(i, tracer, node, ap, ap_antenna);
    ++out.probes;
    if (std::abs(h) > best_mag) {
      best_mag = std::abs(h);
      out.best_beam = i;
      out.best_gain_db = (best_mag > 0.0) ? amp_to_db(best_mag) : -300.0;
      out.best_snr_db = budget.snr_db(h);
    }
  }
  out.search_time_s = static_cast<double>(out.probes) * spec_.probe_time_s;
  out.search_energy_j = static_cast<double>(out.probes) * spec_.probe_energy_j;
  return out;
}

}  // namespace mmx::baseline
