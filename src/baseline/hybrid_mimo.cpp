#include "mmx/baseline/hybrid_mimo.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::baseline {

HybridMimoAp::HybridMimoAp(HybridMimoSpec spec) : spec_(spec) {
  if (spec.num_chains == 0) throw std::invalid_argument("HybridMimoAp: need chains");
  if (spec.elements_per_chain == 0) throw std::invalid_argument("HybridMimoAp: need elements");
  if (spec.spacing_wavelengths <= 0.0)
    throw std::invalid_argument("HybridMimoAp: spacing must be > 0");
}

double HybridMimoAp::chain_pattern(double steer_rad, double theta) const {
  // Uniform array factor steered to steer_rad, normalized to 1 at peak.
  const double n = static_cast<double>(spec_.elements_per_chain);
  const double psi = kTwoPi * spec_.spacing_wavelengths *
                     (std::sin(theta) - std::sin(steer_rad));
  if (std::abs(psi) < 1e-12) return 1.0;
  const double num = std::sin(n * psi / 2.0);
  const double den = n * std::sin(psi / 2.0);
  const double af = num / den;
  return af * af;
}

MimoPlan HybridMimoAp::plan(std::span<const double> bearings_rad) const {
  if (bearings_rad.empty()) throw std::invalid_argument("HybridMimoAp: no bearings");
  if (bearings_rad.size() > spec_.num_chains)
    throw std::invalid_argument("HybridMimoAp: more nodes than chains");
  MimoPlan out;
  out.assignments.reserve(bearings_rad.size());
  for (std::size_t i = 0; i < bearings_rad.size(); ++i) {
    out.assignments.push_back({i, bearings_rad[i]});
  }
  double worst = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < bearings_rad.size(); ++i) {
    const double wanted = chain_pattern(bearings_rad[i], bearings_rad[i]);  // == 1
    double interference = 0.0;
    for (std::size_t j = 0; j < bearings_rad.size(); ++j) {
      if (j == i) continue;
      interference += chain_pattern(bearings_rad[i], bearings_rad[j]);
    }
    const double sir = (interference <= 0.0) ? 200.0 : lin_to_db(wanted / interference);
    worst = std::min(worst, sir);
  }
  out.min_sir_db = worst;
  return out;
}

double HybridMimoAp::total_power_w() const {
  const double chains = static_cast<double>(spec_.num_chains);
  const double elements = chains * static_cast<double>(spec_.elements_per_chain);
  return chains * spec_.chain_power_w + elements * spec_.element_power_w;
}

double HybridMimoAp::total_cost_usd() const {
  const double chains = static_cast<double>(spec_.num_chains);
  const double elements = chains * static_cast<double>(spec_.elements_per_chain);
  return chains * spec_.chain_cost_usd + elements * spec_.element_cost_usd;
}

}  // namespace mmx::baseline
