// Platform comparison models behind Table 1.
//
// Literature figures for MiRa, OpenMili/Pasternack, WiFi 802.11n and
// Bluetooth, plus the mmX row computed live from this library's own
// budget models — so if the BoM changes, Table 1 changes with it.
#pragma once

#include <string>
#include <vector>

namespace mmx::baseline {

struct PlatformSpec {
  std::string name;
  double carrier_hz;
  double cost_usd;
  double power_w;
  double tx_power_dbm;
  double bandwidth_hz;
  double bitrate_bps;
  double range_m;

  /// nJ/bit at the platform's peak rate.
  double energy_per_bit_nj() const;
};

/// All rows of Table 1 (mmX first, computed from rf::mmx_node_budget()).
std::vector<PlatformSpec> table1_platforms();

/// Convenience lookups used by tests/benches.
const PlatformSpec& platform(const std::vector<PlatformSpec>& rows, const std::string& name);

}  // namespace mmx::baseline
