// The "without OTAM" comparator of §9.2-§9.3: the same mmX hardware, but
// the node ASK-modulates at the board and transmits on Beam 1 only.
// Collected here as a convenience wrapper so experiment harnesses compare
// the two modes symmetrically.
#pragma once

#include "mmx/antenna/mmx_beams.hpp"
#include "mmx/channel/beam_channel.hpp"
#include "mmx/sim/link_budget.hpp"

namespace mmx::baseline {

struct ModeComparison {
  sim::OtamLink with_otam;
  sim::OtamLink without_otam;
};

/// Evaluate both modes for one node placement through the same channel
/// (instantaneous coherent multipath).
ModeComparison compare_modes(const channel::RayTracer& tracer, const channel::Pose& node,
                             const antenna::MmxBeamPair& beams, const channel::Pose& ap,
                             const antenna::Element& ap_antenna, double freq_hz,
                             const sim::LinkBudget& budget, const rf::SpdtSwitch& spdt);

/// Fading-averaged variant (time-averaged measurement, paper §9.2).
ModeComparison compare_modes_avg(const channel::RayTracer& tracer, const channel::Pose& node,
                                 const antenna::MmxBeamPair& beams, const channel::Pose& ap,
                                 const antenna::Element& ap_antenna, double freq_hz,
                                 const sim::LinkBudget& budget, const rf::SpdtSwitch& spdt);

}  // namespace mmx::baseline
