// Hybrid MIMO array — the AP-side alternative to the TMA (paper §7b).
//
// "The AP uses multiple mmWave chains connected to one or multiple
// arrays which create independent beams toward different directions...
// However, since this architecture requires multiple mmWave chains, it
// is power hungry and costly for IoT applications."
//
// Each chain digitally processes its own steered analog beam, so
// co-channel nodes are separated by beam selectivity. This model
// quantifies both sides of the trade: the (often better) separation and
// the per-chain power/cost bill the paper refuses to pay.
#pragma once

#include <span>
#include <vector>

namespace mmx::baseline {

struct HybridMimoSpec {
  std::size_t num_chains = 4;           ///< simultaneous co-channel nodes served
  std::size_t elements_per_chain = 16;
  double spacing_wavelengths = 0.5;
  /// Power of one full mmWave chain (mixer + LO buffer + ADC + baseband).
  double chain_power_w = 2.5;
  /// Per-element phase shifter + LNA power.
  double element_power_w = 0.15;
  /// Component cost: chain (mixer+PLL+ADC) and per-element (shifter+LNA).
  double chain_cost_usd = 210.0;   ///< HMC8191-class mixer + PLL + ADC
  double element_cost_usd = 220.0; ///< HMC933-class shifter + HMC342 LNA
};

struct MimoAssignment {
  std::size_t node_index;
  double steer_angle_rad;  ///< each chain simply steers at its node
};

struct MimoPlan {
  std::vector<MimoAssignment> assignments;
  double min_sir_db = 0.0;
};

class HybridMimoAp {
 public:
  explicit HybridMimoAp(HybridMimoSpec spec = {});

  /// Normalized power pattern of one steered chain: |AF(theta)|^2 / N^2
  /// with the main lobe at `steer_rad`.
  double chain_pattern(double steer_rad, double theta) const;

  /// Serve co-channel nodes at `bearings`: chain i steers at node i;
  /// min-over-nodes SIR from the other nodes' leakage through chain i's
  /// pattern. Throws if more nodes than chains.
  MimoPlan plan(std::span<const double> bearings_rad) const;

  /// Whole-array receiver power/cost (all chains + all elements).
  double total_power_w() const;
  double total_cost_usd() const;

  const HybridMimoSpec& spec() const { return spec_; }

 private:
  HybridMimoSpec spec_;
};

}  // namespace mmx::baseline
