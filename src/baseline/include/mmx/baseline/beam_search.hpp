// Phased-array beam-search baseline (the §2/§6 strawman mmX eliminates).
//
// A conventional mmWave node steers an N-element phased array through a
// codebook of beams, probing each and waiting for AP feedback, then
// transmits on the winner. It finds a sharper beam than mmX's fixed pair
// — but pays a search latency and feedback energy on every channel
// change, and carries power-hungry phase shifters (paper §6: "a phased
// array with even a small number of antennas consumes more than a watt
// and costs a few hundred dollars").
#pragma once

#include <vector>

#include "mmx/antenna/array.hpp"
#include "mmx/channel/beam_channel.hpp"
#include "mmx/sim/link_budget.hpp"

namespace mmx::baseline {

struct BeamSearchSpec {
  std::size_t num_elements = 8;
  std::size_t codebook_size = 16;      ///< beams spanning +/- 60 degrees
  double probe_time_s = 50e-6;         ///< per-beam probe + AP feedback
  double probe_energy_j = 100e-6;      ///< per-probe TX + RX-feedback energy
  double phased_array_power_w = 1.2;   ///< 8 shifters + LNAs (paper §6)
  double freq_hz = 24.125e9;
};

struct SearchOutcome {
  std::size_t best_beam = 0;
  std::size_t probes = 0;
  double search_time_s = 0.0;
  double search_energy_j = 0.0;
  double best_gain_db = 0.0;       ///< |h| of the winning beam [dB]
  double best_snr_db = 0.0;
};

class BeamSearchNode {
 public:
  explicit BeamSearchNode(BeamSearchSpec spec = {});

  /// Exhaustively probe every codebook beam through the ray-traced
  /// channel and pick the strongest at the AP.
  SearchOutcome exhaustive_search(const channel::RayTracer& tracer, const channel::Pose& node,
                                  const channel::Pose& ap, const antenna::Element& ap_antenna,
                                  const sim::LinkBudget& budget) const;

  /// Steering angle of codebook entry `i`.
  double beam_angle(std::size_t i) const;

  std::size_t codebook_size() const { return spec_.codebook_size; }
  const BeamSearchSpec& spec() const { return spec_; }

  /// Channel gain of one specific beam (used to model stale-beam loss
  /// after movement without a re-search).
  std::complex<double> beam_gain(std::size_t beam, const channel::RayTracer& tracer,
                                 const channel::Pose& node, const channel::Pose& ap,
                                 const antenna::Element& ap_antenna) const;

 private:
  antenna::LinearArray make_beam(double angle) const;

  BeamSearchSpec spec_;
};

}  // namespace mmx::baseline
