#include "mmx/baseline/fixed_beam.hpp"

namespace mmx::baseline {

ModeComparison compare_modes(const channel::RayTracer& tracer, const channel::Pose& node,
                             const antenna::MmxBeamPair& beams, const channel::Pose& ap,
                             const antenna::Element& ap_antenna, double freq_hz,
                             const sim::LinkBudget& budget, const rf::SpdtSwitch& spdt) {
  const channel::BeamGains g =
      channel::compute_beam_gains(tracer, node, beams, ap, ap_antenna, freq_hz);
  return {budget.evaluate_otam(g, spdt), budget.evaluate_fixed_beam(g)};
}

ModeComparison compare_modes_avg(const channel::RayTracer& tracer, const channel::Pose& node,
                                 const antenna::MmxBeamPair& beams, const channel::Pose& ap,
                                 const antenna::Element& ap_antenna, double freq_hz,
                                 const sim::LinkBudget& budget, const rf::SpdtSwitch& spdt) {
  const channel::BeamGains g =
      channel::compute_beam_gains_avg(tracer, node, beams, ap, ap_antenna, freq_hz);
  return {budget.evaluate_otam(g, spdt), budget.evaluate_fixed_beam(g)};
}

}  // namespace mmx::baseline
