#include "mmx/core/access_point.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"
#include "mmx/dsp/resample.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::core {

AccessPoint::AccessPoint(channel::Pose pose, ApSpec spec)
    : pose_(pose),
      spec_(spec),
      chain_(spec.receiver),
      antenna_(spec.dipole_gain_dbi, spec.dipole_hpbw_deg),
      init_(mac::FdmAllocator(kIsmLowHz, kIsmHighHz, spec.init.guard_hz), rf::Vco{},
            spec.init) {}

mac::SideChannelMessage AccessPoint::handle_init(const mac::ChannelRequest& request) {
  return init_.handle(request);
}

std::size_t AccessPoint::serve(mac::SideChannel& channel, Rng& rng) {
  return init_.serve(channel, rng);
}

Reception AccessPoint::receive_channel(std::span<const dsp::Complex> wideband,
                                       double wideband_rate_hz, double channel_offset_hz,
                                       const phy::PhyConfig& cfg) const {
  if (wideband_rate_hz <= 0.0)
    throw std::invalid_argument("AccessPoint: wideband rate must be > 0");
  const double ratio = wideband_rate_hz / cfg.sample_rate_hz();
  const double rounded = std::round(ratio);
  if (rounded < 1.0 || std::abs(ratio - rounded) > 1e-6)
    throw std::invalid_argument(
        "AccessPoint: wideband rate must be an integer multiple of the channel rate");
  const auto factor = static_cast<std::size_t>(rounded);
  const dsp::Cvec centered =
      dsp::frequency_shift(wideband, -channel_offset_hz, wideband_rate_hz);
  const dsp::Cvec narrow = dsp::decimate(centered, factor);
  return receive(narrow, cfg);
}

Reception AccessPoint::receive(std::span<const dsp::Complex> capture,
                               const phy::PhyConfig& cfg,
                               phy::CodingProfile profile) const {
  Reception r;
  const auto sync = phy::find_preamble(capture, cfg, phy::default_preamble(),
                                       /*max_offset=*/8 * cfg.samples_per_symbol, 0.5);
  if (!sync) return r;
  r.sync_correlation = sync->correlation;

  const std::span<const dsp::Complex> aligned(capture.data() + sync->sample_offset,
                                              capture.size() - sync->sample_offset);
  const phy::JointDecision d =
      phy::joint_demodulate(aligned, cfg, phy::default_preamble());
  r.mode = d.mode;
  r.inverted = d.ask_inverted;

  const auto& preamble = phy::default_preamble();
  if (d.bits.size() <= preamble.size()) return r;
  phy::Bits body(d.bits.begin() + static_cast<long>(preamble.size()), d.bits.end());
  if (profile != phy::CodingProfile::kNone) {
    // The capture's tail is noise bits; trim to the profile's block
    // structure before decoding, and treat undecodable bodies as loss.
    try {
      if (profile == phy::CodingProfile::kHamming) body.resize(body.size() / 7 * 7);
      if (profile == phy::CodingProfile::kConvolutional) body.resize(body.size() / 2 * 2);
      body = phy::decode_body(body, profile);
    } catch (const std::invalid_argument&) {
      return r;
    }
  }
  r.frame = phy::decode_frame(body);
  return r;
}

std::vector<Reception> AccessPoint::receive_stream(std::span<const dsp::Complex> capture,
                                                   const phy::PhyConfig& cfg,
                                                   phy::CodingProfile profile) const {
  std::vector<Reception> out;
  const auto& preamble = phy::default_preamble();
  const std::size_t sps = cfg.samples_per_symbol;
  std::size_t offset = 0;
  while (offset + preamble.size() * sps < capture.size()) {
    const std::span<const dsp::Complex> window(capture.data() + offset,
                                               capture.size() - offset);
    const auto sync =
        phy::find_preamble_first(window, cfg, preamble, window.size(), 0.6);
    if (!sync) break;
    const std::span<const dsp::Complex> aligned(window.data() + sync->sample_offset,
                                                window.size() - sync->sample_offset);
    const Reception r = receive(aligned, cfg, profile);
    if (r.frame.has_value()) {
      out.push_back(r);
      // Skip past the decoded frame's airtime.
      const std::size_t body_bits =
          phy::frame_length_bits(r.frame->payload.size(), preamble.size()) - preamble.size();
      const std::size_t coded_bits =
          (profile == phy::CodingProfile::kNone)
              ? body_bits
              : phy::coded_length_bits(body_bits, profile);
      offset += sync->sample_offset + (preamble.size() + coded_bits) * sps;
    } else {
      // False (or undecodable) sync: move past it and keep scanning.
      offset += sync->sample_offset + preamble.size() * sps;
    }
  }
  return out;
}

}  // namespace mmx::core
