// Discrete-event scenario runner.
//
// Drives a Network through simulated wall-clock time: periodic frame
// transmissions per node (CBR video / sensor cadence), people walking
// through the room between events, per-node delivery and SNR accounting.
// This is the harness behind the long-running examples and the
// system-level tests.
#pragma once

#include <vector>

#include "mmx/channel/blockage.hpp"
#include "mmx/core/network.hpp"
#include "mmx/sim/event_queue.hpp"

namespace mmx::core {

struct ScenarioNode {
  channel::Pose pose;
  double rate_bps = 10e6;          ///< requested channel rate
  double frame_interval_s = 0.05;  ///< application send cadence
  std::size_t payload_bytes = 256;
};

struct ScenarioConfig {
  double duration_s = 5.0;
  std::size_t walkers = 0;          ///< people doing random waypoint
  double walker_speed_mps = 1.4;
  double mobility_step_s = 0.1;     ///< blocker position update cadence
  std::uint64_t seed = 1;
  bool reliable = false;            ///< use ARQ (send_reliable) per frame
  double outage_snr_db = 10.0;      ///< threshold for outage accounting
};

struct ScenarioNodeOutcome {
  std::uint16_t id = 0;
  std::size_t frames_sent = 0;
  std::size_t frames_delivered = 0;
  std::size_t inversions = 0;       ///< blockage-induced polarity flips
  double mean_snr_db = 0.0;
  double min_snr_db = 0.0;
  /// Fraction of frames sent while the link sat below `outage_snr_db`.
  double outage_fraction = 0.0;
  double goodput_bps = 0.0;         ///< delivered payload bits / duration
  double airtime_s = 0.0;           ///< radio-on time spent transmitting
  double radio_energy_j = 0.0;      ///< airtime x the node's 1.1 W draw

  double delivery_ratio() const {
    return frames_sent == 0 ? 0.0
                            : static_cast<double>(frames_delivered) /
                                  static_cast<double>(frames_sent);
  }
};

struct ScenarioResult {
  std::vector<ScenarioNodeOutcome> nodes;
  std::size_t events_executed = 0;
  std::size_t joins_denied = 0;
};

/// Join every node, then run `cfg.duration_s` of event time.
ScenarioResult run_scenario(Network& net, const std::vector<ScenarioNode>& nodes,
                            const ScenarioConfig& cfg = {});

}  // namespace mmx::core
