// mmx::AccessPoint — the receive side (paper §5.2, §8.2).
//
// LNA -> coupled-line filter -> sub-harmonic mixer -> baseband capture,
// plus the MAC brain: the FDM/SDM initialization protocol served over the
// WiFi/BT side channel, and the joint ASK-FSK receiver that turns a noisy
// capture back into frames.
#pragma once

#include <cstdint>
#include <optional>

#include "mmx/antenna/element.hpp"
#include "mmx/channel/beam_channel.hpp"
#include "mmx/mac/init_protocol.hpp"
#include "mmx/phy/config.hpp"
#include "mmx/phy/frame.hpp"
#include "mmx/phy/coding.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/rf/chain.hpp"

namespace mmx::core {

struct ApSpec {
  rf::ReceiverChainSpec receiver{};
  mac::InitConfig init{};
  double dipole_gain_dbi = 5.0;
  double dipole_hpbw_deg = 62.0;
};

/// Result of receiving one capture.
struct Reception {
  std::optional<phy::Frame> frame;       ///< decoded frame (CRC-clean) or nothing
  double sync_correlation = 0.0;         ///< preamble correlator peak
  phy::DecisionMode mode = phy::DecisionMode::kJoint;
  bool inverted = false;                 ///< OTAM polarity was flipped
};

class AccessPoint {
 public:
  explicit AccessPoint(channel::Pose pose, ApSpec spec = {});

  /// MAC: handle one init request directly (grants also remembered).
  mac::SideChannelMessage handle_init(const mac::ChannelRequest& request);

  /// MAC: drain the side channel (paper §7a's one-shot bootstrap).
  std::size_t serve(mac::SideChannel& channel, Rng& rng);

  /// PHY: receive a noisy capture with the given node PHY parameters.
  /// `profile` must match the transmitter's coding profile.
  Reception receive(std::span<const dsp::Complex> capture, const phy::PhyConfig& cfg,
                    phy::CodingProfile profile = phy::CodingProfile::kNone) const;

  /// Receive every frame in a long capture: repeatedly sync, decode, and
  /// continue after each frame (or skip ahead on a false sync). This is
  /// the AP's steady-state loop over a continuous stream.
  std::vector<Reception> receive_stream(std::span<const dsp::Complex> capture,
                                        const phy::PhyConfig& cfg,
                                        phy::CodingProfile profile =
                                            phy::CodingProfile::kNone) const;

  /// Channelized receive: the capture spans a wide chunk of the band at
  /// `wideband_rate_hz` (the USRP's view); the node of interest sits at
  /// `channel_offset_hz` from the capture centre. The AP shifts the
  /// channel to baseband, decimates to the node's PHY rate (the ratio
  /// must be an integer) and decodes. This is how one SDR front end
  /// serves every FDM node at once (§9.5).
  Reception receive_channel(std::span<const dsp::Complex> wideband, double wideband_rate_hz,
                            double channel_offset_hz, const phy::PhyConfig& cfg) const;

  /// Link budget hooks.
  double noise_floor_dbm() const { return chain_.noise_floor_dbm(); }
  const rf::ReceiverChain& chain() const { return chain_; }
  const antenna::Dipole& antenna() const { return antenna_; }
  const channel::Pose& pose() const { return pose_; }
  const mac::InitProtocol& init() const { return init_; }
  bool release(std::uint16_t node_id) { return init_.release(node_id); }

 private:
  channel::Pose pose_;
  ApSpec spec_;
  rf::ReceiverChain chain_;
  antenna::Dipole antenna_;
  mac::InitProtocol init_;
};

}  // namespace mmx::core
