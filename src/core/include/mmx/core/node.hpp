// mmx::Node — the low-power IoT device (paper §5.1, §8.1).
//
// A node is a VCO, an SPDT switch, two fixed orthogonal antenna arrays
// and a controller. It holds a channel grant from the AP, derives its
// PHY parameters (symbol rate from the channel width, FSK tones from the
// granted VCO tuning voltages) and transmits frames by OTAM.
#pragma once

#include <cstdint>
#include <optional>

#include "mmx/antenna/mmx_beams.hpp"
#include "mmx/channel/beam_channel.hpp"
#include "mmx/mac/side_channel.hpp"
#include "mmx/phy/config.hpp"
#include "mmx/phy/frame.hpp"
#include "mmx/phy/otam.hpp"
#include "mmx/rf/budget.hpp"
#include "mmx/rf/spdt.hpp"
#include "mmx/rf/vco.hpp"

namespace mmx::core {

struct NodeSpec {
  rf::VcoSpec vco{};
  rf::SpdtSpec spdt{};
  antenna::BeamPairSpec beams{};
  std::size_t samples_per_symbol = 16;
  double guard_frac = 0.15;
  /// Spectral efficiency assumed when turning channel width into symbol
  /// rate (must match the AP's allocator assumption).
  double spectral_efficiency = 0.8;
};

class Node {
 public:
  explicit Node(std::uint16_t id, channel::Pose pose, NodeSpec spec = {});

  /// Apply a grant from the AP (side-channel init). Derives and stores
  /// the PHY configuration. Throws if the grant is infeasible (symbol
  /// rate above the switch limit, tones outside the VCO range).
  void configure(const mac::ChannelGrant& grant);

  bool configured() const { return grant_.has_value(); }
  const mac::ChannelGrant& grant() const;

  /// PHY parameters in the node's channel (baseband-relative tones).
  const phy::PhyConfig& phy_config() const;

  /// Bit rate the node signals at [bit/s].
  double bit_rate_bps() const;

  /// Encode + OTAM-transmit a frame through the given per-beam channel.
  /// Returns the complex baseband signal arriving at the AP (before
  /// noise). `tx_amplitude` is sqrt(radiated watts) — defaults to the
  /// node's 10 dBm radiated power.
  dsp::Cvec transmit_frame(const phy::Frame& frame, const phy::OtamChannel& ch,
                           double tx_amplitude_override = 0.0) const;

  /// Raw bit transmission (no framing) — used by microbenchmarks.
  dsp::Cvec transmit_bits(const phy::Bits& bits, const phy::OtamChannel& ch) const;

  std::uint16_t id() const { return id_; }
  const channel::Pose& pose() const { return pose_; }
  void set_pose(const channel::Pose& pose) { pose_ = pose; }

  const antenna::MmxBeamPair& beams() const { return beams_; }
  const rf::Vco& vco() const { return vco_; }
  const rf::SpdtSwitch& spdt() const { return spdt_; }

  /// Device power draw [W] and energy/bit at the current rate.
  double power_w() const { return budget_.total_power_w(); }
  double energy_per_bit_j() const;

 private:
  std::uint16_t id_;
  channel::Pose pose_;
  NodeSpec spec_;
  rf::Vco vco_;
  rf::SpdtSwitch spdt_;
  antenna::MmxBeamPair beams_;
  rf::Budget budget_;
  std::optional<mac::ChannelGrant> grant_;
  phy::PhyConfig phy_cfg_;
  double default_tx_amplitude_;
};

}  // namespace mmx::core
