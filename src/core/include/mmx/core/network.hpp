// mmx::Network — the top-level facade (what a downstream user of the
// library instantiates).
//
// Owns the room, the AP and the nodes; wires the side-channel bootstrap,
// the ray-traced channel and the sample-level PHY into three verbs:
// join, send, measure.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "mmx/channel/room.hpp"
#include "mmx/core/access_point.hpp"
#include "mmx/core/node.hpp"
#include "mmx/mac/arq.hpp"
#include "mmx/sim/link_budget.hpp"

namespace mmx::core {

struct NetworkSpec {
  ApSpec ap{};
  NodeSpec node{};
  sim::LinkBudgetSpec budget{};
  double freq_hz = 24.125e9;
  std::uint64_t noise_seed = 1;
};

/// Outcome of one frame transmission.
struct SendReport {
  bool delivered = false;
  double snr_db = 0.0;            ///< paper-style SNR of the capture
  double contrast_db = 0.0;       ///< OTAM level contrast
  phy::DecisionMode mode = phy::DecisionMode::kJoint;
  bool inverted = false;
  std::size_t payload_bytes = 0;
};

class Network {
 public:
  Network(channel::Room room, channel::Pose ap_pose, NetworkSpec spec = {});

  /// Register a node (side-channel init). Returns its id, or nullopt if
  /// the AP denied the rate request.
  std::optional<std::uint16_t> join(const channel::Pose& pose, double rate_bps);

  void leave(std::uint16_t id);
  void set_pose(std::uint16_t id, const channel::Pose& pose);

  /// Sample-level end-to-end transmission of a payload: OTAM synthesis
  /// through the ray-traced channel, AWGN at the AP's noise floor,
  /// preamble sync, joint demodulation, CRC check.
  SendReport send(std::uint16_t id, std::span<const std::uint8_t> payload,
                  phy::CodingProfile profile = phy::CodingProfile::kNone);

  /// Stop-and-wait ARQ on top of send(): retransmits until the AP
  /// decodes the frame or the retry budget is spent (the AP's ack rides
  /// the reliable side channel).
  struct ReliableReport {
    SendReport last;      ///< report of the final attempt
    int attempts = 0;
    bool delivered = false;
  };
  ReliableReport send_reliable(std::uint16_t id, std::span<const std::uint8_t> payload,
                               mac::ArqConfig arq = {});

  /// Link-budget measurements (fast path; no sample simulation).
  sim::OtamLink measure(std::uint16_t id) const;
  sim::OtamLink measure_fixed_beam(std::uint16_t id) const;

  /// Current per-beam channel for a node.
  phy::OtamChannel channel_for(std::uint16_t id) const;

  channel::Room& room() { return room_; }
  const AccessPoint& ap() const { return ap_; }
  Node& node(std::uint16_t id);
  const Node& node(std::uint16_t id) const;
  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  channel::Room room_;
  NetworkSpec spec_;
  AccessPoint ap_;
  sim::LinkBudget budget_;
  Rng rng_;
  std::map<std::uint16_t, Node> nodes_;
  std::uint16_t next_id_ = 1;
  std::uint16_t next_seq_ = 0;
};

}  // namespace mmx::core
