#include "mmx/core/network.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/channel/ray_tracer.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::core {

Network::Network(channel::Room room, channel::Pose ap_pose, NetworkSpec spec)
    : room_(std::move(room)),
      spec_(spec),
      ap_(ap_pose, spec.ap),
      budget_(spec.budget),
      rng_(spec.noise_seed) {
  if (!room_.contains(ap_pose.position)) throw std::invalid_argument("Network: AP outside room");
}

std::optional<std::uint16_t> Network::join(const channel::Pose& pose, double rate_bps) {
  if (!room_.contains(pose.position)) throw std::invalid_argument("Network: node outside room");
  const std::uint16_t id = next_id_++;
  const double bearing =
      wrap_angle((pose.position - ap_.pose().position).angle() - ap_.pose().orientation_rad);
  const auto reply = ap_.handle_init(mac::ChannelRequest{id, rate_bps, bearing});
  const auto* grant = std::get_if<mac::ChannelGrant>(&reply);
  if (!grant) return std::nullopt;
  Node node(id, pose, spec_.node);
  node.configure(*grant);
  nodes_.emplace(id, std::move(node));
  return id;
}

void Network::leave(std::uint16_t id) {
  if (nodes_.erase(id) > 0) ap_.release(id);
}

void Network::set_pose(std::uint16_t id, const channel::Pose& pose) {
  if (!room_.contains(pose.position)) throw std::invalid_argument("Network: node outside room");
  node(id).set_pose(pose);
}

Node& Network::node(std::uint16_t id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("Network: unknown node");
  return it->second;
}

const Node& Network::node(std::uint16_t id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("Network: unknown node");
  return it->second;
}

phy::OtamChannel Network::channel_for(std::uint16_t id) const {
  const Node& n = node(id);
  channel::RayTracer tracer(room_);
  const auto g = channel::compute_beam_gains(tracer, n.pose(), n.beams(), ap_.pose(),
                                             ap_.antenna(), spec_.freq_hz);
  return {g.h0, g.h1};
}

sim::OtamLink Network::measure(std::uint16_t id) const {
  const Node& n = node(id);
  channel::RayTracer tracer(room_);
  const auto g = channel::compute_beam_gains(tracer, n.pose(), n.beams(), ap_.pose(),
                                             ap_.antenna(), spec_.freq_hz);
  return budget_.evaluate_otam(g, n.spdt());
}

sim::OtamLink Network::measure_fixed_beam(std::uint16_t id) const {
  const Node& n = node(id);
  channel::RayTracer tracer(room_);
  const auto g = channel::compute_beam_gains(tracer, n.pose(), n.beams(), ap_.pose(),
                                             ap_.antenna(), spec_.freq_hz);
  return budget_.evaluate_fixed_beam(g);
}

Network::ReliableReport Network::send_reliable(std::uint16_t id,
                                               std::span<const std::uint8_t> payload,
                                               mac::ArqConfig arq_cfg) {
  mac::ArqSender arq(arq_cfg);
  const std::uint16_t seq = next_seq_;  // send() will consume sequence numbers
  arq.offer(seq);

  ReliableReport out;
  while (arq.next_action() == mac::ArqSender::Action::kTransmit) {
    arq.on_transmitted();
    out.last = send(id, payload);
    ++out.attempts;
    if (out.last.delivered) {
      arq.on_ack(seq);  // the AP's ack arrives on the reliable side channel
      out.delivered = true;
      return out;
    }
    arq.on_timeout();
  }
  return out;
}

SendReport Network::send(std::uint16_t id, std::span<const std::uint8_t> payload,
                         phy::CodingProfile profile) {
  Node& n = node(id);

  phy::Frame frame;
  frame.node_id = id;
  frame.seq = next_seq_++;
  frame.payload.assign(payload.begin(), payload.end());

  const phy::OtamChannel ch = channel_for(id);
  dsp::Cvec rx;
  if (profile == phy::CodingProfile::kNone) {
    rx = n.transmit_frame(frame, ch);
  } else {
    const phy::Bits raw = phy::encode_frame(frame, phy::default_preamble());
    phy::Bits bits(phy::default_preamble());
    const phy::Bits body(raw.begin() + static_cast<long>(bits.size()), raw.end());
    const phy::Bits coded = phy::encode_body(body, profile);
    bits.insert(bits.end(), coded.begin(), coded.end());
    rx = phy::otam_synthesize(bits, n.phy_config(), ch, n.spdt(),
                              std::sqrt(dbm_to_watt(12.0)));
  }
  // Implementation loss (calibrated once; see sim::LinkBudgetSpec).
  const double impl = db_to_amp(-spec_.budget.implementation_loss_db);
  for (auto& s : rx) s *= impl;
  // Trailing dead air so a late sync estimate keeps the last symbol.
  rx.resize(rx.size() + 4 * n.phy_config().samples_per_symbol, dsp::Complex{});
  dsp::add_awgn(rx, dbm_to_watt(ap_.noise_floor_dbm()), rng_);

  const Reception rec = ap_.receive(rx, n.phy_config(), profile);
  const sim::OtamLink link = measure(id);

  SendReport report;
  report.snr_db = link.snr_db;
  report.contrast_db = link.contrast_db;
  report.mode = rec.mode;
  report.inverted = rec.inverted;
  report.payload_bytes = payload.size();
  report.delivered = rec.frame.has_value() && *rec.frame == frame;
  return report;
}

}  // namespace mmx::core
