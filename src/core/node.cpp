#include "mmx/core/node.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::core {

Node::Node(std::uint16_t id, channel::Pose pose, NodeSpec spec)
    : id_(id),
      pose_(pose),
      spec_(spec),
      vco_(spec.vco),
      spdt_(spec.spdt),
      beams_(spec.beams),
      budget_(rf::mmx_node_budget()) {
  if (spec.spectral_efficiency <= 0.0)
    throw std::invalid_argument("Node: spectral efficiency must be > 0");
  // The synthesizer applies the switch's through-gain internally, so the
  // pre-switch amplitude is the VCO's output power.
  default_tx_amplitude_ = std::sqrt(dbm_to_watt(spec_.vco.output_power_dbm));
}

void Node::configure(const mac::ChannelGrant& grant) {
  if (grant.node_id != id_) throw std::invalid_argument("Node: grant is for another node");
  const double f0 = vco_.frequency_hz(grant.vco_tune_v0);
  const double f1 = vco_.frequency_hz(grant.vco_tune_v1);

  phy::PhyConfig cfg;
  cfg.symbol_rate_hz =
      std::min(grant.channel.bandwidth_hz * spec_.spectral_efficiency, spdt_.max_bit_rate());
  cfg.samples_per_symbol = spec_.samples_per_symbol;
  cfg.guard_frac = spec_.guard_frac;
  cfg.fsk_freq0_hz = f0 - grant.channel.center_hz;
  cfg.fsk_freq1_hz = f1 - grant.channel.center_hz;
  cfg.validate();
  spdt_.check_symbol_rate(cfg.symbol_rate_hz);

  grant_ = grant;
  phy_cfg_ = cfg;
}

const mac::ChannelGrant& Node::grant() const {
  if (!grant_) throw std::logic_error("Node: not configured");
  return *grant_;
}

const phy::PhyConfig& Node::phy_config() const {
  if (!grant_) throw std::logic_error("Node: not configured");
  return phy_cfg_;
}

double Node::bit_rate_bps() const { return phy_config().symbol_rate_hz; }

dsp::Cvec Node::transmit_frame(const phy::Frame& frame, const phy::OtamChannel& ch,
                               double tx_amplitude_override) const {
  const phy::Bits bits = phy::encode_frame(frame, phy::default_preamble());
  const double amp =
      (tx_amplitude_override > 0.0) ? tx_amplitude_override : default_tx_amplitude_;
  return phy::otam_synthesize(bits, phy_config(), ch, spdt_, amp);
}

dsp::Cvec Node::transmit_bits(const phy::Bits& bits, const phy::OtamChannel& ch) const {
  return phy::otam_synthesize(bits, phy_config(), ch, spdt_, default_tx_amplitude_);
}

double Node::energy_per_bit_j() const { return budget_.energy_per_bit_j(bit_rate_bps()); }

}  // namespace mmx::core
