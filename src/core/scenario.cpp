#include "mmx/core/scenario.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "mmx/phy/frame.hpp"
#include "mmx/phy/preamble.hpp"

namespace mmx::core {

ScenarioResult run_scenario(Network& net, const std::vector<ScenarioNode>& nodes,
                            const ScenarioConfig& cfg) {
  if (cfg.duration_s <= 0.0) throw std::invalid_argument("run_scenario: duration must be > 0");
  if (cfg.mobility_step_s <= 0.0)
    throw std::invalid_argument("run_scenario: mobility step must be > 0");

  Rng rng(cfg.seed);
  ScenarioResult result;

  struct Live {
    std::uint16_t id;
    ScenarioNode spec;
    ScenarioNodeOutcome outcome;
    double snr_acc = 0.0;
    double snr_min = 1e9;
    std::size_t outage_frames = 0;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Live> live;
  for (const ScenarioNode& n : nodes) {
    const auto id = net.join(n.pose, n.rate_bps);
    if (!id) {
      ++result.joins_denied;
      continue;
    }
    Live l;
    l.id = *id;
    l.spec = n;
    l.outcome.id = *id;
    l.payload.assign(n.payload_bytes, static_cast<std::uint8_t>(*id));
    live.push_back(std::move(l));
  }

  sim::EventQueue queue;

  // Self-rescheduling handlers live here, not inside their own captures: a
  // handler that captures a shared_ptr to itself is a reference cycle the
  // refcount can never break (LeakSanitizer flags it). They only need to
  // outlive queue.run_until() below.
  std::vector<std::unique_ptr<std::function<void()>>> handlers;

  // Mobility process.
  std::unique_ptr<channel::WalkingCrowd> crowd;
  if (cfg.walkers > 0) {
    crowd = std::make_unique<channel::WalkingCrowd>(net.room(), cfg.walkers,
                                                    cfg.walker_speed_mps, rng);
    handlers.push_back(std::make_unique<std::function<void()>>());
    std::function<void()>* step = handlers.back().get();
    *step = [&queue, &rng, &cfg, crowd_ptr = crowd.get(), step] {
      crowd_ptr->update(cfg.mobility_step_s, rng);
      if (queue.now() + cfg.mobility_step_s <= cfg.duration_s) {
        queue.schedule_in(cfg.mobility_step_s, *step);
      }
    };
    queue.schedule_at(cfg.mobility_step_s, *step);
  }

  // Per-node traffic processes.
  for (Live& l : live) {
    handlers.push_back(std::make_unique<std::function<void()>>());
    std::function<void()>* fire = handlers.back().get();
    *fire = [&net, &queue, &cfg, node = &l, fire] {
      const SendReport r = cfg.reliable
                               ? net.send_reliable(node->id, node->payload).last
                               : net.send(node->id, node->payload);
      ++node->outcome.frames_sent;
      node->outcome.frames_delivered += r.delivered;
      node->outcome.inversions += r.inverted;
      node->snr_acc += r.snr_db;
      node->snr_min = std::min(node->snr_min, r.snr_db);
      if (r.snr_db < cfg.outage_snr_db) ++node->outage_frames;
      if (queue.now() + node->spec.frame_interval_s <= cfg.duration_s) {
        queue.schedule_in(node->spec.frame_interval_s, *fire);
      }
    };
    queue.schedule_at(l.spec.frame_interval_s * rng.uniform(0.0, 1.0), *fire);
  }

  result.events_executed = queue.run_until(cfg.duration_s);

  for (Live& l : live) {
    if (l.outcome.frames_sent > 0) {
      l.outcome.mean_snr_db = l.snr_acc / static_cast<double>(l.outcome.frames_sent);
      l.outcome.min_snr_db = l.snr_min;
      l.outcome.outage_fraction = static_cast<double>(l.outage_frames) /
                                  static_cast<double>(l.outcome.frames_sent);
    }
    l.outcome.goodput_bps = static_cast<double>(l.outcome.frames_delivered) *
                            static_cast<double>(l.spec.payload_bytes) * 8.0 / cfg.duration_s;
    // Airtime/energy ledger: frame bits at the node's granted bit rate,
    // times the 1.1 W radio draw while transmitting.
    const Node& dev = net.node(l.id);
    const double frame_bits = static_cast<double>(
        phy::frame_length_bits(l.spec.payload_bytes, phy::default_preamble().size()));
    l.outcome.airtime_s =
        static_cast<double>(l.outcome.frames_sent) * frame_bits / dev.bit_rate_bps();
    l.outcome.radio_energy_j = l.outcome.airtime_s * dev.power_w();
    result.nodes.push_back(l.outcome);
  }
  return result;
}

}  // namespace mmx::core
