#include "mmx/mac/init_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmx::mac {

std::vector<HarmonicSlot> default_sdm_slots() {
  // sin(theta_m) = m * delay / spacing = 0.125 m for the default
  // progressive TMA (delay 0.0625, d = lambda/2): nine slots on a ~7
  // degree pitch covering +/-30 degrees.
  std::vector<HarmonicSlot> slots;
  for (int m : {0, 1, -1, 2, -2, 3, -3, 4, -4}) slots.push_back({m, std::asin(0.125 * m)});
  return slots;
}

RejoinBackoff::RejoinBackoff(BackoffConfig cfg) : cfg_(cfg) {
  if (cfg.base_s <= 0.0) throw std::invalid_argument("RejoinBackoff: base_s must be > 0");
  if (cfg.factor < 1.0) throw std::invalid_argument("RejoinBackoff: factor must be >= 1");
  if (cfg.cap_s < cfg.base_s)
    throw std::invalid_argument("RejoinBackoff: cap_s must be >= base_s");
  if (cfg.jitter_frac < 0.0 || cfg.jitter_frac >= 1.0)
    throw std::invalid_argument("RejoinBackoff: jitter_frac must be in [0, 1)");
}

double RejoinBackoff::next_delay_s(Rng& rng) {
  double delay = cfg_.base_s;
  for (int i = 0; i < attempt_; ++i) {
    delay *= cfg_.factor;
    if (delay >= cfg_.cap_s) {
      delay = cfg_.cap_s;
      break;
    }
  }
  ++attempt_;
  if (cfg_.jitter_frac > 0.0)
    delay *= rng.uniform(1.0 - cfg_.jitter_frac, 1.0 + cfg_.jitter_frac);
  return delay;
}

InitProtocol::InitProtocol(FdmAllocator allocator, rf::Vco node_vco, InitConfig cfg)
    : allocator_(std::move(allocator)), node_vco_(node_vco), cfg_(std::move(cfg)) {
  if (cfg_.spectral_efficiency <= 0.0)
    throw std::invalid_argument("InitProtocol: spectral efficiency must be > 0");
  if (cfg_.fsk_fraction <= 0.0 || cfg_.fsk_fraction >= 0.5)
    throw std::invalid_argument("InitProtocol: fsk_fraction must be in (0, 0.5)");
  if (cfg_.sdm_capacity < 1)
    throw std::invalid_argument("InitProtocol: sdm_capacity must be >= 1");
  if (cfg_.sdm_slots.empty()) cfg_.sdm_slots = default_sdm_slots();
}

ChannelGrant InitProtocol::make_grant(std::uint16_t node_id, const ChannelAllocation& ch,
                                      int harmonic) const {
  ChannelGrant g;
  g.node_id = node_id;
  g.channel = ch;
  g.sdm_harmonic = harmonic;
  const double df = cfg_.fsk_fraction * ch.bandwidth_hz;
  g.vco_tune_v0 = node_vco_.voltage_for(ch.center_hz - df);
  g.vco_tune_v1 = node_vco_.voltage_for(ch.center_hz + df);
  return g;
}

SideChannelMessage InitProtocol::handle(const ChannelRequest& request) {
  if (request.rate_bps <= 0.0) return ChannelDeny{request.node_id};
  if (grants_.contains(request.node_id)) return grants_.at(request.node_id);  // idempotent
  holder_bearings_[request.node_id] = request.bearing_rad;

  const double bw = required_bandwidth_hz(request.rate_bps, cfg_.spectral_efficiency);
  // The node's VCO must be able to reach both tones.
  if (const auto ch = allocator_.allocate(request.node_id, bw)) {
    if (!node_vco_.covers(ch->low_hz()) || !node_vco_.covers(ch->high_hz())) {
      allocator_.release(request.node_id);
      return ChannelDeny{request.node_id};
    }
    ChannelGrant g = make_grant(request.node_id, *ch, 0);
    grants_[request.node_id] = g;
    return g;
  }
  return try_sdm(request);
}

std::optional<int> InitProtocol::best_free_slot(const std::vector<int>& used,
                                                double bearing_rad) const {
  std::optional<int> best;
  double best_err = cfg_.max_harmonic_mismatch_rad;
  for (const HarmonicSlot& slot : cfg_.sdm_slots) {
    if (std::find(used.begin(), used.end(), slot.harmonic) != used.end()) continue;
    const double err = std::abs(bearing_rad - slot.angle_rad);
    if (err <= best_err) {
      best_err = err;
      best = slot.harmonic;
    }
  }
  return best;
}

SideChannelMessage InitProtocol::try_sdm(const ChannelRequest& request) {
  const double bw = required_bandwidth_hz(request.rate_bps, cfg_.spectral_efficiency);
  // Join an existing shared pool or convert an FDM holder's channel into
  // a shared one — member channels must be at least as wide as requested,
  // bearings must be separable, and a TMA harmonic must steer close
  // enough to the newcomer's bearing.
  auto bearing_ok = [&](const std::vector<double>& bearings) {
    return std::all_of(bearings.begin(), bearings.end(), [&](double b) {
      return std::abs(b - request.bearing_rad) >= cfg_.min_bearing_separation_rad;
    });
  };

  // 1) Existing shared channels with a suitable free harmonic.
  for (SharedChannel& sc : shared_) {
    if (sc.channel.bandwidth_hz + 1e-6 < bw) continue;
    if (static_cast<int>(sc.members.size()) >= cfg_.sdm_capacity) continue;
    if (!bearing_ok(sc.bearings)) continue;
    const auto slot = best_free_slot(sc.harmonics, request.bearing_rad);
    if (!slot) continue;
    sc.members.push_back(request.node_id);
    sc.bearings.push_back(request.bearing_rad);
    sc.harmonics.push_back(*slot);
    ChannelGrant g = make_grant(request.node_id, sc.channel, *slot);
    grants_[request.node_id] = g;
    return g;
  }

  // 2) Convert a wide-enough FDM-only channel into a shared channel. The
  // incumbent keeps transmitting as before; the AP re-points it onto the
  // harmonic nearest its bearing and gives the newcomer another slot.
  for (const auto& [holder, ch] : allocator_.allocations()) {
    if (ch.bandwidth_hz + 1e-6 < bw) continue;
    if (!grants_.contains(holder)) continue;
    const bool already_shared =
        std::any_of(shared_.begin(), shared_.end(),
                    [&](const SharedChannel& sc) { return sc.channel == ch; });
    if (already_shared) continue;
    const double holder_bearing =
        holder_bearings_.contains(holder) ? holder_bearings_.at(holder) : 0.0;
    if (std::abs(holder_bearing - request.bearing_rad) < cfg_.min_bearing_separation_rad)
      continue;
    const auto holder_slot = best_free_slot({}, holder_bearing);
    if (!holder_slot) continue;
    const auto new_slot = best_free_slot({*holder_slot}, request.bearing_rad);
    if (!new_slot) continue;

    SharedChannel sc;
    sc.channel = ch;
    sc.members = {holder, request.node_id};
    sc.bearings = {holder_bearing, request.bearing_rad};
    sc.harmonics = {*holder_slot, *new_slot};
    shared_.push_back(sc);
    // Update the incumbent's grant with its (possibly nonzero) harmonic.
    grants_[holder] = make_grant(holder, ch, *holder_slot);
    ChannelGrant g = make_grant(request.node_id, ch, *new_slot);
    grants_[request.node_id] = g;
    return g;
  }
  return ChannelDeny{request.node_id};
}

SideChannelMessage InitProtocol::modify_rate(std::uint16_t node_id, double new_rate_bps) {
  if (!grants_.contains(node_id)) return ChannelDeny{node_id};
  const double bearing =
      holder_bearings_.contains(node_id) ? holder_bearings_.at(node_id) : 0.0;
  const double old_rate =
      grants_.at(node_id).channel.bandwidth_hz * cfg_.spectral_efficiency;
  release(node_id);
  const auto reply = handle(ChannelRequest{node_id, new_rate_bps, bearing});
  if (std::get_if<ChannelGrant>(&reply)) return reply;
  // Could not satisfy the new demand: put the node back on its old rate
  // (the spectrum we just freed is still the largest fit for it).
  const auto restore = handle(ChannelRequest{node_id, old_rate, bearing});
  (void)restore;  // best effort; the caller still sees the deny
  return ChannelDeny{node_id};
}

std::size_t InitProtocol::serve(SideChannel& channel, Rng& rng) {
  std::size_t n = 0;
  while (auto msg = channel.poll_at_ap()) {
    if (const auto* req = std::get_if<ChannelRequest>(&*msg)) {
      channel.ap_to_node(handle(*req), rng);
      ++n;
    }
  }
  return n;
}

bool InitProtocol::release(std::uint16_t node_id) {
  const bool had = grants_.erase(node_id) > 0;
  allocator_.release(node_id);
  holder_bearings_.erase(node_id);
  for (SharedChannel& sc : shared_) {
    for (std::size_t i = 0; i < sc.members.size(); ++i) {
      if (sc.members[i] == node_id) {
        sc.members.erase(sc.members.begin() + static_cast<long>(i));
        sc.bearings.erase(sc.bearings.begin() + static_cast<long>(i));
        sc.harmonics.erase(sc.harmonics.begin() + static_cast<long>(i));
        break;
      }
    }
  }
  std::erase_if(shared_, [](const SharedChannel& sc) { return sc.members.empty(); });
  return had;
}

}  // namespace mmx::mac
