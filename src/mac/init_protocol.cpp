#include "mmx/mac/init_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "mmx/obs/obs.hpp"

namespace mmx::mac {

std::vector<HarmonicSlot> default_sdm_slots() {
  // sin(theta_m) = m * delay / spacing = 0.125 m for the default
  // progressive TMA (delay 0.0625, d = lambda/2): nine slots on a ~7
  // degree pitch covering +/-30 degrees.
  std::vector<HarmonicSlot> slots;
  for (int m : {0, 1, -1, 2, -2, 3, -3, 4, -4}) slots.push_back({m, std::asin(0.125 * m)});
  return slots;
}

RejoinBackoff::RejoinBackoff(BackoffConfig cfg) : cfg_(cfg) {
  if (cfg.base_s <= 0.0) throw std::invalid_argument("RejoinBackoff: base_s must be > 0");
  if (cfg.factor < 1.0) throw std::invalid_argument("RejoinBackoff: factor must be >= 1");
  if (cfg.cap_s < cfg.base_s)
    throw std::invalid_argument("RejoinBackoff: cap_s must be >= base_s");
  if (cfg.jitter_frac < 0.0 || cfg.jitter_frac >= 1.0)
    throw std::invalid_argument("RejoinBackoff: jitter_frac must be in [0, 1)");
}

double RejoinBackoff::next_delay_s(Rng& rng, double hint_s) {
  double delay = cfg_.base_s;
  for (int i = 0; i < attempt_; ++i) {
    delay *= cfg_.factor;
    if (delay >= cfg_.cap_s) {
      delay = cfg_.cap_s;
      break;
    }
  }
  ++attempt_;
  // The AP's deny hint floors the schedule: the AP has seen the whole
  // band's occupancy, the node only its own attempt count. The hint may
  // exceed cap_s — under heavy overload that is the point.
  if (hint_s > delay) delay = hint_s;
  if (cfg_.jitter_frac > 0.0)
    delay *= rng.uniform(1.0 - cfg_.jitter_frac, 1.0 + cfg_.jitter_frac);
  return delay;
}

InitProtocol::InitProtocol(FdmAllocator allocator, rf::Vco node_vco, InitConfig cfg)
    : allocator_(std::move(allocator)), node_vco_(node_vco), cfg_(std::move(cfg)) {
  if (cfg_.spectral_efficiency <= 0.0)
    throw std::invalid_argument("InitProtocol: spectral efficiency must be > 0");
  if (cfg_.fsk_fraction <= 0.0 || cfg_.fsk_fraction >= 0.5)
    throw std::invalid_argument("InitProtocol: fsk_fraction must be in (0, 0.5)");
  if (cfg_.sdm_capacity < 1)
    throw std::invalid_argument("InitProtocol: sdm_capacity must be >= 1");
  if (cfg_.sdm_slots.empty()) cfg_.sdm_slots = default_sdm_slots();
  if (cfg_.overload.enabled) {
    if (cfg_.overload.min_rate_bps < 0.0)
      throw std::invalid_argument("InitProtocol: overload min_rate_bps must be >= 0");
    if (cfg_.overload.hint_base_s <= 0.0 || cfg_.overload.hint_max_s < cfg_.overload.hint_base_s)
      throw std::invalid_argument("InitProtocol: overload hint bounds invalid");
    if (cfg_.overload.best_fit) allocator_.set_policy(AllocPolicy::kBestFit);
  }
}

ChannelGrant InitProtocol::make_grant(std::uint16_t node_id, const ChannelAllocation& ch,
                                      int harmonic) const {
  ChannelGrant g;
  g.node_id = node_id;
  g.channel = ch;
  g.sdm_harmonic = harmonic;
  const double df = cfg_.fsk_fraction * ch.bandwidth_hz;
  g.vco_tune_v0 = node_vco_.voltage_for(ch.center_hz - df);
  g.vco_tune_v1 = node_vco_.voltage_for(ch.center_hz + df);
  return g;
}

SideChannelMessage InitProtocol::handle(const ChannelRequest& request) {
  if (request.rate_bps <= 0.0) return ChannelDeny{request.node_id};
  if (grants_.contains(request.node_id)) return grants_.at(request.node_id);  // idempotent
  holder_bearings_[request.node_id] = request.bearing_rad;

  const double bw = required_bandwidth_hz(request.rate_bps, cfg_.spectral_efficiency);
  // The node's VCO must be able to reach both tones.
  if (const auto ch = allocator_.allocate(request.node_id, bw)) {
    if (!node_vco_.covers(ch->low_hz()) || !node_vco_.covers(ch->high_hz())) {
      allocator_.release(request.node_id);
      return ChannelDeny{request.node_id};
    }
    ChannelGrant g = make_grant(request.node_id, *ch, 0);
    grants_[request.node_id] = g;
    requested_rate_bps_[request.node_id] = request.rate_bps;
    priority_[request.node_id] = request.priority;
    return g;
  }
  const SideChannelMessage sdm = try_sdm(request);
  if (std::get_if<ChannelGrant>(&sdm) || !cfg_.overload.enabled) return sdm;
  return handle_overload(request, bw);
}

std::optional<ChannelGrant> InitProtocol::try_fdm(std::uint16_t node_id, double bandwidth_hz) {
  const auto ch = allocator_.allocate(node_id, bandwidth_hz);
  if (!ch) return std::nullopt;
  if (!node_vco_.covers(ch->low_hz()) || !node_vco_.covers(ch->high_hz())) {
    allocator_.release(node_id);
    return std::nullopt;
  }
  ChannelGrant g = make_grant(node_id, *ch, 0);
  grants_[node_id] = g;
  return g;
}

SideChannelMessage InitProtocol::handle_overload(const ChannelRequest& request,
                                                 double bandwidth_hz) {
  const OverloadConfig& ov = cfg_.overload;
  // (a) Fragmentation is the only obstacle to the full demand: compact
  // the band and retry at the requested rate.
  if (ov.compaction && allocator_.largest_gap_hz() < bandwidth_hz &&
      allocator_.compacted_headroom_hz() >= bandwidth_hz) {
    compact_spectrum();
    if (const auto g = try_fdm(request.node_id, bandwidth_hz)) {
      requested_rate_bps_[request.node_id] = request.rate_bps;
      priority_[request.node_id] = request.priority;
      return *g;
    }
  }
  // (b) Rate demotion: walk the halving ladder below the request and
  // admit at the largest step that fits. promote_demoted() grows the
  // grant back later.
  if (ov.min_rate_bps > 0.0 && request.rate_bps > ov.min_rate_bps) {
    const double floor_bw = required_bandwidth_hz(ov.min_rate_bps, cfg_.spectral_efficiency);
    if (ov.compaction && allocator_.largest_gap_hz() < floor_bw &&
        allocator_.compacted_headroom_hz() >= floor_bw)
      compact_spectrum();
    if (const auto g = admit_demoted(request, request.rate_bps / 2.0)) return *g;
  }
  // (c) Shedding: shrink strictly-lower-priority incumbents to the floor
  // so the newcomer fits at (at least) its own floor.
  if (ov.shedding && ov.min_rate_bps > 0.0 && request.rate_bps >= ov.min_rate_bps) {
    const double floor_bw = required_bandwidth_hz(ov.min_rate_bps, cfg_.spectral_efficiency);
    if (shed_for(request, floor_bw)) {
      if (const auto g = admit_demoted(request, request.rate_bps)) return *g;
    }
  }
  // (d) Deny, with a deterministic backoff hint derived from occupancy
  // and deny pressure (no AP-side randomness: the node adds its own
  // jitter from its counter-derived stream via RejoinBackoff).
  const double hint = deny_hint_s();
  ++deny_streak_;
  ++overload_stats_.hinted_denies;
  overload_stats_.hint_delay_sum_s += hint;
  const double band = allocator_.band_high_hz() - allocator_.band_low_hz();
  MMX_OBS_GAUGE_SET("mac.spectrum.occupancy_pct",
                    100.0 * (1.0 - allocator_.free_bandwidth_hz() / band));
  MMX_OBS_GAUGE_SET("mac.admission.deny_pressure", deny_streak_);
  MMX_OBS_COUNT("mac.overload.hinted_denies", 1);
  return ChannelDeny{request.node_id, hint};
}

std::optional<ChannelGrant> InitProtocol::admit_demoted(const ChannelRequest& request,
                                                        double start_rate_bps) {
  const OverloadConfig& ov = cfg_.overload;
  double rate = start_rate_bps;
  while (true) {
    if (rate < ov.min_rate_bps) rate = ov.min_rate_bps;
    const double bw = required_bandwidth_hz(rate, cfg_.spectral_efficiency);
    if (bw <= allocator_.largest_gap_hz()) {
      if (const auto g = try_fdm(request.node_id, bw)) {
        requested_rate_bps_[request.node_id] = request.rate_bps;
        priority_[request.node_id] = request.priority;
        if (rate < request.rate_bps) {
          ++overload_stats_.demotions;
          MMX_OBS_COUNT("mac.overload.demotions", 1);
        }
        return g;
      }
    }
    if (rate <= ov.min_rate_bps) return std::nullopt;
    rate /= 2.0;
  }
}

double InitProtocol::deny_hint_s() const {
  const OverloadConfig& ov = cfg_.overload;
  const double band = allocator_.band_high_hz() - allocator_.band_low_hz();
  const double occ =
      band > 0.0 ? std::clamp(1.0 - allocator_.free_bandwidth_hz() / band, 0.0, 1.0) : 1.0;
  // Quadratic in occupancy (gentle until the band is nearly full), plus a
  // linear deny-pressure term so a storm spreads retries further apart
  // the longer it lasts. Saturates at hint_max_s.
  const double pressure = static_cast<double>(std::min<std::uint64_t>(deny_streak_, 32));
  const double hint = ov.hint_base_s * (1.0 + 15.0 * occ * occ + 0.25 * pressure);
  return std::min(ov.hint_max_s, hint);
}

bool InitProtocol::shed_for(const ChannelRequest& request, double needed_hz) {
  const double floor_bw = needed_hz;
  // Candidate victims: unshared FDM owners of strictly lower priority
  // holding more than the floor. Deterministic order — priority
  // ascending, node id breaking ties.
  std::vector<std::pair<std::uint8_t, std::uint16_t>> victims;
  double reclaimable = 0.0;
  for (const auto& [id, ch] : allocator_.allocations()) {
    if (!grants_.contains(id)) continue;
    if (channel_shared(ch)) continue;  // a shared channel's width is the group's
    const std::uint8_t prio = priority_.contains(id) ? priority_.at(id) : 1;
    if (prio >= request.priority) continue;
    if (ch.bandwidth_hz <= floor_bw + 1e-6) continue;
    victims.push_back({prio, id});
    reclaimable += ch.bandwidth_hz - floor_bw;
  }
  // Only shed when it is guaranteed to admit the newcomer (post-compact).
  if (allocator_.compacted_headroom_hz() + reclaimable + 1e-9 < needed_hz) return false;
  std::sort(victims.begin(), victims.end());
  for (const auto& [prio, id] : victims) {
    if (allocator_.compacted_headroom_hz() >= needed_hz) break;
    const auto cur = allocator_.lookup(id);
    if (!cur) continue;
    allocator_.release(id);
    auto shrunk = allocator_.allocate(id, floor_bw);
    if (shrunk && (!node_vco_.covers(shrunk->low_hz()) || !node_vco_.covers(shrunk->high_hz()))) {
      allocator_.release(id);
      shrunk = std::nullopt;
    }
    if (!shrunk) {
      allocator_.restore(id, *cur);
      continue;
    }
    const ChannelGrant g = make_grant(id, *shrunk, 0);
    grants_[id] = g;
    pending_retunes_.push_back(g);
    ++overload_stats_.shed_demotions;
    ++overload_stats_.retunes;
    MMX_OBS_COUNT("mac.overload.shed_demotions", 1);
  }
  if (cfg_.overload.compaction && allocator_.largest_gap_hz() < needed_hz &&
      allocator_.compacted_headroom_hz() >= needed_hz)
    compact_spectrum();
  verify_allocator_invariants();
  return allocator_.largest_gap_hz() >= needed_hz;
}

std::size_t InitProtocol::compact_spectrum() {
  const std::vector<RetuneEvent> moved = allocator_.compact();
  if (moved.empty()) return 0;
  ++overload_stats_.compactions;
  MMX_OBS_COUNT("mac.overload.compactions", 1);
  for (const RetuneEvent& ev : moved) retune_channel(ev.from, ev.to);
  verify_allocator_invariants();
  return moved.size();
}

void InitProtocol::retune_channel(const ChannelAllocation& from, const ChannelAllocation& to) {
  // Every grant on `from` moves — the allocator owner and any SDM group
  // members sharing the channel keep their harmonics, only the tones move.
  for (auto& [id, g] : grants_) {
    if (g.channel == from) {
      g = make_grant(id, to, g.sdm_harmonic);
      pending_retunes_.push_back(g);
      ++overload_stats_.retunes;
    }
  }
  for (SharedChannel& sc : shared_)
    if (sc.channel == from) sc.channel = to;
}

std::vector<ChannelGrant> InitProtocol::promote_demoted() {
  std::vector<ChannelGrant> promoted;
  if (!cfg_.overload.enabled) return promoted;
  for (const auto& [id, want_rate] : requested_rate_bps_) {
    const auto git = grants_.find(id);
    if (git == grants_.end()) continue;
    const ChannelAllocation cur = git->second.channel;
    if (channel_shared(cur)) continue;  // group width is fixed by its members
    const auto owned = allocator_.lookup(id);
    if (!owned || !(*owned == cur)) continue;
    const double want_bw = required_bandwidth_hz(want_rate, cfg_.spectral_efficiency);
    if (cur.bandwidth_hz + 1e-6 >= want_bw) continue;  // not demoted
    // Walk the halving ladder down from the requested rate and take the
    // largest step that still beats the current width (the freed slot can
    // merge with a neighbouring gap); put the original back untouched if
    // nothing fits.
    allocator_.release(id);
    std::optional<ChannelAllocation> ch;
    for (double rate = want_rate; ; rate /= 2.0) {
      const double bw = required_bandwidth_hz(rate, cfg_.spectral_efficiency);
      if (bw <= cur.bandwidth_hz + 1e-6) break;  // no longer a promotion
      if (bw <= allocator_.largest_gap_hz()) {
        ch = allocator_.allocate(id, bw);
        break;
      }
    }
    if (ch && (!node_vco_.covers(ch->low_hz()) || !node_vco_.covers(ch->high_hz()))) {
      allocator_.release(id);
      ch = std::nullopt;
    }
    if (!ch) {
      allocator_.restore(id, cur);
      continue;
    }
    const ChannelGrant g = make_grant(id, *ch, git->second.sdm_harmonic);
    git->second = g;
    pending_retunes_.push_back(g);
    promoted.push_back(g);
    ++overload_stats_.promotions;
    ++overload_stats_.retunes;
    MMX_OBS_COUNT("mac.overload.promotions", 1);
  }
  if (!promoted.empty()) verify_allocator_invariants();
  return promoted;
}

std::vector<ChannelGrant> InitProtocol::take_retunes() {
  return std::exchange(pending_retunes_, {});
}

std::optional<double> InitProtocol::granted_rate_bps(std::uint16_t node_id) const {
  const auto it = grants_.find(node_id);
  if (it == grants_.end()) return std::nullopt;
  return it->second.channel.bandwidth_hz * cfg_.spectral_efficiency;
}

void InitProtocol::verify_allocator_invariants() {
  std::vector<ChannelAllocation> used;
  used.reserve(allocator_.allocations().size());
  for (const auto& [id, ch] : allocator_.allocations()) used.push_back(ch);
  std::sort(used.begin(), used.end(),
            [](const auto& a, const auto& b) { return a.low_hz() < b.low_hz(); });
  constexpr double kEps = 1e-6;
  for (std::size_t i = 0; i < used.size(); ++i) {
    if (used[i].low_hz() < allocator_.band_low_hz() - kEps ||
        used[i].high_hz() > allocator_.band_high_hz() + kEps)
      ++overload_stats_.invariant_violations;
    if (i > 0 && used[i].low_hz() + kEps < used[i - 1].high_hz() + allocator_.guard_hz())
      ++overload_stats_.invariant_violations;
  }
}

bool InitProtocol::channel_shared(const ChannelAllocation& ch) const {
  return std::any_of(shared_.begin(), shared_.end(),
                     [&](const SharedChannel& sc) { return sc.channel == ch; });
}

std::optional<int> InitProtocol::best_free_slot(const std::vector<int>& used,
                                                double bearing_rad) const {
  std::optional<int> best;
  double best_err = cfg_.max_harmonic_mismatch_rad;
  for (const HarmonicSlot& slot : cfg_.sdm_slots) {
    if (std::find(used.begin(), used.end(), slot.harmonic) != used.end()) continue;
    const double err = std::abs(bearing_rad - slot.angle_rad);
    if (err <= best_err) {
      best_err = err;
      best = slot.harmonic;
    }
  }
  return best;
}

SideChannelMessage InitProtocol::try_sdm(const ChannelRequest& request) {
  const double bw = required_bandwidth_hz(request.rate_bps, cfg_.spectral_efficiency);
  // Join an existing shared pool or convert an FDM holder's channel into
  // a shared one — member channels must be at least as wide as requested,
  // bearings must be separable, and a TMA harmonic must steer close
  // enough to the newcomer's bearing.
  auto bearing_ok = [&](const std::vector<double>& bearings) {
    return std::all_of(bearings.begin(), bearings.end(), [&](double b) {
      return std::abs(b - request.bearing_rad) >= cfg_.min_bearing_separation_rad;
    });
  };

  // 1) Existing shared channels with a suitable free harmonic.
  for (SharedChannel& sc : shared_) {
    if (sc.channel.bandwidth_hz + 1e-6 < bw) continue;
    if (static_cast<int>(sc.members.size()) >= cfg_.sdm_capacity) continue;
    if (!bearing_ok(sc.bearings)) continue;
    const auto slot = best_free_slot(sc.harmonics, request.bearing_rad);
    if (!slot) continue;
    sc.members.push_back(request.node_id);
    sc.bearings.push_back(request.bearing_rad);
    sc.harmonics.push_back(*slot);
    ChannelGrant g = make_grant(request.node_id, sc.channel, *slot);
    grants_[request.node_id] = g;
    requested_rate_bps_[request.node_id] = request.rate_bps;
    priority_[request.node_id] = request.priority;
    return g;
  }

  // 2) Convert a wide-enough FDM-only channel into a shared channel. The
  // incumbent keeps transmitting as before; the AP re-points it onto the
  // harmonic nearest its bearing and gives the newcomer another slot.
  for (const auto& [holder, ch] : allocator_.allocations()) {
    if (ch.bandwidth_hz + 1e-6 < bw) continue;
    if (!grants_.contains(holder)) continue;
    if (channel_shared(ch)) continue;
    const double holder_bearing =
        holder_bearings_.contains(holder) ? holder_bearings_.at(holder) : 0.0;
    if (std::abs(holder_bearing - request.bearing_rad) < cfg_.min_bearing_separation_rad)
      continue;
    const auto holder_slot = best_free_slot({}, holder_bearing);
    if (!holder_slot) continue;
    const auto new_slot = best_free_slot({*holder_slot}, request.bearing_rad);
    if (!new_slot) continue;

    SharedChannel sc;
    sc.channel = ch;
    sc.members = {holder, request.node_id};
    sc.bearings = {holder_bearing, request.bearing_rad};
    sc.harmonics = {*holder_slot, *new_slot};
    shared_.push_back(sc);
    // Update the incumbent's grant with its (possibly nonzero) harmonic.
    grants_[holder] = make_grant(holder, ch, *holder_slot);
    ChannelGrant g = make_grant(request.node_id, ch, *new_slot);
    grants_[request.node_id] = g;
    requested_rate_bps_[request.node_id] = request.rate_bps;
    priority_[request.node_id] = request.priority;
    return g;
  }
  return ChannelDeny{request.node_id};
}

SideChannelMessage InitProtocol::modify_rate(std::uint16_t node_id, double new_rate_bps) {
  if (!grants_.contains(node_id)) return ChannelDeny{node_id};
  const double bearing =
      holder_bearings_.contains(node_id) ? holder_bearings_.at(node_id) : 0.0;
  // Snapshot everything needed to reinstate the node exactly on failure:
  // the grant (channel, harmonic, VCO voltages), the allocator entry, the
  // original requested rate/priority, and SDM membership.
  const ChannelGrant old_grant = grants_.at(node_id);
  const std::optional<ChannelAllocation> owned = allocator_.lookup(node_id);
  const double old_requested =
      requested_rate_bps_.contains(node_id)
          ? requested_rate_bps_.at(node_id)
          : old_grant.channel.bandwidth_hz * cfg_.spectral_efficiency;
  const std::uint8_t prio = priority_.contains(node_id) ? priority_.at(node_id) : 1;
  bool was_member = false;
  for (const SharedChannel& sc : shared_)
    if (std::find(sc.members.begin(), sc.members.end(), node_id) != sc.members.end())
      was_member = true;

  release(node_id);
  const auto reply = handle(ChannelRequest{node_id, new_rate_bps, bearing, prio});
  if (std::get_if<ChannelGrant>(&reply)) return reply;

  // Could not satisfy the new demand: reinstate the previous grant
  // exactly instead of re-running admission on the old rate (which could
  // land the node elsewhere in the band).
  auto reinstate_books = [&] {
    holder_bearings_[node_id] = bearing;
    requested_rate_bps_[node_id] = old_requested;
    priority_[node_id] = prio;
  };
  // If the old channel still backs a live shared group (ownership moved
  // to a surviving member on release), rejoin it as a member.
  const auto group = std::find_if(shared_.begin(), shared_.end(), [&](const SharedChannel& sc) {
    return sc.channel == old_grant.channel;
  });
  if (was_member && group != shared_.end()) {
    group->members.push_back(node_id);
    group->bearings.push_back(bearing);
    group->harmonics.push_back(old_grant.sdm_harmonic);
    grants_[node_id] = old_grant;
    reinstate_books();
    return ChannelDeny{node_id};
  }
  if (owned && !allocator_.restore(node_id, *owned)) {
    // The freed spot was consumed during the failed attempt (possible
    // only when overload compaction ran). Keep the node's rate by
    // placing the same width wherever it fits now.
    if (const auto ch = allocator_.allocate(node_id, old_grant.channel.bandwidth_hz)) {
      const ChannelGrant g = make_grant(node_id, *ch, old_grant.sdm_harmonic);
      grants_[node_id] = g;
      pending_retunes_.push_back(g);
      ++overload_stats_.retunes;
      reinstate_books();
    }
    return ChannelDeny{node_id};  // spectrum gone entirely: the node must rejoin
  }
  grants_[node_id] = old_grant;
  reinstate_books();
  if (was_member)
    shared_.push_back({old_grant.channel, {node_id}, {bearing}, {old_grant.sdm_harmonic}});
  return ChannelDeny{node_id};
}

std::size_t InitProtocol::serve(SideChannel& channel, Rng& rng) {
  std::size_t n = 0;
  while (auto msg = channel.poll_at_ap()) {
    if (const auto* req = std::get_if<ChannelRequest>(&*msg)) {
      channel.ap_to_node(handle(*req), rng);
      ++n;
    }
  }
  // Deliver re-tune notifications (compaction / shedding / promotion).
  // Empty unless overload control ran, so legacy serve loops are
  // draw-for-draw identical.
  for (const ChannelGrant& g : take_retunes()) channel.ap_to_node(g, rng);
  return n;
}

bool InitProtocol::release(std::uint16_t node_id) {
  // SDM ownership succession (overload mode): when the allocator owner
  // of a shared channel leaves, hand the spectrum to the lowest-id
  // surviving member instead of freeing it under the group. The legacy
  // path keeps the historical (buggy, but golden-pinned) free.
  if (cfg_.overload.enabled) {
    if (const auto owned = allocator_.lookup(node_id)) {
      for (const SharedChannel& sc : shared_) {
        if (!(sc.channel == *owned)) continue;
        std::uint16_t successor = 0;
        bool found = false;
        for (std::uint16_t m : sc.members)
          if (m != node_id && (!found || m < successor)) {
            successor = m;
            found = true;
          }
        if (found) allocator_.transfer(node_id, successor);
        break;
      }
    }
  }
  const bool had = grants_.erase(node_id) > 0;
  allocator_.release(node_id);
  holder_bearings_.erase(node_id);
  for (SharedChannel& sc : shared_) {
    for (std::size_t i = 0; i < sc.members.size(); ++i) {
      if (sc.members[i] == node_id) {
        sc.members.erase(sc.members.begin() + static_cast<long>(i));
        sc.bearings.erase(sc.bearings.begin() + static_cast<long>(i));
        sc.harmonics.erase(sc.harmonics.begin() + static_cast<long>(i));
        break;
      }
    }
  }
  std::erase_if(shared_, [](const SharedChannel& sc) { return sc.members.empty(); });
  requested_rate_bps_.erase(node_id);
  priority_.erase(node_id);
  // Freed spectrum relieves deny pressure.
  if (had) deny_streak_ = 0;
  return had;
}

}  // namespace mmx::mac
