#include "mmx/mac/rate_control.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmx::mac {

RateController::RateController(double initial_rate_bps, RateControlConfig cfg)
    : cfg_(cfg), rate_(initial_rate_bps) {
  if (cfg.min_rate_bps <= 0.0 || cfg.min_rate_bps > cfg.max_rate_bps)
    throw std::invalid_argument("RateController: need 0 < min <= max rate");
  if (cfg.backoff_factor <= 0.0 || cfg.backoff_factor >= 1.0)
    throw std::invalid_argument("RateController: backoff factor must be in (0,1)");
  if (cfg.recovery_step_bps <= 0.0)
    throw std::invalid_argument("RateController: recovery step must be > 0");
  if (cfg.failures_to_backoff < 1)
    throw std::invalid_argument("RateController: failures_to_backoff must be >= 1");
  if (initial_rate_bps < cfg.min_rate_bps || initial_rate_bps > cfg.max_rate_bps)
    throw std::invalid_argument("RateController: initial rate outside [min, max]");
}

void RateController::set_max_rate_bps(double max_rate_bps) {
  cfg_.max_rate_bps = std::max(cfg_.min_rate_bps, max_rate_bps);
  rate_ = std::clamp(rate_, cfg_.min_rate_bps, cfg_.max_rate_bps);
}

void RateController::on_success() {
  fails_ = 0;
  rate_ = std::min(cfg_.max_rate_bps, rate_ + cfg_.recovery_step_bps);
}

void RateController::on_failure() {
  if (++fails_ < cfg_.failures_to_backoff) return;
  fails_ = 0;
  rate_ = std::max(cfg_.min_rate_bps, rate_ * cfg_.backoff_factor);
  ++backoffs_;
}

}  // namespace mmx::mac
