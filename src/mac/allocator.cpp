#include "mmx/mac/allocator.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmx::mac {

double required_bandwidth_hz(double rate_bps, double spectral_efficiency) {
  if (rate_bps <= 0.0) throw std::invalid_argument("required_bandwidth_hz: rate must be > 0");
  if (spectral_efficiency <= 0.0)
    throw std::invalid_argument("required_bandwidth_hz: efficiency must be > 0");
  return rate_bps / spectral_efficiency;
}

FdmAllocator::FdmAllocator(double band_low_hz, double band_high_hz, double guard_hz,
                           AllocPolicy policy)
    : low_(band_low_hz), high_(band_high_hz), guard_(guard_hz), policy_(policy) {
  if (band_low_hz >= band_high_hz) throw std::invalid_argument("FdmAllocator: empty band");
  if (guard_hz < 0.0) throw std::invalid_argument("FdmAllocator: guard must be >= 0");
}

std::vector<ChannelAllocation> FdmAllocator::sorted_used() const {
  std::vector<ChannelAllocation> used;
  used.reserve(by_node_.size());
  for (const auto& [id, ch] : by_node_) used.push_back(ch);
  std::sort(used.begin(), used.end(),
            [](const auto& a, const auto& b) { return a.low_hz() < b.low_hz(); });
  return used;
}

std::optional<ChannelAllocation> FdmAllocator::allocate(std::uint16_t node_id,
                                                        double bandwidth_hz) {
  if (bandwidth_hz <= 0.0) throw std::invalid_argument("FdmAllocator: bandwidth must be > 0");
  if (by_node_.contains(node_id))
    throw std::invalid_argument("FdmAllocator: node already holds a channel");

  const std::vector<ChannelAllocation> used = sorted_used();

  // Walk the gaps low-to-high (guard applies between channels, not at
  // the band edges). First fit takes the lowest fitting gap; best fit
  // takes the tightest one, ties toward the low edge — both pure
  // functions of the occupied set, so replays stay bit-identical.
  double best_low = 0.0;
  double best_usable = -1.0;
  double cursor = low_;
  for (std::size_t i = 0; i <= used.size(); ++i) {
    const double gap_end = (i < used.size()) ? used[i].low_hz() - guard_ : high_;
    const double usable = gap_end - cursor;
    if (usable >= bandwidth_hz) {
      if (policy_ == AllocPolicy::kFirstFit) {
        best_low = cursor;
        best_usable = usable;
        break;
      }
      if (best_usable < 0.0 || usable < best_usable) {
        best_low = cursor;
        best_usable = usable;
      }
    }
    if (i < used.size()) cursor = used[i].high_hz() + guard_;
  }
  if (best_usable < 0.0) return std::nullopt;
  ChannelAllocation ch{best_low + bandwidth_hz / 2.0, bandwidth_hz};
  by_node_[node_id] = ch;
  return ch;
}

bool FdmAllocator::release(std::uint16_t node_id) { return by_node_.erase(node_id) > 0; }

bool FdmAllocator::restore(std::uint16_t node_id, const ChannelAllocation& ch) {
  if (by_node_.contains(node_id)) return false;
  if (ch.bandwidth_hz <= 0.0) return false;
  // Slack scaled to the band magnitude: at 24 GHz one ulp is ~4e-6 Hz,
  // so an absolute epsilon would spuriously reject a channel sitting
  // exactly at guard distance from its neighbour (the common case — the
  // exact bits a prior allocate() produced). ~24 Hz of slack at 24 GHz
  // is far below any guard or channel width.
  const double kEps = 1e-9 * std::max(1.0, high_);
  if (ch.low_hz() < low_ - kEps || ch.high_hz() > high_ + kEps) return false;
  for (const auto& [id, other] : by_node_) {
    const bool below = ch.high_hz() + guard_ <= other.low_hz() + kEps;
    const bool above = other.high_hz() + guard_ <= ch.low_hz() + kEps;
    if (!below && !above) return false;
  }
  by_node_[node_id] = ch;
  return true;
}

bool FdmAllocator::transfer(std::uint16_t from, std::uint16_t to) {
  const auto it = by_node_.find(from);
  if (it == by_node_.end() || by_node_.contains(to)) return false;
  const ChannelAllocation ch = it->second;
  by_node_.erase(it);
  by_node_[to] = ch;
  return true;
}

std::vector<RetuneEvent> FdmAllocator::compact() {
  // Owners in ascending frequency order; channels cannot overlap, so the
  // order is unambiguous.
  std::vector<std::pair<std::uint16_t, ChannelAllocation>> holders(by_node_.begin(),
                                                                   by_node_.end());
  std::sort(holders.begin(), holders.end(), [](const auto& a, const auto& b) {
    return a.second.low_hz() < b.second.low_hz();
  });

  std::vector<RetuneEvent> moved;
  // Moves below this are re-derivation noise (one ulp at the band's top
  // edge is ~4e-6 Hz at 24 GHz), not spectrum worth a re-tune round trip.
  const double kMinMoveHz = 1e-9 * std::max(1.0, high_);
  double cursor = low_;
  for (const auto& [id, ch] : holders) {
    const ChannelAllocation to{cursor + ch.bandwidth_hz / 2.0, ch.bandwidth_hz};
    if (ch.center_hz - to.center_hz > kMinMoveHz) {
      by_node_[id] = to;
      moved.push_back({id, ch, to});
    }
    cursor += ch.bandwidth_hz + guard_;
  }
  return moved;
}

std::optional<ChannelAllocation> FdmAllocator::lookup(std::uint16_t node_id) const {
  const auto it = by_node_.find(node_id);
  if (it == by_node_.end()) return std::nullopt;
  return it->second;
}

double FdmAllocator::free_bandwidth_hz() const {
  double used = 0.0;
  for (const auto& [id, ch] : by_node_) used += ch.bandwidth_hz;
  return (high_ - low_) - used;
}

double FdmAllocator::largest_gap_hz() const {
  const std::vector<ChannelAllocation> used = sorted_used();
  double best = 0.0;
  double cursor = low_;
  for (std::size_t i = 0; i <= used.size(); ++i) {
    const double gap_end = (i < used.size()) ? used[i].low_hz() - guard_ : high_;
    best = std::max(best, gap_end - cursor);
    if (i < used.size()) cursor = used[i].high_hz() + guard_;
  }
  // Empty band: the loop's single pass yields high - low (no guard at
  // the edges). Full band: every usable width is <= 0 and the 0.0 seed
  // wins. Both documented in the header.
  return std::max(0.0, best);
}

double FdmAllocator::fragmentation() const {
  const std::vector<ChannelAllocation> used = sorted_used();
  // Raw gap widths (no guard subtraction): their sum is exactly
  // free_bandwidth_hz(), which keeps the ratio well-defined.
  double widest = 0.0;
  double free = 0.0;
  double cursor = low_;
  for (std::size_t i = 0; i <= used.size(); ++i) {
    const double gap_end = (i < used.size()) ? used[i].low_hz() : high_;
    const double gap = std::max(0.0, gap_end - cursor);
    widest = std::max(widest, gap);
    free += gap;
    if (i < used.size()) cursor = std::max(cursor, used[i].high_hz());
  }
  if (free <= 0.0) return 0.0;  // a full band is not fragmented
  return 1.0 - widest / free;
}

double FdmAllocator::compacted_headroom_hz() const {
  if (by_node_.empty()) return high_ - low_;
  double used = 0.0;
  for (const auto& [id, ch] : by_node_) used += ch.bandwidth_hz;
  // Packed: n channels consume n-1 inter-channel guards; an appended
  // channel pays one more against the packed block.
  const double n = static_cast<double>(by_node_.size());
  return std::max(0.0, (high_ - low_) - used - n * guard_);
}

}  // namespace mmx::mac
