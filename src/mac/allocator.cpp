#include "mmx/mac/allocator.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmx::mac {

double required_bandwidth_hz(double rate_bps, double spectral_efficiency) {
  if (rate_bps <= 0.0) throw std::invalid_argument("required_bandwidth_hz: rate must be > 0");
  if (spectral_efficiency <= 0.0)
    throw std::invalid_argument("required_bandwidth_hz: efficiency must be > 0");
  return rate_bps / spectral_efficiency;
}

FdmAllocator::FdmAllocator(double band_low_hz, double band_high_hz, double guard_hz)
    : low_(band_low_hz), high_(band_high_hz), guard_(guard_hz) {
  if (band_low_hz >= band_high_hz) throw std::invalid_argument("FdmAllocator: empty band");
  if (guard_hz < 0.0) throw std::invalid_argument("FdmAllocator: guard must be >= 0");
}

std::optional<ChannelAllocation> FdmAllocator::allocate(std::uint16_t node_id,
                                                        double bandwidth_hz) {
  if (bandwidth_hz <= 0.0) throw std::invalid_argument("FdmAllocator: bandwidth must be > 0");
  if (by_node_.contains(node_id))
    throw std::invalid_argument("FdmAllocator: node already holds a channel");

  // Sorted occupied intervals.
  std::vector<ChannelAllocation> used;
  used.reserve(by_node_.size());
  for (const auto& [id, ch] : by_node_) used.push_back(ch);
  std::sort(used.begin(), used.end(),
            [](const auto& a, const auto& b) { return a.low_hz() < b.low_hz(); });

  // First-fit over the gaps (guard applies between channels, not at the
  // band edges).
  double cursor = low_;
  for (std::size_t i = 0; i <= used.size(); ++i) {
    const double gap_end = (i < used.size()) ? used[i].low_hz() - guard_ : high_;
    if (gap_end - cursor >= bandwidth_hz) {
      ChannelAllocation ch{cursor + bandwidth_hz / 2.0, bandwidth_hz};
      by_node_[node_id] = ch;
      return ch;
    }
    if (i < used.size()) cursor = used[i].high_hz() + guard_;
  }
  return std::nullopt;
}

bool FdmAllocator::release(std::uint16_t node_id) { return by_node_.erase(node_id) > 0; }

std::optional<ChannelAllocation> FdmAllocator::lookup(std::uint16_t node_id) const {
  const auto it = by_node_.find(node_id);
  if (it == by_node_.end()) return std::nullopt;
  return it->second;
}

double FdmAllocator::free_bandwidth_hz() const {
  double used = 0.0;
  for (const auto& [id, ch] : by_node_) used += ch.bandwidth_hz;
  return (high_ - low_) - used;
}

double FdmAllocator::largest_gap_hz() const {
  std::vector<ChannelAllocation> used;
  used.reserve(by_node_.size());
  for (const auto& [id, ch] : by_node_) used.push_back(ch);
  std::sort(used.begin(), used.end(),
            [](const auto& a, const auto& b) { return a.low_hz() < b.low_hz(); });
  double best = 0.0;
  double cursor = low_;
  for (std::size_t i = 0; i <= used.size(); ++i) {
    const double gap_end = (i < used.size()) ? used[i].low_hz() - guard_ : high_;
    best = std::max(best, gap_end - cursor);
    if (i < used.size()) cursor = used[i].high_hz() + guard_;
  }
  return std::max(0.0, best);
}

}  // namespace mmx::mac
