#include "mmx/mac/side_channel.hpp"

#include <stdexcept>

namespace mmx::mac {

SideChannel::SideChannel(double drop_probability) : drop_probability_(drop_probability) {
  if (drop_probability < 0.0 || drop_probability >= 1.0)
    throw std::invalid_argument("SideChannel: drop probability must be in [0, 1)");
}

void SideChannel::node_to_ap(const SideChannelMessage& msg, Rng& rng) {
  if (!rng.chance(drop_probability_)) to_ap_.push_back(msg);
}

void SideChannel::ap_to_node(const SideChannelMessage& msg, Rng& rng) {
  if (!rng.chance(drop_probability_)) to_node_.push_back(msg);
}

std::optional<SideChannelMessage> SideChannel::poll_at_ap() {
  if (to_ap_.empty()) return std::nullopt;
  SideChannelMessage msg = to_ap_.front();
  to_ap_.pop_front();
  return msg;
}

std::optional<SideChannelMessage> SideChannel::poll_at_node() {
  if (to_node_.empty()) return std::nullopt;
  SideChannelMessage msg = to_node_.front();
  to_node_.pop_front();
  return msg;
}

}  // namespace mmx::mac
