// Out-of-band initialization link (paper §7a: "The initialization takes
// place only once using a WiFi or Bluetooth module").
//
// Modelled as a reliable bidirectional message pipe with optional loss
// (for retry testing). Message payloads are the init-protocol PDUs.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <variant>

#include "mmx/common/rng.hpp"
#include "mmx/mac/allocator.hpp"

namespace mmx::mac {

/// Node -> AP: "I need this data rate" (the AP derives bandwidth and, for
/// SDM grouping, uses the node's registration bearing).
struct ChannelRequest {
  std::uint16_t node_id = 0;
  double rate_bps = 0.0;
  double bearing_rad = 0.0;  ///< AP-frame azimuth learned at registration
  /// Admission priority (overload control, docs/ROBUSTNESS.md): under
  /// oversubscription the AP may shrink grants of strictly
  /// lower-priority incumbents to admit a newcomer at its rate floor.
  /// Default 1; 0 marks background traffic that is always sheddable.
  std::uint8_t priority = 1;
};

/// AP -> node: assigned channel + modulation parameters.
struct ChannelGrant {
  std::uint16_t node_id = 0;
  ChannelAllocation channel;
  int sdm_harmonic = 0;        ///< 0 = plain FDM
  double vco_tune_v0 = 0.0;    ///< tuning voltage for bit-0 tone
  double vco_tune_v1 = 0.0;    ///< tuning voltage for bit-1 tone
};

/// AP -> node: request denied (no spectrum / no harmonic). Under
/// overload control the deny carries an AP-computed backoff hint so an
/// oversubscribed population desynchronizes its retries instead of
/// storming the side channel in lockstep.
struct ChannelDeny {
  std::uint16_t node_id = 0;
  /// Suggested wait before retrying, derived from current band occupancy
  /// and deny pressure (deterministic — the node adds its own jitter via
  /// RejoinBackoff). 0 = no hint (legacy deny).
  double retry_after_s = 0.0;
};

using SideChannelMessage = std::variant<ChannelRequest, ChannelGrant, ChannelDeny>;

/// Half-duplex message pipe with independent directions.
class SideChannel {
 public:
  /// `drop_probability` models the lossy bootstrap radio.
  explicit SideChannel(double drop_probability = 0.0);

  void node_to_ap(const SideChannelMessage& msg, Rng& rng);
  void ap_to_node(const SideChannelMessage& msg, Rng& rng);

  std::optional<SideChannelMessage> poll_at_ap();
  std::optional<SideChannelMessage> poll_at_node();

  std::size_t pending_at_ap() const { return to_ap_.size(); }
  std::size_t pending_at_node() const { return to_node_.size(); }

 private:
  double drop_probability_;
  std::deque<SideChannelMessage> to_ap_;
  std::deque<SideChannelMessage> to_node_;
};

}  // namespace mmx::mac
