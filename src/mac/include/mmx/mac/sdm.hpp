// Spatial-division multiplexing scheduler over the AP's Time-Modulated
// Array (paper §7b).
//
// When the demanded bandwidth exceeds the ISM band, nodes must share
// frequency channels; the TMA separates co-channel nodes by mapping their
// arrival bearings onto different switching harmonics. The scheduler
// assigns each bearing to the closest steered harmonic and reports the
// resulting worst-case signal-to-interference ratio.
#pragma once

#include <span>
#include <vector>

#include "mmx/antenna/tma.hpp"

namespace mmx::mac {

struct SdmAssignment {
  std::size_t node_index;   ///< index into the input bearing list
  int harmonic;             ///< TMA harmonic carrying this node
  double steered_angle_rad; ///< where that harmonic points
};

struct SdmPlan {
  std::vector<SdmAssignment> assignments;
  double min_sir_db = 0.0;  ///< worst co-channel separation in the group
};

class SdmScheduler {
 public:
  /// `max_harmonic`: harmonics 0..max_harmonic are usable (each consumes
  /// `switch_rate` Hz of IF spectrum at the AP).
  SdmScheduler(antenna::TmaSpec spec, double delay_frac = 0.125, double tau = 0.45,
               int max_harmonic = 3);

  /// Greedy assignment: each bearing takes the free harmonic whose
  /// steered direction is closest. Throws if there are more bearings
  /// than usable harmonics.
  SdmPlan plan(std::span<const double> bearings_rad) const;

  /// Number of co-channel nodes one TMA group can carry.
  int capacity() const { return max_harmonic_ + 1; }

  const antenna::TimeModulatedArray& tma() const { return tma_; }

 private:
  antenna::TimeModulatedArray tma_;
  int max_harmonic_;
};

}  // namespace mmx::mac
