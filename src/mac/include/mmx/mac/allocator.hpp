// FDM channel allocation (paper §7a).
//
// "mmX divides the available spectrum between nodes depending on their
// data rate demand... The channels are specified by the AP to each node
// in the initialization stage." The allocator manages the 250 MHz ISM
// band as a 1-D free list with guard bands, sized per node from its rate
// demand and the modulation's spectral efficiency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace mmx::mac {

struct ChannelAllocation {
  double center_hz = 0.0;
  double bandwidth_hz = 0.0;

  double low_hz() const { return center_hz - bandwidth_hz / 2.0; }
  double high_hz() const { return center_hz + bandwidth_hz / 2.0; }
  bool operator==(const ChannelAllocation&) const = default;
};

/// Bandwidth a node needs for `rate_bps` with OTAM's ASK-FSK modulation.
/// OOK-style signalling occupies ~(1/efficiency) Hz per bit/s, plus the
/// FSK tone spread.
double required_bandwidth_hz(double rate_bps, double spectral_efficiency = 0.8);

class FdmAllocator {
 public:
  /// Band [low, high] with `guard_hz` kept between adjacent channels.
  FdmAllocator(double band_low_hz, double band_high_hz, double guard_hz = 1e6);

  /// First-fit allocation. Returns nullopt when no contiguous gap fits.
  std::optional<ChannelAllocation> allocate(std::uint16_t node_id, double bandwidth_hz);

  /// Release a node's channel; false if the node held none.
  bool release(std::uint16_t node_id);

  std::optional<ChannelAllocation> lookup(std::uint16_t node_id) const;

  /// Total un-allocated spectrum (ignores fragmentation).
  double free_bandwidth_hz() const;

  /// Largest single allocatable channel right now (respects guards).
  double largest_gap_hz() const;

  std::size_t num_allocations() const { return by_node_.size(); }
  const std::map<std::uint16_t, ChannelAllocation>& allocations() const { return by_node_; }

  double band_low_hz() const { return low_; }
  double band_high_hz() const { return high_; }

 private:
  double low_;
  double high_;
  double guard_;
  std::map<std::uint16_t, ChannelAllocation> by_node_;
};

}  // namespace mmx::mac
