// FDM channel allocation (paper §7a).
//
// "mmX divides the available spectrum between nodes depending on their
// data rate demand... The channels are specified by the AP to each node
// in the initialization stage." The allocator manages the 250 MHz ISM
// band as a 1-D free list with guard bands, sized per node from its rate
// demand and the modulation's spectral efficiency.
//
// Under churn the band fragments: departures punch holes first-fit
// placement cannot reuse for wider demands. The overload-control path
// (docs/ROBUSTNESS.md) therefore adds best-fit placement and an explicit
// compact() that slides every grant down-band — both deterministic, so
// an AP replaying the same request sequence produces the same spectrum
// map bit for bit.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace mmx::mac {

struct ChannelAllocation {
  double center_hz = 0.0;
  double bandwidth_hz = 0.0;

  double low_hz() const { return center_hz - bandwidth_hz / 2.0; }
  double high_hz() const { return center_hz + bandwidth_hz / 2.0; }
  bool operator==(const ChannelAllocation&) const = default;
};

/// Bandwidth a node needs for `rate_bps` with OTAM's ASK-FSK modulation.
/// OOK-style signalling occupies ~(1/efficiency) Hz per bit/s, plus the
/// FSK tone spread.
double required_bandwidth_hz(double rate_bps, double spectral_efficiency = 0.8);

/// Gap-selection policy. kFirstFit is the historical behavior (lowest
/// fitting gap) and stays the default so pre-overload request sequences
/// replay bit-identically; kBestFit takes the tightest fitting gap
/// (ties broken toward the band's low edge), which keeps large gaps
/// intact under churn and is what the overload controller enables.
enum class AllocPolicy : std::uint8_t { kFirstFit, kBestFit };

/// One channel moved by compact(): the holder must re-tune from `from`
/// to `to` (same bandwidth, lower center).
struct RetuneEvent {
  std::uint16_t node_id = 0;
  ChannelAllocation from;
  ChannelAllocation to;
  bool operator==(const RetuneEvent&) const = default;
};

class FdmAllocator {
 public:
  /// Band [low, high] with `guard_hz` kept between adjacent channels.
  FdmAllocator(double band_low_hz, double band_high_hz, double guard_hz = 1e6,
               AllocPolicy policy = AllocPolicy::kFirstFit);

  /// Allocate per the configured policy. Returns nullopt when no
  /// contiguous gap fits (compact() may still make room — see
  /// compacted_headroom_hz()).
  std::optional<ChannelAllocation> allocate(std::uint16_t node_id, double bandwidth_hz);

  /// Release a node's channel; false if the node held none.
  bool release(std::uint16_t node_id);

  /// Re-insert exactly `ch` for `node_id` (undo of a release; the exact
  /// modify_rate restore path). False if the node already holds a
  /// channel or `ch` would leave the band or violate a guard.
  bool restore(std::uint16_t node_id, const ChannelAllocation& ch);

  /// Hand `from`'s channel to `to` unchanged (SDM ownership succession:
  /// when a shared channel's allocator owner leaves, a remaining member
  /// adopts the spectrum instead of it being freed under them). False if
  /// `from` holds nothing or `to` already holds a channel.
  bool transfer(std::uint16_t from, std::uint16_t to);

  /// Slide every channel down-band (ascending frequency order: first
  /// channel to the band edge, each next one guard-distance above its
  /// predecessor) so all free spectrum coalesces into one top-of-band
  /// gap. Bandwidths never change. Returns one RetuneEvent per moved
  /// channel, in ascending frequency order — the AP turns these into
  /// re-tune notifications over the side channel. Deterministic.
  std::vector<RetuneEvent> compact();

  std::optional<ChannelAllocation> lookup(std::uint16_t node_id) const;

  /// Total un-allocated spectrum: band width minus the sum of allocated
  /// bandwidths, i.e. the sum of all raw gap widths. Deliberately blind
  /// to fragmentation and guards — a demand of this size may still be
  /// unplaceable; see largest_gap_hz() and fragmentation().
  double free_bandwidth_hz() const;

  /// Largest single allocatable channel right now (respects guards
  /// against both gap neighbours; band edges need no guard). 0 when the
  /// band is full or every gap is narrower than its guard overhead; the
  /// full band width when empty.
  double largest_gap_hz() const;

  /// How much of the free spectrum is unusable as one block:
  /// 1 - widest_raw_gap / free_bandwidth. 0 when the band is empty or
  /// all free spectrum is contiguous; -> 1 as the free space shatters.
  /// 0 when nothing is free (a full band is not fragmented). Raw gap
  /// widths (guards not subtracted) keep the ratio consistent with
  /// free_bandwidth_hz().
  double fragmentation() const;

  /// Largest channel allocatable after a compact(): the single
  /// top-of-band gap a fully slid band leaves, minus the one guard the
  /// new channel needs against its down-band neighbour. This is the
  /// admission controller's "would compaction help?" test.
  double compacted_headroom_hz() const;

  std::size_t num_allocations() const { return by_node_.size(); }
  const std::map<std::uint16_t, ChannelAllocation>& allocations() const { return by_node_; }

  AllocPolicy policy() const { return policy_; }
  void set_policy(AllocPolicy p) { policy_ = p; }

  double band_low_hz() const { return low_; }
  double band_high_hz() const { return high_; }
  double guard_hz() const { return guard_; }

 private:
  /// Occupied intervals sorted by low edge.
  std::vector<ChannelAllocation> sorted_used() const;

  double low_;
  double high_;
  double guard_;
  AllocPolicy policy_;
  std::map<std::uint16_t, ChannelAllocation> by_node_;
};

}  // namespace mmx::mac
