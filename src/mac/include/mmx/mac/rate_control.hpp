// Link adaptation: AIMD symbol-rate controller.
//
// mmX's node can trade rate for robustness for free — halving the SPDT
// toggle rate doubles the energy per symbol the envelope detector
// integrates (the paper's §9.1 note that the data rate is a switch
// setting, not a hardware change). This controller backs the rate off
// multiplicatively on loss and recovers it additively on success,
// bounded by the channel grant and the switch cap.
#pragma once

#include <cstdint>

namespace mmx::mac {

struct RateControlConfig {
  double min_rate_bps = 1e6;
  double max_rate_bps = 100e6;       ///< SPDT toggle cap (paper §9.1)
  double backoff_factor = 0.5;       ///< multiplicative decrease
  double recovery_step_bps = 2e6;    ///< additive increase per success
  int failures_to_backoff = 2;       ///< consecutive losses before cutting
};

class RateController {
 public:
  RateController(double initial_rate_bps, RateControlConfig cfg = {});

  void on_success();
  void on_failure();

  /// Re-bound the controller to a new grant ceiling (overload demotion
  /// shrinks it, promotion raises it). The current rate is clamped into
  /// the new [min, max]; AIMD state is otherwise preserved. The cap
  /// never drops below min_rate_bps — a demotion floor at or under the
  /// AIMD minimum pins the controller to min_rate_bps.
  void set_max_rate_bps(double max_rate_bps);

  double rate_bps() const { return rate_; }
  int consecutive_failures() const { return fails_; }
  /// Multiplicative decreases taken so far. Aggregated onto the global
  /// `mac.rate.backoffs` obs counter once per run by the scale scenario;
  /// the AIMD step itself carries no instrumentation.
  std::uint64_t backoffs() const { return backoffs_; }
  const RateControlConfig& config() const { return cfg_; }

 private:
  RateControlConfig cfg_;
  double rate_;
  int fails_ = 0;
  std::uint64_t backoffs_ = 0;
};

}  // namespace mmx::mac
