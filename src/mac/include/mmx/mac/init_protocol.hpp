// The mmX initialization protocol (paper §4, §7).
//
// AP side of the one-shot bootstrap: nodes ask for a data rate over the
// WiFi/BT side channel; the AP sizes a channel from the rate, allocates
// FDM spectrum, and when the band is exhausted starts sharing channels
// spatially (SDM groups separated by TMA harmonics). Each grant also
// carries the two VCO tuning voltages realizing the node's ASK-FSK tone
// pair inside its channel.
//
// Overload control (docs/ROBUSTNESS.md): with "billions of things" the
// interesting regime is the one where demand exceeds the band. Instead
// of a denial cliff the AP degrades gracefully — FDM, then SDM, then
// spectrum compaction when fragmentation is the only obstacle, then
// rate demotion down to a configured floor, then (optionally) shedding
// bandwidth from lower-priority incumbents, and only then a deny that
// carries an occupancy-derived backoff hint so the rejected population
// desynchronizes. All of it is deterministic: the AP draws no
// randomness, and every decision is a pure function of the request
// sequence.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "mmx/mac/allocator.hpp"
#include "mmx/mac/sdm.hpp"
#include "mmx/mac/side_channel.hpp"
#include "mmx/rf/vco.hpp"

namespace mmx::mac {

/// One usable TMA harmonic and the direction it steers to (set by the
/// AP's switching design; see antenna::TimeModulatedArray::progressive).
struct HarmonicSlot {
  int harmonic;
  double angle_rad;
};

/// Steered directions of the default AP TMA (8 elements, d = lambda/2,
/// delay 0.0625): sin(theta_m) = 0.125 m for m in {-4..4}.
std::vector<HarmonicSlot> default_sdm_slots();

/// Graceful-degradation policy for oversubscribed joins. Disabled by
/// default, which keeps InitProtocol byte-identical to the pre-overload
/// admission path (first-fit, bare denies, no compaction).
struct OverloadConfig {
  bool enabled = false;
  /// Rate floor for admission demotion: when the full demand cannot be
  /// placed the AP walks a halving-rate ladder (the data rate is a
  /// switch setting — paper §9.1) and grants the largest step whose
  /// channel fits, stopping at this floor. 0 disables demotion.
  double min_rate_bps = 0.0;
  /// Best-fit gap selection while enabled (first-fit otherwise) — keeps
  /// large gaps intact under churn.
  bool best_fit = true;
  /// Compact the band (slide grants down, re-tune holders) when
  /// fragmentation alone blocks an otherwise admissible demand.
  bool compaction = true;
  /// Allow shrinking strictly-lower-priority incumbents to the rate
  /// floor to admit a newcomer at its floor. Their spectrum is restored
  /// by promote_demoted() when the band relaxes.
  bool shedding = false;
  /// Deny backoff hint at zero occupancy / zero pressure...
  double hint_base_s = 0.125;
  /// ...and its ceiling at full occupancy.
  double hint_max_s = 4.0;
};

struct InitConfig {
  double spectral_efficiency = 0.8;  ///< bit/s/Hz of OTAM's ASK-FSK
  double guard_hz = 1e6;
  /// FSK tone separation as a fraction of channel bandwidth (tones sit at
  /// centre -/+ this fraction of bandwidth).
  double fsk_fraction = 0.4;
  /// Max nodes sharing one frequency channel through the TMA.
  int sdm_capacity = 3;
  /// Bearings closer than this cannot share a channel (harmonic lobes
  /// would overlap).
  double min_bearing_separation_rad = 0.45;
  /// Usable TMA harmonics; empty = populated with default_sdm_slots().
  std::vector<HarmonicSlot> sdm_slots;
  /// A node may only take a harmonic whose steered direction is within
  /// this angle of its bearing (beyond it the harmonic's array gain at
  /// the node collapses).
  double max_harmonic_mismatch_rad = 0.07;
  /// Graceful degradation under oversubscription; off by default.
  OverloadConfig overload;
};

/// Overload-control accounting (all zero while the policy is disabled).
struct OverloadStats {
  std::uint64_t demotions = 0;       ///< newcomers admitted below their request
  std::uint64_t shed_demotions = 0;  ///< incumbents shrunk to the floor
  std::uint64_t promotions = 0;      ///< demoted grants grown back
  std::uint64_t compactions = 0;     ///< compact passes that moved >= 1 channel
  std::uint64_t retunes = 0;         ///< grant re-tunes issued (compaction + shed + promote)
  std::uint64_t hinted_denies = 0;   ///< denies carrying a backoff hint
  double hint_delay_sum_s = 0.0;     ///< sum of issued hints (mean = sum/hinted)
  /// Post-mutation allocator invariant checks that failed (overlap,
  /// guard or band-edge violation). Always 0; gated in CI.
  std::uint64_t invariant_violations = 0;

  bool operator==(const OverloadStats&) const = default;
};

/// Capped-exponential backoff for rejoin / re-grant attempts.
struct BackoffConfig {
  double base_s = 0.125;   ///< first retry delay
  double factor = 2.0;     ///< per-attempt growth
  double cap_s = 2.0;      ///< delay ceiling
  /// Jitter as a fraction of the computed delay: the returned delay is
  /// uniform in [delay * (1 - jitter_frac), delay * (1 + jitter_frac)].
  /// Jitter draws come from the caller's Rng, so two nodes with
  /// independent streams desynchronize while a run stays reproducible.
  double jitter_frac = 0.25;
};

/// Per-node retry pacer for re-acquisition after a deny, a revoked grant,
/// or a power cycle (mmWave links die abruptly — §9.3's standing person,
/// a reaped zombie grant). Deterministic: the delay sequence is a pure
/// function of the attempt count and the caller-supplied Rng stream.
class RejoinBackoff {
 public:
  explicit RejoinBackoff(BackoffConfig cfg = {});

  /// Delay before the next attempt; advances the attempt counter.
  /// `hint_s` is the AP's deny backoff hint (ChannelDeny::retry_after_s):
  /// it floors the schedule delay before jitter — the AP has seen the
  /// whole band's occupancy, the node has only its own attempt count.
  double next_delay_s(Rng& rng, double hint_s = 0.0);

  /// A successful (re)grant resets the schedule.
  void reset() { attempt_ = 0; }

  int attempt() const { return attempt_; }
  const BackoffConfig& config() const { return cfg_; }

 private:
  BackoffConfig cfg_;
  int attempt_ = 0;
};

class InitProtocol {
 public:
  InitProtocol(FdmAllocator allocator, rf::Vco node_vco, InitConfig cfg = {});

  /// Process one request: FDM first, SDM sharing when the band is full,
  /// then the overload ladder (compact -> demote -> shed -> deny+hint)
  /// when enabled. Returns a grant or a deny.
  SideChannelMessage handle(const ChannelRequest& request);

  /// Drain the AP side of a SideChannel: handle every pending request,
  /// queue the responses back, then deliver any re-tune notifications
  /// compaction / shedding / promotion produced. Returns the number of
  /// requests processed.
  std::size_t serve(SideChannel& channel, Rng& rng);

  /// All grants issued so far, keyed by node.
  const std::map<std::uint16_t, ChannelGrant>& grants() const { return grants_; }

  /// Release a node's resources.
  bool release(std::uint16_t node_id);

  /// Renegotiate a node's rate (a camera switching quality tiers). The
  /// old channel is freed first so the allocator can reuse or grow it;
  /// if the new demand cannot be met the node's previous grant is
  /// reinstated exactly (same center, bandwidth, harmonic and VCO
  /// voltages) and a deny is returned.
  SideChannelMessage modify_rate(std::uint16_t node_id, double new_rate_bps);

  /// Slide every FDM grant down-band (FdmAllocator::compact), update the
  /// affected grants/SDM groups and queue one re-tune grant per moved
  /// holder. Returns the number of moved channels.
  std::size_t compact_spectrum();

  /// Grow demoted grants (admitted or shed below their requested rate)
  /// back toward their request, lowest node id first. Returns the
  /// re-issued grants; they are also queued as re-tune notifications.
  std::vector<ChannelGrant> promote_demoted();

  /// Re-tune notifications (updated grants) queued by compaction,
  /// shedding and promotion since the last drain. serve() delivers them
  /// over the side channel; embedders without one take them here.
  std::vector<ChannelGrant> take_retunes();

  /// The rate a node's current channel supports (bandwidth x spectral
  /// efficiency); nullopt for unknown nodes.
  std::optional<double> granted_rate_bps(std::uint16_t node_id) const;

  const OverloadStats& overload_stats() const { return overload_stats_; }

  const FdmAllocator& allocator() const { return allocator_; }

 private:
  struct SharedChannel {
    ChannelAllocation channel;
    std::vector<std::uint16_t> members;
    std::vector<double> bearings;
    std::vector<int> harmonics;
  };

  ChannelGrant make_grant(std::uint16_t node_id, const ChannelAllocation& ch, int harmonic) const;
  /// FDM allocation + VCO coverage check; rolls back on failure.
  std::optional<ChannelGrant> try_fdm(std::uint16_t node_id, double bandwidth_hz);
  SideChannelMessage try_sdm(const ChannelRequest& request);
  /// The overload ladder: compaction, rate demotion, shedding, hinted
  /// deny. Only called when cfg_.overload.enabled.
  SideChannelMessage handle_overload(const ChannelRequest& request, double bandwidth_hz);
  /// Halving-rate demotion ladder from `start_rate_bps` down to the
  /// overload floor: admit at the largest step whose channel fits.
  std::optional<ChannelGrant> admit_demoted(const ChannelRequest& request,
                                            double start_rate_bps);
  /// Shrink strictly-lower-priority incumbents to the floor until
  /// `needed_hz` fits (after compaction); true if it does.
  bool shed_for(const ChannelRequest& request, double needed_hz);
  /// Occupancy- and pressure-derived deny hint (deterministic).
  double deny_hint_s() const;
  /// Move every grant and SDM group on `from` to `to` (same bandwidth),
  /// queueing re-tune notifications.
  void retune_channel(const ChannelAllocation& from, const ChannelAllocation& to);
  /// Walk the allocator's map and count overlap/guard/band violations
  /// into overload_stats_.invariant_violations. Called after the
  /// mutating overload paths (compaction, shedding, promotion).
  void verify_allocator_invariants();
  /// True if `ch` backs an SDM group.
  bool channel_shared(const ChannelAllocation& ch) const;
  /// Free harmonic slot steering closest to `bearing_rad`, within the
  /// mismatch tolerance; nullopt when none qualifies.
  std::optional<int> best_free_slot(const std::vector<int>& used, double bearing_rad) const;

  FdmAllocator allocator_;
  rf::Vco node_vco_;
  InitConfig cfg_;
  std::map<std::uint16_t, ChannelGrant> grants_;
  std::map<std::uint16_t, double> holder_bearings_;
  std::vector<SharedChannel> shared_;
  /// Requested rate and priority per grant holder (overload bookkeeping:
  /// requested > granted marks a demoted node promote_demoted() grows).
  std::map<std::uint16_t, double> requested_rate_bps_;
  std::map<std::uint16_t, std::uint8_t> priority_;
  std::vector<ChannelGrant> pending_retunes_;
  OverloadStats overload_stats_;
  /// Consecutive hinted denies since spectrum last freed (deny pressure).
  std::uint64_t deny_streak_ = 0;
};

}  // namespace mmx::mac
