// The mmX initialization protocol (paper §4, §7).
//
// AP side of the one-shot bootstrap: nodes ask for a data rate over the
// WiFi/BT side channel; the AP sizes a channel from the rate, allocates
// FDM spectrum, and when the band is exhausted starts sharing channels
// spatially (SDM groups separated by TMA harmonics). Each grant also
// carries the two VCO tuning voltages realizing the node's ASK-FSK tone
// pair inside its channel.
#pragma once

#include <map>
#include <vector>

#include "mmx/mac/allocator.hpp"
#include "mmx/mac/sdm.hpp"
#include "mmx/mac/side_channel.hpp"
#include "mmx/rf/vco.hpp"

namespace mmx::mac {

/// One usable TMA harmonic and the direction it steers to (set by the
/// AP's switching design; see antenna::TimeModulatedArray::progressive).
struct HarmonicSlot {
  int harmonic;
  double angle_rad;
};

/// Steered directions of the default AP TMA (8 elements, d = lambda/2,
/// delay 0.0625): sin(theta_m) = 0.125 m for m in {-4..4}.
std::vector<HarmonicSlot> default_sdm_slots();

struct InitConfig {
  double spectral_efficiency = 0.8;  ///< bit/s/Hz of OTAM's ASK-FSK
  double guard_hz = 1e6;
  /// FSK tone separation as a fraction of channel bandwidth (tones sit at
  /// centre -/+ this fraction of bandwidth).
  double fsk_fraction = 0.4;
  /// Max nodes sharing one frequency channel through the TMA.
  int sdm_capacity = 3;
  /// Bearings closer than this cannot share a channel (harmonic lobes
  /// would overlap).
  double min_bearing_separation_rad = 0.45;
  /// Usable TMA harmonics; empty = populated with default_sdm_slots().
  std::vector<HarmonicSlot> sdm_slots;
  /// A node may only take a harmonic whose steered direction is within
  /// this angle of its bearing (beyond it the harmonic's array gain at
  /// the node collapses).
  double max_harmonic_mismatch_rad = 0.07;
};

/// Capped-exponential backoff for rejoin / re-grant attempts.
struct BackoffConfig {
  double base_s = 0.125;   ///< first retry delay
  double factor = 2.0;     ///< per-attempt growth
  double cap_s = 2.0;      ///< delay ceiling
  /// Jitter as a fraction of the computed delay: the returned delay is
  /// uniform in [delay * (1 - jitter_frac), delay * (1 + jitter_frac)].
  /// Jitter draws come from the caller's Rng, so two nodes with
  /// independent streams desynchronize while a run stays reproducible.
  double jitter_frac = 0.25;
};

/// Per-node retry pacer for re-acquisition after a deny, a revoked grant,
/// or a power cycle (mmWave links die abruptly — §9.3's standing person,
/// a reaped zombie grant). Deterministic: the delay sequence is a pure
/// function of the attempt count and the caller-supplied Rng stream.
class RejoinBackoff {
 public:
  explicit RejoinBackoff(BackoffConfig cfg = {});

  /// Delay before the next attempt; advances the attempt counter.
  double next_delay_s(Rng& rng);

  /// A successful (re)grant resets the schedule.
  void reset() { attempt_ = 0; }

  int attempt() const { return attempt_; }
  const BackoffConfig& config() const { return cfg_; }

 private:
  BackoffConfig cfg_;
  int attempt_ = 0;
};

class InitProtocol {
 public:
  InitProtocol(FdmAllocator allocator, rf::Vco node_vco, InitConfig cfg = {});

  /// Process one request: FDM first, SDM sharing when the band is full.
  /// Returns a grant or a deny.
  SideChannelMessage handle(const ChannelRequest& request);

  /// Drain the AP side of a SideChannel: handle every pending request and
  /// queue the responses back. Returns the number processed.
  std::size_t serve(SideChannel& channel, Rng& rng);

  /// All grants issued so far, keyed by node.
  const std::map<std::uint16_t, ChannelGrant>& grants() const { return grants_; }

  /// Release a node's resources.
  bool release(std::uint16_t node_id);

  /// Renegotiate a node's rate (a camera switching quality tiers). The
  /// old channel is freed first so the allocator can reuse or grow it;
  /// if the new demand cannot be met, the old grant is restored
  /// (best-effort) and a deny is returned.
  SideChannelMessage modify_rate(std::uint16_t node_id, double new_rate_bps);

  const FdmAllocator& allocator() const { return allocator_; }

 private:
  struct SharedChannel {
    ChannelAllocation channel;
    std::vector<std::uint16_t> members;
    std::vector<double> bearings;
    std::vector<int> harmonics;
  };

  ChannelGrant make_grant(std::uint16_t node_id, const ChannelAllocation& ch, int harmonic) const;
  SideChannelMessage try_sdm(const ChannelRequest& request);
  /// Free harmonic slot steering closest to `bearing_rad`, within the
  /// mismatch tolerance; nullopt when none qualifies.
  std::optional<int> best_free_slot(const std::vector<int>& used, double bearing_rad) const;

  FdmAllocator allocator_;
  rf::Vco node_vco_;
  InitConfig cfg_;
  std::map<std::uint16_t, ChannelGrant> grants_;
  std::map<std::uint16_t, double> holder_bearings_;
  std::vector<SharedChannel> shared_;
};

}  // namespace mmx::mac
