// Stop-and-wait ARQ controller.
//
// The paper's PHY leaves residual errors to "an error correction coding
// scheme" (§9.3); a deployment also needs retransmission for the bursts
// FEC can't cover (someone stands up mid-frame). This is the pure state
// machine — transport-agnostic and fully unit-testable; mmx::core wires
// it to the sample-level link.
#pragma once

#include <cstdint>

namespace mmx::mac {

struct ArqConfig {
  int max_retries = 4;       ///< attempts after the first transmission
  double timeout_s = 2e-3;   ///< ack wait for the first attempt
  /// Per-attempt multiplicative growth of the ack wait (capped
  /// exponential retry backoff). The legacy fixed 2 ms cadence burned
  /// every retry inside one blockage burst; a factor > 1 spreads the
  /// retries so later ones land after the blocker has moved on. The
  /// default 1.0 keeps the legacy byte-stream exactly.
  double backoff_factor = 1.0;
  /// Upper bound on the backed-off ack wait; 0 = uncapped.
  double max_timeout_s = 0.0;
};

struct ArqStats {
  std::uint64_t transmissions = 0;  ///< frames put on the air
  std::uint64_t delivered = 0;      ///< acked payloads
  std::uint64_t gave_up = 0;        ///< payloads dropped after retries
  std::uint64_t duplicate_acks = 0;

  /// Add these totals onto the global `mmx::obs` counters
  /// (`mac.arq.transmissions`, `.delivered`, `.gave_up`,
  /// `.duplicate_acks`). Called once per run on aggregated stats — the
  /// per-frame state machine itself carries no instrumentation, so ARQ
  /// throughput is identical with observability on or off.
  void publish_obs() const;
};

/// One-outstanding-frame sender. Drive it with offer() / on_ack() /
/// on_timeout(); poll next_action() to learn what to do.
class ArqSender {
 public:
  enum class Action { kIdle, kTransmit, kWaitAck };

  explicit ArqSender(ArqConfig cfg = {});

  /// Accept a new payload; returns false if one is still in flight.
  bool offer(std::uint16_t seq);

  /// The transport transmitted the current frame.
  void on_transmitted();

  /// Ack for `seq` arrived. Out-of-order/duplicate acks are counted and
  /// ignored.
  void on_ack(std::uint16_t seq);

  /// The ack timer expired.
  void on_timeout();

  Action next_action() const;
  std::uint16_t current_seq() const { return seq_; }
  int attempts() const { return attempts_; }

  /// Ack wait the transport should arm for the current attempt:
  /// timeout_s * backoff_factor^(attempts - 1), capped at max_timeout_s
  /// when that is set. Before the first transmission (attempts == 0) it
  /// is timeout_s.
  double current_timeout_s() const;
  const ArqStats& stats() const { return stats_; }
  const ArqConfig& config() const { return cfg_; }

 private:
  ArqConfig cfg_;
  ArqStats stats_;
  std::uint16_t seq_ = 0;
  int attempts_ = 0;
  bool in_flight_ = false;   // payload accepted, not yet resolved
  bool awaiting_ack_ = false;
};

/// Receiver-side duplicate filter: tracks the last delivered sequence
/// per node so retransmissions are acked but not re-delivered.
class ArqReceiver {
 public:
  /// Returns true if the frame is new (deliver to the application);
  /// false if it is a duplicate (ack it again, do not deliver).
  bool accept(std::uint16_t node_id, std::uint16_t seq);

 private:
  // Tiny open map (node counts are small in mmX deployments).
  struct Entry {
    std::uint16_t node_id;
    std::uint16_t last_seq;
    bool valid = false;
  };
  static constexpr std::size_t kSlots = 256;
  Entry slots_[kSlots]{};
};

}  // namespace mmx::mac
