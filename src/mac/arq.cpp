#include "mmx/mac/arq.hpp"

#include <stdexcept>

#include "mmx/obs/obs.hpp"

namespace mmx::mac {

void ArqStats::publish_obs() const {
  MMX_OBS_COUNT("mac.arq.transmissions", transmissions);
  MMX_OBS_COUNT("mac.arq.delivered", delivered);
  MMX_OBS_COUNT("mac.arq.gave_up", gave_up);
  MMX_OBS_COUNT("mac.arq.duplicate_acks", duplicate_acks);
}

ArqSender::ArqSender(ArqConfig cfg) : cfg_(cfg) {
  if (cfg.max_retries < 0) throw std::invalid_argument("ArqSender: max_retries must be >= 0");
  if (cfg.timeout_s <= 0.0) throw std::invalid_argument("ArqSender: timeout must be > 0");
  if (cfg.backoff_factor < 1.0)
    throw std::invalid_argument("ArqSender: backoff_factor must be >= 1");
  if (cfg.max_timeout_s < 0.0)
    throw std::invalid_argument("ArqSender: max_timeout_s must be >= 0");
}

double ArqSender::current_timeout_s() const {
  double t = cfg_.timeout_s;
  for (int i = 1; i < attempts_; ++i) {
    t *= cfg_.backoff_factor;
    if (cfg_.max_timeout_s > 0.0 && t >= cfg_.max_timeout_s) return cfg_.max_timeout_s;
  }
  return t;
}

bool ArqSender::offer(std::uint16_t seq) {
  if (in_flight_) return false;
  seq_ = seq;
  attempts_ = 0;
  in_flight_ = true;
  awaiting_ack_ = false;
  return true;
}

void ArqSender::on_transmitted() {
  if (!in_flight_ || awaiting_ack_)
    throw std::logic_error("ArqSender: no frame pending transmission");
  ++attempts_;
  ++stats_.transmissions;
  awaiting_ack_ = true;
}

void ArqSender::on_ack(std::uint16_t seq) {
  if (!in_flight_ || !awaiting_ack_ || seq != seq_) {
    ++stats_.duplicate_acks;
    return;
  }
  ++stats_.delivered;
  in_flight_ = false;
  awaiting_ack_ = false;
}

void ArqSender::on_timeout() {
  if (!awaiting_ack_) return;  // spurious timer
  awaiting_ack_ = false;
  if (attempts_ > cfg_.max_retries) {
    ++stats_.gave_up;
    in_flight_ = false;
  }
}

ArqSender::Action ArqSender::next_action() const {
  if (!in_flight_) return Action::kIdle;
  if (awaiting_ack_) return Action::kWaitAck;
  return Action::kTransmit;
}

bool ArqReceiver::accept(std::uint16_t node_id, std::uint16_t seq) {
  Entry& e = slots_[node_id % kSlots];
  if (e.valid && e.node_id == node_id && e.last_seq == seq) return false;  // duplicate
  e.node_id = node_id;
  e.last_seq = seq;
  e.valid = true;
  return true;
}

}  // namespace mmx::mac
