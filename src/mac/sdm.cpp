#include "mmx/mac/sdm.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <stdexcept>

namespace mmx::mac {

SdmScheduler::SdmScheduler(antenna::TmaSpec spec, double delay_frac, double tau,
                           int max_harmonic)
    : tma_(antenna::TimeModulatedArray::progressive(spec, delay_frac, tau)),
      max_harmonic_(max_harmonic) {
  if (max_harmonic < 0) throw std::invalid_argument("SdmScheduler: max_harmonic must be >= 0");
  // All usable harmonics must steer to real angles.
  for (int m = 0; m <= max_harmonic; ++m) (void)tma_.steered_angle(m);
}

SdmPlan SdmScheduler::plan(std::span<const double> bearings_rad) const {
  if (bearings_rad.empty()) throw std::invalid_argument("SdmScheduler: no bearings");
  if (bearings_rad.size() > static_cast<std::size_t>(capacity()))
    throw std::invalid_argument("SdmScheduler: more nodes than harmonics in one group");

  // Greedy: process bearings in sorted order, pair with sorted harmonics'
  // steered angles (both monotonic -> optimal for the 1-D matching).
  std::vector<std::size_t> order(bearings_rad.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return bearings_rad[a] < bearings_rad[b]; });

  std::vector<int> harmonics(static_cast<std::size_t>(max_harmonic_) + 1);
  for (int m = 0; m <= max_harmonic_; ++m) harmonics[static_cast<std::size_t>(m)] = m;
  std::sort(harmonics.begin(), harmonics.end(), [&](int a, int b) {
    return tma_.steered_angle(a) < tma_.steered_angle(b);
  });

  // Optimal monotone matching of the k sorted bearings onto a subset of
  // the sorted harmonic directions (classic assignment DP: match bearing
  // i to harmonic j or skip harmonic j).
  const std::size_t k = bearings_rad.size();
  const std::size_t h = harmonics.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(k + 1, std::vector<double>(h + 1, kInf));
  for (std::size_t j = 0; j <= h; ++j) dp[0][j] = 0.0;
  for (std::size_t i = 1; i <= k; ++i) {
    for (std::size_t j = i; j <= h; ++j) {
      const double match = dp[i - 1][j - 1] +
                           std::abs(bearings_rad[order[i - 1]] -
                                    tma_.steered_angle(harmonics[j - 1]));
      dp[i][j] = std::min(dp[i][j - 1], match);
    }
  }
  // Back-track the chosen harmonics.
  std::vector<int> chosen(k);
  {
    std::size_t i = k;
    std::size_t j = h;
    while (i > 0) {
      if (j > i && dp[i][j] == dp[i][j - 1]) {
        --j;
        continue;
      }
      chosen[i - 1] = harmonics[j - 1];
      --i;
      --j;
    }
  }

  SdmPlan out;
  out.assignments.resize(k);
  std::vector<double> thetas(k);
  std::vector<int> assigned(k);
  for (std::size_t i = 0; i < k; ++i) {
    const int m = chosen[i];
    out.assignments[i] = {order[i], m, tma_.steered_angle(m)};
    thetas[i] = bearings_rad[order[i]];
    assigned[i] = m;
  }
  out.min_sir_db = (k > 1) ? tma_.demux_sir_db(thetas, assigned) : 200.0;
  return out;
}

}  // namespace mmx::mac
