#include "mmx/rf/budget.hpp"

#include <stdexcept>

namespace mmx::rf {

void Budget::add(BudgetItem item) {
  if (item.power_w < 0.0 || item.cost_usd < 0.0)
    throw std::invalid_argument("Budget: power and cost must be >= 0");
  items_.push_back(std::move(item));
}

double Budget::total_power_w() const {
  double p = 0.0;
  for (const BudgetItem& i : items_) p += i.power_w;
  return p;
}

double Budget::total_cost_usd() const {
  double c = 0.0;
  for (const BudgetItem& i : items_) c += i.cost_usd;
  return c;
}

double Budget::energy_per_bit_j(double bit_rate_bps) const {
  if (bit_rate_bps <= 0.0) throw std::invalid_argument("Budget: bit rate must be > 0");
  return total_power_w() / bit_rate_bps;
}

Budget mmx_node_budget() {
  // Component draws/costs from the paper's part list (§8.1) and Analog
  // Devices datasheets; controller covers the SPI interface logic, not the
  // whole Raspberry Pi (the Pi is the *sensor* in the paper's accounting).
  Budget b;
  b.add({"VCO (HMC533)", 0.85, 40.0});
  b.add({"SPDT switch (ADRF5020)", 0.01, 25.0});
  b.add({"digital controller / SPI", 0.20, 10.0});
  b.add({"patch antenna arrays (PCB)", 0.0, 20.0});
  b.add({"regulators / misc", 0.04, 15.0});
  return b;  // 1.10 W, $110
}

Budget mmx_ap_budget() {
  Budget b;
  b.add({"LNA (HMC751)", 0.17, 90.0});
  b.add({"sub-harmonic mixer (HMC264LC3B)", 0.0, 80.0});
  b.add({"PLL/LO (ADF5356)", 0.40, 60.0});
  b.add({"coupled-line filter (PCB)", 0.0, 5.0});
  b.add({"dipole antennas (PCB)", 0.0, 10.0});
  b.add({"regulators / misc", 0.05, 20.0});
  return b;
}

}  // namespace mmx::rf
