#include "mmx/rf/spdt.hpp"

#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::rf {

SpdtSwitch::SpdtSwitch(SpdtSpec spec) : spec_(spec) {
  if (spec_.insertion_loss_db < 0.0)
    throw std::invalid_argument("SpdtSwitch: insertion loss must be >= 0 dB");
  if (spec_.isolation_db <= spec_.insertion_loss_db)
    throw std::invalid_argument("SpdtSwitch: isolation must exceed insertion loss");
  if (spec_.max_toggle_rate_hz <= 0.0)
    throw std::invalid_argument("SpdtSwitch: max toggle rate must be > 0");
  through_gain_lin_ = db_to_amp(-spec_.insertion_loss_db);
  leak_gain_lin_ = db_to_amp(-spec_.isolation_db);
}

void SpdtSwitch::select(int port) {
  if (port != 0 && port != 1) throw std::invalid_argument("SpdtSwitch: port must be 0 or 1");
  port_ = port;
}

SpdtSwitch::Outputs SpdtSwitch::route(dsp::Complex in) const {
  const dsp::Complex on = in * through_gain_lin_;
  const dsp::Complex off = in * leak_gain_lin_;
  return (port_ == 0) ? Outputs{on, off} : Outputs{off, on};
}

void SpdtSwitch::check_symbol_rate(double symbol_rate_hz) const {
  if (symbol_rate_hz <= 0.0)
    throw std::invalid_argument("SpdtSwitch: symbol rate must be > 0");
  if (symbol_rate_hz > spec_.max_toggle_rate_hz)
    throw std::invalid_argument("SpdtSwitch: symbol rate exceeds switch toggle limit");
}

}  // namespace mmx::rf
