// Amplifier models (LNA and generic gain stages).
//
// The mmX AP front end starts with an HMC751 LNA: ~25 dB gain, 2 dB
// noise figure at 24 GHz (paper §8.2). Placing it first minimizes the
// cascade noise figure (Friis), which `mmx::rf::CascadeNoise` verifies.
#pragma once

#include "mmx/common/rng.hpp"
#include "mmx/dsp/types.hpp"

namespace mmx::rf {

struct AmplifierSpec {
  double gain_db = 25.0;
  double noise_figure_db = 2.0;
  /// 1 dB output compression point [dBm]; saturation above it.
  double p1db_out_dbm = 10.0;
  double power_draw_w = 0.2;
};

/// Gain + additive noise + soft saturation amplifier model operating on
/// complex baseband samples whose mean power is calibrated in watts.
class Amplifier {
 public:
  /// `noise_bandwidth_hz` sets how much thermal noise (scaled by the noise
  /// figure) is referred to the input when processing sample blocks.
  Amplifier(AmplifierSpec spec, double noise_bandwidth_hz);

  /// Amplify a block: adds input-referred noise, applies gain, then
  /// soft-clips above the compression point. Sample power unit: watts.
  dsp::Cvec process(std::span<const dsp::Complex> in, Rng& rng) const;

  /// Small-signal linear power gain.
  double power_gain() const;

  /// Input-referred added noise power [W] over the noise bandwidth:
  /// kT0 * B * (F - 1).
  double input_noise_power_w() const;

  const AmplifierSpec& spec() const { return spec_; }

 private:
  AmplifierSpec spec_;
  double noise_bandwidth_hz_;
};

/// Convenience factory for the AP's HMC751-like LNA.
Amplifier make_hmc751_lna(double noise_bandwidth_hz);

}  // namespace mmx::rf
