// Single-pole double-throw RF switch model.
//
// Models the ADRF5020 on the mmX node (paper §8.1): < 2 dB insertion
// loss, 65 dB isolation between output ports, and a maximum toggle rate
// of 100 MHz — the component that caps the node's bit rate at 100 Mbps
// (paper §9.1).
#pragma once

#include <cstdint>

#include "mmx/dsp/types.hpp"

namespace mmx::rf {

struct SpdtSpec {
  double insertion_loss_db = 2.0;   ///< through-path loss
  double isolation_db = 65.0;       ///< leakage suppression to the off port
  double max_toggle_rate_hz = 100e6;  ///< fastest allowed switching rate
  double power_draw_w = 0.01;       ///< DC power draw [W]
};

/// Two-output switch routing one input to port 0 or port 1, with
/// realistic leakage to the unselected port.
class SpdtSwitch {
 public:
  explicit SpdtSwitch(SpdtSpec spec = {});

  /// Select the active output port (0 or 1).
  void select(int port);
  int selected() const { return port_; }

  /// Route one input sample: returns {port0_out, port1_out}. The selected
  /// port sees the input attenuated by the insertion loss; the other port
  /// sees it further attenuated by the isolation.
  struct Outputs {
    dsp::Complex port0;
    dsp::Complex port1;
  };
  Outputs route(dsp::Complex in) const;

  /// Amplitude gain (< 1) of the through path.
  double through_gain() const { return through_gain_lin_; }
  /// Amplitude gain of the leakage path.
  double leak_gain() const { return leak_gain_lin_; }

  /// Highest bit rate [bit/s] the switch supports for OOK-style
  /// one-toggle-per-bit signalling (paper: 100 Mbps).
  double max_bit_rate() const { return spec_.max_toggle_rate_hz; }

  /// Validate a requested symbol rate against the toggle limit.
  /// Throws std::invalid_argument if too fast.
  void check_symbol_rate(double symbol_rate_hz) const;

  const SpdtSpec& spec() const { return spec_; }

 private:
  SpdtSpec spec_;
  double through_gain_lin_;
  double leak_gain_lin_;
  int port_ = 0;
};

}  // namespace mmx::rf
