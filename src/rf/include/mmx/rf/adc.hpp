// ADC quantizer model (the USRP N210's 14-bit converter at the AP).
#pragma once

#include "mmx/dsp/types.hpp"

namespace mmx::rf {

struct AdcSpec {
  int bits = 14;             ///< resolution per I/Q rail
  double full_scale = 1.0;   ///< clip level (amplitude) per rail
};

class Adc {
 public:
  explicit Adc(AdcSpec spec = {});

  /// Quantize one complex sample: each rail is clipped to +/- full scale
  /// and rounded to the nearest of 2^bits levels.
  dsp::Complex sample(dsp::Complex in) const;

  dsp::Cvec process(std::span<const dsp::Complex> in) const;

  /// Quantization step per rail.
  double lsb() const { return lsb_; }

  /// Ideal SQNR [dB] for a full-scale sine: 6.02*bits + 1.76.
  double ideal_sqnr_db() const;

  const AdcSpec& spec() const { return spec_; }

 private:
  double quantize_rail(double v) const;

  AdcSpec spec_;
  double lsb_;
};

}  // namespace mmx::rf
