// Coupled-line microstrip band-pass filter model.
//
// The mmX AP avoids costly discrete filters by etching a coupled-line
// band-pass directly on the PCB (paper §5.2, §8.2): centre 24 GHz,
// 5 dB passband insertion loss. We model the magnitude response as an
// n-th order Chebyshev-like band-pass — the standard synthesis target
// for coupled-line sections.
#pragma once

namespace mmx::rf {

struct CoupledLineFilterSpec {
  double center_hz = 24.0e9;
  double bandwidth_hz = 1.0e9;      ///< 3 dB bandwidth
  double insertion_loss_db = 5.0;   ///< loss at band centre (paper: 5 dB)
  int order = 3;                    ///< number of coupled-line sections
};

/// Frequency-domain magnitude model; the simulator applies it per-path /
/// per-tone (the signals of interest are narrowband relative to the
/// filter).
class CoupledLineFilter {
 public:
  explicit CoupledLineFilter(CoupledLineFilterSpec spec = {});

  /// Power gain [dB] (negative number) at a frequency. Butterworth-shaped
  /// skirt: IL + 10*log10(1 + ((f-f0)/(B/2))^(2n)).
  double gain_db(double freq_hz) const;

  /// Amplitude gain (linear) at a frequency.
  double amplitude_gain(double freq_hz) const;

  /// Band edges at the given rejection level below the passband.
  double lower_edge_hz(double rejection_db) const;
  double upper_edge_hz(double rejection_db) const;

  const CoupledLineFilterSpec& spec() const { return spec_; }

 private:
  CoupledLineFilterSpec spec_;
};

}  // namespace mmx::rf
