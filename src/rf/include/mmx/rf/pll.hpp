// Integer-N PLL / LO generator model.
//
// The AP's LO comes from an ADF5356-class PLL at 10 GHz (paper §8.2).
// The model covers lock-frequency synthesis from a reference and an
// integer divider, plus a coarse settle-time estimate — enough to reason
// about channel-retune cost in the MAC.
#pragma once

namespace mmx::rf {

struct PllSpec {
  double reference_hz = 100e6;    ///< crystal reference
  double pfd_hz = 50e6;           ///< phase-frequency detector rate
  double f_min_hz = 6.8e9;        ///< VCO range low (ADF5356-ish)
  double f_max_hz = 13.6e9;       ///< VCO range high
  double loop_bandwidth_hz = 100e3;
  double power_draw_w = 0.4;
};

class Pll {
 public:
  explicit Pll(PllSpec spec = {});

  /// Program the synthesizer to the closest achievable frequency to
  /// `target_hz` (integer-N on the PFD grid). Throws if out of range.
  /// Returns the actual locked frequency.
  double tune(double target_hz);

  double frequency_hz() const { return freq_hz_; }
  bool locked() const { return locked_; }

  /// Frequency error of the current lock vs the last requested target.
  double tune_error_hz() const { return tune_error_hz_; }

  /// Approximate settle time: ~4 / loop bandwidth.
  double settle_time_s() const;

  const PllSpec& spec() const { return spec_; }

 private:
  PllSpec spec_;
  double freq_hz_ = 0.0;
  double tune_error_hz_ = 0.0;
  bool locked_ = false;
};

}  // namespace mmx::rf
