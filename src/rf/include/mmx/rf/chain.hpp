// RF cascade analysis (Friis noise formula) and the assembled mmX AP
// receiver chain.
//
// The paper's AP is LNA -> coupled-line filter -> sub-harmonic mixer ->
// USRP baseband (§8.2). The LNA-first ordering "reduces the total noise
// figure of the receiver" — CascadeNoise quantifies exactly that claim,
// and ReceiverChain turns a received power level into an SNR.
#pragma once

#include <string>
#include <vector>

#include "mmx/rf/filter.hpp"

namespace mmx::rf {

struct Stage {
  std::string name;
  double gain_db;           ///< power gain (negative for lossy stages)
  double noise_figure_db;   ///< stage noise figure (== loss for passives)
};

/// Friis cascade: total gain and total noise figure of an ordered chain.
class CascadeNoise {
 public:
  void add_stage(Stage stage);

  double total_gain_db() const;
  double total_noise_figure_db() const;
  const std::vector<Stage>& stages() const { return stages_; }

 private:
  std::vector<Stage> stages_;
};

struct ReceiverChainSpec {
  double lna_gain_db = 25.0;
  double lna_nf_db = 2.0;
  double filter_loss_db = 5.0;
  double mixer_loss_db = 9.0;
  double mixer_nf_db = 9.0;   ///< passive mixer: NF == conversion loss
  double baseband_nf_db = 8.0;  ///< USRP front-end noise figure
  double noise_bandwidth_hz = 25e6;  ///< per-node channel bandwidth (paper §9.5)
};

/// Link-budget receiver model for the mmX AP.
class ReceiverChain {
 public:
  explicit ReceiverChain(ReceiverChainSpec spec = {});

  /// Cascade noise figure of the whole AP receiver [dB].
  double noise_figure_db() const;

  /// Cascade gain [dB].
  double gain_db() const;

  /// Noise floor [dBm] referred to the input over the noise bandwidth.
  double noise_floor_dbm() const;

  /// SNR [dB] for a given received signal power at the antenna port.
  double snr_db(double rx_power_dbm) const;

  /// The same chain as an inspectable cascade.
  const CascadeNoise& cascade() const { return cascade_; }

  const ReceiverChainSpec& spec() const { return spec_; }

 private:
  ReceiverChainSpec spec_;
  CascadeNoise cascade_;
};

}  // namespace mmx::rf
