// Oscillator phase noise (Lorentzian / Wiener-process model).
//
// A free-running VCO like the node's HMC533 has a finite linewidth; its
// phase random-walks, broadening the OTAM tones. The joint ASK-FSK
// scheme tolerates this as long as the linewidth stays far below the
// FSK tone spacing — this model lets tests and benches quantify exactly
// how far.
#pragma once

#include "mmx/common/rng.hpp"
#include "mmx/dsp/types.hpp"

namespace mmx::rf {

struct PhaseNoiseSpec {
  /// Lorentzian (3 dB, two-sided) linewidth [Hz]. A locked PLL source is
  /// ~kHz; a free-running mmWave VCO can be 100s of kHz.
  double linewidth_hz = 100e3;
};

class PhaseNoise {
 public:
  explicit PhaseNoise(PhaseNoiseSpec spec = {});

  /// Single-sideband phase noise density L(f) [dBc/Hz] at offset f:
  /// Lorentzian skirt L(f) = (linewidth / pi) / (f^2 + (linewidth/2)^2).
  double ssb_dbc_per_hz(double offset_hz) const;

  /// RMS phase drift [rad] accumulated over an interval:
  /// sigma = sqrt(2 pi * linewidth * tau).
  double rms_drift_rad(double interval_s) const;

  /// Generate the multiplicative phase process e^{j phi[n]} (Wiener
  /// phase increments) for sample-level simulation.
  dsp::Cvec process(std::size_t n, double sample_rate_hz, Rng& rng) const;

  /// Multiply a clean signal by a fresh phase-noise realization.
  dsp::Cvec apply(std::span<const dsp::Complex> x, double sample_rate_hz, Rng& rng) const;

  const PhaseNoiseSpec& spec() const { return spec_; }

 private:
  PhaseNoiseSpec spec_;
};

}  // namespace mmx::rf
