// Power, cost and energy-efficiency budgets.
//
// Encodes the bill-of-materials arithmetic behind the paper's headline
// numbers: the node draws 1.1 W, costs ~$110, peaks at 100 Mbps
// (switch-limited) and therefore achieves 11 nJ/bit — better than WiFi
// modules (paper §1, §9.1, Table 1).
#pragma once

#include <string>
#include <vector>

namespace mmx::rf {

struct BudgetItem {
  std::string name;
  double power_w = 0.0;
  double cost_usd = 0.0;
};

class Budget {
 public:
  void add(BudgetItem item);

  double total_power_w() const;
  double total_cost_usd() const;
  const std::vector<BudgetItem>& items() const { return items_; }

  /// Energy per bit [J/bit] at a given bit rate.
  double energy_per_bit_j(double bit_rate_bps) const;

 private:
  std::vector<BudgetItem> items_;
};

/// The mmX node BoM (paper §8.1 components): totals 1.1 W / ~$110.
Budget mmx_node_budget();

/// The mmX AP BoM (paper §8.2 front-end, excluding the lab USRP).
Budget mmx_ap_budget();

}  // namespace mmx::rf
