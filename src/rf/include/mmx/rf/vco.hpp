// Voltage-controlled oscillator model.
//
// Models the HMC533 used by the mmX node (paper §8.1, Fig. 7): tuning
// voltage 3.5-4.9 V sweeps the carrier 23.95-24.25 GHz, covering the
// whole 24 GHz ISM band, with +12 dBm output power. The controller does
// FSK by nudging the tuning voltage (paper §6.3), so the model exposes
// both directions of the tuning curve.
#pragma once

#include "mmx/common/rng.hpp"

namespace mmx::rf {

struct VcoSpec {
  double v_min = 3.5;            ///< lowest usable tuning voltage [V]
  double v_max = 4.9;            ///< highest usable tuning voltage [V]
  double f_min_hz = 23.95e9;     ///< frequency at v_min [Hz]
  double f_max_hz = 24.25e9;     ///< frequency at v_max [Hz]
  double output_power_dbm = 12.0;  ///< carrier output power (HMC533: +12 dBm)
  double power_draw_w = 0.9;     ///< DC power draw [W]
  /// Curvature of the tuning characteristic: 0 = perfectly linear. Real
  /// varactors flatten toward the ends of the range; Fig. 7 shows a
  /// gentle S-shape. 0.12 reproduces that visually.
  double curvature = 0.12;
  /// RMS frequency jitter [Hz] representing close-in phase noise.
  double freq_jitter_hz = 0.0;
  /// Temperature coefficient [Hz/K]: free-running VCOs drift ~-1 MHz/K
  /// class figures; the CFO corrector (phy/cfo.hpp) absorbs the result.
  double temp_coefficient_hz_per_k = -1.0e6;
  /// Calibration temperature [K] at which the tuning curve is exact.
  double temp_ref_k = 298.0;
};

/// Static tuning-curve model with an exact inverse.
class Vco {
 public:
  explicit Vco(VcoSpec spec = {});

  /// Carrier frequency [Hz] for a tuning voltage. Throws if the voltage is
  /// outside [v_min, v_max].
  double frequency_hz(double tuning_v) const;

  /// Tuning voltage producing a requested frequency (inverse of
  /// `frequency_hz`). Throws if the frequency is outside the VCO range.
  double voltage_for(double freq_hz) const;

  /// Local tuning sensitivity Kv = df/dV [Hz/V] at a voltage.
  double sensitivity_hz_per_v(double tuning_v) const;

  /// True if `freq_hz` is reachable.
  bool covers(double freq_hz) const;

  /// Frequency with jitter applied (uses spec.freq_jitter_hz).
  double frequency_with_jitter_hz(double tuning_v, Rng& rng) const;

  /// Frequency at an ambient temperature [K]: the tuning curve shifted by
  /// the temperature coefficient. The AP's CFO estimator sees exactly
  /// this offset.
  double frequency_at_temperature_hz(double tuning_v, double temp_k) const;

  const VcoSpec& spec() const { return spec_; }

 private:
  /// Monotonic normalized tuning shape: maps u in [0,1] to [0,1].
  double shape(double u) const;
  double shape_inverse(double s) const;

  VcoSpec spec_;
};

}  // namespace mmx::rf
