// Sub-harmonic mixer model.
//
// The mmX AP uses an HMC264-style sub-harmonic mixer that internally
// doubles the LO (paper §5.2, §8.2): a cheap 10 GHz PLL drives it, the
// effective LO is 20 GHz, and the 24 GHz RF lands at a 4 GHz IF inside
// the USRP's range. Avoiding a 24 GHz PLL is one of the AP's cost tricks.
#pragma once

#include "mmx/dsp/types.hpp"

namespace mmx::rf {

struct MixerSpec {
  double conversion_loss_db = 9.0;  ///< SSB conversion loss (HMC264: ~9 dB)
  int lo_multiplier = 2;            ///< sub-harmonic order (x2)
  double lo_leakage_db = 30.0;      ///< LO-to-IF leakage below the signal
};

class SubharmonicMixer {
 public:
  explicit SubharmonicMixer(MixerSpec spec = {});

  /// IF frequency [Hz] for an RF input given the *PLL* frequency (the
  /// mixer doubles it internally): |f_rf - m * f_pll|.
  double if_frequency_hz(double rf_hz, double pll_hz) const;

  /// Effective internal LO [Hz].
  double effective_lo_hz(double pll_hz) const;

  /// Amplitude gain of the conversion (linear, < 1).
  double conversion_gain() const;

  /// Downconvert a complex-envelope block (frequency translation is
  /// handled by the simulator's frequency bookkeeping; the mixer applies
  /// the conversion loss here).
  dsp::Cvec process(std::span<const dsp::Complex> rf) const;

  const MixerSpec& spec() const { return spec_; }

 private:
  MixerSpec spec_;
};

}  // namespace mmx::rf
