#include "mmx/rf/adc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmx::rf {

Adc::Adc(AdcSpec spec) : spec_(spec) {
  if (spec_.bits < 1 || spec_.bits > 24) throw std::invalid_argument("Adc: bits must be in [1, 24]");
  if (spec_.full_scale <= 0.0) throw std::invalid_argument("Adc: full scale must be > 0");
  lsb_ = 2.0 * spec_.full_scale / std::pow(2.0, spec_.bits);
}

double Adc::quantize_rail(double v) const {
  const double clipped = std::clamp(v, -spec_.full_scale, spec_.full_scale - lsb_);
  return std::round(clipped / lsb_) * lsb_;
}

dsp::Complex Adc::sample(dsp::Complex in) const {
  return {quantize_rail(in.real()), quantize_rail(in.imag())};
}

dsp::Cvec Adc::process(std::span<const dsp::Complex> in) const {
  dsp::Cvec out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = sample(in[i]);
  return out;
}

double Adc::ideal_sqnr_db() const { return 6.02 * spec_.bits + 1.76; }

}  // namespace mmx::rf
