#include "mmx/rf/vco.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::rf {

Vco::Vco(VcoSpec spec) : spec_(spec) {
  if (spec_.v_min >= spec_.v_max) throw std::invalid_argument("Vco: v_min must be < v_max");
  if (spec_.f_min_hz >= spec_.f_max_hz) throw std::invalid_argument("Vco: f_min must be < f_max");
  if (spec_.curvature < 0.0 || spec_.curvature >= 0.5)
    throw std::invalid_argument("Vco: curvature must be in [0, 0.5)");
}

double Vco::shape(double u) const {
  // Linear term plus a sine ripple; the derivative 1 + c*pi*... stays
  // positive for curvature < 0.5/pi' bounds checked in the ctor, keeping
  // the curve monotonic (a physical requirement for varactor tuning).
  return u + spec_.curvature * std::sin(kTwoPi * u) / kTwoPi;
}

double Vco::shape_inverse(double s) const {
  // Newton iteration; shape is monotonic with derivative >= 1 - curvature.
  double u = s;
  for (int i = 0; i < 50; ++i) {
    const double f = shape(u) - s;
    const double df = 1.0 + spec_.curvature * std::cos(kTwoPi * u);
    const double step = f / df;
    u -= step;
    if (std::abs(step) < 1e-15) break;
  }
  return u;
}

double Vco::frequency_hz(double tuning_v) const {
  if (tuning_v < spec_.v_min - 1e-9 || tuning_v > spec_.v_max + 1e-9)
    throw std::out_of_range("Vco: tuning voltage outside usable range");
  const double u = (tuning_v - spec_.v_min) / (spec_.v_max - spec_.v_min);
  return spec_.f_min_hz + shape(u) * (spec_.f_max_hz - spec_.f_min_hz);
}

double Vco::voltage_for(double freq_hz) const {
  if (!covers(freq_hz)) throw std::out_of_range("Vco: frequency outside tuning range");
  const double s = (freq_hz - spec_.f_min_hz) / (spec_.f_max_hz - spec_.f_min_hz);
  return spec_.v_min + shape_inverse(s) * (spec_.v_max - spec_.v_min);
}

double Vco::sensitivity_hz_per_v(double tuning_v) const {
  const double u = (tuning_v - spec_.v_min) / (spec_.v_max - spec_.v_min);
  const double dshape = 1.0 + spec_.curvature * std::cos(kTwoPi * u);
  return dshape * (spec_.f_max_hz - spec_.f_min_hz) / (spec_.v_max - spec_.v_min);
}

bool Vco::covers(double freq_hz) const {
  return freq_hz >= spec_.f_min_hz - 1e-3 && freq_hz <= spec_.f_max_hz + 1e-3;
}

double Vco::frequency_with_jitter_hz(double tuning_v, Rng& rng) const {
  return frequency_hz(tuning_v) + rng.gaussian(spec_.freq_jitter_hz);
}

double Vco::frequency_at_temperature_hz(double tuning_v, double temp_k) const {
  if (temp_k <= 0.0) throw std::invalid_argument("Vco: temperature must be > 0 K");
  return frequency_hz(tuning_v) +
         spec_.temp_coefficient_hz_per_k * (temp_k - spec_.temp_ref_k);
}

}  // namespace mmx::rf
