#include "mmx/rf/mixer.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::rf {

SubharmonicMixer::SubharmonicMixer(MixerSpec spec) : spec_(spec) {
  if (spec_.conversion_loss_db < 0.0)
    throw std::invalid_argument("SubharmonicMixer: conversion loss must be >= 0");
  if (spec_.lo_multiplier < 1)
    throw std::invalid_argument("SubharmonicMixer: lo multiplier must be >= 1");
}

double SubharmonicMixer::effective_lo_hz(double pll_hz) const {
  if (pll_hz <= 0.0) throw std::invalid_argument("SubharmonicMixer: PLL frequency must be > 0");
  return static_cast<double>(spec_.lo_multiplier) * pll_hz;
}

double SubharmonicMixer::if_frequency_hz(double rf_hz, double pll_hz) const {
  if (rf_hz <= 0.0) throw std::invalid_argument("SubharmonicMixer: RF frequency must be > 0");
  return std::abs(rf_hz - effective_lo_hz(pll_hz));
}

double SubharmonicMixer::conversion_gain() const {
  return db_to_amp(-spec_.conversion_loss_db);
}

dsp::Cvec SubharmonicMixer::process(std::span<const dsp::Complex> rf) const {
  const double g = conversion_gain();
  dsp::Cvec out(rf.size());
  for (std::size_t i = 0; i < rf.size(); ++i) out[i] = rf[i] * g;
  return out;
}

}  // namespace mmx::rf
