#include "mmx/rf/phase_noise.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::rf {

PhaseNoise::PhaseNoise(PhaseNoiseSpec spec) : spec_(spec) {
  if (spec.linewidth_hz <= 0.0) throw std::invalid_argument("PhaseNoise: linewidth must be > 0");
}

double PhaseNoise::ssb_dbc_per_hz(double offset_hz) const {
  if (offset_hz <= 0.0) throw std::invalid_argument("PhaseNoise: offset must be > 0");
  const double hw = spec_.linewidth_hz / 2.0;
  const double l = (spec_.linewidth_hz / kPi) / (offset_hz * offset_hz + hw * hw);
  return lin_to_db(l);
}

double PhaseNoise::rms_drift_rad(double interval_s) const {
  if (interval_s < 0.0) throw std::invalid_argument("PhaseNoise: negative interval");
  return std::sqrt(2.0 * kPi * spec_.linewidth_hz * interval_s);
}

dsp::Cvec PhaseNoise::process(std::size_t n, double sample_rate_hz, Rng& rng) const {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("PhaseNoise: sample rate must be > 0");
  const double sigma = rms_drift_rad(1.0 / sample_rate_hz);
  dsp::Cvec out(n);
  double phi = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = dsp::Complex{std::cos(phi), std::sin(phi)};
    phi += rng.gaussian(sigma);
  }
  return out;
}

dsp::Cvec PhaseNoise::apply(std::span<const dsp::Complex> x, double sample_rate_hz,
                            Rng& rng) const {
  const dsp::Cvec pn = process(x.size(), sample_rate_hz, rng);
  dsp::Cvec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * pn[i];
  return out;
}

}  // namespace mmx::rf
