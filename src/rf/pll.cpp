#include "mmx/rf/pll.hpp"

#include <cmath>
#include <stdexcept>

namespace mmx::rf {

Pll::Pll(PllSpec spec) : spec_(spec) {
  if (spec_.reference_hz <= 0.0 || spec_.pfd_hz <= 0.0)
    throw std::invalid_argument("Pll: reference and PFD rates must be > 0");
  if (spec_.f_min_hz >= spec_.f_max_hz) throw std::invalid_argument("Pll: bad VCO range");
  if (spec_.loop_bandwidth_hz <= 0.0)
    throw std::invalid_argument("Pll: loop bandwidth must be > 0");
}

double Pll::tune(double target_hz) {
  if (target_hz < spec_.f_min_hz || target_hz > spec_.f_max_hz)
    throw std::out_of_range("Pll: target outside VCO range");
  const double n = std::round(target_hz / spec_.pfd_hz);
  freq_hz_ = n * spec_.pfd_hz;
  tune_error_hz_ = freq_hz_ - target_hz;
  locked_ = true;
  return freq_hz_;
}

double Pll::settle_time_s() const { return 4.0 / spec_.loop_bandwidth_hz; }

}  // namespace mmx::rf
