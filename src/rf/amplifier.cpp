#include "mmx/rf/amplifier.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::rf {

Amplifier::Amplifier(AmplifierSpec spec, double noise_bandwidth_hz)
    : spec_(spec), noise_bandwidth_hz_(noise_bandwidth_hz) {
  if (spec_.noise_figure_db < 0.0)
    throw std::invalid_argument("Amplifier: noise figure must be >= 0 dB");
  if (noise_bandwidth_hz <= 0.0)
    throw std::invalid_argument("Amplifier: noise bandwidth must be > 0");
}

double Amplifier::power_gain() const { return db_to_lin(spec_.gain_db); }

double Amplifier::input_noise_power_w() const {
  const double f = db_to_lin(spec_.noise_figure_db);
  return kBoltzmann * kT0Kelvin * noise_bandwidth_hz_ * (f - 1.0);
}

dsp::Cvec Amplifier::process(std::span<const dsp::Complex> in, Rng& rng) const {
  const double amp_gain = std::sqrt(power_gain());
  const double sigma = std::sqrt(input_noise_power_w() / 2.0);
  const double sat_amp = std::sqrt(dbm_to_watt(spec_.p1db_out_dbm));
  dsp::Cvec out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    dsp::Complex s = in[i] + dsp::Complex{rng.gaussian(sigma), rng.gaussian(sigma)};
    s *= amp_gain;
    // Soft limiter: amplitude compressed through tanh normalized to the
    // saturation level; linear within ~6 dB below P1dB.
    const double mag = std::abs(s);
    if (mag > 0.0) {
      const double compressed = sat_amp * std::tanh(mag / sat_amp);
      s *= compressed / mag;
    }
    out[i] = s;
  }
  return out;
}

Amplifier make_hmc751_lna(double noise_bandwidth_hz) {
  return Amplifier(AmplifierSpec{.gain_db = 25.0,
                                 .noise_figure_db = 2.0,
                                 .p1db_out_dbm = 10.0,
                                 .power_draw_w = 0.17},
                   noise_bandwidth_hz);
}

}  // namespace mmx::rf
