#include "mmx/rf/chain.hpp"

#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::rf {

void CascadeNoise::add_stage(Stage stage) {
  if (stage.noise_figure_db < 0.0)
    throw std::invalid_argument("CascadeNoise: noise figure must be >= 0 dB");
  stages_.push_back(std::move(stage));
}

double CascadeNoise::total_gain_db() const {
  double g = 0.0;
  for (const Stage& s : stages_) g += s.gain_db;
  return g;
}

double CascadeNoise::total_noise_figure_db() const {
  if (stages_.empty()) return 0.0;
  // Friis: F = F1 + (F2-1)/G1 + (F3-1)/(G1 G2) + ...
  double f_total = db_to_lin(stages_[0].noise_figure_db);
  double g_acc = db_to_lin(stages_[0].gain_db);
  for (std::size_t i = 1; i < stages_.size(); ++i) {
    f_total += (db_to_lin(stages_[i].noise_figure_db) - 1.0) / g_acc;
    g_acc *= db_to_lin(stages_[i].gain_db);
  }
  return lin_to_db(f_total);
}

ReceiverChain::ReceiverChain(ReceiverChainSpec spec) : spec_(spec) {
  if (spec_.noise_bandwidth_hz <= 0.0)
    throw std::invalid_argument("ReceiverChain: noise bandwidth must be > 0");
  cascade_.add_stage({"LNA (HMC751)", spec_.lna_gain_db, spec_.lna_nf_db});
  cascade_.add_stage({"coupled-line filter", -spec_.filter_loss_db, spec_.filter_loss_db});
  cascade_.add_stage({"sub-harmonic mixer (HMC264)", -spec_.mixer_loss_db, spec_.mixer_nf_db});
  cascade_.add_stage({"USRP baseband", 0.0, spec_.baseband_nf_db});
}

double ReceiverChain::noise_figure_db() const { return cascade_.total_noise_figure_db(); }

double ReceiverChain::gain_db() const { return cascade_.total_gain_db(); }

double ReceiverChain::noise_floor_dbm() const {
  return thermal_noise_dbm(spec_.noise_bandwidth_hz, noise_figure_db());
}

double ReceiverChain::snr_db(double rx_power_dbm) const {
  return rx_power_dbm - noise_floor_dbm();
}

}  // namespace mmx::rf
