#include "mmx/rf/filter.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::rf {

CoupledLineFilter::CoupledLineFilter(CoupledLineFilterSpec spec) : spec_(spec) {
  if (spec_.center_hz <= 0.0) throw std::invalid_argument("CoupledLineFilter: bad centre");
  if (spec_.bandwidth_hz <= 0.0 || spec_.bandwidth_hz >= 2.0 * spec_.center_hz)
    throw std::invalid_argument("CoupledLineFilter: bad bandwidth");
  if (spec_.insertion_loss_db < 0.0)
    throw std::invalid_argument("CoupledLineFilter: insertion loss must be >= 0");
  if (spec_.order < 1) throw std::invalid_argument("CoupledLineFilter: order must be >= 1");
}

double CoupledLineFilter::gain_db(double freq_hz) const {
  const double x = (freq_hz - spec_.center_hz) / (spec_.bandwidth_hz / 2.0);
  const double rolloff = lin_to_db(1.0 + std::pow(x * x, spec_.order));
  return -(spec_.insertion_loss_db + rolloff);
}

double CoupledLineFilter::amplitude_gain(double freq_hz) const {
  return db_to_amp(gain_db(freq_hz));
}

double CoupledLineFilter::lower_edge_hz(double rejection_db) const {
  if (rejection_db <= 0.0) throw std::invalid_argument("CoupledLineFilter: rejection must be > 0");
  // Solve 10 log10(1 + x^{2n}) = rejection for x >= 0.
  const double x = std::pow(db_to_lin(rejection_db) - 1.0, 1.0 / (2.0 * spec_.order));
  return spec_.center_hz - x * spec_.bandwidth_hz / 2.0;
}

double CoupledLineFilter::upper_edge_hz(double rejection_db) const {
  if (rejection_db <= 0.0) throw std::invalid_argument("CoupledLineFilter: rejection must be > 0");
  const double x = std::pow(db_to_lin(rejection_db) - 1.0, 1.0 / (2.0 * spec_.order));
  return spec_.center_hz + x * spec_.bandwidth_hz / 2.0;
}

}  // namespace mmx::rf
