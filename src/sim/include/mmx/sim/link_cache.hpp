// Memoized per-node link state — the layer that makes "billions of
// things" reachable in wall-clock terms.
//
// NetworkSimulator re-traces rays on every gains()/link() call; at 10^4
// nodes that is the entire simulation budget. The cache keys each node's
// ray-traced result on (node pose, Room::epoch()) and invalidates with
// *exact* coherence:
//
//   - A pose change invalidates that node and nobody else (entries store
//     the pose they were computed at; a mismatch is a miss).
//   - A structural change (new reflector/partition) drops everything —
//     walls reshape every path.
//   - A blocker add/move/clear invalidates exactly the entries whose
//     wall-only path corridors the old or new disc touches. Blockers
//     attenuate paths but never create or bend them, so the blocker-free
//     corridor set (RayTracer::trace with apply_blockers = false) is a
//     sound superset of every path a blocker configuration can influence:
//     a disc that misses all corridors provably leaves the node's gains
//     bit-identical, and the entry is revalidated for free. Invalidated
//     entries are marked stale rather than erased: their corridors depend
//     only on walls and pose (both unchanged), so a refill re-traces the
//     gains and keeps the corridors — one trace, not two.
//
// Cached results are therefore bit-identical to uncached ones — the same
// guarantee the parallel sweep engine gives (docs/PARALLELISM.md), pinned
// by tests/sim/link_cache_test.cpp and docs/SCALING.md.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mmx/channel/beam_channel.hpp"
#include "mmx/channel/room.hpp"
#include "mmx/sim/link_budget.hpp"

namespace mmx::sim {

/// Per-instance counters. publish_obs() mirrors the totals onto the
/// global `mmx::obs` registry (`link_cache.*` counters, exported by the
/// bench harness's --obs dump) in one bulk add per run — the hit path
/// itself carries no instrumentation, so lookups cost the same with
/// observability enabled as disabled (the <2% budget in
/// docs/OBSERVABILITY.md).
struct LinkCacheStats {
  std::uint64_t hits = 0;         ///< lookups served from a valid entry
  std::uint64_t misses = 0;       ///< lookups that had to recompute
  std::uint64_t refills = 0;      ///< entries filled by batched refresh
  std::uint64_t revalidated = 0;  ///< entries kept across a geometry epoch
  std::uint64_t invalidated = 0;  ///< entries dropped (geometry or pose)

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// Add these totals onto the global obs counters (`link_cache.hits`,
  /// `.misses`, `.refills`, `.revalidated`, `.invalidated`). No-op when
  /// collection is disabled.
  void publish_obs() const;
};

class LinkCache {
 public:
  /// Waypoints of one wall-only propagation path: tx [, via [, via2]], rx.
  struct Corridor {
    std::array<Vec2, 4> waypoint{};
    int count = 0;
  };

  struct Entry {
    channel::Pose pose;                ///< node pose the entry was computed at
    channel::BeamGains gains{};        ///< ray-traced per-beam channel gains
    std::vector<Corridor> corridors;   ///< wall-only path superset (see header)
    OtamLink otam{};                   ///< memoized evaluate_otam result
    OtamLink fixed{};                  ///< memoized evaluate_fixed_beam result
    bool has_otam = false;
    bool has_fixed = false;
    /// Gains invalidated by a blocker delta. The corridors are still
    /// valid (walls and pose unchanged), so a refill may reuse them.
    bool stale = false;
  };

  /// Bring the cache in sync with `room`'s current epoch: no-op when the
  /// epoch is unchanged, otherwise drop exactly the entries the geometry
  /// delta can affect (see file header for the coherence argument).
  void reconcile(const channel::Room& room);

  /// Valid entry for (id, pose) or a freshly filled one: `fill` runs only
  /// on a miss (absent, stale, or computed at another pose) and receives
  /// the prior same-pose entry (or nullptr) so it can reuse the still-
  /// valid corridors of a stale entry. Counts one hit or one miss. Call
  /// reconcile() first.
  Entry& ensure(std::uint16_t id, const channel::Pose& pose,
                const std::function<Entry(const Entry* prior)>& fill);

  /// True if a lookup for (id, pose) would hit. No stats side effects —
  /// this is the batched-refresh probe.
  bool valid(std::uint16_t id, const channel::Pose& pose) const;

  /// The entry stored for `id` (stale or not), nullptr if absent. No
  /// stats side effects; read-only, safe to call from refill workers.
  const Entry* find(std::uint16_t id) const;

  /// Commit a batch-computed entry (counts toward `stats().refills`).
  void store_refill(std::uint16_t id, Entry entry);

  void erase(std::uint16_t id);
  void clear();

  std::size_t size() const { return live_; }
  const LinkCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Wall-only path corridors node -> AP. `max_excess_loss_db` and
  /// `max_bounces` must match the values the gains computation traces
  /// with, so the corridor set stays a superset of the real path set.
  static std::vector<Corridor> corridors_for(const channel::Room& room, Vec2 node_position,
                                             Vec2 ap_position, double max_excess_loss_db,
                                             int max_bounces);

  /// Corridors from an already-traced wall-only path set (the RoomPlan
  /// batch path: trace with apply_blockers = false, then convert each
  /// node's path window). corridors_for delegates here after tracing.
  static std::vector<Corridor> corridors_from_paths(std::span<const channel::Path> paths,
                                                    Vec2 node_position, Vec2 ap_position);

 private:
  struct DirtyDisc {
    Vec2 center;
    double radius = 0.0;
  };

  static bool touches(const std::vector<Corridor>& corridors, const DirtyDisc& disc);
  void snapshot(const channel::Room& room);

  /// One slot per node id. Ids are issued densely by NetworkSimulator, so
  /// flat indexed storage makes the hit path one bounds check + one array
  /// read — at 10^4 entries a node-based map spends more time chasing
  /// pointers than the lookup saves.
  struct Slot {
    Entry entry;
    bool present = false;
  };
  std::vector<Slot> slots_;
  std::size_t live_ = 0;  ///< number of present slots
  bool primed_ = false;  ///< snapshot taken at least once
  std::uint64_t seen_epoch_ = 0;
  std::size_t seen_walls_ = 0;
  std::vector<channel::Blocker> seen_blockers_;
  LinkCacheStats stats_;
};

}  // namespace mmx::sim
