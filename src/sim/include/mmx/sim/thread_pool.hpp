// Work-stealing thread pool for independent simulation trials.
//
// Each worker owns a deque: the owner pops newest-first from the back,
// idle workers steal oldest-first from the front of a victim's queue, so
// imbalanced trial costs (e.g. ray traces whose path count varies with
// placement) rebalance without a central contended queue. Tasks must not
// submit to the pool from inside a task; sweeps fan out from the caller.
//
// Determinism contract: the pool guarantees nothing about execution
// order — callers that need reproducible results must make every task a
// pure function of its index (see SweepRunner, docs/PARALLELISM.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mmx::sim {

class ThreadPool {
 public:
  /// `num_threads == 0` means one worker per hardware thread.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task (round-robin across worker queues). Thread-safe.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw,
  /// rethrows the first captured exception (the rest are dropped).
  void wait_idle();

  /// max(1, std::thread::hardware_concurrency()).
  static std::size_t hardware_threads();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool try_pop(std::size_t self, std::function<void()>& out);
  void run_worker(std::size_t self);
  void finish_task();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> queued_{0};     // tasks not yet popped
  std::atomic<std::size_t> in_flight_{0};  // queued + currently running
  std::atomic<std::size_t> next_queue_{0};
  bool stop_ = false;  // guarded by wake_mutex_

  std::mutex error_mutex_;
  std::exception_ptr first_error_;  // guarded by error_mutex_
};

}  // namespace mmx::sim
