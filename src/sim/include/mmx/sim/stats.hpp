// Statistics helpers for experiment harnesses (CDFs, percentiles, grids).
#pragma once

#include <cstddef>
#include <vector>

namespace mmx::sim {

double mean(const std::vector<double>& v);
double median(std::vector<double> v);
/// p in [0, 100], linear interpolation between order statistics.
double percentile(std::vector<double> v, double p);
double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);

/// Empirical CDF evaluated at `x`: fraction of samples <= x.
double ecdf(const std::vector<double>& samples, double x);

/// Jain's fairness index over non-negative allocations: 1 = perfectly
/// fair, 1/n = one node hogs everything. Used to judge the FDM/SDM
/// scheduler's multi-node behaviour.
double jain_fairness(const std::vector<double>& allocations);

/// A 2-D sample grid (e.g. the SNR heat map of Fig. 10).
class Grid {
 public:
  Grid(std::size_t nx, std::size_t ny);

  double& at(std::size_t ix, std::size_t iy);
  double at(std::size_t ix, std::size_t iy) const;

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

  /// Fraction of cells with value >= threshold.
  double fraction_at_least(double threshold) const;
  double min_value() const;
  double max_value() const;
  std::vector<double> values() const { return cells_; }

 private:
  std::size_t nx_;
  std::size_t ny_;
  std::vector<double> cells_;
};

}  // namespace mmx::sim
