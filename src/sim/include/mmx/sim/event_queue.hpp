// Minimal discrete-event engine for network-level simulations.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mmx::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `t` (seconds). Must not be in the past.
  void schedule_at(double t, Handler fn);

  /// Schedule `fn` `dt` seconds from now.
  void schedule_in(double dt, Handler fn);

  /// Run events until the queue empties or time would pass `t_end`.
  /// Returns the number of events executed.
  std::size_t run_until(double t_end);

  /// Run everything (caller guarantees termination).
  std::size_t run_all();

  double now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace mmx::sim
