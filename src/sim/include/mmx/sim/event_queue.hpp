// Minimal discrete-event engine for network-level simulations.
//
// Scheduling hands back an EventId so pending events can be cancelled or
// rescheduled — the fault layer (mmx::sim::faults) leans on this for
// timers that race real events: a rejoin backoff timer is cancelled when
// the node re-associates through another path, a reap timer slides when
// the node is heard again. Cancellation is lazy (tombstoned in the heap,
// resolved at pop time), so cancel/reschedule are O(log n) and safe to
// call from inside a running handler — including on the handler's own id,
// which is a no-op because an event is retired before it runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

namespace mmx::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;
  /// Ticket for a scheduled event. Never reused within one queue.
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  /// Schedule `fn` at absolute time `t` (seconds). Must not be in the past.
  EventId schedule_at(double t, Handler fn);

  /// Schedule `fn` `dt` seconds from now.
  EventId schedule_in(double dt, Handler fn);

  /// Drop a pending event. Returns false if `id` already ran, was
  /// cancelled, or never existed — cancelling the currently running
  /// event from inside its own handler therefore returns false.
  bool cancel(EventId id);

  /// Move a pending event to absolute time `t` (which must not be in the
  /// past), keeping its handler and id. The event's FIFO rank among
  /// same-time events is its reschedule order, not its original one.
  /// Returns false if `id` is not pending.
  bool reschedule(EventId id, double t);

  /// Run events until the queue empties or time would pass `t_end`.
  /// Returns the number of events executed (cancelled events never count).
  std::size_t run_until(double t_end);

  /// Run everything (caller guarantees termination).
  std::size_t run_all();

  double now() const { return now_; }
  bool empty() const { return live_.empty(); }
  std::size_t pending() const { return live_.size(); }

 private:
  struct QueueEntry {
    double time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    EventId id;
    std::uint32_t gen;  // stale entries (cancel/reschedule) are skipped
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct LiveEvent {
    Handler fn;
    std::uint32_t gen = 0;
  };

  /// Pop heap entries until the top is live; returns false when drained.
  bool settle_top();

  // Ordered map: iteration order (unused today) and memory behavior stay
  // deterministic, per the sim-layer determinism rules.
  std::map<EventId, LiveEvent> live_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace mmx::sim
