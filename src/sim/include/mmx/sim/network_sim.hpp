// Room-scale mmX network simulator.
//
// Binds the substrates together: ray-traced channel, orthogonal beam
// pair, link budget, FDM/SDM initialization, and the AP's TMA — enough
// to regenerate every network-level experiment in the paper (§9.2-§9.5).
#pragma once

#include <map>
#include <optional>

#include "mmx/antenna/tma.hpp"
#include "mmx/channel/beam_channel.hpp"
#include "mmx/channel/room.hpp"
#include "mmx/mac/init_protocol.hpp"
#include "mmx/sim/link_budget.hpp"

namespace mmx::sim {

struct SimConfig {
  LinkBudgetSpec budget{};
  double freq_hz = 24.125e9;
  /// AP TMA used for SDM groups.
  antenna::TmaSpec tma{};
  double tma_delay_frac = 0.0625;
  double tma_tau = 0.45;
  /// Suppression of other FDM channels by the AP's channelization
  /// filters (adjacent-channel rejection).
  double adjacent_channel_rejection_db = 50.0;
  /// Equalize receive powers inside each SDM group (the AP commands
  /// per-node duty-cycle backoff over the side channel during init) —
  /// tames the near-far problem co-channel TMA groups otherwise have.
  bool sdm_power_control = true;
  mac::InitConfig init{};
};

class NetworkSimulator {
 public:
  NetworkSimulator(channel::Room room, channel::Pose ap_pose, SimConfig cfg = {});

  /// Register a node: runs the §7a initialization (FDM, then SDM).
  /// Returns the node id, or nullopt if the AP denied the request.
  std::optional<std::uint16_t> add_node(const channel::Pose& pose, double rate_bps);

  void remove_node(std::uint16_t id);
  void set_node_pose(std::uint16_t id, const channel::Pose& pose);

  /// The room is mutable so scenarios can move blockers between
  /// measurements.
  channel::Room& room() { return room_; }
  const channel::Room& room() const { return room_; }

  /// Fresh per-beam channel gains for a node (re-traces rays).
  channel::BeamGains gains(std::uint16_t id) const;

  /// OTAM link metrics (paper's "with OTAM" scenario).
  OtamLink link(std::uint16_t id) const;

  /// Fixed-beam ASK baseline ("without OTAM", §9.2 scenario 1).
  OtamLink fixed_beam_link(std::uint16_t id) const;

  /// SINR per node when ALL nodes transmit simultaneously (§9.5):
  /// co-channel nodes leak through TMA harmonic sidelobes, other-channel
  /// nodes through the channelization filters.
  std::map<std::uint16_t, double> sinr_all_db() const;

  const mac::ChannelGrant& grant(std::uint16_t id) const;

  /// Node's arrival bearing at the AP (AP-frame azimuth of the LoS).
  double bearing_at_ap(std::uint16_t id) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  const channel::Pose& ap_pose() const { return ap_pose_; }
  const LinkBudget& budget() const { return budget_; }

 private:
  struct NodeState {
    channel::Pose pose;
    mac::ChannelGrant grant;
  };

  const NodeState& node(std::uint16_t id) const;

  channel::Room room_;
  channel::Pose ap_pose_;
  SimConfig cfg_;
  LinkBudget budget_;
  antenna::MmxBeamPair beams_;
  antenna::Dipole ap_antenna_;
  antenna::TimeModulatedArray tma_;
  mac::InitProtocol init_;
  rf::SpdtSwitch spdt_;
  std::map<std::uint16_t, NodeState> nodes_;
  std::uint16_t next_id_ = 1;
};

}  // namespace mmx::sim
