// Room-scale mmX network simulator.
//
// Binds the substrates together: ray-traced channel, orthogonal beam
// pair, link budget, FDM/SDM initialization, and the AP's TMA — enough
// to regenerate every network-level experiment in the paper (§9.2-§9.5).
//
// Link-layer results are memoized through a LinkCache keyed on
// (node pose, Room::epoch()) — bit-identical to re-tracing, but repeated
// gains()/link() queries against unchanged geometry cost a map lookup
// instead of a ray trace (docs/SCALING.md). Set SimConfig::link_cache
// false (or call the *_uncached accessors) to force fresh traces.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "mmx/antenna/tma.hpp"
#include "mmx/channel/beam_channel.hpp"
#include "mmx/channel/room.hpp"
#include "mmx/channel/room_plan.hpp"
#include "mmx/common/units.hpp"
#include "mmx/mac/init_protocol.hpp"
#include "mmx/rf/vco.hpp"
#include "mmx/sim/link_budget.hpp"
#include "mmx/sim/link_cache.hpp"

namespace mmx::sim {

struct SimConfig {
  LinkBudgetSpec budget{};
  double freq_hz = 24.125e9;
  /// AP TMA used for SDM groups.
  antenna::TmaSpec tma{};
  double tma_delay_frac = 0.0625;
  double tma_tau = 0.45;
  /// Suppression of other FDM channels by the AP's channelization
  /// filters (adjacent-channel rejection).
  double adjacent_channel_rejection_db = 50.0;
  /// Equalize receive powers inside each SDM group (the AP commands
  /// per-node duty-cycle backoff over the side channel during init) —
  /// tames the near-far problem co-channel TMA groups otherwise have.
  bool sdm_power_control = true;
  mac::InitConfig init{};
  /// Band the AP's FDM allocator manages. Defaults to the paper's 24 GHz
  /// ISM band; large-scale scenarios widen it (e.g. 57-64 GHz, which the
  /// paper's §10 discussion and the band60 ablation consider).
  double band_low_hz = kIsmLowHz;
  double band_high_hz = kIsmHighHz;
  /// Node VCO model — must cover the band or grants are denied.
  rf::VcoSpec node_vco{};
  /// Memoize per-node link state (LinkCache). Results are bit-identical
  /// with the cache on or off; this only trades memory for ray traces.
  bool link_cache = true;
};

class NetworkSimulator {
 public:
  NetworkSimulator(channel::Room room, channel::Pose ap_pose, SimConfig cfg = {});

  /// Register a node: runs the §7a initialization (FDM, then SDM).
  /// Returns the node id, or nullopt if the AP denied the request.
  std::optional<std::uint16_t> add_node(const channel::Pose& pose, double rate_bps);

  /// Outcome of an admission attempt (the overload-aware add_node).
  struct Admission {
    std::optional<std::uint16_t> id;  ///< granted node id; nullopt = denied
    /// AP backoff hint on deny (ChannelDeny::retry_after_s); 0 = none.
    double retry_after_s = 0.0;
    /// Rate the granted channel supports — under overload demotion this
    /// can be below the requested rate (never below the configured floor).
    double granted_rate_bps = 0.0;
  };

  /// add_node with the full admission verdict: the deny backoff hint and
  /// the (possibly demoted) granted rate. `priority` feeds overload
  /// shedding; 1 matches add_node exactly.
  Admission admit(const channel::Pose& pose, double rate_bps, std::uint8_t priority = 1);

  /// Grow demoted grants back toward their requested rate (overload mode;
  /// see InitProtocol::promote_demoted). Returns (node id, new rate) per
  /// promoted grant; re-tune notifications queue for drain_retunes().
  std::vector<std::pair<std::uint16_t, double>> promote_demoted();

  /// Drain queued re-tune notifications (compaction, shedding, promotion)
  /// and sync the stored node grants. The caller applies the new rate
  /// bounds to its per-node controllers.
  std::vector<mac::ChannelGrant> drain_retunes();

  /// AP-side init protocol (grants, allocator, overload stats).
  const mac::InitProtocol& init() const { return init_; }

  /// Register a node at the link layer WITHOUT requesting spectrum — an
  /// unassociated "thing" the AP still tracks (gains/link/bearing work;
  /// grant() does not). Large-scale churn keeps denied joiners resident
  /// this way so they can retry as spectrum frees up.
  std::uint16_t add_tracked_node(const channel::Pose& pose);

  void remove_node(std::uint16_t id);
  void set_node_pose(std::uint16_t id, const channel::Pose& pose);

  /// AP-side liveness: record that `id` was heard at sim time `now_s`
  /// (data frame or side-channel keepalive — the side channel is not on
  /// the mmWave link, so blockage does not silence it). Nodes never
  /// noted are exempt from reaping.
  void note_activity(std::uint16_t id, double now_s);

  /// Dead-resident reaping: a node that power-cycles never sends a clean
  /// leave, so its grant squats on spectrum until the AP gives up on it.
  /// Removes every associated, liveness-tracked node silent for
  /// `silence_timeout_s` or longer (releasing its grant and slot) and
  /// returns the reaped ids in ascending order — deterministic, so fault
  /// runs stay bit-identical at any refresh thread count.
  std::vector<std::uint16_t> reap_inactive(double now_s, double silence_timeout_s);

  /// AP-initiated grant revocation: free the node's spectrum but keep it
  /// resident and tracked (it must renegotiate via the init protocol).
  /// Returns false if `id` is unknown or already unassociated.
  bool revoke_grant(std::uint16_t id);

  /// The room is mutable so scenarios can move blockers between
  /// measurements. Mutations bump Room::epoch(), which is what keeps the
  /// link cache coherent.
  channel::Room& room() { return room_; }
  const channel::Room& room() const { return room_; }

  /// Per-beam channel gains for a node (memoized; see class comment).
  channel::BeamGains gains(std::uint16_t id) const;

  /// Always re-traces, bypassing the cache (cross-check path).
  channel::BeamGains gains_uncached(std::uint16_t id) const;

  /// OTAM link metrics (paper's "with OTAM" scenario). Memoized.
  OtamLink link(std::uint16_t id) const;

  /// Always re-evaluates from a fresh trace, bypassing the cache.
  OtamLink link_uncached(std::uint16_t id) const;

  /// Fixed-beam ASK baseline ("without OTAM", §9.2 scenario 1). Memoized.
  OtamLink fixed_beam_link(std::uint16_t id) const;

  /// Batched cache (re)fill: recomputes every stale entry, fanned across
  /// `threads` workers (0 = one per hardware thread) via the SweepRunner
  /// engine — results are bit-identical to a serial refresh at any thread
  /// count. Returns the number of entries recomputed. No-op when the
  /// cache is disabled.
  std::size_t refresh_cache(std::size_t threads = 0);

  const LinkCacheStats& cache_stats() const { return cache_.stats(); }
  void reset_cache_stats() { cache_.reset_stats(); }

  /// SINR per node when ALL associated nodes transmit simultaneously
  /// (§9.5): co-channel nodes leak through TMA harmonic sidelobes,
  /// other-channel nodes through the channelization filters.
  std::map<std::uint16_t, double> sinr_all_db() const;

  const mac::ChannelGrant& grant(std::uint16_t id) const;

  /// True if the node holds a channel grant (add_tracked_node and denied
  /// joiners are resident but unassociated).
  bool is_associated(std::uint16_t id) const;

  /// Node's arrival bearing at the AP (AP-frame azimuth of the LoS).
  double bearing_at_ap(std::uint16_t id) const;

  /// Current pose of a resident node.
  const channel::Pose& node_pose(std::uint16_t id) const;

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_associated() const;
  const channel::Pose& ap_pose() const { return ap_pose_; }
  const LinkBudget& budget() const { return budget_; }

 private:
  struct NodeState {
    channel::Pose pose;
    mac::ChannelGrant grant;
    bool associated = true;
    /// Last note_activity() time; negative = never noted (reap-exempt).
    double last_active_s = -1.0;
  };

  /// Flat id-indexed storage (ids are issued densely): the link()/gains()
  /// hot path resolves a node in one array read instead of a map walk,
  /// which matters at 10^4 nodes x many polls per second (docs/SCALING.md).
  struct NodeSlot {
    NodeState state;
    bool present = false;
  };

  /// Compiled trace state shared by every cached evaluation: the RoomPlan
  /// (walls + blocker grid) plus the AP-endpoint ImageTable, both rebuilt
  /// lazily when Room::epoch() moves. Cache fills trace through the plan
  /// (bit-identical to the reference tracer); the *_uncached cross-check
  /// paths keep re-tracing with RayTracer, so the existing
  /// cached==uncached tests double as an end-to-end plan-vs-reference
  /// equivalence check (docs/GEOMETRY.md).
  struct TraceContext {
    channel::RoomPlan plan;
    channel::ImageTable ap_images;
  };

  struct RefillJob {
    std::uint16_t id = 0;
    channel::Pose pose;
  };

  const NodeState& node(std::uint16_t id) const;
  void store_node(std::uint16_t id, NodeState state);
  channel::BeamGains compute_gains(const channel::Pose& pose) const;
  /// Lazily recompile ctx_ against the current Room::epoch(). Not safe
  /// during a parallel refresh — refresh_cache primes it serially and
  /// hands workers the const reference.
  const TraceContext& trace_context() const;
  LinkCache::Entry make_entry(const channel::Pose& pose,
                              const LinkCache::Entry* prior) const;
  /// Batched refill of one job block: one trace_batch_into for the gains
  /// (blockers applied) and one for the corridors of jobs that cannot
  /// reuse a stale prior's, amortizing the AP image table per block.
  std::vector<LinkCache::Entry> refill_block(const TraceContext& ctx,
                                             std::span<const RefillJob> jobs) const;
  LinkCache::Entry& cache_entry(std::uint16_t id, const NodeState& n) const;

  channel::Room room_;
  channel::Pose ap_pose_;
  SimConfig cfg_;
  LinkBudget budget_;
  antenna::MmxBeamPair beams_;
  antenna::Dipole ap_antenna_;
  antenna::TimeModulatedArray tma_;
  mac::InitProtocol init_;
  rf::SpdtSwitch spdt_;
  std::vector<NodeSlot> nodes_;
  std::size_t num_nodes_ = 0;
  std::uint16_t next_id_ = 1;
  mutable LinkCache cache_;
  mutable TraceContext ctx_;
  std::uint64_t refresh_gen_ = 0;  ///< refresh_cache() call count (trace span key)
};

}  // namespace mmx::sim
