// Deterministic parallel Monte-Carlo sweep engine.
//
// A sweep is N independent trials of a pure function
//   T trial(std::size_t index, Rng& rng)
// fanned across a work-stealing pool. Two guarantees make the parallel
// run bit-identical to the serial one at any thread count:
//
//   1. Seeding — trial i draws from Rng::stream(seed, i), a counter-based
//      derivation that is a pure function of (root seed, trial index):
//      no trial's randomness depends on scheduling or on other trials.
//   2. Ordering — trial i commits its result into slot i of a
//      preallocated vector; reductions over `SweepResult::trials` then
//      see the same operands in the same order regardless of which
//      worker finished first.
//
// docs/PARALLELISM.md walks through the scheme and how to add a sweep.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "mmx/common/rng.hpp"
#include "mmx/obs/trace.hpp"
#include "mmx/sim/thread_pool.hpp"

namespace mmx::sim {

struct SweepConfig {
  std::size_t trials = 30;
  std::size_t threads = 0;  // 0 = one worker per hardware thread
  std::uint64_t seed = 0x6d6d5821ULL;
  /// Emit a "sweep.trial" trace span per trial when collection is on.
  /// Callers that fan out sub-microsecond work items at high rate (the
  /// link-cache refresh path) turn this off: the batch-level span they
  /// already hold tells the story, and per-item spans would cost more
  /// than the items (docs/OBSERVABILITY.md's <2% budget).
  bool trace_trials = true;
};

/// Results committed in trial order, plus the wall-clock the sweep took.
template <typename T>
struct SweepResult {
  std::vector<T> trials;
  double wall_s = 0.0;
  double trials_per_s = 0.0;
  std::size_t threads_used = 1;
};

/// Five-number summary of one metric across trials (JSON-report unit).
struct MetricSummary {
  std::string name;
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

MetricSummary summarize(std::string name, const std::vector<double>& samples);

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config = {});

  const SweepConfig& config() const { return config_; }
  /// Worker count after resolving `threads == 0`.
  std::size_t threads() const { return threads_; }

  /// Run `config().trials` trials of `fn(index, rng)`; results commit in
  /// trial order. `T` must be default-constructible and must not be
  /// `bool` (`std::vector<bool>` slots are not independently writable
  /// across threads).
  template <typename Fn>
  auto run(Fn&& fn) { return map(config_.trials, std::forward<Fn>(fn)); }

  /// Same engine over an explicit item count (e.g. grid cells, distance
  /// points) when the sweep size is not `config().trials`.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> SweepResult<std::decay_t<std::invoke_result_t<Fn&, std::size_t, Rng&>>> {
    using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t, Rng&>>;
    static_assert(!std::is_same_v<T, bool>, "return a struct or int instead of bool");
    SweepResult<T> out;
    out.threads_used = threads_;
    out.trials.resize(count);
    const auto start = std::chrono::steady_clock::now();
    // Span keys combine a per-process run generation with the trial
    // index: unique across successive map() calls (e.g. the repeated
    // cache-refresh batches), so the deterministic trace merge never
    // sees one key produced by two runs. Generations are deterministic
    // because sweeps are launched serially from the driving thread.
    const std::uint64_t trace_run = next_trace_run() << 40;
    if (threads_ <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) {
        MMX_OBS_SPAN_IF(config_.trace_trials, "sweep.trial", trace_run | i);
        Rng rng = Rng::stream(config_.seed, i);
        out.trials[i] = fn(i, rng);
      }
    } else {
      // Contiguous chunks (~8 per worker) amortize queue traffic for
      // microsecond-scale trials while leaving enough tasks to steal.
      // Chunking cannot change results: trial i still draws from stream
      // i and writes slot i no matter which chunk carries it.
      const std::size_t chunk = std::max<std::size_t>(1, count / (threads_ * 8));
      ThreadPool pool(threads_);
      for (std::size_t begin = 0; begin < count; begin += chunk) {
        const std::size_t end = std::min(count, begin + chunk);
        MMX_OBS_GAUGE_ADD("sweep.queue_depth", 1);
        pool.submit([&out, &fn, this, begin, end, trace_run] {
          (void)trace_run;
          // Trial spans are keyed on the trial index, so the merged
          // trace is schedule-independent (docs/OBSERVABILITY.md).
          MMX_OBS_GAUGE_ADD("sweep.queue_depth", -1);
          for (std::size_t i = begin; i < end; ++i) {
            MMX_OBS_SPAN_IF(config_.trace_trials, "sweep.trial", trace_run | i);
            Rng rng = Rng::stream(config_.seed, i);
            out.trials[i] = fn(i, rng);
          }
        });
      }
      pool.wait_idle();
    }
    out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    out.trials_per_s = out.wall_s > 0.0 ? static_cast<double>(count) / out.wall_s : 0.0;
    return out;
  }

 private:
  /// Monotonic per-process sweep-launch counter (trace span key prefix).
  static std::uint64_t next_trace_run();

  SweepConfig config_;
  std::size_t threads_;
};

}  // namespace mmx::sim
