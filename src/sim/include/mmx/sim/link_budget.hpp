// Calibrated end-to-end link budget for mmX experiments.
//
// Single calibration point (documented per DESIGN.md §4): the paper's
// testbed tops out near 35-40 dB SNR at arm's length (Fig. 12 / §6.1's
// "SNR can be up to 35 dB"), while an ideal Friis budget with our antenna
// gains predicts ~62 dB — the difference (connector/cable losses,
// pointing error, polarization mismatch, demod implementation loss) is
// folded into one `implementation_loss_db` constant. Everything else —
// distance decay, beam nulls, blockage dips, OTAM contrast — emerges
// from the physical models.
#pragma once

#include <complex>

#include "mmx/channel/beam_channel.hpp"
#include "mmx/rf/chain.hpp"
#include "mmx/rf/spdt.hpp"

namespace mmx::sim {

struct LinkBudgetSpec {
  double tx_power_dbm = 10.0;          ///< node radiated power (paper §8.1)
  double implementation_loss_db = 18.0;  ///< see header comment
  rf::ReceiverChainSpec receiver;       ///< AP chain (25 MHz noise BW default)
};

/// Link metrics for one node's OTAM transmission.
struct OtamLink {
  double rx1_dbm;       ///< received power while transmitting on Beam 1
  double rx0_dbm;       ///< received power while transmitting on Beam 0
  double snr_db;        ///< paper-style SNR: stronger level over the noise floor
  double contrast_db;   ///< |level difference| between the two beams
  double ask_ber;       ///< two-level envelope BER given the contrast
  double fsk_ber;       ///< non-coherent BFSK BER on the stronger tone
  double joint_ber;     ///< min(ask, fsk) — §6.3 selection decoding
};

class LinkBudget {
 public:
  explicit LinkBudget(LinkBudgetSpec spec = {});

  /// Received power [dBm] for a complex end-to-end gain h (includes both
  /// antennas and the path).
  double rx_power_dbm(std::complex<double> h) const;

  /// SNR [dB] of a single received level.
  double snr_db(std::complex<double> h) const;

  /// Full OTAM link evaluation from per-beam gains. `n_avg` is the number
  /// of independent samples averaged per symbol by the envelope detector.
  OtamLink evaluate_otam(const channel::BeamGains& gains, const rf::SpdtSwitch& spdt,
                         std::size_t n_avg = 8) const;

  /// The "without OTAM" baseline: the node ASK-modulates on Beam 1 only;
  /// SNR comes solely from |h1| and BER from the OOK levels {h1, floor}.
  OtamLink evaluate_fixed_beam(const channel::BeamGains& gains, double ask_floor = 0.1,
                               std::size_t n_avg = 8) const;

  double noise_floor_dbm() const { return chain_.noise_floor_dbm(); }
  const LinkBudgetSpec& spec() const { return spec_; }

 private:
  LinkBudgetSpec spec_;
  rf::ReceiverChain chain_;
};

}  // namespace mmx::sim
