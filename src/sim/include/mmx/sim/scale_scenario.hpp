// Large-scale join/leave/move/block churn driver ("billions of things").
//
// Marries the discrete-event engine, the MAC substrates (init grants,
// stop-and-wait ARQ, AIMD rate control) and the dynamic-blockage models
// into one reproducible workload: `nodes` things join an AP over a join
// window, a walking crowd perturbs the geometry, a slice of the
// population moves or power-cycles every churn interval, and the AP
// measures every resident link every measurement interval — the access
// pattern the LinkCache exists for (many reads per geometry mutation).
//
// The run is a pure function of (config, seed): every stochastic choice
// draws from a counter-derived Rng stream, so reports are bit-identical
// at any `refresh_threads` — the same determinism contract as the sweep
// engine (docs/PARALLELISM.md) extended to a stateful scenario.
#pragma once

#include <cstdint>

#include "mmx/mac/arq.hpp"
#include "mmx/sim/faults.hpp"
#include "mmx/sim/link_cache.hpp"
#include "mmx/sim/network_sim.hpp"

namespace mmx::sim {

struct ScaleConfig {
  /// Things attempting to join. Joins are spread over `join_window_s`.
  std::size_t nodes = 10000;
  double room_width_m = 12.0;
  double room_height_m = 8.0;
  /// Walking people (random-waypoint blockers).
  std::size_t walkers = 3;
  double walker_speed_mps = 1.3;
  double duration_s = 8.0;
  double join_window_s = 2.0;
  /// Geometry/population churn cadence: walkers advance, `move_fraction`
  /// of residents re-pose, `leave_fraction` power-cycle.
  double churn_interval_s = 1.0;
  /// Link measurement cadence (AP polls every resident node for link
  /// adaptation). Many polls per churn tick — the read-heavy regime the
  /// cache targets; people change the geometry at ~1 Hz, the MAC reads
  /// link state at frame granularity.
  double measure_interval_s = 0.0625;
  double move_fraction = 0.01;
  double leave_fraction = 0.002;
  /// Per-node demanded rate; bandwidth follows via the init protocol.
  double node_rate_bps = 0.5e6;
  /// Frame size used to turn a link BER into a delivery probability.
  double frame_bits = 1000.0;
  /// Evaluate links through the cache (false = re-trace every query; the
  /// bench's baseline arm). Results are bit-identical either way.
  bool use_cache = true;
  /// Worker threads for the batched cache refresh (0 = all cores).
  std::size_t refresh_threads = 1;
  /// Fault injection + recovery policy (docs/ROBUSTNESS.md). Disabled by
  /// default, which keeps the scenario byte-identical to the fault-free
  /// code path; `make_fault_storm()` is the pinned robustness-lane storm.
  FaultConfig faults{};
  /// Overload-lane scenario knobs, active only while
  /// `sim.init.overload.enabled` is set (the single master switch — with
  /// it off the scenario is byte-identical to the pre-overload path).
  /// Every Nth thing (by join index) requests priority 2 so shedding has
  /// someone to shed for; 0 = everyone priority 1.
  std::size_t high_priority_period = 0;
  /// Promote demoted grants back toward their request every this many
  /// measurement rounds; 0 disables promotion passes.
  std::uint64_t promote_every_rounds = 4;
  SimConfig sim{};
};

/// Defaults sized for the 10^4-node lane: a 7 GHz band at 57-64 GHz (the
/// paper's §10 scaling direction; the ISM band grants O(100) channels,
/// V-band grants O(10^4)) with a VCO spec covering it and a tight guard.
ScaleConfig make_scale_config(std::size_t nodes = 10000);

/// Pinned oversubscription lane (docs/ROBUSTNESS.md): a 70 MHz V-band
/// slice whose full-rate capacity is ~80 channels, loaded with
/// `oversubscription` times that many things (default 3x), overload
/// control on (best-fit, compaction, demotion to a rate floor of a
/// quarter of the demand, shedding with a priority-2 slice), deny hints
/// feeding each thing's RejoinBackoff. Composable with make_fault_storm()
/// via `.faults`.
ScaleConfig make_overload_config(double oversubscription = 3.0);

/// Overload-lane accounting (all zero while overload control is off).
/// Deterministic simulated quantities: every field participates in
/// ScaleReport::operator== and the bit-identity contract.
struct OverloadLaneReport {
  std::uint64_t demotions = 0;        ///< newcomers admitted below request
  std::uint64_t shed_demotions = 0;   ///< incumbents shrunk for a newcomer
  std::uint64_t promotions = 0;       ///< demoted grants grown back
  std::uint64_t compactions = 0;      ///< band compaction passes
  std::uint64_t retunes = 0;          ///< re-tune notifications issued
  std::uint64_t hinted_denies = 0;    ///< denies carrying a backoff hint
  double hint_delay_sum_s = 0.0;      ///< sum of issued hints
  std::uint64_t backoff_retries = 0;  ///< hint/backoff-timer rejoin attempts
  std::uint64_t invariant_violations = 0;  ///< allocator invariant failures (must be 0)
  std::size_t admitted = 0;                ///< associated things at end of run
  std::size_t admitted_below_request = 0;  ///< granted < requested at end
  double min_admitted_rate_bps = 0.0;      ///< floor of the admitted-rate distribution
  double mean_admitted_rate_bps = 0.0;

  bool operator==(const OverloadLaneReport&) const = default;
};

struct ScaleReport {
  std::size_t joins = 0;            ///< join attempts (incl. power-cycle rejoins)
  std::size_t granted = 0;          ///< joins that got a channel grant
  std::size_t denied = 0;           ///< joins kept resident but unassociated
  std::size_t leaves = 0;
  std::size_t moves = 0;
  std::size_t blocker_updates = 0;  ///< crowd advances (epoch bumps)
  std::size_t measure_rounds = 0;
  std::size_t link_evals = 0;       ///< total per-node link measurements
  std::size_t cache_refills = 0;    ///< entries recomputed by batched refresh
  LinkCacheStats cache{};           ///< end-of-run cache counters
  mac::ArqStats arq{};              ///< aggregated over all nodes
  FaultStats faults{};              ///< injected faults + recovery accounting
  OverloadLaneReport overload{};    ///< overload-control accounting
  double mean_snr_db = 0.0;
  double mean_joint_ber = 0.0;
  double mean_rate_bps = 0.0;       ///< AIMD rate, averaged over final states
  double delivery_ratio = 0.0;      ///< delivered / offered frames
  /// Wall-clock spent inside measurement rounds (cache refresh + link
  /// polls + per-node MAC) — the quantity the link cache accelerates.
  /// Excluded from operator== (timing is machine-dependent).
  double measure_wall_s = 0.0;

  /// Compares every simulated quantity; ignores timing and all cache
  /// counters (cache_refills, cache.*), which legitimately differ between
  /// the cached and uncached arms of an otherwise identical run.
  bool operator==(const ScaleReport&) const;
};

class ScaleScenario {
 public:
  explicit ScaleScenario(ScaleConfig cfg = make_scale_config());

  /// Run the full scenario. Deterministic: same (config, seed) gives a
  /// bit-identical report at any refresh_threads / use_cache setting.
  ScaleReport run(std::uint64_t seed) const;

  const ScaleConfig& config() const { return cfg_; }

 private:
  ScaleConfig cfg_;
};

}  // namespace mmx::sim
