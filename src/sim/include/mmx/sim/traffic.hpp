// Traffic sources for the network simulator.
//
// The paper's motivating workloads: HD security cameras streaming 8-10
// Mbps continuously (§1 footnote), and low-rate sensors reporting
// sporadically.
#pragma once

#include <cstdint>
#include <vector>

#include "mmx/common/rng.hpp"

namespace mmx::sim {

struct PacketArrival {
  double time_s;
  std::size_t bytes;
};

/// Constant-bit-rate source (video): fixed-size packets at a fixed rate.
class CbrSource {
 public:
  CbrSource(double rate_bps, std::size_t packet_bytes = 1400);

  /// All arrivals in [0, duration).
  std::vector<PacketArrival> arrivals(double duration_s) const;

  double rate_bps() const { return rate_bps_; }
  double packet_interval_s() const { return interval_; }

 private:
  double rate_bps_;
  std::size_t packet_bytes_;
  double interval_;
};

/// Poisson sensor source: exponential inter-arrivals, fixed report size.
class PoissonSource {
 public:
  PoissonSource(double mean_reports_per_s, std::size_t report_bytes = 64);

  std::vector<PacketArrival> arrivals(double duration_s, Rng& rng) const;

  double mean_rate_bps() const;

 private:
  double lambda_;
  std::size_t report_bytes_;
};

/// Offered load [bit/s] of an arrival trace over its duration.
double offered_load_bps(const std::vector<PacketArrival>& arrivals, double duration_s);

}  // namespace mmx::sim
