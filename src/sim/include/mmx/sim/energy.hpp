// Battery-lifetime modelling for duty-cycled IoT radios.
//
// The paper's energy argument (§1, Table 1) is per-bit; a deployment
// cares about days-per-battery. A radio that finishes its daily upload
// faster sleeps longer — which is how mmX's 100 Mbps at 1.1 W beats
// radios with lower instantaneous power but lower rates.
#pragma once

#include <string>

namespace mmx::sim {

struct RadioProfile {
  std::string name;
  double active_power_w;  ///< radio power while transmitting
  double bit_rate_bps;    ///< sustained uplink rate
  double sleep_power_w;   ///< deep-sleep draw between bursts
};

/// mmX node / WiFi module / Bluetooth profiles from the Table 1 numbers,
/// with typical sleep currents.
RadioProfile mmx_radio_profile();
RadioProfile wifi_radio_profile();
RadioProfile bluetooth_radio_profile();

/// Seconds of airtime per day to move `bits_per_day`.
/// Throws if the radio cannot physically carry the load in 24 h.
double daily_airtime_s(const RadioProfile& radio, double bits_per_day);

/// Average power [W] over a day for the given daily volume.
double average_power_w(const RadioProfile& radio, double bits_per_day);

/// Battery life [days] for a battery of `battery_wh` watt-hours.
double battery_life_days(const RadioProfile& radio, double bits_per_day, double battery_wh);

/// True if the radio can carry `bits_per_day` within 24 hours.
bool can_sustain(const RadioProfile& radio, double bits_per_day);

}  // namespace mmx::sim
