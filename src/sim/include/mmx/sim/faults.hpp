// Deterministic fault injection for the scale lanes (docs/ROBUSTNESS.md).
//
// The churn scenario models benign dynamics — people walk, nodes move,
// power-cycles announce themselves. Real deployments fail abruptly: a
// person stands up mid-frame and the link dies for half a second, a node
// browns out holding a grant the AP must eventually reap, an ack is lost
// and the sender burns retries into the same blockage burst. This layer
// compiles a FaultConfig into a FaultPlan — a schedule of storm /
// power-cycle / revocation events that is a pure function of
// (config, duration, seed) — and a FaultInjector arms it onto the
// EventQueue. Every stochastic choice draws from a counter-derived Rng
// stream keyed by the event's fixed plan index, so fault runs keep the
// sweep engine's contract: bit-identical reports at any refresh thread
// count, reproducible per seed.
//
// The protocol-plane faults (ack loss/corruption, timeout skew) are not
// plan events; they are per-frame draws the scenario takes from each
// node's own stream, gated behind `p > 0` checks so a config with every
// rate at zero replays the fault-free byte-stream exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mmx/common/rng.hpp"
#include "mmx/mac/arq.hpp"
#include "mmx/mac/init_protocol.hpp"
#include "mmx/sim/event_queue.hpp"

namespace mmx::sim {

struct FaultConfig {
  /// Master switch. Off (the default) keeps the scenario byte-identical
  /// to the pre-fault-layer code path: no extra Rng draws, no reaping.
  bool enabled = false;

  // --- Blockage storms: a slice of links drops into deep fade ----------
  double storm_rate_hz = 0.0;       ///< expected storms per simulated second
  double storm_duration_s = 0.5;    ///< fade length per storm
  double storm_fraction = 0.25;     ///< share of things each storm covers
  /// Frame delivery probability multiplier while faded (deep-fade floor;
  /// the paper's blockage measurements put bursts 20-30 dB down).
  double storm_delivery_frac = 0.02;

  // --- Node power-cycles: silent death, zombie grant at the AP ---------
  double power_cycle_rate_hz = 0.0;  ///< expected cycles per second
  double power_cycle_down_s = 0.4;   ///< off time before rejoin attempts

  // --- Ack plane -------------------------------------------------------
  double ack_loss_frac = 0.0;     ///< P(delivered frame's ack never returns)
  double ack_corrupt_frac = 0.0;  ///< P(ack returns with a mangled seq)

  // --- AP-side grant revocation ---------------------------------------
  double revoke_rate_hz = 0.0;  ///< expected revocations per second

  // --- Timer pathology -------------------------------------------------
  /// Per-node multiplicative skew on the ARQ ack timeout, drawn once at
  /// join from uniform [1 - skew, 1 + skew] (cheap node clocks drift).
  double timeout_skew_frac = 0.0;

  // --- Recovery policy (docs/ROBUSTNESS.md) ----------------------------
  mac::BackoffConfig rejoin_backoff{};  ///< rejoin/re-grant pacing
  /// ARQ give-up streak that escalates to a full re-acquisition (the
  /// node declares the link dead and rejoins through the init protocol).
  /// 0 disables escalation — the default, because give-up streaks also
  /// happen on naturally blocked links, and an all-rates-zero config
  /// must replay the fault-free run exactly.
  int arq_giveups_to_rejoin = 0;
  /// AP reaps associated nodes silent for this long (zombie grants).
  double reap_timeout_s = 0.5;
  /// ARQ config for the things (retry backoff pacing). Only applied when
  /// the fault layer is enabled; the default path keeps the legacy
  /// default-constructed ArqConfig.
  mac::ArqConfig arq{};
};

/// The pinned default fault storm: the configuration the robustness
/// bench arm (`bench_scale_churn --faults on`), the golden-report tests
/// and the CI resilience gate all share. Tuned so an 8 s / 10^4-node run
/// sees every fault class many times over.
FaultConfig make_fault_storm();

/// Fault/recovery accounting, aggregated by the scenario and published
/// onto mmx::obs once per run (same bulk pattern as ArqStats).
struct FaultStats {
  std::uint64_t storms = 0;          ///< blockage storms begun
  std::uint64_t power_cycles = 0;    ///< silent node deaths injected
  std::uint64_t revocations = 0;     ///< AP grant revocations injected
  std::uint64_t acks_lost = 0;
  std::uint64_t acks_corrupted = 0;
  std::uint64_t reaped = 0;          ///< zombie grants reclaimed by the AP
  std::uint64_t escalations = 0;     ///< ARQ give-up streaks -> rejoin
  std::uint64_t rejoin_attempts = 0; ///< backoff-scheduled re-acquisitions
  std::uint64_t recoveries = 0;      ///< outages that ended in a re-grant
  /// Sum of time-to-recover over all recoveries, in measurement rounds
  /// (divide by `recoveries` for the mean; the per-recovery distribution
  /// goes to the `faults.time_to_recover_rounds` log2 histogram).
  std::uint64_t recovery_rounds_sum = 0;

  bool operator==(const FaultStats&) const = default;

  /// Bulk-publish onto the global registry (`faults.*` counters).
  void publish_obs() const;
};

/// One scheduled fault. `rng_index` is fixed at compile time, before
/// sorting, so the event's derived stream identifies it no matter where
/// it lands in the schedule.
struct FaultEvent {
  enum class Kind : std::uint8_t { kStorm, kPowerCycle, kRevoke };
  Kind kind;
  double t_s;
  double duration_s;       ///< storm fade length / power-cycle down time
  std::uint64_t rng_index; ///< per-event stream index within the fault domain
};

/// A compiled, time-sorted fault schedule. Pure function of
/// (config, duration, seed): event counts are llround(rate * duration),
/// times are uniform draws from per-kind counter-derived streams.
class FaultPlan {
 public:
  static FaultPlan compile(const FaultConfig& cfg, double duration_s, std::uint64_t seed);

  const std::vector<FaultEvent>& events() const { return events_; }
  /// Fault-domain seed; per-event streams are Rng::stream(fault_seed(),
  /// event.rng_index).
  std::uint64_t fault_seed() const { return fault_seed_; }

 private:
  std::vector<FaultEvent> events_;
  std::uint64_t fault_seed_ = 0;
};

/// Scenario-side reactions to plan events. Each hook receives an Rng
/// derived from the event's own stream index — victim choice cannot
/// perturb, or be perturbed by, any other draw in the run.
struct FaultHooks {
  std::function<void(Rng&, double duration_s)> storm_begin;
  std::function<void(Rng&, double down_s)> power_cycle;
  std::function<void(Rng&)> revoke;
};

/// Arms a FaultPlan onto an EventQueue. The injector owns no scenario
/// state; it schedules one queue event per plan entry and hands each
/// hook its derived stream.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Schedule every plan event on `q`. Hooks must outlive the queue run.
  void arm(EventQueue& q, FaultHooks hooks);

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  FaultHooks hooks_;
};

}  // namespace mmx::sim
