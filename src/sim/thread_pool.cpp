#include "mmx/sim/thread_pool.hpp"

#include <utility>

namespace mmx::sim {

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads == 0 ? hardware_threads() : num_threads;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workers_.emplace_back([this, i] { run_worker(i); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t slot = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    const std::lock_guard<std::mutex> qlock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  {
    // Publish availability under wake_mutex_ so a worker between its
    // predicate check and its sleep cannot miss the notify.
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    queued_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own queue first, newest task (LIFO keeps the working set warm)...
  {
    WorkerQueue& q = *queues_[self];
    const std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // ...then steal the oldest task from the first non-empty victim.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(self + k) % queues_.size()];
    const std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::finish_task() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::run_worker(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      try {
        task();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      finish_task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_ && queued_.load(std::memory_order_relaxed) == 0) return;
  }
}

void ThreadPool::wait_idle() {
  {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    idle_cv_.wait(lock, [this] { return in_flight_.load(std::memory_order_acquire) == 0; });
  }
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (first_error_) {
    const std::exception_ptr err = std::exchange(first_error_, nullptr);
    std::rethrow_exception(err);
  }
}

}  // namespace mmx::sim
