#include "mmx/sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/obs/obs.hpp"

namespace mmx::sim {

namespace {

// Offsets the fault domain far away from the scenario's own stream
// indices (0 = crowd, 1 = churn, 2+i = things), so fault draws can never
// collide with a thing's stream no matter the population.
constexpr std::uint64_t kFaultDomain = 0xFA171E57ULL;

// Per-kind stream indices for the schedule draws; per-event streams
// start above every kind index.
constexpr std::uint64_t kEventStreamBase = 16;

void validate(const FaultConfig& c) {
  const auto nonneg = [](double v, const char* what) {
    if (v < 0.0) throw std::invalid_argument(std::string("FaultConfig: ") + what + " must be >= 0");
  };
  nonneg(c.storm_rate_hz, "storm_rate_hz");
  nonneg(c.power_cycle_rate_hz, "power_cycle_rate_hz");
  nonneg(c.revoke_rate_hz, "revoke_rate_hz");
  nonneg(c.timeout_skew_frac, "timeout_skew_frac");
  if (c.storm_duration_s <= 0.0 || c.power_cycle_down_s <= 0.0 || c.reap_timeout_s <= 0.0)
    throw std::invalid_argument("FaultConfig: durations must be > 0");
  if (c.storm_fraction < 0.0 || c.storm_fraction > 1.0 || c.ack_loss_frac < 0.0 ||
      c.ack_loss_frac > 1.0 || c.ack_corrupt_frac < 0.0 || c.ack_corrupt_frac > 1.0 ||
      c.storm_delivery_frac < 0.0 || c.storm_delivery_frac > 1.0 || c.timeout_skew_frac >= 1.0)
    throw std::invalid_argument("FaultConfig: fractions must lie in [0, 1]");
  if (c.arq_giveups_to_rejoin < 0)
    throw std::invalid_argument("FaultConfig: arq_giveups_to_rejoin must be >= 0");
}

}  // namespace

FaultConfig make_fault_storm() {
  FaultConfig c;
  c.enabled = true;
  c.storm_rate_hz = 0.75;         // one deep-fade burst every ~1.3 s
  c.storm_duration_s = 0.5;       // the "someone stood up" timescale
  c.storm_fraction = 0.25;
  c.storm_delivery_frac = 0.02;
  c.power_cycle_rate_hz = 4.0;    // silent deaths, zombie grants to reap
  c.power_cycle_down_s = 0.4;
  c.ack_loss_frac = 0.02;
  c.ack_corrupt_frac = 0.01;
  c.revoke_rate_hz = 2.0;
  c.timeout_skew_frac = 0.25;
  c.rejoin_backoff = mac::BackoffConfig{
      .base_s = 0.125, .factor = 2.0, .cap_s = 1.0, .jitter_frac = 0.25};
  c.arq_giveups_to_rejoin = 3;
  // 2x the ARQ backoff cap: retry pacing alone can never look like death,
  // so only genuine zombies (power-cycled grant holders) get reaped.
  c.reap_timeout_s = 0.5;
  // Spread retries out of the blockage burst: 2 ms, 4 ms, ... capped at
  // four measurement rounds of the scale lane.
  c.arq = mac::ArqConfig{.max_retries = 4, .timeout_s = 2e-3,
                         .backoff_factor = 2.0, .max_timeout_s = 0.25};
  return c;
}

void FaultStats::publish_obs() const {
  MMX_OBS_COUNT("faults.storms", storms);
  MMX_OBS_COUNT("faults.power_cycles", power_cycles);
  MMX_OBS_COUNT("faults.revocations", revocations);
  MMX_OBS_COUNT("faults.acks_lost", acks_lost);
  MMX_OBS_COUNT("faults.acks_corrupted", acks_corrupted);
  MMX_OBS_COUNT("faults.reaped", reaped);
  MMX_OBS_COUNT("faults.escalations", escalations);
  MMX_OBS_COUNT("faults.rejoin_attempts", rejoin_attempts);
  MMX_OBS_COUNT("faults.recoveries", recoveries);
  MMX_OBS_COUNT("faults.recovery_rounds_sum", recovery_rounds_sum);
}

FaultPlan FaultPlan::compile(const FaultConfig& cfg, double duration_s, std::uint64_t seed) {
  validate(cfg);
  if (duration_s <= 0.0) throw std::invalid_argument("FaultPlan: duration_s must be > 0");

  FaultPlan plan;
  plan.fault_seed_ = Rng::derive_seed(seed, kFaultDomain);
  if (!cfg.enabled) return plan;

  std::uint64_t next_index = kEventStreamBase;
  const auto draw_kind = [&](FaultEvent::Kind kind, double rate_hz, double event_duration_s,
                             std::uint64_t kind_stream) {
    const auto n = static_cast<std::uint64_t>(std::llround(rate_hz * duration_s));
    Rng rng = Rng::stream(plan.fault_seed_, kind_stream);
    for (std::uint64_t i = 0; i < n; ++i) {
      // rng_index is assigned in draw order, before the sort below, so
      // an event keeps its stream identity wherever it lands in time.
      plan.events_.push_back(
          {kind, rng.uniform(0.0, duration_s), event_duration_s, next_index++});
    }
  };
  draw_kind(FaultEvent::Kind::kStorm, cfg.storm_rate_hz, cfg.storm_duration_s, 0);
  draw_kind(FaultEvent::Kind::kPowerCycle, cfg.power_cycle_rate_hz, cfg.power_cycle_down_s, 1);
  draw_kind(FaultEvent::Kind::kRevoke, cfg.revoke_rate_hz, 0.0, 2);

  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.t_s != b.t_s) return a.t_s < b.t_s;
              return a.rng_index < b.rng_index;  // total order: indices are unique
            });
  return plan;
}

void FaultInjector::arm(EventQueue& q, FaultHooks hooks) {
  hooks_ = std::move(hooks);
  for (const FaultEvent& ev : plan_.events()) {
    q.schedule_at(ev.t_s, [this, &ev] {
      MMX_OBS_COUNT("faults.events_fired", 1);
      Rng rng = Rng::stream(plan_.fault_seed(), ev.rng_index);
      switch (ev.kind) {
        case FaultEvent::Kind::kStorm:
          if (hooks_.storm_begin) hooks_.storm_begin(rng, ev.duration_s);
          break;
        case FaultEvent::Kind::kPowerCycle:
          if (hooks_.power_cycle) hooks_.power_cycle(rng, ev.duration_s);
          break;
        case FaultEvent::Kind::kRevoke:
          if (hooks_.revoke) hooks_.revoke(rng);
          break;
      }
    });
  }
  MMX_OBS_COUNT("faults.events_armed", plan_.events().size());
}

}  // namespace mmx::sim
