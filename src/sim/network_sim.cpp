#include "mmx/sim/network_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "mmx/channel/ray_tracer.hpp"
#include "mmx/common/units.hpp"
#include "mmx/obs/trace.hpp"
#include "mmx/sim/sweep.hpp"

namespace mmx::sim {

namespace {
// Trace parameters behind gains(); corridors_for must use the same ones
// so the cache's corridor set stays a superset of the real path set.
constexpr double kTraceMaxExcessLossDb = 60.0;
constexpr int kTraceMaxBounces = 1;

// Nodes per refill batch: big enough to amortize the per-batch image
// table and workspace reuse, small enough that the SweepRunner still
// load-balances a 10^4-node refresh across workers.
constexpr std::size_t kRefillBlock = 64;

// Per-thread trace workspace: after warm-up every cached trace through
// the RoomPlan is allocation-free (docs/GEOMETRY.md).
channel::PathList& tls_path_list() {
  thread_local channel::PathList ws;
  return ws;
}
}  // namespace

NetworkSimulator::NetworkSimulator(channel::Room room, channel::Pose ap_pose, SimConfig cfg)
    : room_(std::move(room)),
      ap_pose_(ap_pose),
      cfg_(cfg),
      budget_(cfg.budget),
      beams_(antenna::BeamPairSpec{.freq_hz = cfg.freq_hz}),
      ap_antenna_(),
      tma_(antenna::TimeModulatedArray::progressive(cfg.tma, cfg.tma_delay_frac, cfg.tma_tau)),
      init_(mac::FdmAllocator(cfg.band_low_hz, cfg.band_high_hz, cfg.init.guard_hz),
            rf::Vco(cfg.node_vco), cfg.init) {
  if (!room_.contains(ap_pose.position))
    throw std::invalid_argument("NetworkSimulator: AP outside the room");
  if (cfg.band_low_hz >= cfg.band_high_hz)
    throw std::invalid_argument("NetworkSimulator: band_low_hz must be < band_high_hz");
}

std::optional<std::uint16_t> NetworkSimulator::add_node(const channel::Pose& pose,
                                                        double rate_bps) {
  return admit(pose, rate_bps).id;
}

NetworkSimulator::Admission NetworkSimulator::admit(const channel::Pose& pose,
                                                    double rate_bps, std::uint8_t priority) {
  if (!room_.contains(pose.position))
    throw std::invalid_argument("NetworkSimulator: node outside the room");
  const std::uint16_t id = next_id_++;
  // Bearing at registration: AP-frame azimuth of the direct path.
  const double bearing =
      wrap_angle((pose.position - ap_pose_.position).angle() - ap_pose_.orientation_rad);
  const auto reply = init_.handle(mac::ChannelRequest{id, rate_bps, bearing, priority});
  if (const auto* grant = std::get_if<mac::ChannelGrant>(&reply)) {
    store_node(id, NodeState{pose, *grant, /*associated=*/true});
    return Admission{id, 0.0,
                     grant->channel.bandwidth_hz * cfg_.init.spectral_efficiency};
  }
  const auto* deny = std::get_if<mac::ChannelDeny>(&reply);
  return Admission{std::nullopt, deny != nullptr ? deny->retry_after_s : 0.0, 0.0};
}

std::vector<std::pair<std::uint16_t, double>> NetworkSimulator::promote_demoted() {
  std::vector<std::pair<std::uint16_t, double>> out;
  for (const mac::ChannelGrant& g : init_.promote_demoted()) {
    if (g.node_id < nodes_.size() && nodes_[g.node_id].present)
      nodes_[g.node_id].state.grant = g;
    out.emplace_back(g.node_id,
                     g.channel.bandwidth_hz * cfg_.init.spectral_efficiency);
  }
  return out;
}

std::vector<mac::ChannelGrant> NetworkSimulator::drain_retunes() {
  std::vector<mac::ChannelGrant> retunes = init_.take_retunes();
  for (const mac::ChannelGrant& g : retunes)
    if (g.node_id < nodes_.size() && nodes_[g.node_id].present)
      nodes_[g.node_id].state.grant = g;
  return retunes;
}

std::uint16_t NetworkSimulator::add_tracked_node(const channel::Pose& pose) {
  if (!room_.contains(pose.position))
    throw std::invalid_argument("NetworkSimulator: node outside the room");
  const std::uint16_t id = next_id_++;
  store_node(id, NodeState{pose, mac::ChannelGrant{}, /*associated=*/false});
  return id;
}

void NetworkSimulator::store_node(std::uint16_t id, NodeState state) {
  if (id >= nodes_.size()) nodes_.resize(id + 1);
  nodes_[id] = NodeSlot{std::move(state), /*present=*/true};
  ++num_nodes_;
}

void NetworkSimulator::remove_node(std::uint16_t id) {
  if (id >= nodes_.size() || !nodes_[id].present) return;
  nodes_[id] = NodeSlot{};
  --num_nodes_;
  init_.release(id);
  cache_.erase(id);
}

void NetworkSimulator::note_activity(std::uint16_t id, double now_s) {
  if (id >= nodes_.size() || !nodes_[id].present)
    throw std::out_of_range("NetworkSimulator: unknown node");
  nodes_[id].state.last_active_s = now_s;
}

std::vector<std::uint16_t> NetworkSimulator::reap_inactive(double now_s,
                                                           double silence_timeout_s) {
  if (silence_timeout_s <= 0.0)
    throw std::invalid_argument("NetworkSimulator: silence_timeout_s must be > 0");
  std::vector<std::uint16_t> reaped;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const NodeSlot& slot = nodes_[id];
    if (!slot.present || !slot.state.associated || slot.state.last_active_s < 0.0) continue;
    if (now_s - slot.state.last_active_s >= silence_timeout_s)
      reaped.push_back(static_cast<std::uint16_t>(id));
  }
  for (const std::uint16_t id : reaped) remove_node(id);
  MMX_OBS_COUNT("sim.ap.reaped", reaped.size());
  return reaped;
}

bool NetworkSimulator::revoke_grant(std::uint16_t id) {
  if (id >= nodes_.size() || !nodes_[id].present || !nodes_[id].state.associated) return false;
  init_.release(id);
  nodes_[id].state.grant = mac::ChannelGrant{};
  nodes_[id].state.associated = false;
  MMX_OBS_COUNT("sim.ap.revocations", 1);
  return true;
}

void NetworkSimulator::set_node_pose(std::uint16_t id, const channel::Pose& pose) {
  if (!room_.contains(pose.position))
    throw std::invalid_argument("NetworkSimulator: node outside the room");
  if (id >= nodes_.size() || !nodes_[id].present)
    throw std::out_of_range("NetworkSimulator: unknown node");
  if (nodes_[id].state.pose == pose) return;
  nodes_[id].state.pose = pose;
  cache_.erase(id);  // exactly this entry; everyone else stays warm
}

const NetworkSimulator::NodeState& NetworkSimulator::node(std::uint16_t id) const {
  if (id >= nodes_.size() || !nodes_[id].present)
    throw std::out_of_range("NetworkSimulator: unknown node");
  return nodes_[id].state;
}

channel::BeamGains NetworkSimulator::compute_gains(const channel::Pose& pose) const {
  const channel::RayTracer tracer(room_);
  return channel::compute_beam_gains(tracer, pose, beams_, ap_pose_, ap_antenna_,
                                     cfg_.freq_hz);
}

const NetworkSimulator::TraceContext& NetworkSimulator::trace_context() const {
  if (!ctx_.plan.compiled() || ctx_.plan.room_epoch() != room_.epoch()) {
    ctx_.plan.rebuild(room_);
    ctx_.plan.build_images(ap_pose_.position, kTraceMaxBounces, ctx_.ap_images);
  }
  return ctx_;
}

LinkCache::Entry NetworkSimulator::make_entry(const channel::Pose& pose,
                                              const LinkCache::Entry* prior) const {
  const TraceContext& ctx = trace_context();
  channel::PathList& ws = tls_path_list();
  ws.clear();
  LinkCache::Entry e;
  e.pose = pose;
  const auto paths = ctx.plan.trace_into(pose.position, ap_pose_.position, ws,
                                         kTraceMaxExcessLossDb, kTraceMaxBounces,
                                         /*apply_blockers=*/true);
  // Consume the span before the next trace can grow the workspace.
  e.gains =
      channel::beam_gains_from_paths(paths, pose, beams_, ap_pose_, ap_antenna_, cfg_.freq_hz);
  // A stale same-pose entry keeps valid corridors (walls and pose decide
  // them, and both are unchanged) — reuse instead of re-tracing.
  if (prior != nullptr && prior->pose == pose) {
    e.corridors = prior->corridors;
  } else {
    const auto wall_only = ctx.plan.trace_into(pose.position, ap_pose_.position, ws,
                                               kTraceMaxExcessLossDb, kTraceMaxBounces,
                                               /*apply_blockers=*/false);
    e.corridors = LinkCache::corridors_from_paths(wall_only, pose.position, ap_pose_.position);
  }
  return e;
}

std::vector<LinkCache::Entry> NetworkSimulator::refill_block(
    const TraceContext& ctx, std::span<const RefillJob> jobs) const {
  channel::PathList& ws = tls_path_list();
  thread_local std::vector<Vec2> txs;
  thread_local std::vector<std::uint32_t> offs;
  thread_local std::vector<std::uint32_t> wall_offs;
  thread_local std::vector<std::size_t> need_corridors;  // job indices
  thread_local std::vector<std::size_t> gains_only;      // job indices
  ws.clear();
  need_corridors.clear();
  gains_only.clear();

  // Partition: a stale same-pose prior keeps valid corridors (walls and
  // pose decide them, and both are unchanged), so those jobs only need
  // the gains trace; everyone else takes the fused dual trace that
  // produces gains and corridors from one geometric pass per node.
  std::vector<LinkCache::Entry> out(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out[i].pose = jobs[i].pose;
    // Concurrent reads of the cache are safe here: nothing mutates it
    // until the runner has joined and store_refill commits.
    const LinkCache::Entry* prior = cache_.find(jobs[i].id);
    if (prior != nullptr && prior->pose == jobs[i].pose) {
      out[i].corridors = prior->corridors;
      gains_only.push_back(i);
    } else {
      need_corridors.push_back(i);
    }
  }

  if (!need_corridors.empty()) {
    txs.clear();
    for (const std::size_t i : need_corridors) txs.push_back(jobs[i].pose.position);
    offs.resize(txs.size() + 1);
    wall_offs.resize(txs.size() + 1);
    ctx.plan.trace_batch_dual_into(ap_pose_.position, txs, ctx.ap_images, ws, offs, wall_offs,
                                   kTraceMaxExcessLossDb, kTraceMaxBounces);
    for (std::size_t k = 0; k < need_corridors.size(); ++k) {
      const std::size_t i = need_corridors[k];
      out[i].gains =
          channel::beam_gains_from_paths(ws.slice(offs[k], offs[k + 1]), jobs[i].pose, beams_,
                                         ap_pose_, ap_antenna_, cfg_.freq_hz);
      out[i].corridors = LinkCache::corridors_from_paths(
          ws.slice(wall_offs[k], wall_offs[k + 1]), jobs[i].pose.position, ap_pose_.position);
    }
  }

  if (!gains_only.empty()) {
    txs.clear();
    for (const std::size_t i : gains_only) txs.push_back(jobs[i].pose.position);
    ws.clear();  // the dual pass's slices were consumed above
    offs.resize(txs.size() + 1);
    ctx.plan.trace_batch_into(ap_pose_.position, txs, ctx.ap_images, ws, offs,
                              kTraceMaxExcessLossDb, kTraceMaxBounces,
                              /*apply_blockers=*/true);
    for (std::size_t k = 0; k < gains_only.size(); ++k) {
      const std::size_t i = gains_only[k];
      out[i].gains =
          channel::beam_gains_from_paths(ws.slice(offs[k], offs[k + 1]), jobs[i].pose, beams_,
                                         ap_pose_, ap_antenna_, cfg_.freq_hz);
    }
  }
  return out;
}

LinkCache::Entry& NetworkSimulator::cache_entry(std::uint16_t id, const NodeState& n) const {
  cache_.reconcile(room_);
  return cache_.ensure(
      id, n.pose, [&](const LinkCache::Entry* prior) { return make_entry(n.pose, prior); });
}

channel::BeamGains NetworkSimulator::gains(std::uint16_t id) const {
  const NodeState& n = node(id);
  if (!cfg_.link_cache) return compute_gains(n.pose);
  return cache_entry(id, n).gains;
}

channel::BeamGains NetworkSimulator::gains_uncached(std::uint16_t id) const {
  return compute_gains(node(id).pose);
}

OtamLink NetworkSimulator::link(std::uint16_t id) const {
  const NodeState& n = node(id);
  if (!cfg_.link_cache) return budget_.evaluate_otam(compute_gains(n.pose), spdt_);
  LinkCache::Entry& e = cache_entry(id, n);
  if (!e.has_otam) {
    e.otam = budget_.evaluate_otam(e.gains, spdt_);
    e.has_otam = true;
  }
  return e.otam;
}

OtamLink NetworkSimulator::link_uncached(std::uint16_t id) const {
  return budget_.evaluate_otam(gains_uncached(id), spdt_);
}

OtamLink NetworkSimulator::fixed_beam_link(std::uint16_t id) const {
  const NodeState& n = node(id);
  if (!cfg_.link_cache) return budget_.evaluate_fixed_beam(compute_gains(n.pose));
  LinkCache::Entry& e = cache_entry(id, n);
  if (!e.has_fixed) {
    e.fixed = budget_.evaluate_fixed_beam(e.gains);
    e.has_fixed = true;
  }
  return e.fixed;
}

std::size_t NetworkSimulator::refresh_cache(std::size_t threads) {
  if (!cfg_.link_cache) return 0;
  MMX_OBS_SPAN("sim.refresh_cache", refresh_gen_++);
  cache_.reconcile(room_);
  std::vector<RefillJob> stale;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (!nodes_[id].present) continue;
    const channel::Pose& pose = nodes_[id].state.pose;
    if (!cache_.valid(static_cast<std::uint16_t>(id), pose))
      stale.push_back({static_cast<std::uint16_t>(id), pose});
  }
  if (stale.empty()) return 0;

  // Compile the plan + AP image table once, serially: the parallel
  // workers below only read it.
  const TraceContext& ctx = trace_context();

  // Fan block refills over the sweep engine: each entry is a pure
  // function of (pose, room), so any schedule commits identical bits; the
  // runner's trial-order commit then makes the whole refresh
  // order-independent. Blocks (not single nodes) are the work unit so
  // each worker amortizes the batched trace across kRefillBlock nodes.
  // trace_trials off: refills are sub-microsecond and this batch already
  // sits inside the sim.refresh_cache span above — per-item spans here
  // would dominate the observability budget on the scale lane.
  const std::size_t blocks = (stale.size() + kRefillBlock - 1) / kRefillBlock;
  SweepRunner runner(
      SweepConfig{.trials = blocks, .threads = threads, .seed = 0, .trace_trials = false});
  const std::span<const RefillJob> all(stale);
  auto filled = runner.map(blocks, [&](std::size_t b, Rng& /*rng*/) {
    const std::size_t lo = b * kRefillBlock;
    return refill_block(ctx, all.subspan(lo, std::min(kRefillBlock, stale.size() - lo)));
  });
  std::size_t next = 0;
  for (std::vector<LinkCache::Entry>& block : filled.trials)
    for (LinkCache::Entry& e : block) cache_.store_refill(stale[next++].id, std::move(e));
  return stale.size();
}

const mac::ChannelGrant& NetworkSimulator::grant(std::uint16_t id) const {
  // Read the live grant: the init protocol may re-point a node's SDM
  // harmonic when its channel later becomes shared.
  const auto it = init_.grants().find(id);
  if (it == init_.grants().end()) throw std::out_of_range("NetworkSimulator: unknown node");
  return it->second;
}

bool NetworkSimulator::is_associated(std::uint16_t id) const { return node(id).associated; }

std::size_t NetworkSimulator::num_associated() const {
  std::size_t n = 0;
  for (const NodeSlot& slot : nodes_) n += (slot.present && slot.state.associated) ? 1 : 0;
  return n;
}

const channel::Pose& NetworkSimulator::node_pose(std::uint16_t id) const {
  return node(id).pose;
}

double NetworkSimulator::bearing_at_ap(std::uint16_t id) const {
  const NodeState& n = node(id);
  return wrap_angle((n.pose.position - ap_pose_.position).angle() - ap_pose_.orientation_rad);
}

std::map<std::uint16_t, double> NetworkSimulator::sinr_all_db() const {
  // Received power (stronger OTAM level) per node, in watts.
  std::map<std::uint16_t, double> rx_w;
  std::map<std::uint16_t, double> bearing;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].present || !nodes_[i].state.associated) continue;
    const auto id = static_cast<std::uint16_t>(i);
    const OtamLink l = link(id);
    rx_w[id] = dbm_to_watt(std::max(l.rx1_dbm, l.rx0_dbm));
    bearing[id] = bearing_at_ap(id);
  }

  const double noise_w = dbm_to_watt(budget_.noise_floor_dbm());
  const double aclr = db_to_lin(-cfg_.adjacent_channel_rejection_db);

  // Per-group power control: every member of a shared channel backs off
  // to the weakest member's receive level.
  if (cfg_.sdm_power_control) {
    std::map<std::pair<double, double>, double> group_min;  // (centre, bw) -> min rx
    for (const auto& [id, w] : rx_w) {
      const auto& ch = grant(id).channel;
      const auto key = std::make_pair(ch.center_hz, ch.bandwidth_hz);
      const auto it = group_min.find(key);
      if (it == group_min.end() || w < it->second) group_min[key] = w;
    }
    for (auto& [id, w] : rx_w) {
      const auto& ch = grant(id).channel;
      w = group_min.at(std::make_pair(ch.center_hz, ch.bandwidth_hz));
    }
  }

  const auto share_count = [&](const mac::ChannelAllocation& ch) {
    std::size_t n = 0;
    for (const auto& [jd, wj] : rx_w)
      if (grant(jd).channel == ch) ++n;
    return n;
  };

  std::map<std::uint16_t, double> out;
  for (const auto& [id, wi] : rx_w) {
    const mac::ChannelGrant& gi = grant(id);
    const int m_i = gi.sdm_harmonic;
    // The TMA gain applies only to SDM groups; plain FDM nodes are
    // received on the AP's static antenna (gain already in the budget).
    const bool shared_i = share_count(gi.channel) > 1;
    const double g_own =
        shared_i ? tma_.harmonic_power(m_i, bearing.at(id)) : 1.0;
    const double wanted = wi * std::max(g_own, 1e-12);

    double interference = 0.0;
    for (const auto& [jd, wj] : rx_w) {
      if (jd == id) continue;
      if (grant(jd).channel == gi.channel) {
        // Co-channel: leakage through the harmonic-m_i pattern toward j.
        const double g_leak = tma_.harmonic_power(m_i, bearing.at(jd));
        interference += wj * g_leak;
      } else {
        interference += wj * aclr * (shared_i ? g_own : 1.0);
      }
    }
    const double noise = noise_w * (shared_i ? g_own : 1.0);
    out[id] = lin_to_db(wanted / (interference + noise));
  }
  return out;
}

}  // namespace mmx::sim
