#include "mmx/sim/network_sim.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::sim {

NetworkSimulator::NetworkSimulator(channel::Room room, channel::Pose ap_pose, SimConfig cfg)
    : room_(std::move(room)),
      ap_pose_(ap_pose),
      cfg_(cfg),
      budget_(cfg.budget),
      beams_(antenna::BeamPairSpec{.freq_hz = cfg.freq_hz}),
      ap_antenna_(),
      tma_(antenna::TimeModulatedArray::progressive(cfg.tma, cfg.tma_delay_frac, cfg.tma_tau)),
      init_(mac::FdmAllocator(kIsmLowHz, kIsmHighHz, cfg.init.guard_hz), rf::Vco{}, cfg.init) {
  if (!room_.contains(ap_pose.position))
    throw std::invalid_argument("NetworkSimulator: AP outside the room");
}

std::optional<std::uint16_t> NetworkSimulator::add_node(const channel::Pose& pose,
                                                        double rate_bps) {
  if (!room_.contains(pose.position))
    throw std::invalid_argument("NetworkSimulator: node outside the room");
  const std::uint16_t id = next_id_++;
  // Bearing at registration: AP-frame azimuth of the direct path.
  const double bearing =
      wrap_angle((pose.position - ap_pose_.position).angle() - ap_pose_.orientation_rad);
  const auto reply = init_.handle(mac::ChannelRequest{id, rate_bps, bearing});
  const auto* grant = std::get_if<mac::ChannelGrant>(&reply);
  if (!grant) return std::nullopt;
  nodes_[id] = NodeState{pose, *grant};
  return id;
}

void NetworkSimulator::remove_node(std::uint16_t id) {
  if (nodes_.erase(id) > 0) init_.release(id);
}

void NetworkSimulator::set_node_pose(std::uint16_t id, const channel::Pose& pose) {
  if (!room_.contains(pose.position))
    throw std::invalid_argument("NetworkSimulator: node outside the room");
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("NetworkSimulator: unknown node");
  it->second.pose = pose;
}

const NetworkSimulator::NodeState& NetworkSimulator::node(std::uint16_t id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("NetworkSimulator: unknown node");
  return it->second;
}

channel::BeamGains NetworkSimulator::gains(std::uint16_t id) const {
  const NodeState& n = node(id);
  channel::RayTracer tracer(room_);
  return channel::compute_beam_gains(tracer, n.pose, beams_, ap_pose_, ap_antenna_,
                                     cfg_.freq_hz);
}

OtamLink NetworkSimulator::link(std::uint16_t id) const {
  return budget_.evaluate_otam(gains(id), spdt_);
}

OtamLink NetworkSimulator::fixed_beam_link(std::uint16_t id) const {
  return budget_.evaluate_fixed_beam(gains(id));
}

const mac::ChannelGrant& NetworkSimulator::grant(std::uint16_t id) const {
  // Read the live grant: the init protocol may re-point a node's SDM
  // harmonic when its channel later becomes shared.
  const auto it = init_.grants().find(id);
  if (it == init_.grants().end()) throw std::out_of_range("NetworkSimulator: unknown node");
  return it->second;
}

double NetworkSimulator::bearing_at_ap(std::uint16_t id) const {
  const NodeState& n = node(id);
  return wrap_angle((n.pose.position - ap_pose_.position).angle() - ap_pose_.orientation_rad);
}

std::map<std::uint16_t, double> NetworkSimulator::sinr_all_db() const {
  // Received power (stronger OTAM level) per node, in watts.
  std::map<std::uint16_t, double> rx_w;
  std::map<std::uint16_t, double> bearing;
  for (const auto& [id, st] : nodes_) {
    const OtamLink l = budget_.evaluate_otam(gains(id), spdt_);
    rx_w[id] = dbm_to_watt(std::max(l.rx1_dbm, l.rx0_dbm));
    bearing[id] = bearing_at_ap(id);
  }

  const double noise_w = dbm_to_watt(budget_.noise_floor_dbm());
  const double aclr = db_to_lin(-cfg_.adjacent_channel_rejection_db);

  // Per-group power control: every member of a shared channel backs off
  // to the weakest member's receive level.
  if (cfg_.sdm_power_control) {
    std::map<std::pair<double, double>, double> group_min;  // (centre, bw) -> min rx
    for (const auto& [id, st] : nodes_) {
      const auto& ch = grant(id).channel;
      const auto key = std::make_pair(ch.center_hz, ch.bandwidth_hz);
      const auto it = group_min.find(key);
      if (it == group_min.end() || rx_w.at(id) < it->second) group_min[key] = rx_w.at(id);
    }
    for (auto& [id, w] : rx_w) {
      const auto& ch = grant(id).channel;
      w = group_min.at(std::make_pair(ch.center_hz, ch.bandwidth_hz));
    }
  }

  const auto share_count = [&](const mac::ChannelAllocation& ch) {
    std::size_t n = 0;
    for (const auto& [jd, sj] : nodes_)
      if (grant(jd).channel == ch) ++n;
    return n;
  };

  std::map<std::uint16_t, double> out;
  for (const auto& [id, st] : nodes_) {
    const mac::ChannelGrant& gi = grant(id);
    const int m_i = gi.sdm_harmonic;
    // The TMA gain applies only to SDM groups; plain FDM nodes are
    // received on the AP's static antenna (gain already in the budget).
    const bool shared_i = share_count(gi.channel) > 1;
    const double g_own =
        shared_i ? tma_.harmonic_power(m_i, bearing.at(id)) : 1.0;
    const double wanted = rx_w.at(id) * std::max(g_own, 1e-12);

    double interference = 0.0;
    for (const auto& [jd, sj] : nodes_) {
      if (jd == id) continue;
      if (grant(jd).channel == gi.channel) {
        // Co-channel: leakage through the harmonic-m_i pattern toward j.
        const double g_leak = tma_.harmonic_power(m_i, bearing.at(jd));
        interference += rx_w.at(jd) * g_leak;
      } else {
        interference += rx_w.at(jd) * aclr * (shared_i ? g_own : 1.0);
      }
    }
    const double noise = noise_w * (shared_i ? g_own : 1.0);
    out[id] = lin_to_db(wanted / (interference + noise));
  }
  return out;
}

}  // namespace mmx::sim
