#include "mmx/sim/scale_scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "mmx/channel/blockage.hpp"
#include "mmx/common/units.hpp"
#include "mmx/mac/rate_control.hpp"
#include "mmx/obs/obs.hpp"
#include "mmx/obs/trace.hpp"
#include "mmx/sim/event_queue.hpp"

namespace mmx::sim {

ScaleConfig make_scale_config(std::size_t nodes) {
  ScaleConfig cfg;
  cfg.nodes = nodes;
  // V-band deployment (paper §10's scaling direction; cf. the band60
  // ablation): 7 GHz of spectrum instead of the 250 MHz ISM sliver, a VCO
  // spec covering it with margin for the FSK tone offsets, and a tight
  // guard so O(10^4) half-megabit channels fit.
  cfg.sim.freq_hz = 60.5e9;
  cfg.sim.band_low_hz = 57.0e9;
  cfg.sim.band_high_hz = 64.0e9;
  cfg.sim.node_vco.f_min_hz = 56.5e9;
  cfg.sim.node_vco.f_max_hz = 64.5e9;
  cfg.sim.init.guard_hz = 0.25e6;
  return cfg;
}

bool ScaleReport::operator==(const ScaleReport& o) const {
  return joins == o.joins && granted == o.granted && denied == o.denied &&
         leaves == o.leaves && moves == o.moves && blocker_updates == o.blocker_updates &&
         measure_rounds == o.measure_rounds && link_evals == o.link_evals &&
         arq.transmissions == o.arq.transmissions && arq.delivered == o.arq.delivered &&
         arq.gave_up == o.arq.gave_up && arq.duplicate_acks == o.arq.duplicate_acks &&
         mean_snr_db == o.mean_snr_db && mean_joint_ber == o.mean_joint_ber &&
         mean_rate_bps == o.mean_rate_bps && delivery_ratio == o.delivery_ratio;
  // Cache traffic (cache_refills, cache.*) and measure_wall_s are
  // intentionally excluded: the cached and uncached arms must agree on
  // every simulated quantity, and only those — cache counters are zero
  // with the cache off, and timing is machine-dependent.
}

namespace {

// One resident thing and its per-node protocol state. Every stochastic
// choice it makes draws from its own counter-derived stream, so the
// sequence is independent of the other things and of thread count.
struct Thing {
  Thing(Rng r, double initial_rate_bps, mac::RateControlConfig rc)
      : rng(r), rate(initial_rate_bps, rc) {}

  Rng rng;
  mac::RateController rate;
  mac::ArqSender arq;
  std::uint16_t id = 0;
  std::uint16_t next_seq = 0;
  bool associated = false;
};

}  // namespace

ScaleScenario::ScaleScenario(ScaleConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.nodes == 0) throw std::invalid_argument("ScaleScenario: nodes must be > 0");
  if (cfg_.measure_interval_s <= 0.0 || cfg_.churn_interval_s <= 0.0)
    throw std::invalid_argument("ScaleScenario: intervals must be > 0");
}

ScaleReport ScaleScenario::run(std::uint64_t seed) const {
  const ScaleConfig& c = cfg_;
  const double margin_m = 0.5;  // keep poses off the walls

  channel::Room room(c.room_width_m, c.room_height_m);
  const channel::Pose ap{{c.room_width_m / 2.0, c.room_height_m / 2.0}, 0.0};

  SimConfig sim_cfg = c.sim;
  sim_cfg.link_cache = c.use_cache;
  NetworkSimulator sim(std::move(room), ap, sim_cfg);

  // Dedicated streams: 0 = crowd, 1 = churn decisions, 2+i = thing i.
  Rng crowd_rng = Rng::stream(seed, 0);
  Rng churn_rng = Rng::stream(seed, 1);
  channel::WalkingCrowd crowd(sim.room(), c.walkers, c.walker_speed_mps, crowd_rng);

  const mac::RateControlConfig rc{.min_rate_bps = c.node_rate_bps / 4.0,
                                  .max_rate_bps = c.node_rate_bps,
                                  .recovery_step_bps = c.node_rate_bps / 8.0};

  ScaleReport rep;
  std::vector<Thing> things;
  things.reserve(c.nodes);

  const auto random_pose = [&](Rng& rng) {
    const Vec2 p{rng.uniform(margin_m, c.room_width_m - margin_m),
                 rng.uniform(margin_m, c.room_height_m - margin_m)};
    // Face roughly at the AP — things are installed pointing at the hub.
    const double aim = (ap.position - p).angle() + rng.uniform(-0.3, 0.3);
    return channel::Pose{p, aim};
  };

  // Register `thing` (fresh join or power-cycle rejoin) at `pose`:
  // channel request first, resident-but-unassociated fallback on deny.
  const auto register_thing = [&](Thing& thing, const channel::Pose& pose) {
    ++rep.joins;
    MMX_OBS_COUNT("scale.joins", 1);
    if (const auto id = sim.add_node(pose, c.node_rate_bps)) {
      thing.id = *id;
      thing.associated = true;
      ++rep.granted;
      MMX_OBS_COUNT("scale.granted", 1);
    } else {
      thing.id = sim.add_tracked_node(pose);
      thing.associated = false;
      ++rep.denied;
      MMX_OBS_COUNT("scale.denied", 1);
    }
  };

  EventQueue q;

  // Join storm: all things arrive spread over the join window.
  for (std::size_t i = 0; i < c.nodes; ++i) {
    const double t = c.join_window_s * static_cast<double>(i + 1) / static_cast<double>(c.nodes);
    q.schedule_at(t, [&, i] {
      things.emplace_back(Rng::stream(seed, 2 + i), c.node_rate_bps, rc);
      Thing& thing = things.back();
      register_thing(thing, random_pose(thing.rng));
    });
  }

  // Churn ticks: crowd walks, a slice of things re-pose, a slice
  // power-cycles, and unassociated things retry the freed spectrum.
  // Scheduled before the measurement ticks so that at equal timestamps
  // the FIFO tie-break runs geometry changes first, measurements second.
  std::size_t retry_cursor = 0;
  std::uint64_t churn_tick = 0;
  for (double t = c.churn_interval_s; t <= c.duration_s; t += c.churn_interval_s) {
    q.schedule_at(t, [&] {
      MMX_OBS_SPAN("scale.churn_tick", churn_tick++);
      crowd.update(c.churn_interval_s, crowd_rng);
      ++rep.blocker_updates;
      if (things.empty()) return;

      const auto slice = [&](double frac) {
        return static_cast<std::size_t>(
            std::llround(frac * static_cast<double>(things.size())));
      };

      for (std::size_t k = 0; k < slice(c.move_fraction); ++k) {
        Thing& thing = things[static_cast<std::size_t>(
            churn_rng.uniform_int(0, static_cast<int>(things.size()) - 1))];
        sim.set_node_pose(thing.id, random_pose(thing.rng));
        ++rep.moves;
        MMX_OBS_COUNT("scale.moves", 1);
      }

      const std::size_t n_leave = slice(c.leave_fraction);
      for (std::size_t k = 0; k < n_leave; ++k) {
        Thing& thing = things[static_cast<std::size_t>(
            churn_rng.uniform_int(0, static_cast<int>(things.size()) - 1))];
        sim.remove_node(thing.id);
        ++rep.leaves;
        MMX_OBS_COUNT("scale.leaves", 1);
        register_thing(thing, random_pose(thing.rng));  // power-cycle: rejoin
      }

      // Denied things retry as departures free spectrum (round-robin scan).
      std::size_t retries = n_leave;
      for (std::size_t scanned = 0; retries > 0 && scanned < things.size(); ++scanned) {
        Thing& thing = things[retry_cursor++ % things.size()];
        if (thing.associated) continue;
        const channel::Pose pose = sim.node_pose(thing.id);
        sim.remove_node(thing.id);
        register_thing(thing, pose);
        --retries;
        MMX_OBS_COUNT("scale.retries", 1);
      }
    });
  }

  // Measurement ticks: the AP refreshes stale cache entries in one batch,
  // then polls every resident link and runs each thing's ARQ + AIMD step.
  double snr_sum_db = 0.0;
  double ber_sum = 0.0;
  for (double t = c.measure_interval_s; t <= c.duration_s; t += c.measure_interval_s) {
    q.schedule_at(t, [&] {
      const auto t0 = std::chrono::steady_clock::now();
      ++rep.measure_rounds;
      MMX_OBS_SPAN("scale.measure_round", rep.measure_rounds);
      std::uint64_t round_timeouts = 0;
      rep.cache_refills += sim.refresh_cache(c.refresh_threads);
      for (Thing& thing : things) {
        const OtamLink l = c.use_cache ? sim.link(thing.id) : sim.link_uncached(thing.id);
        ++rep.link_evals;
        snr_sum_db += l.snr_db;
        ber_sum += l.joint_ber;
        if (!thing.associated) continue;

        if (thing.arq.next_action() == mac::ArqSender::Action::kIdle)
          thing.arq.offer(thing.next_seq++);
        if (thing.arq.next_action() != mac::ArqSender::Action::kTransmit) continue;
        thing.arq.on_transmitted();
        const double p_frame = std::pow(1.0 - l.joint_ber, c.frame_bits);
        if (thing.rng.chance(p_frame)) {
          thing.arq.on_ack(thing.arq.current_seq());
          thing.rate.on_success();
        } else {
          thing.arq.on_timeout();
          thing.rate.on_failure();
          ++round_timeouts;
        }
      }
      // Timeouts clustered per measurement round: the trace signal that
      // shows retry bursts following blocker moves (docs/OBSERVABILITY.md).
      MMX_OBS_SAMPLE("scale.retry_burst", rep.measure_rounds, round_timeouts);
      rep.measure_wall_s += std::chrono::duration<double>(
          std::chrono::steady_clock::now() - t0).count();
    });
  }

  q.run_until(c.duration_s);

  rep.cache = sim.cache_stats();
  double rate_sum_bps = 0.0;
  std::size_t rate_count = 0;
  std::uint64_t rate_backoffs = 0;
  for (const Thing& thing : things) {
    rep.arq.transmissions += thing.arq.stats().transmissions;
    rep.arq.delivered += thing.arq.stats().delivered;
    rep.arq.gave_up += thing.arq.stats().gave_up;
    rep.arq.duplicate_acks += thing.arq.stats().duplicate_acks;
    rate_backoffs += thing.rate.backoffs();
    if (thing.associated) {
      rate_sum_bps += thing.rate.rate_bps();
      ++rate_count;
      // Final AIMD operating point per thing: the backoff histogram the
      // paper-scale lane exports (log2 buckets, so 125k/250k/500k bps
      // land in distinct bins).
      MMX_OBS_RECORD("scale.thing_rate_bps",
                     static_cast<std::uint64_t>(thing.rate.rate_bps()));
    }
  }
  // Hot-path stats reach the obs registry here, as one bulk add per run:
  // the per-event sites (cache lookups, ARQ frames, AIMD steps) run a
  // million-plus times per lane and would eat the <2% enabled-cost
  // budget if each mirrored its increment individually.
  rep.cache.publish_obs();
  rep.arq.publish_obs();
  MMX_OBS_COUNT("mac.rate.backoffs", rate_backoffs);
  if (rep.link_evals > 0) {
    rep.mean_snr_db = snr_sum_db / static_cast<double>(rep.link_evals);
    rep.mean_joint_ber = ber_sum / static_cast<double>(rep.link_evals);
  }
  if (rate_count > 0) rep.mean_rate_bps = rate_sum_bps / static_cast<double>(rate_count);
  const std::uint64_t resolved = rep.arq.delivered + rep.arq.gave_up;
  if (resolved > 0)
    rep.delivery_ratio = static_cast<double>(rep.arq.delivered) / static_cast<double>(resolved);
  return rep;
}

}  // namespace mmx::sim
