#include "mmx/sim/scale_scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mmx/channel/blockage.hpp"
#include "mmx/common/units.hpp"
#include "mmx/mac/rate_control.hpp"
#include "mmx/obs/obs.hpp"
#include "mmx/obs/trace.hpp"
#include "mmx/sim/event_queue.hpp"

namespace mmx::sim {

ScaleConfig make_scale_config(std::size_t nodes) {
  ScaleConfig cfg;
  cfg.nodes = nodes;
  // V-band deployment (paper §10's scaling direction; cf. the band60
  // ablation): 7 GHz of spectrum instead of the 250 MHz ISM sliver, a VCO
  // spec covering it with margin for the FSK tone offsets, and a tight
  // guard so O(10^4) half-megabit channels fit.
  cfg.sim.freq_hz = 60.5e9;
  cfg.sim.band_low_hz = 57.0e9;
  cfg.sim.band_high_hz = 64.0e9;
  cfg.sim.node_vco.f_min_hz = 56.5e9;
  cfg.sim.node_vco.f_max_hz = 64.5e9;
  cfg.sim.init.guard_hz = 0.25e6;
  return cfg;
}

ScaleConfig make_overload_config(double oversubscription) {
  if (oversubscription <= 0.0)
    throw std::invalid_argument("make_overload_config: oversubscription must be > 0");
  ScaleConfig cfg = make_scale_config(1);
  // A 70 MHz V-band slice: ~80 full-rate (0.5 Mb/s -> 625 kHz + guard)
  // channels. Population = oversubscription x that capacity, so at the
  // default 3x two thirds of the demand cannot be served at full rate.
  cfg.sim.band_low_hz = 57.0e9;
  cfg.sim.band_high_hz = 57.07e9;
  const double per_node_hz =
      cfg.node_rate_bps / cfg.sim.init.spectral_efficiency + cfg.sim.init.guard_hz;
  const double capacity =
      (cfg.sim.band_high_hz - cfg.sim.band_low_hz) / per_node_hz;
  cfg.nodes = static_cast<std::size_t>(std::llround(oversubscription * capacity));
  // Short, churn-heavy timeline: leaves punch holes the admission ladder
  // must reuse, which is what drives demotion and compaction.
  cfg.duration_s = 2.0;
  cfg.join_window_s = 0.5;
  cfg.churn_interval_s = 0.25;
  cfg.measure_interval_s = 0.0625;
  cfg.move_fraction = 0.01;
  cfg.leave_fraction = 0.03;
  cfg.sim.init.overload.enabled = true;
  cfg.sim.init.overload.min_rate_bps = cfg.node_rate_bps / 4.0;  // 125 kb/s floor
  cfg.sim.init.overload.shedding = true;
  cfg.high_priority_period = 7;  // every 7th thing joins at priority 2
  cfg.promote_every_rounds = 4;
  return cfg;
}

bool ScaleReport::operator==(const ScaleReport& o) const {
  return joins == o.joins && granted == o.granted && denied == o.denied &&
         leaves == o.leaves && moves == o.moves && blocker_updates == o.blocker_updates &&
         measure_rounds == o.measure_rounds && link_evals == o.link_evals &&
         arq.transmissions == o.arq.transmissions && arq.delivered == o.arq.delivered &&
         arq.gave_up == o.arq.gave_up && arq.duplicate_acks == o.arq.duplicate_acks &&
         faults == o.faults && overload == o.overload &&
         mean_snr_db == o.mean_snr_db && mean_joint_ber == o.mean_joint_ber &&
         mean_rate_bps == o.mean_rate_bps && delivery_ratio == o.delivery_ratio;
  // Cache traffic (cache_refills, cache.*) and measure_wall_s are
  // intentionally excluded: the cached and uncached arms must agree on
  // every simulated quantity, and only those — cache counters are zero
  // with the cache off, and timing is machine-dependent.
}

namespace {

// One resident thing and its per-node protocol state. Every stochastic
// choice it makes draws from its own counter-derived stream, so the
// sequence is independent of the other things and of thread count.
struct Thing {
  Thing(Rng r, double initial_rate_bps, mac::RateControlConfig rc,
        mac::ArqConfig arq_cfg, mac::BackoffConfig backoff_cfg)
      : rng(r), rate(initial_rate_bps, rc), arq(arq_cfg), backoff(backoff_cfg) {}

  Rng rng;
  mac::RateController rate;
  mac::ArqSender arq;
  mac::RejoinBackoff backoff;
  channel::Pose pose{};
  std::uint16_t id = 0;
  std::uint16_t next_seq = 0;
  bool associated = false;
  /// Holds a slot in the simulator (associated or tracked). False while
  /// powered off, reaped, or between an escalation and its rejoin.
  bool resident = false;
  bool down = false;  ///< powered off by a fault (no slot, no timers)
  /// Outage bracket: set when connectivity is lost to a fault, cleared —
  /// and accounted — on the next successful grant.
  bool in_outage = false;
  std::uint64_t outage_start_round = 0;
  /// Measurement round before which retry pacing holds transmission
  /// (derived from the ARQ's backed-off ack wait). 0 = no gate.
  std::uint64_t next_tx_round = 0;
  int giveup_streak = 0;  ///< consecutive ARQ give-ups (escalation trigger)
  EventQueue::EventId rejoin_timer = EventQueue::kInvalidEvent;
  /// Latest AP deny backoff hint (overload mode): consumed by the next
  /// schedule_rejoin, which floors the backoff schedule with it.
  double hint_s = 0.0;
};

}  // namespace

ScaleScenario::ScaleScenario(ScaleConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.nodes == 0) throw std::invalid_argument("ScaleScenario: nodes must be > 0");
  if (cfg_.measure_interval_s <= 0.0 || cfg_.churn_interval_s <= 0.0)
    throw std::invalid_argument("ScaleScenario: intervals must be > 0");
}

ScaleReport ScaleScenario::run(std::uint64_t seed) const {
  const ScaleConfig& c = cfg_;
  const FaultConfig& fc = c.faults;
  // Master switch for the overload lane. Everything below that touches
  // draws, counters or timers is gated on it, so with it off the run is
  // byte-identical to the pre-overload scenario.
  const mac::OverloadConfig& ov = c.sim.init.overload;
  const double margin_m = 0.5;  // keep poses off the walls

  channel::Room room(c.room_width_m, c.room_height_m);
  const channel::Pose ap{{c.room_width_m / 2.0, c.room_height_m / 2.0}, 0.0};

  SimConfig sim_cfg = c.sim;
  sim_cfg.link_cache = c.use_cache;
  NetworkSimulator sim(std::move(room), ap, sim_cfg);

  // Dedicated streams: 0 = crowd, 1 = churn decisions, 2+i = thing i. The
  // fault plan draws from its own derived domain (faults.cpp), so an
  // enabled fault layer never perturbs these streams.
  Rng crowd_rng = Rng::stream(seed, 0);
  Rng churn_rng = Rng::stream(seed, 1);
  channel::WalkingCrowd crowd(sim.room(), c.walkers, c.walker_speed_mps, crowd_rng);

  const mac::RateControlConfig rc{.min_rate_bps = c.node_rate_bps / 4.0,
                                  .max_rate_bps = c.node_rate_bps,
                                  .recovery_step_bps = c.node_rate_bps / 8.0};

  ScaleReport rep;
  std::vector<Thing> things;
  things.reserve(c.nodes);
  EventQueue q;

  // Fault-layer bookkeeping. `id_to_thing` maps a live sim id back to its
  // thing (index + 1; 0 = unmapped) so AP-side reaping can find the owner;
  // `fade_depth` counts overlapping storms covering each thing.
  std::vector<std::uint32_t> id_to_thing;
  std::vector<std::uint16_t> fade_depth(fc.enabled ? c.nodes : 0, 0);

  const auto random_pose = [&](Rng& rng) {
    const Vec2 p{rng.uniform(margin_m, c.room_width_m - margin_m),
                 rng.uniform(margin_m, c.room_height_m - margin_m)};
    // Face roughly at the AP — things are installed pointing at the hub.
    const double aim = (ap.position - p).angle() + rng.uniform(-0.3, 0.3);
    return channel::Pose{p, aim};
  };

  // A successful grant ends any fault outage: credit the recovery and
  // reset the escalation state.
  const auto record_recovery = [&](Thing& t) {
    t.backoff.reset();
    t.giveup_streak = 0;
    if (!t.in_outage) return;
    t.in_outage = false;
    ++rep.faults.recoveries;
    const std::uint64_t rounds = rep.measure_rounds - t.outage_start_round;
    rep.faults.recovery_rounds_sum += rounds;
    MMX_OBS_RECORD("faults.time_to_recover_rounds", rounds);
  };

  const auto begin_outage = [&](Thing& t) {
    if (t.in_outage) return;
    t.in_outage = true;
    t.outage_start_round = rep.measure_rounds;
  };

  // Drop a thing's slot in the simulator (fault paths only).
  const auto unregister = [&](Thing& t) {
    if (!t.resident) return;
    if (t.id < id_to_thing.size()) id_to_thing[t.id] = 0;
    sim.remove_node(t.id);
    t.resident = false;
    t.associated = false;
  };

  // Admission priority: every Nth thing (by join index) asks at priority
  // 2 so overload shedding has beneficiaries. Index-derived — no draws.
  const auto priority_of = [&](std::size_t idx) -> std::uint8_t {
    return (ov.enabled && c.high_priority_period > 0 && idx % c.high_priority_period == 0)
               ? std::uint8_t{2}
               : std::uint8_t{1};
  };

  // Register `thing` (fresh join or power-cycle rejoin) at `pose`:
  // channel request first, resident-but-unassociated fallback on deny.
  const auto register_thing = [&](Thing& thing, std::size_t idx, const channel::Pose& pose) {
    ++rep.joins;
    MMX_OBS_COUNT("scale.joins", 1);
    thing.pose = pose;
    const NetworkSimulator::Admission adm =
        sim.admit(pose, c.node_rate_bps, priority_of(idx));
    if (adm.id) {
      thing.id = *adm.id;
      thing.associated = true;
      ++rep.granted;
      MMX_OBS_COUNT("scale.granted", 1);
      if (ov.enabled) {
        thing.hint_s = 0.0;
        // A demoted admission caps the AIMD controller at the granted
        // rate; retunes/promotions move the cap later.
        thing.rate.set_max_rate_bps(adm.granted_rate_bps);
      }
    } else {
      thing.id = sim.add_tracked_node(pose);
      thing.associated = false;
      ++rep.denied;
      MMX_OBS_COUNT("scale.denied", 1);
      if (ov.enabled) thing.hint_s = adm.retry_after_s;
    }
    thing.resident = true;
    if (!fc.enabled && !ov.enabled) return;
    if (thing.id >= id_to_thing.size()) id_to_thing.resize(thing.id + 1u, 0);
    id_to_thing[thing.id] = static_cast<std::uint32_t>(idx) + 1;
    if (fc.enabled) sim.note_activity(thing.id, q.now());
    if (thing.associated) {
      if (fc.enabled)
        record_recovery(thing);
      else
        thing.backoff.reset();
      // Another path (churn retry, reaper rejoin) may have re-granted us
      // while a backoff timer was pending — retire it.
      if (thing.rejoin_timer != EventQueue::kInvalidEvent) {
        q.cancel(thing.rejoin_timer);
        thing.rejoin_timer = EventQueue::kInvalidEvent;
      }
    }
  };

  // Re-acquisition with capped exponential backoff + deterministic jitter
  // (the thing's own stream): schedule_rejoin arms the timer,
  // attempt_rejoin runs the init protocol and re-arms on deny.
  std::function<void(std::size_t)> attempt_rejoin;
  const auto schedule_rejoin = [&](std::size_t idx) {
    Thing& t = things[idx];
    if (t.rejoin_timer != EventQueue::kInvalidEvent) return;  // already pending
    // Overload mode: the AP's deny hint floors the backoff schedule (the
    // thing still jitters it from its own stream). 0 with overload off.
    const double hint_s = std::exchange(t.hint_s, 0.0);
    const double delay_s = t.backoff.next_delay_s(t.rng, hint_s);
    t.rejoin_timer = q.schedule_in(delay_s, [&, idx] { attempt_rejoin(idx); });
  };
  attempt_rejoin = [&](std::size_t idx) {
    Thing& t = things[idx];
    t.rejoin_timer = EventQueue::kInvalidEvent;
    // Stale timer: powered off again, or re-granted through another path.
    if (t.down || t.associated) return;
    ++rep.faults.rejoin_attempts;
    if (ov.enabled) ++rep.overload.backoff_retries;
    if (t.resident) unregister(t);  // shed the tracked residency first
    register_thing(t, idx, t.pose);
    if (!t.associated) schedule_rejoin(idx);  // denied: back off harder
  };

  // Join storm: all things arrive spread over the join window.
  for (std::size_t i = 0; i < c.nodes; ++i) {
    const double t = c.join_window_s * static_cast<double>(i + 1) / static_cast<double>(c.nodes);
    q.schedule_at(t, [&, i] {
      Rng thing_rng = Rng::stream(seed, 2 + i);
      mac::ArqConfig arq_cfg;
      mac::BackoffConfig backoff_cfg;
      if (fc.enabled) {
        arq_cfg = fc.arq;
        backoff_cfg = fc.rejoin_backoff;
        // Cheap node clocks drift: skew this node's ack wait once for life.
        if (fc.timeout_skew_frac > 0.0)
          arq_cfg.timeout_s *=
              thing_rng.uniform(1.0 - fc.timeout_skew_frac, 1.0 + fc.timeout_skew_frac);
      }
      things.emplace_back(thing_rng, c.node_rate_bps, rc, arq_cfg, backoff_cfg);
      Thing& thing = things.back();
      register_thing(thing, things.size() - 1, random_pose(thing.rng));
      // Overload mode: a denied joiner retries on its hint-floored
      // backoff timer instead of waiting for the churn retry scan.
      if (ov.enabled && !thing.associated) schedule_rejoin(things.size() - 1);
    });
  }

  // Arm the fault plan: storms fade a random slice of links, power-cycles
  // kill nodes silently (their grants become zombies the AP must reap),
  // revocations yank grants back. Victim choice draws from each event's
  // own plan-indexed stream, so it cannot perturb any other draw.
  FaultInjector injector{FaultPlan::compile(fc, c.duration_s, seed)};
  if (fc.enabled) {
    FaultHooks hooks;
    hooks.storm_begin = [&](Rng& rng, double fade_s) {
      ++rep.faults.storms;
      if (things.empty()) return;
      auto faded = std::make_shared<std::vector<std::uint32_t>>();
      for (std::size_t i = 0; i < things.size(); ++i) {
        if (rng.chance(fc.storm_fraction)) {
          ++fade_depth[i];
          faded->push_back(static_cast<std::uint32_t>(i));
        }
      }
      q.schedule_in(fade_s, [&, faded] {
        for (const std::uint32_t i : *faded) --fade_depth[i];
      });
    };
    hooks.power_cycle = [&](Rng& rng, double down_s) {
      if (things.empty()) return;
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(things.size()) - 1));
      Thing& t = things[idx];
      if (t.down) return;  // already dark
      ++rep.faults.power_cycles;
      t.down = true;
      if (t.rejoin_timer != EventQueue::kInvalidEvent) {
        q.cancel(t.rejoin_timer);
        t.rejoin_timer = EventQueue::kInvalidEvent;
      }
      if (t.associated) {
        // Silent death: no clean leave, so the AP keeps the grant — a
        // zombie squatting on spectrum until reap_inactive() notices the
        // silence. Orphan the id now; the node reboots with no memory of
        // the session and will rejoin as a fresh identity.
        begin_outage(t);
        if (t.id < id_to_thing.size()) id_to_thing[t.id] = 0;
        t.resident = false;
        t.associated = false;
      } else if (t.resident) {
        unregister(t);  // tracked-only resident: nothing squats, just vanish
      }
      q.schedule_in(down_s, [&, idx] {
        things[idx].down = false;
        attempt_rejoin(idx);
      });
    };
    hooks.revoke = [&](Rng& rng) {
      std::vector<std::uint32_t> candidates;
      for (std::size_t i = 0; i < things.size(); ++i)
        if (things[i].associated) candidates.push_back(static_cast<std::uint32_t>(i));
      if (candidates.empty()) return;
      const std::size_t idx = candidates[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(candidates.size()) - 1))];
      Thing& t = things[idx];
      ++rep.faults.revocations;
      sim.revoke_grant(t.id);
      t.associated = false;
      begin_outage(t);
      schedule_rejoin(idx);
    };
    injector.arm(q, std::move(hooks));
  }

  // Churn ticks: crowd walks, a slice of things re-pose, a slice
  // power-cycles, and unassociated things retry the freed spectrum.
  // Scheduled before the measurement ticks so that at equal timestamps
  // the FIFO tie-break runs geometry changes first, measurements second.
  std::size_t retry_cursor = 0;
  std::uint64_t churn_tick = 0;
  for (double t = c.churn_interval_s; t <= c.duration_s; t += c.churn_interval_s) {
    q.schedule_at(t, [&] {
      MMX_OBS_SPAN("scale.churn_tick", churn_tick++);
      crowd.update(c.churn_interval_s, crowd_rng);
      ++rep.blocker_updates;
      if (things.empty()) return;

      const auto slice = [&](double frac) {
        return static_cast<std::size_t>(
            std::llround(frac * static_cast<double>(things.size())));
      };

      for (std::size_t k = 0; k < slice(c.move_fraction); ++k) {
        Thing& thing = things[static_cast<std::size_t>(
            churn_rng.uniform_int(0, static_cast<int>(things.size()) - 1))];
        const channel::Pose pose = random_pose(thing.rng);
        // A powered-off/reaped thing has no slot to move; the draws above
        // still happen, keeping the streams aligned across fault configs.
        if (fc.enabled && !thing.resident) continue;
        sim.set_node_pose(thing.id, pose);
        thing.pose = pose;
        ++rep.moves;
        MMX_OBS_COUNT("scale.moves", 1);
      }

      const std::size_t n_leave = slice(c.leave_fraction);
      for (std::size_t k = 0; k < n_leave; ++k) {
        const auto victim = static_cast<std::size_t>(
            churn_rng.uniform_int(0, static_cast<int>(things.size()) - 1));
        Thing& thing = things[victim];
        if (fc.enabled && (thing.down || !thing.resident)) continue;  // already dark
        if (fc.enabled) {
          unregister(thing);
        } else {
          // Overload mode maps ids to things; retire the dead id's slot.
          if (thing.id < id_to_thing.size()) id_to_thing[thing.id] = 0;
          sim.remove_node(thing.id);
        }
        ++rep.leaves;
        MMX_OBS_COUNT("scale.leaves", 1);
        register_thing(thing, victim, random_pose(thing.rng));  // power-cycle: rejoin
        if (ov.enabled && !thing.associated) schedule_rejoin(victim);
      }

      // Denied things retry as departures free spectrum. With overload
      // control every deny armed a hint-floored backoff timer, so the
      // round-robin scan would double-retry — it runs only without it.
      if (!ov.enabled) {
        std::size_t retries = n_leave;
        for (std::size_t scanned = 0; retries > 0 && scanned < things.size(); ++scanned) {
          const std::size_t ti = retry_cursor++ % things.size();
          Thing& thing = things[ti];
          if (thing.associated) continue;
          if (fc.enabled && (thing.down || !thing.resident)) continue;
          const channel::Pose pose = sim.node_pose(thing.id);
          if (fc.enabled) unregister(thing); else sim.remove_node(thing.id);
          register_thing(thing, ti, pose);
          --retries;
          MMX_OBS_COUNT("scale.retries", 1);
        }
      }
    });
  }

  // Measurement ticks: the AP reaps dead residents, refreshes stale cache
  // entries in one batch, then polls every resident link and runs each
  // thing's ARQ + AIMD step.
  double snr_sum_db = 0.0;
  double ber_sum = 0.0;
  for (double t = c.measure_interval_s; t <= c.duration_s; t += c.measure_interval_s) {
    q.schedule_at(t, [&] {
      const auto t0 = std::chrono::steady_clock::now();
      ++rep.measure_rounds;
      MMX_OBS_SPAN("scale.measure_round", rep.measure_rounds);
      std::uint64_t round_timeouts = 0;

      if (fc.enabled) {
        // AP housekeeping: reclaim grants whose holders went silent. A
        // zombie (power-cycled holder) is already orphaned; a live thing
        // reaped for being quiet notices the lost beacon and rejoins.
        for (const std::uint16_t id : sim.reap_inactive(q.now(), fc.reap_timeout_s)) {
          ++rep.faults.reaped;
          const std::uint32_t slot = id < id_to_thing.size() ? id_to_thing[id] : 0;
          if (slot == 0) continue;  // zombie: owner is gone
          Thing& t = things[slot - 1];
          id_to_thing[id] = 0;
          t.resident = false;
          if (t.associated) {
            t.associated = false;
            begin_outage(t);
          }
          if (!t.down) schedule_rejoin(slot - 1);
        }
      }

      if (ov.enabled) {
        // Promotion pass: grow demoted grants back as spectrum frees.
        if (c.promote_every_rounds > 0 &&
            rep.measure_rounds % c.promote_every_rounds == 0)
          sim.promote_demoted();
        // Apply re-tunes (compaction slides, shed shrinks, promotions) to
        // the affected things' AIMD caps. Serial, id-ordered per the
        // retune queue — deterministic at any refresh_threads.
        for (const mac::ChannelGrant& g : sim.drain_retunes()) {
          const std::uint32_t slot =
              g.node_id < id_to_thing.size() ? id_to_thing[g.node_id] : 0;
          if (slot != 0)
            things[slot - 1].rate.set_max_rate_bps(
                g.channel.bandwidth_hz * c.sim.init.spectral_efficiency);
        }
        const double band_hz = c.sim.band_high_hz - c.sim.band_low_hz;
        MMX_OBS_GAUGE_SET(
            "scale.overload.occupancy_pct",
            100.0 * (1.0 - sim.init().allocator().free_bandwidth_hz() / band_hz));
        MMX_OBS_GAUGE_SET("scale.overload.fragmentation_pct",
                          100.0 * sim.init().allocator().fragmentation());
      }

      rep.cache_refills += sim.refresh_cache(c.refresh_threads);
      for (std::size_t i = 0; i < things.size(); ++i) {
        Thing& thing = things[i];
        if (fc.enabled && !thing.resident) continue;  // dark: nothing to poll
        const OtamLink l = c.use_cache ? sim.link(thing.id) : sim.link_uncached(thing.id);
        ++rep.link_evals;
        snr_sum_db += l.snr_db;
        ber_sum += l.joint_ber;
        if (!thing.associated) continue;

        if (thing.arq.next_action() == mac::ArqSender::Action::kIdle)
          thing.arq.offer(thing.next_seq++);
        if (thing.arq.next_action() != mac::ArqSender::Action::kTransmit) continue;
        // Retry pacing: the backed-off ack wait holds retransmission for
        // whole measurement rounds, spreading retries past a storm.
        if (fc.enabled && rep.measure_rounds < thing.next_tx_round) continue;
        thing.arq.on_transmitted();
        if (fc.enabled) sim.note_activity(thing.id, q.now());
        double p_frame = std::pow(1.0 - l.joint_ber, c.frame_bits);
        if (fc.enabled && fade_depth[i] > 0) p_frame *= fc.storm_delivery_frac;
        const bool delivered = thing.rng.chance(p_frame);
        bool acked = delivered;
        if (acked && fc.ack_loss_frac > 0.0 && thing.rng.chance(fc.ack_loss_frac)) {
          acked = false;  // frame arrived; the ack never did
          ++rep.faults.acks_lost;
        }
        if (acked && fc.ack_corrupt_frac > 0.0 && thing.rng.chance(fc.ack_corrupt_frac)) {
          // The ack returns mangled: the sender sees a wrong-seq ack
          // (counted as a duplicate), discards it, and times out anyway.
          thing.arq.on_ack(static_cast<std::uint16_t>(thing.arq.current_seq() + 0x8000u));
          acked = false;
          ++rep.faults.acks_corrupted;
        }
        if (acked) {
          thing.arq.on_ack(thing.arq.current_seq());
          thing.rate.on_success();
          thing.giveup_streak = 0;
          thing.next_tx_round = 0;
        } else {
          thing.arq.on_timeout();
          thing.rate.on_failure();
          ++round_timeouts;
          if (fc.enabled) {
            if (thing.arq.next_action() == mac::ArqSender::Action::kTransmit) {
              const double wait_s = thing.arq.current_timeout_s();
              thing.next_tx_round =
                  rep.measure_rounds +
                  std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                                 std::llround(wait_s / c.measure_interval_s)));
            } else {
              // Gave the payload up. A streak of give-ups means the link
              // is dead, not unlucky: escalate to a full re-acquisition.
              ++thing.giveup_streak;
              thing.next_tx_round = rep.measure_rounds + 1;
              if (fc.arq_giveups_to_rejoin > 0 &&
                  thing.giveup_streak >= fc.arq_giveups_to_rejoin) {
                ++rep.faults.escalations;
                begin_outage(thing);
                unregister(thing);
                schedule_rejoin(i);
              }
            }
          }
        }
      }
      // Timeouts clustered per measurement round: the trace signal that
      // shows retry bursts following blocker moves (docs/OBSERVABILITY.md).
      MMX_OBS_SAMPLE("scale.retry_burst", rep.measure_rounds, round_timeouts);
      rep.measure_wall_s += std::chrono::duration<double>(
          std::chrono::steady_clock::now() - t0).count();
    });
  }

  q.run_until(c.duration_s);

  rep.cache = sim.cache_stats();
  double rate_sum_bps = 0.0;
  std::size_t rate_count = 0;
  std::uint64_t rate_backoffs = 0;
  for (const Thing& thing : things) {
    rep.arq.transmissions += thing.arq.stats().transmissions;
    rep.arq.delivered += thing.arq.stats().delivered;
    rep.arq.gave_up += thing.arq.stats().gave_up;
    rep.arq.duplicate_acks += thing.arq.stats().duplicate_acks;
    rate_backoffs += thing.rate.backoffs();
    if (thing.associated) {
      rate_sum_bps += thing.rate.rate_bps();
      ++rate_count;
      // Final AIMD operating point per thing: the backoff histogram the
      // paper-scale lane exports (log2 buckets, so 125k/250k/500k bps
      // land in distinct bins).
      MMX_OBS_RECORD("scale.thing_rate_bps",
                     static_cast<std::uint64_t>(thing.rate.rate_bps()));
    }
  }
  // Hot-path stats reach the obs registry here, as one bulk add per run:
  // the per-event sites (cache lookups, ARQ frames, AIMD steps) run a
  // million-plus times per lane and would eat the <2% enabled-cost
  // budget if each mirrored its increment individually.
  rep.cache.publish_obs();
  rep.arq.publish_obs();
  if (fc.enabled) rep.faults.publish_obs();
  MMX_OBS_COUNT("mac.rate.backoffs", rate_backoffs);
  if (rep.link_evals > 0) {
    rep.mean_snr_db = snr_sum_db / static_cast<double>(rep.link_evals);
    rep.mean_joint_ber = ber_sum / static_cast<double>(rep.link_evals);
  }
  if (rate_count > 0) rep.mean_rate_bps = rate_sum_bps / static_cast<double>(rate_count);
  if (ov.enabled) {
    const mac::OverloadStats& os = sim.init().overload_stats();
    rep.overload.demotions = os.demotions;
    rep.overload.shed_demotions = os.shed_demotions;
    rep.overload.promotions = os.promotions;
    rep.overload.compactions = os.compactions;
    rep.overload.retunes = os.retunes;
    rep.overload.hinted_denies = os.hinted_denies;
    rep.overload.hint_delay_sum_s = os.hint_delay_sum_s;
    rep.overload.invariant_violations = os.invariant_violations;
    // Admitted-vs-floor rate distribution over the final population.
    double min_rate_bps = 0.0;
    double admitted_rate_sum = 0.0;
    for (const Thing& thing : things) {
      if (!thing.associated) continue;
      const auto granted = sim.init().granted_rate_bps(thing.id);
      if (!granted) continue;
      ++rep.overload.admitted;
      admitted_rate_sum += *granted;
      if (rep.overload.admitted == 1 || *granted < min_rate_bps) min_rate_bps = *granted;
      if (*granted < c.node_rate_bps * (1.0 - 1e-9)) ++rep.overload.admitted_below_request;
    }
    if (rep.overload.admitted > 0) {
      rep.overload.min_admitted_rate_bps = min_rate_bps;
      rep.overload.mean_admitted_rate_bps =
          admitted_rate_sum / static_cast<double>(rep.overload.admitted);
    }
    MMX_OBS_GAUGE_SET("scale.overload.admitted", rep.overload.admitted);
    MMX_OBS_COUNT("scale.overload.backoff_retries", rep.overload.backoff_retries);
  }
  const std::uint64_t resolved = rep.arq.delivered + rep.arq.gave_up;
  if (resolved > 0)
    rep.delivery_ratio = static_cast<double>(rep.arq.delivered) / static_cast<double>(resolved);
  return rep;
}

}  // namespace mmx::sim
