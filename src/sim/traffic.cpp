#include "mmx/sim/traffic.hpp"

#include <cmath>
#include <stdexcept>

namespace mmx::sim {

CbrSource::CbrSource(double rate_bps, std::size_t packet_bytes)
    : rate_bps_(rate_bps), packet_bytes_(packet_bytes) {
  if (rate_bps <= 0.0) throw std::invalid_argument("CbrSource: rate must be > 0");
  if (packet_bytes == 0) throw std::invalid_argument("CbrSource: packet size must be > 0");
  interval_ = static_cast<double>(packet_bytes * 8) / rate_bps;
}

std::vector<PacketArrival> CbrSource::arrivals(double duration_s) const {
  if (duration_s < 0.0) throw std::invalid_argument("CbrSource: negative duration");
  std::vector<PacketArrival> out;
  out.reserve(static_cast<std::size_t>(duration_s / interval_) + 1);
  for (double t = 0.0; t < duration_s; t += interval_) out.push_back({t, packet_bytes_});
  return out;
}

PoissonSource::PoissonSource(double mean_reports_per_s, std::size_t report_bytes)
    : lambda_(mean_reports_per_s), report_bytes_(report_bytes) {
  if (mean_reports_per_s <= 0.0) throw std::invalid_argument("PoissonSource: rate must be > 0");
  if (report_bytes == 0) throw std::invalid_argument("PoissonSource: report size must be > 0");
}

std::vector<PacketArrival> PoissonSource::arrivals(double duration_s, Rng& rng) const {
  if (duration_s < 0.0) throw std::invalid_argument("PoissonSource: negative duration");
  std::vector<PacketArrival> out;
  double t = 0.0;
  while (true) {
    t += -std::log(1.0 - rng.uniform()) / lambda_;
    if (t >= duration_s) break;
    out.push_back({t, report_bytes_});
  }
  return out;
}

double PoissonSource::mean_rate_bps() const {
  return lambda_ * static_cast<double>(report_bytes_ * 8);
}

double offered_load_bps(const std::vector<PacketArrival>& arrivals, double duration_s) {
  if (duration_s <= 0.0) throw std::invalid_argument("offered_load_bps: duration must be > 0");
  std::size_t bytes = 0;
  for (const PacketArrival& a : arrivals) bytes += a.bytes;
  return static_cast<double>(bytes * 8) / duration_s;
}

}  // namespace mmx::sim
