#include "mmx/sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

#include "mmx/obs/obs.hpp"

namespace mmx::sim {

EventQueue::EventId EventQueue::schedule_at(double t, Handler fn) {
  if (t < now_) throw std::invalid_argument("EventQueue: cannot schedule in the past");
  if (!fn) throw std::invalid_argument("EventQueue: null handler");
  const EventId id = next_id_++;
  live_.emplace(id, LiveEvent{std::move(fn), 0});
  queue_.push({t, seq_++, id, 0});
  MMX_OBS_COUNT("event_queue.scheduled", 1);
  MMX_OBS_GAUGE_SET("event_queue.depth", live_.size());
  return id;
}

EventQueue::EventId EventQueue::schedule_in(double dt, Handler fn) {
  return schedule_at(now_ + dt, std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  live_.erase(it);  // heap entry becomes a tombstone, skipped at pop
  MMX_OBS_COUNT("event_queue.cancelled", 1);
  MMX_OBS_GAUGE_SET("event_queue.depth", live_.size());
  return true;
}

bool EventQueue::reschedule(EventId id, double t) {
  if (t < now_) throw std::invalid_argument("EventQueue: cannot reschedule into the past");
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  ++it->second.gen;  // the old heap entry is now stale
  queue_.push({t, seq_++, id, it->second.gen});
  MMX_OBS_COUNT("event_queue.rescheduled", 1);
  return true;
}

bool EventQueue::settle_top() {
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    const auto it = live_.find(top.id);
    if (it != live_.end() && it->second.gen == top.gen) return true;
    queue_.pop();  // cancelled or superseded by a reschedule
  }
  return false;
}

std::size_t EventQueue::run_until(double t_end) {
  std::size_t executed = 0;
  while (settle_top() && queue_.top().time <= t_end) {
    const QueueEntry ev = queue_.top();
    queue_.pop();
    // Retire before running: the handler may cancel(ev.id) — a no-op by
    // then — or schedule fresh events under new ids.
    Handler fn = std::move(live_.at(ev.id).fn);
    live_.erase(ev.id);
    now_ = ev.time;
    fn();
    ++executed;
  }
  MMX_OBS_COUNT("event_queue.executed", executed);
  MMX_OBS_GAUGE_SET("event_queue.depth", live_.size());
  if (now_ < t_end) now_ = t_end;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (settle_top()) {
    const QueueEntry ev = queue_.top();
    queue_.pop();
    Handler fn = std::move(live_.at(ev.id).fn);
    live_.erase(ev.id);
    now_ = ev.time;
    fn();
    ++executed;
  }
  MMX_OBS_COUNT("event_queue.executed", executed);
  MMX_OBS_GAUGE_SET("event_queue.depth", 0);
  return executed;
}

}  // namespace mmx::sim
