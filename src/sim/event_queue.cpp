#include "mmx/sim/event_queue.hpp"

#include <stdexcept>

#include "mmx/obs/obs.hpp"

namespace mmx::sim {

void EventQueue::schedule_at(double t, Handler fn) {
  if (t < now_) throw std::invalid_argument("EventQueue: cannot schedule in the past");
  if (!fn) throw std::invalid_argument("EventQueue: null handler");
  queue_.push({t, seq_++, std::move(fn)});
  MMX_OBS_COUNT("event_queue.scheduled", 1);
  MMX_OBS_GAUGE_SET("event_queue.depth", queue_.size());
}

void EventQueue::schedule_in(double dt, Handler fn) { schedule_at(now_ + dt, std::move(fn)); }

std::size_t EventQueue::run_until(double t_end) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  MMX_OBS_COUNT("event_queue.executed", executed);
  MMX_OBS_GAUGE_SET("event_queue.depth", queue_.size());
  if (now_ < t_end) now_ = t_end;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  MMX_OBS_COUNT("event_queue.executed", executed);
  MMX_OBS_GAUGE_SET("event_queue.depth", 0);
  return executed;
}

}  // namespace mmx::sim
