#include "mmx/sim/link_cache.hpp"

#include <algorithm>

#include "mmx/channel/ray_tracer.hpp"
#include "mmx/obs/obs.hpp"

namespace mmx::sim {

void LinkCacheStats::publish_obs() const {
  MMX_OBS_COUNT("link_cache.hits", hits);
  MMX_OBS_COUNT("link_cache.misses", misses);
  MMX_OBS_COUNT("link_cache.refills", refills);
  MMX_OBS_COUNT("link_cache.revalidated", revalidated);
  MMX_OBS_COUNT("link_cache.invalidated", invalidated);
}

void LinkCache::snapshot(const channel::Room& room) {
  seen_epoch_ = room.epoch();
  seen_walls_ = room.walls().size();
  seen_blockers_ = room.blockers();
  primed_ = true;
}

bool LinkCache::touches(const std::vector<Corridor>& corridors, const DirtyDisc& disc) {
  for (const Corridor& c : corridors) {
    for (int i = 0; i + 1 < c.count; ++i) {
      if (segment_hits_disc(c.waypoint[static_cast<std::size_t>(i)],
                            c.waypoint[static_cast<std::size_t>(i + 1)], disc.center,
                            disc.radius))
        return true;
    }
  }
  return false;
}

void LinkCache::reconcile(const channel::Room& room) {
  if (!primed_) {
    snapshot(room);
    return;
  }
  if (room.epoch() == seen_epoch_) return;

  if (room.walls().size() != seen_walls_) {
    // Structural change: every path may have moved.
    stats_.invalidated += live_;
    slots_.clear();
    live_ = 0;
    snapshot(room);
    return;
  }

  // Blocker delta: old and new discs of every changed blocker are the
  // only regions whose crossings (and hence losses) can have changed.
  std::vector<DirtyDisc> dirty;
  const auto& now = room.blockers();
  const std::size_t common = std::min(now.size(), seen_blockers_.size());
  for (std::size_t i = 0; i < common; ++i) {
    const channel::Blocker& was = seen_blockers_[i];
    if (was.center == now[i].center && was.radius == now[i].radius &&
        was.loss_db == now[i].loss_db)
      continue;
    dirty.push_back({was.center, was.radius});
    dirty.push_back({now[i].center, now[i].radius});
  }
  for (std::size_t i = common; i < now.size(); ++i) dirty.push_back({now[i].center, now[i].radius});
  for (std::size_t i = common; i < seen_blockers_.size(); ++i)
    dirty.push_back({seen_blockers_[i].center, seen_blockers_[i].radius});

  for (Slot& slot : slots_) {
    if (!slot.present) continue;
    Entry& entry = slot.entry;
    if (entry.stale) continue;  // already invalid; nothing new to learn
    bool drop = false;
    for (const DirtyDisc& disc : dirty) {
      if (touches(entry.corridors, disc)) {
        drop = true;
        break;
      }
    }
    if (drop) {
      // Corridors stay (walls and pose unchanged); only gains are dirty.
      entry.stale = true;
      entry.has_otam = false;
      entry.has_fixed = false;
      ++stats_.invalidated;
    } else {
      ++stats_.revalidated;
    }
  }
  snapshot(room);
}

LinkCache::Entry& LinkCache::ensure(std::uint16_t id, const channel::Pose& pose,
                                    const std::function<Entry(const Entry*)>& fill) {
  if (id >= slots_.size()) slots_.resize(id + 1);
  Slot& slot = slots_[id];
  if (slot.present && !slot.entry.stale && slot.entry.pose == pose) {
    ++stats_.hits;
    return slot.entry;
  }
  ++stats_.misses;
  const Entry* prior = nullptr;
  if (slot.present) {
    if (slot.entry.pose == pose) {
      prior = &slot.entry;  // stale same-pose entry: corridors reusable
    } else if (!slot.entry.stale) {
      ++stats_.invalidated;  // pose moved under a live entry
    }
  }
  Entry filled = fill(prior);
  slot.entry = std::move(filled);
  if (!slot.present) ++live_;
  slot.present = true;
  return slot.entry;
}

bool LinkCache::valid(std::uint16_t id, const channel::Pose& pose) const {
  return id < slots_.size() && slots_[id].present && !slots_[id].entry.stale &&
         slots_[id].entry.pose == pose;
}

const LinkCache::Entry* LinkCache::find(std::uint16_t id) const {
  if (id >= slots_.size() || !slots_[id].present) return nullptr;
  return &slots_[id].entry;
}

void LinkCache::store_refill(std::uint16_t id, Entry entry) {
  ++stats_.refills;
  if (id >= slots_.size()) slots_.resize(id + 1);
  Slot& slot = slots_[id];
  slot.entry = std::move(entry);
  if (!slot.present) ++live_;
  slot.present = true;
}

void LinkCache::erase(std::uint16_t id) {
  if (id >= slots_.size() || !slots_[id].present) return;
  slots_[id] = Slot{};
  --live_;
  ++stats_.invalidated;
}

void LinkCache::clear() {
  stats_.invalidated += live_;
  slots_.clear();
  live_ = 0;
}

std::vector<LinkCache::Corridor> LinkCache::corridors_for(const channel::Room& room,
                                                          Vec2 node_position, Vec2 ap_position,
                                                          double max_excess_loss_db,
                                                          int max_bounces) {
  const channel::RayTracer tracer(room);
  const auto paths = tracer.trace(node_position, ap_position, max_excess_loss_db, max_bounces,
                                  /*apply_blockers=*/false);
  return corridors_from_paths(paths, node_position, ap_position);
}

std::vector<LinkCache::Corridor> LinkCache::corridors_from_paths(
    std::span<const channel::Path> paths, Vec2 node_position, Vec2 ap_position) {
  std::vector<Corridor> out;
  out.reserve(paths.size());
  for (const channel::Path& p : paths) {
    Corridor c;
    c.waypoint[0] = node_position;
    c.count = 1;
    if (p.kind != channel::PathKind::kLineOfSight) {
      c.waypoint[static_cast<std::size_t>(c.count++)] = p.via;
      if (p.kind == channel::PathKind::kDoubleReflected)
        c.waypoint[static_cast<std::size_t>(c.count++)] = p.via2;
    }
    c.waypoint[static_cast<std::size_t>(c.count++)] = ap_position;
    out.push_back(c);
  }
  return out;
}

}  // namespace mmx::sim
