#include "mmx/sim/energy.hpp"

#include <stdexcept>

namespace mmx::sim {
namespace {

constexpr double kSecondsPerDay = 86400.0;

void validate(const RadioProfile& r) {
  if (r.active_power_w <= 0.0 || r.bit_rate_bps <= 0.0 || r.sleep_power_w < 0.0)
    throw std::invalid_argument("RadioProfile: non-physical parameters");
}

}  // namespace

RadioProfile mmx_radio_profile() { return {"mmX", 1.1, 100e6, 50e-6}; }
RadioProfile wifi_radio_profile() { return {"WiFi 802.11n", 2.1, 120e6, 3e-3}; }
RadioProfile bluetooth_radio_profile() { return {"Bluetooth", 0.029, 1e6, 30e-6}; }

bool can_sustain(const RadioProfile& radio, double bits_per_day) {
  validate(radio);
  if (bits_per_day < 0.0) throw std::invalid_argument("bits_per_day must be >= 0");
  return bits_per_day <= radio.bit_rate_bps * kSecondsPerDay;
}

double daily_airtime_s(const RadioProfile& radio, double bits_per_day) {
  if (!can_sustain(radio, bits_per_day))
    throw std::invalid_argument("daily_airtime_s: radio cannot carry the daily volume");
  return bits_per_day / radio.bit_rate_bps;
}

double average_power_w(const RadioProfile& radio, double bits_per_day) {
  const double active_s = daily_airtime_s(radio, bits_per_day);
  return (radio.active_power_w * active_s +
          radio.sleep_power_w * (kSecondsPerDay - active_s)) /
         kSecondsPerDay;
}

double battery_life_days(const RadioProfile& radio, double bits_per_day, double battery_wh) {
  if (battery_wh <= 0.0) throw std::invalid_argument("battery_life_days: battery must be > 0");
  const double avg_w = average_power_w(radio, bits_per_day);
  return battery_wh / (avg_w * 24.0);
}

}  // namespace mmx::sim
