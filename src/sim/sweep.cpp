#include "mmx/sim/sweep.hpp"

#include <atomic>
#include <stdexcept>

#include "mmx/sim/stats.hpp"

namespace mmx::sim {

MetricSummary summarize(std::string name, const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("summarize: empty sample");
  MetricSummary s;
  s.name = std::move(name);
  s.count = samples.size();
  s.mean = mean(samples);
  s.median = median(samples);
  s.p10 = percentile(samples, 10.0);
  s.p90 = percentile(samples, 90.0);
  s.min = min_of(samples);
  s.max = max_of(samples);
  return s;
}

SweepRunner::SweepRunner(SweepConfig config)
    : config_(config),
      threads_(config.threads == 0 ? ThreadPool::hardware_threads() : config.threads) {}

std::uint64_t SweepRunner::next_trace_run() {
  static std::atomic<std::uint64_t> gen{0};
  return gen.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mmx::sim
