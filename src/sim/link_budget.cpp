#include "mmx/sim/link_budget.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"
#include "mmx/phy/ber.hpp"

namespace mmx::sim {

LinkBudget::LinkBudget(LinkBudgetSpec spec) : spec_(spec), chain_(spec.receiver) {
  if (spec.implementation_loss_db < 0.0)
    throw std::invalid_argument("LinkBudget: implementation loss must be >= 0");
}

double LinkBudget::rx_power_dbm(std::complex<double> h) const {
  const double mag = std::abs(h);
  if (mag <= 0.0) return -300.0;  // dead link
  return spec_.tx_power_dbm + amp_to_db(mag) - spec_.implementation_loss_db;
}

double LinkBudget::snr_db(std::complex<double> h) const {
  return rx_power_dbm(h) - chain_.noise_floor_dbm();
}

OtamLink LinkBudget::evaluate_otam(const channel::BeamGains& gains, const rf::SpdtSwitch& spdt,
                                   std::size_t n_avg) const {
  // Effective levels include the SPDT through/leak mixing.
  const std::complex<double> eff1 =
      spdt.through_gain() * gains.h1 + spdt.leak_gain() * gains.h0;
  const std::complex<double> eff0 =
      spdt.through_gain() * gains.h0 + spdt.leak_gain() * gains.h1;

  OtamLink link{};
  link.rx1_dbm = rx_power_dbm(eff1);
  link.rx0_dbm = rx_power_dbm(eff0);
  link.snr_db = std::max(link.rx1_dbm, link.rx0_dbm) - chain_.noise_floor_dbm();
  link.contrast_db = std::abs(link.rx1_dbm - link.rx0_dbm);

  // Convert to amplitude units normalized to 1 W reference for the BER
  // model: amplitudes sqrt(P), noise power from the floor.
  const double a1 = std::sqrt(dbm_to_watt(link.rx1_dbm));
  const double a0 = std::sqrt(dbm_to_watt(link.rx0_dbm));
  const double noise_w = dbm_to_watt(chain_.noise_floor_dbm());
  link.ask_ber = phy::ber_two_level(a1, a0, noise_w, n_avg);
  // FSK discriminates on the stronger tone's energy; per-symbol averaging
  // gives the same sqrt(n) benefit.
  const double snr_lin = db_to_lin(link.snr_db) * static_cast<double>(n_avg);
  link.fsk_ber = phy::ber_bfsk_noncoherent(snr_lin);
  link.joint_ber = phy::ber_joint(std::min(0.5, link.ask_ber), std::min(0.5, link.fsk_ber));
  return link;
}

OtamLink LinkBudget::evaluate_fixed_beam(const channel::BeamGains& gains, double ask_floor,
                                         std::size_t n_avg) const {
  if (ask_floor < 0.0 || ask_floor >= 1.0)
    throw std::invalid_argument("LinkBudget: ask_floor must be in [0, 1)");
  OtamLink link{};
  link.rx1_dbm = rx_power_dbm(gains.h1);
  link.rx0_dbm = rx_power_dbm(gains.h1 * ask_floor);
  link.snr_db = link.rx1_dbm - chain_.noise_floor_dbm();
  link.contrast_db = std::abs(link.rx1_dbm - link.rx0_dbm);
  const double a1 = std::sqrt(dbm_to_watt(link.rx1_dbm));
  const double a0 = std::sqrt(dbm_to_watt(link.rx0_dbm));
  const double noise_w = dbm_to_watt(chain_.noise_floor_dbm());
  link.ask_ber = phy::ber_two_level(a1, a0, noise_w, n_avg);
  // The baseline node modulates at the board: ASK only, no FSK fallback.
  link.fsk_ber = 0.5;
  link.joint_ber = std::min(0.5, link.ask_ber);
  return link;
}

}  // namespace mmx::sim
