#include "mmx/sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmx::sim {

double mean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("mean: empty sample");
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p must be in [0,100]");
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

double min_of(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("min_of: empty sample");
  return *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("max_of: empty sample");
  return *std::max_element(v.begin(), v.end());
}

double ecdf(const std::vector<double>& samples, double x) {
  if (samples.empty()) throw std::invalid_argument("ecdf: empty sample");
  std::size_t count = 0;
  for (double s : samples)
    if (s <= x) ++count;
  return static_cast<double>(count) / static_cast<double>(samples.size());
}

double jain_fairness(const std::vector<double>& allocations) {
  if (allocations.empty()) throw std::invalid_argument("jain_fairness: empty sample");
  double sum = 0.0;
  double sq = 0.0;
  for (double x : allocations) {
    if (x < 0.0) throw std::invalid_argument("jain_fairness: allocations must be >= 0");
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 1.0;  // everyone got exactly nothing: equally fair
  return sum * sum / (static_cast<double>(allocations.size()) * sq);
}

Grid::Grid(std::size_t nx, std::size_t ny) : nx_(nx), ny_(ny), cells_(nx * ny, 0.0) {
  if (nx == 0 || ny == 0) throw std::invalid_argument("Grid: dimensions must be > 0");
}

double& Grid::at(std::size_t ix, std::size_t iy) {
  if (ix >= nx_ || iy >= ny_) throw std::out_of_range("Grid: index");
  return cells_[iy * nx_ + ix];
}

double Grid::at(std::size_t ix, std::size_t iy) const {
  if (ix >= nx_ || iy >= ny_) throw std::out_of_range("Grid: index");
  return cells_[iy * nx_ + ix];
}

double Grid::fraction_at_least(double threshold) const {
  std::size_t count = 0;
  for (double c : cells_)
    if (c >= threshold) ++count;
  return static_cast<double>(count) / static_cast<double>(cells_.size());
}

double Grid::min_value() const { return *std::min_element(cells_.begin(), cells_.end()); }
double Grid::max_value() const { return *std::max_element(cells_.begin(), cells_.end()); }

}  // namespace mmx::sim
