#include "mmx/obs/obs.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace mmx::obs {

namespace {

std::atomic<bool> g_enabled{false};

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; mmX instrument
// names use dots, which become underscores under an mmx_ prefix.
std::string prometheus_name(const std::string& name) {
  std::string out = "mmx_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

struct Registry::Impl {
  template <typename T>
  struct Named {
    explicit Named(std::string n) : name(std::move(n)) {}
    std::string name;
    T instrument;  // atomics inside: construct in place, never move
  };

  // Deques: stable addresses across registration, no per-instrument
  // unique_ptr hop on the (cold) lookup path.
  mutable std::mutex mu;
  std::deque<Named<Counter>> counters;
  std::deque<Named<Gauge>> gauges;
  std::deque<Named<Histogram>> histograms;

  template <typename T>
  T& lookup(std::deque<Named<T>>& pool, std::string_view name) {
    const std::lock_guard<std::mutex> lock(mu);
    for (Named<T>& n : pool)
      if (n.name == name) return n.instrument;
    pool.emplace_back(std::string(name));
    return pool.back().instrument;
  }
};

Registry& Registry::global() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  return im.lookup(im.counters, name);
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  return im.lookup(im.gauges, name);
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& im = impl();
  return im.lookup(im.histograms, name);
}

void Registry::reset_values() {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  for (auto& n : im.counters) n.instrument.reset();
  for (auto& n : im.gauges) n.instrument.reset();
  for (auto& n : im.histograms) n.instrument.reset();
}

void Registry::for_each(const std::function<void(const std::string&, char, const Counter*,
                                                 const Gauge*, const Histogram*)>& fn) const {
  Impl& im = impl();
  // Snapshot (name, kind, pointer) triples under the lock, then visit
  // sorted by name so export order never depends on registration races.
  struct Item {
    const std::string* name;
    char kind;
    const Counter* c;
    const Gauge* g;
    const Histogram* h;
  };
  std::vector<Item> items;
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    items.reserve(im.counters.size() + im.gauges.size() + im.histograms.size());
    for (const auto& n : im.counters) items.push_back({&n.name, 'c', &n.instrument, nullptr, nullptr});
    for (const auto& n : im.gauges) items.push_back({&n.name, 'g', nullptr, &n.instrument, nullptr});
    for (const auto& n : im.histograms)
      items.push_back({&n.name, 'h', nullptr, nullptr, &n.instrument});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return *a.name < *b.name; });
  for (const Item& it : items) fn(*it.name, it.kind, it.c, it.g, it.h);
}

std::string Registry::prometheus_text() const {
  std::ostringstream out;
  for_each([&](const std::string& name, char kind, const Counter* c, const Gauge* g,
               const Histogram* h) {
    const std::string pname = prometheus_name(name);
    if (kind == 'c') {
      out << "# TYPE " << pname << " counter\n" << pname << " " << c->value() << "\n";
    } else if (kind == 'g') {
      out << "# TYPE " << pname << " gauge\n" << pname << " " << g->value() << "\n";
      out << pname << "_max " << g->max_seen() << "\n";
    } else {
      out << "# TYPE " << pname << " histogram\n";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        const std::uint64_t n = h->bucket(i);
        if (n == 0) continue;
        cumulative += n;
        out << pname << "_bucket{le=\"" << Histogram::upper_bound(i) << "\"} " << cumulative
            << "\n";
      }
      out << pname << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
      out << pname << "_sum " << h->sum() << "\n";
      out << pname << "_count " << cumulative << "\n";
    }
  });
  return out.str();
}

}  // namespace mmx::obs
