#include "mmx/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>

namespace mmx::obs {

namespace {

// Sized so the default scale lane (~76k refill spans, all on one thread
// when the refresh runs serially) fits in a single buffer with headroom;
// 5 MB per registered buffer. Deeper lanes drop-and-count, never grow.
constexpr std::size_t kDefaultCapacity = std::size_t{1} << 17;

struct Buffer {
  explicit Buffer(std::size_t capacity) { events.reserve(capacity); }
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

}  // namespace

struct TraceSink::Impl {
  mutable std::mutex mu;
  std::deque<std::string> names;        // id -> name; addresses stable
  std::deque<std::unique_ptr<Buffer>> buffers;  // owned here so they outlive their threads
  std::size_t capacity = kDefaultCapacity;

  Buffer& thread_buffer() {
    // One buffer per thread for the sink's lifetime; registration is the
    // only locked step on the emit path and runs once per thread.
    thread_local Buffer* tls = nullptr;
    if (tls == nullptr) {
      const std::lock_guard<std::mutex> lock(mu);
      buffers.push_back(std::make_unique<Buffer>(capacity));
      tls = buffers.back().get();
    }
    return *tls;
  }
};

TraceSink& TraceSink::global() {
  static TraceSink s;
  return s;
}

TraceSink::Impl& TraceSink::impl() const {
  static Impl impl;
  return impl;
}

std::uint32_t TraceSink::intern(std::string_view name) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  for (std::size_t i = 0; i < im.names.size(); ++i)
    if (im.names[i] == name) return static_cast<std::uint32_t>(i);
  im.names.emplace_back(name);
  return static_cast<std::uint32_t>(im.names.size() - 1);
}

const std::string& TraceSink::name(std::uint32_t id) const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  static const std::string kUnknown = "<unknown>";
  return id < im.names.size() ? im.names[id] : kUnknown;
}

void TraceSink::emit(const TraceEvent& e) {
  Buffer& buf = impl().thread_buffer();
  if (buf.events.size() >= buf.events.capacity()) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(e);
}

std::uint64_t TraceSink::now_ns() {
  // Process-wide epoch at first use keeps timestamps small and uniform
  // across threads.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

std::vector<TraceSink::MergedEvent> TraceSink::merged() const {
  Impl& im = impl();
  std::vector<MergedEvent> out;
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    std::size_t total = 0;
    for (const auto& b : im.buffers) total += b->events.size();
    out.reserve(total);
    for (std::size_t tid = 0; tid < im.buffers.size(); ++tid)
      for (const TraceEvent& e : im.buffers[tid]->events)
        out.push_back({e, static_cast<std::uint32_t>(tid)});
  }
  // Stable sort on the ordering key only: events sharing a key come from
  // one thread (the contract in trace.hpp) and keep their emission
  // order, so the result is independent of buffer registration order.
  std::stable_sort(out.begin(), out.end(), [](const MergedEvent& a, const MergedEvent& b) {
    return a.event.key < b.event.key;
  });
  return out;
}

std::uint64_t TraceSink::merged_digest() const {
  // FNV-1a over (name, kind, key, value) in merged order — timestamps
  // and thread ids excluded, so equal digests mean an identical merged
  // event sequence.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const MergedEvent& m : merged()) {
    for (const char c : name(m.event.name_id)) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    mix(static_cast<std::uint64_t>(m.event.kind));
    mix(m.event.key);
    mix(m.event.value);
  }
  return h;
}

std::uint64_t TraceSink::dropped() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  std::uint64_t n = 0;
  for (const auto& b : im.buffers) n += b->dropped;
  return n;
}

void TraceSink::set_buffer_capacity(std::size_t events) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  im.capacity = events;
}

void TraceSink::clear() {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  for (auto& b : im.buffers) {
    // Re-reserve so a set_buffer_capacity() call takes effect for
    // already-registered buffers at the next run scope (the emit path
    // treats vector capacity as the drop threshold).
    b->events.clear();
    b->events.shrink_to_fit();
    b->events.reserve(im.capacity);
    b->dropped = 0;
  }
}

#if MMX_OBS_ENABLED

SpanId::SpanId(std::string_view name)
    : name_id_(TraceSink::global().intern(name)),
      durations_(&Registry::global().histogram("span." + std::string(name) + ".ns")) {}

void emit_sample(const SpanId& id, std::uint64_t key, std::uint64_t value) {
  const std::uint64_t t = TraceSink::now_ns();
  TraceSink::global().emit({id.name_id(), EventKind::kSample, key, value, t, t});
}

#endif  // MMX_OBS_ENABLED

}  // namespace mmx::obs
