#include "mmx/obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mmx::obs {

namespace {

// Trace-event names are instrument-style identifiers, but escape anyway
// so a future name can't break the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

std::string chrome_trace_json() {
  TraceSink& sink = TraceSink::global();
  const std::vector<TraceSink::MergedEvent> events = sink.merged();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSink::MergedEvent& m : events) {
    const TraceEvent& e = m.event;
    if (!first) out << ",";
    first = false;
    const std::string name = json_escape(sink.name(e.name_id));
    const double ts_us = static_cast<double>(e.t0_ns) / 1e3;
    char num[64];
    std::snprintf(num, sizeof(num), "%.3f", ts_us);
    out << "\n{\"name\":\"" << name << "\",\"cat\":\"mmx\",\"pid\":1,\"tid\":" << m.tid
        << ",\"ts\":" << num;
    switch (e.kind) {
      case EventKind::kSpan: {
        std::snprintf(num, sizeof(num), "%.3f", static_cast<double>(e.t1_ns - e.t0_ns) / 1e3);
        out << ",\"ph\":\"X\",\"dur\":" << num << ",\"args\":{\"key\":" << e.key << "}}";
        break;
      }
      case EventKind::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"key\":" << e.key << "}}";
        break;
      case EventKind::kSample:
        out << ",\"ph\":\"C\",\"args\":{\"" << name << "\":" << e.value << ",\"key\":" << e.key
            << "}}";
        break;
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":" << sink.dropped()
      << "}}\n";
  return out.str();
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << chrome_trace_json();
  return static_cast<bool>(file);
}

std::vector<std::string> prometheus_lines() {
  std::vector<std::string> lines;
  std::istringstream in(Registry::global().prometheus_text());
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace mmx::obs
