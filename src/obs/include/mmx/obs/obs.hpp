// mmx::obs — zero-overhead observability for the simulation hot paths.
//
// The scale lanes (SweepRunner sweeps, the 10^4-node churn scenario)
// report only end-of-run aggregates; mmWave MAC behavior is dominated by
// transients those aggregates hide (beam retraining after a blocker
// move, retry storms, join bursts). This layer gives every subsystem
// named Counters/Gauges/Histograms plus trace spans, under two switches:
//
//   compile time — the MMX_OBS CMake option (default ON) defines
//     MMX_OBS_ENABLED; with it 0 every MMX_OBS_* macro expands to
//     nothing and instrumented TUs are token-for-token the pre-obs code.
//   run time — set_enabled(true) (the bench harness's --obs/--trace
//     flags). Disabled-but-compiled instrumentation costs one predicted
//     branch per site; the bench-perf lane gates the enabled cost on
//     bench_scale_churn at < 2%.
//
// Determinism contract (docs/OBSERVABILITY.md): instruments never feed
// back into simulation state, so instrumented runs stay bit-identical.
// Counter/Histogram updates are relaxed atomics — final values are sums,
// which commute, so they are thread-count invariant whenever the
// simulated event set is. Trace events carry an explicit ordering key
// (trial index, measure-round index — never wall-clock order); the merge
// in trace.hpp sorts on it, so the merged event sequence is also
// thread-count invariant as long as each key is produced by one thread.
//
// Registration (Registry::counter(name) etc.) takes a lock and may
// allocate; hot sites must cache the returned reference — the MMX_OBS_*
// macros do this with a function-local static, so a site is one enabled
// check + one relaxed add in steady state, and passes mmx_analyze's
// hot-path-alloc rule.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#ifndef MMX_OBS_ENABLED
#define MMX_OBS_ENABLED 1
#endif

namespace mmx::obs {

/// Runtime collection switch. Off by default: instrumented code runs,
/// instruments do not record. Flipped by the bench harness (--obs,
/// --trace) and by tests.
bool enabled();
void set_enabled(bool on);

/// Monotonic event count. Relaxed-atomic: cross-thread sums commute, so
/// the final value is deterministic whenever the increment set is.
class Counter {
 public:
  void inc() { add(1); }
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, resident population) with a
/// high-water mark. set()/add() are relaxed; max tracking is a CAS loop
/// (rare: only on new highs).
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(std::int64_t d) {
    const std::int64_t v = v_.fetch_add(d, std::memory_order_relaxed) + d;
    raise_max(v);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max_seen() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t v) {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed log2-bucket histogram of non-negative integer samples (retry
/// counts, rates in bps, span durations in ns). No allocation ever: the
/// bucket array is part of the object. Bucket index is bit_width(v), so
/// boundaries sit exactly at powers of two: bucket 0 holds v == 0,
/// bucket i (i >= 1) holds v in [2^(i-1), 2^i - 1].
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width of uint64 is 0..64

  static std::size_t bucket_of(std::uint64_t v) { return static_cast<std::size_t>(std::bit_width(v)); }
  /// Smallest value a bucket admits: 0 for bucket 0, else 2^(i-1).
  static std::uint64_t lower_bound(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Largest value bucket i admits (inclusive): 0, 1, 3, 7, ..., 2^i - 1.
  static std::uint64_t upper_bound(std::size_t i) {
    return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Named-instrument registry. Lookup-or-create is mutex-guarded and may
/// allocate (setup time); returned references are stable for the process
/// lifetime, so hot sites cache them once. Export iterates sorted by
/// name, so output order never depends on registration races.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zero every instrument's value (names stay registered). Run scoping:
  /// the harness resets before the measured phase, tests reset between
  /// cases.
  void reset_values();

  /// Prometheus-style text exposition, sorted by name: counters/gauges
  /// as `mmx_<name> <value>`, histograms as cumulative `_bucket{le=...}`
  /// lines plus `_sum`/`_count`. Dots in names become underscores.
  std::string prometheus_text() const;

  /// Visit every instrument sorted by name. `kind` is 'c', 'g' or 'h'.
  void for_each(const std::function<void(const std::string& name, char kind, const Counter*,
                                         const Gauge*, const Histogram*)>& fn) const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace mmx::obs

// --- Instrumentation macros -------------------------------------------------
//
// Every macro is safe in any context a statement is; with MMX_OBS=OFF
// they disappear entirely. The function-local static caches the registry
// handle so steady state is branch + relaxed atomic op.
#if MMX_OBS_ENABLED

#define MMX_OBS_CAT_(a, b) a##b
#define MMX_OBS_CAT(a, b) MMX_OBS_CAT_(a, b)

#define MMX_OBS_COUNT(name, n)                                              \
  do {                                                                      \
    if (::mmx::obs::enabled()) {                                            \
      static ::mmx::obs::Counter& MMX_OBS_CAT(mmx_obs_c_, __LINE__) =       \
          ::mmx::obs::Registry::global().counter(name);                     \
      MMX_OBS_CAT(mmx_obs_c_, __LINE__).add(static_cast<std::uint64_t>(n)); \
    }                                                                       \
  } while (0)

#define MMX_OBS_GAUGE_SET(name, v)                                         \
  do {                                                                     \
    if (::mmx::obs::enabled()) {                                           \
      static ::mmx::obs::Gauge& MMX_OBS_CAT(mmx_obs_g_, __LINE__) =        \
          ::mmx::obs::Registry::global().gauge(name);                      \
      MMX_OBS_CAT(mmx_obs_g_, __LINE__).set(static_cast<std::int64_t>(v)); \
    }                                                                      \
  } while (0)

#define MMX_OBS_GAUGE_ADD(name, d)                                         \
  do {                                                                     \
    if (::mmx::obs::enabled()) {                                           \
      static ::mmx::obs::Gauge& MMX_OBS_CAT(mmx_obs_g_, __LINE__) =        \
          ::mmx::obs::Registry::global().gauge(name);                      \
      MMX_OBS_CAT(mmx_obs_g_, __LINE__).add(static_cast<std::int64_t>(d)); \
    }                                                                      \
  } while (0)

#define MMX_OBS_RECORD(name, v)                                               \
  do {                                                                        \
    if (::mmx::obs::enabled()) {                                              \
      static ::mmx::obs::Histogram& MMX_OBS_CAT(mmx_obs_h_, __LINE__) =       \
          ::mmx::obs::Registry::global().histogram(name);                     \
      MMX_OBS_CAT(mmx_obs_h_, __LINE__).record(static_cast<std::uint64_t>(v)); \
    }                                                                         \
  } while (0)

#else  // !MMX_OBS_ENABLED

// sizeof keeps the operands formally used (no -Wunused with MMX_OBS=OFF)
// while never evaluating them.
#define MMX_OBS_COUNT(name, n) ((void)sizeof(n))
#define MMX_OBS_GAUGE_SET(name, v) ((void)sizeof(v))
#define MMX_OBS_GAUGE_ADD(name, d) ((void)sizeof(d))
#define MMX_OBS_RECORD(name, v) ((void)sizeof(v))

#endif  // MMX_OBS_ENABLED
