// Trace spans and per-thread event buffers with a deterministic merge.
//
// A TraceEvent is (interned name, ordering key, kind, value, start/end
// timestamps). Each thread writes into its own fixed-capacity buffer —
// emission is a bounds check plus a struct store, never an allocation or
// a lock — and TraceSink::merged() interleaves the buffers afterwards by
// a stable sort on the *ordering key* the instrumentation site supplied
// (trial index, measure-round index), never on wall-clock time or
// thread identity. As long as all events for one key are emitted by one
// thread (true for SweepRunner trials and for the event-loop-driven
// scenarios), the merged sequence — names, keys, kinds, values, order —
// is bit-identical at any --threads; only the timestamps vary, and
// merged_digest() excludes them so tests can pin the invariant.
//
// Timestamps are steady-clock nanoseconds since the process trace epoch
// (first use). Buffers that fill up drop further events and count them;
// nothing ever blocks the simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mmx/obs/obs.hpp"

namespace mmx::obs {

enum class EventKind : std::uint8_t {
  kSpan = 0,     ///< duration [t0_ns, t1_ns] (chrome "X")
  kInstant = 1,  ///< point event at t0_ns (chrome "i")
  kSample = 2,   ///< counter sample `value` at t0_ns (chrome "C")
};

struct TraceEvent {
  std::uint32_t name_id = 0;  ///< index into TraceSink name table
  EventKind kind = EventKind::kSpan;
  std::uint64_t key = 0;    ///< deterministic ordering key (trial/round index)
  std::uint64_t value = 0;  ///< kSample payload; unused otherwise
  std::uint64_t t0_ns = 0;  ///< start (or instant) time, trace-epoch relative
  std::uint64_t t1_ns = 0;  ///< end time for kSpan; == t0_ns otherwise
};

/// Collects every thread's events. Buffer registration and merging are
/// mutex-guarded (cold); emission touches only this thread's buffer.
class TraceSink {
 public:
  static TraceSink& global();

  /// Intern `name`, returning its stable id. Cold path (macro statics).
  std::uint32_t intern(std::string_view name);
  const std::string& name(std::uint32_t id) const;

  /// Append an event to this thread's buffer (registering the buffer on
  /// first use). Drops and counts when the buffer is full.
  void emit(const TraceEvent& e);

  /// Steady-clock nanoseconds since the trace epoch.
  static std::uint64_t now_ns();

  /// All events, stable-sorted by ordering key (see file header). Each
  /// event is paired with the display id of the thread that emitted it.
  struct MergedEvent {
    TraceEvent event;
    std::uint32_t tid = 0;  ///< per-buffer display id; NOT deterministic
  };
  std::vector<MergedEvent> merged() const;

  /// FNV-1a over the merged sequence excluding timestamps and tids: the
  /// thread-count-invariance fingerprint.
  std::uint64_t merged_digest() const;

  /// Events dropped across all buffers (capacity exhausted).
  std::uint64_t dropped() const;

  /// Per-thread buffer capacity: applies to buffers registered after
  /// this call, and to existing buffers at the next clear().
  void set_buffer_capacity(std::size_t events);

  /// Discard all buffered events and drop counts (names stay interned).
  void clear();

 private:
  TraceSink() = default;
  struct Impl;
  Impl& impl() const;
};

#if MMX_OBS_ENABLED

/// One instrumentation site's identity: interned trace name plus the
/// histogram its span durations feed ("span.<name>.ns"). Constructed
/// once per site (function-local static in MMX_OBS_SPAN).
class SpanId {
 public:
  explicit SpanId(std::string_view name);
  std::uint32_t name_id() const { return name_id_; }
  Histogram& durations() const { return *durations_; }

 private:
  std::uint32_t name_id_;
  Histogram* durations_;  // owned by the global Registry
};

/// RAII span: records start on construction (when collection is enabled)
/// and on destruction emits a kSpan event plus a duration-histogram
/// sample. Disabled cost is one branch.
class ScopedTimer {
 public:
  /// `condition` gates the span alongside the global enable: a false
  /// condition reduces the site to one branch (MMX_OBS_SPAN_IF).
  ScopedTimer(const SpanId& id, std::uint64_t key, bool condition = true)
      : id_(&id),
        key_(key),
        armed_(condition && enabled()),
        t0_ns_(armed_ ? TraceSink::now_ns() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (!armed_) return;
    const std::uint64_t t1_ns = TraceSink::now_ns();
    id_->durations().record(t1_ns - t0_ns_);
    TraceSink::global().emit(
        {id_->name_id(), EventKind::kSpan, key_, /*value=*/0, t0_ns_, t1_ns});
  }

 private:
  const SpanId* id_;
  std::uint64_t key_;
  bool armed_;  // declared before t0_ns_: its init gates the clock read
  std::uint64_t t0_ns_;
};

/// Emit a kSample counter event (chrome "C" row): `value` at key `key`.
void emit_sample(const SpanId& id, std::uint64_t key, std::uint64_t value);

// A named RAII span covering the rest of the enclosing scope, keyed for
// the deterministic merge.
#define MMX_OBS_SPAN(name, key)                                               \
  static const ::mmx::obs::SpanId MMX_OBS_CAT(mmx_obs_sid_, __LINE__){name};  \
  const ::mmx::obs::ScopedTimer MMX_OBS_CAT(mmx_obs_span_, __LINE__)(         \
      MMX_OBS_CAT(mmx_obs_sid_, __LINE__), static_cast<std::uint64_t>(key))

// MMX_OBS_SPAN with an extra runtime gate: the span is emitted only when
// `cond` is true (SweepConfig::trace_trials uses this to silence
// per-item spans on high-rate internal sweeps).
#define MMX_OBS_SPAN_IF(cond, name, key)                                      \
  static const ::mmx::obs::SpanId MMX_OBS_CAT(mmx_obs_sid_, __LINE__){name};  \
  const ::mmx::obs::ScopedTimer MMX_OBS_CAT(mmx_obs_span_, __LINE__)(         \
      MMX_OBS_CAT(mmx_obs_sid_, __LINE__), static_cast<std::uint64_t>(key),   \
      (cond))

// A counter-sample trace event (renders as a chrome://tracing counter
// track; the retry-burst lane in docs/OBSERVABILITY.md uses this).
#define MMX_OBS_SAMPLE(name, key, value)                                     \
  do {                                                                       \
    if (::mmx::obs::enabled()) {                                             \
      static const ::mmx::obs::SpanId MMX_OBS_CAT(mmx_obs_sid_, __LINE__){   \
          name};                                                             \
      ::mmx::obs::emit_sample(MMX_OBS_CAT(mmx_obs_sid_, __LINE__),           \
                              static_cast<std::uint64_t>(key),               \
                              static_cast<std::uint64_t>(value));            \
    }                                                                        \
  } while (0)

#else  // !MMX_OBS_ENABLED

// sizeof keeps the operands formally used (no -Wunused with MMX_OBS=OFF)
// while never evaluating them.
#define MMX_OBS_SPAN(name, key) ((void)sizeof(key))
#define MMX_OBS_SPAN_IF(cond, name, key) ((void)sizeof(cond), (void)sizeof(key))
#define MMX_OBS_SAMPLE(name, key, value) ((void)sizeof(key), (void)sizeof(value))

#endif  // MMX_OBS_ENABLED

// Per-stage spans inside the DSP/PHY fast path (FramePipeline stages).
// Compiled out unless the MMX_OBS_HOT CMake option is ON: these sites
// sit inside microsecond-scale kernels, and their events are keyed per
// call site (not per trial), so a hot-span build trades the merge-order
// determinism guarantee for per-stage profiling depth.
#if MMX_OBS_ENABLED && defined(MMX_OBS_HOT)
#define MMX_OBS_HOT_SPAN(name, key) MMX_OBS_SPAN(name, key)
#else
#define MMX_OBS_HOT_SPAN(name, key) ((void)0)
#endif

}  // namespace mmx::obs
