// Exporters: chrome://tracing JSON and Prometheus-style text.
//
// chrome_trace_json() serializes the merged trace (spans as "X" events,
// instants as "i", counter samples as "C") in the Trace Event Format
// chrome://tracing and Perfetto load directly; the bench harness writes
// it behind --trace and CI uploads it as the `trace` artifact.
// prometheus_lines() is the text exposition of every registered
// instrument; the harness appends it to the JSON run metadata so every
// BENCH_*.json carries the run's counters.
#pragma once

#include <string>
#include <vector>

#include "mmx/obs/obs.hpp"
#include "mmx/obs/trace.hpp"

namespace mmx::obs {

/// Full chrome://tracing document ({"traceEvents": [...]}). Timestamps
/// are microseconds (the format's unit); the ordering key is carried in
/// each event's args so a trace can be joined back to trial indices.
std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Registry::global().prometheus_text() split into lines (the harness
/// embeds them as a JSON string array).
std::vector<std::string> prometheus_lines();

}  // namespace mmx::obs
