#include "mmx/phy/otam.hpp"

#include <stdexcept>

#include "mmx/dsp/tone.hpp"

namespace mmx::phy {

void otam_synthesize_into(const Bits& bits, const PhyConfig& cfg, const OtamChannel& channel,
                          const rf::SpdtSwitch& spdt, dsp::Cvec& out, double tx_amplitude) {
  cfg.validate();
  spdt.check_symbol_rate(cfg.symbol_rate_hz);
  if (tx_amplitude <= 0.0) throw std::invalid_argument("otam_synthesize: amplitude must be > 0");
  const double g_thru = spdt.through_gain();
  const double g_leak = spdt.leak_gain();
  // Per-bit effective complex gain at the AP.
  const std::complex<double> eff1 = g_thru * channel.h1 + g_leak * channel.h0;
  const std::complex<double> eff0 = g_thru * channel.h0 + g_leak * channel.h1;

  dsp::Nco nco(cfg.sample_rate_hz(), cfg.fsk_freq0_hz);  // the node's single VCO
  out.resize(bits.size() * cfg.samples_per_symbol);  // mmx-analyze: allow(hot-path-alloc) -- out-param keeps its capacity across frames; steady state allocates nothing (pipeline_test)
  std::size_t idx = 0;
  for (int b : bits) {
    if (b != 0 && b != 1) throw std::invalid_argument("otam_synthesize: bits must be 0/1");
    nco.set_frequency(b ? cfg.fsk_freq1_hz : cfg.fsk_freq0_hz);
    const std::complex<double> eff = tx_amplitude * (b ? eff1 : eff0);
    nco.modulate_into(std::span<dsp::Complex>(out.data() + idx, cfg.samples_per_symbol), eff);
    idx += cfg.samples_per_symbol;
  }
}

dsp::Cvec otam_synthesize(const Bits& bits, const PhyConfig& cfg, const OtamChannel& channel,
                          const rf::SpdtSwitch& spdt, double tx_amplitude) {
  dsp::Cvec out;
  otam_synthesize_into(bits, cfg, channel, spdt, out, tx_amplitude);
  return out;
}

dsp::Cvec otam_synthesize_varying(const Bits& bits, const PhyConfig& cfg,
                                  std::span<const OtamChannel> channels,
                                  const rf::SpdtSwitch& spdt, double tx_amplitude) {
  cfg.validate();
  spdt.check_symbol_rate(cfg.symbol_rate_hz);
  if (tx_amplitude <= 0.0)
    throw std::invalid_argument("otam_synthesize_varying: amplitude must be > 0");
  if (channels.size() != bits.size())
    throw std::invalid_argument("otam_synthesize_varying: one channel per symbol required");
  const double g_thru = spdt.through_gain();
  const double g_leak = spdt.leak_gain();

  dsp::Nco nco(cfg.sample_rate_hz(), cfg.fsk_freq0_hz);
  dsp::Cvec out(bits.size() * cfg.samples_per_symbol);
  std::size_t idx = 0;
  for (std::size_t s = 0; s < bits.size(); ++s) {
    const int b = bits[s];
    if (b != 0 && b != 1)
      throw std::invalid_argument("otam_synthesize_varying: bits must be 0/1");
    nco.set_frequency(b ? cfg.fsk_freq1_hz : cfg.fsk_freq0_hz);
    const OtamChannel& ch = channels[s];
    const std::complex<double> eff =
        tx_amplitude * (b ? (g_thru * ch.h1 + g_leak * ch.h0)
                          : (g_thru * ch.h0 + g_leak * ch.h1));
    nco.modulate_into(std::span<dsp::Complex>(out.data() + idx, cfg.samples_per_symbol), eff);
    idx += cfg.samples_per_symbol;
  }
  return out;
}

dsp::Cvec fixed_beam_ask_synthesize(const Bits& bits, const PhyConfig& cfg,
                                    const OtamChannel& channel, double tx_amplitude,
                                    double ask_floor) {
  cfg.validate();
  if (tx_amplitude <= 0.0)
    throw std::invalid_argument("fixed_beam_ask_synthesize: amplitude must be > 0");
  if (ask_floor < 0.0 || ask_floor >= 1.0)
    throw std::invalid_argument("fixed_beam_ask_synthesize: floor must be in [0,1)");
  dsp::Nco nco(cfg.sample_rate_hz(), 0.0);
  dsp::Cvec out(bits.size() * cfg.samples_per_symbol);
  std::size_t idx = 0;
  for (int b : bits) {
    if (b != 0 && b != 1)
      throw std::invalid_argument("fixed_beam_ask_synthesize: bits must be 0/1");
    const std::complex<double> eff =
        tx_amplitude * (b ? 1.0 : ask_floor) * channel.h1;
    nco.modulate_into(std::span<dsp::Complex>(out.data() + idx, cfg.samples_per_symbol), eff);
    idx += cfg.samples_per_symbol;
  }
  return out;
}

OtamLevels otam_levels(const OtamChannel& channel, const rf::SpdtSwitch& spdt,
                       double tx_amplitude) {
  const double g_thru = spdt.through_gain();
  const double g_leak = spdt.leak_gain();
  return {std::abs(g_thru * channel.h1 + g_leak * channel.h0) * tx_amplitude,
          std::abs(g_thru * channel.h0 + g_leak * channel.h1) * tx_amplitude};
}

}  // namespace mmx::phy
