#include "mmx/phy/ber.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmx::phy {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double ber_ook_coherent(double snr_lin) {
  if (snr_lin < 0.0) throw std::invalid_argument("ber_ook_coherent: snr_lin must be >= 0");
  return q_function(std::sqrt(snr_lin));
}

double ber_ook_noncoherent(double snr_lin) {
  if (snr_lin < 0.0) throw std::invalid_argument("ber_ook_noncoherent: snr_lin must be >= 0");
  return std::min(0.5, 0.5 * std::exp(-snr_lin / 2.0));
}

double ber_bfsk_coherent(double snr_lin) {
  if (snr_lin < 0.0) throw std::invalid_argument("ber_bfsk_coherent: snr_lin must be >= 0");
  return q_function(std::sqrt(snr_lin));
}

double ber_bfsk_noncoherent(double snr_lin) {
  if (snr_lin < 0.0) throw std::invalid_argument("ber_bfsk_noncoherent: snr_lin must be >= 0");
  return std::min(0.5, 0.5 * std::exp(-snr_lin / 2.0));
}

double ber_two_level(double amp1, double amp0, double noise_power_lin, std::size_t n_avg) {
  if (noise_power_lin <= 0.0) throw std::invalid_argument("ber_two_level: noise power must be > 0");
  if (n_avg == 0) throw std::invalid_argument("ber_two_level: n_avg must be > 0");
  if (amp1 < 0.0 || amp0 < 0.0) throw std::invalid_argument("ber_two_level: amplitudes >= 0");
  // Envelope noise std dev ~ sqrt(noise_power_lin/2); averaging n samples per
  // symbol shrinks it by sqrt(n).
  const double sigma = std::sqrt(noise_power_lin / 2.0 / static_cast<double>(n_avg));
  return q_function(std::abs(amp1 - amp0) / (2.0 * sigma));
}

double ber_joint(double ask_ber, double fsk_ber) {
  if (ask_ber < 0.0 || ask_ber > 0.5 || fsk_ber < 0.0 || fsk_ber > 0.5)
    throw std::invalid_argument("ber_joint: branch BERs must be in [0, 0.5]");
  return std::min(ask_ber, fsk_ber);
}

double ber_hamming74(double raw_ber) {
  if (raw_ber < 0.0 || raw_ber > 0.5)
    throw std::invalid_argument("ber_hamming74: raw BER must be in [0, 0.5]");
  const double p = raw_ber;
  const double q = 1.0 - p;
  // P(block has >= 2 errors) = 1 - q^7 - 7 p q^6. A failing block
  // miscorrects to a neighbouring codeword; on average ~3/7 of its data
  // bits end up wrong — fold to a per-bit figure.
  const double p_block_fail = 1.0 - std::pow(q, 7.0) - 7.0 * p * std::pow(q, 6.0);
  return std::min(0.5, p_block_fail * 3.0 / 7.0);
}

double ber_conv_k3(double raw_ber) {
  if (raw_ber < 0.0 || raw_ber > 0.5)
    throw std::invalid_argument("ber_conv_k3: raw BER must be in [0, 0.5]");
  // Union bound leading term for d_free = 5 (hard decision):
  // Pb ~ B_5 * sum_{k=3}^{5} C(5,k) p^k (1-p)^{5-k}, B_5 = 1 for (7,5).
  const double p = raw_ber;
  const double q = 1.0 - p;
  const double pd = 10.0 * p * p * p * q * q + 5.0 * p * p * p * p * q +
                    p * p * p * p * p;
  return std::min(0.5, pd);
}

double snr_for_ber_ook(double target_ber) {
  if (target_ber <= 0.0 || target_ber >= 0.5)
    throw std::invalid_argument("snr_for_ber_ook: target must be in (0, 0.5)");
  double lo = 0.0;
  double hi = 1e6;
  for (int i = 0; i < 200; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (ber_ook_coherent(mid) > target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace mmx::phy
