#include "mmx/phy/preamble.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/dsp/envelope.hpp"

namespace mmx::phy {

const Bits& default_preamble() {
  // Balanced 16-bit pattern with runs of 1 and 2 (keeps the envelope
  // correlator's autocorrelation sidelobes low).
  static const Bits kPreamble{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 0};
  return kPreamble;
}

namespace {

struct PatternInfo {
  std::vector<double> pat;
  double norm;
};

PatternInfo centred_pattern(const Bits& preamble) {
  const double n = static_cast<double>(preamble.size());
  double mean = 0.0;
  for (int b : preamble) mean += b;
  mean /= n;
  PatternInfo info;
  info.pat.resize(preamble.size());
  double norm = 0.0;
  for (std::size_t i = 0; i < preamble.size(); ++i) {
    info.pat[i] = static_cast<double>(preamble[i]) - mean;
    norm += info.pat[i] * info.pat[i];
  }
  info.norm = std::sqrt(norm);
  return info;
}

double correlation_at(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                      const PatternInfo& info, std::size_t off, std::size_t needed) {
  const dsp::Rvec env =
      dsp::symbol_envelopes(rx.subspan(off, needed), cfg.samples_per_symbol, cfg.guard_frac);
  const double n = static_cast<double>(env.size());
  double emean = 0.0;
  for (double e : env) emean += e;
  emean /= n;
  double corr = 0.0;
  double enorm = 0.0;
  for (std::size_t i = 0; i < env.size(); ++i) {
    const double c = env[i] - emean;
    corr += c * info.pat[i];
    enorm += c * c;
  }
  enorm = std::sqrt(enorm);
  if (enorm == 0.0) return 0.0;
  return corr / (enorm * info.norm);
}

}  // namespace

std::optional<SyncResult> find_preamble_first(std::span<const dsp::Complex> rx,
                                              const PhyConfig& cfg, const Bits& preamble,
                                              std::size_t max_offset, double min_correlation) {
  cfg.validate();
  if (preamble.size() < 4) throw std::invalid_argument("find_preamble_first: preamble too short");
  if (min_correlation <= 0.0 || min_correlation > 1.0)
    throw std::invalid_argument("find_preamble_first: min_correlation must be in (0,1]");
  const std::size_t sps = cfg.samples_per_symbol;
  const std::size_t needed = preamble.size() * sps;
  if (rx.size() < needed) return std::nullopt;
  max_offset = std::min(max_offset, rx.size() - needed);
  const PatternInfo info = centred_pattern(preamble);
  if (info.norm == 0.0)
    throw std::invalid_argument("find_preamble_first: preamble must not be constant");

  for (std::size_t off = 0; off <= max_offset; ++off) {
    const double r = correlation_at(rx, cfg, info, off, needed);
    if (std::abs(r) < min_correlation) continue;
    // Refine within the next symbol so the estimate lands on the peak.
    SyncResult best{off, r < 0.0, std::abs(r)};
    const std::size_t refine_end = std::min(max_offset, off + sps);
    for (std::size_t o2 = off + 1; o2 <= refine_end; ++o2) {
      const double r2 = correlation_at(rx, cfg, info, o2, needed);
      if (std::abs(r2) > best.correlation) best = {o2, r2 < 0.0, std::abs(r2)};
    }
    return best;
  }
  return std::nullopt;
}

std::optional<SyncResult> find_preamble(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                                        const Bits& preamble, std::size_t max_offset,
                                        double min_correlation) {
  cfg.validate();
  if (preamble.size() < 4) throw std::invalid_argument("find_preamble: preamble too short");
  if (min_correlation <= 0.0 || min_correlation > 1.0)
    throw std::invalid_argument("find_preamble: min_correlation must be in (0,1]");
  const std::size_t sps = cfg.samples_per_symbol;
  const std::size_t needed = preamble.size() * sps;
  if (rx.size() < needed) return std::nullopt;
  max_offset = std::min(max_offset, rx.size() - needed);

  // Centre the preamble pattern so correlation is amplitude-offset free.
  const double n = static_cast<double>(preamble.size());
  double pmean = 0.0;
  for (int b : preamble) pmean += b;
  pmean /= n;
  std::vector<double> pat(preamble.size());
  double pnorm = 0.0;
  for (std::size_t i = 0; i < preamble.size(); ++i) {
    pat[i] = static_cast<double>(preamble[i]) - pmean;
    pnorm += pat[i] * pat[i];
  }
  pnorm = std::sqrt(pnorm);
  if (pnorm == 0.0) throw std::invalid_argument("find_preamble: preamble must not be constant");

  SyncResult best;
  bool found = false;
  for (std::size_t off = 0; off <= max_offset; ++off) {
    const dsp::Rvec env =
        dsp::symbol_envelopes(rx.subspan(off, needed), sps, cfg.guard_frac);
    double emean = 0.0;
    for (double e : env) emean += e;
    emean /= n;
    double corr = 0.0;
    double enorm = 0.0;
    for (std::size_t i = 0; i < env.size(); ++i) {
      const double c = env[i] - emean;
      corr += c * pat[i];
      enorm += c * c;
    }
    enorm = std::sqrt(enorm);
    if (enorm == 0.0) continue;
    const double r = corr / (enorm * pnorm);
    if (!found || std::abs(r) > std::abs(best.correlation)) {
      best.sample_offset = off;
      best.correlation = r;
      best.inverted = r < 0.0;
      found = true;
    }
  }
  if (!found || std::abs(best.correlation) < min_correlation) return std::nullopt;
  best.correlation = std::abs(best.correlation);
  return best;
}

}  // namespace mmx::phy
