#include "mmx/phy/pipeline.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "mmx/dsp/noise.hpp"
#include "mmx/obs/trace.hpp"

namespace mmx::phy {

// Per-stage spans are MMX_OBS_HOT_SPAN: compiled out unless the build
// sets -DMMX_OBS_HOT=ON, so the default fast path carries zero
// instrumentation cost. Key 0 = callsite-scoped; hot spans trade the
// merge-determinism guarantee for stage-level timing (docs/OBSERVABILITY.md).

FramePipeline::FramePipeline(const PhyConfig& cfg) : cfg_(cfg), bank_(fsk_tone_bank(cfg)) {
  cfg_.validate();
}

void FramePipeline::synthesize_otam(const Bits& bits, const OtamChannel& channel,
                                    const rf::SpdtSwitch& spdt, double tx_amplitude) {
  MMX_OBS_HOT_SPAN("phy.synthesize_otam", 0);
  otam_synthesize_into(bits, cfg_, channel, spdt, rx_, tx_amplitude);
}

void FramePipeline::modulate_ask(const Bits& bits, AskLevels levels) {
  MMX_OBS_HOT_SPAN("phy.modulate_ask", 0);
  ask_modulate_into(bits, cfg_, rx_, levels);
}

void FramePipeline::modulate_fsk(const Bits& bits) {
  MMX_OBS_HOT_SPAN("phy.modulate_fsk", 0);
  fsk_modulate_into(bits, cfg_, rx_);
}

void FramePipeline::load(std::span<const dsp::Complex> capture) {
  rx_.resize(capture.size());  // mmx-analyze: allow(hot-path-alloc) -- member capture buffer reuses capacity; alloc_events() stability pinned by pipeline_test
  std::copy(capture.begin(), capture.end(), rx_.begin());
}

void FramePipeline::add_noise(double power_lin, Rng& rng) {
  dsp::add_awgn(rx_, power_lin, rng);
}

void FramePipeline::add_noise_snr(double snr_db, Rng& rng) {
  dsp::add_awgn_snr(rx_, snr_db, rng);
}

const AskDecision& FramePipeline::demodulate_ask(const Bits& known_prefix) {
  MMX_OBS_HOT_SPAN("phy.demodulate_ask", 0);
  ask_demodulate_into(rx_, cfg_, known_prefix, ws_, ask_);
  return ask_;
}

const FskDecision& FramePipeline::demodulate_fsk() {
  MMX_OBS_HOT_SPAN("phy.demodulate_fsk", 0);
  fsk_demodulate_into(rx_, cfg_, bank_, ws_, fsk_);
  return fsk_;
}

const JointDecision& FramePipeline::demodulate_joint(const Bits& known_prefix) {
  MMX_OBS_HOT_SPAN("phy.demodulate_joint", 0);
  joint_demodulate_into(rx_, cfg_, known_prefix, bank_, ws_, joint_ask_, joint_fsk_, joint_);
  return joint_;
}

FramePipeline& thread_pipeline(const PhyConfig& cfg) {
  // One pool per thread: pipelines are not thread-safe, and per-thread
  // instances keep parallel sweeps bit-identical at any thread count.
  thread_local std::vector<std::unique_ptr<FramePipeline>> pool;
  for (const auto& p : pool)
    if (p->config() == cfg) return *p;
  pool.push_back(std::make_unique<FramePipeline>(cfg));
  return *pool.back();
}

}  // namespace mmx::phy
