#include "mmx/phy/ask.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/dsp/envelope.hpp"
#include "mmx/dsp/tone.hpp"

namespace mmx::phy {
namespace {

constexpr double kEps = 1e-12;

/// 1-D 2-means split of the envelope values: {low mean, high mean,
/// midpoint threshold}.
struct TwoMeans {
  double low;
  double high;
  double threshold;
};

TwoMeans two_means(std::span<const double> v) {
  const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
  double lo = *mn;
  double hi = *mx;
  for (int iter = 0; iter < 32; ++iter) {
    const double mid = (lo + hi) / 2.0;
    double slo = 0.0;
    double shi = 0.0;
    std::size_t nlo = 0;
    std::size_t nhi = 0;
    for (double x : v) {
      if (x < mid) {
        slo += x;
        ++nlo;
      } else {
        shi += x;
        ++nhi;
      }
    }
    const double new_lo = (nlo > 0) ? slo / static_cast<double>(nlo) : lo;
    const double new_hi = (nhi > 0) ? shi / static_cast<double>(nhi) : hi;
    if (std::abs(new_lo - lo) < kEps && std::abs(new_hi - hi) < kEps) break;
    lo = new_lo;
    hi = new_hi;
  }
  return {lo, hi, (lo + hi) / 2.0};
}

double stddev_around(std::span<const double> v, double mean, double threshold, bool upper) {
  double acc = 0.0;
  std::size_t n = 0;
  for (double x : v) {
    const bool is_upper = x >= threshold;
    if (is_upper != upper) continue;
    acc += (x - mean) * (x - mean);
    ++n;
  }
  return (n > 0) ? std::sqrt(acc / static_cast<double>(n)) : 0.0;
}

}  // namespace

void ask_modulate_into(const Bits& bits, const PhyConfig& cfg, dsp::Cvec& out,
                       AskLevels levels) {
  cfg.validate();
  if (levels.amp1 <= levels.amp0)
    throw std::invalid_argument("ask_modulate: amp1 must exceed amp0");
  dsp::Nco nco(cfg.sample_rate_hz(), 0.0);
  out.resize(bits.size() * cfg.samples_per_symbol);  // mmx-analyze: allow(hot-path-alloc) -- out-param keeps its capacity across frames; steady state allocates nothing (pipeline_test)
  std::size_t idx = 0;
  for (int b : bits) {
    if (b != 0 && b != 1) throw std::invalid_argument("ask_modulate: bits must be 0/1");
    const double a = b ? levels.amp1 : levels.amp0;
    nco.modulate_into(std::span<dsp::Complex>(out.data() + idx, cfg.samples_per_symbol),
                      dsp::Complex{a, 0.0});
    idx += cfg.samples_per_symbol;
  }
}

dsp::Cvec ask_modulate(const Bits& bits, const PhyConfig& cfg, AskLevels levels) {
  dsp::Cvec out;
  ask_modulate_into(bits, cfg, out, levels);
  return out;
}

void ask_decide(std::span<const double> env, const Bits& known_prefix, AskDecision& d) {
  if (env.empty()) throw std::invalid_argument("ask_demodulate: no full symbol in capture");
  if (known_prefix.size() > env.size())
    throw std::invalid_argument("ask_demodulate: prefix longer than capture");

  d.bits.clear();
  double mu0 = 0.0;
  double mu1 = 0.0;
  if (!known_prefix.empty()) {
    // Learn the two levels from the training bits (paper §6.1: preamble
    // bits distinguish Beam 0's level from Beam 1's).
    std::size_t n0 = 0;
    std::size_t n1 = 0;
    for (std::size_t i = 0; i < known_prefix.size(); ++i) {
      if (known_prefix[i]) {
        mu1 += env[i];
        ++n1;
      } else {
        mu0 += env[i];
        ++n0;
      }
    }
    if (n0 == 0 || n1 == 0)
      throw std::invalid_argument("ask_demodulate: prefix must contain both bit values");
    mu0 /= static_cast<double>(n0);
    mu1 /= static_cast<double>(n1);
    d.inverted = mu1 < mu0;  // blocked-LoS case: bright level means 0
    d.threshold = (mu0 + mu1) / 2.0;
  } else {
    const TwoMeans tm = two_means(env);
    mu0 = tm.low;
    mu1 = tm.high;
    d.threshold = tm.threshold;
    d.inverted = false;
  }

  const double hi = std::max(mu0, mu1);
  const double lo = std::min(mu0, mu1);
  const double s_hi = stddev_around(env, hi, d.threshold, true);
  const double s_lo = stddev_around(env, lo, d.threshold, false);
  d.separation = (hi - lo) / (s_hi + s_lo + kEps);

  d.bits.reserve(env.size());
  for (double e : env) {
    int bit = (e >= d.threshold) ? 1 : 0;
    if (d.inverted) bit ^= 1;
    d.bits.push_back(bit);
  }
}

void ask_demodulate_into(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                         const Bits& known_prefix, dsp::DspWorkspace& ws, AskDecision& d) {
  cfg.validate();
  const std::size_t n_sym = rx.size() / cfg.samples_per_symbol;
  auto env = ws.rvec(n_sym);
  dsp::symbol_envelopes_into(rx, cfg.samples_per_symbol, cfg.guard_frac, *env);
  ask_decide(*env, known_prefix, d);
}

AskDecision ask_demodulate(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                           const Bits& known_prefix) {
  AskDecision d;
  ask_demodulate_into(rx, cfg, known_prefix, dsp::DspWorkspace::tls(), d);
  return d;
}

}  // namespace mmx::phy
