#include "mmx/phy/coding.hpp"

#include <stdexcept>

#include "mmx/phy/fec.hpp"
#include "mmx/phy/scrambler.hpp"

namespace mmx::phy {
namespace {

constexpr std::size_t kLenBits = 16;

Bits with_length_prefix(const Bits& body) {
  if (body.size() >= (1u << kLenBits))
    throw std::invalid_argument("encode_body: body too long for the length prefix");
  Bits out;
  out.reserve(kLenBits + body.size());
  for (int i = static_cast<int>(kLenBits) - 1; i >= 0; --i) {
    out.push_back(static_cast<int>((body.size() >> i) & 1u));
  }
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Bits strip_length_prefix(const Bits& data) {
  if (data.size() < kLenBits) throw std::invalid_argument("decode_body: truncated prefix");
  std::size_t len = 0;
  for (std::size_t i = 0; i < kLenBits; ++i) {
    len = (len << 1) | static_cast<std::size_t>(data[i]);
  }
  if (data.size() < kLenBits + len)
    throw std::invalid_argument("decode_body: body shorter than its declared length");
  return Bits(data.begin() + kLenBits, data.begin() + static_cast<long>(kLenBits + len));
}

void pad_to_multiple(Bits& bits, std::size_t m) {
  while (bits.size() % m != 0) bits.push_back(0);
}

}  // namespace

double coding_rate(CodingProfile profile) {
  switch (profile) {
    case CodingProfile::kNone:
      return 1.0;
    case CodingProfile::kHamming:
      return 4.0 / 7.0;
    case CodingProfile::kConvolutional:
      return 0.5;
  }
  throw std::invalid_argument("coding_rate: unknown profile");
}

std::size_t coded_length_bits(std::size_t body_bits, CodingProfile profile) {
  const std::size_t n = kLenBits + body_bits;
  switch (profile) {
    case CodingProfile::kNone:
      return body_bits;
    case CodingProfile::kHamming: {
      const std::size_t padded = (n + 3) / 4 * 4;
      return padded / 4 * 7;
    }
    case CodingProfile::kConvolutional:
      return 2 * (n + 2);
  }
  throw std::invalid_argument("coded_length_bits: unknown profile");
}

Bits encode_body(const Bits& body, CodingProfile profile) {
  if (profile == CodingProfile::kNone) return body;
  Bits data = with_length_prefix(body);
  data = scramble(data);
  switch (profile) {
    case CodingProfile::kHamming: {
      pad_to_multiple(data, 4);
      Bits coded = hamming74_encode(data);
      // One bit per codeword per column: adjacent channel bits land in
      // different codewords, so a burst of up to codewords-many bits
      // costs each codeword at most one error.
      return interleave(coded, coded.size() / 7, 7);
    }
    case CodingProfile::kConvolutional:
      return conv_encode(data);
    case CodingProfile::kNone:
      break;
  }
  throw std::invalid_argument("encode_body: unknown profile");
}

Bits decode_body(const Bits& coded, CodingProfile profile) {
  if (profile == CodingProfile::kNone) return coded;
  Bits data;
  switch (profile) {
    case CodingProfile::kHamming: {
      if (coded.size() % 7 != 0)
        throw std::invalid_argument("decode_body: Hamming body must be a multiple of 7 bits");
      const Bits deinter = deinterleave(coded, coded.size() / 7, 7);
      data = hamming74_decode(deinter);
      break;
    }
    case CodingProfile::kConvolutional:
      data = conv_decode(coded);
      break;
    case CodingProfile::kNone:
      break;
  }
  data = descramble(data);
  return strip_length_prefix(data);
}

}  // namespace mmx::phy
