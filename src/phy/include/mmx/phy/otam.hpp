// Over-The-Air Modulation (paper §6.1) — the core contribution.
//
// The node never forms an ASK waveform: it transmits a pure carrier and
// the SPDT steers it between the two orthogonal beams per bit. The two
// beams see different channels (h1, h0), so the AP receives a carrier
// whose amplitude toggles — ASK created by the channel itself. With the
// joint scheme (§6.3), the VCO is simultaneously nudged so each beam's
// tone sits at a slightly different frequency, giving an FSK fallback.
#pragma once

#include <complex>

#include "mmx/dsp/types.hpp"
#include "mmx/phy/config.hpp"
#include "mmx/rf/spdt.hpp"

namespace mmx::phy {

/// The flat per-beam channel seen by one node (from
/// mmx::channel::compute_beam_gains).
struct OtamChannel {
  std::complex<double> h0;
  std::complex<double> h1;
};

/// Synthesize the complex baseband signal the AP receives while the node
/// OTAM-transmits `bits`:
///   symbol(b) = tone at f_b  *  (g_through * h_b + g_leak * h_{1-b})
/// with g_through/g_leak from the SPDT model (the off-beam leaks 65 dB
/// down). `tx_amplitude` scales the carrier (sqrt of radiated power).
/// Noise is the caller's job (mmx::dsp::add_awgn).
dsp::Cvec otam_synthesize(const Bits& bits, const PhyConfig& cfg, const OtamChannel& channel,
                          const rf::SpdtSwitch& spdt, double tx_amplitude = 1.0);

/// In-place form of `otam_synthesize`: resizes `out` to
/// bits.size() * cfg.samples_per_symbol and fills it, so repeated frames
/// of the same length reuse the buffer's capacity. The allocating wrapper
/// delegates here and produces identical samples.
void otam_synthesize_into(const Bits& bits, const PhyConfig& cfg, const OtamChannel& channel,
                          const rf::SpdtSwitch& spdt, dsp::Cvec& out, double tx_amplitude = 1.0);

/// Time-varying variant: one OtamChannel per symbol (a moving node or a
/// person crossing the LoS mid-frame). `channels.size()` must equal
/// `bits.size()`. This is the §1 "works in dynamic environments" claim
/// at sample level — note the FSK half is immune to mid-frame level
/// swaps because the tone-to-bit mapping lives at the transmitter.
dsp::Cvec otam_synthesize_varying(const Bits& bits, const PhyConfig& cfg,
                                  std::span<const OtamChannel> channels,
                                  const rf::SpdtSwitch& spdt, double tx_amplitude = 1.0);

/// The "without OTAM" baseline of §9.2: the node ASK-modulates at the
/// board and transmits everything through Beam 1 only; the AP sees
/// conventional ASK scaled by h1 alone.
dsp::Cvec fixed_beam_ask_synthesize(const Bits& bits, const PhyConfig& cfg,
                                    const OtamChannel& channel, double tx_amplitude = 1.0,
                                    double ask_floor = 0.1);

/// Ideal per-symbol amplitudes the AP should observe for bits 1/0 —
/// useful for link-budget style SNR computations without sample-level
/// simulation.
struct OtamLevels {
  double level1;  ///< |through*h1 + leak*h0| * tx_amplitude
  double level0;  ///< |through*h0 + leak*h1| * tx_amplitude
};
OtamLevels otam_levels(const OtamChannel& channel, const rf::SpdtSwitch& spdt,
                       double tx_amplitude = 1.0);

}  // namespace mmx::phy
