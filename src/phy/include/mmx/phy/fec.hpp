// Forward error correction.
//
// The paper notes the physical BER "can be reduced even further by using
// an error correction coding scheme" (§9.3). These are the codes a
// real deployment would bolt on: Hamming(7,4) for cheap single-error
// correction, repetition for brutally simple robustness, a block
// interleaver to break burst errors from blockage transients, and a
// K=3 rate-1/2 convolutional code with Viterbi decoding.
#pragma once

#include <cstddef>

#include "mmx/phy/config.hpp"

namespace mmx::phy {

// --- Hamming(7,4) ----------------------------------------------------------

/// Encode: every 4 data bits -> 7 coded bits. Input length must be a
/// multiple of 4.
Bits hamming74_encode(const Bits& data);

/// Decode with single-error correction per block. Input length must be a
/// multiple of 7.
Bits hamming74_decode(const Bits& coded);

// --- Repetition ------------------------------------------------------------

Bits repetition_encode(const Bits& data, std::size_t factor = 3);
/// Majority-vote decode; `factor` must be odd.
Bits repetition_decode(const Bits& coded, std::size_t factor = 3);

// --- Block interleaver -----------------------------------------------------

/// Write row-wise into a rows x cols matrix, read column-wise. Input
/// length must equal rows*cols.
Bits interleave(const Bits& bits, std::size_t rows, std::size_t cols);
Bits deinterleave(const Bits& bits, std::size_t rows, std::size_t cols);

// --- Convolutional (K=3, rate 1/2, polys 7/5) -------------------------------

/// Encode with 2 tail bits to flush the trellis: output is 2*(n+2) bits.
Bits conv_encode(const Bits& data);

/// Hard-decision Viterbi decode; input length must be even and >= 8.
/// Returns the data bits (tail removed).
Bits conv_decode(const Bits& coded);

/// Soft-decision Viterbi: each element of `llrs` is a log-likelihood
/// ratio (positive = bit 1 more likely); length must be even and >= 8.
/// Gains ~2 dB over hard decisions at moderate SNR.
Bits conv_decode_soft(const std::vector<double>& llrs);

}  // namespace mmx::phy
