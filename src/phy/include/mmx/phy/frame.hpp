// Packet framing: preamble | header | payload | CRC-16.
//
// "Similar to most wireless communication systems, each mmX's packet has
// known preamble bits" (paper §6.1). The header carries the node id
// (which also selects the FDM channel at the AP), a sequence number and
// the payload length.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mmx/phy/config.hpp"

namespace mmx::phy {

struct Frame {
  std::uint16_t node_id = 0;
  std::uint16_t seq = 0;
  std::vector<std::uint8_t> payload;

  bool operator==(const Frame&) const = default;
};

inline constexpr std::size_t kMaxPayloadBytes = 2048;

/// Bit/byte packing helpers (MSB first).
Bits bytes_to_bits(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> bits_to_bytes(const Bits& bits);

/// Serialize: preamble + header(6 bytes) + payload + crc16(2 bytes), as
/// bits ready for the OTAM transmitter.
Bits encode_frame(const Frame& frame, const Bits& preamble);

/// Parse bits positioned right AFTER the preamble. Returns nullopt on
/// truncation, bad length, or CRC failure.
std::optional<Frame> decode_frame(const Bits& bits);

/// Total frame length in bits for a payload size (incl. preamble).
std::size_t frame_length_bits(std::size_t payload_bytes, std::size_t preamble_bits);

}  // namespace mmx::phy
