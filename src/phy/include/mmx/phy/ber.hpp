// Analytic BER models ("standard BER tables", paper §9.3 and ref [43]).
//
// The paper converts measured SNR into BER through closed-form results
// for ASK/OOK; we implement those plus the FSK forms the joint scheme
// falls back on. All `snr_lin` arguments are linear average SNR (signal
// power / noise power in the symbol bandwidth) unless stated otherwise.
#pragma once

#include <cstddef>

namespace mmx::phy {

/// Gaussian tail Q(x) = P(N(0,1) > x), accurate over the full range via
/// erfc.
double q_function(double x);

/// Coherent OOK/ASK with matched threshold: Pb = Q(sqrt(snr_lin)).
/// (Levels 0/A, avg SNR = A^2/(2 sigma^2 * 2); algebra folds to Q(sqrt).)
double ber_ook_coherent(double snr_lin);

/// Non-coherent (envelope-detected) OOK: Pb ~ 0.5 exp(-snr_lin/2).
double ber_ook_noncoherent(double snr_lin);

/// Coherent binary FSK: Pb = Q(sqrt(snr_lin)).
double ber_bfsk_coherent(double snr_lin);

/// Non-coherent binary FSK: Pb = 0.5 exp(-snr_lin/2).
double ber_bfsk_noncoherent(double snr_lin);

/// Two-level ASK with arbitrary amplitudes (the OTAM case: levels |h1|,
/// |h0| times TX amplitude) under envelope detection approximated as
/// Gaussian: Pb = Q(|a1 - a0| / (2 sigma)), sigma^2 = noise_power_lin / 2
/// per quadrature, halved again by per-symbol averaging over n_avg
/// independent samples.
double ber_two_level(double amp1, double amp0, double noise_power_lin, std::size_t n_avg = 1);

/// Joint ASK-FSK selection decoding: the demodulator picks the better
/// branch, so Pb ~ min(ask, fsk) (paper §6.3's "always decodable" claim).
double ber_joint(double ask_ber, double fsk_ber);

/// Invert `ber_ook_coherent`: the linear SNR at which it hits `target`.
double snr_for_ber_ook(double target_ber);

/// BER floor/clamp used when reporting (the paper plots "<1e-15" as its
/// leftmost CDF bin).
inline constexpr double kBerFloor = 1e-15;

/// Residual bit error rate of Hamming(7,4) (with ideal interleaving)
/// over a channel with raw BER p: a block fails when >= 2 of its 7 bits
/// flip; surviving errors land on ~half the data bits of the block.
double ber_hamming74(double raw_ber);

/// First-event-bounded residual BER of the K=3 rate-1/2 convolutional
/// code (hard decisions, d_free = 5): union-bound leading term.
double ber_conv_k3(double raw_ber);

}  // namespace mmx::phy
