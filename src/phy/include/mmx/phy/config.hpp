// PHY-layer configuration shared by modulators and demodulators.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace mmx::phy {

struct PhyConfig {
  /// Symbol (bit) rate — one OTAM beam toggle per bit, capped at the
  /// SPDT's 100 MHz (paper §9.1).
  double symbol_rate_hz = 10e6;
  /// Complex baseband samples per symbol.
  std::size_t samples_per_symbol = 16;
  /// FSK tone offsets from channel centre for bits 0 / 1 (paper §6.3:
  /// the VCO is nudged so each beam carries a slightly different tone).
  /// Defaults put the tones 2 symbol-rates apart — orthogonal over one
  /// symbol and trivially separable by Goertzel.
  double fsk_freq0_hz = -10e6;
  double fsk_freq1_hz = +10e6;
  /// Fraction of each symbol trimmed at both ends before measuring
  /// (switch transition guard).
  double guard_frac = 0.15;

  double sample_rate_hz() const {
    return symbol_rate_hz * static_cast<double>(samples_per_symbol);
  }

  /// Field-wise equality — lets pipeline caches key on the config.
  friend bool operator==(const PhyConfig&, const PhyConfig&) = default;

  void validate() const {
    if (symbol_rate_hz <= 0.0) throw std::invalid_argument("PhyConfig: symbol rate must be > 0");
    if (samples_per_symbol < 4)
      throw std::invalid_argument("PhyConfig: need >= 4 samples per symbol");
    if (guard_frac < 0.0 || guard_frac >= 0.5)
      throw std::invalid_argument("PhyConfig: guard_frac must be in [0, 0.5)");
    const double nyq = sample_rate_hz() / 2.0;
    if (fsk_freq0_hz <= -nyq || fsk_freq0_hz >= nyq || fsk_freq1_hz <= -nyq ||
        fsk_freq1_hz >= nyq)
      throw std::invalid_argument("PhyConfig: FSK tones exceed Nyquist");
    if (fsk_freq0_hz == fsk_freq1_hz)
      throw std::invalid_argument("PhyConfig: FSK tones must differ");
  }
};

using Bits = std::vector<int>;  // each element 0 or 1

}  // namespace mmx::phy
