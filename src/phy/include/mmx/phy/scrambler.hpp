// Additive (synchronous) LFSR scrambler.
//
// OTAM's envelope detector learns its threshold from recent symbols; a
// long run of identical bits (e.g. a black video frame) starves one of
// the two training classes and lets the AGC drift. Whitening the payload
// with a PRBS guarantees balanced runs regardless of content — standard
// practice the real deployment would adopt (the preamble is NOT
// scrambled, it must stay a known pattern).
#pragma once

#include <cstdint>

#include "mmx/phy/config.hpp"

namespace mmx::phy {

/// PRBS-7 style scrambler: x^7 + x^6 + 1, non-zero 7-bit seed.
class Scrambler {
 public:
  explicit Scrambler(std::uint8_t seed = 0x5A);

  /// Next PRBS bit (advances the register).
  int next_bit();

  /// XOR a bit stream with the PRBS (self-inverse with the same seed).
  Bits process(const Bits& bits);

  void reset(std::uint8_t seed);
  std::uint8_t state() const { return state_; }

 private:
  std::uint8_t state_;
};

/// Convenience one-shots (scramble == descramble).
Bits scramble(const Bits& bits, std::uint8_t seed = 0x5A);
inline Bits descramble(const Bits& bits, std::uint8_t seed = 0x5A) {
  return scramble(bits, seed);
}

/// Longest run of identical bits — the whitening metric.
std::size_t longest_run(const Bits& bits);

}  // namespace mmx::phy
