// Joint ASK-FSK demodulation (paper §6.3, Fig. 9).
//
// Per symbol the AP measures the carrier envelope (ASK statistic) and the
// tone powers at the two FSK frequencies (FSK statistic). When the two
// beams' path losses differ, the envelope decides (Fig. 9a); in the <10%
// of placements where they are nearly equal, the tone frequency decides
// (Fig. 9b). The demodulator fuses both with reliability weights learned
// from the known preamble, so "the AP can always decode the signal".
#pragma once

#include "mmx/dsp/types.hpp"
#include "mmx/dsp/workspace.hpp"
#include "mmx/phy/ask.hpp"
#include "mmx/phy/config.hpp"
#include "mmx/phy/fsk.hpp"

namespace mmx::phy {

enum class DecisionMode { kAsk, kFsk, kJoint };

struct JointDecision {
  Bits bits;
  DecisionMode mode = DecisionMode::kJoint;
  double ask_separation = 0.0;  ///< envelope-level d' (from prefix or clustering)
  double fsk_margin = 0.0;      ///< mean normalized tone-power margin
  bool ask_inverted = false;    ///< ASK polarity was flipped (blocked LoS case)
};

/// Demodulate a symbol-aligned capture. `known_prefix` (the preamble bits
/// at the start of the capture) trains the ASK levels/polarity and the
/// per-branch reliabilities; it may be empty, in which case the branches
/// self-calibrate (2-means envelope clustering; FSK needs no training —
/// the tone-to-bit mapping is fixed by the transmitter's VCO).
JointDecision joint_demodulate(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                               const Bits& known_prefix = {});

/// Allocation-free form of `joint_demodulate`. The per-symbol envelope and
/// tone-power statistics are computed exactly once and shared between the
/// ASK branch, the FSK branch, and the fusion loop (the standalone
/// demodulators each recompute their own). `bank` must be
/// fsk_tone_bank(cfg); `ask_scratch`/`fsk_scratch` receive the branch
/// decisions and reuse their buffers across calls. Numerically identical
/// to the wrapper.
void joint_demodulate_into(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                           const Bits& known_prefix, const dsp::GoertzelBank& bank,
                           dsp::DspWorkspace& ws, AskDecision& ask_scratch,
                           FskDecision& fsk_scratch, JointDecision& d);

}  // namespace mmx::phy
