// Coding profiles: the FEC pipeline a frame's body runs through.
//
// §9.3's closing remark — the physical BER "can be reduced even further
// by using an error correction coding scheme" — realized as selectable
// profiles. The preamble is never coded (it must stay a known pattern);
// the header+payload+CRC body is scrambled (whitened) and FEC-encoded.
#pragma once

#include "mmx/phy/config.hpp"

namespace mmx::phy {

enum class CodingProfile {
  kNone,          ///< raw body (rate 1)
  kHamming,       ///< scramble + Hamming(7,4) + 14x7 block interleave (rate 4/7)
  kConvolutional, ///< scramble + K=3 rate-1/2 Viterbi
};

/// Encode a frame body (everything after the preamble) under a profile.
Bits encode_body(const Bits& body, CodingProfile profile);

/// Invert `encode_body`. The input length must be consistent with the
/// profile's block structure (callers pass whole received bodies; excess
/// trailing bits from padding are removed using the embedded length).
Bits decode_body(const Bits& coded, CodingProfile profile);

/// Coded length in bits for a given body length (includes padding and
/// the 16-bit length prefix added by the coded profiles).
std::size_t coded_length_bits(std::size_t body_bits, CodingProfile profile);

/// Rate of the profile (information bits per channel bit), ignoring the
/// small length-prefix overhead.
double coding_rate(CodingProfile profile);

}  // namespace mmx::phy
