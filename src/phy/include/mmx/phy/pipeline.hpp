// Reusable frame-pipeline context — the zero-allocation fast path for
// Monte-Carlo loops (docs/DSP_FASTPATH.md).
//
// A trial of the fig. 10–13 experiments is synthesize → add noise →
// demodulate. Run through the free functions, every stage allocates:
// the TX waveform, the noise vector, the envelope and tone-power arrays,
// the decision bit vectors. A FramePipeline owns all of those buffers
// (plus the two-tone Goertzel bank and a DspWorkspace for kernel
// scratch), so after the first trial warms the pool a steady-state loop
// performs zero heap allocations — `workspace().alloc_events()` is
// observable and pinned by tests/phy/pipeline_test.cpp.
//
// Results are numerically identical to the free-function path; the
// pipeline only removes redundant work (allocations, and the joint
// demodulator's duplicated per-symbol statistics). One pipeline per
// thread (see thread_pipeline) keeps SweepRunner trials bit-identical at
// any thread count.
#pragma once

#include <span>

#include "mmx/common/rng.hpp"
#include "mmx/dsp/goertzel.hpp"
#include "mmx/dsp/types.hpp"
#include "mmx/dsp/workspace.hpp"
#include "mmx/phy/ask.hpp"
#include "mmx/phy/config.hpp"
#include "mmx/phy/fsk.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/otam.hpp"
#include "mmx/rf/spdt.hpp"

namespace mmx::phy {

class FramePipeline {
 public:
  explicit FramePipeline(const PhyConfig& cfg);
  FramePipeline(const FramePipeline&) = delete;
  FramePipeline& operator=(const FramePipeline&) = delete;

  const PhyConfig& config() const { return cfg_; }

  /// The current frame (TX output after a synthesize/modulate call, RX
  /// capture after add_noise*). Valid until the next synthesize/load.
  std::span<const dsp::Complex> rx() const { return rx_; }

  // --- TX: fill the internal frame buffer (capacity reused) ------------
  void synthesize_otam(const Bits& bits, const OtamChannel& channel,
                       const rf::SpdtSwitch& spdt, double tx_amplitude = 1.0);
  void modulate_ask(const Bits& bits, AskLevels levels = {});
  void modulate_fsk(const Bits& bits);
  /// Copy an externally produced capture into the frame buffer.
  void load(std::span<const dsp::Complex> capture);

  // --- Channel ---------------------------------------------------------
  void add_noise(double power_lin, Rng& rng);
  void add_noise_snr(double snr_db, Rng& rng);

  // --- RX: decisions live in the pipeline, reused across calls ---------
  const AskDecision& demodulate_ask(const Bits& known_prefix = {});
  const FskDecision& demodulate_fsk();
  const JointDecision& demodulate_joint(const Bits& known_prefix = {});

  /// Kernel scratch arena (exposed so callers can watch alloc_events()).
  dsp::DspWorkspace& workspace() { return ws_; }

 private:
  PhyConfig cfg_;
  dsp::GoertzelBank bank_;  // {fsk_freq0_hz, fsk_freq1_hz}
  dsp::DspWorkspace ws_;
  dsp::Cvec rx_;
  AskDecision ask_;
  FskDecision fsk_;
  JointDecision joint_;
  // Branch scratch for demodulate_joint (kept separate from ask_/fsk_ so
  // a joint call does not clobber standalone-branch results).
  AskDecision joint_ask_;
  FskDecision joint_fsk_;
};

/// This thread's pipeline for `cfg`: repeat calls with an equal config
/// return the same (warm) instance, so SweepRunner trial bodies can grab
/// a pipeline by config without threading state through the closure.
FramePipeline& thread_pipeline(const PhyConfig& cfg);

}  // namespace mmx::phy
