// Conventional ASK (OOK-style) modulation — the "without OTAM" baseline
// where the node modulates at the board and transmits on one fixed beam
// (paper §9.2 scenario 1), and the ASK half of the joint demodulator.
#pragma once

#include "mmx/dsp/types.hpp"
#include "mmx/phy/config.hpp"

namespace mmx::phy {

struct AskLevels {
  double amp1 = 1.0;   ///< carrier amplitude for bit 1
  double amp0 = 0.1;   ///< carrier amplitude for bit 0 (non-zero OOK floor)
};

/// Generate the complex-baseband ASK waveform for a bit stream at the
/// channel-centre tone (0 Hz offset), phase-continuous.
dsp::Cvec ask_modulate(const Bits& bits, const PhyConfig& cfg, AskLevels levels = {});

struct AskDecision {
  Bits bits;
  double threshold = 0.0;     ///< amplitude threshold used
  double separation = 0.0;    ///< |mu1 - mu0| / (sigma1 + sigma0 + eps): quality
  bool inverted = false;      ///< true if level mapping was flipped
};

/// Envelope-detect and threshold. With `known_prefix` non-empty, the
/// threshold and polarity are learned from those leading training bits
/// (OTAM's preamble mechanism, §6.1); otherwise 2-means clustering on the
/// symbol envelopes decides, and polarity defaults to bright=1.
AskDecision ask_demodulate(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                           const Bits& known_prefix = {});

}  // namespace mmx::phy
