// Conventional ASK (OOK-style) modulation — the "without OTAM" baseline
// where the node modulates at the board and transmits on one fixed beam
// (paper §9.2 scenario 1), and the ASK half of the joint demodulator.
#pragma once

#include "mmx/dsp/types.hpp"
#include "mmx/dsp/workspace.hpp"
#include "mmx/phy/config.hpp"

namespace mmx::phy {

struct AskLevels {
  double amp1 = 1.0;   ///< carrier amplitude for bit 1
  double amp0 = 0.1;   ///< carrier amplitude for bit 0 (non-zero OOK floor)
};

/// Generate the complex-baseband ASK waveform for a bit stream at the
/// channel-centre tone (0 Hz offset), phase-continuous.
dsp::Cvec ask_modulate(const Bits& bits, const PhyConfig& cfg, AskLevels levels = {});

/// In-place form of `ask_modulate`: resizes `out` and fills it, reusing
/// capacity across frames. Identical samples to the wrapper.
void ask_modulate_into(const Bits& bits, const PhyConfig& cfg, dsp::Cvec& out,
                       AskLevels levels = {});

struct AskDecision {
  Bits bits;
  double threshold = 0.0;     ///< amplitude threshold used
  double separation = 0.0;    ///< |mu1 - mu0| / (sigma1 + sigma0 + eps): quality
  bool inverted = false;      ///< true if level mapping was flipped
};

/// Envelope-detect and threshold. With `known_prefix` non-empty, the
/// threshold and polarity are learned from those leading training bits
/// (OTAM's preamble mechanism, §6.1); otherwise 2-means clustering on the
/// symbol envelopes decides, and polarity defaults to bright=1.
AskDecision ask_demodulate(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                           const Bits& known_prefix = {});

/// Decision core on precomputed per-symbol envelopes (see
/// dsp::symbol_envelopes). `d` is fully overwritten; its bits capacity is
/// reused. Identical to ask_demodulate fed the same capture.
void ask_decide(std::span<const double> env, const Bits& known_prefix, AskDecision& d);

/// Allocation-free form of `ask_demodulate`: envelope scratch comes from
/// `ws`, the decision lands in `d` (buffers reused across calls).
void ask_demodulate_into(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                         const Bits& known_prefix, dsp::DspWorkspace& ws, AskDecision& d);

}  // namespace mmx::phy
