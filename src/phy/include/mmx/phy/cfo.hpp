// Carrier frequency offset (CFO) estimation and correction.
//
// The node's free-running VCO lands each tone only as accurately as its
// tuning DAC and temperature allow — hundreds of kHz of offset are
// normal (Fig. 7's Kv is ~200 MHz/V, so 1 mV of drift is 200 kHz). The
// AP estimates the common offset from the preamble's known tone plan and
// de-rotates the capture before demodulation.
#pragma once

#include <optional>

#include "mmx/dsp/types.hpp"
#include "mmx/phy/config.hpp"

namespace mmx::phy {

struct CfoEstimate {
  double offset_hz = 0.0;
  /// Mean tone-fit residual [Hz] — large residual means the capture did
  /// not look like the expected preamble (estimate untrustworthy).
  double residual_hz = 0.0;
};

/// Estimate the common frequency offset from a symbol-aligned capture
/// whose first `prefix.size()` symbols are known training bits: each
/// training symbol's dominant tone is measured and compared with the
/// tone it should carry; the power-weighted mean mismatch is the CFO.
/// Requires at least 4 training symbols and >= 8 samples per symbol.
CfoEstimate estimate_cfo(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                         const Bits& prefix);

/// De-rotate a capture by `offset_hz`.
dsp::Cvec correct_cfo(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                      double offset_hz);

}  // namespace mmx::phy
