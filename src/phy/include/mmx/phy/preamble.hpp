// Preamble design and frame synchronization.
//
// Each mmX packet begins with known training bits (paper §6.1) that let
// the AP (a) find the symbol boundary, (b) learn the two OTAM amplitude
// levels, and (c) resolve the polarity inversion that happens when the
// LoS is blocked (Fig. 4b).
#pragma once

#include <optional>

#include "mmx/dsp/types.hpp"
#include "mmx/phy/config.hpp"

namespace mmx::phy {

/// The standard mmX preamble: 16 bits with a balanced, low-autocorrelation
/// pattern (both bit values well represented so level training works).
const Bits& default_preamble();

struct SyncResult {
  std::size_t sample_offset = 0;  ///< start of the preamble in the capture
  bool inverted = false;          ///< envelope polarity was flipped
  double correlation = 0.0;       ///< |normalized correlation| at the peak, in [0,1]
};

/// Locate the preamble by sliding a symbol-spaced envelope correlator
/// over the capture. Searches offsets [0, max_offset]; returns nullopt if
/// the best |correlation| is below `min_correlation`.
std::optional<SyncResult> find_preamble(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                                        const Bits& preamble, std::size_t max_offset,
                                        double min_correlation = 0.6);

/// Streaming variant: return the FIRST offset whose local correlation
/// peak clears `min_correlation` (the maximum within one symbol of the
/// first crossing, so the estimate still lands on the peak). A stream
/// receiver uses this so frame k is found before frame k+1.
std::optional<SyncResult> find_preamble_first(std::span<const dsp::Complex> rx,
                                              const PhyConfig& cfg, const Bits& preamble,
                                              std::size_t max_offset,
                                              double min_correlation = 0.6);

}  // namespace mmx::phy
