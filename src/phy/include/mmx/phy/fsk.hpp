// Binary FSK — the second half of mmX's joint ASK-FSK modulation
// (paper §6.3). The node realizes it by nudging the VCO tuning voltage
// per beam, so bit 0 and bit 1 ride slightly different carrier offsets.
#pragma once

#include "mmx/dsp/goertzel.hpp"
#include "mmx/dsp/types.hpp"
#include "mmx/dsp/workspace.hpp"
#include "mmx/phy/config.hpp"

namespace mmx::phy {

/// Phase-continuous BFSK waveform: bit 0 -> cfg.fsk_freq0_hz,
/// bit 1 -> cfg.fsk_freq1_hz, both at unit amplitude.
dsp::Cvec fsk_modulate(const Bits& bits, const PhyConfig& cfg);

/// In-place form of `fsk_modulate`: resizes `out` and fills it, reusing
/// capacity across frames. Identical samples to the wrapper.
void fsk_modulate_into(const Bits& bits, const PhyConfig& cfg, dsp::Cvec& out);

struct FskDecision {
  Bits bits;
  /// Mean per-symbol tone-power margin |P1 - P0| / (P1 + P0): quality in
  /// [0, 1]; ~1 means clean discrimination.
  double margin = 0.0;
};

/// Build the two-tone Goertzel bank matching `cfg` (bin 0 = fsk_freq0_hz,
/// bin 1 = fsk_freq1_hz). Demodulators that run many frames at one config
/// construct this once and pass it in.
dsp::GoertzelBank fsk_tone_bank(const PhyConfig& cfg);

/// Measurement core: per-symbol Goertzel powers at the two FSK tones,
/// both swept in a single pass over each (guard-trimmed) symbol via
/// `bank` (must be fsk_tone_bank(cfg)). p0/p1 hold one value per full
/// symbol. Numerically identical to two independent goertzel_power calls.
void fsk_measure_tones(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                       const dsp::GoertzelBank& bank, std::span<double> p0,
                       std::span<double> p1);

/// Decision core on precomputed per-symbol tone powers. `d.bits` capacity
/// is reused across calls.
void fsk_decide(std::span<const double> p0, std::span<const double> p1, FskDecision& d);

/// Non-coherent tone discrimination: per-symbol Goertzel power at the two
/// tone frequencies, larger wins. Amplitude-agnostic — this is what
/// rescues OTAM when the two beams' path losses happen to be equal
/// (Fig. 9b).
FskDecision fsk_demodulate(std::span<const dsp::Complex> rx, const PhyConfig& cfg);

/// Allocation-free form of `fsk_demodulate`: tone-power scratch comes from
/// `ws`, the decision lands in `d` (buffers reused across calls).
void fsk_demodulate_into(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                         const dsp::GoertzelBank& bank, dsp::DspWorkspace& ws,
                         FskDecision& d);

}  // namespace mmx::phy
