// Binary FSK — the second half of mmX's joint ASK-FSK modulation
// (paper §6.3). The node realizes it by nudging the VCO tuning voltage
// per beam, so bit 0 and bit 1 ride slightly different carrier offsets.
#pragma once

#include "mmx/dsp/types.hpp"
#include "mmx/phy/config.hpp"

namespace mmx::phy {

/// Phase-continuous BFSK waveform: bit 0 -> cfg.fsk_freq0_hz,
/// bit 1 -> cfg.fsk_freq1_hz, both at unit amplitude.
dsp::Cvec fsk_modulate(const Bits& bits, const PhyConfig& cfg);

struct FskDecision {
  Bits bits;
  /// Mean per-symbol tone-power margin |P1 - P0| / (P1 + P0): quality in
  /// [0, 1]; ~1 means clean discrimination.
  double margin = 0.0;
};

/// Non-coherent tone discrimination: per-symbol Goertzel power at the two
/// tone frequencies, larger wins. Amplitude-agnostic — this is what
/// rescues OTAM when the two beams' path losses happen to be equal
/// (Fig. 9b).
FskDecision fsk_demodulate(std::span<const dsp::Complex> rx, const PhyConfig& cfg);

}  // namespace mmx::phy
