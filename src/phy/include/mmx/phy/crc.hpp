// Cyclic redundancy checks for mmX frames.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mmx::phy {

/// CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection.
std::uint16_t crc16(std::span<const std::uint8_t> data);

/// CRC-32 (IEEE 802.3): reflected poly 0xEDB88320, init/final 0xFFFFFFFF.
std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace mmx::phy
