#include "mmx/phy/frame.hpp"

#include <stdexcept>

#include "mmx/phy/crc.hpp"

namespace mmx::phy {
namespace {

constexpr std::size_t kHeaderBytes = 6;  // node_id(2) + seq(2) + len(2)
constexpr std::size_t kCrcBytes = 2;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t pos) {
  return static_cast<std::uint16_t>((in[pos] << 8) | in[pos + 1]);
}

}  // namespace

Bits bytes_to_bits(std::span<const std::uint8_t> bytes) {
  Bits bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 7; i >= 0; --i) bits.push_back((b >> i) & 1);
  }
  return bits;
}

std::vector<std::uint8_t> bits_to_bytes(const Bits& bits) {
  if (bits.size() % 8 != 0) throw std::invalid_argument("bits_to_bytes: length not a multiple of 8");
  std::vector<std::uint8_t> bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != 0 && bits[i] != 1) throw std::invalid_argument("bits_to_bytes: bits must be 0/1");
    bytes[i / 8] = static_cast<std::uint8_t>((bytes[i / 8] << 1) | bits[i]);
  }
  return bytes;
}

Bits encode_frame(const Frame& frame, const Bits& preamble) {
  if (frame.payload.size() > kMaxPayloadBytes)
    throw std::invalid_argument("encode_frame: payload too large");
  std::vector<std::uint8_t> body;
  body.reserve(kHeaderBytes + frame.payload.size() + kCrcBytes);
  put_u16(body, frame.node_id);
  put_u16(body, frame.seq);
  put_u16(body, static_cast<std::uint16_t>(frame.payload.size()));
  body.insert(body.end(), frame.payload.begin(), frame.payload.end());
  put_u16(body, crc16(body));

  Bits bits = preamble;
  const Bits body_bits = bytes_to_bits(body);
  bits.insert(bits.end(), body_bits.begin(), body_bits.end());
  return bits;
}

std::optional<Frame> decode_frame(const Bits& bits) {
  if (bits.size() < (kHeaderBytes + kCrcBytes) * 8) return std::nullopt;
  // Header first: read the length, then re-slice.
  const Bits header_bits(bits.begin(), bits.begin() + kHeaderBytes * 8);
  const auto header = bits_to_bytes(header_bits);
  const std::uint16_t len = get_u16(header, 4);
  if (len > kMaxPayloadBytes) return std::nullopt;
  const std::size_t total_bits = (kHeaderBytes + len + kCrcBytes) * 8;
  if (bits.size() < total_bits) return std::nullopt;

  const Bits body_bits(bits.begin(), bits.begin() + total_bits);
  const auto body = bits_to_bytes(body_bits);
  const std::span<const std::uint8_t> without_crc(body.data(), body.size() - kCrcBytes);
  const std::uint16_t expect = get_u16(body, body.size() - kCrcBytes);
  if (crc16(without_crc) != expect) return std::nullopt;

  Frame f;
  f.node_id = get_u16(body, 0);
  f.seq = get_u16(body, 2);
  f.payload.assign(body.begin() + kHeaderBytes, body.end() - kCrcBytes);
  return f;
}

std::size_t frame_length_bits(std::size_t payload_bytes, std::size_t preamble_bits) {
  return preamble_bits + (kHeaderBytes + payload_bytes + kCrcBytes) * 8;
}

}  // namespace mmx::phy
