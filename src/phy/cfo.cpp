#include "mmx/phy/cfo.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/dsp/fft.hpp"
#include "mmx/dsp/resample.hpp"

namespace mmx::phy {

CfoEstimate estimate_cfo(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                         const Bits& prefix) {
  cfg.validate();
  if (prefix.size() < 4) throw std::invalid_argument("estimate_cfo: need >= 4 training bits");
  if (cfg.samples_per_symbol < 8)
    throw std::invalid_argument("estimate_cfo: need >= 8 samples per symbol");
  const std::size_t sps = cfg.samples_per_symbol;
  if (rx.size() < prefix.size() * sps)
    throw std::invalid_argument("estimate_cfo: capture shorter than the training prefix");

  const double fs = cfg.sample_rate_hz();
  double weighted_offset = 0.0;
  double weight_sum = 0.0;
  double residual_acc = 0.0;
  std::size_t measured = 0;

  for (std::size_t s = 0; s < prefix.size(); ++s) {
    const std::span<const dsp::Complex> sym = rx.subspan(s * sps, sps);
    const double power = dsp::mean_power(sym);
    if (power <= 0.0) continue;
    const double expected = prefix[s] ? cfg.fsk_freq1_hz : cfg.fsk_freq0_hz;
    const double seen = dsp::estimate_tone_frequency(sym, fs);
    const double delta = seen - expected;
    // A short symbol's FFT bin is coarse; weight by symbol power so weak
    // (possibly blocked-beam) symbols don't dominate.
    weighted_offset += power * delta;
    weight_sum += power;
    ++measured;
  }
  if (weight_sum <= 0.0 || measured < 4)
    throw std::invalid_argument("estimate_cfo: training symbols carry no power");

  CfoEstimate est;
  est.offset_hz = weighted_offset / weight_sum;
  for (std::size_t s = 0; s < prefix.size(); ++s) {
    const std::span<const dsp::Complex> sym = rx.subspan(s * sps, sps);
    if (dsp::mean_power(sym) <= 0.0) continue;
    const double expected = prefix[s] ? cfg.fsk_freq1_hz : cfg.fsk_freq0_hz;
    const double seen = dsp::estimate_tone_frequency(sym, fs);
    residual_acc += std::abs(seen - expected - est.offset_hz);
  }
  est.residual_hz = residual_acc / static_cast<double>(measured);
  return est;
}

dsp::Cvec correct_cfo(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                      double offset_hz) {
  return dsp::frequency_shift(rx, -offset_hz, cfg.sample_rate_hz());
}

}  // namespace mmx::phy
