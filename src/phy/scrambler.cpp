#include "mmx/phy/scrambler.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmx::phy {

Scrambler::Scrambler(std::uint8_t seed) { reset(seed); }

void Scrambler::reset(std::uint8_t seed) {
  state_ = seed & 0x7F;
  if (state_ == 0) throw std::invalid_argument("Scrambler: seed must be non-zero (7 bits)");
}

int Scrambler::next_bit() {
  // x^7 + x^6 + 1: feedback = bit6 ^ bit5 (0-indexed taps of a 7-bit reg).
  const int out = (state_ >> 6) & 1;
  const int fb = ((state_ >> 6) ^ (state_ >> 5)) & 1;
  state_ = static_cast<std::uint8_t>(((state_ << 1) | fb) & 0x7F);
  return out;
}

Bits Scrambler::process(const Bits& bits) {
  Bits out;
  out.reserve(bits.size());
  for (int b : bits) {
    if (b != 0 && b != 1) throw std::invalid_argument("Scrambler: bits must be 0/1");
    out.push_back(b ^ next_bit());
  }
  return out;
}

Bits scramble(const Bits& bits, std::uint8_t seed) {
  Scrambler s(seed);
  return s.process(bits);
}

std::size_t longest_run(const Bits& bits) {
  std::size_t best = 0;
  std::size_t run = 0;
  int prev = -1;
  for (int b : bits) {
    run = (b == prev) ? run + 1 : 1;
    prev = b;
    best = std::max(best, run);
  }
  return best;
}

}  // namespace mmx::phy
