#include "mmx/phy/fec.hpp"

#include <array>
#include <limits>
#include <stdexcept>

namespace mmx::phy {
namespace {

void check_binary(const Bits& bits) {
  for (int b : bits)
    if (b != 0 && b != 1) throw std::invalid_argument("FEC: bits must be 0/1");
}

}  // namespace

Bits hamming74_encode(const Bits& data) {
  check_binary(data);
  if (data.size() % 4 != 0)
    throw std::invalid_argument("hamming74_encode: length must be a multiple of 4");
  Bits out;
  out.reserve(data.size() / 4 * 7);
  for (std::size_t i = 0; i < data.size(); i += 4) {
    const int d0 = data[i];
    const int d1 = data[i + 1];
    const int d2 = data[i + 2];
    const int d3 = data[i + 3];
    // Systematic layout [d0 d1 d2 d3 p0 p1 p2].
    const int p0 = d0 ^ d1 ^ d2;
    const int p1 = d1 ^ d2 ^ d3;
    const int p2 = d0 ^ d1 ^ d3;
    out.insert(out.end(), {d0, d1, d2, d3, p0, p1, p2});
  }
  return out;
}

Bits hamming74_decode(const Bits& coded) {
  check_binary(coded);
  if (coded.size() % 7 != 0)
    throw std::invalid_argument("hamming74_decode: length must be a multiple of 7");
  Bits out;
  out.reserve(coded.size() / 7 * 4);
  for (std::size_t i = 0; i < coded.size(); i += 7) {
    std::array<int, 7> w{coded[i],     coded[i + 1], coded[i + 2], coded[i + 3],
                         coded[i + 4], coded[i + 5], coded[i + 6]};
    const int s0 = w[0] ^ w[1] ^ w[2] ^ w[4];
    const int s1 = w[1] ^ w[2] ^ w[3] ^ w[5];
    const int s2 = w[0] ^ w[1] ^ w[3] ^ w[6];
    const int syndrome = (s2 << 2) | (s1 << 1) | s0;
    // Syndrome -> error position for [d0 d1 d2 d3 p0 p1 p2]:
    // d0: s0,s2 -> 101b=5; d1: s0,s1,s2 -> 111b=7; d2: s0,s1 -> 011b=3;
    // d3: s1,s2 -> 110b=6; p0: 001b=1; p1: 010b=2; p2: 100b=4.
    static constexpr std::array<int, 8> kErrPos = {-1, 4, 5, 2, 6, 0, 3, 1};
    const int pos = kErrPos[static_cast<std::size_t>(syndrome)];
    if (pos >= 0) w[static_cast<std::size_t>(pos)] ^= 1;
    out.insert(out.end(), {w[0], w[1], w[2], w[3]});
  }
  return out;
}

Bits repetition_encode(const Bits& data, std::size_t factor) {
  check_binary(data);
  if (factor == 0 || factor % 2 == 0)
    throw std::invalid_argument("repetition_encode: factor must be odd");
  Bits out;
  out.reserve(data.size() * factor);
  for (int b : data)
    for (std::size_t k = 0; k < factor; ++k) out.push_back(b);
  return out;
}

Bits repetition_decode(const Bits& coded, std::size_t factor) {
  check_binary(coded);
  if (factor == 0 || factor % 2 == 0)
    throw std::invalid_argument("repetition_decode: factor must be odd");
  if (coded.size() % factor != 0)
    throw std::invalid_argument("repetition_decode: length not a multiple of factor");
  Bits out;
  out.reserve(coded.size() / factor);
  for (std::size_t i = 0; i < coded.size(); i += factor) {
    std::size_t ones = 0;
    for (std::size_t k = 0; k < factor; ++k) ones += static_cast<std::size_t>(coded[i + k]);
    out.push_back(ones > factor / 2 ? 1 : 0);
  }
  return out;
}

Bits interleave(const Bits& bits, std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("interleave: rows/cols must be > 0");
  if (bits.size() != rows * cols)
    throw std::invalid_argument("interleave: length must equal rows*cols");
  Bits out;
  out.reserve(bits.size());
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) out.push_back(bits[r * cols + c]);
  return out;
}

Bits deinterleave(const Bits& bits, std::size_t rows, std::size_t cols) {
  // Reading column-wise is its own inverse with swapped dimensions.
  return interleave(bits, cols, rows);
}

namespace {

/// K=3 feed-forward encoder, generators g0 = 111 (7), g1 = 101 (5).
inline std::pair<int, int> conv_output(int state, int bit) {
  const int reg = (bit << 2) | state;  // [newest b, s1, s0]
  const int o0 = ((reg >> 2) ^ (reg >> 1) ^ reg) & 1;  // 7
  const int o1 = ((reg >> 2) ^ reg) & 1;               // 5
  return {o0, o1};
}

inline int conv_next_state(int state, int bit) { return ((bit << 1) | (state >> 1)); }

}  // namespace

Bits conv_encode(const Bits& data) {
  check_binary(data);
  Bits out;
  out.reserve(2 * (data.size() + 2));
  int state = 0;
  auto push = [&](int bit) {
    const auto [o0, o1] = conv_output(state, bit);
    out.push_back(o0);
    out.push_back(o1);
    state = conv_next_state(state, bit);
  };
  for (int b : data) push(b);
  push(0);  // flush tail
  push(0);
  return out;
}

namespace {

/// Shared Viterbi trellis over per-(step, output-bit) branch costs.
/// `cost(t, which, bit_value)` returns the cost of output bit `which`
/// of step `t` taking the value `bit_value`.
template <typename CostFn>
Bits viterbi_decode(std::size_t steps, CostFn cost) {
  constexpr int kStates = 4;
  constexpr double kInf = std::numeric_limits<double>::max() / 4.0;

  std::vector<std::array<double, kStates>> metric(steps + 1);
  std::vector<std::array<int, kStates>> prev_state(steps + 1);
  std::vector<std::array<int, kStates>> prev_bit(steps + 1);
  metric[0].fill(kInf);
  metric[0][0] = 0.0;

  for (std::size_t t = 0; t < steps; ++t) {
    metric[t + 1].fill(kInf);
    for (int s = 0; s < kStates; ++s) {
      if (metric[t][static_cast<std::size_t>(s)] >= kInf) continue;
      for (int b = 0; b <= 1; ++b) {
        const auto [o0, o1] = conv_output(s, b);
        const int ns = conv_next_state(s, b);
        const double c =
            metric[t][static_cast<std::size_t>(s)] + cost(t, 0, o0) + cost(t, 1, o1);
        if (c < metric[t + 1][static_cast<std::size_t>(ns)]) {
          metric[t + 1][static_cast<std::size_t>(ns)] = c;
          prev_state[t + 1][static_cast<std::size_t>(ns)] = s;
          prev_bit[t + 1][static_cast<std::size_t>(ns)] = b;
        }
      }
    }
  }

  // Tail forces the final state to 0.
  int state = 0;
  Bits reversed;
  reversed.reserve(steps);
  for (std::size_t t = steps; t > 0; --t) {
    reversed.push_back(prev_bit[t][static_cast<std::size_t>(state)]);
    state = prev_state[t][static_cast<std::size_t>(state)];
  }
  Bits out(reversed.rbegin(), reversed.rend());
  out.resize(out.size() - 2);  // drop the flush bits
  return out;
}

}  // namespace

Bits conv_decode(const Bits& coded) {
  check_binary(coded);
  if (coded.size() < 8 || coded.size() % 2 != 0)
    throw std::invalid_argument("conv_decode: length must be even and >= 8");
  return viterbi_decode(coded.size() / 2, [&](std::size_t t, int which, int bit) {
    return (coded[2 * t + static_cast<std::size_t>(which)] != bit) ? 1.0 : 0.0;
  });
}

Bits conv_decode_soft(const std::vector<double>& llrs) {
  if (llrs.size() < 8 || llrs.size() % 2 != 0)
    throw std::invalid_argument("conv_decode_soft: length must be even and >= 8");
  // Branch cost of hypothesizing `bit`: -bit_sign * llr (favour the sign
  // the channel reported, weighted by confidence).
  return viterbi_decode(llrs.size() / 2, [&](std::size_t t, int which, int bit) {
    const double llr = llrs[2 * t + static_cast<std::size_t>(which)];
    return (bit == 1) ? -llr : llr;
  });
}

}  // namespace mmx::phy
