#include "mmx/phy/crc.hpp"

namespace mmx::phy {

std::uint16_t crc16(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace mmx::phy
