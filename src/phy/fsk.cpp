#include "mmx/phy/fsk.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/dsp/tone.hpp"

namespace mmx::phy {

void fsk_modulate_into(const Bits& bits, const PhyConfig& cfg, dsp::Cvec& out) {
  cfg.validate();
  dsp::Nco nco(cfg.sample_rate_hz(), cfg.fsk_freq0_hz);
  out.resize(bits.size() * cfg.samples_per_symbol);  // mmx-analyze: allow(hot-path-alloc) -- out-param keeps its capacity across frames; steady state allocates nothing (pipeline_test)
  std::size_t idx = 0;
  for (int b : bits) {
    if (b != 0 && b != 1) throw std::invalid_argument("fsk_modulate: bits must be 0/1");
    nco.set_frequency(b ? cfg.fsk_freq1_hz : cfg.fsk_freq0_hz);
    nco.generate_into(std::span<dsp::Complex>(out.data() + idx, cfg.samples_per_symbol));
    idx += cfg.samples_per_symbol;
  }
}

dsp::Cvec fsk_modulate(const Bits& bits, const PhyConfig& cfg) {
  dsp::Cvec out;
  fsk_modulate_into(bits, cfg, out);
  return out;
}

dsp::GoertzelBank fsk_tone_bank(const PhyConfig& cfg) {
  cfg.validate();
  return dsp::GoertzelBank({cfg.fsk_freq0_hz, cfg.fsk_freq1_hz}, cfg.sample_rate_hz());
}

void fsk_measure_tones(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                       const dsp::GoertzelBank& bank, std::span<double> p0,
                       std::span<double> p1) {
  const std::size_t sps = cfg.samples_per_symbol;
  const std::size_t n_sym = rx.size() / sps;
  if (p0.size() != n_sym || p1.size() != n_sym)
    throw std::invalid_argument("fsk_measure_tones: p0/p1 must hold one value per symbol");
  if (bank.bins() != 2) throw std::invalid_argument("fsk_measure_tones: bank must hold 2 tones");
  const auto guard = static_cast<std::size_t>(cfg.guard_frac * static_cast<double>(sps));
  for (std::size_t s = 0; s < n_sym; ++s) {
    const std::span<const dsp::Complex> sym = rx.subspan(s * sps + guard, sps - 2 * guard);
    double pw[2];
    bank.measure(sym, pw);
    p0[s] = pw[0];
    p1[s] = pw[1];
  }
}

void fsk_decide(std::span<const double> p0, std::span<const double> p1, FskDecision& d) {
  const std::size_t n_sym = p0.size();
  if (n_sym == 0) throw std::invalid_argument("fsk_demodulate: no full symbol in capture");
  if (p1.size() != n_sym) throw std::invalid_argument("fsk_decide: p0/p1 size mismatch");
  d.bits.clear();
  d.bits.reserve(n_sym);
  double margin_acc = 0.0;
  for (std::size_t s = 0; s < n_sym; ++s) {
    d.bits.push_back(p1[s] > p0[s] ? 1 : 0);
    const double tot = p0[s] + p1[s];
    margin_acc += (tot > 0.0) ? std::abs(p1[s] - p0[s]) / tot : 0.0;
  }
  d.margin = margin_acc / static_cast<double>(n_sym);
}

void fsk_demodulate_into(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                         const dsp::GoertzelBank& bank, dsp::DspWorkspace& ws,
                         FskDecision& d) {
  cfg.validate();
  const std::size_t n_sym = rx.size() / cfg.samples_per_symbol;
  if (n_sym == 0) throw std::invalid_argument("fsk_demodulate: no full symbol in capture");
  auto p0_lease = ws.rvec(n_sym);
  auto p1_lease = ws.rvec(n_sym);
  fsk_measure_tones(rx, cfg, bank, *p0_lease, *p1_lease);
  fsk_decide(*p0_lease, *p1_lease, d);
}

FskDecision fsk_demodulate(std::span<const dsp::Complex> rx, const PhyConfig& cfg) {
  FskDecision d;
  const dsp::GoertzelBank bank = fsk_tone_bank(cfg);
  fsk_demodulate_into(rx, cfg, bank, dsp::DspWorkspace::tls(), d);
  return d;
}

}  // namespace mmx::phy
