#include "mmx/phy/fsk.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/dsp/goertzel.hpp"
#include "mmx/dsp/tone.hpp"

namespace mmx::phy {

dsp::Cvec fsk_modulate(const Bits& bits, const PhyConfig& cfg) {
  cfg.validate();
  dsp::Nco nco(cfg.sample_rate_hz(), cfg.fsk_freq0_hz);
  dsp::Cvec out;
  out.reserve(bits.size() * cfg.samples_per_symbol);
  for (int b : bits) {
    if (b != 0 && b != 1) throw std::invalid_argument("fsk_modulate: bits must be 0/1");
    nco.set_frequency(b ? cfg.fsk_freq1_hz : cfg.fsk_freq0_hz);
    for (std::size_t i = 0; i < cfg.samples_per_symbol; ++i) out.push_back(nco.next());
  }
  return out;
}

FskDecision fsk_demodulate(std::span<const dsp::Complex> rx, const PhyConfig& cfg) {
  cfg.validate();
  const std::size_t sps = cfg.samples_per_symbol;
  const std::size_t n_sym = rx.size() / sps;
  if (n_sym == 0) throw std::invalid_argument("fsk_demodulate: no full symbol in capture");
  const auto guard = static_cast<std::size_t>(cfg.guard_frac * static_cast<double>(sps));
  const double fs = cfg.sample_rate_hz();

  FskDecision d;
  d.bits.reserve(n_sym);
  double margin_acc = 0.0;
  for (std::size_t s = 0; s < n_sym; ++s) {
    const std::span<const dsp::Complex> sym = rx.subspan(s * sps + guard, sps - 2 * guard);
    const double p0 = dsp::goertzel_power(sym, cfg.fsk_freq0_hz, fs);
    const double p1 = dsp::goertzel_power(sym, cfg.fsk_freq1_hz, fs);
    d.bits.push_back(p1 > p0 ? 1 : 0);
    const double tot = p0 + p1;
    margin_acc += (tot > 0.0) ? std::abs(p1 - p0) / tot : 0.0;
  }
  d.margin = margin_acc / static_cast<double>(n_sym);
  return d;
}

}  // namespace mmx::phy
