#include "mmx/phy/joint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/dsp/envelope.hpp"
#include "mmx/dsp/goertzel.hpp"

namespace mmx::phy {
namespace {

constexpr double kEps = 1e-12;

/// Map a branch quality q (d'-like, >= 0) to a fusion weight. Quadratic:
/// a branch twice as separable counts 4x — approximates optimal
/// variance-weighted combining of normalized soft statistics.
double weight(double q) { return q * q; }

}  // namespace

void joint_demodulate_into(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                           const Bits& known_prefix, const dsp::GoertzelBank& bank,
                           dsp::DspWorkspace& ws, AskDecision& ask_scratch,
                           FskDecision& fsk_scratch, JointDecision& d) {
  cfg.validate();
  const std::size_t sps = cfg.samples_per_symbol;
  const std::size_t n_sym = rx.size() / sps;
  if (n_sym == 0) throw std::invalid_argument("joint_demodulate: no full symbol in capture");

  // Per-symbol statistics, computed once: the envelope feeds the ASK
  // branch and the fusion loop; the tone powers feed the FSK branch and
  // the fusion loop. The standalone demodulators recompute these, so the
  // joint path used to do every measurement twice.
  auto env = ws.rvec(n_sym);
  dsp::symbol_envelopes_into(rx, sps, cfg.guard_frac, *env);
  auto p0 = ws.rvec(n_sym);
  auto p1 = ws.rvec(n_sym);
  fsk_measure_tones(rx, cfg, bank, *p0, *p1);

  // Branch decisions (each also yields its quality measure).
  ask_decide(*env, known_prefix, ask_scratch);
  fsk_decide(*p0, *p1, fsk_scratch);
  const AskDecision& ask = ask_scratch;
  const FskDecision& fsk = fsk_scratch;

  d.ask_separation = ask.separation;
  d.ask_inverted = ask.inverted;
  d.fsk_margin = fsk.margin;

  // Reliabilities. ASK separation is already a d'; FSK margin in [0,1] is
  // mapped onto a comparable scale (margin 1.0 ~ cleanly separable ~ d' 4).
  double q_ask = ask.separation;
  double q_fsk = 4.0 * fsk.margin;
  // With a known prefix, ground truth sharpens the estimate: a branch
  // that miscopies training bits is distrusted outright.
  if (!known_prefix.empty()) {
    std::size_t ask_err = 0;
    std::size_t fsk_err = 0;
    for (std::size_t i = 0; i < known_prefix.size(); ++i) {
      ask_err += (ask.bits[i] != known_prefix[i]);
      fsk_err += (fsk.bits[i] != known_prefix[i]);
    }
    if (ask_err > 0) q_ask /= static_cast<double>(1 + 2 * ask_err);
    if (fsk_err > 0) q_fsk /= static_cast<double>(1 + 2 * fsk_err);
  }

  const double w_ask = weight(q_ask);
  const double w_fsk = weight(q_fsk);
  const double w_tot = w_ask + w_fsk + kEps;

  // Per-symbol soft fusion over the shared statistics.
  const double ask_scale = std::max(ask.threshold, kEps);
  const double polarity = ask.inverted ? -1.0 : 1.0;

  d.bits.clear();
  d.bits.reserve(n_sym);  // mmx-analyze: allow(hot-path-alloc) -- decision buffer reuses its capacity across frames; steady state allocates nothing (pipeline_test)
  const dsp::Rvec& envv = *env;
  const dsp::Rvec& p0v = *p0;
  const dsp::Rvec& p1v = *p1;
  for (std::size_t s = 0; s < n_sym; ++s) {
    const double z_ask = polarity * (envv[s] - ask.threshold) / ask_scale;
    const double z_fsk = (p1v[s] - p0v[s]) / (p0v[s] + p1v[s] + kEps);
    const double z = (w_ask * z_ask + w_fsk * z_fsk) / w_tot;
    d.bits.push_back(z > 0.0 ? 1 : 0);  // mmx-analyze: allow(hot-path-alloc) -- within the reserve() above; never reallocates
  }

  if (w_ask > 9.0 * w_fsk) {
    d.mode = DecisionMode::kAsk;
  } else if (w_fsk > 9.0 * w_ask) {
    d.mode = DecisionMode::kFsk;
  } else {
    d.mode = DecisionMode::kJoint;
  }
}

JointDecision joint_demodulate(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                               const Bits& known_prefix) {
  const dsp::GoertzelBank bank = fsk_tone_bank(cfg);
  AskDecision ask;
  FskDecision fsk;
  JointDecision d;
  joint_demodulate_into(rx, cfg, known_prefix, bank, dsp::DspWorkspace::tls(), ask, fsk, d);
  return d;
}

}  // namespace mmx::phy
