#include "mmx/phy/joint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/dsp/envelope.hpp"
#include "mmx/dsp/goertzel.hpp"
#include "mmx/phy/ask.hpp"
#include "mmx/phy/fsk.hpp"

namespace mmx::phy {
namespace {

constexpr double kEps = 1e-12;

/// Map a branch quality q (d'-like, >= 0) to a fusion weight. Quadratic:
/// a branch twice as separable counts 4x — approximates optimal
/// variance-weighted combining of normalized soft statistics.
double weight(double q) { return q * q; }

}  // namespace

JointDecision joint_demodulate(std::span<const dsp::Complex> rx, const PhyConfig& cfg,
                               const Bits& known_prefix) {
  cfg.validate();
  const std::size_t sps = cfg.samples_per_symbol;
  const std::size_t n_sym = rx.size() / sps;
  if (n_sym == 0) throw std::invalid_argument("joint_demodulate: no full symbol in capture");

  // Branch decisions (each also yields its quality measure).
  const AskDecision ask = ask_demodulate(rx, cfg, known_prefix);
  const FskDecision fsk = fsk_demodulate(rx, cfg);

  JointDecision d;
  d.ask_separation = ask.separation;
  d.ask_inverted = ask.inverted;
  d.fsk_margin = fsk.margin;

  // Reliabilities. ASK separation is already a d'; FSK margin in [0,1] is
  // mapped onto a comparable scale (margin 1.0 ~ cleanly separable ~ d' 4).
  double q_ask = ask.separation;
  double q_fsk = 4.0 * fsk.margin;
  // With a known prefix, ground truth sharpens the estimate: a branch
  // that miscopies training bits is distrusted outright.
  if (!known_prefix.empty()) {
    std::size_t ask_err = 0;
    std::size_t fsk_err = 0;
    for (std::size_t i = 0; i < known_prefix.size(); ++i) {
      ask_err += (ask.bits[i] != known_prefix[i]);
      fsk_err += (fsk.bits[i] != known_prefix[i]);
    }
    if (ask_err > 0) q_ask /= static_cast<double>(1 + 2 * ask_err);
    if (fsk_err > 0) q_fsk /= static_cast<double>(1 + 2 * fsk_err);
  }

  const double w_ask = weight(q_ask);
  const double w_fsk = weight(q_fsk);
  const double w_tot = w_ask + w_fsk + kEps;

  // Per-symbol soft fusion.
  const dsp::Rvec env = dsp::symbol_envelopes(rx, sps, cfg.guard_frac);
  const auto guard = static_cast<std::size_t>(cfg.guard_frac * static_cast<double>(sps));
  const double fs = cfg.sample_rate_hz();
  const double ask_scale = std::max(ask.threshold, kEps);
  const double polarity = ask.inverted ? -1.0 : 1.0;

  d.bits.reserve(n_sym);
  for (std::size_t s = 0; s < n_sym; ++s) {
    const double z_ask = polarity * (env[s] - ask.threshold) / ask_scale;
    const std::span<const dsp::Complex> sym = rx.subspan(s * sps + guard, sps - 2 * guard);
    const double p0 = dsp::goertzel_power(sym, cfg.fsk_freq0_hz, fs);
    const double p1 = dsp::goertzel_power(sym, cfg.fsk_freq1_hz, fs);
    const double z_fsk = (p1 - p0) / (p0 + p1 + kEps);
    const double z = (w_ask * z_ask + w_fsk * z_fsk) / w_tot;
    d.bits.push_back(z > 0.0 ? 1 : 0);
  }

  if (w_ask > 9.0 * w_fsk) {
    d.mode = DecisionMode::kAsk;
  } else if (w_fsk > 9.0 * w_ask) {
    d.mode = DecisionMode::kFsk;
  } else {
    d.mode = DecisionMode::kJoint;
  }
  return d;
}

}  // namespace mmx::phy
