// Deterministic random-number utilities.
//
// All stochastic parts of the simulator draw from an explicitly seeded
// `Rng` so experiments are reproducible run-to-run; nothing in the library
// touches global random state.
#pragma once

#include <cstdint>
#include <random>

namespace mmx {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d6d5821ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Zero-mean Gaussian with the given standard deviation.
  double gaussian(double sigma = 1.0, double mean = 0.0) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Fork an independent stream (e.g. one per node) without correlating
  /// draws with the parent.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  /// Counter-based seed derivation (splitmix64 of root + index*gamma):
  /// a pure function of (root_seed, index), touching no engine state.
  /// Stream `i` is therefore the same value no matter how many other
  /// streams exist, in what order they are created, or on which thread —
  /// the property parallel sweeps need for bit-identical results at any
  /// thread count (sequential fork() cannot give this: stream i would
  /// depend on the i-1 forks before it).
  static std::uint64_t derive_seed(std::uint64_t root_seed, std::uint64_t index) {
    std::uint64_t z = root_seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// The `index`-th independent stream of `root_seed` (see derive_seed).
  static Rng stream(std::uint64_t root_seed, std::uint64_t index) {
    return Rng(derive_seed(root_seed, index));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mmx
