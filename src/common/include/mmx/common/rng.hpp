// Deterministic random-number utilities.
//
// All stochastic parts of the simulator draw from an explicitly seeded
// `Rng` so experiments are reproducible run-to-run; nothing in the library
// touches global random state.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace mmx {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d6d5821ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  ///
  /// Top 53 bits of one engine draw scaled by 2^-53 — the same value
  /// grid as std::generate_canonical but without its per-draw floating
  /// divide, which dominates AWGN synthesis cost.
  double uniform(double lo = 0.0, double hi = 1.0) {
    const double u = static_cast<double>(engine_() >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given standard deviation and mean.
  ///
  /// Marsaglia polar method with the second variate of each pair cached:
  /// AWGN synthesis draws one Gaussian per I/Q component, so a
  /// per-call `std::normal_distribution` temporary (which must discard
  /// its spare) would do every rejection loop and log/sqrt twice. The
  /// cached spare is scaled by the sigma/mean of the call that consumes
  /// it, so interleaved sigmas stay correct.
  double gaussian(double sigma = 1.0, double mean = 0.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + sigma * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return mean + sigma * u * m;
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Fork an independent stream (e.g. one per node) without correlating
  /// draws with the parent.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  /// Counter-based seed derivation (splitmix64 of root + index*gamma):
  /// a pure function of (root_seed, index), touching no engine state.
  /// Stream `i` is therefore the same value no matter how many other
  /// streams exist, in what order they are created, or on which thread —
  /// the property parallel sweeps need for bit-identical results at any
  /// thread count (sequential fork() cannot give this: stream i would
  /// depend on the i-1 forks before it).
  static std::uint64_t derive_seed(std::uint64_t root_seed, std::uint64_t index) {
    std::uint64_t z = root_seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// The `index`-th independent stream of `root_seed` (see derive_seed).
  static Rng stream(std::uint64_t root_seed, std::uint64_t index) {
    return Rng(derive_seed(root_seed, index));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  double spare_ = 0.0;      // second variate of the last Marsaglia pair
  bool have_spare_ = false;
};

}  // namespace mmx
