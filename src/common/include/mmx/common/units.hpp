// Units, physical constants and dB arithmetic used throughout mmX.
//
// Conventions:
//   * All linear powers are in watts, all linear voltages/amplitudes in
//     volts, all frequencies in hertz, all distances in metres, all angles
//     in radians unless a name says otherwise (e.g. `deg`, `_dbm`).
//   * "dB" quantities are plain doubles; the *_db / *_dbm suffix in a name
//     is the unit marker. Conversion helpers below are the only place the
//     10^(x/10) arithmetic appears.
#pragma once

#include <cmath>
#include <numbers>

namespace mmx {

// ---------------------------------------------------------------------------
// Physical constants
// ---------------------------------------------------------------------------

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Standard noise reference temperature [K] (290 K, IEEE definition).
inline constexpr double kT0Kelvin = 290.0;

/// Thermal noise density at T0 [dBm/Hz]: 10*log10(k*T0*1000) = -173.98.
inline constexpr double kThermalNoiseDbmPerHz = -173.975;

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

// ---------------------------------------------------------------------------
// mmX band plan (paper §7a, §8.1)
// ---------------------------------------------------------------------------

/// Centre of the 24 GHz ISM band used by mmX [Hz].
inline constexpr double kIsmCenterHz = 24.125e9;

/// Lower / upper edges of the 24 GHz ISM band [Hz] (250 MHz wide).
inline constexpr double kIsmLowHz = 24.0e9;
inline constexpr double kIsmHighHz = 24.25e9;

/// Total unlicensed bandwidth at 24 GHz [Hz] (paper: 250 MHz).
inline constexpr double kIsmBandwidthHz = kIsmHighHz - kIsmLowHz;

// ---------------------------------------------------------------------------
// dB / linear conversions
// ---------------------------------------------------------------------------

/// Power ratio -> dB. Requires ratio > 0.
inline double lin_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// dB -> power ratio.
inline double db_to_lin(double db) { return std::pow(10.0, db / 10.0); }

/// Amplitude (voltage) ratio -> dB.
inline double amp_to_db(double ratio) { return 20.0 * std::log10(ratio); }

/// dB -> amplitude (voltage) ratio.
inline double db_to_amp(double db) { return std::pow(10.0, db / 20.0); }

/// Watts -> dBm.
inline double watt_to_dbm(double watts) { return 10.0 * std::log10(watts * 1e3); }

/// dBm -> watts.
inline double dbm_to_watt(double dbm) { return std::pow(10.0, dbm / 10.0) * 1e-3; }

// ---------------------------------------------------------------------------
// Angles
// ---------------------------------------------------------------------------

inline constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }
inline constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// Wrap an angle to (-pi, pi].
double wrap_angle(double rad);

// ---------------------------------------------------------------------------
// Waves
// ---------------------------------------------------------------------------

/// Free-space wavelength [m] for a carrier frequency [Hz].
inline double wavelength(double freq_hz) { return kSpeedOfLight / freq_hz; }

/// Wavenumber k = 2*pi/lambda [rad/m].
inline double wavenumber(double freq_hz) { return kTwoPi / wavelength(freq_hz); }

/// Friis free-space path loss [dB] (positive number) at distance d [m].
/// FSPL = 20 log10(4 pi d / lambda). Requires d > 0.
double friis_path_loss_db(double distance_m, double freq_hz);

/// Thermal noise floor [dBm] integrated over `bandwidth_hz`, with an
/// optional receiver noise figure [dB].
double thermal_noise_dbm(double bandwidth_hz, double noise_figure_db = 0.0);

// ---------------------------------------------------------------------------
// User-facing literal-ish helpers (readability in configs/tests)
// ---------------------------------------------------------------------------

inline constexpr double operator""_GHz(long double v) { return static_cast<double>(v) * 1e9; }
inline constexpr double operator""_GHz(unsigned long long v) { return static_cast<double>(v) * 1e9; }
inline constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * 1e6; }
inline constexpr double operator""_MHz(unsigned long long v) { return static_cast<double>(v) * 1e6; }
inline constexpr double operator""_kHz(long double v) { return static_cast<double>(v) * 1e3; }
inline constexpr double operator""_kHz(unsigned long long v) { return static_cast<double>(v) * 1e3; }
inline constexpr double operator""_Mbps(long double v) { return static_cast<double>(v) * 1e6; }
inline constexpr double operator""_Mbps(unsigned long long v) { return static_cast<double>(v) * 1e6; }

}  // namespace mmx
