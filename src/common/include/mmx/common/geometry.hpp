// Minimal 2-D geometry toolkit for the mmX room-scale ray tracer.
//
// The channel model works in a 2-D azimuth plane (the paper's experiments
// vary x/y location and azimuth orientation; elevation is folded into the
// antenna element pattern). Everything here is exact, allocation-free
// value types.
#pragma once

#include <optional>
#include <vector>

namespace mmx {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr bool operator==(const Vec2&) const = default;

  double norm() const;
  double norm_sq() const { return x * x + y * y; }
  /// Unit vector in the same direction. Requires non-zero length.
  Vec2 normalized() const;
  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z-component of the 3-D cross).
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  /// Angle of the vector measured CCW from +x axis, in (-pi, pi].
  double angle() const;
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Unit vector at angle `rad` (CCW from +x).
Vec2 unit_vector(double rad);

double distance(Vec2 a, Vec2 b);

/// A wall / reflector: a finite line segment with a reflection loss.
///
/// Stays an aggregate (all members public, default member initializers
/// only) so `Segment{a, b}` construction keeps working everywhere. The
/// cached_* members are derived state filled in by precompute(): walls
/// are static between Room epochs, so deriving direction and length once
/// per geometry change instead of once per mirror()/intersect() call
/// removes a hypot + two divides from every image-method step. Accessors
/// fall back to on-the-fly derivation when precompute() was never called,
/// and the cached values are bit-identical to the derived ones (same
/// operations on the same operands), so callers cannot tell the
/// difference except in speed.
struct Segment {
  Vec2 a;
  Vec2 b;
  Vec2 cached_delta{};          ///< b - a (valid once precomputed)
  Vec2 cached_dir{};            ///< (b - a).normalized() (valid once precomputed)
  double cached_length_m = 0.0; ///< |b - a|; 0 doubles as "not precomputed"

  /// Derive and store delta / unit direction / length. No-op physics-wise:
  /// every cached value is bitwise what the accessors would derive. Safe
  /// on zero-length segments (leaves the cache empty; accessors fall back).
  void precompute();
  bool precomputed() const { return cached_length_m > 0.0; }

  Vec2 delta() const { return precomputed() ? cached_delta : b - a; }
  Vec2 unit_dir() const { return precomputed() ? cached_dir : (b - a).normalized(); }
  double length() const { return precomputed() ? cached_length_m : distance(a, b); }

  /// Mirror a point across the infinite line through this segment.
  Vec2 mirror(Vec2 p) const;

  /// Intersection of this segment with segment [p, q], if any.
  /// Collinear overlaps return nullopt (treated as grazing, no hit).
  std::optional<Vec2> intersect(Vec2 p, Vec2 q) const;
};

/// True if segment [p, q] passes through a disc (centre c, radius r).
/// Endpoints lying exactly on the boundary do not count as crossing.
bool segment_hits_disc(Vec2 p, Vec2 q, Vec2 c, double r);

/// Shortest distance from point `p` to segment [a, b].
double point_segment_distance(Vec2 p, Vec2 a, Vec2 b);

}  // namespace mmx
