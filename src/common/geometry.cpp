#include "mmx/common/geometry.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx {

double Vec2::norm() const { return std::hypot(x, y); }

Vec2 Vec2::normalized() const {
  const double n = norm();
  if (n == 0.0) throw std::domain_error("Vec2::normalized: zero-length vector");
  return {x / n, y / n};
}

double Vec2::angle() const { return std::atan2(y, x); }

Vec2 unit_vector(double rad) { return {std::cos(rad), std::sin(rad)}; }

double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

void Segment::precompute() {
  // distance(a, b) is hypot of the (sign-flipped) delta components, and
  // hypot is symmetric under negation — so cached_length_m, and the
  // direction derived by dividing through it, are bitwise identical to
  // what normalized()/length() derive on demand.
  const double len = distance(a, b);
  if (len <= 0.0) {
    cached_delta = Vec2{};
    cached_dir = Vec2{};
    cached_length_m = 0.0;
    return;
  }
  cached_delta = b - a;
  cached_dir = cached_delta / len;
  cached_length_m = len;
}

Vec2 Segment::mirror(Vec2 p) const {
  const Vec2 d = unit_dir();
  const Vec2 ap = p - a;
  // Project onto the line, then reflect across it.
  const Vec2 proj = a + d * ap.dot(d);
  return proj * 2.0 - p;
}

std::optional<Vec2> Segment::intersect(Vec2 p, Vec2 q) const {
  const Vec2 r = delta();
  const Vec2 s = q - p;
  const double denom = r.cross(s);
  if (denom == 0.0) return std::nullopt;  // parallel or collinear
  const Vec2 ap = p - a;
  const double t = ap.cross(s) / denom;  // position along this segment
  const double u = ap.cross(r) / denom;  // position along [p, q]
  constexpr double kEps = 1e-12;
  if (t < -kEps || t > 1.0 + kEps || u < -kEps || u > 1.0 + kEps) return std::nullopt;
  return a + r * t;
}

bool segment_hits_disc(Vec2 p, Vec2 q, Vec2 c, double r) {
  return point_segment_distance(c, p, q) < r;
}

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len_sq = ab.norm_sq();
  if (len_sq == 0.0) return distance(p, a);
  double t = (p - a).dot(ab) / len_sq;
  t = std::fmax(0.0, std::fmin(1.0, t));
  return distance(p, a + ab * t);
}

}  // namespace mmx
