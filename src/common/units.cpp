#include "mmx/common/units.hpp"

#include <stdexcept>

namespace mmx {

double wrap_angle(double rad) {
  double a = std::fmod(rad + kPi, kTwoPi);
  if (a <= 0.0) a += kTwoPi;
  return a - kPi;
}

double friis_path_loss_db(double distance_m, double freq_hz) {
  if (distance_m <= 0.0) throw std::invalid_argument("friis_path_loss_db: distance must be > 0");
  if (freq_hz <= 0.0) throw std::invalid_argument("friis_path_loss_db: frequency must be > 0");
  return 20.0 * std::log10(4.0 * kPi * distance_m / wavelength(freq_hz));
}

double thermal_noise_dbm(double bandwidth_hz, double noise_figure_db) {
  if (bandwidth_hz <= 0.0) throw std::invalid_argument("thermal_noise_dbm: bandwidth must be > 0");
  return kThermalNoiseDbmPerHz + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

}  // namespace mmx
