// Antenna element models.
//
// All patterns are azimuth-plane amplitude patterns: `amplitude(theta)`
// returns the field (voltage) gain relative to isotropic at azimuth
// `theta` (radians, 0 = boresight, positive CCW). Power gain in dBi is
// 20*log10(amplitude). Elevation behaviour is folded into the peak gain
// figure, mirroring how the paper reports its patterns (Fig. 8 is an
// azimuth cut).
#pragma once

#include <memory>

namespace mmx::antenna {

class Element {
 public:
  virtual ~Element() = default;

  /// Field (amplitude) gain at azimuth theta [rad] relative to isotropic.
  virtual double amplitude(double theta) const = 0;

  /// Power gain [dBi] at azimuth theta.
  double gain_dbi(double theta) const;
};

/// Ideal isotropic radiator (0 dBi everywhere) — test reference.
class Isotropic final : public Element {
 public:
  double amplitude(double /*theta*/) const override { return 1.0; }
};

/// Microstrip patch: cos^q(theta) front-hemisphere pattern with a small
/// back-lobe floor. Default q gives the ~65 degree elevation/azimuth HPBW
/// of a standard half-wave patch (paper §9.1) and ~6 dBi peak gain.
class Patch final : public Element {
 public:
  /// `peak_gain_dbi`: boresight gain. `q`: cosine exponent controlling
  /// beamwidth. `back_lobe_db`: back-hemisphere level below peak.
  explicit Patch(double peak_gain_dbi = 6.0, double q = 1.0, double back_lobe_db = 25.0);

  double amplitude(double theta) const override;

  double peak_gain_dbi() const { return peak_gain_dbi_; }

 private:
  double peak_gain_dbi_;
  double q_;
  double back_floor_amp_;
  double peak_amp_;
};

/// The AP's printed dipole: 5 dBi gain, ~62 degree HPBW (paper §8.2).
class Dipole final : public Element {
 public:
  explicit Dipole(double peak_gain_dbi = 5.0, double hpbw_deg = 62.0);

  double amplitude(double theta) const override;

  double hpbw_deg() const { return hpbw_deg_; }

 private:
  double peak_gain_dbi_;
  double hpbw_deg_;
  double q_;  // cosine exponent fitted to the HPBW
  double peak_amp_;
};

}  // namespace mmx::antenna
