// Measurement-style metrics over radiation patterns — the quantities the
// paper reads off Fig. 8 (peak directions, HPBW, null depths, field of
// view).
#pragma once

#include <functional>
#include <vector>

namespace mmx::antenna {

/// A pattern is any azimuth -> amplitude (field gain) function.
using Pattern = std::function<double(double)>;

/// Sampled pattern maximum over [lo, hi] (radians), `samples` points.
struct PatternPeak {
  double angle;
  double amplitude;
};
PatternPeak find_peak(const Pattern& p, double lo, double hi, int samples = 2048);

/// Half-power beamwidth [rad] of the lobe containing `peak_angle`:
/// distance between the -3 dB crossings either side of the peak.
double half_power_beamwidth(const Pattern& p, double peak_angle, int samples = 4096);

/// Depth [dB] of `p` at `angle` below its global peak over [-pi, pi]
/// (positive number; bigger = deeper null).
double depth_below_peak_db(const Pattern& p, double angle);

/// Orthogonality metric for a beam pair: the worse (smaller) of the two
/// cross-isolation figures — beam A's level at beam B's peak, in dB below
/// beam A's own peak, and vice versa.
double pair_orthogonality_db(const Pattern& a, const Pattern& b);

/// Azimuth-plane directivity [dB]: peak power over the circular average
/// of the pattern (2-D analogue of antenna directivity; exact for
/// azimuth-cut comparisons).
double azimuth_directivity_db(const Pattern& p, int samples = 4096);

/// Contiguous field of view [rad] around boresight where
/// max(a, b) stays within `drop_db` of the pair's global peak.
double field_of_view(const Pattern& a, const Pattern& b, double drop_db, int samples = 4096);

}  // namespace mmx::antenna
