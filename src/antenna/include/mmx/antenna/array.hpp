// Uniform linear array with arbitrary complex excitation.
//
// The mmX node's two fixed beams are 2-element patch arrays with 0 and
// 180 degree excitation (paper §6.2, §8.1); this class is the general
// machinery behind them and behind the TMA's instantaneous patterns.
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "mmx/antenna/element.hpp"

namespace mmx::antenna {

class LinearArray {
 public:
  /// `element`: shared element pattern (all elements identical).
  /// `spacing_m`: inter-element spacing. `weights`: per-element complex
  /// excitation (amplitude+phase).
  LinearArray(std::shared_ptr<const Element> element, double spacing_m,
              std::vector<std::complex<double>> weights, double freq_hz);

  /// Complex field at azimuth theta: element(theta) * sum_n w_n e^{j k n d sin theta}.
  std::complex<double> field(double theta) const;

  /// Field amplitude |field| at theta.
  double amplitude(double theta) const;

  /// Power gain [dBi] at theta (clamped at -200 dB in nulls).
  double gain_dbi(double theta) const;

  /// Array factor alone (no element pattern), normalized so that uniform
  /// in-phase excitation gives N at the steering peak.
  std::complex<double> array_factor(double theta) const;

  std::size_t size() const { return weights_.size(); }
  double spacing_m() const { return spacing_m_; }
  double frequency_hz() const { return freq_hz_; }

 private:
  std::shared_ptr<const Element> element_;
  double spacing_m_;
  std::vector<std::complex<double>> weights_;
  double freq_hz_;
  double k_;  // wavenumber
};

/// Phase weights steering an N-element array's main lobe to `theta0`.
std::vector<std::complex<double>> steering_weights(std::size_t n, double spacing_m,
                                                   double freq_hz, double theta0);

}  // namespace mmx::antenna
