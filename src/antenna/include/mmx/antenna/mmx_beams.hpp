// The mmX node's orthogonal fixed-beam pair (paper §6.2, §8.1, Fig. 8).
//
// Beam 1: two patches excited in phase -> broadside main lobe (theta=0)
//         with nulls at +/-30 degrees.
// Beam 0: the same geometry excited 180 degrees out of phase -> null at
//         broadside, two arms peaking near +/-30 degrees.
//
// Orthogonality means each beam has a null at the other's peak(s); it is
// what keeps the two OTAM signal levels distinguishable at almost every
// AP bearing, and it falls out of the lambda element spacing chosen here.
#pragma once

#include <memory>

#include "mmx/antenna/array.hpp"

namespace mmx::antenna {

struct BeamPairSpec {
  double freq_hz = 24.125e9;   ///< design frequency (ISM band centre)
  double patch_gain_dbi = 6.0;
  /// Element spacing in wavelengths. 1.0 puts Beam 1's nulls and Beam 0's
  /// peaks both at +/-30 degrees (sin theta = lambda/(2 d)).
  double spacing_wavelengths = 1.0;
};

class MmxBeamPair {
 public:
  explicit MmxBeamPair(BeamPairSpec spec = {});

  /// Complex field of beam 0 or 1 at azimuth theta (node frame; 0 =
  /// boresight / board normal).
  std::complex<double> field(int beam, double theta) const;

  double amplitude(int beam, double theta) const;
  double gain_dbi(int beam, double theta) const;

  const LinearArray& beam(int beam) const;

  /// Angle of Beam 0's positive-side peak (should be ~ +30 degrees).
  double beam0_peak_angle() const;

  const BeamPairSpec& spec() const { return spec_; }

 private:
  BeamPairSpec spec_;
  std::unique_ptr<LinearArray> beam0_;
  std::unique_ptr<LinearArray> beam1_;
};

}  // namespace mmx::antenna
